(* gp — the command-line face of the library.

     gp check <concept> <type> [<type>...]   concept checking with diagnostics
     gp concepts                             list everything the registry knows
     gp lint [case]                          run STLlint on the corpus
     gp optimize                             Simplicissimus demo + certification
     gp prove [--theory swo|group|monoid]    run the proof checker
     gp elect --algo lcr|hs --nodes N        leader election on a ring
     gp taxonomy --problem P --topology T    pick the right algorithm
     gp structla [--n N] [--seed S]          structure-aware kernel selection
     gp serve [--file F]                     serve JSONL requests (gp_service)
     gp workload --n N --seed S              run a synthetic serving workload
     gp replay <flight.jsonl>                re-execute a flight dump, verify
     gp cluster run|audit|trace              simulated replicated cluster (gp_cluster)
     gp scenario list|run                    elastic cluster scenarios (gp_scenario)
     gp complexity [--op O] [--json]         empirical asymptotics vs declared bounds
     gp bench-diff <old.json> <new.json>     perf-regression guard over --json *)

open Cmdliner

(* The "standard world": every registry declaration the libraries ship. *)
let standard_declare reg =
  Gp_algebra.Decls.declare reg;
  Gp_sequence.Decls.declare reg;
  Gp_graph.Decls.declare reg;
  Gp_linalg.Decls.declare reg;
  Gp_structla.Decls.declare reg

let standard_registry () =
  let reg = Gp_concepts.Registry.create () in
  standard_declare reg;
  reg

(* ------------------------------------------------------------------ *)
(* gp check                                                            *)
(* ------------------------------------------------------------------ *)

let load_defs reg = function
  | None -> true
  | Some path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | src -> (
      match Gp_concepts.Lang.load_string reg src with
      | () -> true
      | exception Gp_concepts.Lang.Parse_error { line; col; message } ->
        Fmt.epr "%s:%d:%d: %s@." path line col message;
        false
      | exception Gp_concepts.Registry.Duplicate what ->
        Fmt.epr "%s: duplicate declaration of %s@." path what;
        false)
    | exception Sys_error e ->
      Fmt.epr "%s@." e;
      false)

let defs_arg =
  Arg.(value
       & opt (some file) None
       & info [ "defs" ]
           ~doc:"Load additional concept/type/model declarations from a \
                 .gpc file (the gp surface syntax).")

let check_cmd =
  let concept =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CONCEPT")
  in
  let types =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"TYPE")
  in
  let nominal =
    Arg.(value & flag & info [ "nominal" ] ~doc:"Require a declared model.")
  in
  let run concept types nominal defs =
    let open Gp_concepts in
    let reg = standard_registry () in
    if not (load_defs reg defs) then 2
    else begin
      let mode = if nominal then Check.Nominal else Check.Structural in
      let args = List.map (fun t -> Ctype.Named t) types in
      let report = Check.check ~mode reg concept args in
      Fmt.pr "%a@." Check.pp_report report;
      if Check.ok report then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check whether types model a concept")
    Term.(const run $ concept $ types $ nominal $ defs_arg)

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run path =
    let src = In_channel.with_open_text path In_channel.input_all in
    match Gp_concepts.Lang.parse_string src with
    | items ->
      List.iter
        (function
          | Gp_concepts.Lang.Iconcept c ->
            Fmt.pr "%a@.@." Gp_concepts.Lang.pp_concept c
          | Gp_concepts.Lang.Itype { name; assoc } ->
            Fmt.pr "type %s with %d associated type(s)@.@." name
              (List.length assoc)
          | Gp_concepts.Lang.Iop { name; _ } -> Fmt.pr "op %s@.@." name
          | Gp_concepts.Lang.Imodel { concept; args; _ } ->
            Fmt.pr "model %s<%a>@.@." concept
              Fmt.(list ~sep:comma Gp_concepts.Lang.pp_ty)
              args)
        items;
      0
    | exception Gp_concepts.Lang.Parse_error { line; col; message } ->
      Fmt.epr "%s:%d:%d: %s@." path line col message;
      2
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and pretty-print a .gpc definitions file")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* gp concepts                                                         *)
(* ------------------------------------------------------------------ *)

let concepts_cmd =
  let run () =
    let open Gp_concepts in
    let reg = standard_registry () in
    Fmt.pr "concepts:@.";
    List.iter
      (fun (c : Concept.t) ->
        Fmt.pr "  %-24s (%d params%s) %s@." c.Concept.name
          (List.length c.Concept.params)
          (if Concept.is_semantic c then ", semantic" else "")
          c.Concept.doc)
      (Registry.concepts reg);
    Fmt.pr "@.declared models: %d@." (List.length (Registry.models reg));
    0
  in
  Cmd.v
    (Cmd.info "concepts" ~doc:"List known concepts and models")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* gp lint                                                             *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let case =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CASE")
  in
  let file =
    Arg.(value
         & opt (some file) None
         & info [ "file" ]
             ~doc:"Check a program file in the STLlint surface syntax \
                   instead of a corpus case.")
  in
  let run_file path =
    let open Gp_stllint in
    let src = In_channel.with_open_text path In_channel.input_all in
    match Parser.check_source src with
    | ds ->
      Fmt.pr "%a@." Interp.pp_report ds;
      if Interp.errors ds <> [] then 1 else 0
    | exception Parser.Parse_error { line; message } ->
      Fmt.epr "%s:%d: %s@." path line message;
      2
  in
  let run_corpus case =
    let open Gp_stllint in
    let cases =
      match case with
      | None -> Corpus.all
      | Some name -> (
        match
          List.filter (fun c -> c.Corpus.case_name = name) Corpus.all
        with
        | [] ->
          Fmt.epr "unknown case %s; available:@." name;
          List.iter
            (fun c -> Fmt.epr "  %s@." c.Corpus.case_name)
            Corpus.all;
          exit 2
        | cs -> cs)
    in
    let bad = ref 0 in
    List.iter
      (fun (c : Corpus.case) ->
        Fmt.pr "--- %s: %s@." c.Corpus.case_name c.Corpus.description;
        let ds = Interp.check c.Corpus.program in
        Fmt.pr "%a@.@." Interp.pp_report ds;
        if Interp.errors ds <> [] then incr bad)
      cases;
    if !bad > 0 then 1 else 0
  in
  let run case file =
    match file with Some path -> run_file path | None -> run_corpus case
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the STLlint checker on the corpus or a program file")
    Term.(const run $ case $ file)

(* ------------------------------------------------------------------ *)
(* gp optimize                                                         *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let certified_only =
    Arg.(value & flag
         & info [ "certified-only" ]
             ~doc:"Only apply rules whose backing theorem checked.")
  in
  let expr_arg =
    Arg.(value
         & opt (some string) None
         & info [ "expr" ]
             ~doc:"Rewrite this expression (e.g. \"x*1 + (y:float)*0.0\"; \
                   variables default to int, annotate with :type).")
  in
  let run certified_only expr_src =
    let open Gp_simplicissimus in
    List.iter
      (fun c -> Fmt.pr "%a@." Certify.pp_certification c)
      (Certify.certify_builtin ());
    let insts = Instances.standard () in
    let rules = Rules.builtin @ [ Rules.lidia_inverse ] in
    let open Expr in
    let demos =
      match expr_src with
      | Some src -> (
        match Sparser.parse src with
        | e -> [ e ]
        | exception Sparser.Parse_error m ->
          Fmt.epr "parse error: %s@." m;
          exit 2)
      | None ->
        [ binop "*" (binop "+" (ivar "x") (int 0)) (int 1);
          binop "+" (ivar "x") (unop "neg" (ivar "x"));
          binop "*" (ivar "x") (int 0);
          binop "." (mvar "A") (Ident ("matrix", "."));
          Op ("/", "bigfloat", [ float 1.0; Var ("f", "bigfloat") ]) ]
    in
    Fmt.pr "@.";
    List.iter
      (fun e ->
        let r = Engine.rewrite ~only_certified:certified_only ~rules ~insts e in
        Fmt.pr "%a@." Engine.pp_result r;
        List.iter (fun st -> Fmt.pr "  %a@." Engine.pp_step st) r.Engine.steps)
      demos;
    0
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Concept-based rewriting (demo expressions or --expr)")
    Term.(const run $ certified_only $ expr_arg)

(* ------------------------------------------------------------------ *)
(* gp prove                                                            *)
(* ------------------------------------------------------------------ *)

let prove_cmd =
  let theory =
    Arg.(value
         & opt
             (enum
                [ ("swo", `Swo); ("group", `Group); ("monoid", `Monoid);
                  ("ring", `Ring); ("orders", `Orders) ])
             `Swo
         & info [ "theory" ]
             ~doc:"Which theory to prove: swo, group, monoid, ring, orders.")
  in
  let run theory =
    let open Gp_athena in
    let failures = ref 0 in
    let show (thm : Theorems.theorem) verdict =
      (match verdict with Deduction.Proved -> () | _ -> incr failures);
      Fmt.pr "%-44s %a@." thm.Theorems.thm_name Deduction.pp_verdict verdict
    in
    (match theory with
    | `Swo ->
      List.iter
        (fun lt ->
          let axioms = Theory.strict_weak_order ~lt in
          List.iter
            (fun f ->
              let thm = f ~lt in
              show thm (Theorems.verify ~axioms thm))
            [ Theorems.swo_e_reflexive; Theorems.swo_e_symmetric;
              Theorems.swo_e_transitive; Theorems.swo_asymmetric ])
        [ "int_lt"; "string_lt" ]
    | `Group ->
      List.iter
        (fun m ->
          List.iter
            (fun f ->
              let thm = f m in
              show thm (Theorems.verify ~axioms:(Theory.group_minimal m) thm))
            [ Theorems.group_right_inverse; Theorems.group_right_identity;
              Theorems.group_double_inverse ])
        Theory.group_instances
    | `Monoid ->
      List.iter
        (fun m ->
          List.iter
            (fun f ->
              let thm = f m in
              show thm (Theorems.verify ~axioms:(Theory.monoid m) thm))
            [ Theorems.monoid_right_identity; Theorems.monoid_identity_unique ])
        Theory.monoid_instances
    | `Ring ->
      let rm =
        { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul }
      in
      List.iter
        (fun f ->
          let thm = f rm in
          show thm (Theorems.verify ~axioms:(Theory.ring rm) thm))
        [ Theorems.ring_mul_zero; Theorems.ring_zero_mul ]
    | `Orders ->
      List.iter
        (fun leq ->
          List.iter
            (fun f ->
              let thm = f ~leq in
              show thm (Theorems.verify ~axioms:(Theory.total_order ~leq) thm))
            [ Theorems.strict_irreflexive; Theorems.strict_transitive;
              Theorems.strict_equiv_transitive ])
        [ "int_le"; "string_le"; "rational_le" ]);
    if !failures > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Check generic proofs against theory axioms")
    Term.(const run $ theory)

(* ------------------------------------------------------------------ *)
(* gp elect                                                            *)
(* ------------------------------------------------------------------ *)

let elect_cmd =
  let algo =
    Arg.(value
         & opt (enum [ ("lcr", `Lcr); ("hs", `Hs) ]) `Lcr
         & info [ "algo" ] ~doc:"lcr or hs.")
  in
  let nodes =
    Arg.(value & opt int 16 & info [ "nodes"; "n" ] ~doc:"Ring size.")
  in
  let asynchronous =
    Arg.(value & flag & info [ "async" ] ~doc:"Asynchronous message delays.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run algo nodes asynchronous seed =
    let open Gp_distsim in
    let uids = Array.init nodes (fun i -> nodes - i) in
    let config =
      { Engine.default_config with
        Engine.timing =
          (if asynchronous then Engine.Asynchronous { max_delay = 3.0 }
           else Engine.Synchronous);
        seed }
    in
    let r =
      match algo with
      | `Lcr -> Algorithms.Lcr.run ~config ~uids (Topology.ring_unidirectional nodes)
      | `Hs -> Algorithms.Hs.run ~config ~uids (Topology.ring nodes)
    in
    Fmt.pr "leader: %s@."
      (Option.value ~default:"(no agreement)" (Algorithms.agreed r));
    Fmt.pr "%a@." Engine.pp_metrics r.Engine.metrics;
    0
  in
  Cmd.v
    (Cmd.info "elect" ~doc:"Leader election on a ring in the simulator")
    Term.(const run $ algo $ nodes $ asynchronous $ seed)

(* ------------------------------------------------------------------ *)
(* gp taxonomy                                                         *)
(* ------------------------------------------------------------------ *)

let taxonomy_cmd =
  let problem =
    Arg.(value & opt string "leader-election"
         & info [ "problem" ] ~doc:"Problem dimension value.")
  in
  let topology =
    Arg.(value & opt string "bidirectional-ring"
         & info [ "topology" ] ~doc:"Topology dimension value.")
  in
  let measure =
    Arg.(value & opt string "messages"
         & info [ "measure" ] ~doc:"Cost measure to minimise.")
  in
  let run problem topology measure =
    let open Gp_distsim in
    let t = Taxonomy7.build () in
    let best = Taxonomy7.pick_for t ~problem ~topology ~measure in
    if best = [] then begin
      Fmt.pr "no algorithm registered for this situation (a taxonomy gap).@.";
      1
    end
    else begin
      List.iter
        (fun e -> Fmt.pr "%a@." Gp_concepts.Taxonomy.pp_entry e)
        best;
      0
    end
  in
  Cmd.v
    (Cmd.info "taxonomy"
       ~doc:"Query the seven-dimension distributed-algorithms taxonomy")
    Term.(const run $ problem $ topology $ measure)

(* ------------------------------------------------------------------ *)
(* gp serve / gp workload                                               *)
(* ------------------------------------------------------------------ *)

let server_config ~no_cache ~cache_capacity ~queue ~max_steps ~timeout =
  { Gp_service.Server.default_config with
    Gp_service.Server.caching = not no_cache;
    cache_capacity;
    queue_capacity = queue;
    max_steps;
    timeout }

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ] ~doc:"Disable the memo caches entirely.")

let cache_capacity_arg =
  Arg.(value & opt int 256
       & info [ "cache-capacity" ] ~doc:"Entries per LRU cache.")

let queue_arg =
  Arg.(value & opt int 64
       & info [ "queue" ] ~doc:"Admission-queue capacity.")

let max_steps_arg =
  Arg.(value & opt int 100_000
       & info [ "max-steps" ] ~doc:"Per-request step budget.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~doc:"Per-request deadline in seconds.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics report to stderr when the input ends.")

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let serve_cmd =
  let file =
    Arg.(value
         & opt (some file) None
         & info [ "file" ]
             ~doc:"Read request lines from this file instead of stdin.")
  in
  let stats_json =
    Arg.(value
         & opt (some string) None
         & info [ "stats-json" ]
             ~doc:"When the input ends, write the machine-readable metrics \
                   report (counters, interpolated latency quantiles, cache \
                   stats) to this file.")
  in
  let trace_file =
    Arg.(value
         & opt (some string) None
         & info [ "trace" ]
             ~doc:"Trace every request (a service.request root span over \
                   the engine spans it triggers) and write Chrome \
                   trace-event JSON to this file when the input ends. Also \
                   enables the slow-request log.")
  in
  let flight_file =
    Arg.(value
         & opt (some string) None
         & info [ "flight" ]
             ~doc:"When the input ends, dump the flight recorder — one \
                   JSONL dossier per served request, with span trees and \
                   metric deltas on error/slowest-k dossiers — to this \
                   file ($(b,gp replay) input). Installs a telemetry sink \
                   like $(b,--trace) so dossiers carry span trees.")
  in
  let run file no_cache cache_capacity queue max_steps timeout metrics
      stats_json trace_file flight_file =
    let open Gp_service in
    let config =
      server_config ~no_cache ~cache_capacity ~queue ~max_steps ~timeout
    in
    let sink =
      if trace_file <> None || flight_file <> None then
        Some (Gp_telemetry.Tel.install ~trace_capacity:65536 ())
      else None
    in
    let server = Server.create ~config ~declare_standard:standard_declare () in
    let served =
      match file with
      | None -> Server.serve_channel server stdin stdout
      | Some path ->
        In_channel.with_open_text path (fun ic ->
            Server.serve_channel server ic stdout)
    in
    if metrics then Fmt.epr "%s@." (Server.report server);
    (match stats_json with
    | None -> ()
    | Some path -> write_file path (Server.report_json server));
    (match trace_file, sink with
    | Some path, Some sink ->
      write_file path (Gp_telemetry.Trace.to_chrome_json sink.trace);
      Fmt.epr "%a@."
        Server.pp_slow (Server.slow_requests server)
    | _ -> ());
    (match flight_file, Server.flight server with
    | Some path, Some recorder ->
      write_file path (Gp_telemetry.Recorder.to_jsonl recorder);
      Fmt.epr "%a@." Gp_telemetry.Recorder.pp_summary recorder
    | Some path, None ->
      Fmt.epr "--flight %s: the flight recorder is disabled \
               (flight_capacity = 0)@." path
    | None, _ -> ());
    if served > 0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve JSONL-ish toolchain requests from a file or stdin")
    Term.(const run $ file $ no_cache_arg $ cache_capacity_arg $ queue_arg
          $ max_steps_arg $ timeout_arg $ metrics_arg $ stats_json
          $ trace_file $ flight_file)

let workload_cmd =
  let n_arg =
    Arg.(value & opt int 400 & info [ "requests"; "n" ] ~doc:"Number of requests.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let mix_arg =
    Arg.(value
         & opt (some string) None
         & info [ "mix" ]
             ~doc:"Kind mix as weights, e.g. \
                   \"closure=3,lint=2,prove=1\".")
  in
  let zipf =
    Arg.(value & opt float 1.1
         & info [ "zipf" ] ~doc:"Zipf exponent for key reuse.")
  in
  let keyspace =
    Arg.(value & opt int 40
         & info [ "keyspace" ] ~doc:"Distinct keys per request kind.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Small fixed workload (n=60, seed=7): the smoke-test \
                   configuration run under dune runtest.")
  in
  let print_responses =
    Arg.(value & flag
         & info [ "print" ] ~doc:"Print every response line.")
  in
  let errors_arg =
    Arg.(value & opt float 0.0
         & info [ "errors" ]
             ~doc:"Fraction (in [0,1]) of deterministically failing \
                   requests to inject: malformed sources, unknown names, \
                   and a rewrite that goes over budget when \
                   $(b,--max-steps) is tightened to 2500 or below.")
  in
  let emit =
    Arg.(value & flag
         & info [ "emit" ]
             ~doc:"Print the generated request lines (the $(b,gp serve) \
                   wire format) instead of serving them — feeds a \
                   workload file to $(b,gp serve --file).")
  in
  let numeric_weight name =
    Arg.(value & opt int 0
         & info [ name ]
             ~doc:(Printf.sprintf
                     "Weight of %s numeric requests added to the mix \
                      (0 = none, the default — the base mix and its \
                      fingerprints are untouched unless asked)." name))
  in
  let matvec_w = numeric_weight "matvec" in
  let matmul_w = numeric_weight "matmul" in
  let solve_w = numeric_weight "solve" in
  let run n seed mix_spec zipf keyspace quick print_responses errors emit
      matvec_w matmul_w solve_w
      no_cache cache_capacity queue max_steps timeout =
    let open Gp_service in
    let mix =
      match mix_spec with
      | None -> Workload.default_mix
      | Some spec -> (
        match Workload.parse_mix spec with
        | Ok m -> m
        | Error e ->
          Fmt.epr "bad --mix: %s@." e;
          exit 2)
    in
    if errors < 0.0 || errors > 1.0 then begin
      Fmt.epr "bad --errors: %g outside [0,1]@." errors;
      exit 2
    end;
    let mix =
      mix
      @ List.filter
          (fun (_, w) -> w > 0)
          [ (Request.Kmatvec, matvec_w); (Request.Kmatmul, matmul_w);
            (Request.Ksolve, solve_w) ]
    in
    let n, seed = if quick then (60, 7) else (n, seed) in
    let reqs = Workload.generate ~mix ~zipf ~keyspace ~errors ~seed ~n () in
    if emit then begin
      List.iter (fun req -> print_endline (Wire.request_to_line req)) reqs;
      exit 0
    end;
    let config =
      server_config ~no_cache ~cache_capacity ~queue ~max_steps ~timeout
    in
    let server = Server.create ~config ~declare_standard:standard_declare () in
    let t0 = Unix.gettimeofday () in
    let responses = Server.process server reqs in
    let dt = Unix.gettimeofday () -. t0 in
    if print_responses then
      List.iter
        (fun r -> Fmt.pr "%s@." (Wire.response_to_line r))
        responses;
    let ok = List.length (List.filter Request.ok responses) in
    let cached =
      List.length (List.filter (fun r -> r.Request.rsp_cached) responses)
    in
    Fmt.pr "workload: n=%d seed=%d zipf=%.2f keyspace=%d errors=%.2f \
            mix=[%a]@."
      n seed zipf keyspace errors Workload.pp_mix mix;
    Fmt.pr "fingerprint: %s@." (Workload.fingerprint reqs);
    Fmt.pr "served %d requests in %.3fs (%.0f req/s): %d ok, %d errors, %d \
            cache-served@.@."
      (List.length responses) dt
      (float_of_int (List.length responses) /. Float.max dt 1e-9)
      ok
      (List.length responses - ok)
      cached;
    Fmt.pr "%s@." (Server.report server);
    (* the workload mix includes requests that *should* fail (bad checks
       are part of the service's job); the exit code only reflects the
       serving machinery itself *)
    if List.length responses = n then 0 else 1
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate and serve a seeded synthetic workload, then report")
    Term.(const run $ n_arg $ seed $ mix_arg $ zipf $ keyspace $ quick
          $ print_responses $ errors_arg $ emit $ matvec_w $ matmul_w
          $ solve_w $ no_cache_arg $ cache_capacity_arg $ queue_arg
          $ max_steps_arg $ timeout_arg)

(* ------------------------------------------------------------------ *)
(* gp trace                                                            *)
(* ------------------------------------------------------------------ *)

(* Run a representative slice of each subsystem under an installed
   telemetry sink and export the Chrome trace. The slices reuse the same
   worlds the other subcommands exercise: the standard registry, the
   STLlint corpus, the optimizer demo set, a 16-node election. *)
let trace_cmd =
  let pipeline =
    Arg.(value
         & pos 0
             (enum
                [ ("all", `All); ("check", `Check); ("closure", `Closure);
                  ("lint", `Lint); ("optimize", `Optimize);
                  ("elect", `Elect) ])
             `All
         & info [] ~docv:"PIPELINE"
             ~doc:"Which pipeline to trace: all, check, closure, lint, \
                   optimize or elect.")
  in
  let out =
    Arg.(value
         & opt (some string) None
         & info [ "out"; "o" ]
             ~doc:"Write Chrome trace-event JSON (chrome://tracing, \
                   Perfetto) to this file instead of stdout.")
  in
  let tree =
    Arg.(value & flag
         & info [ "tree" ] ~doc:"Print the span tree to stderr.")
  in
  let folded =
    Arg.(value & flag
         & info [ "folded" ]
             ~doc:"Emit collapsed-stack (\"folded\") lines — \
                   root;child;leaf self-weight — instead of Chrome \
                   trace-event JSON; pipe into a flamegraph renderer.")
  in
  let gc =
    Arg.(value & flag
         & info [ "gc" ]
             ~doc:"Enable GC/allocation span profiling: every span \
                   carries allocated-bytes and minor/major collection \
                   deltas (Chrome args, tree annotations, and the \
                   $(b,--folded) alloc weight).")
  in
  let run pipeline out tree folded gc metrics =
    let sink =
      Gp_telemetry.Tel.install ~trace_capacity:65536 ~profile:gc ()
    in
    let reg = standard_registry () in
    let do_check () =
      let open Gp_concepts in
      List.iter
        (fun (c : Concept.t) ->
          let args = List.map (fun _ -> Ctype.Named "int") c.Concept.params in
          ignore (Check.check reg c.Concept.name args))
        (Registry.concepts reg)
    in
    let do_closure () =
      let open Gp_concepts in
      List.iter
        (fun (c : Concept.t) ->
          ignore
            (Propagate.closure reg c.Concept.name
               (List.map (fun p -> Ctype.Var p) c.Concept.params)))
        (Registry.concepts reg)
    in
    let do_lint () =
      List.iter
        (fun (c : Gp_stllint.Corpus.case) ->
          ignore (Gp_stllint.Interp.check c.Gp_stllint.Corpus.program))
        Gp_stllint.Corpus.all
    in
    let do_optimize () =
      let open Gp_simplicissimus in
      let insts = Instances.standard () in
      let rules = Rules.builtin @ [ Rules.lidia_inverse ] in
      let open Expr in
      List.iter
        (fun e -> ignore (Engine.rewrite ~rules ~insts e))
        [ binop "*" (binop "+" (ivar "x") (int 0)) (int 1);
          binop "+" (ivar "x") (unop "neg" (ivar "x"));
          binop "*" (ivar "x") (int 0);
          binop "." (mvar "A") (Ident ("matrix", "."));
          Op ("/", "bigfloat", [ float 1.0; Var ("f", "bigfloat") ]) ]
    in
    let do_elect () =
      let open Gp_distsim in
      let uids = Array.init 16 (fun i -> 16 - i) in
      ignore (Algorithms.Lcr.run ~uids (Topology.ring_unidirectional 16));
      ignore (Algorithms.Hs.run ~uids (Topology.ring 16))
    in
    (match pipeline with
    | `All ->
      do_check ();
      do_closure ();
      do_lint ();
      do_optimize ();
      do_elect ()
    | `Check -> do_check ()
    | `Closure -> do_closure ()
    | `Lint -> do_lint ()
    | `Optimize -> do_optimize ()
    | `Elect -> do_elect ());
    let output =
      if folded then
        (* weight by allocated bytes when profiling, else by duration *)
        Gp_telemetry.Trace.to_folded
          ~weight:(if gc then `Alloc else `Dur)
          sink.Gp_telemetry.Tel.trace
      else Gp_telemetry.Trace.to_chrome_json sink.Gp_telemetry.Tel.trace
    in
    (match out with
    | None -> print_string output
    | Some path ->
      write_file path output;
      Fmt.epr "wrote %d spans to %s@."
        (Gp_telemetry.Trace.recorded sink.Gp_telemetry.Tel.trace)
        path);
    if tree then
      Fmt.epr "%a@." Gp_telemetry.Trace.pp_tree
        (Gp_telemetry.Trace.spans sink.Gp_telemetry.Tel.trace);
    if metrics then
      Fmt.epr "%s@."
        (Gp_telemetry.Metrics.to_prometheus sink.Gp_telemetry.Tel.metrics);
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a toolchain pipeline and export Chrome trace-event JSON")
    Term.(const run $ pipeline $ out $ tree $ folded $ gc $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* gp replay                                                           *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FLIGHT.jsonl")
  in
  let run path =
    let open Gp_service in
    match Flight.load path with
    | Error m ->
      Fmt.epr "%s@." m;
      2
    | Ok ds -> (
      match Flight.replay ~declare_standard:standard_declare ds with
      | Error m ->
        Fmt.epr "%s@." m;
        2
      | Ok o ->
        Fmt.pr "%a@." Flight.pp_outcome o;
        if Flight.all_matched o then 0 else 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a flight-recorder dump (gp serve --flight) against \
             a freshly built server and verify every response fingerprint; \
             prints recorded-vs-replayed span trees on divergence")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* gp cluster                                                          *)
(* ------------------------------------------------------------------ *)

(* Failure-injection grammar, comma-separated clauses:
     drop=0.2                    each message dropped with prob 0.2
     crash=3@40                  replica 3 crash-stops at t=40
     crash=leader@40             the initial election winner crashes
     partition=0+1|2+3@10-30     islands {0,1} and {2,3} while 10<=t<30
   (node 0 is the router; replicas are 1..N) *)
let parse_failure_spec spec =
  let open Gp_cluster in
  let clause c =
    let c = String.trim c in
    match String.index_opt c '=' with
    | None -> failwith (c ^ ": expected kind=value")
    | Some i ->
      let key = String.sub c 0 i in
      let v = String.sub c (i + 1) (String.length c - i - 1) in
      (match key with
      | "drop" -> Cluster.Drop (float_of_string v)
      | "crash" -> (
        match String.split_on_char '@' v with
        | [ who; at ] ->
          let at = float_of_string at in
          if who = "leader" then Cluster.Crash_leader { at }
          else Cluster.Crash_replica { replica = int_of_string who; at }
        | _ -> failwith (c ^ ": expected crash=WHO@TIME"))
      | "partition" -> (
        match String.split_on_char '@' v with
        | [ groups; window ] ->
          let groups =
            String.split_on_char '|' groups
            |> List.map (fun g ->
                   String.split_on_char '+' g |> List.map int_of_string)
          in
          (match String.split_on_char '-' window with
          | [ a; b ] ->
            Cluster.Partition
              { groups; from_ = float_of_string a; until = float_of_string b }
          | _ -> failwith (c ^ ": expected partition=GROUPS@FROM-UNTIL"))
        | _ -> failwith (c ^ ": expected partition=GROUPS@FROM-UNTIL"))
      | _ -> failwith (key ^ ": unknown failure kind"))
  in
  match
    String.split_on_char ',' spec
    |> List.filter (fun c -> String.trim c <> "")
    |> List.map clause
  with
  | failures -> Ok failures
  | exception Failure m -> Error m

let cluster_run_cmd =
  let replicas =
    Arg.(value & opt int 3
         & info [ "replicas" ] ~doc:"Number of replica servers.")
  in
  let vnodes =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~doc:"Ring points per replica.")
  in
  let n_arg =
    Arg.(value & opt int 200
         & info [ "requests"; "n" ] ~doc:"Workload size (generated).")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Workload generator seed.")
  in
  let sim_seed =
    Arg.(value & opt int 42
         & info [ "sim-seed" ]
             ~doc:"Simulator seed (timing draws and message drops).")
  in
  let file =
    Arg.(value & opt (some file) None
         & info [ "file" ]
             ~doc:"Read request lines from this file ($(b,gp workload \
                   --emit) output) instead of generating a workload.")
  in
  let failures =
    Arg.(value & opt (some string) None
         & info [ "failures" ]
             ~doc:"Failure injection spec: comma-separated clauses \
                   $(b,drop=P), $(b,crash=REPLICA@TIME), \
                   $(b,crash=leader@TIME), \
                   $(b,partition=G1|G2@FROM-UNTIL) with nodes joined by \
                   $(b,+) (node 0 is the router).")
  in
  let round_robin =
    Arg.(value & flag
         & info [ "round-robin" ]
             ~doc:"Route reads round-robin instead of sharding by content \
                   key — the cache-affinity contrast arm.")
  in
  let async =
    Arg.(value & opt (some float) None
         & info [ "async" ]
             ~doc:"Asynchronous timing with this max message delay \
                   (default: synchronous, one time unit per hop).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ]
             ~doc:"Write the run dump (JSONL: header + one record per \
                   completed request) to this file — $(b,gp cluster \
                   audit) input.")
  in
  let do_audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"After the run, replay the workload on one bare server \
                   and diff every response fingerprint.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Collect distributed traces (causal spans on every \
                   wire message) and write the trace dump (JSONL) to \
                   this file — $(b,gp cluster trace) input.")
  in
  let fleet =
    Arg.(value & flag
         & info [ "fleet-metrics" ]
             ~doc:"Collect per-node metric registries and print the \
                   merged cluster-wide fleet report (latency \
                   percentiles, per-shard traffic, hot keys).")
  in
  let run replicas vnodes n seed sim_seed file failures round_robin async
      out do_audit trace_out fleet =
    let open Gp_cluster in
    let failures =
      match failures with
      | None -> []
      | Some spec -> (
        match parse_failure_spec spec with
        | Ok fs -> fs
        | Error m ->
          Fmt.epr "bad --failures: %s@." m;
          exit 2)
    in
    let reqs =
      match file with
      | Some path ->
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map (fun l ->
               match Gp_service.Wire.request_of_line l with
               | Ok (_, req) -> req
               | Error e ->
                 Fmt.epr "%s: bad request line: %s@." path e;
                 exit 2)
        |> Array.of_list
      | None ->
        Gp_service.Workload.generate ~seed ~n () |> Array.of_list
    in
    let config =
      { Cluster.default_config with
        replicas; vnodes; seed = sim_seed; failures;
        affinity = not round_robin;
        timing =
          (match async with
          | None -> Gp_distsim.Engine.Synchronous
          | Some max_delay -> Gp_distsim.Engine.Asynchronous { max_delay });
        trace = trace_out <> None || fleet }
    in
    let r = Cluster.run ~config ~declare_standard:standard_declare reqs in
    Fmt.pr "%a" Cluster.pp_summary r;
    (match out with
    | None -> ()
    | Some path -> write_file path (Cluster.dump r));
    (match trace_out with
    | None -> ()
    | Some path ->
      write_file path (Gp_tracing.Trace_set.(dump (of_result r))));
    if fleet then Fmt.pr "%a" Gp_tracing.Fleet.pp_report r;
    let audit_failed =
      do_audit
      && begin
           let a = Cluster.audit ~declare_standard:standard_declare r in
           Fmt.pr "%a" Cluster.pp_audit a;
           not (Cluster.audit_ok a)
         end
    in
    if r.Cluster.r_completed = Array.length reqs && not audit_failed then 0
    else 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a workload through the simulated cluster and report")
    Term.(const run $ replicas $ vnodes $ n_arg $ seed $ sim_seed $ file
          $ failures $ round_robin $ async $ out $ do_audit $ trace_out
          $ fleet)

let cluster_audit_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP.jsonl")
  in
  let run path =
    let open Gp_cluster in
    let doc = In_channel.with_open_text path In_channel.input_all in
    match Cluster.audit_dump ~declare_standard:standard_declare doc with
    | Error m ->
      Fmt.epr "%s: %s@." path m;
      2
    | Ok a ->
      Fmt.pr "%a" Cluster.pp_audit a;
      if Cluster.audit_ok a then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Re-serve a cluster dump single-node and verify every \
             response fingerprint the cluster returned")
    Term.(const run $ file)

let cluster_trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  let rid =
    Arg.(value & pos 1 (some int) None
         & info [] ~docv:"RID"
             ~doc:"Print this request's assembled journey tree.")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Check every request journey is a well-formed \
                   cross-node tree (single $(b,cluster.request) root, \
                   all parents resolve, causal nesting); exit 1 on any \
                   malformed tree.")
  in
  let chrome =
    Arg.(value & opt (some string) None
         & info [ "chrome" ]
             ~doc:"Export the whole trace set as Chrome/Perfetto JSON \
                   with one process lane per node to this file.")
  in
  let attribution =
    Arg.(value & flag
         & info [ "attribution" ]
             ~doc:"Print the tail-latency attribution: slowest requests \
                   decomposed into queueing/retry/election-stall/service \
                   segments with the dominant cause named.")
  in
  let run path rid validate chrome attribution =
    let open Gp_tracing in
    let doc = In_channel.with_open_text path In_channel.input_all in
    match Trace_set.load doc with
    | Error m ->
      Fmt.epr "%s: %s@." path m;
      2
    | Ok ts ->
      (match chrome with
      | None -> ()
      | Some out ->
        write_file out (Trace_set.to_chrome ts);
        Fmt.pr "wrote %s@." out);
      (match rid with
      | None -> ()
      | Some rid -> (
        match Trace_set.request_journey ts rid with
        | Some j -> Fmt.pr "%a" (Trace_set.pp_journey ts) j
        | None -> Fmt.pr "trace %d: no spans recorded@." rid));
      if attribution then begin
        let sgs = Attribution.of_journeys (Trace_set.journeys ts) in
        Fmt.pr "%a" Attribution.pp_summary (Attribution.summarize sgs);
        Fmt.pr "slowest requests:@.%a" Attribution.pp_table
          (Attribution.slowest sgs)
      end;
      let v = Trace_set.validate ts in
      if validate || (rid = None && chrome = None && not attribution) then
        Fmt.pr "%a" Trace_set.pp_validation v;
      if validate && not (Trace_set.validation_ok v) then 1 else 0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Assemble, inspect, validate and export a cluster trace dump \
             ($(b,gp cluster run --trace) output)")
    Term.(const run $ file $ rid $ validate $ chrome $ attribution)

let cluster_cmd =
  Cmd.group
    (Cmd.info "cluster"
       ~doc:"Deterministically simulated sharded/replicated serving \
             cluster: sharded reads, leader-replicated writes, failover, \
             retries, distributed tracing, and a single-node consistency \
             audit")
    [ cluster_run_cmd; cluster_audit_cmd; cluster_trace_cmd ]

(* ------------------------------------------------------------------ *)
(* gp scenario                                                         *)
(* ------------------------------------------------------------------ *)

let scenario_list_cmd =
  let run () =
    List.iter
      (fun s ->
        Fmt.pr "%-14s %s@." (Gp_scenario.Scenario.name s)
          (Gp_scenario.Scenario.summary s))
      Gp_scenario.Scenario.catalog;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the scenario catalog")
    Term.(const run $ const ())

let scenario_run_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"Catalog scenario to run (see $(b,gp scenario list)).")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Run every catalog scenario in order.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Smoke mode: ~8x smaller workloads, same shape and \
                   checks.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed.")
  in
  let do_audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Replay every served answer on a single node and diff \
                   response fingerprints; shed verdicts are excluded by \
                   construction.")
  in
  let run name all quick seed do_audit =
    let open Gp_scenario in
    let targets =
      match (name, all) with
      | None, true -> Ok Scenario.catalog
      | Some n, false -> (
        match Scenario.find n with
        | Some s -> Ok [ s ]
        | None -> Error (Printf.sprintf "unknown scenario %S" n))
      | Some _, true -> Error "give a NAME or --all, not both"
      | None, false -> Error "which scenario? give a NAME or --all"
    in
    match targets with
    | Error m ->
      Fmt.epr "%s@." m;
      2
    | Ok targets ->
      let failed = ref 0 in
      List.iter
        (fun s ->
          let o =
            Scenario.run ~quick ~seed ~audit:do_audit
              ~declare_standard:standard_declare s
          in
          Fmt.pr "%a" Scenario.pp_outcome o;
          if not (Scenario.ok o) then incr failed)
        targets;
      if !failed > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run catalog scenarios and report; exit 1 on any violated \
             expectation")
    Term.(const run $ name_arg $ all $ quick $ seed $ do_audit)

let scenario_cmd =
  Cmd.group
    (Cmd.info "scenario"
       ~doc:"Elastic cluster scenarios: open-loop arrivals, hot-key \
             mitigation, load shedding, elastic membership, multi-tenant \
             fairness — each a deterministic simulated experiment with \
             declared expectations")
    [ scenario_list_cmd; scenario_run_cmd ]

(* ------------------------------------------------------------------ *)
(* gp structla                                                         *)
(* ------------------------------------------------------------------ *)

let structla_cmd =
  let n_arg = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Matrix order.") in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let run n seed =
    if n < 1 then begin
      Fmt.epr "bad --n: %d@." n;
      exit 2
    end;
    let open Gp_structla in
    let reg = standard_registry () in
    let sel = Select.create () in
    Fmt.pr
      "structure-aware dispatch at n=%d seed=%d (exact step counts vs \
       forced dense)@.@."
      n seed;
    Fmt.pr "%-10s %-10s %-18s %10s %10s %8s@." "structure" "detected"
      "matvec kernel" "steps" "dense" "speedup";
    let ok = ref true in
    List.iter
      (fun structure ->
        match Mat.generate_dense ~structure ~n ~seed with
        | None -> ok := false
        | Some d -> (
          let m = Detect.classify d in
          let x = Mat.generate_vec ~n ~seed in
          match Select.matvec reg sel m x with
          | Error e ->
            ok := false;
            Fmt.pr "%-10s resolution failed: %s@." structure e
          | Ok (kernel, y) ->
            if not (Mat.vec_close y (Kernels.matvec_reference d x)) then begin
              ok := false;
              Fmt.pr "%-10s MISMATCH vs dense oracle@." structure
            end
            else begin
              let steps = Kernels.matvec_steps m in
              let dense = Kernels.matvec_steps (Mat.Dense d) in
              Fmt.pr "%-10s %-10s %-18s %10d %10d %7.1fx@." structure
                (Mat.structure_name m) kernel steps dense
                (float_of_int dense /. float_of_int steps)
            end))
      Mat.structure_names;
    Fmt.pr "@.matmul / solve selections (most refined guard wins):@.";
    List.iter
      (fun structure ->
        match Mat.generate_dense ~structure ~n ~seed with
        | None -> ()
        | Some d ->
          let m = Detect.classify d in
          let show op =
            match Select.resolve reg sel op m with
            | Gp_concepts.Overload.Selected (c, _) ->
              c.Gp_concepts.Overload.cand_name
            | _ ->
              ok := false;
              "<unresolved>"
          in
          Fmt.pr "  %-10s matmul -> %-16s solve -> %s@." structure
            (show Select.Matmul) (show Select.Solve))
      Mat.structure_names;
    if !ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "structla"
       ~doc:"Demonstrate structure detection and concept-guided kernel \
             selection on deterministically generated matrices")
    Term.(const run $ n_arg $ seed)

(* ------------------------------------------------------------------ *)
(* gp complexity                                                       *)
(* ------------------------------------------------------------------ *)

(* Sweep the registered-operation catalog over the size ladder, fit
   growth models to the exact step/message counts, and compare each
   best fit against the declared Complexity bound. Exit 1 when any
   verdict differs from its expectation — a genuine operation flagged
   as violating, or the planted oracle slipping through. *)
let complexity_cmd =
  let ops_arg =
    Arg.(value & opt_all string []
         & info [ "op" ] ~docv:"NAME"
             ~doc:"Only sweep the named operation(s); repeatable.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Emit the fitted-exponent/residual gauges as a Prometheus \
                   exposition on stdout.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Skip the wall-clock probes. The gated numbers — step \
                   counts and fits — are exact either way; quick only \
                   nulls the advisory wall column.")
  in
  let run only json prometheus quick =
    let open Gp_complexity_obs in
    let catalog = Catalog.ops () in
    let selected =
      if only = [] then catalog
      else begin
        List.iter
          (fun name ->
            if
              not
                (List.exists
                   (fun o -> String.equal o.Sweep.op_name name)
                   catalog)
            then Fmt.epr "unknown operation %S (run without --op for names)@." name)
          only;
        List.filter (fun o -> List.mem o.Sweep.op_name only) catalog
      end
    in
    if selected = [] then begin
      Fmt.epr "no operations selected@.";
      2
    end
    else begin
      let entries =
        List.map
          (fun op -> Report.analyze (Sweep.run ~wall:(not quick) op))
          selected
      in
      if json then print_string (Report.to_json entries)
      else if prometheus then begin
        let metrics = Gp_telemetry.Metrics.create () in
        Report.export_metrics metrics entries;
        print_string (Gp_telemetry.Metrics.to_prometheus metrics)
      end
      else Report.table Fmt.stdout entries;
      if Report.ok entries then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "complexity"
       ~doc:"Empirically verify declared complexity bounds: sweep registered \
             operations across a size ladder, fit growth models to exact \
             step counts, and flag implementations growing faster than their \
             declared O-bound")
    Term.(const run $ ops_arg $ json $ prometheus $ quick)

(* ------------------------------------------------------------------ *)
(* gp bench-diff                                                       *)
(* ------------------------------------------------------------------ *)

(* The perf-regression guard over two `bench --json` result files.
   Metric names carry their own direction: the _speedup suffix is
   higher-better as a ratio, _pct is lower-better in additive percentage
   points, _bytes_per_request and _minor_words are lower-better as
   ratios (allocation counts — deterministic, so regressions here are
   real even under --quick quotas), _fitted_degree must match exactly
   (a fitted complexity class has no tolerance: growing from O(n) to
   O(n log n) is the regression s8 exists to catch — and an improvement
   means the declared bound should be tightened, deliberately),
   _residual is lower-better with additive tolerance (fit quality in
   log space, where 0 is exact), and everything else — the _ns times —
   is lower-better as a ratio. *)
let bench_diff_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let tolerance =
    Arg.(value & opt float 0.25
         & info [ "tolerance" ]
             ~doc:"Allowed relative slack per metric (default 0.25 = 25%; \
                   for *_pct metrics, 100x this in additive points). Bench \
                   numbers are noisy; keep this generous.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Smoke mode: report regressions but exit 0 anyway — for \
                   CI runs comparing against freshly regenerated \
                   $(b,--quick) bench numbers, whose short quotas are too \
                   noisy to gate on.")
  in
  let run old_path new_path tolerance quick =
    let open Gp_service in
    let load path =
      match
        Wire.parse (In_channel.with_open_text path In_channel.input_all)
      with
      | exception Sys_error m -> Error m
      | exception Wire.Error m -> Error (path ^ ": " ^ m)
      | Wire.Obj fields -> (
        match List.assoc_opt "sections" fields with
        | Some (Wire.Obj sections) -> Ok sections
        | _ -> Error (path ^ ": no \"sections\" object"))
      | _ -> Error (path ^ ": expected a JSON object")
    in
    let num = function
      | Wire.Int i -> Some (float_of_int i)
      | Wire.Float x when not (Float.is_nan x) -> Some x
      | _ -> None (* null = not measured in that run: skip *)
    in
    let ends_with suffix s =
      String.length s >= String.length suffix
      && String.sub s (String.length s - String.length suffix)
           (String.length suffix)
         = suffix
    in
    match (load old_path, load new_path) with
    | Error m, _ | _, Error m ->
      Fmt.epr "%s@." m;
      2
    | Ok old_sections, Ok new_sections ->
      let compared = ref 0 in
      let regressions = ref 0 in
      List.iter
        (fun (sec, metrics) ->
          match (metrics, List.assoc_opt sec old_sections) with
          | Wire.Obj metrics, Some (Wire.Obj old_metrics) ->
            List.iter
              (fun (name, v) ->
                match
                  (num v, Option.bind (List.assoc_opt name old_metrics) num)
                with
                | Some nv, Some ov ->
                  incr compared;
                  let regressed, msg =
                    if ends_with "_speedup" name then
                      ( nv < ov *. (1.0 -. tolerance),
                        Printf.sprintf "%.2fx -> %.2fx" ov nv )
                    else if ends_with "_fitted_degree" name then
                      ( nv <> ov,
                        Printf.sprintf "degree %.1f -> %.1f" ov nv )
                    else if ends_with "_residual" name then
                      ( nv > ov +. tolerance,
                        Printf.sprintf "%.3f -> %.3f" ov nv )
                    else if ends_with "_pct" name then
                      ( nv > ov +. (tolerance *. 100.0),
                        Printf.sprintf "%.2f%% -> %.2f%%" ov nv )
                    else if ends_with "_shed_ratio" name then
                      (* shed fractions live in [0,1] and are often 0:
                         additive slack, so a zero baseline never turns
                         into a divide-amplified gate *)
                      ( nv > ov +. tolerance,
                        Printf.sprintf "%.3f -> %.3f" ov nv )
                    else if ends_with "_moved_keys" name then
                      (* deterministic movement counts, lower-better;
                         +1 smoothing so a zero baseline doesn't gate on
                         a single moved key *)
                      ( nv > (ov +. 1.0) *. (1.0 +. tolerance),
                        Printf.sprintf "%.0f -> %.0f" ov nv )
                    else if
                      ends_with "_bytes_per_request" name
                      || ends_with "_minor_words" name
                    then
                      (* allocation counters: lower-better, and unlike
                         the _ns times they don't depend on quotas or
                         machine load, so they gate even in CI *)
                      ( nv > ov *. (1.0 +. tolerance),
                        Printf.sprintf "%.1f -> %.1f" ov nv )
                    else
                      ( nv > ov *. (1.0 +. tolerance),
                        Printf.sprintf "%.0f -> %.0f" ov nv )
                  in
                  if regressed then begin
                    incr regressions;
                    Fmt.pr "REGRESSION %s/%s: %s@." sec name msg
                  end
                | _ -> () (* null or missing on either side: skip *))
              metrics
          | _ -> () (* section absent from the old run: skip *))
        new_sections;
      if !compared = 0 then begin
        Fmt.epr "no comparable metrics between %s and %s@." old_path new_path;
        2
      end
      else begin
        Fmt.pr "bench-diff: %d metric(s) compared, %d regression(s) \
                (tolerance %.0f%%)%s@."
          !compared !regressions (tolerance *. 100.0)
          (if quick && !regressions > 0 then " [quick: not gating]" else "");
        if !regressions > 0 && not quick then 1 else 0
      end
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench --json result files and fail (exit 1) on \
             per-metric perf regressions beyond the tolerance")
    Term.(const run $ old_arg $ new_arg $ tolerance $ quick)

let () =
  let doc = "generic programming and high-performance libraries, reproduced" in
  let info = Cmd.info "gp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; parse_cmd; concepts_cmd; lint_cmd; optimize_cmd;
            prove_cmd; elect_cmd; taxonomy_cmd; structla_cmd; serve_cmd;
            workload_cmd; trace_cmd; replay_cmd; cluster_cmd; scenario_cmd;
            complexity_cmd; bench_diff_cmd ]))
