(* Tests for the serving layer: LRU memo caches, budgets, the wire
   codec, the robustness corpus (malformed input never kills the
   server), cache transparency, workload determinism, and the
   propagation-closure refactor that makes closures memoisable. *)

open Gp_service

let qtest = QCheck_alcotest.to_alcotest

let declare_standard reg =
  Gp_algebra.Decls.declare reg;
  Gp_sequence.Decls.declare reg;
  Gp_graph.Decls.declare reg;
  Gp_linalg.Decls.declare reg;
  Gp_structla.Decls.declare reg

let mkserver ?config () = Server.create ?config ~declare_standard ()

let code_name rsp =
  match rsp.Request.rsp_result with
  | Ok _ -> "ok"
  | Error e -> Request.error_code_name e.Request.code

let check_code name expected rsp =
  Alcotest.(check string) name (Request.error_code_name expected) (code_name rsp)

(* A request cheap enough to fit even a 10-step budget. *)
let good_request = Request.Parse { source = "type smoke_t { }\n" }

let assert_alive server =
  Alcotest.(check bool) "server still serves" true
    (Request.ok (Server.handle server good_request))

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 "t" in
  Alcotest.(check (option int)) "miss" None (Lru.find c "a");
  Lru.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find c "a");
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* a was MRU after the hit, then b, c arrived: a is the LRU victim *)
  Alcotest.(check (option int)) "evicted" None (Lru.find c "a");
  Alcotest.(check (option int)) "survivor" (Some 3) (Lru.find c "c");
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 2 s.Lru.st_hits;
  Alcotest.(check int) "misses" 2 s.Lru.st_misses;
  Alcotest.(check int) "evictions" 1 s.Lru.st_evictions;
  Alcotest.(check int) "size" 2 s.Lru.st_size;
  Lru.add c "b" 20;
  Alcotest.(check (option int)) "replace keeps size" (Some 20) (Lru.find c "b");
  Alcotest.(check int) "no growth on replace" 2 (Lru.size c)

let test_lru_recency () =
  let c = Lru.create ~capacity:3 "t" in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  Alcotest.(check (list string)) "mru first" [ "c"; "b"; "a" ]
    (Lru.keys_mru_first c);
  ignore (Lru.find c "a");
  Alcotest.(check (list string)) "hit refreshes" [ "a"; "c"; "b" ]
    (Lru.keys_mru_first c);
  Alcotest.(check bool) "mem is pure" true (Lru.mem c "b");
  Alcotest.(check (list string)) "mem does not refresh" [ "a"; "c"; "b" ]
    (Lru.keys_mru_first c);
  Lru.add c "d" 4;
  Alcotest.(check (list string)) "evicts the lru" [ "d"; "a"; "c" ]
    (Lru.keys_mru_first c)

let test_lru_find_or_compute () =
  let c = Lru.create ~capacity:4 "t" in
  let calls = ref 0 in
  let f () = incr calls; 42 in
  let v, hit = Lru.find_or_compute c ~enabled:true "k" f in
  Alcotest.(check int) "computed" 42 v;
  Alcotest.(check bool) "first is a miss" false hit;
  let v, hit = Lru.find_or_compute c ~enabled:true "k" f in
  Alcotest.(check int) "memoised" 42 v;
  Alcotest.(check bool) "second is a hit" true hit;
  Alcotest.(check int) "computed once" 1 !calls;
  (* disabled: total bypass — no entries, no stats *)
  let c2 = Lru.create ~capacity:4 "t2" in
  let _ = Lru.find_or_compute c2 ~enabled:false "k" f in
  let _ = Lru.find_or_compute c2 ~enabled:false "k" f in
  Alcotest.(check int) "recomputed each time" 3 !calls;
  let s = Lru.stats c2 in
  Alcotest.(check int) "bypass: no hits" 0 s.Lru.st_hits;
  Alcotest.(check int) "bypass: no misses" 0 s.Lru.st_misses;
  Alcotest.(check int) "bypass: empty" 0 s.Lru.st_size

let test_lru_invalid_capacity () =
  match Lru.create ~capacity:0 "bad" with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* The recency contract, against a reference model: an assoc list kept
   in MRU order, truncated to capacity. *)
let lru_model_prop =
  QCheck.Test.make ~name:"lru matches the reference model" ~count:300
    QCheck.(pair (int_range 1 5) (small_list (pair bool (int_range 0 8))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap "model" in
      let model = ref [] in
      List.iter
        (fun (is_add, k) ->
          let key = string_of_int k in
          if is_add then begin
            Lru.add c key k;
            model := (key, k) :: List.remove_assoc key !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model
          end
          else begin
            let expect = List.assoc_opt key !model in
            let got = Lru.find c key in
            if got <> expect then
              QCheck.Test.fail_reportf "find %S: got %s, model says %s" key
                (match got with Some v -> string_of_int v | None -> "none")
                (match expect with Some v -> string_of_int v | None -> "none");
            match expect with
            | Some v -> model := (key, v) :: List.remove_assoc key !model
            | None -> ()
          end)
        ops;
      Lru.keys_mru_first c = List.map fst !model)

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_steps () =
  let b = Budget.create ~max_steps:10 ~now:(fun () -> 0.0) () in
  Budget.spend b 4;
  Budget.spend b 6;
  Alcotest.(check int) "used" 10 (Budget.used b);
  Alcotest.(check int) "remaining" 0 (Budget.remaining b);
  Alcotest.check_raises "11th step trips"
    (Budget.Exhausted Budget.Steps)
    (fun () -> Budget.spend b 1)

let test_budget_unlimited () =
  let b = Budget.create ~now:(fun () -> 0.0) () in
  Budget.spend b 1_000_000;
  Alcotest.(check int) "used tracks anyway" 1_000_000 (Budget.used b)

let test_budget_deadline () =
  let clock = ref 0.0 in
  let b = Budget.create ~deadline:5.0 ~now:(fun () -> !clock) () in
  Budget.spend b 1;
  Budget.check_deadline b;
  clock := 6.0;
  Alcotest.check_raises "spend checks the clock"
    (Budget.Exhausted Budget.Deadline)
    (fun () -> Budget.spend b 1);
  Alcotest.check_raises "explicit check too"
    (Budget.Exhausted Budget.Deadline)
    (fun () -> Budget.check_deadline b)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)
(* ------------------------------------------------------------------ *)

let test_wire_json_roundtrip () =
  let v =
    Wire.Obj
      [ ("a", Wire.Arr [ Wire.Int 1; Wire.Float 2.5; Wire.Null ]);
        ("s", Wire.Str "a\"b\\c\nd\ttab");
        ("t", Wire.Bool true); ("f", Wire.Bool false) ]
  in
  Alcotest.(check bool) "parse inverts to_string" true
    (Wire.parse (Wire.to_string v) = v);
  Alcotest.(check bool) "unicode escape" true
    (Wire.parse "\"\\u0041\"" = Wire.Str "A")

let request_samples =
  [ Request.Check
      { concept = "Container"; types = [ "vector<int>" ]; nominal = false;
        defs = None };
    Request.Check
      { concept = "W1"; types = [ "w1" ]; nominal = true;
        defs = Some "concept W1<T> { }\n" };
    Request.Parse { source = "type t { }\n" };
    Request.Lint { source = "{ int x; }" };
    Request.Optimize { expr = "x * 1 + 0"; certified_only = true };
    Request.Prove { theory = "group"; instance = Some "int[+]" };
    Request.Prove { theory = "swo"; instance = None };
    Request.Closure { concept = "IncidenceGraph"; types = [ "adjacency_list" ] };
    Request.Matvec { structure = "diagonal"; n = 32; seed = 1 };
    Request.Matmul { structure = "banded"; n = 16; seed = 0 };
    Request.Solve { structure = "triangular"; n = 24; seed = 3 }
  ]

let test_wire_request_roundtrip () =
  List.iter
    (fun r ->
      let line = Wire.request_to_line ~id:7 r in
      match Wire.request_of_line line with
      | Ok (Some 7, r') ->
        Alcotest.(check bool) ("roundtrip: " ^ Request.key r) true (r = r')
      | Ok (_, _) -> Alcotest.failf "id lost on %s" (Request.key r)
      | Error e -> Alcotest.failf "%s failed to decode: %s" (Request.key r) e)
    request_samples;
  match Wire.request_of_line (Wire.request_to_line (List.hd request_samples)) with
  | Ok (None, _) -> ()
  | Ok (Some _, _) -> Alcotest.fail "id invented from nowhere"
  | Error e -> Alcotest.fail e

let test_wire_bad_lines () =
  let expect_err line =
    match Wire.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "line %S should not decode" line
  in
  List.iter expect_err
    [ "{"; "[1,2]"; "null"; {|{"kind":"frobnicate"}|}; {|{"kind":42}|};
      {|{"kind":"check"}|}; {|{"kind":"prove"}|}; {|{"id":"x","kind":"lint"}|} ]

let test_wire_response_encodes () =
  let server = mkserver () in
  let rsp = Server.handle server good_request in
  match Wire.parse (Wire.response_to_line rsp) with
  | Wire.Obj fields ->
    Alcotest.(check bool) "has status" true (List.mem_assoc "status" fields);
    Alcotest.(check bool) "has id" true (List.mem_assoc "id" fields)
  | _ -> Alcotest.fail "response line is not an object"

(* Hardening: duplicate keys and trailing garbage are rejected with the
   exact positioned messages below — pinned so the direct parser and the
   AST oracle can never drift apart silently. *)
let test_wire_hardening () =
  let expect_parse_error src msg =
    match Wire.parse src with
    | exception Wire.Error m -> Alcotest.(check string) src msg m
    | _ -> Alcotest.failf "%S should not parse" src
  in
  expect_parse_error {|{"a":1,"a":2}|} {|at 7: duplicate key "a" in object|};
  expect_parse_error {|{"a":1} x|} "at 8: trailing x after value";
  expect_parse_error {|[1,2]]|} "at 5: trailing ] after value";
  let expect_line_error line msg =
    match Wire.request_of_line line with
    | Error m -> Alcotest.(check string) line msg m
    | Ok _ -> Alcotest.failf "line %S should not decode" line
  in
  expect_line_error {|{"kind":"parse","kind":"lint","source":"s"}|}
    {|bad request line: at 16: duplicate key "kind" in object|};
  expect_line_error {|{"kind":"parse","source":"s"}!|}
    "bad request line: at 29: trailing ! after value";
  expect_line_error {|{"kind":"lint"}|} {|bad request: missing field "source"|};
  (* trailing whitespace is not garbage *)
  match Wire.request_of_line ({|{"kind":"parse","source":"s"}|} ^ "  ") with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "trailing blanks rejected: %s" m

(* The direct cursor parser and the AST oracle must agree byte-for-byte
   on every outcome — acceptances and rejection messages alike. *)
let test_wire_parser_agreement () =
  let corpus =
    [ "{"; "[1,2]"; "null"; "true"; "42"; {|"str"|};
      {|{"kind":"frobnicate"}|}; {|{"kind":42}|}; {|{"kind":"check"}|};
      {|{"kind":"check","concept":"C"}|};
      {|{"kind":"check","concept":"C","types":"not-a-list"}|};
      {|{"kind":"check","concept":"C","types":[1]}|};
      {|{"kind":"prove"}|}; {|{"id":"x","kind":"lint","source":"s"}|};
      {|{"kind":"parse","kind":"lint","source":"s"}|};
      {|{"kind":"parse","source":"s"}!|};
      {|{"kind":"parse","source":"s"}   |};
      {|{"kind":"optimize","expr":"x","certified_only":"yes"}|};
      {|{"kind":"matvec","structure":"diagonal","n":"big","seed":0}|};
      {|{"kind":"solve","structure":"banded","n":8,"seed":1}|} ]
  in
  let show = function
    | Ok (id, r) ->
      Printf.sprintf "Ok %s %s"
        (match id with Some i -> string_of_int i | None -> "-")
        (Request.key r)
    | Error m -> "Error " ^ m
  in
  List.iter
    (fun line ->
      Alcotest.(check string) line
        (show (Wire.request_of_line_ast line))
        (show (Wire.request_of_line line)))
    corpus

(* Generators for the wire qcheck properties: strings lean printable but
   include quotes, backslashes, control bytes and high bytes so the
   escape paths of both parsers get exercised. *)
let gen_request =
  let open QCheck.Gen in
  let byte lo hi = map Char.chr (int_range lo hi) in
  let wild_char =
    frequency
      [ (8, byte 97 122);
        (2, oneofl [ '"'; '\\'; '\n'; '\t'; '\r'; ' '; '{'; '}'; ':' ]);
        (1, byte 0 31); (1, byte 128 255) ]
  in
  let str = string_size ~gen:wild_char (int_bound 12) in
  let strs = list_size (int_bound 3) str in
  let numeric mk =
    map
      (fun ((structure, n), seed) -> mk structure n seed)
      (pair (pair str (int_range (-4) 64)) (int_range (-3) 1000))
  in
  oneof
    [ map
        (fun ((concept, types), (nominal, defs)) ->
          Request.Check { concept; types; nominal; defs })
        (pair (pair str strs) (pair bool (opt str)));
      map (fun source -> Request.Parse { source }) str;
      map (fun source -> Request.Lint { source }) str;
      map2
        (fun expr certified_only -> Request.Optimize { expr; certified_only })
        str bool;
      map2
        (fun theory instance -> Request.Prove { theory; instance })
        str (opt str);
      map2 (fun concept types -> Request.Closure { concept; types }) str strs;
      numeric (fun structure n seed -> Request.Matvec { structure; n; seed });
      numeric (fun structure n seed -> Request.Matmul { structure; n; seed });
      numeric (fun structure n seed -> Request.Solve { structure; n; seed }) ]

let wire_roundtrip_prop =
  QCheck.Test.make ~name:"parse (render r) = r for both parsers" ~count:500
    (QCheck.make
       ~print:(fun (id, r) -> Wire.request_to_line ?id r)
       QCheck.Gen.(pair (opt small_nat) gen_request))
    (fun (id, r) ->
      let line = Wire.request_to_line ?id r in
      match (Wire.request_of_line line, Wire.request_of_line_ast line) with
      | Ok (id1, r1), Ok (id2, r2) ->
        if not (id1 = id && r1 = r) then
          QCheck.Test.fail_reportf "direct parse drifted on %s" line;
        if not (id2 = id && r2 = r) then
          QCheck.Test.fail_reportf "ast parse drifted on %s" line;
        true
      | Error m, _ -> QCheck.Test.fail_reportf "direct rejected %s: %s" line m
      | _, Error m -> QCheck.Test.fail_reportf "ast rejected %s: %s" line m)

let gen_response =
  let open QCheck.Gen in
  let byte lo hi = map Char.chr (int_range lo hi) in
  let wild_char =
    frequency
      [ (8, byte 97 122);
        (2, oneofl [ '"'; '\\'; '\n'; '\t'; '\r'; ' ' ]);
        (1, byte 0 31); (1, byte 128 255) ]
  in
  let str = string_size ~gen:wild_char (int_bound 12) in
  let strs = list_size (int_bound 3) str in
  let payload =
    oneof
      [ map
          (fun ((ok, failures), (warnings, report)) ->
            Request.Checked { ok; failures; warnings; report })
          (pair (pair bool small_nat) (pair small_nat str));
        map
          (fun ((items, concepts), models) ->
            Request.Parsed { items; concepts; models })
          (pair (pair small_nat small_nat) small_nat);
        map
          (fun ((errors, warnings), (suggestions, messages)) ->
            Request.Linted { errors; warnings; suggestions; messages })
          (pair (pair small_nat small_nat) (pair small_nat strs));
        map
          (fun ((output, steps), (ops_before, ops_after)) ->
            Request.Optimized { output; steps; ops_before; ops_after })
          (pair (pair str small_nat) (pair small_nat small_nat));
        map2 (fun checked failed -> Request.Proved { checked; failed })
          small_nat small_nat;
        map2
          (fun size obligations -> Request.Closed { size; obligations })
          small_nat strs;
        map
          (fun (((kernel, detected), (n, steps)), checksum) ->
            Request.Computed { kernel; detected; n; steps; checksum })
          (pair (pair (pair str str) (pair small_nat small_nat)) str) ]
  in
  let error =
    map2
      (fun code detail -> { Request.code; detail })
      (oneofl
         Request.[ Bad_request; Parse_failure; Unknown_name; Over_budget;
                   Timeout; Queue_full; Internal ])
      str
  in
  let result =
    frequency [ (3, map Result.ok payload); (1, map Result.error error) ]
  in
  map
    (fun (((id, kind), result), (cached, steps)) ->
      { Request.rsp_id = id; rsp_kind = kind; rsp_result = result;
        rsp_cached = cached; rsp_steps = steps })
    (pair
       (pair (pair small_nat (opt (oneofl Request.all_kinds))) result)
       (pair bool small_nat))

(* Streaming digest ≡ materialize-then-digest, the renderer ≡ its AST
   oracle, and the fingerprint ignores provenance (id, cache-hit flag,
   step count) exactly as [result_equal] does. *)
let wire_response_stream_prop =
  QCheck.Test.make
    ~name:"streaming fingerprint and renderer match the materialized forms"
    ~count:500
    (QCheck.make
       ~print:(fun r -> Request.response_canonical r)
       gen_response)
    (fun r ->
      let canonical = Request.response_canonical r in
      if
        Request.response_fingerprint r
        <> Digest.to_hex (Digest.string canonical)
      then QCheck.Test.fail_reportf "streaming digest diverged on %s" canonical;
      if Wire.response_to_line r <> Wire.response_to_line_ast r then
        QCheck.Test.fail_reportf "renderers diverged on %s" canonical;
      let stripped =
        { r with
          Request.rsp_id = r.Request.rsp_id + 17;
          rsp_cached = not r.Request.rsp_cached;
          rsp_steps = r.Request.rsp_steps + 5 }
      in
      if
        Request.response_fingerprint stripped
        <> Request.response_fingerprint r
      then
        QCheck.Test.fail_reportf "fingerprint leaks provenance on %s" canonical;
      true)

(* ------------------------------------------------------------------ *)
(* Robustness: the malformed-request corpus                            *)
(* ------------------------------------------------------------------ *)

(* One long-lived server takes the whole corpus; after every abuse it
   must still serve a good request. *)
let test_malformed_corpus () =
  let server = mkserver () in
  (match Server.serve_line server "{ not json" with
  | Some rsp ->
    check_code "garbage line" Request.Bad_request rsp;
    Alcotest.(check bool) "no kind on a garbage line" true
      (rsp.Request.rsp_kind = None)
  | None -> Alcotest.fail "garbage line must get a response");
  assert_alive server;
  (match Server.serve_line server {|{"kind":"frobnicate"}|} with
  | Some rsp -> check_code "unknown kind" Request.Bad_request rsp
  | None -> Alcotest.fail "unknown kind must get a response");
  Alcotest.(check bool) "blank line skipped" true
    (Server.serve_line server "   " = None);
  check_code "bad .gpc" Request.Parse_failure
    (Server.handle server (Request.Parse { source = "concept ??? {" }));
  assert_alive server;
  check_code "bad sandbox defs" Request.Parse_failure
    (Server.handle server
       (Request.Check
          { concept = "C"; types = [ "t" ]; nominal = false;
            defs = Some "concept ??? {" }));
  check_code "unparseable lint program" Request.Parse_failure
    (Server.handle server (Request.Lint { source = "int x = @@garbage;;" }));
  check_code "bad optimize expr" Request.Parse_failure
    (Server.handle server
       (Request.Optimize { expr = "x * * 1"; certified_only = false }));
  check_code "unknown concept" Request.Unknown_name
    (Server.handle server
       (Request.Closure { concept = "NoSuchConcept"; types = [ "int" ] }));
  check_code "unknown theory" Request.Unknown_name
    (Server.handle server (Request.Prove { theory = "astrology"; instance = None }));
  check_code "unknown instance" Request.Unknown_name
    (Server.handle server
       (Request.Prove { theory = "group"; instance = Some "quaternion[?]" }));
  assert_alive server

(* gp serve --stats-json ships GC counter totals next to the request
   metrics, so a stats scrape shows allocation trends. *)
let test_report_json_gc () =
  let server = mkserver () in
  ignore (Server.handle server good_request);
  let report = Server.report_json server in
  Alcotest.(check bool) "report has a gc object" true
    (contains report {|"gc"|});
  Alcotest.(check bool) "gc object has minor_words" true
    (contains report {|"minor_words"|});
  match Wire.parse report with
  | Wire.Obj fields -> (
    match List.assoc_opt "gc" fields with
    | Some (Wire.Obj gc) ->
      Alcotest.(check bool) "allocated_bytes present" true
        (List.mem_assoc "allocated_bytes" gc)
    | _ -> Alcotest.fail "\"gc\" is not an object")
  | _ -> Alcotest.fail "report_json is not an object"

let test_over_budget () =
  let config =
    { Server.default_config with max_steps = 10; caching = false }
  in
  let server = mkserver ~config () in
  (* proof checking charges 25 steps per theorem: deterministic trip *)
  check_code "prove trips the step budget" Request.Over_budget
    (Server.handle server (Request.Prove { theory = "swo"; instance = None }));
  assert_alive server

let test_timeout () =
  let clock = ref 0.0 in
  let ticking = ref true in
  let now () =
    if !ticking then clock := !clock +. 1.0;
    !clock
  in
  let config =
    { Server.default_config with timeout = Some 0.5; caching = false; now }
  in
  let server = mkserver ~config () in
  check_code "fake clock trips the deadline" Request.Timeout
    (Server.handle server
       (Request.Prove { theory = "swo"; instance = Some "int_lt" }));
  (* freeze the clock: the same server recovers *)
  ticking := false;
  assert_alive server

let test_queue_full () =
  let config = { Server.default_config with queue_capacity = 2 } in
  let server = mkserver ~config () in
  let rsps = Server.process_burst server (List.init 5 (fun _ -> good_request)) in
  Alcotest.(check int) "every request answered" 5 (List.length rsps);
  Alcotest.(check int) "queue capacity admitted" 2
    (List.length (List.filter Request.ok rsps));
  List.iteri
    (fun i rsp ->
      if i >= 2 then
        check_code (Printf.sprintf "overflow %d rejected" i) Request.Queue_full
          rsp)
    rsps;
  (* the steady-state driver drains instead of dropping *)
  let rsps = Server.process server (List.init 7 (fun _ -> good_request)) in
  Alcotest.(check int) "process serves everything" 7
    (List.length (List.filter Request.ok rsps));
  assert_alive server

let test_metrics_accounting () =
  let server = mkserver () in
  ignore (Server.handle server good_request);
  ignore (Server.handle server good_request);
  ignore
    (Server.handle server (Request.Prove { theory = "astrology"; instance = None }));
  Alcotest.(check int) "requests counted" 3 (Metrics.requests (Server.metrics server));
  Alcotest.(check int) "errors counted" 1 (Metrics.errors (Server.metrics server));
  let report = Server.report server in
  Alcotest.(check bool) "report names the kind" true (contains report "parse");
  Alcotest.(check bool) "report names the error code" true
    (contains report "unknown-name");
  Alcotest.(check bool) "report includes cache tables" true
    (contains report "caches")

(* ------------------------------------------------------------------ *)
(* Cache transparency                                                  *)
(* ------------------------------------------------------------------ *)

(* Caching must be observationally invisible: the same stream against a
   caching server (twice — the second pass is all-warm), and against a
   cache-free server, yields result-equal responses. *)
let transparency_prop =
  QCheck.Test.make ~name:"caching on = caching off = warm replay" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let reqs = Workload.generate ~seed ~n:25 () in
      let cached = mkserver () in
      let plain =
        mkserver ~config:{ Server.default_config with caching = false } ()
      in
      let cold = List.map (Server.handle cached) reqs in
      let warm = List.map (Server.handle cached) reqs in
      let direct = List.map (Server.handle plain) reqs in
      List.exists (fun r -> r.Request.rsp_cached) warm
      && List.for_all2 Request.result_equal cold warm
      && List.for_all2 Request.result_equal cold direct)

(* The service answers exactly what the libraries answer directly. *)
let test_direct_library_equivalence () =
  let server = mkserver () in
  let reg = Gp_concepts.Registry.create () in
  declare_standard reg;
  List.iter
    (fun (concept, types) ->
      let rsp = Server.handle server (Request.Closure { concept; types }) in
      let args = List.map (fun x -> Gp_concepts.Ctype.Named x) types in
      let direct = Gp_concepts.Propagate.closure reg concept args in
      match rsp.Request.rsp_result with
      | Ok (Request.Closed { size; obligations }) ->
        Alcotest.(check int) (concept ^ ": closure size") (List.length direct)
          size;
        Alcotest.(check int) (concept ^ ": obligations listed") size
          (List.length obligations)
      | _ -> Alcotest.failf "closure %s did not succeed" concept)
    [ ("IncidenceGraph", [ "adjacency_list" ]);
      ("Container", [ "vector<int>" ]) ];
  let source =
    Gp_stllint.Render.to_source
      (Gp_stllint.Corpus.generate ~blocks:2 ~buggy_every:2)
  in
  let direct = Gp_stllint.Interp.check (Gp_stllint.Parser.parse_program source) in
  (match (Server.handle server (Request.Lint { source })).Request.rsp_result with
  | Ok (Request.Linted { errors; warnings; suggestions; messages }) ->
    Alcotest.(check int) "lint errors"
      (List.length (Gp_stllint.Interp.errors direct))
      errors;
    Alcotest.(check int) "lint warnings"
      (List.length (Gp_stllint.Interp.warnings direct))
      warnings;
    Alcotest.(check int) "lint suggestions"
      (List.length (Gp_stllint.Interp.suggestions direct))
      suggestions;
    Alcotest.(check int) "every diagnostic rendered" (List.length direct)
      (List.length messages)
  | _ -> Alcotest.fail "lint did not succeed");
  let open Gp_simplicissimus in
  let expr = "x * 1 + 0" in
  let direct =
    Engine.rewrite
      ~rules:(Rules.builtin @ [ Rules.lidia_inverse ])
      ~insts:(Instances.standard ()) (Sparser.parse expr)
  in
  (match
     (Server.handle server (Request.Optimize { expr; certified_only = false }))
       .Request.rsp_result
   with
  | Ok (Request.Optimized { output; ops_before; ops_after; _ }) ->
    Alcotest.(check string) "same normal form"
      (Expr.to_string direct.Engine.output)
      output;
    Alcotest.(check int) "same ops before" direct.Engine.ops_before ops_before;
    Alcotest.(check int) "same ops after" direct.Engine.ops_after ops_after
  | _ -> Alcotest.fail "optimize did not succeed");
  match
    (Server.handle server
       (Request.Prove { theory = "group"; instance = Some "int[+]" }))
      .Request.rsp_result
  with
  | Ok (Request.Proved { checked; failed }) ->
    Alcotest.(check int) "group int[+]: four theorems" 4 checked;
    Alcotest.(check int) "group int[+]: none fail" 0 failed
  | _ -> Alcotest.fail "prove did not succeed"

let test_cache_off_reports_zero () =
  let server =
    mkserver ~config:{ Server.default_config with caching = false } ()
  in
  ignore (Server.process server (Workload.generate ~seed:3 ~n:20 ()));
  List.iter
    (fun s ->
      Alcotest.(check int) (s.Lru.st_name ^ ": no hits") 0 s.Lru.st_hits;
      Alcotest.(check int) (s.Lru.st_name ^ ": no misses") 0 s.Lru.st_misses;
      Alcotest.(check int) (s.Lru.st_name ^ ": stays empty") 0 s.Lru.st_size)
    (Server.cache_stats server)

let test_cache_hits_on_replay () =
  let server = mkserver () in
  let reqs = Workload.generate ~seed:3 ~n:20 () in
  ignore (Server.process server reqs);
  let rsps = Server.process server reqs in
  Alcotest.(check bool) "replay is cache-served" true
    (List.exists (fun r -> r.Request.rsp_cached) rsps);
  Alcotest.(check bool) "hit counters populated" true
    (List.exists (fun s -> s.Lru.st_hits > 0) (Server.cache_stats server));
  Server.clear_caches server;
  List.iter
    (fun s -> Alcotest.(check int) (s.Lru.st_name ^ ": cleared") 0 s.Lru.st_size)
    (Server.cache_stats server)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_determinism () =
  let a = Workload.generate ~seed:42 ~n:80 () in
  let b = Workload.generate ~seed:42 ~n:80 () in
  let c = Workload.generate ~seed:43 ~n:80 () in
  Alcotest.(check string) "same seed, same fingerprint"
    (Workload.fingerprint a) (Workload.fingerprint b);
  Alcotest.(check bool) "same seed, same requests" true (a = b);
  Alcotest.(check bool) "different seed, different stream" true
    (Workload.fingerprint a <> Workload.fingerprint c)

let workload_pure_prop =
  QCheck.Test.make ~name:"generation is a pure function of the seed" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      Workload.generate ~seed ~n:15 () = Workload.generate ~seed ~n:15 ())

let test_workload_mix () =
  (match Workload.parse_mix "check=2,lint=3" with
  | Ok m ->
    Alcotest.(check int) "two components" 2 (List.length m);
    Alcotest.(check bool) "only the mixed kinds" true
      (List.for_all
         (fun r ->
           match Request.kind r with
           | Request.Kcheck | Request.Klint -> true
           | _ -> false)
         (Workload.generate ~mix:m ~seed:1 ~n:50 ()))
  | Error e -> Alcotest.fail e);
  (match Workload.parse_mix "prove=1" with
  | Ok m ->
    Alcotest.(check bool) "single-kind mix" true
      (List.for_all
         (fun r -> Request.kind r = Request.Kprove)
         (Workload.generate ~mix:m ~seed:5 ~n:10 ()))
  | Error e -> Alcotest.fail e);
  let expect_err spec =
    match Workload.parse_mix spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "mix %S should be rejected" spec
  in
  List.iter expect_err [ "frobnicate=1"; "check=-2"; "check=0,lint=0"; "" ]

(* The error messages are part of the interface: positions are byte
   offsets into the spec as typed (leading whitespace skipped, the
   weight position lands on the character after the '='). Pinned
   byte-for-byte so a drive-by reformat shows up here, not in a user's
   shell. *)
let test_workload_mix_errors () =
  let pin spec want =
    match Workload.parse_mix spec with
    | Ok _ -> Alcotest.failf "mix %S should be rejected" spec
    | Error e -> Alcotest.(check string) (Printf.sprintf "mix %S" spec) want e
  in
  pin "check=2,bogus=1" "at 8: unknown kind \"bogus\" in mix";
  pin "check=x" "at 6: bad weight \"x\" in \"check=x\" (want a non-negative int)";
  pin "check=-2"
    "at 6: bad weight \"-2\" in \"check=-2\" (want a non-negative int)";
  pin "check" "at 0: bad mix component \"check\" (want kind=weight)";
  pin "check=1, lint=y"
    "at 14: bad weight \"y\" in \"lint=y\" (want a non-negative int)";
  pin "check=0,lint=0" "all-zero mix"

let test_workload_validation () =
  (match Workload.generate ~keyspace:0 ~seed:1 ~n:5 () with
  | _ -> Alcotest.fail "keyspace 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Workload.generate ~seed:1 ~n:(-1) () with
  | _ -> Alcotest.fail "negative n must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The Propagate refactor and generation-keyed memo safety             *)
(* ------------------------------------------------------------------ *)

let test_propagate_closure_with () =
  let open Gp_concepts in
  let reg = Registry.create () in
  declare_standard reg;
  List.iter
    (fun (concept, types) ->
      let args = List.map (fun x -> Ctype.Named x) types in
      let via_reg = Propagate.closure reg concept args in
      let via_lookup =
        Propagate.closure_with ~lookup:(Registry.find_concept reg) concept args
      in
      Alcotest.(check int) (concept ^ ": same size") (List.length via_reg)
        (List.length via_lookup);
      Alcotest.(check bool) (concept ^ ": same obligations") true
        (List.for_all2 Propagate.obligation_equal via_reg via_lookup))
    [ ("IncidenceGraph", [ "adjacency_list" ]);
      ("RandomAccessIterator", [ "vector<int>::iterator" ]);
      ("VectorSpace", [ "cvec"; "complex" ]) ]

let test_registry_generation () =
  let open Gp_concepts in
  let reg = Registry.create () in
  let g0 = Registry.generation reg in
  Registry.declare_type reg "gen_probe";
  Alcotest.(check bool) "declaration bumps the generation" true
    (Registry.generation reg > g0);
  let g1 = Registry.generation reg in
  Registry.touch reg;
  Alcotest.(check int) "touch bumps by one" (g1 + 1) (Registry.generation reg)

let test_request_key_tracks_generation () =
  let open Gp_concepts in
  let reg = Registry.create () in
  declare_standard reg;
  let args = [ Ctype.Named "vector<int>" ] in
  let k1 = Propagate.request_key reg "Container" args in
  Alcotest.(check string) "stable while the registry is unchanged" k1
    (Propagate.request_key reg "Container" args);
  Registry.touch reg;
  Alcotest.(check bool) "any mutation changes the key" true
    (k1 <> Propagate.request_key reg "Container" args)

(* A served closure must track registry mutations: the generation-keyed
   request key prevents the LRU from ever serving an answer computed
   against the old world — which matters doubly now that the registry's
   own lookups go through generation-keyed indexes. *)
let test_closure_tracks_registry_mutation () =
  let open Gp_concepts in
  let server = mkserver () in
  let closure_req name =
    Request.Closure { concept = name; types = [ "int" ] }
  in
  check_code "unknown before declaration" Request.Unknown_name
    (Server.handle server (closure_req "FreshConcept"));
  let reg = Server.registry server in
  Registry.declare_concept reg
    (Concept.make ~params:[ "T" ] "FreshConcept" [ Concept.axiom "t" "true" ]);
  (match
     (Server.handle server (closure_req "FreshConcept")).Request.rsp_result
   with
  | Ok (Request.Closed { size; _ }) ->
    Alcotest.(check int) "closure of a leaf concept" 1 size
  | _ -> Alcotest.fail "closure after declaration should succeed");
  Registry.declare_concept reg
    (Concept.make ~params:[ "T" ]
       ~refines:[ ("FreshConcept", [ Ctype.Var "T" ]) ]
       "FresherConcept"
       [ Concept.axiom "t" "true" ]);
  (match
     (Server.handle server (closure_req "FresherConcept")).Request.rsp_result
   with
  | Ok (Request.Closed { size; _ }) ->
    Alcotest.(check int) "refining closure sees the refined" 2 size
  | _ -> Alcotest.fail "closure of the refining concept should succeed");
  let replay = Server.handle server (closure_req "FresherConcept") in
  Alcotest.(check bool) "replay is served from cache" true
    replay.Request.rsp_cached;
  (* any further declaration bumps the generation: the same request must
     recompute against the current world, not replay the cached answer *)
  Registry.declare_type reg "fresh_probe";
  let after = Server.handle server (closure_req "FresherConcept") in
  Alcotest.(check bool) "mutation invalidates the cached closure" false
    after.Request.rsp_cached;
  (match after.Request.rsp_result with
  | Ok (Request.Closed { size; _ }) ->
    Alcotest.(check int) "recomputed answer is correct" 2 size
  | _ -> Alcotest.fail "recomputed closure should succeed")

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Flight recorder + replay                                            *)
(* ------------------------------------------------------------------ *)

module Tel = Gp_telemetry.Tel
module Recorder = Gp_telemetry.Recorder

let test_config_line_roundtrip () =
  let config =
    { Server.default_config with caching = false; cache_capacity = 17;
      queue_capacity = 5; max_steps = 2500; timeout = Some 1.5;
      slow_log = 3; flight_capacity = 99; flight_slowest = 2 }
  in
  (match Server.config_of_line (Server.config_to_line config) with
  | Ok c ->
    Alcotest.(check bool) "caching" false c.Server.caching;
    Alcotest.(check int) "cache_capacity" 17 c.Server.cache_capacity;
    Alcotest.(check int) "queue_capacity" 5 c.Server.queue_capacity;
    Alcotest.(check int) "max_steps" 2500 c.Server.max_steps;
    Alcotest.(check (option (float 1e-9))) "timeout" (Some 1.5)
      c.Server.timeout;
    Alcotest.(check int) "slow_log" 3 c.Server.slow_log;
    Alcotest.(check int) "flight_capacity" 99 c.Server.flight_capacity;
    Alcotest.(check int) "flight_slowest" 2 c.Server.flight_slowest;
    Alcotest.(check string) "fingerprint stable"
      (Server.config_fingerprint config)
      (Server.config_fingerprint c)
  | Error m -> Alcotest.failf "config roundtrip failed: %s" m);
  (* missing fields fall back to the defaults; junk is rejected *)
  (match Server.config_of_line "{}" with
  | Ok c ->
    Alcotest.(check int) "defaults fill in"
      Server.default_config.Server.max_steps c.Server.max_steps
  | Error m -> Alcotest.failf "empty object rejected: %s" m);
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Server.config_of_line "[1,2"));
  Alcotest.(check bool) "bad field type rejected" true
    (Result.is_error (Server.config_of_line {|{"max_steps":"many"}|}))

let test_slow_log_rendering () =
  let server =
    mkserver ~config:{ Server.default_config with slow_log = 2 } ()
  in
  Alcotest.(check bool) "empty log renders as empty" true
    (contains
       (Fmt.str "%a" Server.pp_slow (Server.slow_requests server))
       "empty");
  Tel.with_installed (fun _ ->
      for _ = 1 to 3 do
        ignore (Server.handle server good_request)
      done);
  let rendered = Fmt.str "%a" Server.pp_slow (Server.slow_requests server) in
  Alcotest.(check bool) "header" true (contains rendered "slowest requests");
  Alcotest.(check bool) "renders the root span" true
    (contains rendered "service.request");
  Alcotest.(check bool) "renders the kind" true (contains rendered "parse")

let test_flight_dossiers () =
  let config =
    { Server.default_config with max_steps = 2500; flight_capacity = 16;
      flight_slowest = 1 }
  in
  let server = mkserver ~config () in
  let recorder = Option.get (Server.flight server) in
  Tel.with_installed (fun _ ->
      ignore (Server.serve_line server {|{"kind":"optimize","expr":"x*1+0"}|});
      ignore
        (Server.serve_line server
           {|{"kind":"closure","concept":"NoSuchConcept","types":["int"]}|});
      ignore (Server.serve_line server "this is not json"));
  (match Recorder.dossiers recorder with
  | [ ok_d; unk; inv ] ->
    Alcotest.(check string) "ok outcome" "ok" ok_d.Recorder.do_outcome;
    Alcotest.(check string) "kind" "optimize" ok_d.Recorder.do_kind;
    Alcotest.(check bool) "wire line is re-servable" true
      (Result.is_ok (Wire.request_of_line (Lazy.force ok_d.Recorder.do_wire)));
    Alcotest.(check string) "config line embedded"
      (Server.config_to_line config) ok_d.Recorder.do_config;
    Alcotest.(check string) "config fp"
      (Server.config_fingerprint config) ok_d.Recorder.do_config_fp;
    Alcotest.(check int) "registry generation"
      (Gp_concepts.Registry.generation (Server.registry server))
      ok_d.Recorder.do_generation;
    Alcotest.(check bool) "root-span duration positive" true
      (ok_d.Recorder.do_dur_ns > 0.0);
    Alcotest.(check bool) "cache chain recorded" true
      (ok_d.Recorder.do_cache_chain <> []);
    Alcotest.(check string) "error outcome" "unknown-name"
      unk.Recorder.do_outcome;
    Alcotest.(check bool) "error dossier keeps its span tree" true
      (unk.Recorder.do_spans <> []);
    (let spans = unk.Recorder.do_spans in
     let root = List.nth spans (List.length spans - 1) in
     Alcotest.(check string) "root is service.request" "service.request"
       root.Gp_telemetry.Trace.sp_name);
    Alcotest.(check string) "invalid kind" "invalid" inv.Recorder.do_kind;
    Alcotest.(check string) "invalid outcome" "bad-request"
      inv.Recorder.do_outcome;
    Alcotest.(check string) "raw line preserved" "this is not json"
      (Lazy.force inv.Recorder.do_wire)
  | l -> Alcotest.failf "expected 3 dossiers, got %d" (List.length l));
  Alcotest.(check bool) "flight_capacity = 0 disables the recorder" true
    (Option.is_none
       (Server.flight (mkserver ~config:{ config with flight_capacity = 0 } ())))

let test_flight_replay () =
  let config =
    { Server.default_config with max_steps = 2500; flight_capacity = 256 }
  in
  let n = 40 in
  let reqs = Workload.generate ~errors:0.3 ~seed:5 ~n () in
  let dossiers =
    Tel.with_installed (fun _ ->
        let server = mkserver ~config () in
        ignore (Server.process server reqs);
        Recorder.dossiers (Option.get (Server.flight server)))
  in
  Alcotest.(check int) "one dossier per request" n (List.length dossiers);
  (* round-trip through the JSONL dump format, as gp replay would *)
  let dump =
    String.concat ""
      (List.map (fun d -> Recorder.dossier_to_json d ^ "\n") dossiers)
  in
  let parsed =
    match Flight.of_jsonl dump with
    | Ok ds -> ds
    | Error m -> Alcotest.failf "dump does not parse: %s" m
  in
  Alcotest.(check bool) "injected errors rode along" true
    (List.exists (fun d -> d.Recorder.do_outcome <> "ok") parsed);
  let o =
    match Flight.replay ~declare_standard parsed with
    | Ok o -> o
    | Error m -> Alcotest.failf "replay: %s" m
  in
  Alcotest.(check int) "total" n o.Flight.rep_total;
  Alcotest.(check int) "all fingerprints match" n o.Flight.rep_matched;
  Alcotest.(check bool) "all_matched" true (Flight.all_matched o);
  Alcotest.(check int) "replayed under the recorded config"
    config.Server.max_steps o.Flight.rep_config.Server.max_steps;
  (* a tampered fingerprint is detected as exactly one divergence *)
  let tampered =
    List.mapi
      (fun i d ->
        if i = 3 then
          { d with Recorder.do_response_fp = Lazy.from_val "0000" }
        else d)
      parsed
  in
  match Flight.replay ~declare_standard tampered with
  | Error m -> Alcotest.failf "tampered replay errored: %s" m
  | Ok o2 -> (
    Alcotest.(check int) "one divergence" 1 (List.length o2.Flight.rep_diverged);
    Alcotest.(check bool) "not all matched" false (Flight.all_matched o2);
    match o2.Flight.rep_diverged with
    | [ dv ] ->
      Alcotest.(check int) "the tampered dossier diverged"
        (List.nth parsed 3).Recorder.do_id
        dv.Flight.dv_dossier.Recorder.do_id;
      Alcotest.(check bool) "divergence report renders" true
        (contains (Fmt.str "%a" Flight.pp_outcome o2) "mismatch")
    | _ -> ())

let test_workload_error_injection () =
  (* errors = 0.0 keeps the stream byte-identical to the pre-errors API *)
  Alcotest.(check string) "errors=0 is the plain stream"
    (Workload.fingerprint (Workload.generate ~seed:3 ~n:50 ()))
    (Workload.fingerprint (Workload.generate ~errors:0.0 ~seed:3 ~n:50 ()));
  Alcotest.(check string) "seeded error stream deterministic"
    (Workload.fingerprint (Workload.generate ~errors:0.5 ~seed:3 ~n:50 ()))
    (Workload.fingerprint (Workload.generate ~errors:0.5 ~seed:3 ~n:50 ()));
  Alcotest.(check bool) "injection changes the stream" true
    (Workload.fingerprint (Workload.generate ~errors:0.5 ~seed:3 ~n:50 ())
    <> Workload.fingerprint (Workload.generate ~seed:3 ~n:50 ()));
  (* the injected requests actually fail when served, across several
     distinct error surfaces, under a budget tight enough to catch the
     identity-chain budget-buster *)
  let server =
    mkserver ~config:{ Server.default_config with max_steps = 2500 } ()
  in
  let rsps =
    Server.process server (Workload.generate ~errors:0.4 ~seed:3 ~n:50 ())
  in
  let failed = List.filter (fun r -> not (Request.ok r)) rsps in
  Alcotest.(check bool) "some requests fail" true (failed <> []);
  let codes = List.sort_uniq compare (List.map code_name failed) in
  Alcotest.(check bool) "several distinct error codes" true
    (List.length codes >= 2);
  Alcotest.(check bool) "errors outside [0,1] rejected" true
    (match Workload.generate ~errors:1.5 ~seed:1 ~n:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Numeric requests (gp_structla end to end)                           *)
(* ------------------------------------------------------------------ *)

let test_numeric_dispatch () =
  let open Gp_structla in
  let server = mkserver () in
  let rsp =
    Server.handle server
      (Request.Matvec { structure = "diagonal"; n = 32; seed = 1 })
  in
  match rsp.Request.rsp_result with
  | Ok (Request.Computed { kernel; detected; n; steps; checksum }) ->
    Alcotest.(check string) "most refined kernel" "matvec.diagonal" kernel;
    Alcotest.(check string) "detected structure" "diagonal" detected;
    Alcotest.(check int) "order echoed" 32 n;
    Alcotest.(check int) "steps are the diagonal count" 32 steps;
    (* bit-exact against the same generate -> classify -> select path
       run outside the server *)
    let reg = Gp_concepts.Registry.create () in
    declare_standard reg;
    let d =
      Option.get (Mat.generate_dense ~structure:"diagonal" ~n:32 ~seed:1)
    in
    let m = Detect.classify_quiet d in
    let x = Mat.generate_vec ~n:32 ~seed:1 in
    (match Select.matvec reg (Select.create ()) m x with
    | Ok (_, y) ->
      Alcotest.(check string) "checksum matches a direct computation"
        (Mat.checksum_vec y) checksum
    | Error e -> Alcotest.fail e)
  | Ok _ -> Alcotest.fail "expected a Computed payload"
  | Error _ -> Alcotest.fail "matvec request failed"

let test_numeric_cache_and_budget () =
  (* generous budget: the replayed request is cache-served, same payload *)
  let server = mkserver () in
  let req = Request.Matmul { structure = "banded"; n = 24; seed = 2 } in
  let r1 = Server.handle server req in
  let r2 = Server.handle server req in
  Alcotest.(check bool) "first is computed" false r1.Request.rsp_cached;
  Alcotest.(check bool) "second is cache-served" true r2.Request.rsp_cached;
  Alcotest.(check bool) "payloads identical" true
    (r1.Request.rsp_result = r2.Request.rsp_result);
  (* tight budget: the kernel's step count is charged on hit and miss
     alike, so caching cannot change an Over_budget verdict *)
  let tight =
    mkserver ~config:{ Server.default_config with max_steps = 1000 } ()
  in
  let heavy = Request.Solve { structure = "dense"; n = 48; seed = 0 } in
  check_code "miss goes over budget" Request.Over_budget
    (Server.handle tight heavy);
  check_code "hit goes over budget too" Request.Over_budget
    (Server.handle tight heavy);
  assert_alive tight

let test_numeric_validation () =
  let server = mkserver () in
  check_code "unknown structure" Request.Unknown_name
    (Server.handle server
       (Request.Matvec { structure = "toeplitz"; n = 8; seed = 0 }));
  check_code "n too large" Request.Bad_request
    (Server.handle server
       (Request.Matvec { structure = "dense"; n = 100_000; seed = 0 }));
  check_code "n < 1" Request.Bad_request
    (Server.handle server (Request.Solve { structure = "dense"; n = 0; seed = 0 }));
  (* wire: seed is optional (0), n is required *)
  (match
     Wire.request_of_line {|{"kind":"matvec","structure":"csr","n":16}|}
   with
  | Ok (None, Request.Matvec { structure = "csr"; n = 16; seed = 0 }) -> ()
  | Ok _ -> Alcotest.fail "wrong decode of a seedless matvec"
  | Error e -> Alcotest.fail e);
  (match Wire.request_of_line {|{"kind":"solve","structure":"dense"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing n must be rejected");
  assert_alive server

let test_numeric_workload () =
  let mix =
    Workload.default_mix
    @ [ (Request.Kmatvec, 10); (Request.Kmatmul, 5); (Request.Ksolve, 5) ]
  in
  let reqs = Workload.generate ~mix ~seed:3 ~n:80 () in
  Alcotest.(check string) "deterministic with numeric kinds"
    (Workload.fingerprint reqs)
    (Workload.fingerprint (Workload.generate ~mix ~seed:3 ~n:80 ()));
  let kinds = List.map Request.kind reqs in
  Alcotest.(check bool) "numeric kinds drawn" true
    (List.exists
       (fun k ->
         k = Request.Kmatvec || k = Request.Kmatmul || k = Request.Ksolve)
       kinds);
  (* every numeric pool entry fits the default 100k-step budget *)
  let server = mkserver () in
  let rsps = Server.process server reqs in
  Alcotest.(check int) "all served" 80 (List.length rsps);
  List.iter
    (fun r ->
      if not (Request.ok r) then
        Alcotest.failf "request failed with %s" (code_name r))
    rsps

let () =
  Alcotest.run "service"
    [ ( "lru",
        [ Alcotest.test_case "hit/miss/evict" `Quick test_lru_basic;
          Alcotest.test_case "recency order" `Quick test_lru_recency;
          Alcotest.test_case "find_or_compute" `Quick test_lru_find_or_compute;
          Alcotest.test_case "invalid capacity" `Quick test_lru_invalid_capacity;
          qtest lru_model_prop ] );
      ( "budget",
        [ Alcotest.test_case "step allowance" `Quick test_budget_steps;
          Alcotest.test_case "unlimited default" `Quick test_budget_unlimited;
          Alcotest.test_case "deadline over a fake clock" `Quick
            test_budget_deadline ] );
      ( "wire",
        [ Alcotest.test_case "json roundtrip" `Quick test_wire_json_roundtrip;
          Alcotest.test_case "request roundtrip" `Quick
            test_wire_request_roundtrip;
          Alcotest.test_case "bad lines rejected" `Quick test_wire_bad_lines;
          Alcotest.test_case "response encodes" `Quick
            test_wire_response_encodes;
          Alcotest.test_case "hardening: positioned rejections" `Quick
            test_wire_hardening;
          Alcotest.test_case "direct parser = ast oracle" `Quick
            test_wire_parser_agreement;
          qtest wire_roundtrip_prop;
          qtest wire_response_stream_prop ] );
      ( "robustness",
        [ Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
          Alcotest.test_case "over budget" `Quick test_over_budget;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "queue full" `Quick test_queue_full;
          Alcotest.test_case "metrics accounting" `Quick
            test_metrics_accounting;
          Alcotest.test_case "gc counters in stats report" `Quick
            test_report_json_gc ] );
      ( "transparency",
        [ Alcotest.test_case "direct library equivalence" `Quick
            test_direct_library_equivalence;
          Alcotest.test_case "cache off reports zero" `Quick
            test_cache_off_reports_zero;
          Alcotest.test_case "cache hits on replay" `Quick
            test_cache_hits_on_replay;
          qtest transparency_prop ] );
      ( "workload",
        [ Alcotest.test_case "deterministic per seed" `Quick
            test_workload_determinism;
          Alcotest.test_case "mix parsing" `Quick test_workload_mix;
          Alcotest.test_case "mix error positions" `Quick
            test_workload_mix_errors;
          Alcotest.test_case "input validation" `Quick test_workload_validation;
          Alcotest.test_case "seeded error injection" `Quick
            test_workload_error_injection;
          qtest workload_pure_prop ] );
      ( "numeric",
        [ Alcotest.test_case "most refined kernel served" `Quick
            test_numeric_dispatch;
          Alcotest.test_case "cache and budget independence" `Quick
            test_numeric_cache_and_budget;
          Alcotest.test_case "validation and wire defaults" `Quick
            test_numeric_validation;
          Alcotest.test_case "numeric workload mix" `Quick
            test_numeric_workload ] );
      ( "flight",
        [ Alcotest.test_case "config line roundtrip" `Quick
            test_config_line_roundtrip;
          Alcotest.test_case "slow log renders span trees" `Quick
            test_slow_log_rendering;
          Alcotest.test_case "dossier capture" `Quick test_flight_dossiers;
          Alcotest.test_case "replay matches recording" `Quick
            test_flight_replay ] );
      ( "propagate",
        [ Alcotest.test_case "closure_with agrees with closure" `Quick
            test_propagate_closure_with;
          Alcotest.test_case "registry generation" `Quick
            test_registry_generation;
          Alcotest.test_case "request_key tracks generation" `Quick
            test_request_key_tracks_generation;
          Alcotest.test_case "served closure tracks mutations" `Quick
            test_closure_tracks_registry_mutation ] ) ]
