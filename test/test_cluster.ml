(* Tests for the simulated serving cluster: consistent-hashing
   placement properties, the single-replica transparency property (a
   1-node failure-free cluster answers exactly like a bare server),
   failover under leader crash and partition, dump/offline-audit round
   trips, and bit-exact determinism. *)

open Gp_service
open Gp_cluster

let qtest = QCheck_alcotest.to_alcotest

let declare_standard reg =
  Gp_algebra.Decls.declare reg;
  Gp_sequence.Decls.declare reg;
  Gp_graph.Decls.declare reg;
  Gp_linalg.Decls.declare reg

let workload ?(n = 60) seed =
  Array.of_list (Workload.generate ~seed ~n ())

let run ?(config = Cluster.default_config) reqs =
  Cluster.run ~config ~declare_standard reqs

(* ------------------------------------------------------------------ *)
(* Hash ring                                                           *)
(* ------------------------------------------------------------------ *)

let ring_args = QCheck.(triple (int_range 1 12) (int_range 1 96) small_string)

let ring_of n vn = Hash_ring.create ~vnodes:vn ~replicas:(List.init n (fun i -> i + 1)) ()

let ring_successors_prop =
  qtest
    (QCheck.Test.make
       ~name:"hash ring: successors start at the shard and cover all replicas"
       ~count:200 ring_args
       (fun (n, vn, key) ->
         let ring = ring_of n vn in
         let succ = Hash_ring.successors ring key in
         List.hd succ = Hash_ring.shard ring key
         && List.sort compare succ = List.init n (fun i -> i + 1)))

let ring_deterministic_prop =
  qtest
    (QCheck.Test.make ~name:"hash ring: placement is a pure function"
       ~count:200 ring_args
       (fun (n, vn, key) ->
         Hash_ring.successors (ring_of n vn) key
         = Hash_ring.successors (ring_of n vn) key))

(* the consistent-hashing contract: growing the cluster by one replica
   only moves keys onto the newcomer, never between old replicas *)
let ring_minimal_movement_prop =
  qtest
    (QCheck.Test.make ~name:"hash ring: adding a replica moves keys minimally"
       ~count:200
       QCheck.(triple (int_range 1 10) (int_range 1 64) small_string)
       (fun (n, vn, key) ->
         let before = Hash_ring.shard (ring_of n vn) key in
         let after = Hash_ring.shard (ring_of (n + 1) vn) key in
         after = before || after = n + 1))

(* the elastic contract, via the dedicated operations: a join changes a
   key's owner iff the joiner takes it *)
let ring_join_prop =
  qtest
    (QCheck.Test.make
       ~name:"hash ring: add_replica moves keys only onto the joiner"
       ~count:200 ring_args
       (fun (n, vn, key) ->
         let ring = ring_of n vn in
         let joined = Hash_ring.add_replica ring (n + 1) in
         let before = Hash_ring.shard ring key in
         let after = Hash_ring.shard joined key in
         after = before || after = n + 1))

(* ... and a leave strands only the leaver's keys: everyone else's
   owner survives verbatim *)
let ring_leave_prop =
  qtest
    (QCheck.Test.make
       ~name:"hash ring: remove_replica moves only the leaver's keys"
       ~count:200
       QCheck.(triple (int_range 2 12) (int_range 1 96) small_string)
       (fun (n, vn, key) ->
         let ring = ring_of n vn in
         let leaver = 1 + (Hashtbl.hash (vn, key) mod n) in
         let shrunk = Hash_ring.remove_replica ring leaver in
         let before = Hash_ring.shard ring key in
         let after = Hash_ring.shard shrunk key in
         if before = leaver then after <> leaver else after = before))

let ring_join_leave_roundtrip_prop =
  qtest
    (QCheck.Test.make
       ~name:"hash ring: join then leave restores every placement"
       ~count:200 ring_args
       (fun (n, vn, key) ->
         let ring = ring_of n vn in
         let back =
           Hash_ring.remove_replica (Hash_ring.add_replica ring (n + 1)) (n + 1)
         in
         Hash_ring.shard back key = Hash_ring.shard ring key
         && Hash_ring.successors back key = Hash_ring.successors ring key))

let test_ring_elastic_invalid () =
  let ring = ring_of 3 16 in
  Alcotest.check_raises "duplicate join"
    (Invalid_argument "Hash_ring.add_replica: replica already on the ring")
    (fun () -> ignore (Hash_ring.add_replica ring 2));
  Alcotest.check_raises "absent leaver"
    (Invalid_argument "Hash_ring.remove_replica: replica not on the ring")
    (fun () -> ignore (Hash_ring.remove_replica ring 9));
  Alcotest.check_raises "cannot empty the ring"
    (Invalid_argument "Hash_ring.remove_replica: cannot empty the ring")
    (fun () -> ignore (Hash_ring.remove_replica (ring_of 1 16) 1))

let test_ring_spread () =
  let ring = ring_of 4 64 in
  let keys = List.init 500 (fun i -> Printf.sprintf "key-%d" i) in
  let spread = Hash_ring.spread ring keys in
  Alcotest.(check int) "every key owned" 500
    (List.fold_left (fun acc (_, k) -> acc + k) 0 spread);
  Alcotest.(check (list int)) "replica ids ascending" [ 1; 2; 3; 4 ]
    (List.map fst spread);
  Alcotest.(check bool) "no starved replica" true
    (List.for_all (fun (_, k) -> k > 0) spread)

let test_ring_invalid () =
  Alcotest.check_raises "empty replica set"
    (Invalid_argument "Hash_ring.create: no replicas") (fun () ->
      ignore (Hash_ring.create ~replicas:[] ()));
  Alcotest.check_raises "no vnodes"
    (Invalid_argument "Hash_ring.create: vnodes < 1") (fun () ->
      ignore (Hash_ring.create ~vnodes:0 ~replicas:[ 1 ] ()))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_is_write () =
  Alcotest.(check bool) "Parse mutates the registry" true
    (Proto.is_write (Request.Parse { source = "type t { }\n" }));
  List.iter
    (fun (name, req) ->
      Alcotest.(check bool) (name ^ " is a read") false (Proto.is_write req))
    [
      ("Check", Request.Check
         { concept = "Semigroup"; types = [ "int" ]; nominal = false;
           defs = None });
      ("Lint", Request.Lint { source = "x" });
      ("Optimize", Request.Optimize { expr = "x"; certified_only = false });
      ("Prove", Request.Prove { theory = "monoid"; instance = None });
      ("Closure", Request.Closure { concept = "Monoid"; types = [ "int" ] });
    ]

(* ------------------------------------------------------------------ *)
(* Single-replica transparency                                         *)
(* ------------------------------------------------------------------ *)

(* The satellite property: with one replica and no failures the cluster
   is pure plumbing — every response fingerprint must equal what one
   bare server produces for the same stream, in order. *)
let transparency_prop =
  qtest
    (QCheck.Test.make
       ~name:"1 replica, 0 failures: cluster = bare server (fingerprints)"
       ~count:8
       QCheck.(pair (int_range 0 10_000) (int_range 10 50))
       (fun (seed, n) ->
         let reqs = workload ~n seed in
         let config = { Cluster.default_config with replicas = 1 } in
         let r = run ~config reqs in
         let server =
           Server.create ~config:config.Cluster.server_config
             ~declare_standard ()
         in
         let bare = Server.process server (Array.to_list reqs) in
         r.Cluster.r_completed = n
         && List.for_all2
              (fun rec_ rsp ->
                match rec_ with
                | None -> false
                | Some rec_ ->
                  String.equal rec_.Node.rc_fp
                    (Request.response_fingerprint rsp))
              (Array.to_list r.Cluster.r_records)
              bare))

(* ------------------------------------------------------------------ *)
(* Healthy runs                                                        *)
(* ------------------------------------------------------------------ *)

let test_healthy_run () =
  let reqs = workload 3 in
  let r = run reqs in
  Alcotest.(check int) "all requests complete" (Array.length reqs)
    r.Cluster.r_completed;
  Alcotest.(check int) "exactly the initial election" 1 r.Cluster.r_elections;
  Alcotest.(check (list (pair (float 0.0) (float 0.0)))) "no failovers" []
    r.Cluster.r_failovers;
  Alcotest.(check int) "no retries without failures" 0 (Cluster.retried r);
  (match r.Cluster.r_leaders with
  | [ (_, leader) ] ->
    Alcotest.(check int) "highest replica id wins FloodMax" 3 leader
  | l ->
    Alcotest.failf "expected one coordinator acceptance, got %d"
      (List.length l));
  let a = Cluster.audit ~declare_standard r in
  Alcotest.(check bool) "audit clean" true (Cluster.audit_ok a);
  Alcotest.(check int) "audit compared everything" (Array.length reqs)
    a.Cluster.au_compared

let test_keyed_beats_round_robin () =
  (* key affinity routes repeats of a hot key to the same replica, so
     the cluster-wide hit ratio must beat blind round-robin on the same
     stream *)
  let reqs = workload ~n:120 7 in
  let keyed = run reqs in
  let rr =
    run ~config:{ Cluster.default_config with affinity = false } reqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "hit ratio: keyed %.3f > round-robin %.3f"
       (Cluster.hit_ratio keyed) (Cluster.hit_ratio rr))
    true
    (Cluster.hit_ratio keyed > Cluster.hit_ratio rr)

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

let test_leader_crash_failover () =
  let reqs = workload ~n:80 5 in
  let config =
    { Cluster.default_config with
      failures = [ Cluster.Crash_leader { at = 30.0 } ] }
  in
  let r = run ~config reqs in
  Alcotest.(check int) "workload still completes" (Array.length reqs)
    r.Cluster.r_completed;
  Alcotest.(check bool) "a re-election happened" true
    (r.Cluster.r_elections >= 2);
  Alcotest.(check bool) "a failover was recorded" true
    (List.length r.Cluster.r_failovers >= 1);
  List.iter
    (fun (dead, coord) ->
      Alcotest.(check bool) "failover latency positive" true (coord > dead))
    r.Cluster.r_failovers;
  (* the crashed initial leader (highest id, replica 3) must be
     replaced by a live one; [r_leaders] is oldest first *)
  (match List.rev r.Cluster.r_leaders with
  | (_, last) :: _ ->
    Alcotest.(check bool) "new leader is not the crashed one" true
      (last <> 3)
  | [] -> Alcotest.fail "no coordinator ever accepted");
  Alcotest.(check bool) "consistency survives the crash" true
    (Cluster.audit_ok (Cluster.audit ~declare_standard r))

let test_partition_failover () =
  (* isolate the initial leader (replica 3) from everyone for a window:
     the router must elect a reachable leader and keep serving *)
  let reqs = workload ~n:80 9 in
  let config =
    { Cluster.default_config with
      failures =
        [ Cluster.Partition
            { groups = [ [ 3 ] ]; from_ = 10.0; until = 120.0 } ] }
  in
  let r = run ~config reqs in
  Alcotest.(check int) "workload completes despite the partition"
    (Array.length reqs) r.Cluster.r_completed;
  Alcotest.(check bool) "partition triggered a re-election" true
    (r.Cluster.r_elections >= 2);
  Alcotest.(check bool) "answers stay consistent" true
    (Cluster.audit_ok (Cluster.audit ~declare_standard r))

let test_replicas_required () =
  Alcotest.check_raises "replicas < 1 rejected"
    (Invalid_argument "Cluster.run: replicas < 1") (fun () ->
      ignore (run ~config:{ Cluster.default_config with replicas = 0 }
                (workload 1)))

(* ------------------------------------------------------------------ *)
(* Determinism, dump, offline audit                                    *)
(* ------------------------------------------------------------------ *)

let faulty_config =
  { Cluster.default_config with
    failures =
      [ Cluster.Drop 0.2; Cluster.Crash_leader { at = 40.0 } ] }

let test_determinism () =
  let reqs = workload ~n:80 11 in
  let d1 = Cluster.dump (run ~config:faulty_config reqs) in
  let d2 = Cluster.dump (run ~config:faulty_config reqs) in
  Alcotest.(check string) "same seed, bit-identical dumps" d1 d2

let test_dump_roundtrip () =
  let reqs = workload ~n:60 13 in
  let r = run ~config:faulty_config reqs in
  let inline = Cluster.audit ~declare_standard r in
  match Cluster.audit_dump ~declare_standard (Cluster.dump r) with
  | Error e -> Alcotest.failf "offline audit failed: %s" e
  | Ok offline ->
    Alcotest.(check bool) "offline audit clean" true
      (Cluster.audit_ok offline);
    Alcotest.(check int) "offline compares what inline compares"
      inline.Cluster.au_compared offline.Cluster.au_compared;
    Alcotest.(check int) "missing counts agree" inline.Cluster.au_missing
      offline.Cluster.au_missing

let test_dump_malformed () =
  let bad s =
    match Cluster.audit_dump ~declare_standard s with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "empty document rejected" true (bad "");
  Alcotest.(check bool) "non-JSON header rejected" true (bad "not json\n");
  Alcotest.(check bool) "foreign header rejected" true
    (bad "{\"flight\": 1}\n")

(* ------------------------------------------------------------------ *)
(* Elasticity and overload control                                     *)
(* ------------------------------------------------------------------ *)

(* A join and a leave mid-run: membership counters move, the joiner is
   caught up by write handoff, and the keys that changed owner stay
   within the consistent-hashing minimal-movement allowance — all while
   the audit stays clean (an elastic cluster may answer late, never
   wrong). *)
let test_elastic_run () =
  let n = 120 in
  let reqs = workload ~n 17 in
  let config =
    { Cluster.default_config with
      replicas = 3;
      elastic =
        [
          { Node.el_at = 30.0; el_join = true; el_replica = 4 };
          { Node.el_at = 60.0; el_join = false; el_replica = 1 };
        ] }
  in
  let r = run ~config reqs in
  Alcotest.(check int) "everything completes" n r.Cluster.r_completed;
  Alcotest.(check int) "one join" 1 r.Cluster.r_joined;
  Alcotest.(check int) "one leave" 1 r.Cluster.r_left;
  Alcotest.(check bool) "joiner caught up by handoff" true
    (r.Cluster.r_handoffs > 0);
  Alcotest.(check bool) "movement within the minimal bound" true
    (r.Cluster.r_moved_keys <= r.Cluster.r_moved_bound);
  Alcotest.(check bool) "audit clean" true
    (Cluster.audit_ok (Cluster.audit ~declare_standard r))

(* Slow serves behind a bounded router queue and a replica backlog
   limit: the cluster sheds typed verdicts instead of queueing without
   bound, and the shed column closes the offline audit's accounting
   identity. *)
let shedding_config =
  { Cluster.default_config with
    replicas = 2;
    tuning =
      { Node.default_tuning with
        service_time = 2.0;
        queue_bound = 6;
        shed_backlog = 4.0 } }

let test_shed_roundtrip () =
  let n = 90 in
  let reqs = workload ~n 19 in
  let r = run ~config:shedding_config reqs in
  Alcotest.(check int) "shed verdicts still complete" n
    r.Cluster.r_completed;
  Alcotest.(check bool) "overload control engaged" true
    (Cluster.shed_total r > 0);
  Alcotest.(check bool) "the queue respected its bound" true
    (r.Cluster.r_peak_inflight <= 6);
  match Cluster.audit_dump ~declare_standard (Cluster.dump r) with
  | Error e -> Alcotest.failf "offline audit failed: %s" e
  | Ok a ->
    Alcotest.(check int) "offline shed column = run's shed total"
      (Cluster.shed_total r) a.Cluster.au_shed;
    Alcotest.(check int) "compared + missing + shed = total"
      a.Cluster.au_total
      (a.Cluster.au_compared + a.Cluster.au_missing + a.Cluster.au_shed);
    Alcotest.(check int) "nothing divergent" 0
      (List.length a.Cluster.au_divergences);
    Alcotest.(check int) "nothing missing" 0 a.Cluster.au_missing

(* Malformed scenario fields are rejected with the wire's positioned
   convention; the expected position is recomputed here from the
   tampered line itself (first occurrence of the bare field name). *)
let test_dump_malformed_scenario_fields () =
  let d = Cluster.dump (run ~config:shedding_config (workload ~n:90 19)) in
  let lines = String.split_on_char '\n' d in
  let pos_of line name =
    let n = String.length line and m = String.length name in
    let rec go i =
      if i + m > n then Alcotest.failf "field %S not in line %S" name line
      else if String.sub line i m = name then i
      else go (i + 1)
    in
    go 0
  in
  let replace line ~from ~to_ =
    let at = pos_of line from in
    String.sub line 0 at ^ to_
    ^ String.sub line (at + String.length from)
        (String.length line - at - String.length from)
  in
  let rebuild lines = String.concat "\n" lines in
  let expect_err doc want =
    match Cluster.audit_dump ~declare_standard doc with
    | Ok _ -> Alcotest.failf "tampered dump accepted (wanted %S)" want
    | Error e -> Alcotest.(check string) "positioned rejection" want e
  in
  (* header: the shed counter must be a non-negative int — swap its
     digits for a string *)
  (match lines with
   | header :: rest ->
     let at = pos_of header "\"shed\":" in
     let digits_from = at + String.length "\"shed\":" in
     let digits_to = ref digits_from in
     while
       !digits_to < String.length header
       && (match header.[!digits_to] with '0' .. '9' -> true | _ -> false)
     do
       incr digits_to
     done;
     let bad_header =
       String.sub header 0 digits_from ^ "\"x\""
       ^ String.sub header !digits_to (String.length header - !digits_to)
     in
     let p = pos_of bad_header "shed" in
     expect_err
       (rebuild (bad_header :: rest))
       (Printf.sprintf "at %d: bad field \"shed\" (want a non-negative int)" p)
   | [] -> Alcotest.fail "empty dump");
  (* record: the shed marker must be a bool *)
  match
    List.partition
      (fun l ->
        (* a shed record carries the compact marker *)
        let marker = "\"shed\":true" in
        let n = String.length l and m = String.length marker in
        let rec has i =
          i + m <= n && (String.sub l i m = marker || has (i + 1))
        in
        has 0)
      lines
  with
  | [], _ -> Alcotest.fail "no shed record in the dump"
  | shed_line :: _, _ ->
    let bad = replace shed_line ~from:"\"shed\":true" ~to_:"\"shed\":3" in
    let doc =
      rebuild
        (List.map (fun l -> if l == shed_line then bad else l) lines)
    in
    let p = pos_of bad "shed" in
    expect_err doc
      (Printf.sprintf "at %d: bad field \"shed\" (want a bool)" p)

let () =
  Alcotest.run "gp_cluster"
    [
      ( "hash ring",
        [
          ring_successors_prop;
          ring_deterministic_prop;
          ring_minimal_movement_prop;
          ring_join_prop;
          ring_leave_prop;
          ring_join_leave_roundtrip_prop;
          Alcotest.test_case "spread" `Quick test_ring_spread;
          Alcotest.test_case "invalid args" `Quick test_ring_invalid;
          Alcotest.test_case "elastic invalid args" `Quick
            test_ring_elastic_invalid;
        ] );
      ("protocol", [ Alcotest.test_case "is_write" `Quick test_is_write ]);
      ( "transparency",
        [ transparency_prop ] );
      ( "serving",
        [
          Alcotest.test_case "healthy run" `Quick test_healthy_run;
          Alcotest.test_case "keyed beats round-robin" `Quick
            test_keyed_beats_round_robin;
        ] );
      ( "failover",
        [
          Alcotest.test_case "leader crash" `Quick test_leader_crash_failover;
          Alcotest.test_case "partition" `Quick test_partition_failover;
          Alcotest.test_case "replicas required" `Quick
            test_replicas_required;
        ] );
      ( "elasticity & overload",
        [
          Alcotest.test_case "join and leave mid-run" `Quick
            test_elastic_run;
          Alcotest.test_case "shed round-trip" `Quick test_shed_roundtrip;
        ] );
      ( "dump & audit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "dump round-trip" `Quick test_dump_roundtrip;
          Alcotest.test_case "malformed dump" `Quick test_dump_malformed;
          Alcotest.test_case "malformed scenario fields" `Quick
            test_dump_malformed_scenario_fields;
        ] );
    ]
