(* Tests for the distributed-systems simulator: topology invariants,
   engine determinism, every algorithm's correctness under sync and async
   timing, failure injection, asymptotic message-count bounds, and the
   seven-dimension taxonomy queries. *)

open Gp_distsim

let qtest = QCheck_alcotest.to_alcotest

let permutation ~seed n =
  let st = Random.State.make [| seed |] in
  let a = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let async = Engine.Asynchronous { max_delay = 3.0 }
let config ?(timing = Engine.Synchronous) ?(failures = []) ?(seed = 7) () =
  { Engine.default_config with Engine.timing; failures; seed }

(* ------------------------------------------------------------------ *)
(* Topologies                                                          *)
(* ------------------------------------------------------------------ *)

let test_topologies () =
  let ring = Topology.ring 6 in
  Alcotest.(check int) "ring degree" 2 (Topology.degree ring 3);
  Alcotest.(check int) "ring diameter" 3 (Topology.diameter ring);
  let comp = Topology.complete 5 in
  Alcotest.(check int) "complete edges" 20 (Topology.num_edges comp);
  Alcotest.(check int) "complete diameter" 1 (Topology.diameter comp);
  let star = Topology.star 7 in
  Alcotest.(check int) "star hub degree" 6 (Topology.degree star 0);
  Alcotest.(check int) "star diameter" 2 (Topology.diameter star);
  let grid = Topology.grid 3 4 in
  Alcotest.(check int) "grid nodes" 12 (Topology.num_nodes grid);
  Alcotest.(check int) "grid corner degree" 2 (Topology.degree grid 0);
  Alcotest.(check int) "grid diameter" 5 (Topology.diameter grid);
  let line = Topology.line 5 in
  Alcotest.(check int) "line diameter" 4 (Topology.diameter line)

let test_random_topology_connected () =
  let t = Topology.random ~seed:3 ~p:0.1 20 in
  Alcotest.(check bool) "diameter finite => connected" true
    (Topology.diameter t > 0)

(* BFS reach from node 0 — diameter ignores unreachable pairs, so this
   is the real connectivity check. *)
let reaches_all t =
  let n = Topology.num_nodes t in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(0) <- true;
  Queue.add 0 q;
  let count = ref 1 in
  while not (Queue.is_empty q) do
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          incr count;
          Queue.add v q
        end)
      (Topology.neighbors t (Queue.pop q))
  done;
  !count = n

let random_topo_connected_prop =
  qtest
    (QCheck.Test.make ~name:"random topology: connected for any (n, seed, p)"
       ~count:80
       QCheck.(triple (int_range 2 40) (int_range 0 10_000) (int_range 0 50))
       (fun (n, seed, pc) ->
         reaches_all (Topology.random ~seed ~p:(float_of_int pc /. 100.0) n)))

let random_topo_deterministic_prop =
  qtest
    (QCheck.Test.make ~name:"random topology: same seed, same graph"
       ~count:60
       QCheck.(triple (int_range 2 40) (int_range 0 10_000) (int_range 0 50))
       (fun (n, seed, pc) ->
         let p = float_of_int pc /. 100.0 in
         let a = Topology.random ~seed ~p n in
         let b = Topology.random ~seed ~p n in
         List.init n (fun i -> Topology.neighbors a i)
         = List.init n (fun i -> Topology.neighbors b i)))

(* The construction is a connecting line plus Bin(C(n,2) - (n-1), p)
   extra undirected edges, so the realized degree mass must sit within
   five standard deviations of that — and adjacency must be symmetric. *)
let random_topo_degree_prop =
  qtest
    (QCheck.Test.make ~name:"random topology: expected degree and symmetry"
       ~count:60
       QCheck.(triple (int_range 10 60) (int_range 0 10_000) (int_range 0 50))
       (fun (n, seed, pc) ->
         let p = float_of_int pc /. 100.0 in
         let t = Topology.random ~seed ~p n in
         let symmetric =
           List.for_all
             (fun i ->
               List.for_all
                 (fun j -> List.mem i (Topology.neighbors t j))
                 (Topology.neighbors t i))
             (List.init n (fun i -> i))
         in
         let undirected = Topology.num_edges t / 2 in
         let extra = float_of_int (undirected - (n - 1)) in
         let m' = float_of_int ((n * (n - 1) / 2) - (n - 1)) in
         let mean = p *. m' in
         let sd = sqrt (m' *. p *. (1.0 -. p)) in
         symmetric
         && Topology.num_edges t mod 2 = 0
         && Float.abs (extra -. mean) <= (5.0 *. sd) +. 2.0))

let test_tree_topology () =
  let t = Topology.binary_tree 7 in
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Topology.neighbors t 0);
  Alcotest.(check (list int)) "inner node" [ 0; 3; 4 ] (Topology.neighbors t 1)

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let topo = Topology.ring 9 in
  let uids = permutation ~seed:11 9 in
  let run () = Algorithms.Lcr.run ~config:(config ~timing:async ()) ~uids topo in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same message count"
    r1.Engine.metrics.Engine.messages_sent r2.Engine.metrics.Engine.messages_sent;
  Alcotest.(check bool) "same decisions" true
    (r1.Engine.decisions = r2.Engine.decisions);
  (* a different seed may deliver in a different order but elects the same
     leader *)
  let r3 =
    Algorithms.Lcr.run ~config:(config ~timing:async ~seed:99 ()) ~uids topo
  in
  Alcotest.(check bool) "same leader under different schedule" true
    (Algorithms.agreed r1 = Algorithms.agreed r3)

(* ------------------------------------------------------------------ *)
(* LCR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lcr_elects_max () =
  let n = 10 in
  let topo = Topology.ring_unidirectional n in
  let uids = permutation ~seed:5 n in
  let r = Algorithms.Lcr.run ~config:(config ()) ~uids topo in
  Alcotest.(check (option string)) "max uid elected" (Some (string_of_int n))
    (Algorithms.agreed r);
  Alcotest.(check bool) "everyone decided" true (Algorithms.all_decided r)

let lcr_prop =
  qtest
    (QCheck.Test.make ~name:"LCR elects the max uid (async, any seed)"
       ~count:60
       QCheck.(pair (int_range 3 25) (int_range 0 10_000))
       (fun (n, seed) ->
         let topo = Topology.ring_unidirectional n in
         let uids = permutation ~seed n in
         let r =
           Algorithms.Lcr.run ~config:(config ~timing:async ~seed ()) ~uids topo
         in
         Algorithms.agreed r = Some (string_of_int n)))

(* Telemetry transparency: a simulation produces identical decisions and
   metrics — same RNG stream, same event order — with a sink installed
   (spans + per-algorithm counters recorded) as without. *)
let telemetry_transparent_prop =
  qtest
    (QCheck.Test.make ~name:"telemetry never changes simulation results"
       ~count:50
       QCheck.(pair (int_range 3 15) (int_range 0 10_000))
       (fun (n, seed) ->
         let topo = Topology.ring_unidirectional n in
         let uids = permutation ~seed n in
         let run () =
           Algorithms.Lcr.run ~config:(config ~timing:async ~seed ()) ~uids topo
         in
         let off = run () in
         let on = Gp_telemetry.Tel.with_installed (fun _sink -> run ()) in
         off = on))

(* Worst case for LCR: uids decreasing along the send direction gives the
   Theta(n^2) message bound. *)
let test_lcr_message_bounds () =
  let n = 24 in
  let topo = Topology.ring_unidirectional n in
  let worst = Array.init n (fun i -> n - i) in
  let r = Algorithms.Lcr.run ~config:(config ()) ~uids:worst topo in
  let sent = r.Engine.metrics.Engine.messages_sent in
  (* sum of token travels = n + n-1 + ... + 1 plus n leader messages *)
  Alcotest.(check bool)
    (Printf.sprintf "worst case quadratic (%d msgs)" sent)
    true
    (sent >= n * (n + 1) / 2);
  let best = Array.init n (fun i -> i + 1) in
  let r2 = Algorithms.Lcr.run ~config:(config ()) ~uids:best topo in
  Alcotest.(check bool) "best case linear-ish" true
    (r2.Engine.metrics.Engine.messages_sent <= 3 * n)

(* ------------------------------------------------------------------ *)
(* HS                                                                  *)
(* ------------------------------------------------------------------ *)

let hs_prop =
  qtest
    (QCheck.Test.make ~name:"HS elects the max uid" ~count:50
       QCheck.(pair (int_range 3 20) (int_range 0 10_000))
       (fun (n, seed) ->
         let topo = Topology.ring n in
         let uids = permutation ~seed n in
         let r =
           Algorithms.Hs.run ~config:(config ~timing:async ~seed ()) ~uids topo
         in
         Algorithms.agreed r = Some (string_of_int n)))

(* HS uses O(n log n) messages even on the LCR-worst-case ordering. *)
let test_hs_beats_lcr_on_messages () =
  let n = 64 in
  let worst = Array.init n (fun i -> n - i) in
  let lcr =
    Algorithms.Lcr.run ~config:(config ())
      ~uids:worst (Topology.ring_unidirectional n)
  in
  let hs = Algorithms.Hs.run ~config:(config ()) ~uids:worst (Topology.ring n) in
  let lcr_msgs = lcr.Engine.metrics.Engine.messages_sent in
  let hs_msgs = hs.Engine.metrics.Engine.messages_sent in
  Alcotest.(check bool)
    (Printf.sprintf "HS (%d) < LCR (%d) at n=%d" hs_msgs lcr_msgs n)
    true (hs_msgs < lcr_msgs);
  (* and within the analytic bound ~ 8 n (log n + 1) *)
  let bound =
    int_of_float (8.0 *. float_of_int n *. (Float.log2 (float_of_int n) +. 1.0))
  in
  Alcotest.(check bool) "HS within O(n log n) bound" true (hs_msgs <= bound)

(* ------------------------------------------------------------------ *)
(* Broadcast / echo / BFS / Bellman-Ford                               *)
(* ------------------------------------------------------------------ *)

let test_flooding_informs_all () =
  let topo = Topology.random ~seed:4 ~p:0.15 25 in
  let r = Algorithms.Flood.run ~config:(config ~timing:async ()) ~root:0 ~value:77 topo in
  Alcotest.(check (option string)) "all decided payload" (Some "77")
    (Algorithms.agreed r);
  (* message bound: at most one send per directed edge plus root's burst *)
  Alcotest.(check bool) "O(m) messages" true
    (r.Engine.metrics.Engine.messages_sent <= Topology.num_edges topo + 1)

let test_echo_counts_nodes () =
  List.iter
    (fun topo ->
      let r = Algorithms.Echo.run ~config:(config ~timing:async ()) ~root:0 topo in
      Alcotest.(check (option string))
        (Topology.num_nodes topo |> Printf.sprintf "echo count on %d nodes")
        (Some (string_of_int (Topology.num_nodes topo)))
        r.Engine.decisions.(0))
    [ Topology.ring 8; Topology.grid 4 5; Topology.random ~seed:9 ~p:0.2 30;
      Topology.binary_tree 15 ]

let test_bfs_tree_distances () =
  let topo = Topology.grid 3 3 in
  let r = Algorithms.Bfs_tree.run ~config:(config ()) ~root:0 topo in
  (* manhattan distances from corner 0 in a 3x3 grid *)
  let expected = [| 0; 1; 2; 1; 2; 3; 2; 3; 4 |] in
  Array.iteri
    (fun i d ->
      Alcotest.(check (option string))
        (Printf.sprintf "node %d" i)
        (Some (string_of_int d))
        r.Engine.decisions.(i))
    expected

let bellman_ford_prop =
  qtest
    (QCheck.Test.make ~name:"async Bellman-Ford = BFS distances" ~count:40
       QCheck.(pair (int_range 5 20) (int_range 0 1000))
       (fun (n, seed) ->
         let topo = Topology.random ~seed ~p:0.15 n in
         let sync_r = Algorithms.Bfs_tree.run ~config:(config ()) ~root:0 topo in
         let async_r =
           Algorithms.Bellman_ford.run
             ~config:(config ~timing:async ~seed ())
             ~root:0 topo
         in
         sync_r.Engine.decisions = async_r.Engine.decisions))

(* ------------------------------------------------------------------ *)
(* Token ring & FloodMax (extensions)                                  *)
(* ------------------------------------------------------------------ *)

let test_token_ring_entries () =
  let n = 9 and entries = 4 in
  let topo = Topology.ring_unidirectional n in
  let r = Algorithms.Token_ring.run ~config:(config ()) ~entries topo in
  Alcotest.(check (option string)) "everyone entered exactly `entries` times"
    (Some (string_of_int entries))
    (Algorithms.agreed r);
  Alcotest.(check int) "messages = entries * n" (entries * n)
    r.Engine.metrics.Engine.messages_sent

let token_ring_prop =
  qtest
    (QCheck.Test.make ~name:"token ring: mutual exclusion bound holds"
       ~count:40
       QCheck.(pair (int_range 2 20) (int_range 1 6))
       (fun (n, entries) ->
         let topo = Topology.ring_unidirectional n in
         let r =
           Algorithms.Token_ring.run
             ~config:(config ~timing:async ())
             ~entries topo
         in
         Algorithms.agreed r = Some (string_of_int entries)
         && r.Engine.metrics.Engine.messages_sent = entries * n))

let floodmax_prop =
  qtest
    (QCheck.Test.make ~name:"FloodMax elects the max on arbitrary graphs"
       ~count:40
       QCheck.(pair (int_range 2 20) (int_range 0 1000))
       (fun (n, seed) ->
         let topo = Topology.random ~seed ~p:0.2 n in
         let uids = permutation ~seed:(seed + 1) n in
         let r =
           Algorithms.Floodmax.run ~config:(config ~timing:async ~seed ())
             ~uids topo
         in
         Algorithms.agreed r = Some (string_of_int n)))

let test_partially_synchronous () =
  let topo = Topology.ring_unidirectional 8 in
  let uids = permutation ~seed:2 8 in
  let config =
    { Engine.default_config with
      Engine.timing = Engine.Partially_synchronous { bound = 2.0 } }
  in
  let r = Algorithms.Lcr.run ~config ~uids topo in
  Alcotest.(check (option string)) "leader elected under bounded delay"
    (Some "8") (Algorithms.agreed r);
  Alcotest.(check bool) "finish time respects the bound" true
    (r.Engine.metrics.Engine.finish_time
    <= 2.0 *. float_of_int r.Engine.metrics.Engine.messages_delivered)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let test_crash_partitions_broadcast () =
  (* crash the middle of a line before it can forward: nodes beyond stay
     uninformed *)
  let topo = Topology.line 7 in
  let r =
    Algorithms.Flood.run
      ~config:
        (config ~failures:[ Engine.Crash { node = 3; at = 0.5 } ] ())
      ~root:0 ~value:5 topo
  in
  Alcotest.(check bool) "node beyond crash uninformed" true
    (r.Engine.decisions.(6) = None);
  Alcotest.(check bool) "node before crash informed" true
    (r.Engine.decisions.(2) = Some "5")

let test_drop_all_links () =
  let topo = Topology.ring 6 in
  let r =
    Algorithms.Flood.run
      ~config:(config ~failures:[ Engine.Drop_links { prob = 1.0 } ] ())
      ~root:0 ~value:9 topo
  in
  Alcotest.(check int) "all dropped"
    r.Engine.metrics.Engine.messages_sent
    r.Engine.metrics.Engine.messages_dropped;
  Alcotest.(check bool) "only root decided" true
    (r.Engine.decisions.(1) = None && r.Engine.decisions.(0) = Some "9")

let test_byzantine_corruption () =
  (* a byzantine hub corrupts the payload: leaves disagree with the root *)
  let topo = Topology.star 5 in
  let r =
    Algorithms.Flood.run
      ~config:
        (config
           ~failures:
             [ Engine.Byzantine
                 { node = 0;
                   corrupt = (fun (Algorithms.Flood.Payload _) ->
                     Algorithms.Flood.Payload 666) } ]
           ())
      ~root:0 ~value:1 topo
  in
  Alcotest.(check bool) "no agreement" true (Algorithms.agreed r = None);
  Alcotest.(check (option string)) "leaf got corrupted value" (Some "666")
    r.Engine.decisions.(1)

(* ------------------------------------------------------------------ *)
(* Golden event streams                                                *)
(* ------------------------------------------------------------------ *)

(* Metrics pinned from the engine BEFORE the Partition/timer extension:
   configurations that use neither must keep byte-identical event and
   RNG streams. If one of these moves, the extension has perturbed
   existing simulations — a regression, not a test to update. *)
let check_metrics name (r : Engine.result) ~sent ~delivered ~dropped ~events
    ~finish ~local =
  let m = r.Engine.metrics in
  Alcotest.(check int) (name ^ " sent") sent m.Engine.messages_sent;
  Alcotest.(check int) (name ^ " delivered") delivered
    m.Engine.messages_delivered;
  Alcotest.(check int) (name ^ " dropped") dropped m.Engine.messages_dropped;
  Alcotest.(check int) (name ^ " events") events m.Engine.events;
  Alcotest.(check int) (name ^ " local steps") local
    (Engine.total_local_steps m);
  Alcotest.(check bool)
    (Printf.sprintf "%s finish %.15f = %.15f" name m.Engine.finish_time
       finish)
    true
    (Float.abs (m.Engine.finish_time -. finish) < 1e-9)

let test_golden_streams () =
  let n = 9 in
  let r =
    Algorithms.Lcr.run
      ~config:
        (config ~timing:async
           ~failures:[ Engine.Drop_links { prob = 0.1 } ]
           ())
      ~uids:(Array.init n (fun i -> n - i))
      (Topology.ring_unidirectional n)
  in
  check_metrics "lcr-async-drop-seed7" r ~sent:32 ~delivered:28 ~dropped:4
    ~events:28 ~finish:12.178634918577517 ~local:28;
  Alcotest.(check bool) "lcr: drops starve the election" true
    (Array.for_all Option.is_none r.Engine.decisions);
  let n = 8 in
  let r =
    Algorithms.Hs.run
      ~config:(config ~timing:async ~seed:42 ())
      ~uids:(Array.init n (fun i -> n - i))
      (Topology.ring n)
  in
  check_metrics "hs-async-seed42" r ~sent:72 ~delivered:72 ~dropped:0
    ~events:72 ~finish:43.370576099971537 ~local:44;
  Alcotest.(check (option string)) "hs agreement" (Some "8")
    (Algorithms.agreed r);
  let r =
    Algorithms.Flood.run
      ~config:(config ~failures:[ Engine.Crash { node = 3; at = 0.5 } ] ())
      ~root:0 ~value:5 (Topology.line 7)
  in
  check_metrics "flood-crash" r ~sent:3 ~delivered:2 ~dropped:0 ~events:3
    ~finish:3.0 ~local:2

(* ------------------------------------------------------------------ *)
(* Partitions                                                          *)
(* ------------------------------------------------------------------ *)

let test_partition_isolates () =
  (* islands {0,1,2} and (implicitly) {3,4,5}: a complete-graph flood
     from 0 informs only its island while the partition lasts *)
  let topo = Topology.complete 6 in
  let r =
    Algorithms.Flood.run
      ~config:
        (config
           ~failures:
             [ Engine.Partition
                 { groups = [ [ 0; 1; 2 ] ]; from_ = 0.0; until = 1e9 } ]
           ())
      ~root:0 ~value:3 topo
  in
  List.iter
    (fun i ->
      Alcotest.(check (option string))
        (Printf.sprintf "island node %d informed" i)
        (Some "3") r.Engine.decisions.(i))
    [ 0; 1; 2 ];
  List.iter
    (fun i ->
      Alcotest.(check (option string))
        (Printf.sprintf "cut-off node %d uninformed" i)
        None r.Engine.decisions.(i))
    [ 3; 4; 5 ];
  Alcotest.(check bool) "cross-island messages count as dropped" true
    (r.Engine.metrics.Engine.messages_dropped > 0)

let test_partition_outside_window_is_transparent () =
  (* a partition whose window never overlaps the run must leave an
     async simulation byte-identical: the partition check draws no RNG *)
  let topo = Topology.ring_unidirectional 9 in
  let uids = permutation ~seed:11 9 in
  let plain =
    Algorithms.Lcr.run ~config:(config ~timing:async ()) ~uids topo
  in
  let windowed =
    Algorithms.Lcr.run
      ~config:
        (config ~timing:async
           ~failures:
             [ Engine.Partition
                 { groups = [ [ 0; 1 ] ]; from_ = 1e8; until = 2e8 } ]
           ())
      ~uids topo
  in
  Alcotest.(check bool) "identical result (decisions, halted, metrics)" true
    (plain = windowed)

let test_partition_heals () =
  (* the window closes before the flood starts flowing again: a message
     sent after [until] crosses freely *)
  let topo = Topology.line 3 in
  let algo =
    {
      Engine.algo_name = "late-send";
      initial =
        (fun ctx ->
          if ctx.Engine.self = 0 then ctx.Engine.timer ~delay:5.0 `Go);
      on_message =
        (fun ctx () ~src:_ -> function
          | `Go -> ctx.Engine.send 1 `Hello
          | `Hello -> ctx.Engine.decide "heard");
    }
  in
  let r =
    Engine.run
      ~config:
        (config
           ~failures:
             [ Engine.Partition
                 { groups = [ [ 0 ] ]; from_ = 0.0; until = 4.0 } ]
           ())
      topo algo
  in
  Alcotest.(check (option string)) "post-partition delivery" (Some "heard")
    r.Engine.decisions.(1)

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let tick_algo ~decide_at =
  {
    Engine.algo_name = "tick";
    initial =
      (fun ctx ->
        if ctx.Engine.self = 0 then ctx.Engine.timer ~delay:1.5 (`Tick 1));
    on_message =
      (fun ctx () ~src:_ (`Tick k) ->
        if k < decide_at then ctx.Engine.timer ~delay:2.0 (`Tick (k + 1))
        else begin
          ctx.Engine.decide (string_of_int k);
          ctx.Engine.halt ()
        end);
  }

let test_timer_local_alarm () =
  let topo = Topology.line 2 in
  let run failures =
    Engine.run ~config:(config ~failures ()) topo (tick_algo ~decide_at:2)
  in
  let r = run [] in
  let m = r.Engine.metrics in
  Alcotest.(check int) "timers are not messages" 0 m.Engine.messages_sent;
  Alcotest.(check int) "nor deliveries" 0 m.Engine.messages_delivered;
  Alcotest.(check int) "two timer events" 2 m.Engine.events;
  Alcotest.(check bool) "fires at the chosen delays" true
    (Float.abs (m.Engine.finish_time -. 3.5) < 1e-9);
  Alcotest.(check (option string)) "chain ran" (Some "2")
    r.Engine.decisions.(0);
  (* local alarms are exempt from message-level failure injection *)
  Alcotest.(check bool) "immune to drop-all" true
    (run [ Engine.Drop_links { prob = 1.0 } ] = r);
  Alcotest.(check bool) "immune to partitions" true
    (run
       [ Engine.Partition { groups = [ [ 0 ] ]; from_ = 0.0; until = 1e9 } ]
    = r)

let test_timer_dies_with_node () =
  let topo = Topology.line 2 in
  let armed_twice =
    {
      Engine.algo_name = "halted-timer";
      initial =
        (fun ctx ->
          if ctx.Engine.self = 0 then begin
            ctx.Engine.timer ~delay:1.0 `First;
            ctx.Engine.timer ~delay:10.0 `Second
          end);
      on_message =
        (fun ctx () ~src:_ -> function
          | `First ->
            ctx.Engine.decide "first";
            ctx.Engine.halt ()
          | `Second -> ctx.Engine.decide "second");
    }
  in
  let r = Engine.run ~config:(config ()) topo armed_twice in
  Alcotest.(check (option string)) "pending timer dies on halt"
    (Some "first") r.Engine.decisions.(0);
  let crashed =
    Engine.run
      ~config:(config ~failures:[ Engine.Crash { node = 0; at = 0.5 } ] ())
      topo armed_twice
  in
  Alcotest.(check (option string)) "timer never fires on a crashed node"
    None crashed.Engine.decisions.(0)

(* ------------------------------------------------------------------ *)
(* Randomized election, local computation accounting                   *)
(* ------------------------------------------------------------------ *)

let test_randomized_election () =
  let topo = Topology.ring_unidirectional 12 in
  let r, distinct = Algorithms.Randomized_election.run ~config:(config ()) ~seed:21 topo in
  Alcotest.(check bool) "ids distinct" true distinct;
  Alcotest.(check bool) "a unique leader" true (Algorithms.agreed r <> None)

let test_local_computation_accounted () =
  let n = 16 in
  let topo = Topology.ring_unidirectional n in
  let uids = Array.init n (fun i -> n - i) in
  let r = Algorithms.Lcr.run ~config:(config ()) ~uids topo in
  let total = Engine.total_local_steps r.Engine.metrics in
  Alcotest.(check bool) "local steps tracked" true (total > 0);
  (* comparisons are counted per token receipt, so local work tracks
     message deliveries for LCR *)
  Alcotest.(check bool) "local steps <= deliveries" true
    (total <= r.Engine.metrics.Engine.messages_delivered)

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let test_taxonomy_pick () =
  let t = Taxonomy7.build () in
  let best =
    Taxonomy7.pick_for t ~problem:"leader-election"
      ~topology:"bidirectional-ring" ~measure:"messages"
  in
  Alcotest.(check (list string)) "HS for bidirectional rings" [ "HS" ]
    (List.map (fun e -> e.Gp_concepts.Taxonomy.en_name) best);
  let uni =
    Taxonomy7.pick_for t ~problem:"leader-election"
      ~topology:"unidirectional-ring" ~measure:"messages"
  in
  Alcotest.(check bool) "LCR among unidirectional candidates" true
    (List.exists
       (fun e -> e.Gp_concepts.Taxonomy.en_name = "LCR")
       uni)

let test_taxonomy_attributes_inherited () =
  let t = Taxonomy7.build () in
  let attrs = Gp_concepts.Taxonomy.attributes t "election-uni-ring" in
  Alcotest.(check (option string)) "inherits information-sharing"
    (Some "message-passing")
    (List.assoc_opt "information-sharing" attrs);
  Alcotest.(check (option string)) "own timing" (Some "asynchronous")
    (List.assoc_opt "timing" attrs)

let () =
  Alcotest.run "gp_distsim"
    [
      ( "topology",
        [
          Alcotest.test_case "shapes" `Quick test_topologies;
          Alcotest.test_case "random connected" `Quick
            test_random_topology_connected;
          Alcotest.test_case "tree" `Quick test_tree_topology;
          random_topo_connected_prop;
          random_topo_deterministic_prop;
          random_topo_degree_prop;
        ] );
      ( "engine",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "golden streams" `Quick test_golden_streams;
          telemetry_transparent_prop ] );
      ( "leader election",
        [
          Alcotest.test_case "LCR elects max" `Quick test_lcr_elects_max;
          lcr_prop;
          Alcotest.test_case "LCR message bounds" `Quick
            test_lcr_message_bounds;
          hs_prop;
          Alcotest.test_case "HS beats LCR" `Quick
            test_hs_beats_lcr_on_messages;
          Alcotest.test_case "randomized election" `Quick
            test_randomized_election;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "token ring" `Quick test_token_ring_entries;
          token_ring_prop;
          floodmax_prop;
          Alcotest.test_case "partially synchronous" `Quick
            test_partially_synchronous;
        ] );
      ( "broadcast & trees",
        [
          Alcotest.test_case "flooding" `Quick test_flooding_informs_all;
          Alcotest.test_case "echo counts nodes" `Quick test_echo_counts_nodes;
          Alcotest.test_case "bfs distances" `Quick test_bfs_tree_distances;
          bellman_ford_prop;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash partitions" `Quick
            test_crash_partitions_broadcast;
          Alcotest.test_case "drop all" `Quick test_drop_all_links;
          Alcotest.test_case "byzantine" `Quick test_byzantine_corruption;
          Alcotest.test_case "partition isolates" `Quick
            test_partition_isolates;
          Alcotest.test_case "partition outside window" `Quick
            test_partition_outside_window_is_transparent;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "timer local alarm" `Quick
            test_timer_local_alarm;
          Alcotest.test_case "timer dies with node" `Quick
            test_timer_dies_with_node;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "local computation" `Quick
            test_local_computation_accounted;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "pick" `Quick test_taxonomy_pick;
          Alcotest.test_case "attributes" `Quick
            test_taxonomy_attributes_inherited;
        ] );
    ]
