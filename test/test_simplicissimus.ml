(* Tests for the concept-based rewriting optimizer: every Fig. 5 instance,
   guard soundness (rules must NOT fire on non-models), user rules,
   certification, and semantics preservation on random expressions. *)

open Gp_simplicissimus

let qtest = QCheck_alcotest.to_alcotest

let insts = Instances.standard ()
let rules = Rules.builtin @ [ Rules.lidia_inverse ]

let rw e = (Engine.rewrite ~rules ~insts e).Engine.output

let check_rw name e expected =
  Alcotest.(check string) name (Expr.to_string expected) (Expr.to_string (rw e))

(* ------------------------------------------------------------------ *)
(* Fig. 5 row 1: x + 0 -> x for each Monoid instance                   *)
(* ------------------------------------------------------------------ *)

let test_fig5_monoid_instances () =
  let open Expr in
  (* i * 1 -> i *)
  check_rw "i*1 -> i" (binop "*" (ivar "i") (int 1)) (ivar "i");
  (* f * 1.0 -> f *)
  check_rw "f*1.0 -> f" (binop "*" (fvar "f") (float 1.0)) (fvar "f");
  (* b && true -> b *)
  check_rw "b&&true -> b" (binop "&&" (bvar "b") (bool true)) (bvar "b");
  (* i & ~0 -> i *)
  check_rw "i & allbits -> i" (binop "&" (ivar "i") (int (-1))) (ivar "i");
  (* concat(s, "") -> s *)
  check_rw "s^\"\" -> s" (binop "^" (svar "s") (string "")) (svar "s");
  (* A . I -> A *)
  check_rw "A.I -> A"
    (binop "." (mvar "A") (Ident ("matrix", ".")))
    (mvar "A");
  (* left identities too *)
  check_rw "1*i -> i" (binop "*" (int 1) (ivar "i")) (ivar "i");
  check_rw "0+i -> i" (binop "+" (int 0) (ivar "i")) (ivar "i")

(* ------------------------------------------------------------------ *)
(* Fig. 5 row 2: x + (-x) -> 0 for each Group instance                 *)
(* ------------------------------------------------------------------ *)

let test_fig5_group_instances () =
  let open Expr in
  (* i + (-i) -> 0 *)
  check_rw "i+(-i) -> 0"
    (binop "+" (ivar "i") (unop "neg" (ivar "i")))
    (int 0);
  (* f * (1/f) -> 1.0 *)
  check_rw "f*(inv f) -> 1.0"
    (binop "*" (fvar "f") (unop "inv" (fvar "f")))
    (float 1.0);
  (* r * r^-1 -> 1 *)
  check_rw "r*(inv r) -> 1"
    (binop "*" (qvar "r") (unop "inv" (qvar "r")))
    (rat Gp_algebra.Rational.one);
  (* A . A^-1 -> I (invertible matrices) *)
  let a = Var ("A", "invertible_matrix") in
  check_rw "A.A^-1 -> I"
    (Op (".", "invertible_matrix", [ a; Op ("inv", "invertible_matrix", [ a ]) ]))
    (Ident ("invertible_matrix", "."));
  (* left inverse *)
  check_rw "(-i)+i -> 0"
    (binop "+" (unop "neg" (ivar "i")) (ivar "i"))
    (int 0);
  (* double inverse *)
  check_rw "neg(neg i) -> i" (unop "neg" (unop "neg" (ivar "i"))) (ivar "i")

(* ------------------------------------------------------------------ *)
(* Guard soundness                                                     *)
(* ------------------------------------------------------------------ *)

(* int-with-times is a Monoid but NOT a Group: i * inv(i) must not
   rewrite. *)
let test_group_rule_does_not_fire_on_monoid () =
  let open Expr in
  let e = binop "*" (ivar "i") (Op ("inv", "int", [ ivar "i" ])) in
  Alcotest.(check string) "no rewrite" (Expr.to_string e)
    (Expr.to_string (rw e))

(* string has no inverse; matrix (non-invertible) is Monoid only. *)
let test_no_inverse_no_fire () =
  let open Expr in
  let e = binop "." (mvar "A") (Op ("inv", "matrix", [ mvar "A" ])) in
  Alcotest.(check string) "matrix monoid: A . inv A stays" (Expr.to_string e)
    (Expr.to_string (rw e))

(* x + (-y) with x <> y: the nonlinear pattern must not fire. *)
let test_nonlinear_pattern () =
  let open Expr in
  let e = binop "+" (ivar "x") (unop "neg" (ivar "y")) in
  Alcotest.(check string) "x+(-y) stays" (Expr.to_string e)
    (Expr.to_string (rw e));
  (* but structurally equal compound operands do fire *)
  let xy = binop "*" (ivar "x") (ivar "y") in
  let e2 = binop "+" xy (unop "neg" (binop "*" (ivar "x") (ivar "y"))) in
  check_rw "(x*y)+-(x*y) -> 0" e2 (int 0)

(* An unknown carrier: no instance entry, no rewriting at all. *)
let test_unknown_carrier () =
  let open Expr in
  let e = Op ("+", "widget", [ Var ("w", "widget"); Lit (VInt 0) ]) in
  Alcotest.(check string) "unknown type untouched" (Expr.to_string e)
    (Expr.to_string (rw e))

(* ------------------------------------------------------------------ *)
(* Nested and repeated application                                     *)
(* ------------------------------------------------------------------ *)

let test_nested_fixpoint () =
  let open Expr in
  (* ((i + 0) * 1) + (-(i)) -> 0 : needs identity rules to expose the
     inverse redex *)
  let e =
    binop "+"
      (binop "*" (binop "+" (ivar "i") (int 0)) (int 1))
      (unop "neg" (ivar "i"))
  in
  check_rw "nested chain" e (int 0)

let test_step_trace_records_rules () =
  let open Expr in
  let e = binop "+" (binop "+" (ivar "i") (int 0)) (unop "neg" (ivar "i")) in
  let r = Engine.rewrite ~rules ~insts e in
  let names = List.map (fun s -> s.Engine.st_rule) r.Engine.steps in
  Alcotest.(check (list string)) "trace"
    [ "right-identity"; "right-inverse" ]
    names;
  Alcotest.(check int) "ops collapse" 0 r.Engine.ops_after

(* ------------------------------------------------------------------ *)
(* User rules: the LiDIA example                                       *)
(* ------------------------------------------------------------------ *)

let test_lidia_rule () =
  let open Expr in
  let f = Var ("f", "bigfloat") in
  let e = Op ("/", "bigfloat", [ float 1.0; f ]) in
  let out = rw e in
  Alcotest.(check string) "1.0/f -> Inverse(f)" "Inverse(f)"
    (Expr.to_string out);
  (* the rule is type-specific: plain float division is untouched *)
  let e2 = Op ("/", "float", [ float 1.0; fvar "g" ]) in
  Alcotest.(check string) "float / untouched" (Expr.to_string e2)
    (Expr.to_string (rw e2))

(* ------------------------------------------------------------------ *)
(* Ring annihilation rules                                             *)
(* ------------------------------------------------------------------ *)

let test_ring_annihilation () =
  let open Expr in
  check_rw "i*0 -> 0" (binop "*" (ivar "i") (int 0)) (int 0);
  check_rw "0*i -> 0" (binop "*" (int 0) (ivar "i")) (int 0);
  check_rw "f*0.0 -> 0.0" (binop "*" (fvar "f") (float 0.0)) (float 0.0);
  check_rw "r*0 -> 0"
    (binop "*" (qvar "r") (rat Gp_algebra.Rational.zero))
    (rat Gp_algebra.Rational.zero);
  (* nested: (i*0) + j -> j via annihilation then left identity *)
  check_rw "(i*0)+j -> j"
    (binop "+" (binop "*" (ivar "i") (int 0)) (ivar "j"))
    (ivar "j")

let test_ring_guard_sound () =
  let open Expr in
  (* strings have no ring: s ^ "" is identity (fires) but there is no
     annihilation notion — and an unregistered carrier stays untouched *)
  let e = Op ("*", "widget", [ Var ("w", "widget"); Lit (VInt 0) ]) in
  Alcotest.(check string) "no ring, no fire" (Expr.to_string e)
    (Expr.to_string (rw e));
  (* bool && has no ring registered either: b && false must NOT rewrite
     via the ring rule (no (bool, &&, ||) ring declared) *)
  let e2 = binop "&&" (bvar "b") (bool false) in
  Alcotest.(check string) "no bool ring" (Expr.to_string e2)
    (Expr.to_string (rw e2))

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

let test_certification () =
  let reports = Certify.certify_builtin () in
  List.iter
    (fun c ->
      match c.Certify.cert_verdict with
      | Gp_athena.Deduction.Proved -> ()
      | v ->
        Alcotest.failf "rule %s not certified: %a" c.Certify.cert_rule
          Gp_athena.Deduction.pp_verdict v)
    reports;
  Alcotest.(check int) "all builtin rules certified"
    (List.length Rules.builtin) (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Rules.rule_name ^ " flagged certified")
        true
        !(r.Rules.certified))
    Rules.builtin

let test_only_certified_mode () =
  (* fresh, uncertified copies of the rules: nothing may fire *)
  let fresh_rule =
    Rules.make ~name:"right-identity (uncertified)" ~guard:Instances.Monoid
      ~lhs:(Rules.P_op [ Rules.P_any "x"; Rules.P_identity ])
      ~rhs:(Rules.T_var "x") ()
  in
  let open Expr in
  let e = binop "*" (ivar "i") (int 1) in
  let r =
    Engine.rewrite ~only_certified:true ~rules:[ fresh_rule ] ~insts e
  in
  Alcotest.(check string) "uncertified rule skipped" (Expr.to_string e)
    (Expr.to_string r.Engine.output);
  fresh_rule.Rules.certified := true;
  let r2 =
    Engine.rewrite ~only_certified:true ~rules:[ fresh_rule ] ~insts e
  in
  Alcotest.(check string) "certified rule fires" "i"
    (Expr.to_string r2.Engine.output)

let test_discharge_instance_axioms () =
  let discharged = Certify.discharge_instance_axioms insts in
  Alcotest.(check bool) "some axioms discharged" true (discharged <> [])

(* ------------------------------------------------------------------ *)
(* Surface syntax                                                      *)
(* ------------------------------------------------------------------ *)

let test_sparser_basics () =
  Alcotest.(check string) "precedence" "(y + (x * 1))"
    (Expr.to_string (Sparser.parse "y + x*1"));
  Alcotest.(check string) "parens" "((y + x) * 1)"
    (Expr.to_string (Sparser.parse "(y + x) * 1"));
  Alcotest.(check string) "minus desugars" "(x + neg(y))"
    (Expr.to_string (Sparser.parse "x - y"));
  Alcotest.(check string) "typed var + float lit" "(f * 1)"
    (Expr.to_string (Sparser.parse "f:float * 1.0"));
  Alcotest.(check string) "unary application" "neg(x)"
    (Expr.to_string (Sparser.parse "neg(x)"));
  Alcotest.(check string) "strings and concat" "(s ^ \"\")"
    (Expr.to_string (Sparser.parse {|s:string ^ ""|}))

let test_sparser_type_mismatch () =
  List.iter
    (fun src ->
      match Sparser.parse src with
      | e -> Alcotest.failf "accepted %S as %s" src (Expr.to_string e)
      | exception Sparser.Parse_error _ -> ())
    [ "x + 1.0"; "x:float + 1"; "b:bool + 1"; "x + "; "(x"; "x ~ y" ]

let test_sparser_pipeline () =
  (* parse, rewrite, evaluate end-to-end *)
  let e = Sparser.parse "(x*1 + 0) + (0 - x)" in
  let r = Engine.rewrite ~rules ~insts e in
  Alcotest.(check string) "collapses to 0" "0"
    (Expr.to_string r.Engine.output);
  let v = Eval.eval ~env:[ ("x", Expr.VInt 9) ] e in
  Alcotest.(check bool) "original also evaluates to 0" true
    (Expr.value_equal v (Expr.VInt 0))

(* ------------------------------------------------------------------ *)
(* Semantics preservation (property)                                   *)
(* ------------------------------------------------------------------ *)

(* Random int expressions over +, *, &, |, neg with variables x,y,z and
   identity-heavy literals (to give the rules targets). *)
let int_expr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map Expr.int (oneof [ return 0; return 1; return (-1); int_range (-9) 9 ]);
                oneofl [ Expr.ivar "x"; Expr.ivar "y"; Expr.ivar "z" ];
              ]
          else
            oneof
              [
                map2
                  (fun op (a, b) -> Expr.binop op a b)
                  (oneofl [ "+"; "*"; "&"; "|" ])
                  (pair (self (n / 2)) (self (n / 2)));
                map (fun a -> Expr.unop "neg" a) (self (n - 1));
              ])
        (min n 20))

let int_expr = QCheck.make ~print:Expr.to_string int_expr_gen

let semantics_prop =
  qtest
    (QCheck.Test.make ~name:"rewriting preserves evaluation (int)" ~count:500
       int_expr (fun e ->
         let env = [ ("x", Expr.VInt 3); ("y", Expr.VInt (-7)); ("z", Expr.VInt 11) ] in
         let before = Eval.eval ~env e in
         let after = Eval.eval ~env (rw e) in
         Expr.value_equal before after))

let shrink_prop =
  qtest
    (QCheck.Test.make ~name:"rewriting never grows the expression" ~count:500
       int_expr (fun e ->
         Expr.op_count (rw e) <= Expr.op_count e))

let idempotent_prop =
  qtest
    (QCheck.Test.make ~name:"rewriting is idempotent" ~count:300 int_expr
       (fun e ->
         let once = rw e in
         Expr.equal (rw once) once))

(* rational expressions: + * neg inv with nonzero literals *)
let rat_expr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map
                  (fun (a, b) ->
                    Expr.rat (Gp_algebra.Rational.make a b))
                  (pair (int_range 1 9) (int_range 1 9));
                oneofl [ Expr.qvar "p"; Expr.qvar "q" ];
              ]
          else
            oneof
              [
                map2
                  (fun op (a, b) -> Expr.binop op a b)
                  (oneofl [ "+"; "*" ])
                  (pair (self (n / 2)) (self (n / 2)));
                map (fun a -> Expr.unop "neg" a) (self (n - 1));
              ])
        (min n 14))

let rat_semantics_prop =
  qtest
    (QCheck.Test.make ~name:"rewriting preserves evaluation (rational)"
       ~count:300
       (QCheck.make ~print:Expr.to_string rat_expr_gen)
       (fun e ->
         let env =
           [ ("p", Expr.VRat (Gp_algebra.Rational.make 2 3));
             ("q", Expr.VRat (Gp_algebra.Rational.make (-5) 4)) ]
         in
         Expr.value_equal (Eval.eval ~env e) (Eval.eval ~env (rw e))))

(* Telemetry transparency: the instrumented entry point returns the same
   result with no sink (flag-check-only path), with a sink installed
   (spans + counters recorded), and as the bare uninstrumented core. *)
let telemetry_transparent_prop =
  qtest
    (QCheck.Test.make ~name:"telemetry never changes rewrite results"
       ~count:200 int_expr (fun e ->
         let r_base = Engine.rewrite_uninstrumented ~rules ~insts e in
         let r_off = Engine.rewrite ~rules ~insts e in
         let r_on =
           Gp_telemetry.Tel.with_installed (fun _sink ->
               Engine.rewrite ~rules ~insts e)
         in
         r_base = r_off && r_off = r_on))

(* ------------------------------------------------------------------ *)
(* Budget exhaustion: payload of Did_not_terminate                     *)
(* ------------------------------------------------------------------ *)

(* A deliberately looping user rule: f(x, y) -> f(y, x) swaps forever.
   The engine must stop at its step budget and report how far it got. *)
let test_budget_exhaustion () =
  let swap =
    Rules.make ~user_type:"int" ~user_op:"f" ~name:"swap-forever"
      ~guard:Instances.Semigroup
      ~lhs:(Rules.P_exact ("f", [ Rules.P_any "x"; Rules.P_any "y" ]))
      ~rhs:(Rules.T_exact ("f", [ Rules.T_var "y"; Rules.T_var "x" ]))
      ()
  in
  let e = Expr.Op ("f", "int", [ Expr.ivar "a"; Expr.ivar "b" ]) in
  let run engine =
    match engine ~rules:(rules @ [ swap ]) ~insts e with
    | (_ : Engine.result) -> Alcotest.fail "looping rule terminated"
    | exception Engine.Did_not_terminate { dnt_input; dnt_partial; dnt_steps }
      ->
      (dnt_input, dnt_partial, dnt_steps)
  in
  let input, partial, steps =
    run (fun ~rules ~insts e -> Engine.rewrite ~rules ~insts e)
  in
  Alcotest.(check bool) "input preserved" true (Expr.equal input e);
  Alcotest.(check int) "steps accumulated up to the budget" 9_999
    (List.length steps);
  (* every recorded step is the swap rule on the int carrier *)
  List.iter
    (fun (s : Engine.step) ->
      Alcotest.(check string) "rule name" "swap-forever" s.Engine.st_rule)
    steps;
  (* the partial term is well-formed: still an f-node over {a, b} *)
  (match partial with
  | Expr.Op ("f", "int", [ x; y ]) ->
    Alcotest.(check bool) "args are a permutation of {a, b}" true
      ((Expr.equal x (Expr.ivar "a") && Expr.equal y (Expr.ivar "b"))
      || (Expr.equal x (Expr.ivar "b") && Expr.equal y (Expr.ivar "a")))
  | other ->
    Alcotest.failf "unexpected partial term %s" (Expr.to_string other));
  (* the reference engine exhausts identically *)
  let _, ref_partial, ref_steps =
    run (fun ~rules ~insts e -> Engine.rewrite_reference ~rules ~insts e)
  in
  Alcotest.(check int) "reference steps" (List.length steps)
    (List.length ref_steps);
  Alcotest.(check bool) "reference partial" true
    (Expr.equal partial ref_partial)

(* ------------------------------------------------------------------ *)
(* Instance-table index invariants                                     *)
(* ------------------------------------------------------------------ *)

let test_entries_memoised () =
  let t = Instances.create () in
  Instances.add t ~ty:"a" ~op:"+" Instances.Monoid;
  Instances.add t ~ty:"b" ~op:"*" Instances.Monoid;
  let l1 = Instances.entries t in
  Alcotest.(check bool) "same list between mutations (physical)" true
    (Instances.entries t == l1);
  Alcotest.(check (list string)) "insertion order" [ "a"; "b" ]
    (List.map (fun e -> e.Instances.e_type) l1);
  Instances.add t ~ty:"c" ~op:"." Instances.Semigroup;
  let l2 = Instances.entries t in
  Alcotest.(check bool) "mutation invalidates the memo" true (not (l1 == l2));
  Alcotest.(check (list string)) "order after mutation" [ "a"; "b"; "c" ]
    (List.map (fun e -> e.Instances.e_type) l2)

(* ------------------------------------------------------------------ *)
(* Indexed engine == linear-scan reference (property)                  *)
(* ------------------------------------------------------------------ *)

(* Random instance worlds over a small pool of types/ops, with random
   levels, identities and inverse ops; random expressions over the same
   symbols.  The indexed engine must agree with the retained seed
   implementation step-for-step — including after interleaved table
   mutations (stale-index detection). *)

let world_gen =
  let open QCheck.Gen in
  let tys = [ "int"; "float"; "t0"; "t1"; "t2" ] in
  let ops = [ "+"; "*"; "op0"; "op1"; "op2" ] in
  let invs = [ "neg"; "inv"; "iop0" ] in
  let level =
    oneofl
      [ Instances.Semigroup; Instances.Monoid; Instances.Group;
        Instances.Abelian_group ]
  in
  let decl =
    oneofl tys >>= fun ty ->
    oneofl ops >>= fun op ->
    level >>= fun lv ->
    oneofl [ None; Some (Expr.VInt 0); Some (Expr.VInt 1) ]
    >>= fun identity ->
    (match lv with
    | Instances.Group | Instances.Abelian_group ->
      map (fun i -> Some i) (oneofl invs)
    | Instances.Semigroup | Instances.Monoid ->
      oneofl [ None; Some "neg" ])
    >>= fun inverse -> return (ty, op, lv, identity, inverse)
  in
  pair (list_size (int_range 1 12) decl) (list_size (int_range 0 4) decl)

let world_expr_gen =
  let open QCheck.Gen in
  let tys = [ "int"; "float"; "t0"; "t1"; "t2" ] in
  let ops = [ "+"; "*"; "op0"; "op1"; "op2" ] in
  let invs = [ "neg"; "inv"; "iop0" ] in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map Expr.int (int_range (-3) 3);
                oneofl [ Expr.ivar "x"; Expr.ivar "y" ];
                map2
                  (fun t o -> Expr.Ident (t, o))
                  (oneofl tys) (oneofl ops);
              ]
          else
            oneof
              [
                (oneofl ops >>= fun o ->
                 oneofl tys >>= fun t ->
                 map2
                   (fun a b -> Expr.Op (o, t, [ a; b ]))
                   (self (n / 2)) (self (n / 2)));
                (oneofl invs >>= fun o ->
                 oneofl tys >>= fun t ->
                 map (fun a -> Expr.Op (o, t, [ a ])) (self (n - 1)));
              ])
        (min n 16))

let build_world (decls, _) =
  let t = Instances.create () in
  List.iter
    (fun (ty, op, lv, identity, inverse) ->
      Instances.add t ?identity ?inverse ~ty ~op lv)
    decls;
  t

let apply_second_batch t (_, extra) =
  List.iter
    (fun (ty, op, lv, identity, inverse) ->
      Instances.add t ?identity ?inverse ~ty ~op lv)
    extra

let step_equal (a : Engine.step) (b : Engine.step) =
  String.equal a.Engine.st_rule b.Engine.st_rule
  && a.Engine.st_carrier = b.Engine.st_carrier
  && Expr.equal a.Engine.st_before b.Engine.st_before
  && Expr.equal a.Engine.st_after b.Engine.st_after

let engines_agree ~rules ~insts e =
  let run f =
    try Ok (f ())
    with Engine.Did_not_terminate { dnt_partial; dnt_steps; _ } ->
      Error (dnt_partial, List.length dnt_steps)
  in
  let a = run (fun () -> Engine.rewrite ~rules ~insts e) in
  let b = run (fun () -> Engine.rewrite_reference ~rules ~insts e) in
  match a, b with
  | Ok ra, Ok rb ->
    Expr.equal ra.Engine.output rb.Engine.output
    && List.length ra.Engine.steps = List.length rb.Engine.steps
    && List.for_all2 step_equal ra.Engine.steps rb.Engine.steps
    && ra.Engine.ops_after = rb.Engine.ops_after
  | Error (pa, na), Error (pb, nb) -> Expr.equal pa pb && na = nb
  | Ok _, Error _ | Error _, Ok _ -> false

let equiv_rules =
  Rules.builtin
  @ [
      Rules.lidia_inverse;
      (* a user rule whose exact head symbol collides with a generated op *)
      Rules.make ~user_type:"t0" ~user_op:"op0" ~name:"u0-project"
        ~guard:Instances.Semigroup
        ~lhs:(Rules.P_exact ("op0", [ Rules.P_any "x"; Rules.P_any "y" ]))
        ~rhs:(Rules.T_var "x") ();
    ]

let engine_equiv_prop =
  qtest
    (QCheck.Test.make
       ~name:"indexed rewrite == linear-scan reference (random worlds)"
       ~count:300
       (QCheck.pair
          (QCheck.make world_gen)
          (QCheck.make ~print:Expr.to_string world_expr_gen))
       (fun (world, e) ->
         let insts = build_world world in
         engines_agree ~rules:equiv_rules ~insts e
         && begin
              (* mutate the table, then re-check: the indexes (by_key,
                 by_inverse, entries memo) must track the mutation *)
              apply_second_batch insts world;
              engines_agree ~rules:equiv_rules ~insts e
            end))

let lookup_equiv_prop =
  qtest
    (QCheck.Test.make
       ~name:"indexed find/inverse_carriers == entry-list scan"
       ~count:300 (QCheck.make world_gen)
       (fun world ->
         let insts = build_world world in
         let check () =
           let es = Instances.entries insts in
           let recent_first = List.rev es in
           List.for_all
             (fun (e : Instances.entry) ->
               let ty = e.Instances.e_type and op = e.Instances.e_op in
               (* find: most recent declaration wins *)
               let ref_find =
                 List.find_opt
                   (fun (e' : Instances.entry) ->
                     String.equal e'.Instances.e_type ty
                     && String.equal e'.Instances.e_op op)
                   recent_first
               in
               Instances.find insts ~ty ~op = ref_find
               (* inverse_carriers: insertion-order filter of the list *)
               && Instances.inverse_carriers insts ~ty ~op
                  = List.filter_map
                      (fun (e' : Instances.entry) ->
                        if
                          String.equal e'.Instances.e_type ty
                          && e'.Instances.e_inverse = Some op
                        then Some (ty, e'.Instances.e_op)
                        else None)
                      es)
             es
         in
         check ()
         && begin
              apply_second_batch insts world;
              check ()
            end))

let test_matrix_eval () =
  let open Expr in
  let q = Gp_algebra.Rational.of_int in
  let m = Gp_algebra.Instances.Qmat.of_rows [ [ q 1; q 2 ]; [ q 3; q 4 ] ] in
  let e = binop "." (Lit (VMat m)) (Ident ("matrix", ".")) in
  let v = Eval.eval ~env:[] ~mat_dim:2 e in
  Alcotest.(check bool) "M . I = M" true
    (Expr.value_equal v (VMat m));
  (* and the rewriter removes the multiplication entirely *)
  let r = Engine.rewrite ~rules ~insts e in
  Alcotest.(check int) "0 ops after" 0 r.Engine.ops_after

let () =
  Alcotest.run "gp_simplicissimus"
    [
      ( "fig5 instances",
        [
          Alcotest.test_case "monoid row" `Quick test_fig5_monoid_instances;
          Alcotest.test_case "group row" `Quick test_fig5_group_instances;
        ] );
      ( "guard soundness",
        [
          Alcotest.test_case "group rule vs monoid" `Quick
            test_group_rule_does_not_fire_on_monoid;
          Alcotest.test_case "no inverse no fire" `Quick
            test_no_inverse_no_fire;
          Alcotest.test_case "nonlinear pattern" `Quick test_nonlinear_pattern;
          Alcotest.test_case "unknown carrier" `Quick test_unknown_carrier;
        ] );
      ( "engine",
        [
          Alcotest.test_case "nested fixpoint" `Quick test_nested_fixpoint;
          Alcotest.test_case "step trace" `Quick test_step_trace_records_rules;
          Alcotest.test_case "matrix eval" `Quick test_matrix_eval;
          Alcotest.test_case "budget exhaustion payload" `Quick
            test_budget_exhaustion;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "entries memoised" `Quick test_entries_memoised;
          engine_equiv_prop;
          lookup_equiv_prop;
        ] );
      ("user rules", [ Alcotest.test_case "lidia" `Quick test_lidia_rule ]);
      ( "ring rules",
        [
          Alcotest.test_case "annihilation" `Quick test_ring_annihilation;
          Alcotest.test_case "ring guard" `Quick test_ring_guard_sound;
        ] );
      ( "surface syntax",
        [
          Alcotest.test_case "basics" `Quick test_sparser_basics;
          Alcotest.test_case "type mismatch" `Quick
            test_sparser_type_mismatch;
          Alcotest.test_case "pipeline" `Quick test_sparser_pipeline;
        ] );
      ( "certification",
        [
          Alcotest.test_case "builtin certified" `Quick test_certification;
          Alcotest.test_case "only-certified mode" `Quick
            test_only_certified_mode;
          Alcotest.test_case "instance axioms discharged" `Quick
            test_discharge_instance_axioms;
        ] );
      ( "properties",
        [ semantics_prop; shrink_prop; idempotent_prop; rat_semantics_prop;
          telemetry_transparent_prop ] );
    ]
