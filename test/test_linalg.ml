(* Tests for gp_linalg: complex arithmetic, the two vector-space
   structures on complex vectors, and the CLACRM mixed-precision kernel
   against the promoted baseline. *)

open Gp_linalg

let qtest = QCheck_alcotest.to_alcotest

let cgen =
  QCheck.map
    (fun (a, b) -> Complexf.make a b)
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))

(* ------------------------------------------------------------------ *)
(* Complex numbers                                                     *)
(* ------------------------------------------------------------------ *)

let test_complex_basics () =
  let open Complexf in
  let z = make 3.0 4.0 in
  Alcotest.(check (float 1e-12)) "abs" 5.0 (abs z);
  Alcotest.(check bool) "i*i = -1" true
    (close (mul i i) (of_float (-1.0)));
  Alcotest.(check bool) "conj" true (close (conj z) (make 3.0 (-4.0)));
  Alcotest.(check bool) "z * inv z = 1" true (close (mul z (inv z)) one);
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (inv zero))

let complex_field_props =
  [
    qtest
      (QCheck.Test.make ~name:"complex mul commutative" ~count:200
         QCheck.(pair cgen cgen)
         (fun (a, b) -> Complexf.close (Complexf.mul a b) (Complexf.mul b a)));
    qtest
      (QCheck.Test.make ~name:"mixed mul = promoted mul" ~count:200
         QCheck.(pair cgen (float_range (-10.0) 10.0))
         (fun (z, s) ->
           Complexf.close (Complexf.mul_real z s)
             (Complexf.mul z (Complexf.of_float s))));
    qtest
      (QCheck.Test.make ~name:"distributivity" ~count:200
         QCheck.(triple cgen cgen cgen)
         (fun (a, b, c) ->
           Complexf.close ~eps:1e-6
             (Complexf.mul a (Complexf.add b c))
             (Complexf.add (Complexf.mul a b) (Complexf.mul a c))));
  ]

(* ------------------------------------------------------------------ *)
(* Vectors: two scalar structures on one vector type                   *)
(* ------------------------------------------------------------------ *)

let test_two_vector_spaces () =
  let v = Vec.Cvec.of_array [| Complexf.make 1.0 2.0; Complexf.make (-3.0) 0.5 |] in
  (* scaling by a real via the mixed path = via promotion *)
  let mixed = Vec.cvec_scale_real 2.5 v in
  let promoted = Vec.cvec_scale_real_promoted 2.5 v in
  Alcotest.(check bool) "same result, cheaper path" true
    (Array.for_all2 Complexf.close mixed promoted);
  (* scaling by a complex scalar *)
  let c = Vec.cvec_scale_complex Complexf.i v in
  Alcotest.(check bool) "complex scaling rotates" true
    (Complexf.close c.(0) (Complexf.make (-2.0) 1.0))

let test_vec_ops () =
  let open Vec.Rvec in
  let a = of_array [| 1.0; 2.0; 3.0 |] in
  let b = of_array [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 32.0 (dot a b);
  let s = add a b in
  Alcotest.(check (float 1e-12)) "add" 9.0 (get s 2);
  axpy ~a:2.0 a b;
  Alcotest.(check (float 1e-12)) "axpy" 6.0 (get b 0);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vec: dimension mismatch") (fun () ->
      ignore (add a (of_array [| 1.0 |])))

(* ------------------------------------------------------------------ *)
(* CLACRM: gemm_mixed = gemm_promoted, at half the multiplications      *)
(* ------------------------------------------------------------------ *)

let random_cmat st m n =
  Dense.cmat_init m n (fun _ _ ->
      Complexf.make (Random.State.float st 2.0 -. 1.0)
        (Random.State.float st 2.0 -. 1.0))

let random_rmat st m n =
  Dense.rmat_init m n (fun _ _ -> Random.State.float st 2.0 -. 1.0)

let gemm_prop =
  qtest
    (QCheck.Test.make ~name:"gemm_mixed = gemm_promoted" ~count:40
       QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
       (fun (m, k, n) ->
         let st = Random.State.make [| m; k; n |] in
         let a = random_cmat st m k in
         let b = random_rmat st k n in
         Dense.cmat_close ~eps:1e-9 (Dense.gemm_mixed a b)
           (Dense.gemm_promoted a b)))

let test_gemm_known () =
  (* [1+i, 2] * [3; 4] = [3+3i+8] = [11+3i] *)
  let a =
    Dense.cmat_init 1 2 (fun _ j ->
        if j = 0 then Complexf.make 1.0 1.0 else Complexf.of_float 2.0)
  in
  let b = Dense.rmat_init 2 1 (fun i _ -> if i = 0 then 3.0 else 4.0) in
  let c = Dense.gemm_mixed a b in
  Alcotest.(check bool) "value" true
    (Complexf.close (Dense.cmat_get c 0 0) (Complexf.make 11.0 3.0))

let test_flop_model () =
  (* the analytic operation-count ratio is exactly 2x *)
  let mixed = Dense.flops_mixed ~m:10 ~k:10 ~n:10 in
  let promoted = Dense.flops_promoted ~m:10 ~k:10 ~n:10 in
  Alcotest.(check int) "2x flops" (2 * mixed) promoted

let test_gemm_dim_mismatch () =
  (* the message names the actual offending dimensions *)
  let a = Dense.cmat_create 2 3 in
  let b = Dense.rmat_create 2 2 in
  Alcotest.check_raises "mixed mismatch"
    (Invalid_argument "gemm_mixed: 2x3 * 2x2") (fun () ->
      ignore (Dense.gemm_mixed a b));
  let ca = Dense.cmat_create 3 4 in
  let cb = Dense.cmat_create 5 2 in
  Alcotest.check_raises "complex mismatch"
    (Invalid_argument "gemm_complex: 3x4 * 5x2") (fun () ->
      ignore (Dense.gemm_complex ca cb))

(* ------------------------------------------------------------------ *)
(* Vector space laws on real vectors (property-based)                  *)
(* ------------------------------------------------------------------ *)

let rvec_gen n =
  QCheck.map
    (fun seed ->
      let st = Random.State.make [| seed; n |] in
      Vec.Rvec.init n (fun _ -> Random.State.float st 10.0 -. 5.0))
    QCheck.int

let close_vec a b =
  Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b

let rvec_props =
  [
    qtest
      (QCheck.Test.make ~name:"dot symmetric" ~count:100
         (QCheck.pair (rvec_gen 5) (rvec_gen 5))
         (fun (a, b) ->
           Float.abs (Vec.Rvec.dot a b -. Vec.Rvec.dot b a) < 1e-9));
    qtest
      (QCheck.Test.make ~name:"scale distributes over add" ~count:100
         (QCheck.triple (rvec_gen 4) (rvec_gen 4)
            (QCheck.float_range (-3.0) 3.0))
         (fun (a, b, s) ->
           close_vec
             (Vec.Rvec.scale s (Vec.Rvec.add a b))
             (Vec.Rvec.add (Vec.Rvec.scale s a) (Vec.Rvec.scale s b))));
    qtest
      (QCheck.Test.make ~name:"axpy = scale + add" ~count:100
         (QCheck.triple (rvec_gen 4) (rvec_gen 4)
            (QCheck.float_range (-3.0) 3.0))
         (fun (x, y, a) ->
           let expected = Vec.Rvec.add (Vec.Rvec.scale a x) y in
           let y' = Vec.Rvec.of_array y in
           Vec.Rvec.axpy ~a x y';
           close_vec y' expected));
    qtest
      (QCheck.Test.make ~name:"neg is additive inverse" ~count:100
         (rvec_gen 6) (fun a ->
           close_vec
             (Vec.Rvec.add a (Vec.Rvec.neg a))
             (Vec.Rvec.create 6)));
  ]

(* exact vectors over rationals: equality is decidable, laws are exact *)
let test_qvec_exact () =
  let q = Gp_algebra.Rational.make in
  let a = Vec.Qvec.of_array [| q 1 2; q 1 3 |] in
  let b = Vec.Qvec.of_array [| q 1 6; q 2 3 |] in
  let s = Vec.Qvec.add a b in
  Alcotest.(check bool) "exact add" true
    (Vec.Qvec.equal s (Vec.Qvec.of_array [| q 2 3; q 1 1 |]));
  Alcotest.(check bool) "exact dot" true
    (Gp_algebra.Rational.equal (Vec.Qvec.dot a b)
       (Gp_algebra.Rational.add
          (Gp_algebra.Rational.mul (q 1 2) (q 1 6))
          (Gp_algebra.Rational.mul (q 1 3) (q 2 3))))

(* gemm against the real identity: A * I = A through the mixed kernel *)
let test_gemm_identity () =
  let st = Random.State.make [| 9 |] in
  let a = random_cmat st 4 4 in
  let id = Dense.rmat_init 4 4 (fun i j -> if i = j then 1.0 else 0.0) in
  Alcotest.(check bool) "A * I = A" true
    (Dense.cmat_close (Dense.gemm_mixed a id) a)

(* ------------------------------------------------------------------ *)
(* The VectorSpace concept: both (cvec, complex) and (cvec, real)      *)
(* ------------------------------------------------------------------ *)

let test_vector_space_concept () =
  let open Gp_concepts in
  let reg = Registry.create () in
  Gp_algebra.Decls.declare reg;
  Decls.declare reg;
  let n x = Ctype.Named x in
  Alcotest.(check bool) "(cvec, complex) models VectorSpace" true
    (Check.models reg "VectorSpace" [ n "cvec"; n "complex" ]);
  Alcotest.(check bool) "(cvec, real) models VectorSpace" true
    (Check.models reg "VectorSpace" [ n "cvec"; n "real" ]);
  (* int is no field here: not a model *)
  Alcotest.(check bool) "(cvec, int) rejected" false
    (Check.models reg "VectorSpace" [ n "cvec"; n "int" ]);
  (* the associated-type formulation can only bind ONE scalar: it cannot
     express the second structure (no 'scalar' binding on cvec at all
     here, so it fails outright) *)
  Alcotest.(check bool) "associated-type formulation cannot express it" false
    (Check.models reg "VectorSpaceAssocScalar" [ n "cvec" ])

let () =
  Alcotest.run "gp_linalg"
    [
      ( "complex",
        Alcotest.test_case "basics" `Quick test_complex_basics
        :: complex_field_props );
      ( "vectors",
        [
          Alcotest.test_case "two vector spaces" `Quick test_two_vector_spaces;
          Alcotest.test_case "ops" `Quick test_vec_ops;
        ] );
      ( "clacrm",
        [
          gemm_prop;
          Alcotest.test_case "known value" `Quick test_gemm_known;
          Alcotest.test_case "flop model" `Quick test_flop_model;
          Alcotest.test_case "dim mismatch" `Quick test_gemm_dim_mismatch;
          Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
        ] );
      ("vector space laws", rvec_props);
      ("exact vectors", [ Alcotest.test_case "qvec" `Quick test_qvec_exact ]);
      ( "concept",
        [
          Alcotest.test_case "multi-type VectorSpace" `Quick
            test_vector_space_concept;
        ] );
    ]
