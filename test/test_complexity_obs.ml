(* Tests for gp_complexity_obs: the model fitter must recover every
   vocabulary model exactly from noise-free series and keep selecting
   the right model under seeded multiplicative noise; sweeps must be
   bit-deterministic (the s8 hard gate depends on it); and the verdict
   layer must pass genuine operations while flagging the planted
   mis-declared oracle. *)

open Gp_complexity_obs
module C = Gp_concepts.Complexity

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Synthetic series                                                    *)
(* ------------------------------------------------------------------ *)

let synth ?(coeff = 3.5) ?(noise = fun _ -> 1.0) bound =
  List.mapi
    (fun i n ->
      let x = float_of_int n in
      let env v = if String.equal v "n" then x else 1.0 in
      { Fit.x; y = coeff *. C.eval bound ~env *. noise i; env })
    Sweep.ladder

let test_exact_recovery () =
  List.iter
    (fun (label, bound) ->
      let data = synth bound in
      let _, best = Fit.select ~var:"n" data in
      Alcotest.(check string) ("recovers " ^ label) label best.Fit.f_label;
      Alcotest.(check (float 1e-6)) ("coefficient for " ^ label) 3.5
        best.Fit.f_coeff;
      Alcotest.(check bool)
        ("zero residual for " ^ label)
        true
        (best.Fit.f_residual < 1e-9))
    (Fit.vocabulary "n")

let test_loglog_slope () =
  let data = synth (C.quadratic "n") in
  Alcotest.(check (float 0.01)) "slope of exact n^2" 2.0
    (Fit.loglog_slope data);
  Alcotest.(check (float 0.01)) "slope of exact 1" 0.0
    (Fit.loglog_slope (synth C.constant))

(* Lower-order contamination must not fool the selector: n^2/20 + n is
   still quadratic over the ladder even though the linear term wins the
   first rungs. *)
let test_lower_order_terms () =
  let data =
    List.map
      (fun n ->
        let x = float_of_int n in
        {
          Fit.x;
          y = (x *. x /. 20.0) +. x;
          env = (fun v -> if String.equal v "n" then x else 1.0);
        })
      Sweep.ladder
  in
  let _, best = Fit.select ~var:"n" data in
  Alcotest.(check string) "quadratic wins" "n^2" best.Fit.f_label

(* Multiplicative noise up to ±10% in log space is well under the
   >= 0.2 residual gap separating adjacent vocabulary models across the
   ladder, so the right model must keep winning. *)
let noise_recovery =
  QCheck.Test.make ~count:300
    ~name:"fitter picks the true model under seeded multiplicative noise"
    QCheck.(pair (int_range 0 5) (int_range 0 99999))
    (fun (idx, seed) ->
      let label, bound = List.nth (Fit.vocabulary "n") idx in
      let st = Random.State.make [| 0xf17; seed; idx |] in
      let noise =
        Array.init (List.length Sweep.ladder) (fun _ ->
            Float.exp (Random.State.float st 0.2 -. 0.1))
      in
      let data = synth ~coeff:2.0 ~noise:(fun i -> noise.(i)) bound in
      let _, best = Fit.select ~var:"n" data in
      String.equal best.Fit.f_label label)

let test_fitted_degree_encoding () =
  let data = synth (C.linear "n") in
  let degrees =
    List.map
      (fun (label, bound) -> Report.fitted_degree (Fit.fit ~label bound data))
      (Fit.vocabulary "n")
  in
  Alcotest.(check (list (float 1e-9)))
    "1, log n, n, n log n, n^2, n^3"
    [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0 ]
    degrees

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

let synthetic_op ?(expect_violation = false) ?(env = Sweep.env_const 1.0)
    ~declared name measure =
  {
    Sweep.op_name = name;
    op_category = "test";
    op_var = "n";
    op_declared = declared;
    op_expect_violation = expect_violation;
    op_measure = measure;
    op_env = env;
  }

let test_verdict_pass_and_violation () =
  let quadratic_measure n = float_of_int (n * n) in
  let honest =
    Report.analyze
      (Sweep.run
         (synthetic_op ~declared:(C.quadratic "n") "honest" quadratic_measure))
  in
  Alcotest.(check bool) "honest passes" true
    (honest.Report.e_verdict = Report.Pass && honest.Report.e_ok);
  let liar =
    Report.analyze
      (Sweep.run
         (synthetic_op ~declared:(C.linear "n") "liar" quadratic_measure))
  in
  Alcotest.(check bool) "under-declared bound is violated" true
    (liar.Report.e_verdict = Report.Violation);
  Alcotest.(check bool) "unexpected violation fails the run" false
    liar.Report.e_ok;
  (* headroom is fine: measuring n under a declared n^2 passes *)
  let modest =
    Report.analyze
      (Sweep.run
         (synthetic_op ~declared:(C.quadratic "n") "modest" (fun n ->
              float_of_int n)))
  in
  Alcotest.(check bool) "slack passes" true
    (modest.Report.e_verdict = Report.Pass)

(* A mixed declared bound (its variable incomparable with any
   single-variable vocabulary model) passes through the declared-fit
   branch when the bound itself explains the series. *)
let test_mixed_bound_via_declared_fit () =
  let nnz n = float_of_int ((n * n / 20) + n) in
  let op =
    synthetic_op ~declared:(C.linear "nnz")
      ~env:(fun n v -> if String.equal v "nnz" then nnz n else 1.0)
      "sparse_like"
      (fun n -> 2.0 *. nnz n)
  in
  let e = Report.analyze (Sweep.run op) in
  Alcotest.(check bool) "declared fit is exact" true
    (e.Report.e_declared.Fit.f_residual < 1e-9);
  Alcotest.(check bool) "passes despite incomparable vocabulary" true
    (e.Report.e_verdict = Report.Pass)

(* ------------------------------------------------------------------ *)
(* The catalog end to end                                              *)
(* ------------------------------------------------------------------ *)

let test_catalog_verdicts () =
  let entries =
    List.map (fun op -> Report.analyze (Sweep.run op)) (Catalog.ops ())
  in
  Alcotest.(check bool) "every verdict as expected" true (Report.ok entries);
  let oracle =
    List.find
      (fun e ->
        String.equal e.Report.e_series.Sweep.sr_op.Sweep.op_name
          Catalog.oracle_name)
      entries
  in
  Alcotest.(check bool) "planted oracle flagged" true
    (oracle.Report.e_verdict = Report.Violation);
  List.iter
    (fun e ->
      let op = e.Report.e_series.Sweep.sr_op in
      if not op.Sweep.op_expect_violation then
        Alcotest.(check bool)
          (op.Sweep.op_name ^ " passes")
          true
          (e.Report.e_verdict = Report.Pass))
    entries

let test_sweep_deterministic () =
  List.iter
    (fun name ->
      let op =
        match Catalog.find name with
        | Some op -> op
        | None -> Alcotest.failf "catalog op %s missing" name
      in
      let s1 = Sweep.run op and s2 = Sweep.run op in
      let ys s =
        List.map (fun (p : Sweep.point) -> p.Sweep.pt_y) s.Sweep.sr_points
      in
      Alcotest.(check (list (float 0.0))) (name ^ " series") (ys s1) (ys s2);
      let e1 = Report.analyze s1 and e2 = Report.analyze s2 in
      Alcotest.(check (float 0.0)) (name ^ " residual")
        e1.Report.e_best.Fit.f_residual e2.Report.e_best.Fit.f_residual;
      Alcotest.(check string) (name ^ " best model")
        e1.Report.e_best.Fit.f_label e2.Report.e_best.Fit.f_label)
    [ "matvec_csr"; "lcr_messages"; "rewrite_steps"; "lru_churn" ]

let test_report_exports () =
  let entries =
    List.map
      (fun op -> Report.analyze (Sweep.run op))
      (List.filter_map Catalog.find [ "matvec_diagonal"; Catalog.oracle_name ])
  in
  let json = Report.to_json entries in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then false
      else String.equal (String.sub hay i nn) needle || go (i + 1)
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains json needle))
    [ "matvec_diagonal"; "oracle_matvec_dense"; "\"ok\": true" ];
  let metrics = Gp_telemetry.Metrics.create () in
  Report.export_metrics metrics entries;
  Alcotest.(check (float 1e-9)) "violation gauge" 1.0
    (Gp_telemetry.Metrics.value metrics
       ~labels:[ ("op", Catalog.oracle_name) ]
       "gp_complexity_violation");
  Alcotest.(check (float 1e-9)) "fitted degree gauge" 1.0
    (Gp_telemetry.Metrics.value metrics
       ~labels:[ ("op", "matvec_diagonal") ]
       "gp_complexity_fitted_degree")

let () =
  Alcotest.run "gp_complexity_obs"
    [
      ( "fit",
        [
          Alcotest.test_case "exact recovery" `Quick test_exact_recovery;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
          Alcotest.test_case "lower-order terms" `Quick
            test_lower_order_terms;
          Alcotest.test_case "fitted degree encoding" `Quick
            test_fitted_degree_encoding;
          qtest noise_recovery;
        ] );
      ( "verdict",
        [
          Alcotest.test_case "pass and violation" `Quick
            test_verdict_pass_and_violation;
          Alcotest.test_case "mixed bound via declared fit" `Quick
            test_mixed_bound_via_declared_fit;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "verdicts end to end" `Quick
            test_catalog_verdicts;
          Alcotest.test_case "sweeps deterministic" `Quick
            test_sweep_deterministic;
          Alcotest.test_case "json and prometheus exports" `Quick
            test_report_exports;
        ] );
    ]
