(* Tests for gp_structla: representations, detection soundness, the
   concept taxonomy, most-refined-wins kernel selection, and qcheck
   equivalence of every specialised kernel against the dense oracles. *)

open Gp_concepts
module Mat = Gp_structla.Mat
module Detect = Gp_structla.Detect
module Kernels = Gp_structla.Kernels
module Select = Gp_structla.Select
module Decls = Gp_structla.Decls

let n name = Ctype.Named name
let qtest = QCheck_alcotest.to_alcotest

let world () =
  let reg = Registry.create () in
  Decls.declare reg;
  reg

let gen s ~n ~seed =
  match Mat.generate_dense ~structure:s ~n ~seed with
  | Some d -> d
  | None -> Alcotest.fail ("unknown structure " ^ s)

(* ------------------------------------------------------------------ *)
(* Taxonomy: declared models check nominally                           *)
(* ------------------------------------------------------------------ *)

let test_models () =
  let reg = world () in
  let models c ty = Check.models ~mode:Check.Nominal reg c [ n ty ] in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " models DenseMatrix") true
        (models "DenseMatrix" c))
    Decls.carriers;
  List.iter
    (fun c ->
      Alcotest.(check bool) ("diagmat models " ^ c) true (models c "diagmat"))
    [ "DiagonalMatrix"; "BandedMatrix"; "TriangularMatrix"; "SymmetricMatrix" ];
  Alcotest.(check bool) "bandmat is not diagonal" false
    (models "DiagonalMatrix" "bandmat");
  Alcotest.(check bool) "bandmat is not triangular" false
    (models "TriangularMatrix" "bandmat");
  Alcotest.(check bool) "dmat is not sparse" false
    (models "SparseMatrix" "dmat");
  (* the registry knows the refinement DAG *)
  Alcotest.(check bool) "Diagonal refines Dense (transitively)" true
    (Registry.refines reg "DiagonalMatrix" "DenseMatrix");
  Alcotest.(check bool) "Banded does not refine Triangular" false
    (Registry.refines reg "BandedMatrix" "TriangularMatrix")

(* ------------------------------------------------------------------ *)
(* Selection: most refined wins; ambiguity and miss are reported       *)
(* ------------------------------------------------------------------ *)

let kernel_of reg sel op m =
  match Select.resolve reg sel op m with
  | Overload.Selected (c, losers) -> (c.Overload.cand_name, List.length losers)
  | r ->
    Alcotest.fail
      (Format.asprintf "expected Selected, got %a" Overload.pp_resolution r)

let test_most_refined_wins () =
  let reg = world () in
  let sel = Select.create () in
  let mat s = Detect.classify_quiet (gen s ~n:64 ~seed:1) in
  let expect op s name =
    let got, _ = kernel_of reg sel op (mat s) in
    Alcotest.(check string)
      (Select.op_name op ^ " on " ^ s)
      name got
  in
  expect Select.Matvec "diagonal" "matvec.diagonal";
  expect Select.Matvec "banded" "matvec.banded";
  expect Select.Matvec "triangular" "matvec.triangular";
  expect Select.Matvec "symmetric" "matvec.symmetric";
  expect Select.Matvec "csr" "matvec.csr";
  expect Select.Matvec "dense" "matvec.dense";
  (* fallbacks where no specialised kernel exists for the structure *)
  expect Select.Matmul "diagonal" "matmul.diagonal";
  expect Select.Matmul "banded" "matmul.banded";
  expect Select.Matmul "triangular" "matmul.dense";
  expect Select.Solve "diagonal" "solve.diagonal";
  expect Select.Solve "triangular" "solve.triangular";
  expect Select.Solve "banded" "solve.dense";
  expect Select.Solve "csr" "solve.dense";
  (* a diagonal matrix matches every matvec candidate except the sparse
     one, and the O(n) kernel beats them all *)
  let _, losers = kernel_of reg sel Select.Matvec (mat "diagonal") in
  Alcotest.(check int) "diagonal matvec: four less-refined matches" 4 losers;
  let _, losers = kernel_of reg sel Select.Matvec (mat "dense") in
  Alcotest.(check int) "dense matvec: sole match" 0 losers

let test_ambiguity_detected () =
  let reg = world () in
  let g = Overload.create "sym_or_tri" in
  Overload.add_candidate g ~name:"via symmetric" ~guard:"SymmetricMatrix"
    (fun _ -> Overload.Unit);
  Overload.add_candidate g ~name:"via triangular" ~guard:"TriangularMatrix"
    (fun _ -> Overload.Unit);
  (* diagmat models both, and neither concept refines the other *)
  match Overload.resolve reg g [ n "diagmat" ] with
  | Overload.Ambiguous cs ->
    Alcotest.(check int) "both maxima reported" 2 (List.length cs)
  | r ->
    Alcotest.fail
      (Format.asprintf "expected Ambiguous, got %a" Overload.pp_resolution r)

let test_no_match_reports () =
  let reg = world () in
  let g = Overload.create "diag_only" in
  Overload.add_candidate g ~name:"diag" ~guard:"DiagonalMatrix" (fun _ ->
      Overload.Unit);
  match Overload.resolve reg g [ n "bandmat" ] with
  | Overload.No_match [ (name, report) ] ->
    Alcotest.(check string) "candidate named" "diag" name;
    Alcotest.(check bool) "report carries failures" false (Check.ok report)
  | r ->
    Alcotest.fail
      (Format.asprintf "expected No_match, got %a" Overload.pp_resolution r)

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let test_classify_generated () =
  List.iter
    (fun s ->
      List.iter
        (fun seed ->
          let d = gen s ~n:64 ~seed in
          let m = Detect.classify_quiet d in
          Alcotest.(check string)
            (Printf.sprintf "classify(generate %s, seed %d)" s seed)
            s (Mat.structure_name m);
          Alcotest.(check bool) "round-trips exactly" true
            (Mat.dense_equal d (Mat.to_dense m)))
        [ 0; 1; 2; 3; 4 ])
    Mat.structure_names

let test_classify_priority () =
  (* a diagonal matrix satisfies five structures; detection must claim
     the most refined one *)
  let d = gen "diagonal" ~n:32 ~seed:9 in
  Alcotest.(check string) "diagonal wins" "diagonal"
    (Mat.structure_name (Detect.classify_quiet d));
  (* non-square: only CSR or dense can apply *)
  let r = Mat.dense_init 4 6 (fun i j -> if i = j then 1.0 else 0.0) in
  Alcotest.(check string) "non-square sparse is csr" "csr"
    (Mat.structure_name (Detect.classify_quiet r))

(* Soundness on arbitrary matrices: whatever the detector claims, the
   packed representation expands back bit-for-bit. *)
let arbitrary_dense_arb =
  let open QCheck.Gen in
  let entry =
    frequency
      [ (4, return 0.0); (2, return 1.5); (1, return (-2.25)); (1, float) ]
  in
  let g =
    int_range 1 10 >>= fun rows ->
    int_range 1 10 >>= fun cols ->
    bool >>= fun mirror ->
    array_size (return (rows * cols)) entry >>= fun d ->
    let m = { Mat.n_rows = rows; n_cols = cols; d } in
    let m =
      if mirror && rows = cols then
        Mat.dense_init rows cols (fun i j ->
            if i >= j then Mat.dense_get m i j else Mat.dense_get m j i)
      else m
    in
    return m
  in
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Mat.pp (Mat.Dense m))
    g

let classify_sound_prop =
  qtest
    (QCheck.Test.make ~name:"classify never misrepresents the matrix"
       ~count:500 arbitrary_dense_arb (fun d ->
         Mat.dense_equal d (Mat.to_dense (Detect.classify_quiet d))))

(* ------------------------------------------------------------------ *)
(* Kernel equivalence vs the dense oracles                             *)
(* ------------------------------------------------------------------ *)

let case_arb =
  let open QCheck.Gen in
  QCheck.make
    ~print:(fun (s, n, seed) -> Printf.sprintf "%s n=%d seed=%d" s n seed)
    ( oneofl Mat.structure_names >>= fun s ->
      int_range 1 32 >>= fun n ->
      int_range 0 9999 >>= fun seed -> return (s, n, seed) )

let with_case (s, sz, seed) f =
  let d = gen s ~n:sz ~seed in
  let m = Detect.classify_quiet d in
  let reg = world () in
  let sel = Select.create () in
  f reg sel d m

let matvec_equiv_prop =
  qtest
    (QCheck.Test.make ~name:"selected matvec == dense oracle" ~count:150
       case_arb (fun ((_, sz, seed) as case) ->
         with_case case (fun reg sel d m ->
             let v = Mat.generate_vec ~n:sz ~seed in
             match Select.matvec reg sel m v with
             | Ok (_, y) ->
               Mat.vec_close ~eps:1e-6 y (Kernels.matvec_reference d v)
             | Error e -> QCheck.Test.fail_report e)))

let matmul_equiv_prop =
  qtest
    (QCheck.Test.make ~name:"selected matmul == dense oracle" ~count:60
       case_arb (fun case ->
         with_case case (fun reg sel d m ->
             match Select.matmul reg sel m m with
             | Ok (_, c) ->
               Mat.dense_close ~eps:1e-6 (Mat.to_dense c)
                 (Kernels.matmul_reference d d)
             | Error e -> QCheck.Test.fail_report e)))

let solve_equiv_prop =
  qtest
    (QCheck.Test.make ~name:"selected solve == dense oracle" ~count:100
       case_arb (fun ((_, sz, seed) as case) ->
         with_case case (fun reg sel d m ->
             let b = Mat.generate_vec ~n:sz ~seed:(seed + 1) in
             match Select.solve reg sel m b with
             | Ok (_, x) ->
               Mat.vec_close ~eps:1e-6 x (Kernels.solve_reference d b)
             | Error e -> QCheck.Test.fail_report e)))

(* The solution actually solves the system (the solve_inverts axiom). *)
let solve_inverts_prop =
  qtest
    (QCheck.Test.make ~name:"matvec(A, solve(A,b)) == b" ~count:100 case_arb
       (fun ((_, sz, seed) as case) ->
         with_case case (fun reg sel _ m ->
             let b = Mat.generate_vec ~n:sz ~seed:(seed + 2) in
             match Select.solve reg sel m b with
             | Ok (_, x) -> (
               match Select.matvec reg sel m x with
               | Ok (_, b') -> Mat.vec_close ~eps:1e-5 b' b
               | Error e -> QCheck.Test.fail_report e)
             | Error e -> QCheck.Test.fail_report e)))

(* ------------------------------------------------------------------ *)
(* Exact step counts                                                   *)
(* ------------------------------------------------------------------ *)

let test_step_counts () =
  let d = Detect.classify_quiet (gen "dense" ~n:8 ~seed:0) in
  Alcotest.(check int) "dense matvec n^2" 64 (Kernels.matvec_steps d);
  Alcotest.(check int) "dense matmul n^3" 512 (Kernels.matmul_steps d);
  let dg = Detect.classify_quiet (gen "diagonal" ~n:8 ~seed:0) in
  Alcotest.(check int) "diagonal matvec n" 8 (Kernels.matvec_steps dg);
  Alcotest.(check int) "diagonal solve n" 8 (Kernels.solve_steps dg);
  let t = Detect.classify_quiet (gen "triangular" ~n:8 ~seed:0) in
  Alcotest.(check int) "triangular matvec n(n+1)/2" 36
    (Kernels.matvec_steps t);
  Alcotest.(check int) "triangular solve n(n+1)/2" 36 (Kernels.solve_steps t);
  (* banded n=10, bandwidth 4 generator: rows clipped at the edges *)
  let b = Detect.classify_quiet (gen "banded" ~n:24 ~seed:0) in
  (match b with
  | Mat.Banded { Mat.bd_lo = lo; bd_hi = hi; _ } ->
    Alcotest.(check int) "generator bandwidth" 8 (lo + hi)
  | _ -> Alcotest.fail "expected banded");
  Alcotest.(check int) "banded matvec = sum of row widths"
    (9 * 24 - 2 * (4 + 3 + 2 + 1))
    (Kernels.matvec_steps b);
  let c = Detect.classify_quiet (gen "csr" ~n:24 ~seed:0) in
  match c with
  | Mat.Csr csr ->
    Alcotest.(check int) "csr matvec = nnz" (Mat.nnz_csr csr)
      (Kernels.matvec_steps c)
  | _ -> Alcotest.fail "expected csr"

(* The acceptance ratios behind bench s6, on exact step counts. *)
let test_step_ratios_at_256 () =
  let n = 256 in
  let dense_steps =
    Kernels.matvec_steps (Detect.classify_quiet (gen "dense" ~n ~seed:0))
  in
  let diag_steps =
    Kernels.matvec_steps (Detect.classify_quiet (gen "diagonal" ~n ~seed:0))
  in
  let band_steps =
    Kernels.matvec_steps (Detect.classify_quiet (gen "banded" ~n ~seed:0))
  in
  Alcotest.(check bool) "diagonal matvec >= 10x fewer steps" true
    (dense_steps >= 10 * diag_steps);
  Alcotest.(check bool) "banded matvec >= 5x fewer steps" true
    (dense_steps >= 5 * band_steps)

(* ------------------------------------------------------------------ *)
(* Dimension errors name the shapes                                    *)
(* ------------------------------------------------------------------ *)

let test_dimension_messages () =
  let m34 = Mat.dense_init 3 4 (fun _ _ -> 1.0) in
  let m52 = Mat.dense_init 5 2 (fun _ _ -> 1.0) in
  Alcotest.check_raises "matvec names shapes"
    (Invalid_argument "matvec: 3x4 * 5") (fun () ->
      ignore (Kernels.matvec_reference m34 (Array.make 5 0.0)));
  Alcotest.check_raises "matmul names shapes"
    (Invalid_argument "matmul: 3x4 * 5x2") (fun () ->
      ignore (Kernels.matmul_reference m34 m52));
  Alcotest.check_raises "solve names shapes"
    (Invalid_argument "solve: 3x4 not square") (fun () ->
      ignore (Kernels.solve_reference m34 (Array.make 4 0.0)));
  Alcotest.check_raises "diagonal kernels too"
    (Invalid_argument "matvec: 6x6 * 4") (fun () ->
      ignore
        (Kernels.matvec_diagonal
           { Mat.dg_n = 6; dg = Array.make 6 1.0 }
           (Array.make 4 0.0)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gp_structla"
    [
      ( "taxonomy",
        [ Alcotest.test_case "declared models check" `Quick test_models ] );
      ( "selection",
        [
          Alcotest.test_case "most refined wins" `Quick test_most_refined_wins;
          Alcotest.test_case "ambiguity" `Quick test_ambiguity_detected;
          Alcotest.test_case "no match" `Quick test_no_match_reports;
        ] );
      ( "detect",
        [
          Alcotest.test_case "generated structures" `Quick
            test_classify_generated;
          Alcotest.test_case "priority" `Quick test_classify_priority;
          classify_sound_prop;
        ] );
      ( "kernels",
        [
          matvec_equiv_prop;
          matmul_equiv_prop;
          solve_equiv_prop;
          solve_inverts_prop;
        ] );
      ( "steps",
        [
          Alcotest.test_case "exact counts" `Quick test_step_counts;
          Alcotest.test_case "acceptance ratios at n=256" `Quick
            test_step_ratios_at_256;
        ] );
      ( "errors",
        [
          Alcotest.test_case "dimension messages" `Quick
            test_dimension_messages;
        ] );
    ]
