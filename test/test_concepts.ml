(* Tests for the concept engine: type language, complexity algebra,
   checking, propagation, archetypes, overloading, taxonomies. *)

open Gp_concepts

let n name = Ctype.Named name
let v name = Ctype.Var name

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Ctype                                                               *)
(* ------------------------------------------------------------------ *)

let test_ctype_subst () =
  let t = Ctype.Assoc (v "G", "vertex_type") in
  let s = Ctype.subst [ ("G", n "graph") ] t in
  Alcotest.(check string) "subst resolves var" "graph.vertex_type"
    (Ctype.to_string s);
  Alcotest.(check bool) "ground after subst" true (Ctype.is_ground s)

let test_ctype_vars () =
  let t = Ctype.App ("pair", [ v "A"; Ctype.Assoc (v "B", "elem") ]) in
  Alcotest.(check (list string)) "vars in order" [ "A"; "B" ] (Ctype.vars t)

let test_ctype_equal () =
  let a = Ctype.App ("list", [ n "int" ]) in
  let b = Ctype.App ("list", [ n "int" ]) in
  let c = Ctype.App ("list", [ n "float" ]) in
  Alcotest.(check bool) "equal" true (Ctype.equal a b);
  Alcotest.(check bool) "not equal" false (Ctype.equal a c);
  Alcotest.(check int) "compare equal" 0 (Ctype.compare a b)

(* ------------------------------------------------------------------ *)
(* Complexity                                                          *)
(* ------------------------------------------------------------------ *)

let test_complexity_order () =
  let open Complexity in
  Alcotest.(check bool) "1 <= log n" true (leq constant (log_ "n"));
  Alcotest.(check bool) "log n <= n" true (leq (log_ "n") (linear "n"));
  Alcotest.(check bool) "n <= n log n" true (leq (linear "n") (n_log_n "n"));
  Alcotest.(check bool) "n log n <= n^2" true (leq (n_log_n "n") (quadratic "n"));
  Alcotest.(check bool) "n^2 not <= n log n" false
    (leq (quadratic "n") (n_log_n "n"));
  Alcotest.(check bool) "incomparable n vs m" true
    (compare_growth (linear "n") (linear "m") = None)

let test_complexity_algebra () =
  let open Complexity in
  let nlogn = mul (linear "n") (log_ "n") in
  Alcotest.(check bool) "n * log n = n log n" true (equal nlogn (n_log_n "n"));
  (* O(n) + O(n^2) collapses to O(n^2) *)
  let s = add (linear "n") (quadratic "n") in
  Alcotest.(check bool) "sum absorbs dominated" true (equal s (quadratic "n"));
  (* O(n + m) keeps both *)
  let nm = add (linear "n") (linear "m") in
  Alcotest.(check string) "multi-var sum" "O(n + m)" (to_string nm)

let test_complexity_pp () =
  let open Complexity in
  Alcotest.(check string) "constant" "O(1)" (to_string constant);
  Alcotest.(check string) "n log n" "O(n log n)" (to_string (n_log_n "n"));
  Alcotest.(check string) "n^2" "O(n^2)" (to_string (quadratic "n"))

(* Monomial order in pp/to_string is canonical (descending on sorted
   bindings), so construction order never leaks into a report. *)
let test_complexity_pp_canonical () =
  let open Complexity in
  Alcotest.(check string) "n + m both ways" "O(n + m)"
    (to_string (add (linear "m") (linear "n")));
  Alcotest.(check string) "n + m both ways (2)" "O(n + m)"
    (to_string (add (linear "n") (linear "m")));
  Alcotest.(check string) "higher degree first" "O(n^2 + m)"
    (to_string (add (linear "m") (quadratic "n")));
  Alcotest.(check string) "higher degree first (2)" "O(n^2 + m)"
    (to_string (add (quadratic "n") (linear "m")));
  Alcotest.(check string) "three vars" "O(n log n + m^3 + k)"
    (to_string (add (linear "k") (add (power "m" 3) (n_log_n "n"))))

let test_complexity_eval () =
  let open Complexity in
  let env_n x = function "n" -> x | _ -> 1.0 in
  let check name expect t x =
    Alcotest.(check (float 1e-9)) name expect (eval t ~env:(env_n x))
  in
  check "1 at any n" 1.0 constant 1000.0;
  check "n at 64" 64.0 (linear "n") 64.0;
  check "n^2 at 10" 100.0 (quadratic "n") 10.0;
  check "n^3 at 10" 1000.0 (cubic "n") 10.0;
  check "log2 64" 6.0 (log_ "n") 64.0;
  check "n log n at 64" 384.0 (n_log_n "n") 64.0;
  (* the log factor clamps below 2 instead of hitting log 1 = 0 *)
  check "log at n=1 clamps to 1" 1.0 (log_ "n") 1.0;
  (* add normalizes away dominated terms: n + n^2 collapses to n^2 *)
  check "dominated term dropped before eval" 4096.0
    (add (linear "n") (quadratic "n"))
    64.0;
  (* incomparable terms survive normalization and sum termwise *)
  Alcotest.(check (float 1e-9)) "sum evaluates termwise" (4096.0 +. 5.0)
    (eval
       (add (quadratic "n") (linear "m"))
       ~env:(function "n" -> 64.0 | "m" -> 5.0 | _ -> 1.0));
  let env = function "n" -> 16.0 | "b" -> 9.0 | _ -> 1.0 in
  Alcotest.(check (float 1e-9)) "mixed O(n b)" 144.0
    (eval (mul (linear "n") (linear "b")) ~env);
  Alcotest.(check (float 1e-9)) "O(n + m)" 21.0
    (eval
       (add (linear "n") (linear "m"))
       ~env:(function "n" -> 16.0 | "m" -> 5.0 | _ -> 1.0))

let test_complexity_basis () =
  let open Complexity in
  let pair_list =
    Alcotest.(list (list (triple string int int)))
  in
  Alcotest.(check pair_list) "constant" [ [] ] (basis constant);
  Alcotest.(check pair_list) "n log n" [ [ ("n", 1, 1) ] ] (basis (n_log_n "n"));
  Alcotest.(check pair_list) "n^2 + m, canonical order"
    [ [ ("n", 2, 0) ]; [ ("m", 1, 0) ] ]
    (basis (add (linear "m") (quadratic "n")));
  Alcotest.(check pair_list) "mixed monomial sorts its vars"
    [ [ ("b", 1, 0); ("n", 1, 0) ] ]
    (basis (mul (linear "n") (linear "b")))

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(* A tiny world: concept Hashable, type key provides hash. *)
let hashable =
  Concept.make ~params:[ "T" ] "Hashable"
    [ Concept.signature "hash" [ v "T" ] (n "int") ]

let test_check_pass () =
  let reg = Registry.create () in
  Registry.declare_concept reg hashable;
  Registry.declare_type reg "int";
  Registry.declare_type reg "key";
  Registry.declare_op reg "hash" [ n "key" ] (n "int");
  Alcotest.(check bool) "key models Hashable" true
    (Check.models reg "Hashable" [ n "key" ])

let test_check_missing_op () =
  let reg = Registry.create () in
  Registry.declare_concept reg hashable;
  Registry.declare_type reg "key";
  let report = Check.check reg "Hashable" [ n "key" ] in
  Alcotest.(check bool) "fails" false (Check.ok report);
  match report.Check.rep_failures with
  | [ Check.Missing_operation { expected } ] ->
    Alcotest.(check string) "names the op" "hash" expected.Concept.op_name
  | _ -> Alcotest.fail "expected a single Missing_operation failure"

let test_check_return_mismatch () =
  let reg = Registry.create () in
  Registry.declare_concept reg hashable;
  Registry.declare_type reg "key";
  Registry.declare_op reg "hash" [ n "key" ] (n "string");
  let report = Check.check reg "Hashable" [ n "key" ] in
  match report.Check.rep_failures with
  | [ Check.Return_type_mismatch { op; _ } ] ->
    Alcotest.(check string) "op name" "hash" op
  | _ -> Alcotest.fail "expected Return_type_mismatch"

let test_check_refinement_failure_is_structured () =
  let reg = Registry.create () in
  Registry.declare_concept reg hashable;
  Registry.declare_concept reg
    (Concept.make ~params:[ "T" ] "HashSetElement"
       ~refines:[ ("Hashable", [ v "T" ]) ]
       [ Concept.signature "eq" [ v "T"; v "T" ] (n "bool") ]);
  Registry.declare_type reg "key";
  Registry.declare_op reg "eq" [ n "key"; n "key" ] (n "bool");
  let report = Check.check reg "HashSetElement" [ n "key" ] in
  match report.Check.rep_failures with
  | [ Check.Refinement_failed { concept; causes; _ } ] ->
    Alcotest.(check string) "refined concept" "Hashable" concept;
    Alcotest.(check int) "one cause" 1 (List.length causes)
  | _ -> Alcotest.fail "expected Refinement_failed"

let test_check_assoc_and_same_type () =
  let reg = Registry.create () in
  let cont =
    Concept.make ~params:[ "C" ] "MiniContainer"
      [
        Concept.assoc_type "value_type";
        Concept.assoc_type "iterator"
          ~constraints:
            [
              Concept.Same_type
                ( Ctype.Assoc (Ctype.Assoc (v "C", "iterator"), "value_type"),
                  Ctype.Assoc (v "C", "value_type") );
            ];
      ]
  in
  Registry.declare_concept reg cont;
  Registry.declare_type reg "int";
  Registry.declare_type reg "float";
  Registry.declare_type reg "intvec_iter"
    ~assoc:[ ("value_type", n "int") ];
  Registry.declare_type reg "intvec"
    ~assoc:[ ("value_type", n "int"); ("iterator", n "intvec_iter") ];
  Alcotest.(check bool) "intvec ok" true
    (Check.models reg "MiniContainer" [ n "intvec" ]);
  (* now a broken container whose iterator disagrees on value_type *)
  Registry.declare_type reg "badvec"
    ~assoc:[ ("value_type", n "float"); ("iterator", n "intvec_iter") ];
  let report = Check.check reg "MiniContainer" [ n "badvec" ] in
  Alcotest.(check bool) "badvec rejected" false (Check.ok report)

let test_check_axiom_warnings () =
  let reg = Registry.create () in
  Gp_algebra.Decls.declare reg;
  let report = Check.check reg "Monoid" [ n "float[*]" ] in
  Alcotest.(check bool) "syntactically fine" true (Check.ok report);
  Alcotest.(check bool) "axiom warnings present" true
    (report.Check.rep_warnings <> [])

let test_certified_axiom_clears_warning () =
  let reg = Registry.create () in
  Gp_algebra.Decls.declare reg;
  let args = [ n "int[+]" ] in
  List.iter
    (fun ax -> Check.certify_axiom ~concept:"Semigroup" ~axiom:ax ~args)
    [ "associativity" ];
  let report = Check.check reg "Semigroup" [ n "int[+]" ] in
  Alcotest.(check bool) "ok" true (Check.ok report);
  let still_warned =
    List.exists
      (function
        | Check.Axiom_asserted_not_proved { axiom = "associativity"; _ } ->
          true
        | _ -> false)
      report.Check.rep_warnings
  in
  Alcotest.(check bool) "associativity warning gone" false still_warned

let test_nominal_mode_requires_declaration () =
  let reg = Registry.create () in
  Registry.declare_concept reg hashable;
  Registry.declare_type reg "key";
  Registry.declare_op reg "hash" [ n "key" ] (n "int");
  (* structurally fine, but no model declared *)
  Alcotest.(check bool) "structural ok" true
    (Check.models ~mode:Check.Structural reg "Hashable" [ n "key" ]);
  Alcotest.(check bool) "nominal rejected" false
    (Check.models ~mode:Check.Nominal reg "Hashable" [ n "key" ]);
  Registry.declare_model reg "Hashable" [ n "key" ];
  Alcotest.(check bool) "nominal ok after declaration" true
    (Check.models ~mode:Check.Nominal reg "Hashable" [ n "key" ])

let test_complexity_guarantee_checked () =
  let reg = Registry.create () in
  Registry.declare_concept reg
    (Concept.make ~params:[ "C" ] "FastSize"
       [
         Concept.signature "size" [ v "C" ] (n "int");
         Concept.complexity "size" Complexity.constant;
       ]);
  Registry.declare_type reg "int";
  Registry.declare_type reg "slowlist";
  Registry.declare_op reg "size" [ n "slowlist" ] (n "int");
  Registry.declare_model reg "FastSize" [ n "slowlist" ]
    ~complexity:[ ("size", Complexity.linear "n") ];
  let report = Check.check reg "FastSize" [ n "slowlist" ] in
  let weak =
    List.exists
      (function Check.Complexity_too_weak _ -> true | _ -> false)
      report.Check.rep_failures
  in
  Alcotest.(check bool) "O(n) size rejected against O(1) guarantee" true weak

(* ------------------------------------------------------------------ *)
(* Graph concepts: Figs. 1 and 2                                       *)
(* ------------------------------------------------------------------ *)

let graph_world () =
  let reg = Registry.create () in
  Gp_graph.Decls.declare reg;
  reg

let test_fig1_fig2 () =
  let reg = graph_world () in
  Alcotest.(check bool) "edge models GraphEdge (Fig 1)" true
    (Check.models reg "GraphEdge" [ n "adjacency_list::edge" ]);
  Alcotest.(check bool) "adjacency_list models IncidenceGraph (Fig 2)" true
    (Check.models reg "IncidenceGraph" [ n "adjacency_list" ]);
  Alcotest.(check bool) "adjacency_matrix models AdjacencyMatrixGraph" true
    (Check.models reg "AdjacencyMatrixGraph" [ n "adjacency_matrix" ]);
  Alcotest.(check bool) "adjacency_list does NOT model AdjacencyMatrixGraph"
    false
    (Check.models reg "AdjacencyMatrixGraph" [ n "adjacency_list" ])

let test_fig2_broken_graph () =
  let reg = graph_world () in
  (* a graph whose edge type lacks target() *)
  Registry.declare_type reg "broken::edge"
    ~assoc:[ ("vertex_type", n "vertex") ];
  Registry.declare_op reg "source" [ n "broken::edge" ] (n "vertex");
  Registry.declare_type reg "broken::iter"
    ~assoc:[ ("value_type", n "broken::edge") ];
  Registry.declare_op reg "deref" [ n "broken::iter" ] (n "broken::edge");
  Registry.declare_op reg "succ" [ n "broken::iter" ] (n "broken::iter");
  Registry.declare_op reg "iter_eq" [ n "broken::iter"; n "broken::iter" ]
    (n "bool");
  Registry.declare_type reg "broken"
    ~assoc:
      [ ("vertex_type", n "vertex"); ("edge_type", n "broken::edge");
        ("out_edge_iterator", n "broken::iter") ];
  Registry.declare_op reg "out_edges" [ n "vertex"; n "broken" ]
    (n "broken::iter");
  Registry.declare_op reg "out_degree" [ n "vertex"; n "broken" ] (n "int");
  let report = Check.check reg "IncidenceGraph" [ n "broken" ] in
  Alcotest.(check bool) "broken graph rejected" false (Check.ok report);
  (* the diagnostic names the missing target op, nested in the edge model *)
  let mentions_target = contains (Fmt.str "%a" Check.pp_report report) "target" in
  Alcotest.(check bool) "diagnostic mentions target" true mentions_target

(* ------------------------------------------------------------------ *)
(* Propagation                                                          *)
(* ------------------------------------------------------------------ *)

let test_propagation_closure () =
  let reg = graph_world () in
  let obs = Propagate.closure reg "IncidenceGraph" [ n "adjacency_list" ] in
  (* root + GraphEdge on edge_type + InputIterator on out_edge_iterator *)
  Alcotest.(check bool) "closure has >= 3 obligations" true
    (List.length obs >= 3);
  let has c =
    List.exists (fun ob -> ob.Propagate.ob_concept = c) obs
  in
  Alcotest.(check bool) "includes GraphEdge" true (has "GraphEdge");
  Alcotest.(check bool) "includes InputIterator" true (has "InputIterator")

let test_propagation_idempotent () =
  let reg = graph_world () in
  let size1 = Propagate.explicit_size reg "VertexListGraph" [ n "adjacency_list" ] in
  let size2 = Propagate.explicit_size reg "VertexListGraph" [ n "adjacency_list" ] in
  Alcotest.(check int) "stable" size1 size2;
  Alcotest.(check bool) "propagation saves constraints" true
    (size1 > Propagate.declared_size)

(* The 2^n blowup of Section 2.4: a tower of two-type concepts, each
   refining two instances of the level below. *)
let test_propagation_exponential_tower () =
  let reg = Registry.create () in
  Registry.declare_type reg "a";
  Registry.declare_type reg "b";
  Registry.declare_concept reg
    (Concept.make ~params:[ "V"; "S" ] "Level0" [ Concept.axiom "t" "true" ]);
  let depth = 6 in
  for i = 1 to depth do
    Registry.declare_concept reg
      (Concept.make ~params:[ "V"; "S" ]
         (Printf.sprintf "Level%d" i)
         ~refines:
           [
             (Printf.sprintf "Level%d" (i - 1), [ v "V"; v "S" ]);
             (Printf.sprintf "Level%d" (i - 1), [ v "S"; v "V" ]);
           ]
         [ Concept.axiom "t" "true" ])
  done;
  (* without dedup the closure would be 2^(depth+1)-1; obligations dedup to
     2 per level (V,S and S,V) but the *written-out* form in a language
     without propagation is the full tree. *)
  let obs =
    Propagate.closure ~max_depth:20 reg
      (Printf.sprintf "Level%d" depth)
      [ n "a"; n "b" ]
  in
  Alcotest.(check bool) "closure deduplicates" true (List.length obs <= 2 * (depth + 1));
  Alcotest.(check bool) "more than one obligation" true (List.length obs > depth)

(* ------------------------------------------------------------------ *)
(* Indexed registry lookups == linear-scan reference (property)        *)
(* ------------------------------------------------------------------ *)

(* The registry now answers find_concept / find_type / find_model /
   find_ops / refines from generation-keyed hashtable indexes. These
   properties pit every lookup against a scan of the registry's exposed
   association lists (the seed implementation), on random worlds, before
   and after interleaved mutations — including a Lang.load_items-style
   direct field write — so a stale index can never go unnoticed. *)

let qtest = QCheck_alcotest.to_alcotest

let nconcepts = 8
let ntypes = 5
let cname i = Printf.sprintf "C%d" i
let tyname i = Printf.sprintf "ty%d" i

let find_concept_ref (reg : Registry.t) name =
  List.assoc_opt name reg.Registry.concepts

let find_type_ref (reg : Registry.t) name =
  List.assoc_opt name reg.Registry.types

let ctype_args_equal a1 a2 =
  List.length a1 = List.length a2 && List.for_all2 Ctype.equal a1 a2

let find_model_ref (reg : Registry.t) concept args =
  List.find_opt
    (fun m ->
      String.equal m.Registry.mo_concept concept
      && ctype_args_equal m.Registry.mo_args args)
    reg.Registry.models

let find_ops_ref (reg : Registry.t) name params =
  List.filter
    (fun (s : Concept.signature) ->
      String.equal s.Concept.op_name name
      && ctype_args_equal s.Concept.op_params params)
    reg.Registry.ops

let refines_ref (reg : Registry.t) a b =
  let rec go visited c =
    if String.equal c b then true
    else if List.mem c visited then false
    else
      List.exists
        (fun (x, y) -> String.equal x c && go (c :: visited) y)
        reg.Registry.refinement_edges
  in
  go [] a

type world_decl = {
  w_edges : (int * int) list; (* concept i refines concept j, j < i *)
  w_reqs : (int * int) list; (* concept i requires Models C_j, j < i *)
  w_ops : (string * int list * int) list;
  w_models : (int * int) list; (* (concept index, argument type index) *)
}

let world_arb =
  let open QCheck.Gen in
  let edge =
    int_range 1 (nconcepts - 1) >>= fun i ->
    int_range 0 (i - 1) >>= fun j -> return (i, j)
  in
  let op =
    oneofl [ "f"; "g"; "h" ] >>= fun name ->
    list_size (int_range 0 2) (int_range 0 (ntypes - 1)) >>= fun ps ->
    int_range 0 (ntypes - 1) >>= fun ret -> return (name, ps, ret)
  in
  let model =
    int_range 0 (nconcepts - 1) >>= fun c ->
    int_range 0 (ntypes - 1) >>= fun a -> return (c, a)
  in
  QCheck.make
    ( list_size (int_range 0 10) edge >>= fun w_edges ->
      list_size (int_range 0 6) edge >>= fun w_reqs ->
      list_size (int_range 0 12) op >>= fun w_ops ->
      list_size (int_range 0 10) model >>= fun w_models ->
      return { w_edges; w_reqs; w_ops; w_models } )

let build_registry w =
  let reg = Registry.create () in
  for i = 0 to ntypes - 1 do
    Registry.declare_type reg (tyname i)
  done;
  for i = 0 to nconcepts - 1 do
    let refines =
      List.filter_map
        (fun (x, j) ->
          if x = i then Some (cname j, [ Ctype.Var "T" ]) else None)
        w.w_edges
    in
    let reqs =
      List.filter_map
        (fun (x, j) ->
          if x = i then
            Some
              (Concept.Constraint (Concept.Models (cname j, [ Ctype.Var "T" ])))
          else None)
        w.w_reqs
    in
    Registry.declare_concept reg
      (Concept.make ~params:[ "T" ] ~refines (cname i)
         (Concept.axiom "t" "true" :: reqs))
  done;
  List.iter
    (fun (name, ps, ret) ->
      Registry.declare_op reg name
        (List.map (fun p -> n (tyname p)) ps)
        (n (tyname ret)))
    w.w_ops;
  List.iter
    (fun (c, a) -> Registry.declare_model reg (cname c) [ n (tyname a) ])
    w.w_models;
  reg

(* Apply a second declaration batch to an existing registry: more ops and
   models, a fresh concept, and a Lang.load_items-style direct mutation
   of the [types] field followed by [touch]. *)
let mutate_registry reg w =
  List.iter
    (fun (name, ps, ret) ->
      Registry.declare_op reg name
        (List.map (fun p -> n (tyname p)) ps)
        (n (tyname ret)))
    w.w_ops;
  List.iter
    (fun (c, a) -> Registry.declare_model reg (cname c) [ n (tyname a) ])
    w.w_models;
  (match w.w_edges with
  | (_, j) :: _ ->
    Registry.declare_concept reg
      (Concept.make ~params:[ "T" ]
         ~refines:[ (cname j, [ Ctype.Var "T" ]) ]
         "Extra"
         [ Concept.axiom "t" "true" ])
  | [] -> ());
  reg.Registry.types <-
    ( tyname 0,
      { Registry.td_name = tyname 0; td_assoc = [ ("elem", n (tyname 1)) ];
        td_doc = "shadow" } )
    :: reg.Registry.types;
  Registry.touch reg

let registry_lookups_agree w reg =
  let ok = ref true in
  let check b = ok := !ok && b in
  for i = 0 to nconcepts - 1 do
    check
      (Registry.find_concept reg (cname i) = find_concept_ref reg (cname i));
    for j = 0 to nconcepts - 1 do
      check
        (Registry.refines reg (cname i) (cname j)
        = refines_ref reg (cname i) (cname j))
    done;
    for a = 0 to ntypes - 1 do
      check
        (Registry.find_model reg (cname i) [ n (tyname a) ]
        = find_model_ref reg (cname i) [ n (tyname a) ])
    done
  done;
  for t = 0 to ntypes - 1 do
    check (Registry.find_type reg (tyname t) = find_type_ref reg (tyname t))
  done;
  List.iter
    (fun (name, ps, _) ->
      let params = List.map (fun p -> n (tyname p)) ps in
      check (Registry.find_ops reg name params = find_ops_ref reg name params))
    w.w_ops;
  check (Registry.find_concept reg "nope" = None);
  check (Registry.find_type reg "nope" = None);
  check (Registry.find_ops reg "zz" [] = []);
  check (Registry.refines reg "nope" (cname 0) = refines_ref reg "nope" (cname 0));
  !ok

let closures_agree reg =
  let idxs = List.init nconcepts (fun i -> i) in
  List.for_all
    (fun i ->
      Propagate.closure reg (cname i) [ n (tyname 0) ]
      = Propagate.closure_reference reg (cname i) [ n (tyname 0) ])
    idxs

let registry_equiv_prop =
  qtest
    (QCheck.Test.make
       ~name:"indexed registry lookups == list scans (random worlds)"
       ~count:200
       (QCheck.pair world_arb world_arb)
       (fun (w1, w2) ->
         let reg = build_registry w1 in
         registry_lookups_agree w1 reg
         && begin
              mutate_registry reg w2;
              registry_lookups_agree w2 reg
            end))

let closure_equiv_prop =
  qtest
    (QCheck.Test.make
       ~name:"hashed worklist closure == quadratic reference" ~count:200
       (QCheck.pair world_arb world_arb)
       (fun (w1, w2) ->
         let reg = build_registry w1 in
         closures_agree reg
         && begin
              mutate_registry reg w2;
              closures_agree reg
            end))

(* Telemetry transparency: checking and propagation return the same
   reports/observations with a sink installed (spans + counters
   recorded) as with the default no-op switchboard. *)
let telemetry_transparent_prop =
  qtest
    (QCheck.Test.make
       ~name:"telemetry never changes check/closure results" ~count:100
       world_arb
       (fun w ->
         let reg = build_registry w in
         let run () =
           List.init nconcepts (fun i ->
               ( Check.check reg (cname i) [ n (tyname 0) ],
                 Propagate.closure reg (cname i) [ n (tyname 0) ] ))
         in
         let off = run () in
         let on = Gp_telemetry.Tel.with_installed (fun _sink -> run ()) in
         off = on))

(* ------------------------------------------------------------------ *)
(* Archetypes                                                          *)
(* ------------------------------------------------------------------ *)

let test_archetype_models_its_concept () =
  let reg = graph_world () in
  let inst = Archetype.instantiate reg "IncidenceGraph" in
  Alcotest.(check bool) "archetype models IncidenceGraph" true
    (Check.models reg "IncidenceGraph" inst.Archetype.arch_args)

let test_archetype_minimal () =
  let reg = graph_world () in
  let inst = Archetype.instantiate reg "GraphEdge" in
  (* the GraphEdge archetype must NOT model IncidenceGraph *)
  Alcotest.(check bool) "GraphEdge archetype lacks IncidenceGraph" false
    (Check.models reg "IncidenceGraph" inst.Archetype.arch_args)

let test_archetype_implies () =
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  Alcotest.(check bool) "RandomAccess implies Forward" true
    (Archetype.implies reg ~declared:"RandomAccessIterator"
       ~used:"ForwardIterator");
  Alcotest.(check bool) "Input does not imply Forward" false
    (Archetype.implies reg ~declared:"InputIterator" ~used:"ForwardIterator")

(* ------------------------------------------------------------------ *)
(* Overloading                                                          *)
(* ------------------------------------------------------------------ *)

let test_overload_most_refined_wins () =
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  let g = Gp_sequence.Decls.sort_generic () in
  let res = Overload.resolve reg g [ n "vector<int>::iterator" ] in
  (match res with
  | Overload.Selected (c, losers) ->
    Alcotest.(check string) "picks introsort" "introsort (random access)"
      c.Overload.cand_name;
    Alcotest.(check int) "forward candidate also matched" 1
      (List.length losers)
  | _ -> Alcotest.fail "expected Selected");
  let res = Overload.resolve reg g [ n "list<int>::iterator" ] in
  match res with
  | Overload.Selected (c, _) ->
    Alcotest.(check string) "picks mergesort for list"
      "mergesort (forward)" c.Overload.cand_name
  | _ -> Alcotest.fail "expected Selected for list"

let test_overload_no_match_reports () =
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  let g = Gp_sequence.Decls.sort_generic () in
  match Overload.resolve reg g [ n "istream<int>::iterator" ] with
  | Overload.No_match reports ->
    Alcotest.(check int) "both candidates reported" 2 (List.length reports)
  | _ -> Alcotest.fail "input iterator must not satisfy sort"

let test_overload_ambiguity_detected () =
  let reg = Registry.create () in
  Registry.declare_concept reg
    (Concept.make ~params:[ "T" ] "A" [ Concept.axiom "t" "true" ]);
  Registry.declare_concept reg
    (Concept.make ~params:[ "T" ] "B" [ Concept.axiom "t" "true" ]);
  Registry.declare_type reg "x";
  Registry.declare_model reg "A" [ n "x" ];
  Registry.declare_model reg "B" [ n "x" ];
  let g = Overload.create "f" in
  Overload.add_candidate g ~name:"via A" ~guard:"A" (fun _ -> Overload.Unit);
  Overload.add_candidate g ~name:"via B" ~guard:"B" (fun _ -> Overload.Unit);
  match Overload.resolve reg g [ n "x" ] with
  | Overload.Ambiguous cs -> Alcotest.(check int) "two" 2 (List.length cs)
  | _ -> Alcotest.fail "expected ambiguity between unrelated concepts"

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let mini_taxonomy () =
  let t = Taxonomy.create "sorting" in
  Taxonomy.add_node t "sort" ~attributes:[ ("problem", "sorting") ];
  Taxonomy.add_node t "comparison_sort" ~parents:[ "sort" ]
    ~attributes:[ ("method", "comparison") ];
  Taxonomy.add_node t "ra_sort" ~parents:[ "comparison_sort" ]
    ~attributes:[ ("access", "random") ];
  Taxonomy.add_node t "fwd_sort" ~parents:[ "comparison_sort" ]
    ~attributes:[ ("access", "forward") ];
  Taxonomy.add_entry t ~name:"introsort" ~node:"ra_sort"
    ~costs:[ ("comparisons", Complexity.n_log_n "n") ];
  Taxonomy.add_entry t ~name:"mergesort" ~node:"fwd_sort"
    ~costs:[ ("comparisons", Complexity.n_log_n "n") ];
  Taxonomy.add_entry t ~name:"bubblesort" ~node:"ra_sort"
    ~costs:[ ("comparisons", Complexity.quadratic "n") ];
  t

let test_taxonomy_refines_and_attributes () =
  let t = mini_taxonomy () in
  Alcotest.(check bool) "ra refines sort" true
    (Taxonomy.refines t "ra_sort" "sort");
  Alcotest.(check bool) "sort not refines ra" false
    (Taxonomy.refines t "sort" "ra_sort");
  let attrs = Taxonomy.attributes t "ra_sort" in
  Alcotest.(check (option string)) "inherits problem" (Some "sorting")
    (List.assoc_opt "problem" attrs);
  Alcotest.(check (option string)) "own access" (Some "random")
    (List.assoc_opt "access" attrs)

let test_taxonomy_pick () =
  let t = mini_taxonomy () in
  let best =
    Taxonomy.pick t
      ~requirements:[ ("access", "random") ]
      ~measure:"comparisons"
  in
  Alcotest.(check (list string)) "picks introsort over bubblesort"
    [ "introsort" ]
    (List.map (fun e -> e.Taxonomy.en_name) best)

let test_taxonomy_gaps () =
  let t = mini_taxonomy () in
  Taxonomy.add_node t "parallel_sort" ~parents:[ "comparison_sort" ]
    ~attributes:[ ("access", "parallel") ];
  let gaps = Taxonomy.gaps t in
  Alcotest.(check (list string)) "parallel_sort is a gap" [ "parallel_sort" ]
    gaps

(* Mutually recursive concepts (Container <-> Iterator style) must not
   loop the checker; the visited set assumes on cycles. *)
let test_cyclic_concepts () =
  let reg = Registry.create () in
  Registry.declare_concept reg
    (Concept.make ~params:[ "C" ] "Cont"
       [
         Concept.assoc_type "iter"
           ~constraints:
             [ Concept.Models ("It", [ Ctype.Assoc (v "C", "iter") ]) ];
       ]);
  Registry.declare_concept reg
    (Concept.make ~params:[ "I" ] "It"
       [
         Concept.assoc_type "owner"
           ~constraints:
             [ Concept.Models ("Cont", [ Ctype.Assoc (v "I", "owner") ]) ];
       ]);
  Registry.declare_type reg "c" ~assoc:[ ("iter", n "i") ];
  Registry.declare_type reg "i" ~assoc:[ ("owner", n "c") ];
  Alcotest.(check bool) "cyclic check terminates and passes" true
    (Check.models reg "Cont" [ n "c" ]);
  (* and the propagation closure terminates (bounded by max_depth, since
     each level names a syntactically new projection chain) *)
  let obs = Propagate.closure ~max_depth:8 reg "Cont" [ n "c" ] in
  Alcotest.(check bool) "finite closure" true (List.length obs <= 2 * 9)

(* ------------------------------------------------------------------ *)
(* Emulation translation (Section 2.2)                                 *)
(* ------------------------------------------------------------------ *)

let test_emulation_flattens_incidence_graph () =
  let reg = graph_world () in
  let con = Option.get (Registry.find_concept reg "IncidenceGraph") in
  let flat = Emulation.translate reg con in
  (* Graph + Vertex + Edge + OutEdgeIter: the paper's flattened form *)
  Alcotest.(check int) "four parameters" 4 (List.length flat.Emulation.fi_params);
  Alcotest.(check bool) "includes Vertex param" true
    (List.mem "Vertex" flat.Emulation.fi_params);
  Alcotest.(check bool) "includes Edge param" true
    (List.mem "Edge" flat.Emulation.fi_params);
  (* the where clauses restate the nested model constraints *)
  Alcotest.(check bool) "where clause mentions GraphEdge" true
    (List.exists (fun w -> contains w "GraphEdge") flat.Emulation.fi_where);
  (* signatures now reference the parameters, not projections *)
  let rendered = Fmt.str "%a" Emulation.pp flat in
  Alcotest.(check bool) "no projections left in out_edges" false
    (contains rendered "Graph.vertex_type")

let test_emulation_blowup () =
  let reg = graph_world () in
  let con = Option.get (Registry.find_concept reg "IncidenceGraph") in
  let original, flattened = Emulation.blowup reg con in
  Alcotest.(check int) "original 1" 1 original;
  Alcotest.(check bool) "more than doubled (paper's study)" true
    (flattened > 2 * original)

(* ------------------------------------------------------------------ *)
(* Overload ablation                                                   *)
(* ------------------------------------------------------------------ *)

let test_first_match_is_worse () =
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  let g = Gp_sequence.Decls.sort_generic () in
  let args = [ n "vector<int>::iterator" ] in
  (match Overload.resolve reg g args with
  | Overload.Selected (c, _) ->
    Alcotest.(check string) "ranked picks introsort"
      "introsort (random access)" c.Overload.cand_name
  | _ -> Alcotest.fail "expected Selected");
  match Overload.resolve_first_match reg g args with
  | Overload.Selected (c, _) ->
    Alcotest.(check string) "first-match picks the general candidate"
      "mergesort (forward)" c.Overload.cand_name
  | _ -> Alcotest.fail "expected Selected (first match)"

(* ------------------------------------------------------------------ *)
(* Complexity algebra laws                                             *)
(* ------------------------------------------------------------------ *)

(* Bounds form an idempotent commutative semiring under (add, mul) with
   absorption tying add to the leq order; random monomial sums probe the
   laws the hand-picked algebra cases above cannot. *)
let complexity_arb =
  let open QCheck in
  let monomial =
    map
      (fun (v, p, l) ->
        if p = 0 && l = 0 then Complexity.constant
        else Complexity.poly_log v ~poly:p ~log:l)
      (triple (oneofl [ "n"; "m"; "k" ]) (int_range 0 3) (int_range 0 2))
  in
  set_print Complexity.to_string
    (map
       (fun ms -> List.fold_left Complexity.add Complexity.constant ms)
       (list_of_size Gen.(1 -- 3) monomial))

let complexity_law3 name law =
  QCheck.Test.make ~count:500 ~name
    (QCheck.triple complexity_arb complexity_arb complexity_arb)
    (fun (a, b, c) -> law a b c)

let complexity_laws =
  let open Complexity in
  [ complexity_law3 "add commutative" (fun a b _ ->
        equal (add a b) (add b a));
    complexity_law3 "add associative" (fun a b c ->
        equal (add a (add b c)) (add (add a b) c));
    complexity_law3 "add idempotent" (fun a _ _ -> equal (add a a) a);
    complexity_law3 "absorption: leq a b means a+b = b" (fun a b _ ->
        QCheck.assume (leq a b);
        equal (add a b) b);
    complexity_law3 "a leq a+b" (fun a b _ -> leq a (add a b));
    complexity_law3 "mul commutative" (fun a b _ ->
        equal (mul a b) (mul b a));
    complexity_law3 "mul associative" (fun a b c ->
        equal (mul a (mul b c)) (mul (mul a b) c));
    complexity_law3 "mul distributes over add" (fun a b c ->
        equal (mul a (add b c)) (add (mul a b) (mul a c))) ]

(* leq is a partial order (up to equal) and compare_growth is its
   packaging — the properties the complexity-verification harness's
   verdicts lean on. *)
let complexity_order_laws =
  let open Complexity in
  [ complexity_law3 "leq reflexive" (fun a _ _ -> leq a a);
    complexity_law3 "leq transitive" (fun a b c ->
        QCheck.assume (leq a b && leq b c);
        leq a c);
    complexity_law3 "leq antisymmetric up to equal" (fun a b _ ->
        QCheck.assume (leq a b && leq b a);
        equal a b);
    complexity_law3 "compare_growth consistent with leq" (fun a b _ ->
        match compare_growth a b with
        | Some 0 -> leq a b && leq b a
        | Some (-1) -> leq a b && not (leq b a)
        | Some 1 -> leq b a && not (leq a b)
        | Some _ -> false
        | None -> (not (leq a b)) && not (leq b a));
    complexity_law3 "equal bounds print identically" (fun a b _ ->
        QCheck.assume (equal a b);
        String.equal (to_string a) (to_string b));
    (* eval respects the order pointwise once sizes are >= 2 (below 2
       the log clamp flattens log factors on purpose) *)
    complexity_law3 "leq implies pointwise eval <= at size 64" (fun a b _ ->
        QCheck.assume (leq a b);
        let env _ = 64.0 in
        eval a ~env <= (3.0 *. eval b ~env)) ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "gp_concepts"
    [
      ( "ctype",
        [
          Alcotest.test_case "subst" `Quick test_ctype_subst;
          Alcotest.test_case "vars" `Quick test_ctype_vars;
          Alcotest.test_case "equal" `Quick test_ctype_equal;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "order" `Quick test_complexity_order;
          Alcotest.test_case "algebra" `Quick test_complexity_algebra;
          Alcotest.test_case "pp" `Quick test_complexity_pp;
          Alcotest.test_case "pp canonical order" `Quick
            test_complexity_pp_canonical;
          Alcotest.test_case "eval" `Quick test_complexity_eval;
          Alcotest.test_case "basis" `Quick test_complexity_basis;
        ]
        @ List.map qtest complexity_laws
        @ List.map qtest complexity_order_laws );
      ( "check",
        [
          Alcotest.test_case "pass" `Quick test_check_pass;
          Alcotest.test_case "missing op" `Quick test_check_missing_op;
          Alcotest.test_case "return mismatch" `Quick
            test_check_return_mismatch;
          Alcotest.test_case "refinement failure" `Quick
            test_check_refinement_failure_is_structured;
          Alcotest.test_case "assoc + same-type" `Quick
            test_check_assoc_and_same_type;
          Alcotest.test_case "axiom warnings" `Quick test_check_axiom_warnings;
          Alcotest.test_case "certified axiom" `Quick
            test_certified_axiom_clears_warning;
          Alcotest.test_case "nominal mode" `Quick
            test_nominal_mode_requires_declaration;
          Alcotest.test_case "complexity guarantee" `Quick
            test_complexity_guarantee_checked;
        ] );
      ( "graph concepts",
        [
          Alcotest.test_case "fig1+fig2" `Quick test_fig1_fig2;
          Alcotest.test_case "broken graph diagnosed" `Quick
            test_fig2_broken_graph;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "closure" `Quick test_propagation_closure;
          Alcotest.test_case "idempotent" `Quick test_propagation_idempotent;
          Alcotest.test_case "tower" `Quick
            test_propagation_exponential_tower;
        ] );
      ("registry index",
        [ registry_equiv_prop; closure_equiv_prop;
          telemetry_transparent_prop ]);
      ( "archetype",
        [
          Alcotest.test_case "models own concept" `Quick
            test_archetype_models_its_concept;
          Alcotest.test_case "minimal" `Quick test_archetype_minimal;
          Alcotest.test_case "implies" `Quick test_archetype_implies;
        ] );
      ( "overload",
        [
          Alcotest.test_case "most refined wins" `Quick
            test_overload_most_refined_wins;
          Alcotest.test_case "no match reports" `Quick
            test_overload_no_match_reports;
          Alcotest.test_case "ambiguity" `Quick
            test_overload_ambiguity_detected;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "refines/attributes" `Quick
            test_taxonomy_refines_and_attributes;
          Alcotest.test_case "pick" `Quick test_taxonomy_pick;
          Alcotest.test_case "gaps" `Quick test_taxonomy_gaps;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "cyclic concepts" `Quick test_cyclic_concepts;
          Alcotest.test_case "flattens incidence graph" `Quick
            test_emulation_flattens_incidence_graph;
          Alcotest.test_case "blowup" `Quick test_emulation_blowup;
          Alcotest.test_case "first-match ablation" `Quick
            test_first_match_is_worse;
        ] );
    ]
