(* Format validator for the telemetry exports, run under `dune runtest`
   against real `gp trace` / `gp serve --flight` output (see test/dune).
   Invoked as alternating KIND FILE pairs, e.g.

     test_telemetry_formats trace t.json prom m.prom flight f.jsonl folded f.txt

   - trace: the Chrome trace-event JSON must parse, every event must be
     a well-formed complete event, and the spans must cover all four
     instrumented subsystems plus the concept checker;
   - prom: the Prometheus exposition must be line-well-formed: HELP/TYPE
     comments or `name{labels} value` samples, histogram bucket series
     cumulative and +Inf-terminated, `_count` equal to the +Inf bucket;
   - flight: every JSONL dossier line must parse and carry the full
     field set, and at least one non-ok dossier must retain its span
     tree;
   - folded: every collapsed-stack line must be `stack<space>weight`
     with a non-negative numeric weight.

   Exits non-zero with a diagnostic on the first violation. *)

open Mini_json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error e -> fail "cannot read %s: %s" path e

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)
(* ------------------------------------------------------------------ *)

let required_spans =
  [ "concepts.check"; "concepts.closure"; "stllint.check";
    "simplicissimus.rewrite"; "distsim.run" ]

(* Shared structural checks: every event is either a complete (ph:X)
   event with sane ts/dur or a process_name metadata (ph:M) event, and
   every X event's pid lane is named by exactly such an M event.
   Returns (X events, lane pids). *)
let check_events path events =
  if events = [] then fail "%s: empty trace" path;
  let named_pids = ref [] in
  let xs = ref [] in
  List.iteri
    (fun i e ->
      let field k =
        match member k e with
        | Some v -> v
        | None -> fail "%s: event %d lacks %S" path i k
      in
      let pid =
        match field "pid" with
        | Jnum p -> p
        | _ -> fail "%s: event %d has a bad pid" path i
      in
      match field "ph" with
      | Jstr "M" ->
        (match field "name" with
        | Jstr "process_name" -> ()
        | _ -> fail "%s: metadata event %d is not process_name" path i);
        (match member "args" e with
        | Some (Jobj _ as args) when member "name" args <> None -> ()
        | _ -> fail "%s: metadata event %d lacks args.name" path i);
        if List.mem pid !named_pids then
          fail "%s: pid %g named twice" path pid;
        named_pids := pid :: !named_pids
      | Jstr "X" ->
        (match (field "ts", field "dur") with
        | Jnum ts, Jnum dur when ts >= 0.0 && dur >= 0.0 -> ()
        | _ -> fail "%s: event %d has bad ts/dur" path i);
        (match (field "name", member "args" e) with
        | Jstr _, Some (Jobj _) -> ()
        | _ -> fail "%s: event %d has bad name/args" path i);
        xs := (pid, e) :: !xs
      | _ -> fail "%s: event %d is neither complete nor metadata" path i)
    events;
  let xs = List.rev !xs in
  List.iteri
    (fun i (pid, _) ->
      if not (List.mem pid !named_pids) then
        fail "%s: event %d in unnamed pid lane %g" path i pid)
    xs;
  (List.map snd xs, List.sort_uniq compare !named_pids)

let parse_events path =
  let j =
    match parse (read_file path) with
    | j -> j
    | exception Bad_json e -> fail "%s: invalid JSON: %s" path e
  in
  match member "traceEvents" j with
  | Some (Jlist l) -> l
  | _ -> fail "%s: no traceEvents array" path

let validate_trace path =
  let spans, _ = check_events path (parse_events path) in
  let names =
    List.filter_map
      (fun e -> match member "name" e with Some (Jstr s) -> Some s | _ -> None)
      spans
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then
        fail "%s: no %S span — subsystem not covered" path want)
    required_spans;
  Printf.printf "trace ok: %s, %d events, spans cover %s\n" path
    (List.length spans)
    (String.concat " " required_spans)

(* A cluster trace export: same structural rules, but the point is the
   lane layout — several pids, one per node, each named, each holding
   spans. *)
let validate_lanes path =
  let spans, pids = check_events path (parse_events path) in
  if List.length pids < 2 then
    fail "%s: expected one pid lane per cluster node, got %d" path
      (List.length pids);
  List.iter
    (fun pid ->
      if
        not
          (List.exists
             (fun e ->
               match member "pid" e with
               | Some (Jnum p) -> p = pid
               | _ -> false)
             spans)
      then fail "%s: pid lane %g is named but empty" path pid)
    pids;
  Printf.printf "lanes ok: %s, %d events across %d node lanes\n" path
    (List.length spans) (List.length pids)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Split a sample line into (metric name, labels minus le, le, value).
   Label values in this toolchain never contain commas or braces, so a
   comma split is exact here. *)
let parse_sample path lineno line =
  let sp =
    match String.rindex_opt line ' ' with
    | Some i -> i
    | None -> fail "%s:%d: no value separator: %s" path lineno line
  in
  let series = String.sub line 0 sp in
  let value =
    match
      float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1))
    with
    | Some v -> v
    | None -> fail "%s:%d: unparseable value: %s" path lineno line
  in
  let name, labels =
    match String.index_opt series '{' with
    | None -> (series, "")
    | Some i ->
      if series.[String.length series - 1] <> '}' then
        fail "%s:%d: unterminated label set: %s" path lineno line;
      ( String.sub series 0 i,
        String.sub series (i + 1) (String.length series - i - 2) )
  in
  if name = "" then fail "%s:%d: empty metric name: %s" path lineno line;
  let parts =
    if labels = "" then [] else String.split_on_char ',' labels
  in
  let le, rest =
    List.partition (fun p -> starts_with "le=\"" p) parts
  in
  let le =
    match le with
    | [ l ] ->
      (* strip le=" ... " *)
      Some (String.sub l 4 (String.length l - 5))
    | [] -> None
    | _ -> fail "%s:%d: duplicate le label: %s" path lineno line
  in
  (name, String.concat "," rest, le, value)

let validate_prometheus path =
  let lines = String.split_on_char '\n' (read_file path) in
  let samples = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if starts_with "# HELP " line || starts_with "# TYPE " line then begin
        if starts_with "# TYPE " line then
          let kind =
            match String.rindex_opt line ' ' with
            | Some j -> String.sub line (j + 1) (String.length line - j - 1)
            | None -> ""
          in
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail "%s:%d: unknown TYPE %S" path lineno kind
      end
      else if starts_with "#" line then
        fail "%s:%d: stray comment: %s" path lineno line
      else samples := parse_sample path lineno line :: !samples)
    lines;
  let samples = List.rev !samples in
  if samples = [] then fail "%s: no samples" path;
  (* histogram invariants per bucket series — one series is a (family,
     other-labels) pair, e.g. gp_distsim_finish_time{algorithm="lcr"} *)
  let bucket_families =
    List.filter_map
      (fun (n, lbls, le, _) ->
        if le <> None && Filename.check_suffix n "_bucket" then
          Some (Filename.chop_suffix n "_bucket", lbls)
        else None)
      samples
    |> List.sort_uniq compare
  in
  List.iter
    (fun (fam, lbls) ->
      let pretty = if lbls = "" then fam else fam ^ "{" ^ lbls ^ "}" in
      let buckets =
        List.filter_map
          (fun (n, l, le, v) ->
            if n = fam ^ "_bucket" && l = lbls then
              match le with Some le -> Some (le, v) | None -> None
            else None)
          samples
      in
      let rec check_cumulative = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          if a > b then fail "%s: %s buckets not cumulative" path pretty;
          check_cumulative rest
        | _ -> ()
      in
      check_cumulative buckets;
      let inf_count =
        match List.assoc_opt "+Inf" buckets with
        | Some v -> v
        | None -> fail "%s: %s has no +Inf bucket" path pretty
      in
      match
        List.find_opt
          (fun (n, l, le, _) -> n = fam ^ "_count" && l = lbls && le = None)
          samples
      with
      | Some (_, _, _, c) when c = inf_count -> ()
      | Some (_, _, _, c) ->
        fail "%s: %s_count %g <> +Inf bucket %g" path pretty c inf_count
      | None -> fail "%s: %s has no _count sample" path pretty)
    bucket_families;
  Printf.printf "prometheus ok: %s, %d samples, %d histogram families\n" path
    (List.length samples)
    (List.length bucket_families)

(* ------------------------------------------------------------------ *)
(* Flight-recorder JSONL dump                                          *)
(* ------------------------------------------------------------------ *)

let dossier_fields =
  [ "id"; "kind"; "wire"; "generation"; "config"; "config_fp"; "outcome";
    "detail"; "cached"; "steps"; "dur_ns"; "response_fp"; "cache_chain";
    "metric_deltas"; "spans" ]

let validate_flight path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty flight dump" path;
  let error_spans = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let j =
        match parse line with
        | j -> j
        | exception Bad_json e -> fail "%s:%d: invalid JSON: %s" path lineno e
      in
      List.iter
        (fun k ->
          if member k j = None then
            fail "%s:%d: dossier lacks %S" path lineno k)
        dossier_fields;
      (match (member "outcome" j, member "spans" j) with
      | Some (Jstr o), Some (Jlist spans) ->
        if o <> "ok" && spans <> [] then incr error_spans;
        List.iter
          (fun sp ->
            match (member "name" sp, member "dur_ns" sp) with
            | Some (Jstr _), Some (Jnum d) when d >= 0.0 -> ()
            | _ -> fail "%s:%d: malformed span" path lineno)
          spans
      | _ -> fail "%s:%d: bad outcome/spans" path lineno);
      match member "cache_chain" j with
      | Some (Jlist chain) ->
        List.iter
          (fun link ->
            match (member "cache" link, member "hits" link, member "misses" link)
            with
            | Some (Jstr _), Some (Jnum _), Some (Jnum _) -> ()
            | _ -> fail "%s:%d: malformed cache_chain link" path lineno)
          chain
      | _ -> fail "%s:%d: cache_chain is not an array" path lineno)
    lines;
  if !error_spans = 0 then
    fail "%s: no non-ok dossier retained its span tree" path;
  Printf.printf "flight ok: %s, %d dossiers, %d error span trees\n" path
    (List.length lines) !error_spans

(* ------------------------------------------------------------------ *)
(* Folded (collapsed-stack) profile                                    *)
(* ------------------------------------------------------------------ *)

let validate_folded path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty folded profile" path;
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match String.rindex_opt line ' ' with
      | None -> fail "%s:%d: no weight separator: %s" path lineno line
      | Some sp -> (
        if sp = 0 then fail "%s:%d: empty stack: %s" path lineno line;
        match
          float_of_string_opt
            (String.sub line (sp + 1) (String.length line - sp - 1))
        with
        | Some w when w >= 0.0 -> ()
        | _ -> fail "%s:%d: bad weight: %s" path lineno line))
    lines;
  Printf.printf "folded ok: %s, %d stack lines\n" path (List.length lines)

let usage () =
  prerr_endline
    "usage: test_telemetry_formats (trace|lanes|prom|flight|folded) FILE ...";
  exit 2

let () =
  let rec go = function
    | [] -> ()
    | "trace" :: file :: rest -> validate_trace file; go rest
    | "lanes" :: file :: rest -> validate_lanes file; go rest
    | "prom" :: file :: rest -> validate_prometheus file; go rest
    | "flight" :: file :: rest -> validate_flight file; go rest
    | "folded" :: file :: rest -> validate_folded file; go rest
    | _ -> usage ()
  in
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as pairs) -> go pairs
  | _ -> usage ()
