(* Tests for gp_tracing: cross-node journey assembly under random
   failure injection (property-tested over the same drop/crash/partition
   grammar the CLI exposes), dump/load round-trips, Chrome lane export,
   and the tail-latency attribution arithmetic.

   The load-bearing property: every request the cluster COMPLETES
   assembles into a well-formed cross-node tree — single
   cluster.request root, every parent resolves, causal nesting — no
   matter which messages the failure plan dropped. Spans whose parent
   never closed (a dropped reply, an unanswered probe) must surface as
   orphans in aux traces, never silently attach to a root. *)

module Cluster = Gp_cluster.Cluster
module Engine = Gp_distsim.Engine
module Journey = Gp_telemetry.Journey
module Trace = Gp_telemetry.Trace
module Metrics = Gp_telemetry.Metrics
module Trace_set = Gp_tracing.Trace_set
module Attribution = Gp_tracing.Attribution
module Fleet = Gp_tracing.Fleet

let qtest = QCheck_alcotest.to_alcotest

let declare_standard reg =
  Gp_algebra.Decls.declare reg;
  Gp_sequence.Decls.declare reg;
  Gp_graph.Decls.declare reg

let run ?(n = 30) ?(seed = 7) ?(replicas = 3) ?(failures = []) () =
  let reqs = Gp_service.Workload.generate ~seed ~n () |> Array.of_list in
  Cluster.run
    ~config:
      { Cluster.default_config with
        replicas; failures; seed; trace = true;
        max_time = 5000.0 }
    ~declare_standard reqs

(* ------------------------------------------------------------------ *)
(* Random failure plans: the drop=/crash=/partition= grammar           *)
(* ------------------------------------------------------------------ *)

let failure_plan_gen replicas =
  let open QCheck.Gen in
  let drop = map (fun p -> Cluster.Drop p) (float_bound_inclusive 0.3) in
  let crash_replica =
    map2
      (fun r at ->
        Cluster.Crash_replica { replica = 1 + (r mod replicas); at })
      (int_bound (replicas - 1))
      (map float_of_int (int_range 5 80))
  in
  let crash_leader =
    map
      (fun at -> Cluster.Crash_leader { at })
      (map float_of_int (int_range 5 80))
  in
  let partition =
    map2
      (fun cut from_ ->
        let cut = 1 + (cut mod replicas) in
        let left = List.init cut (fun i -> i) in
        let right =
          List.init (replicas + 1 - cut) (fun i -> cut + i)
        in
        Cluster.Partition { groups = [ left; right ]; from_; until = from_ +. 25.0 })
      (int_bound (replicas - 1))
      (map float_of_int (int_range 5 60))
  in
  (* at most one crash, so some replica always remains *)
  oneof
    [ return [];
      map (fun d -> [ d ]) drop;
      map (fun c -> [ c ]) crash_leader;
      map (fun c -> [ c ]) crash_replica;
      map (fun p -> [ p ]) partition;
      map2 (fun d c -> [ d; c ]) drop crash_leader;
      map2 (fun d p -> [ d; p ]) drop partition ]

let pp_failure f =
  Fmt.str "%a"
    (fun ppf -> function
      | Cluster.Drop p -> Fmt.pf ppf "drop=%.2f" p
      | Cluster.Crash_replica { replica; at } ->
        Fmt.pf ppf "crash=%d@%g" replica at
      | Cluster.Crash_leader { at } -> Fmt.pf ppf "crash=leader@%g" at
      | Cluster.Partition { groups; from_; until } ->
        Fmt.pf ppf "partition=%a@%g-%g"
          Fmt.(list ~sep:(any "|") (list ~sep:(any "+") int))
          groups from_ until)
    f

let plan_arb replicas =
  QCheck.make
    ~print:(fun fs -> String.concat "," (List.map pp_failure fs))
    (failure_plan_gen replicas)

(* Completed requests assemble into well-formed trees; orphans only
   ever surface in traces of requests that never completed or in aux
   traces — and are never attached to a root. *)
let journeys_well_formed_prop =
  qtest
    (QCheck.Test.make ~name:"completed journeys well-formed under failures"
       ~count:30
       QCheck.(pair (plan_arb 3) (int_range 0 1000))
       (fun (failures, seed) ->
         let r = run ~failures ~seed () in
         let ts = Trace_set.of_result r in
         let js = Trace_set.journeys ts in
         List.for_all
           (fun (j : Journey.journey) ->
             let completed =
               Trace_set.is_request ts j.Journey.j_trace
               && j.Journey.j_trace < Array.length r.Cluster.r_records
               && r.Cluster.r_records.(j.Journey.j_trace) <> None
             in
             if completed then
               match Journey.well_formed j with
               | Ok () ->
                 Journey.root_name j = Some "cluster.request"
               | Error _ -> false
             else
               (* incomplete/aux: orphans stay orphans — every root's
                  subtree must contain only spans whose parents resolve
                  inside it (assemble guarantees this structurally);
                  check orphans are disjoint from the trees *)
               let rec ids (t : Journey.tree) =
                 t.Journey.t_span.Trace.sp_id
                 :: List.concat_map ids t.Journey.t_children
               in
               let tree_ids = List.concat_map ids j.Journey.j_roots in
               List.for_all
                 (fun (_, (sp : Trace.span)) ->
                   not (List.mem sp.Trace.sp_id tree_ids))
                 j.Journey.j_orphans)
           js))

(* Force the orphan path deterministically: drop enough messages that
   some serve/heartbeat span's parent never closes, and check the
   assembler surfaces orphans rather than inventing roots. *)
let test_orphans_surface () =
  let r =
    run ~n:60 ~seed:3
      ~failures:[ Cluster.Drop 0.35; Cluster.Crash_leader { at = 30.0 } ]
      ()
  in
  let ts = Trace_set.of_result r in
  let js = Trace_set.journeys ts in
  let orphans =
    List.concat_map (fun (j : Journey.journey) -> j.Journey.j_orphans) js
  in
  Alcotest.(check bool) "drops orphan some spans" true (orphans <> []);
  List.iter
    (fun (_, (sp : Trace.span)) ->
      Alcotest.(check bool) "orphan has an unresolved parent" true
        (sp.Trace.sp_parent <> None))
    orphans;
  (* and the validation still accepts the run: completed requests are
     unaffected by aux-trace orphans *)
  let v = Trace_set.validate ts in
  Alcotest.(check int) "no malformed request traces" 0
    (List.length v.Trace_set.v_malformed);
  Alcotest.(check bool) "aux orphans counted" true
    (v.Trace_set.v_aux_orphans > 0)

(* ------------------------------------------------------------------ *)
(* Dump / load                                                         *)
(* ------------------------------------------------------------------ *)

let dump_roundtrip_prop =
  qtest
    (QCheck.Test.make ~name:"dump/load round-trips byte-identically"
       ~count:15
       QCheck.(pair (plan_arb 3) (int_range 0 1000))
       (fun (failures, seed) ->
         let r = run ~failures ~seed () in
         let ts = Trace_set.of_result r in
         let doc = Trace_set.dump ts in
         match Trace_set.load doc with
         | Error _ -> false
         | Ok ts' ->
           String.equal doc (Trace_set.dump ts')
           && ts'.Trace_set.ts_n = ts.Trace_set.ts_n
           && ts'.Trace_set.ts_replicas = ts.Trace_set.ts_replicas
           (* journeys assemble identically from the reloaded set *)
           && List.length (Trace_set.journeys ts')
              = List.length (Trace_set.journeys ts)))

let test_load_rejects_garbage () =
  List.iter
    (fun (name, doc) ->
      Alcotest.(check bool) name true
        (match Trace_set.load doc with Error _ -> true | Ok _ -> false))
    [ ("empty", "");
      ("not json", "hello\n");
      ("wrong header", "{\"foo\":1}\n");
      ( "bad ctx",
        "{\"gp_trace\":1,\"replicas\":1,\"n\":1,\"seed\":0,\"spans\":1}\n\
         {\"node\":0,\"ctx\":\"x\",\"parent\":0,\"name\":\"a\",\"start\":0.0,\
         \"dur\":1.0,\"attrs\":{}}\n" );
      ( "node out of range",
        "{\"gp_trace\":1,\"replicas\":1,\"n\":1,\"seed\":0,\"spans\":1}\n\
         {\"node\":9,\"ctx\":\"0/1\",\"parent\":0,\"name\":\"a\",\
         \"start\":0.0,\"dur\":1.0,\"attrs\":{}}\n" ) ]

(* ------------------------------------------------------------------ *)
(* Attribution                                                         *)
(* ------------------------------------------------------------------ *)

(* Segments partition the root interval: queue + retry + stall +
   service = total (queue is defined as the clamped remainder), service
   comes from exactly the winning attempt, and every completed request
   is attributed. *)
let attribution_partition_prop =
  qtest
    (QCheck.Test.make ~name:"attribution partitions the root interval"
       ~count:15
       QCheck.(pair (plan_arb 3) (int_range 0 1000))
       (fun (failures, seed) ->
         let r = run ~failures ~seed () in
         let ts = Trace_set.of_result r in
         let sgs = Attribution.of_journeys (Trace_set.journeys ts) in
         List.length sgs = r.Cluster.r_completed
         && List.for_all
              (fun (sg : Attribution.segments) ->
                let parts =
                  sg.Attribution.sg_queue +. sg.Attribution.sg_retry
                  +. sg.Attribution.sg_stall +. sg.Attribution.sg_service
                in
                sg.Attribution.sg_total >= -.1e-9
                && sg.Attribution.sg_queue >= -.1e-9
                && Float.abs (parts -. sg.Attribution.sg_total)
                   <= 1e-6 *. Float.max 1.0 sg.Attribution.sg_total
                   +. 1e-6
                && sg.Attribution.sg_attempts >= 1)
              sgs))

let test_attribution_failover_names_causes () =
  let r =
    run ~n:60 ~seed:11
      ~failures:[ Cluster.Drop 0.2; Cluster.Crash_leader { at = 40.0 } ]
      ()
  in
  let ts = Trace_set.of_result r in
  let sgs = Attribution.of_journeys (Trace_set.journeys ts) in
  Alcotest.(check int) "every completed request attributed"
    r.Cluster.r_completed (List.length sgs);
  let su = Attribution.summarize sgs in
  Alcotest.(check bool) "retries dominate some tails" true
    (List.assoc Attribution.Retry su.Attribution.su_by_cause > 0);
  (* slowest-first ordering and determinism of the table *)
  let slow = Attribution.slowest ~k:5 sgs in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Attribution.sg_total >= b.Attribution.sg_total && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "slowest first" true (sorted slow)

(* ------------------------------------------------------------------ *)
(* Fleet metrics                                                       *)
(* ------------------------------------------------------------------ *)

let test_fleet_merge_consistency () =
  let r = run ~n:50 ~seed:5 () in
  match Fleet.merged r with
  | None -> Alcotest.fail "traced run has no fleet metrics"
  | Some m ->
    (* the merged request-time histogram holds every completed request *)
    (match Fleet.request_percentiles m with
    | None -> Alcotest.fail "no request_time percentiles"
    | Some pc ->
      Alcotest.(check int) "one observation per completed request"
        r.Cluster.r_completed pc.Fleet.pc_count;
      Alcotest.(check bool) "percentiles ordered" true
        (pc.Fleet.pc_p50 <= pc.Fleet.pc_p90
        && pc.Fleet.pc_p90 <= pc.Fleet.pc_p99
        && pc.Fleet.pc_p99 <= pc.Fleet.pc_max +. 1e-9));
    (* merged totals equal the sum over the per-node registries *)
    let by_node name =
      List.fold_left
        (fun a (_, nm) -> a +. Metrics.total nm name)
        0.0 r.Cluster.r_node_metrics
    in
    List.iter
      (fun name ->
        Alcotest.(check (float 1e-9))
          (name ^ " merged = summed")
          (by_node name) (Metrics.total m name))
      [ "gp_cluster_serves_total"; "gp_cluster_retries_total";
        "gp_cluster_shard_dispatch_total"; "gp_cluster_key_dispatch_total";
        "gp_cluster_elections_total" ];
    (* per-node engine traffic: sends sum to the engine total *)
    let em = r.Cluster.r_metrics in
    Alcotest.(check int) "sent_by sums to sent" em.Engine.messages_sent
      (Array.fold_left ( + ) 0 em.Engine.sent_by);
    Alcotest.(check int) "delivered_to sums to delivered"
      em.Engine.messages_delivered
      (Array.fold_left ( + ) 0 em.Engine.delivered_to)

let test_untraced_run_collects_nothing () =
  let reqs = Gp_service.Workload.generate ~seed:1 ~n:10 () |> Array.of_list in
  let r = Cluster.run ~declare_standard reqs in
  Alcotest.(check bool) "no lanes" true (r.Cluster.r_traces = []);
  Alcotest.(check bool) "no registries" true (r.Cluster.r_node_metrics = []);
  Alcotest.(check bool) "fleet declines" true (Fleet.merged r = None)

(* ------------------------------------------------------------------ *)
(* Chrome lanes                                                        *)
(* ------------------------------------------------------------------ *)

let test_chrome_lane_structure () =
  let r = run ~n:20 ~seed:2 () in
  let ts = Trace_set.of_result r in
  match Mini_json.parse (Trace_set.to_chrome ts) with
  | exception Mini_json.Bad_json e ->
    Alcotest.failf "chrome export does not parse: %s" e
  | j ->
    let events =
      match Mini_json.member "traceEvents" j with
      | Some (Mini_json.Jlist l) -> l
      | _ -> Alcotest.fail "no traceEvents"
    in
    let metas, spans =
      List.partition
        (fun e -> Mini_json.member "ph" e = Some (Mini_json.Jstr "M"))
        events
    in
    Alcotest.(check int) "one process_name per node" 4 (List.length metas);
    let pid e =
      match Mini_json.member "pid" e with
      | Some (Mini_json.Jnum p) -> p
      | _ -> Alcotest.fail "event without pid"
    in
    let named = List.map pid metas in
    List.iter
      (fun e ->
        Alcotest.(check bool) "span pid is a named lane" true
          (List.mem (pid e) named))
      spans;
    (* the router lane (pid 1) holds the request roots *)
    Alcotest.(check bool) "router lane non-empty" true
      (List.exists (fun e -> pid e = 1.0) spans)

let () =
  Alcotest.run "gp_tracing"
    [
      ( "journeys",
        [
          journeys_well_formed_prop;
          Alcotest.test_case "orphans surface, never re-rooted" `Quick
            test_orphans_surface;
        ] );
      ( "dump",
        [
          dump_roundtrip_prop;
          Alcotest.test_case "load rejects garbage" `Quick
            test_load_rejects_garbage;
        ] );
      ( "attribution",
        [
          attribution_partition_prop;
          Alcotest.test_case "failover causes named" `Quick
            test_attribution_failover_names_causes;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "merge consistency" `Quick
            test_fleet_merge_consistency;
          Alcotest.test_case "untraced collects nothing" `Quick
            test_untraced_run_collects_nothing;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "lane structure" `Quick
            test_chrome_lane_structure;
        ] );
    ]
