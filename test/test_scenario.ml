(* Tests for the scenario catalog: arrival-process invariants, the
   multi-tenant merge, every catalog entry running clean under audit
   (with the shed-exclusion accounting identity), fairness under the
   flood, and bit-exact determinism. *)

open Gp_scenario

let qtest = QCheck_alcotest.to_alcotest

let declare_standard reg =
  Gp_algebra.Decls.declare reg;
  Gp_sequence.Decls.declare reg;
  Gp_graph.Decls.declare reg;
  Gp_linalg.Decls.declare reg;
  Gp_structla.Decls.declare reg

let run ?(quick = true) ?(seed = 1) ?(audit = false) t =
  Scenario.run ~quick ~seed ~audit ~declare_standard t

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)
(* ------------------------------------------------------------------ *)

let arrival_args = QCheck.(pair (int_range 0 5000) (int_range 0 300))

let arrivals_valid_prop =
  qtest
    (QCheck.Test.make
       ~name:
         "arrivals: every generator is strictly increasing and positive"
       ~count:60 arrival_args
       (fun (seed, n) ->
         Arrivals.is_valid (Arrivals.poisson ~seed ~rate:5.0 n)
         && Arrivals.is_valid
              (Arrivals.diurnal ~seed ~base_rate:1.0 ~peak_rate:7.0
                 ~period:50.0 n)
         && Arrivals.is_valid
              (Arrivals.burst ~seed ~rate:2.0 ~burst_rate:40.0
                 ~burst_from:10.0 ~burst_until:20.0 n)
         && Arrivals.is_valid (Arrivals.uniform ~interval:0.5 n)))

let arrivals_pure_prop =
  qtest
    (QCheck.Test.make ~name:"arrivals: a pure function of the seed"
       ~count:60 arrival_args
       (fun (seed, n) ->
         Arrivals.poisson ~seed ~rate:3.0 n
         = Arrivals.poisson ~seed ~rate:3.0 n))

let merge_prop =
  qtest
    (QCheck.Test.make
       ~name:
         "merge: tenant-tagged interleaving is valid and loses nobody"
       ~count:60
       QCheck.(pair (int_range 0 3000) (pair (int_range 0 80) (int_range 0 80)))
       (fun (seed, (na, nb)) ->
         let a = Arrivals.poisson ~seed ~rate:2.0 na in
         let b = Arrivals.burst ~seed:(seed + 1) ~rate:1.0 ~burst_rate:20.0
                   ~burst_from:5.0 ~burst_until:15.0 nb
         in
         let m = Arrivals.merge [ a; b ] in
         let count t =
           Array.fold_left (fun k (ti, _) -> if ti = t then k + 1 else k) 0 m
         in
         Array.length m = na + nb
         && count 0 = na && count 1 = nb
         && Arrivals.is_valid (Arrivals.times m)))

(* ------------------------------------------------------------------ *)
(* The catalog under audit                                             *)
(* ------------------------------------------------------------------ *)

(* Every entry must pass its own declared checks AND audit clean; shed
   verdicts are excluded from the fingerprint diff by construction, so
   the audit accounting identity has to close with the shed column. *)
let test_catalog_audited () =
  List.iter
    (fun t ->
      let o = run ~audit:true t in
      Alcotest.(check (list string))
        (Scenario.name t ^ ": no violations")
        [] o.Scenario.o_violations;
      Alcotest.(check int)
        (Scenario.name t ^ ": everything completes")
        o.Scenario.o_requests o.Scenario.o_completed;
      match o.Scenario.o_audit with
      | None -> Alcotest.fail (Scenario.name t ^ ": audit missing")
      | Some a ->
        Alcotest.(check int)
          (Scenario.name t ^ ": nothing divergent")
          0
          (List.length a.Gp_cluster.Cluster.au_divergences);
        Alcotest.(check int)
          (Scenario.name t ^ ": shed count agrees with the result")
          o.Scenario.o_shed a.Gp_cluster.Cluster.au_shed;
        Alcotest.(check int)
          (Scenario.name t ^ ": compared + missing + shed = total")
          a.Gp_cluster.Cluster.au_total
          (a.Gp_cluster.Cluster.au_compared
          + a.Gp_cluster.Cluster.au_missing
          + a.Gp_cluster.Cluster.au_shed))
    Scenario.catalog

let test_catalog_names () =
  let names = List.map Scenario.name Scenario.catalog in
  Alcotest.(check (list string))
    "the catalog, in order"
    [ "steady"; "diurnal"; "hotkey_flood"; "stampede"; "elastic";
      "tenants"; "million" ]
    names;
  List.iter
    (fun n ->
      match Scenario.find n with
      | Some t -> Alcotest.(check string) "find is by name" n (Scenario.name t)
      | None -> Alcotest.failf "find %S returned nothing" n)
    names;
  Alcotest.(check bool) "unknown name" true (Scenario.find "nope" = None)

let test_determinism () =
  match Scenario.find "tenants" with
  | None -> Alcotest.fail "tenants scenario missing"
  | Some t ->
    let o1 = run t and o2 = run t in
    Alcotest.(check string) "same seed, bit-identical records"
      (Gp_cluster.Cluster.dump o1.Scenario.o_result)
      (Gp_cluster.Cluster.dump o2.Scenario.o_result);
    Alcotest.(check int) "same shed" o1.Scenario.o_shed o2.Scenario.o_shed

(* ------------------------------------------------------------------ *)
(* Multi-tenant fairness                                               *)
(* ------------------------------------------------------------------ *)

(* The fairness property, across seeds: per-tenant accounting closes,
   the door shed somebody (the flood overwhelms the bounded queue at
   every seed), and no protected tenant (a, b) is served a smaller
   fraction of its traffic than the flooding tenant c — the shed cost
   lands on the tenant that caused it. *)
let fairness_prop =
  qtest
    (QCheck.Test.make ~name:"tenants: the flooder bears the shedding"
       ~count:6
       QCheck.(int_range 1 1000)
       (fun seed ->
         match Scenario.find "tenants" with
         | None -> false
         | Some t ->
           let o = run ~seed t in
           let stat name =
             List.find
               (fun s -> String.equal s.Scenario.tn_name name)
               o.Scenario.o_tenants
           in
           let a = stat "a" and b = stat "b" and c = stat "c" in
           List.for_all
             (fun s ->
               s.Scenario.tn_served + s.Scenario.tn_shed
               = s.Scenario.tn_requests)
             [ a; b; c ]
           && o.Scenario.o_shed > 0
           && a.Scenario.tn_ratio >= c.Scenario.tn_ratio
           && b.Scenario.tn_ratio >= c.Scenario.tn_ratio))

let () =
  Alcotest.run "gp_scenario"
    [
      ( "arrivals",
        [ arrivals_valid_prop; arrivals_pure_prop; merge_prop ] );
      ( "catalog",
        [
          Alcotest.test_case "names and find" `Quick test_catalog_names;
          Alcotest.test_case "every entry audits clean" `Slow
            test_catalog_audited;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ("fairness", [ fairness_prop ]);
    ]
