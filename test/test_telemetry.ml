(* Tests for gp_telemetry: histogram quantile accuracy (including the
   one-bucket-ratio error bound, property-tested), the metric registry
   and its Prometheus/JSON expositions, deterministic span tracing under
   a manual clock, the global switchboard, and the gp_service veneer.

   The JSON emitters are validated by an actual parser
   ({!Mini_json}), not by substring matching. *)

open Gp_telemetry
open Mini_json

let qtest = QCheck_alcotest.to_alcotest
let parse_json = Mini_json.parse

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

(* exact sample quantile: the ceil(q*n)-th smallest observation *)
let exact_quantile samples q =
  let sorted = List.sort Float.compare samples in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let test_histogram_exact_on_constants () =
  let h = Histogram.create () in
  for _ = 1 to 100 do
    Histogram.observe h 5000.0
  done;
  (* clamping to [min, max] makes constant samples exact *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f" q)
        5000.0 (Histogram.quantile h q))
    [ 0.01; 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check (float 0.0)) "mean" 5000.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "min" 5000.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max" 5000.0 (Histogram.max_value h)

let test_histogram_known_samples () =
  let samples = List.init 1000 (fun i -> float_of_int (i + 1) *. 100.0) in
  let h = Histogram.create () in
  List.iter (Histogram.observe h) samples;
  let r = Histogram.ratio h in
  List.iter
    (fun q ->
      let exact = exact_quantile samples q in
      let est = Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within one bucket ratio (est %.0f, exact %.0f)"
           q est exact)
        true
        (est <= exact *. r && est >= exact /. r))
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ];
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" (List.fold_left ( +. ) 0.0 samples)
    (Histogram.sum h)

let test_histogram_empty_and_buckets () =
  let h = Histogram.create ~lo:10.0 ~hi:1000.0 ~buckets_per_decade:1 () in
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan (Histogram.quantile h 0.5));
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Histogram.mean h));
  let bs = Histogram.buckets h in
  (* bounds 10, 100, +inf *)
  Alcotest.(check int) "bucket count" 3 (Array.length bs);
  Alcotest.(check bool) "last bound inf" true (fst bs.(2) = infinity);
  Histogram.observe h 1e9;
  (* an overflow observation lands in the +inf bucket; quantile clamps to
     the observed max *)
  Alcotest.(check (float 0.0)) "inf bucket clamped" 1e9
    (Histogram.quantile h 1.0);
  Alcotest.(check bool) "create validates" true
    (match Histogram.create ~lo:0.0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let sample_gen = QCheck.make ~print:string_of_float QCheck.Gen.(float_range 1.0 1e6)

let histogram_bound_prop =
  qtest
    (QCheck.Test.make
       ~name:"histogram quantile within one bucket ratio of exact" ~count:200
       QCheck.(
         pair
           (list_of_size Gen.(int_range 1 60) sample_gen)
           (make ~print:string_of_float (Gen.float_range 0.01 1.0)))
       (fun (samples, q) ->
         QCheck.assume (samples <> []);
         let h = Histogram.create () in
         List.iter (Histogram.observe h) samples;
         let exact = exact_quantile samples q in
         let est = Histogram.quantile h q in
         let r = Histogram.ratio h in
         est <= exact *. r +. 1e-9 && est >= exact /. r -. 1e-9))

let histogram_monotone_prop =
  qtest
    (QCheck.Test.make ~name:"histogram quantiles are monotone in q" ~count:200
       QCheck.(list_of_size Gen.(int_range 1 60) sample_gen)
       (fun samples ->
         QCheck.assume (samples <> []);
         let h = Histogram.create () in
         List.iter (Histogram.observe h) samples;
         let qs = [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ] in
         let vs = List.map (Histogram.quantile h) qs in
         let rec mono = function
           | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
           | _ -> true
         in
         mono vs))

let test_histogram_merge_known () =
  let a = Histogram.create () in
  let b = Histogram.create () in
  List.iter (Histogram.observe a) [ 100.0; 200.0; 300.0 ];
  List.iter (Histogram.observe b) [ 1000.0; 2000.0 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count exact" 5 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "sum exact" 3600.0 (Histogram.sum m);
  Alcotest.(check (float 0.0)) "min" 100.0 (Histogram.min_value m);
  Alcotest.(check (float 0.0)) "max" 2000.0 (Histogram.max_value m);
  (* inputs untouched *)
  Alcotest.(check int) "a untouched" 3 (Histogram.count a);
  Alcotest.(check int) "b untouched" 2 (Histogram.count b);
  (* mismatched bucket geometry is a programming error *)
  Alcotest.(check bool) "geometry mismatch raises" true
    (match
       Histogram.merge a
         (Histogram.create ~lo:10.0 ~hi:1000.0 ~buckets_per_decade:1 ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let histogram_merge_prop =
  qtest
    (QCheck.Test.make
       ~name:
         "merge: count/sum exact, quantiles within one bucket ratio of the \
          merged sample"
       ~count:200
       QCheck.(
         pair
           (list_of_size Gen.(int_range 0 40) sample_gen)
           (list_of_size Gen.(int_range 0 40) sample_gen))
       (fun (xs, ys) ->
         QCheck.assume (xs <> [] || ys <> []);
         let ha = Histogram.create () in
         let hb = Histogram.create () in
         List.iter (Histogram.observe ha) xs;
         List.iter (Histogram.observe hb) ys;
         let m = Histogram.merge ha hb in
         let all = xs @ ys in
         Histogram.count m = List.length all
         && Float.abs (Histogram.sum m -. List.fold_left ( +. ) 0.0 all)
            <= 1e-6 *. Float.max 1.0 (Histogram.sum m)
         && List.for_all
              (fun q ->
                let exact = exact_quantile all q in
                let est = Histogram.quantile m q in
                let r = Histogram.ratio m in
                est <= exact *. r +. 1e-9 && est >= exact /. r -. 1e-9)
              [ 0.25; 0.5; 0.9; 1.0 ]))

(* Structural equality for merge laws: same geometry, same per-bucket
   counts, same count/sum/extremes (Stdlib.compare so empty nan
   extremes compare equal). *)
let hist_eq a b =
  Histogram.buckets a = Histogram.buckets b
  && Histogram.count a = Histogram.count b
  && Stdlib.compare (Histogram.sum a) (Histogram.sum b) = 0
  && Stdlib.compare (Histogram.min_value a) (Histogram.min_value b) = 0
  && Stdlib.compare (Histogram.max_value a) (Histogram.max_value b) = 0

(* Integer-valued samples: float addition over them is exact, so the
   merge laws hold with = rather than within-epsilon. *)
let int_samples =
  QCheck.(list_of_size Gen.(int_range 0 30)
            (map float_of_int (int_range 1 1_000_000)))

let hist_of samples =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) samples;
  h

let histogram_merge_comm_prop =
  qtest
    (QCheck.Test.make ~name:"merge is commutative" ~count:200
       QCheck.(pair int_samples int_samples)
       (fun (xs, ys) ->
         let a = hist_of xs and b = hist_of ys in
         hist_eq (Histogram.merge a b) (Histogram.merge b a)))

let histogram_merge_assoc_prop =
  qtest
    (QCheck.Test.make ~name:"merge is associative; merge_all folds it"
       ~count:200
       QCheck.(triple int_samples int_samples int_samples)
       (fun (xs, ys, zs) ->
         let a = hist_of xs and b = hist_of ys and c = hist_of zs in
         let l = Histogram.merge (Histogram.merge a b) c in
         let r = Histogram.merge a (Histogram.merge b c) in
         hist_eq l r
         && hist_eq l (Histogram.merge_all [ a; b; c ])
         && hist_eq a (Histogram.merge_all [ a ])))

let test_histogram_merge_all_edges () =
  Alcotest.(check bool) "empty list raises" true
    (match Histogram.merge_all [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* merge_all [h] is an independent copy, not an alias *)
  let h = hist_of [ 10.0; 20.0 ] in
  let c = Histogram.merge_all [ h ] in
  Histogram.observe h 30.0;
  Alcotest.(check int) "original grew" 3 (Histogram.count h);
  Alcotest.(check int) "copy did not" 2 (Histogram.count c)

(* ------------------------------------------------------------------ *)
(* Trace context (the cluster wire piggyback)                          *)
(* ------------------------------------------------------------------ *)

let context_roundtrip_prop =
  qtest
    (QCheck.Test.make ~name:"context renders and parses back" ~count:500
       QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
       (fun (trace, span) ->
         let c = Context.v ~trace ~span in
         Context.of_string (Context.to_string c) = Some c
         &&
         (* embedded parse: the cursor stops exactly after the context *)
         let buf = Buffer.create 32 in
         Buffer.add_string buf "x:";
         Context.render_into buf c;
         Buffer.add_string buf ",rest";
         let s = Buffer.contents buf in
         match Context.parse_at s ~pos:2 with
         | Some (c', stop) ->
           c' = c && String.sub s stop 5 = ",rest"
         | None -> false))

let test_context_edges () =
  Alcotest.(check bool) "none is none" true (Context.is_none Context.none);
  Alcotest.(check bool) "non-none" false
    (Context.is_none (Context.v ~trace:0 ~span:1));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (Context.of_string s = None))
    [ ""; "/"; "1/"; "/2"; "a/b"; "1/2/3"; "1/2 "; "-1/2" ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.inc m "requests";
  Metrics.inc m ~by:2.0 "requests";
  Metrics.inc m ~labels:[ ("kind", "check") ] "by_kind";
  Metrics.inc m ~labels:[ ("kind", "lint") ] ~by:4.0 "by_kind";
  Alcotest.(check (float 0.0)) "unlabelled" 3.0 (Metrics.value m "requests");
  Alcotest.(check (float 0.0)) "labelled" 4.0
    (Metrics.value m ~labels:[ ("kind", "lint") ] "by_kind");
  Alcotest.(check (float 0.0)) "total over labels" 5.0
    (Metrics.total m "by_kind");
  Alcotest.(check (float 0.0)) "unknown is 0" 0.0 (Metrics.value m "nope");
  (* label order must not matter *)
  Metrics.inc m ~labels:[ ("a", "1"); ("b", "2") ] "two";
  Metrics.inc m ~labels:[ ("b", "2"); ("a", "1") ] "two";
  Alcotest.(check (float 0.0)) "canonical labels" 2.0
    (Metrics.value m ~labels:[ ("a", "1"); ("b", "2") ] "two");
  (* a name can hold only one kind *)
  Alcotest.(check bool) "kind clash raises" true
    (match Metrics.set m "requests" 1.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.declare m ~kind:Metrics.Counter ~name:"hits" ~help:"Cache hits.";
  Metrics.inc m ~labels:[ ("cache", "a\"b\n") ] "hits";
  Metrics.set m "queue_depth" 7.0;
  Metrics.observe m "latency" 500.0;
  Metrics.observe m "latency" 123456.0;
  let text = Metrics.to_prometheus m in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "help line" true (has "# HELP hits Cache hits.");
  Alcotest.(check bool) "type line" true (has "# TYPE hits counter");
  Alcotest.(check bool) "escaped label" true
    (has "hits{cache=\"a\\\"b\\n\"} 1");
  Alcotest.(check bool) "gauge sample" true (has "queue_depth 7");
  Alcotest.(check bool) "+Inf bucket" true
    (has "latency_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "histogram count" true (has "latency_count 2");
  (* cumulative buckets: every bucket line's value is <= the +Inf one,
     and the series is non-decreasing top to bottom *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if String.length line > 14 && String.sub line 0 14 = "latency_bucket"
           then
             match String.rindex_opt line ' ' with
             | Some i ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
             | None -> None
           else None)
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "buckets cumulative" true (nondecreasing bucket_counts)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.inc m ~labels:[ ("kind", "check") ] "requests";
  Metrics.observe m "latency" 1000.0;
  Metrics.observe m "latency" 100000.0;
  match parse_json (Metrics.to_json m) with
  | exception Bad_json e -> Alcotest.failf "to_json does not parse: %s" e
  | j ->
    let metrics = jlist (Option.get (member "metrics" j)) in
    Alcotest.(check int) "two families" 2 (List.length metrics);
    let latency =
      List.find
        (fun f -> member "name" f = Some (Jstr "latency"))
        metrics
    in
    let series = jlist (Option.get (member "series" latency)) in
    (match series with
    | [ s ] ->
      Alcotest.(check bool) "histogram count" true
        (member "count" s = Some (Jnum 2.0));
      Alcotest.(check bool) "has p50" true (member "p50" s <> None)
    | _ -> Alcotest.fail "expected one latency series")

let test_metrics_totals () =
  let m = Metrics.create () in
  Metrics.inc m ~labels:[ ("kind", "check") ] "requests";
  Metrics.inc m ~labels:[ ("kind", "lint") ] ~by:2.0 "requests";
  Metrics.set m "queue_depth" 7.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "totals in first-observation order"
    [ ("requests", 3.0); ("queue_depth", 7.0) ]
    (Metrics.totals m)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let manual_trace ?(capacity = 16) () =
  Trace.create ~capacity ~clock:(Clock.manual ~step:10.0 ()) ()

let test_trace_nesting_and_durations () =
  let t = manual_trace () in
  let v =
    Trace.with_span t ~name:"root"
      ~attrs:(fun () -> [ ("k", "v") ])
      (fun () ->
        Trace.with_span t ~name:"child" (fun () -> Trace.add_attr t "x" "1");
        17)
  in
  Alcotest.(check int) "value through" 17 v;
  match Trace.spans t with
  | [ child; root ] ->
    (* reads: root start=0, child start=10, child stop=20, root stop=30 *)
    Alcotest.(check string) "child name" "child" child.Trace.sp_name;
    Alcotest.(check (float 0.0)) "child dur" 10.0 child.Trace.sp_dur_ns;
    Alcotest.(check (float 0.0)) "root dur" 30.0 root.Trace.sp_dur_ns;
    Alcotest.(check bool) "parent id" true
      (child.Trace.sp_parent = Some root.Trace.sp_id);
    Alcotest.(check bool) "root has no parent" true
      (root.Trace.sp_parent = None);
    Alcotest.(check bool) "add_attr landed on child" true
      (List.mem ("x", "1") child.Trace.sp_attrs);
    Alcotest.(check bool) "attrs thunk on root" true
      (List.mem ("k", "v") root.Trace.sp_attrs)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_trace_exception_safety () =
  let t = manual_trace () in
  (match Trace.with_span t ~name:"boom" (fun () -> failwith "no") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match Trace.spans t with
  | [ sp ] ->
    Alcotest.(check bool) "error attr" true
      (List.mem ("error", "true") sp.Trace.sp_attrs);
    (* the stack is clean: a new span is again a root *)
    Trace.with_span t ~name:"after" (fun () -> ());
    let after = List.nth (Trace.spans t) 1 in
    Alcotest.(check bool) "stack popped" true (after.Trace.sp_parent = None)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_trace_ring_and_marks () =
  let t = manual_trace ~capacity:4 () in
  for i = 1 to 10 do
    Trace.with_span t ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "recorded" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans t) in
  Alcotest.(check (list string)) "retained oldest-first"
    [ "s7"; "s8"; "s9"; "s10" ] names;
  let m = Trace.mark t in
  Trace.with_span t ~name:"fresh" (fun () -> ());
  Alcotest.(check (list string)) "since mark" [ "fresh" ]
    (List.map (fun s -> s.Trace.sp_name) (Trace.since t m))

let test_trace_chrome_json () =
  let t = manual_trace () in
  Trace.with_span t ~name:"outer" (fun () ->
      Trace.with_span t ~name:"inner \"quoted\"" (fun () -> ()));
  match parse_json (Trace.to_chrome_json t) with
  | exception Bad_json e -> Alcotest.failf "chrome json does not parse: %s" e
  | j ->
    let events = jlist (Option.get (member "traceEvents" j)) in
    (* one process_name metadata event names the lane, then the spans *)
    let metas, spans =
      List.partition (fun e -> member "ph" e = Some (Jstr "M")) events
    in
    Alcotest.(check int) "one metadata event" 1 (List.length metas);
    Alcotest.(check bool) "metadata names the process" true
      (match metas with
      | [ m ] ->
        member "name" m = Some (Jstr "process_name")
        && (match member "args" m with
           | Some args -> member "name" args <> None
           | None -> false)
      | _ -> false);
    Alcotest.(check int) "two span events" 2 (List.length spans);
    List.iter
      (fun e ->
        Alcotest.(check bool) "complete event" true
          (member "ph" e = Some (Jstr "X"));
        Alcotest.(check bool) "has ts" true (member "ts" e <> None);
        Alcotest.(check bool) "has args.span_id" true
          (match member "args" e with
          | Some args -> member "span_id" args <> None
          | None -> false))
      spans;
    (* ts is rebased: the earliest span starts at 0 *)
    let ts =
      List.filter_map
        (fun e -> match member "ts" e with Some (Jnum v) -> Some v | _ -> None)
        spans
    in
    Alcotest.(check (float 0.0)) "rebased ts" 0.0
      (List.fold_left Float.min infinity ts)

(* ------------------------------------------------------------------ *)
(* GC/allocation profiling                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_counters () =
  Alcotest.(check bool) "off by default" false (Profile.is_enabled ());
  Alcotest.(check bool) "sample none when off" true (Profile.sample () = None);
  Profile.with_profiling (fun () ->
      Alcotest.(check bool) "on inside" true (Profile.is_enabled ());
      let before = Option.get (Profile.sample ()) in
      ignore (Sys.opaque_identity (Array.make 50_000 0.0));
      let after = Option.get (Profile.sample ()) in
      let d = Profile.diff ~before ~after in
      (* a 50k-float array is ~400 kB; allow allocator slack downwards *)
      Alcotest.(check bool) "alloc counted" true
        (d.Profile.pc_alloc_bytes >= 350_000.0);
      Alcotest.(check bool) "minor delta nonneg" true (d.Profile.pc_minor >= 0);
      Alcotest.(check bool) "major delta nonneg" true (d.Profile.pc_major >= 0));
  Alcotest.(check bool) "restored off" false (Profile.is_enabled ())

let test_span_gc_accounting () =
  (* profiling off: spans carry no GC delta *)
  Tel.with_installed (fun sink ->
      Tel.with_span ~name:"plain" (fun () -> ());
      match Trace.spans sink.Tel.trace with
      | [ sp ] ->
        Alcotest.(check bool) "no gc when unprofiled" true (sp.Trace.sp_gc = None)
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  (* profiling on: every span carries a delta, and an allocating span
     shows its allocation *)
  Tel.with_installed ~profile:true (fun sink ->
      Tel.with_span ~name:"alloc" (fun () ->
          ignore (Sys.opaque_identity (Array.make 50_000 0.0)));
      (match Trace.spans sink.Tel.trace with
      | [ sp ] -> (
        match sp.Trace.sp_gc with
        | Some g ->
          Alcotest.(check bool) "alloc attributed to span" true
            (g.Profile.pc_alloc_bytes >= 350_000.0)
        | None -> Alcotest.fail "profiled span lost its gc delta")
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
      (* the chrome export carries the gc args, and still parses *)
      match parse_json (Trace.to_chrome_json sink.Tel.trace) with
      | exception Bad_json e -> Alcotest.failf "chrome json: %s" e
      | j ->
        let events = jlist (Option.get (member "traceEvents" j)) in
        (* span events only — the process_name metadata event has no gc *)
        List.iter
          (fun e ->
            if member "ph" e = Some (Jstr "X") then
              Alcotest.(check bool) "alloc_bytes arg" true
                (match member "args" e with
                | Some args -> member "alloc_bytes" args <> None
                | None -> false))
          events);
  Alcotest.(check bool) "profile restored off" false (Profile.is_enabled ())

(* ------------------------------------------------------------------ *)
(* Folded (collapsed-stack) export                                     *)
(* ------------------------------------------------------------------ *)

let test_folded_output () =
  let t = manual_trace () in
  (* clock reads: root open 0, child open 10, child close 20, root close
     30, solo open 40, solo close 50 *)
  Trace.with_span t ~name:"root" (fun () ->
      Trace.with_span t ~name:"child" (fun () -> ()));
  Trace.with_span t ~name:"solo" (fun () -> ());
  Alcotest.(check string) "folded self-weights"
    "root 20\nroot;child 10\nsolo 10\n" (Trace.to_folded t)

let test_folded_alloc_weight () =
  Tel.with_installed ~profile:true (fun sink ->
      Tel.with_span ~name:"outer" (fun () ->
          Tel.with_span ~name:"inner" (fun () ->
              ignore (Sys.opaque_identity (Array.make 50_000 0.0))));
      let folded = Trace.to_folded ~weight:`Alloc sink.Tel.trace in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
      in
      Alcotest.(check int) "two stacks" 2 (List.length lines);
      (* the inner stack carries the allocation; every self-weight is a
         nonnegative integer *)
      let weight line =
        match String.rindex_opt line ' ' with
        | Some i ->
          float_of_string (String.sub line (i + 1) (String.length line - i - 1))
        | None -> Alcotest.failf "malformed folded line %S" line
      in
      List.iter
        (fun l -> Alcotest.(check bool) "nonneg weight" true (weight l >= 0.0))
        lines;
      let inner =
        List.find (fun l -> String.length l >= 11 && String.sub l 0 11 = "outer;inner") lines
      in
      Alcotest.(check bool) "inner holds the allocation" true
        (weight inner >= 350_000.0))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let some_spans () =
  let t = manual_trace () in
  Trace.with_span t ~name:"service.request" (fun () ->
      Trace.with_span t ~name:"engine.work" (fun () -> ()));
  Trace.spans t

let mk_dossier ?(id = 0) ?(outcome = "ok") ?(dur = 1.0) ?(spans = []) () =
  { Recorder.do_id = id; do_kind = "optimize";
    do_wire = Lazy.from_val {|{"kind":"x"}|};
    do_generation = 3; do_config = "{}"; do_config_fp = "cfp";
    do_outcome = outcome;
    do_detail = (if outcome = "ok" then "" else "it broke");
    do_cached = false; do_steps = 7; do_dur_ns = dur;
    do_response_fp = Lazy.from_val "rfp";
    do_cache_chain = [ ("rewrites", 1, 2) ]; do_spans = spans;
    do_metric_deltas = [ ("gp_requests_total", 1.0) ] }

let test_recorder_ring_eviction () =
  (* a sustained error burst: every dossier is interesting (spans kept),
     and the ring still only ever holds [capacity] of them *)
  let r = Recorder.create ~capacity:4 ~slowest:2 () in
  for i = 1 to 10 do
    Recorder.record r
      (mk_dossier ~id:i ~outcome:"over-budget" ~spans:(some_spans ()) ())
  done;
  Alcotest.(check int) "recorded" 10 (Recorder.recorded r);
  Alcotest.(check int) "retained" 4 (Recorder.retained r);
  Alcotest.(check int) "dropped" 6 (Recorder.dropped r);
  let ds = Recorder.dossiers r in
  Alcotest.(check (list int)) "oldest first, newest kept" [ 7; 8; 9; 10 ]
    (List.map (fun d -> d.Recorder.do_id) ds);
  List.iter
    (fun d ->
      Alcotest.(check bool) "error dossiers keep spans" true
        (d.Recorder.do_spans <> []))
    ds;
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.recorded r);
  Alcotest.(check bool) "create validates" true
    (match Recorder.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_recorder_slowest_k () =
  (* streaming top-k: an ok dossier keeps its spans only if it ranks
     among the k slowest seen so far at the moment it is recorded *)
  let r = Recorder.create ~capacity:8 ~slowest:1 () in
  Recorder.record r (mk_dossier ~id:1 ~dur:5.0 ~spans:(some_spans ()) ());
  Recorder.record r (mk_dossier ~id:2 ~dur:9.0 ~spans:(some_spans ()) ());
  Recorder.record r (mk_dossier ~id:3 ~dur:3.0 ~spans:(some_spans ()) ());
  (match Recorder.dossiers r with
  | [ a; b; c ] ->
    Alcotest.(check bool) "first qualifies (empty top-k)" true
      (a.Recorder.do_spans <> []);
    Alcotest.(check bool) "slower still qualifies" true
      (b.Recorder.do_spans <> []);
    Alcotest.(check bool) "fast ok dossier stripped" true
      (c.Recorder.do_spans = [] && c.Recorder.do_metric_deltas = []);
    Alcotest.(check bool) "stripped dossier keeps its summary" true
      (c.Recorder.do_cache_chain <> []
      && Lazy.force c.Recorder.do_response_fp = "rfp")
  | l -> Alcotest.failf "expected 3 dossiers, got %d" (List.length l));
  (* slowest:0 disables the top-k path entirely; errors still qualify *)
  let r0 = Recorder.create ~capacity:8 ~slowest:0 () in
  Recorder.record r0 (mk_dossier ~id:1 ~dur:99.0 ~spans:(some_spans ()) ());
  Recorder.record r0
    (mk_dossier ~id:2 ~outcome:"timeout" ~dur:1.0 ~spans:(some_spans ()) ());
  match Recorder.dossiers r0 with
  | [ ok_d; err_d ] ->
    Alcotest.(check bool) "ok stripped with k=0" true
      (ok_d.Recorder.do_spans = []);
    Alcotest.(check bool) "error kept with k=0" true
      (err_d.Recorder.do_spans <> [])
  | l -> Alcotest.failf "expected 2 dossiers, got %d" (List.length l)

let test_recorder_jsonl () =
  let r = Recorder.create ~capacity:8 ~slowest:0 () in
  Recorder.record r
    (mk_dossier ~id:1 ~outcome:"over-budget" ~dur:5.5
       ~spans:(some_spans ()) ());
  Recorder.record r (mk_dossier ~id:2 ~dur:1.0 ());
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Recorder.to_jsonl r))
  in
  Alcotest.(check int) "one line per dossier" 2 (List.length lines);
  match List.map parse_json lines with
  | exception Bad_json e -> Alcotest.failf "dossier json does not parse: %s" e
  | [ d1; d2 ] ->
    Alcotest.(check bool) "outcome" true
      (member "outcome" d1 = Some (Jstr "over-budget"));
    Alcotest.(check bool) "id" true (member "id" d1 = Some (Jnum 1.0));
    Alcotest.(check bool) "config_fp" true
      (member "config_fp" d1 = Some (Jstr "cfp"));
    (match member "spans" d1 with
    | Some spans ->
      let spans = jlist spans in
      Alcotest.(check int) "span tree retained" 2 (List.length spans);
      List.iter
        (fun sp ->
          Alcotest.(check bool) "span has name" true (member "name" sp <> None);
          Alcotest.(check bool) "span has dur_ns" true
            (member "dur_ns" sp <> None))
        spans
    | None -> Alcotest.fail "no spans array");
    (match member "cache_chain" d1 with
    | Some chain -> (
      match jlist chain with
      | [ entry ] ->
        Alcotest.(check bool) "chain cache name" true
          (member "cache" entry = Some (Jstr "rewrites"));
        Alcotest.(check bool) "chain misses" true
          (member "misses" entry = Some (Jnum 2.0))
      | l -> Alcotest.failf "expected 1 chain entry, got %d" (List.length l))
    | None -> Alcotest.fail "no cache_chain array");
    Alcotest.(check bool) "boring dossier has empty spans" true
      (match member "spans" d2 with Some l -> jlist l = [] | None -> false)
  | _ -> Alcotest.fail "expected two parsed lines"

(* ------------------------------------------------------------------ *)
(* The switchboard                                                     *)
(* ------------------------------------------------------------------ *)

let test_tel_disabled_noops () =
  Alcotest.(check bool) "default off" false (Tel.is_enabled ());
  (* all no-ops, nothing raises, values flow through *)
  Alcotest.(check int) "with_span passthrough" 3
    (Tel.with_span ~name:"x" (fun () -> 3));
  Tel.count "c" 1;
  Tel.observe "h" 1.0;
  Tel.attr "k" "v";
  Alcotest.(check (list reject)) "no spans" []
    (Tel.spans_since (Tel.mark ()));
  Alcotest.(check bool) "no sink" true (Tel.current () = None)

let test_tel_with_installed () =
  let captured =
    Tel.with_installed ~clock:(Clock.manual ~step:5.0 ()) (fun sink ->
        Alcotest.(check bool) "enabled inside" true (Tel.is_enabled ());
        Tel.with_span ~name:"work" (fun () -> Tel.count "c" 2);
        Alcotest.(check (float 0.0)) "counter visible" 2.0
          (Metrics.value sink.Tel.metrics "c");
        Trace.spans sink.Tel.trace)
  in
  Alcotest.(check int) "span captured" 1 (List.length captured);
  Alcotest.(check bool) "restored off" false (Tel.is_enabled ());
  (* exception-safe restore *)
  (match
     Tel.with_installed (fun _ -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check bool) "restored off after raise" false (Tel.is_enabled ())

(* ------------------------------------------------------------------ *)
(* The gp_service veneer                                               *)
(* ------------------------------------------------------------------ *)

let test_service_veneer_report () =
  let open Gp_service in
  let m = Metrics.create () in
  (* 100 known latencies for one kind: 1..100 ms *)
  for i = 1 to 100 do
    Metrics.observe m ~kind:"check" ~ok:true ~error_code:None ~cached:(i <= 25)
      ~ns:(float_of_int i *. 1e6)
  done;
  Metrics.observe m ~kind:"lint" ~ok:false ~error_code:(Some "timeout")
    ~cached:false ~ns:5e6;
  Alcotest.(check int) "requests" 101 (Metrics.requests m);
  Alcotest.(check int) "errors" 1 (Metrics.errors m);
  (* the interpolated quantiles against the exact ones: within one bucket
     ratio (5 buckets/decade -> ~1.585x) *)
  let h =
    Option.get
      (Gp_telemetry.Metrics.find_histogram (Metrics.registry m)
         ~labels:[ ("kind", "check") ] "gp_request_latency_ns")
  in
  let samples = List.init 100 (fun i -> float_of_int (i + 1) *. 1e6) in
  let r = Gp_telemetry.Histogram.ratio h in
  List.iter
    (fun q ->
      let exact = exact_quantile samples q in
      let est = Gp_telemetry.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "service p%.0f within ratio" (q *. 100.0))
        true
        (est <= exact *. r && est >= exact /. r))
    [ 0.5; 0.9; 0.99 ];
  let report = Metrics.report m in
  Alcotest.(check bool) "report mentions both kinds" true
    (let has needle =
       let nl = String.length needle and tl = String.length report in
       let rec go i =
         i + nl <= tl && (String.sub report i nl = needle || go (i + 1))
       in
       go 0
     in
     has "check" && has "lint" && has "timeout")

let test_service_report_json () =
  let open Gp_service in
  let m = Metrics.create () in
  Metrics.observe m ~kind:"prove" ~ok:true ~error_code:None ~cached:false
    ~ns:1e6;
  match parse_json (Metrics.report_json m) with
  | exception Bad_json e -> Alcotest.failf "report_json does not parse: %s" e
  | j ->
    Alcotest.(check bool) "requests field" true
      (member "requests" j = Some (Jnum 1.0));
    Alcotest.(check bool) "registry dump present" true
      (match member "registry" j with
      | Some reg -> member "metrics" reg <> None
      | None -> false)

let test_server_slow_log_and_json () =
  let open Gp_service in
  let declare_standard reg =
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg
  in
  let server =
    Server.create
      ~config:{ Server.default_config with slow_log = 2 }
      ~declare_standard ()
  in
  let req =
    match Wire.request_of_line {|{"kind":"optimize","expr":"x*1 + 0"}|} with
    | Ok (_, r) -> r
    | Error e -> Alcotest.failf "wire: %s" e
  in
  (* without a sink: no slow log entries *)
  ignore (Server.handle server req);
  Alcotest.(check int) "slow log empty when disabled" 0
    (List.length (Server.slow_requests server));
  Tel.with_installed (fun _ ->
      for _ = 1 to 5 do
        ignore (Server.handle server req)
      done);
  let slow = Server.slow_requests server in
  Alcotest.(check int) "slow log capped" 2 (List.length slow);
  List.iter
    (fun e ->
      Alcotest.(check string) "kind" "optimize" e.Server.se_kind;
      match e.Server.se_spans with
      | root :: _ ->
        Alcotest.(check string) "root span" "service.request"
          root.Trace.sp_name
      | [] -> Alcotest.fail "no spans captured")
    slow;
  (match slow with
  | a :: b :: _ ->
    Alcotest.(check bool) "sorted slowest first" true
      (a.Server.se_ns >= b.Server.se_ns)
  | _ -> ());
  match parse_json (Server.report_json server) with
  | exception Bad_json e ->
    Alcotest.failf "server report_json does not parse: %s" e
  | j ->
    Alcotest.(check bool) "served count" true
      (member "requests" j = Some (Jnum 6.0))

(* ------------------------------------------------------------------ *)
(* Fleet roll-up: Metrics.merge_all                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge_all () =
  let a = Metrics.create () in
  let b = Metrics.create () in
  Metrics.declare a ~kind:Metrics.Counter ~name:"serves" ~help:"Serves.";
  Metrics.inc a ~by:3.0 "serves";
  Metrics.inc b ~by:4.0 "serves";
  Metrics.inc b ~labels:[ ("key", "k1") ] "by_key";
  Metrics.inc a ~labels:[ ("key", "k1") ] ~by:2.0 "by_key";
  Metrics.inc a ~labels:[ ("key", "k2") ] "by_key";
  Metrics.observe a "lat" 100.0;
  Metrics.observe a "lat" 200.0;
  Metrics.observe b "lat" 1000.0;
  let m = Metrics.merge_all [ a; b ] in
  Alcotest.(check (float 0.0)) "counters add" 7.0 (Metrics.value m "serves");
  Alcotest.(check (float 0.0)) "labelled series add" 3.0
    (Metrics.value m ~labels:[ ("key", "k1") ] "by_key");
  Alcotest.(check (float 0.0)) "one-sided series kept" 1.0
    (Metrics.value m ~labels:[ ("key", "k2") ] "by_key");
  (match Metrics.find_histogram m "lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
    Alcotest.(check int) "histogram counts add" 3 (Histogram.count h);
    Alcotest.(check (float 1e-9)) "histogram sums add" 1300.0
      (Histogram.sum h));
  (* inputs untouched, merged registry independent *)
  Metrics.inc m "serves";
  Alcotest.(check (float 0.0)) "input a untouched" 3.0
    (Metrics.value a "serves");
  (* order independence of the totals *)
  let m2 = Metrics.merge_all [ b; a ] in
  Alcotest.(check (float 0.0)) "order-independent total" 7.0
    (Metrics.value m2 "serves");
  (* kind clash across registries is a programming error *)
  let c = Metrics.create () in
  Metrics.set c "serves" 1.0;
  Alcotest.(check bool) "cross-registry kind clash raises" true
    (match Metrics.merge_all [ a; c ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "gp_telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "constant samples exact" `Quick
            test_histogram_exact_on_constants;
          Alcotest.test_case "known samples within ratio" `Quick
            test_histogram_known_samples;
          Alcotest.test_case "empty + buckets + overflow" `Quick
            test_histogram_empty_and_buckets;
          Alcotest.test_case "merge known histograms" `Quick
            test_histogram_merge_known;
          histogram_bound_prop;
          histogram_monotone_prop;
          histogram_merge_prop;
          histogram_merge_comm_prop;
          histogram_merge_assoc_prop;
          Alcotest.test_case "merge_all edges" `Quick
            test_histogram_merge_all_edges;
        ] );
      ( "context",
        [
          context_roundtrip_prop;
          Alcotest.test_case "none and rejects" `Quick test_context_edges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and labels" `Quick test_metrics_counters;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_prometheus;
          Alcotest.test_case "json exposition" `Quick test_metrics_json;
          Alcotest.test_case "family totals" `Quick test_metrics_totals;
          Alcotest.test_case "fleet merge_all" `Quick test_metrics_merge_all;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and durations" `Quick
            test_trace_nesting_and_durations;
          Alcotest.test_case "exception safety" `Quick
            test_trace_exception_safety;
          Alcotest.test_case "ring and marks" `Quick test_trace_ring_and_marks;
          Alcotest.test_case "chrome trace json" `Quick test_trace_chrome_json;
          Alcotest.test_case "folded export" `Quick test_folded_output;
          Alcotest.test_case "folded alloc weight" `Quick
            test_folded_alloc_weight;
        ] );
      ( "profile",
        [
          Alcotest.test_case "gc counters" `Quick test_profile_counters;
          Alcotest.test_case "span gc accounting" `Quick
            test_span_gc_accounting;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring eviction under error bursts" `Quick
            test_recorder_ring_eviction;
          Alcotest.test_case "slowest-k retention" `Quick
            test_recorder_slowest_k;
          Alcotest.test_case "jsonl export parses" `Quick test_recorder_jsonl;
        ] );
      ( "switchboard",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_tel_disabled_noops;
          Alcotest.test_case "with_installed" `Quick test_tel_with_installed;
        ] );
      ( "service veneer",
        [
          Alcotest.test_case "report quantiles" `Quick
            test_service_veneer_report;
          Alcotest.test_case "report_json" `Quick test_service_report_json;
          Alcotest.test_case "server slow log + json" `Quick
            test_server_slow_log_and_json;
        ] );
    ]
