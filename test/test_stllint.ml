(* Tests for the STLlint reproduction: the whole corpus against its
   expectations, the exact Fig. 4 and Section 3.2 messages, flow
   sensitivity, and the generated-program scaling harness. *)

open Gp_stllint

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let count_sev sev ds =
  List.length (List.filter (fun d -> d.Interp.d_severity = sev) ds)

(* Every corpus case matches its expected diagnostic counts. *)
let test_corpus_case (c : Corpus.case) () =
  let ds = Interp.check c.Corpus.program in
  let show = Fmt.str "%a" Interp.pp_report ds in
  Alcotest.(check int)
    (c.Corpus.case_name ^ " errors: " ^ show)
    c.Corpus.expect.Corpus.expect_errors
    (count_sev Interp.Error ds);
  Alcotest.(check int)
    (c.Corpus.case_name ^ " warnings: " ^ show)
    c.Corpus.expect.Corpus.expect_warnings
    (count_sev Interp.Warning ds);
  Alcotest.(check int)
    (c.Corpus.case_name ^ " suggestions: " ^ show)
    c.Corpus.expect.Corpus.expect_suggestions
    (count_sev Interp.Suggestion ds)

let corpus_tests =
  List.map
    (fun c ->
      Alcotest.test_case c.Corpus.case_name `Quick (test_corpus_case c))
    Corpus.all

(* ------------------------------------------------------------------ *)
(* Exact message reproduction                                          *)
(* ------------------------------------------------------------------ *)

(* Fig. 4's published output: "Warning: attempt to dereference a singular
   iterator / if (fgrade(*iter))" *)
let test_fig4_message () =
  let ds = Interp.check Corpus.fig4_buggy in
  let hit =
    List.find_opt
      (fun d -> contains d.Interp.d_message "dereference a singular iterator")
      ds
  in
  match hit with
  | Some d ->
    Alcotest.(check bool) "points at the if-condition" true
      (contains d.Interp.d_where "fgrade")
  | None -> Alcotest.fail "singular-iterator diagnostic missing"

(* Section 3.2's published suggestion text. *)
let test_sorted_find_suggestion_text () =
  let ds = Interp.check Corpus.sorted_then_linear_find in
  let hit =
    List.find_opt (fun d -> d.Interp.d_severity = Interp.Suggestion) ds
  in
  match hit with
  | Some d ->
    Alcotest.(check bool) "mentions the sorted sequence" true
      (contains d.Interp.d_message
         "the incoming sequence [first, last) is sorted, but will be \
          searched linearly");
    Alcotest.(check bool) "suggests lower_bound" true
      (contains d.Interp.d_message "lower_bound")
  | None -> Alcotest.fail "optimization suggestion missing"

let test_multipass_message () =
  let ds = Interp.check Corpus.max_element_on_stream in
  Alcotest.(check bool) "multipass message" true
    (List.exists
       (fun d ->
         contains d.Interp.d_message "multipass"
         && contains d.Interp.d_message "one traversal")
       ds)

let test_category_message () =
  let ds = Interp.check Corpus.sort_on_list in
  Alcotest.(check bool) "category mismatch names both concepts" true
    (List.exists
       (fun d ->
         contains d.Interp.d_message "RandomAccessIterator"
         && contains d.Interp.d_message "BidirectionalIterator")
       ds)

(* ------------------------------------------------------------------ *)
(* Flow sensitivity details                                            *)
(* ------------------------------------------------------------------ *)

open Ast

(* An if/else where only one branch invalidates: the join must still warn
   on a later use. *)
let test_join_of_branches () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt (Decl_iter { name = "it"; init = Begin_of "v" });
      stmt (Decl_iter { name = "last"; init = End_of "v" });
      stmt ~label:"if (...) v.push_back(1)"
        (If
           ( Pred (Var "flag"),
             [ stmt ~label:"v.push_back(1)" (Push_back ("v", Const 1)) ],
             [] ));
      stmt ~label:"while (it != last) *it"
        (While
           ( Iter_ne ("it", "last"),
             [ stmt ~label:"*it" (Deref_read "it"); stmt (Incr "it") ] ));
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check bool) "maybe-invalidated use reported" true
    (List.exists (fun d -> d.Interp.d_severity = Interp.Error) ds)

(* Sortedness survives a non-mutating traversal. *)
let test_sortedness_survives_reads () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
      stmt
        (Algo { algo = "accumulate"; args = [ A_range (R_container "v") ]; result = None });
      stmt ~label:"binary_search"
        (Algo
           { algo = "binary_search";
             args = [ A_range (R_container "v"); A_value (Const 1) ];
             result = None });
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check int) "no warnings" 0 (count_sev Interp.Warning ds)

(* reverse destroys sortedness. *)
let test_reverse_destroys_sortedness () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
      stmt (Algo { algo = "reverse"; args = [ A_range (R_container "v") ]; result = None });
      stmt ~label:"binary_search"
        (Algo
           { algo = "binary_search";
             args = [ A_range (R_container "v"); A_value (Const 1) ];
             result = None });
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check int) "warning returns" 1 (count_sev Interp.Warning ds)

(* Iterator assignment: reassigning a singular iterator makes it usable
   again (no sticky errors). *)
let test_reassignment_clears_state () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt (Decl_iter { name = "it"; init = Singular_init });
      stmt ~label:"it = v.begin()"
        (Assign_iter { name = "it"; init = Begin_of "v" });
      stmt (Decl_iter { name = "last"; init = End_of "v" });
      stmt ~label:"guarded use"
        (If (Iter_ne ("it", "last"), [ stmt ~label:"*it" (Deref_read "it") ], []));
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check int) "clean" 0 (List.length ds)

(* Copying an iterator copies its abstract state. *)
let test_copy_propagates_state () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt (Decl_iter { name = "e"; init = End_of "v" });
      stmt (Decl_iter { name = "c"; init = Copy_of "e" });
      stmt ~label:"*c" (Deref_read "c");
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check int) "copy of end also flagged" 1
    (count_sev Interp.Error ds)

(* Unknown algorithm: warn, do not crash. *)
let test_unknown_algorithm () =
  let program =
    [
      stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
      stmt ~label:"frobnicate(v)"
        (Algo { algo = "frobnicate"; args = [ A_range (R_container "v") ]; result = None });
    ]
  in
  let ds = Interp.check program in
  Alcotest.(check bool) "warned about missing spec" true
    (List.exists
       (fun d -> contains d.Interp.d_message "no specification")
       ds)

(* ------------------------------------------------------------------ *)
(* Generated corpus: detection scales with program size                *)
(* ------------------------------------------------------------------ *)

let test_generated_detection () =
  (* 30 blocks, every 3rd buggy: exactly 10 singular-deref errors *)
  let program = Corpus.generate ~blocks:30 ~buggy_every:3 in
  let ds = Interp.check program in
  let errs =
    List.filter
      (fun d ->
        d.Interp.d_severity = Interp.Error
        && contains d.Interp.d_message "singular")
      ds
  in
  Alcotest.(check int) "one error per buggy block" 10 (List.length errs)

let test_generated_clean () =
  let program = Corpus.generate ~blocks:25 ~buggy_every:0 in
  let ds = Interp.check program in
  Alcotest.(check int) "no errors in clean program" 0
    (count_sev Interp.Error ds)

(* Telemetry transparency: the symbolic interpreter reports identical
   diagnostics with a sink installed (spans + counters recorded) and
   with the default no-op switchboard. *)
let telemetry_transparent_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"telemetry never changes diagnostics" ~count:50
       QCheck.(pair (int_range 0 40) (int_range 0 5))
       (fun (blocks, buggy_every) ->
         let program = Corpus.generate ~blocks ~buggy_every in
         let off = Interp.check program in
         let on =
           Gp_telemetry.Tel.with_installed (fun _sink -> Interp.check program)
         in
         off = on))

let test_telemetry_transparent_corpus () =
  List.iter
    (fun (c : Corpus.case) ->
      let off = Interp.check c.Corpus.program in
      let on =
        Gp_telemetry.Tel.with_installed (fun _sink ->
            Interp.check c.Corpus.program)
      in
      Alcotest.(check bool) (c.Corpus.case_name ^ " unchanged") true (off = on))
    Corpus.all

let () =
  Alcotest.run "gp_stllint"
    [
      ("corpus", corpus_tests);
      ( "messages",
        [
          Alcotest.test_case "fig4 text" `Quick test_fig4_message;
          Alcotest.test_case "sorted-find suggestion" `Quick
            test_sorted_find_suggestion_text;
          Alcotest.test_case "multipass text" `Quick test_multipass_message;
          Alcotest.test_case "category text" `Quick test_category_message;
        ] );
      ( "flow sensitivity",
        [
          Alcotest.test_case "branch join" `Quick test_join_of_branches;
          Alcotest.test_case "sortedness survives reads" `Quick
            test_sortedness_survives_reads;
          Alcotest.test_case "reverse destroys sortedness" `Quick
            test_reverse_destroys_sortedness;
          Alcotest.test_case "reassignment" `Quick
            test_reassignment_clears_state;
          Alcotest.test_case "copy state" `Quick test_copy_propagates_state;
          Alcotest.test_case "unknown algorithm" `Quick
            test_unknown_algorithm;
        ] );
      ( "generated programs",
        [
          Alcotest.test_case "detection count" `Quick
            test_generated_detection;
          Alcotest.test_case "clean program" `Quick test_generated_clean;
        ] );
      ( "telemetry transparency",
        [
          telemetry_transparent_prop;
          Alcotest.test_case "corpus unchanged" `Quick
            test_telemetry_transparent_corpus;
        ] );
    ]
