(* A minimal recursive-descent JSON reader, used only to VALIDATE the
   telemetry emitters (Chrome traces, metric dumps, report_json) — the
   library itself never parses JSON. Strict enough to catch broken
   escaping, trailing commas and truncated output. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad_json (Printf.sprintf "%s at offset %d" m !pos)) in
  let rec skip () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let lit w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ w)
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num c | None -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; incr pos
        | Some 't' -> Buffer.add_char b '\t'; incr pos
        | Some 'r' -> Buffer.add_char b '\r'; incr pos
        | Some 'b' -> Buffer.add_char b '\b'; incr pos
        | Some 'f' -> Buffer.add_char b '\012'; incr pos
        | Some 'u' ->
          (* \uXXXX: skipping the escape is enough for validation *)
          if !pos + 5 > n then fail "truncated \\u escape";
          pos := !pos + 5;
          Buffer.add_char b '?'
        | Some c -> Buffer.add_char b c; incr pos
        | None -> fail "eof in string");
        go ()
      | Some c ->
        Buffer.add_char b c;
        incr pos;
        go ()
      | None -> fail "eof in string"
    in
    go ();
    Buffer.contents b
  in
  let rec value () =
    skip ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Jstr (string_lit ())
    | Some 't' -> lit "true" (Jbool true)
    | Some 'f' -> lit "false" (Jbool false)
    | Some 'n' -> lit "null" Jnull
    | Some _ -> number ()
    | None -> fail "eof"
  and arr () =
    expect '[';
    skip ();
    if peek () = Some ']' then begin
      incr pos;
      Jlist []
    end
    else
      let rec items acc =
        let v = value () in
        skip ();
        match peek () with
        | Some ',' ->
          incr pos;
          items (v :: acc)
        | Some ']' ->
          incr pos;
          Jlist (List.rev (v :: acc))
        | _ -> fail "bad array"
      in
      items []
  and obj () =
    expect '{';
    skip ();
    if peek () = Some '}' then begin
      incr pos;
      Jobj []
    end
    else
      let rec fields acc =
        skip ();
        let k = string_lit () in
        skip ();
        expect ':';
        let v = value () in
        skip ();
        match peek () with
        | Some ',' ->
          incr pos;
          fields ((k, v) :: acc)
        | Some '}' ->
          incr pos;
          Jobj (List.rev ((k, v) :: acc))
        | _ -> fail "bad object"
      in
      fields []
  in
  let v = value () in
  skip ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Jobj fields -> List.assoc_opt k fields
  | _ -> None

let jlist = function Jlist l -> l | _ -> raise (Bad_json "expected array")
