(* The benchmark harness: one section per figure/claim of the paper
   (experiment ids from DESIGN.md). Each timed comparison is a Bechamel
   Test.make; shape-only experiments print the series the paper implies.
   EXPERIMENTS.md records paper-statement vs the numbers printed here.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- f5 c1   # selected experiments *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let quota = ref 0.5

(* ns/run for a thunk, via Bechamel OLS on the monotonic clock. *)
let time_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ r acc -> r :: acc) results [] with
  | [ r ] -> (
    match Analyze.OLS.estimates r with
    | Some [ e ] -> e
    | _ -> nan)
  | _ -> nan

let pp_ns ppf ns =
  if Float.is_nan ns then Fmt.string ppf "n/a"
  else if ns < 1e3 then Fmt.pf ppf "%.0f ns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else Fmt.pf ppf "%.2f s" (ns /. 1e9)

let ns_str ns = Fmt.str "%a" pp_ns ns

let line = String.make 74 '='
let thin = String.make 74 '-'

let section id title =
  Fmt.pr "@.%s@.%s — %s@.%s@." line id title thin

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                              *)
(* ------------------------------------------------------------------ *)

(* Sections record named scalar results (ns/op, speedups); at exit the
   driver writes them as one JSON object keyed by experiment id, so CI
   can diff measured numbers across commits without scraping stdout. *)
let json_path : string option ref = ref None
let metrics : (string * string * float) list ref = ref []

let record ~experiment name v = metrics := (experiment, name, v) :: !metrics

(* Written via a temp file + rename, so a crash mid-write never leaves
   a truncated JSON for bench-diff to choke on. *)
let write_json path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  let all = List.rev !metrics in
  let secs =
    List.fold_left
      (fun acc (s, _, _) -> if List.mem s acc then acc else acc @ [ s ])
      [] all
  in
  Printf.fprintf oc "{\n  \"sections\": {\n";
  List.iteri
    (fun i sec ->
      Printf.fprintf oc "    %S: {\n" sec;
      let rows = List.filter (fun (s, _, _) -> String.equal s sec) all in
      List.iteri
        (fun j (_, name, v) ->
          let value =
            if Float.is_nan v then "null" else Printf.sprintf "%.3f" v
          in
          Printf.fprintf oc "      %S: %s%s\n" name value
            (if j = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    }%s\n" (if i = List.length secs - 1 then "" else ","))
    secs;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* F1/F2: graph concepts (Figs. 1 and 2)                               *)
(* ------------------------------------------------------------------ *)

let f1_f2 () =
  section "F1/F2" "Graph Edge and Incidence Graph concepts (Figs. 1-2)";
  let open Gp_concepts in
  let reg = Registry.create () in
  Gp_graph.Decls.declare reg;
  let n x = Ctype.Named x in
  let checks =
    [ ("GraphEdge", "adjacency_list::edge");
      ("IncidenceGraph", "adjacency_list");
      ("IncidenceGraph", "adjacency_matrix");
      ("VertexListGraph", "adjacency_list");
      ("AdjacencyMatrixGraph", "adjacency_matrix") ]
  in
  Fmt.pr "%-24s %-26s %s@." "concept" "type" "models?";
  List.iter
    (fun (c, ty) ->
      Fmt.pr "%-24s %-26s %b@." c ty (Check.models reg c [ n ty ]))
    checks;
  Fmt.pr "negative: adjacency_list vs AdjacencyMatrixGraph -> %b@."
    (Check.models reg "AdjacencyMatrixGraph" [ n "adjacency_list" ]);
  let t =
    time_ns "incidence-graph check" (fun () ->
        Sys.opaque_identity
          (Check.models reg "IncidenceGraph" [ n "adjacency_list" ]))
  in
  Fmt.pr "@.full structural check of IncidenceGraph: %s per check@." (ns_str t)

(* ------------------------------------------------------------------ *)
(* F3: CLACRM mixed precision (Fig. 3 / Section 2.4)                   *)
(* ------------------------------------------------------------------ *)

let f3 () =
  section "F3"
    "multi-type Vector Space: complex*real GEMM vs promote-to-complex \
     (CLACRM)";
  let open Gp_linalg in
  Fmt.pr "%6s %14s %14s %9s %12s@." "n" "mixed" "promoted" "speedup"
    "flop ratio";
  List.iter
    (fun sz ->
      let st = Random.State.make [| sz |] in
      let a =
        Dense.cmat_init sz sz (fun _ _ ->
            Complexf.make (Random.State.float st 1.0) (Random.State.float st 1.0))
      in
      let b = Dense.rmat_init sz sz (fun _ _ -> Random.State.float st 1.0) in
      let t_mixed =
        time_ns (Printf.sprintf "gemm_mixed %d" sz) (fun () ->
            Sys.opaque_identity (Dense.gemm_mixed a b))
      in
      let t_promoted =
        time_ns (Printf.sprintf "gemm_promoted %d" sz) (fun () ->
            Sys.opaque_identity (Dense.gemm_promoted a b))
      in
      Fmt.pr "%6d %14s %14s %8.2fx %11.1fx@." sz (ns_str t_mixed) (ns_str t_promoted) (t_promoted /. t_mixed)
        (float_of_int (Dense.flops_promoted ~m:sz ~k:sz ~n:sz)
        /. float_of_int (Dense.flops_mixed ~m:sz ~k:sz ~n:sz)))
    [ 16; 32; 64; 128 ];
  Fmt.pr "@.(paper: mixed complex*real 'significantly more efficient' than \
          promotion)@."

(* ------------------------------------------------------------------ *)
(* F4: STLlint (Fig. 4 / Section 3.1)                                  *)
(* ------------------------------------------------------------------ *)

let f4 () =
  section "F4" "STLlint: Fig. 4 detection, corpus accuracy, throughput";
  let open Gp_stllint in
  (* the headline warning *)
  let ds = Interp.check Corpus.fig4_buggy in
  Fmt.pr "Fig. 4 program:@.%a@." Interp.pp_report ds;
  (* corpus confusion table *)
  let tp = ref 0 and fp = ref 0 and fn = ref 0 and tn = ref 0 in
  List.iter
    (fun (c : Corpus.case) ->
      let ds = Interp.check c.Corpus.program in
      let found = Interp.errors ds <> [] || Interp.warnings ds <> [] in
      let expected =
        c.Corpus.expect.Corpus.expect_errors > 0
        || c.Corpus.expect.Corpus.expect_warnings > 0
      in
      match found, expected with
      | true, true -> incr tp
      | true, false -> incr fp
      | false, true -> incr fn
      | false, false -> incr tn)
    Corpus.all;
  Fmt.pr "@.corpus (%d programs): %d true positive, %d true negative, %d \
          false positive, %d false negative@."
    (List.length Corpus.all) !tp !tn !fp !fn;
  (* throughput on generated programs *)
  Fmt.pr "@.%-10s %12s %14s@." "blocks" "diagnostics" "check time";
  List.iter
    (fun blocks ->
      let program = Corpus.generate ~blocks ~buggy_every:4 in
      let count = List.length (Interp.check program) in
      let t =
        time_ns
          (Printf.sprintf "lint %d blocks" blocks)
          (fun () -> Sys.opaque_identity (Interp.check program))
      in
      Fmt.pr "%-10d %12d %14s@." blocks count (ns_str t))
    [ 10; 50; 250 ]

(* ------------------------------------------------------------------ *)
(* F5: Simplicissimus (Fig. 5 / Section 3.2)                           *)
(* ------------------------------------------------------------------ *)

let f5 () =
  section "F5" "Simplicissimus: Fig. 5 rules, certification, rewrite payoff";
  let open Gp_simplicissimus in
  let insts = Instances.standard () in
  let rules = Rules.builtin @ [ Rules.lidia_inverse ] in
  (* certification status *)
  let reports = Certify.certify_builtin () in
  List.iter (fun c -> Fmt.pr "%a@." Certify.pp_certification c) reports;
  (* the regenerated instance table *)
  let open Expr in
  let cases =
    [ ("i * 1", binop "*" (ivar "i") (int 1));
      ("f * 1.0", binop "*" (fvar "f") (float 1.0));
      ("b && true", binop "&&" (bvar "b") (bool true));
      ("i & ~0", binop "&" (ivar "i") (int (-1)));
      ("concat(s,\"\")", binop "^" (svar "s") (string ""));
      ("A . I", binop "." (mvar "A") (Ident ("matrix", ".")));
      ("i + (-i)", binop "+" (ivar "i") (unop "neg" (ivar "i")));
      ("f * (1/f)", binop "*" (fvar "f") (unop "inv" (fvar "f")));
      ("r * r^-1", binop "*" (qvar "r") (unop "inv" (qvar "r")));
      ( "A . A^-1",
        let a = Var ("A", "invertible_matrix") in
        Op (".", "invertible_matrix",
            [ a; Op ("inv", "invertible_matrix", [ a ]) ]) ) ]
  in
  Fmt.pr "@.%-16s %-12s %s@." "instance" "result" "rule (from just 2 concept \
                                                   rules + companions)";
  List.iter
    (fun (label, e) ->
      let r = Engine.rewrite ~rules ~insts e in
      let fired =
        match r.Engine.steps with s :: _ -> s.Engine.st_rule | [] -> "-"
      in
      Fmt.pr "%-16s %-12s %s@." label (Expr.to_string r.Engine.output) fired)
    cases;
  (* rewrite payoff: evaluate a redex-heavy expression before/after *)
  let rec build k =
    if k = 0 then ivar "x"
    else
      binop "+"
        (binop "*" (binop "+" (build (k - 1)) (int 0)) (int 1))
        (binop "+" (int 0) (binop "+" (ivar "y") (unop "neg" (ivar "y"))))
  in
  let e = build 8 in
  let simplified = (Engine.rewrite ~rules ~insts e).Engine.output in
  let env = [ ("x", VInt 21); ("y", VInt (-3)) ] in
  let t_before =
    time_ns "eval original" (fun () -> Sys.opaque_identity (Eval.eval ~env e))
  in
  let t_after =
    time_ns "eval simplified" (fun () ->
        Sys.opaque_identity (Eval.eval ~env simplified))
  in
  Fmt.pr "@.redex-heavy expression: %d ops -> %d ops@." (Expr.op_count e)
    (Expr.op_count simplified);
  Fmt.pr "evaluation: %s -> %s (%.1fx)@." (ns_str t_before) (ns_str t_after)
    (t_before /. t_after);
  (* rewriting throughput *)
  let t_rw =
    time_ns "rewrite pass" (fun () ->
        Sys.opaque_identity (Engine.rewrite ~rules ~insts e))
  in
  Fmt.pr "one full rewrite pass over that expression: %s@." (ns_str t_rw)

(* ------------------------------------------------------------------ *)
(* F6 + C7: Athena proofs (Fig. 6 / Section 3.3)                       *)
(* ------------------------------------------------------------------ *)

let f6 () =
  section "F6/C7" "Fig. 6 SWO theorems; generic proofs amortised over models";
  let open Gp_athena in
  (* the SWO theorems over three orders *)
  Fmt.pr "%-42s %-12s %s@." "theorem" "model" "verdict";
  List.iter
    (fun lt ->
      List.iter
        (fun thm_fn ->
          let thm = thm_fn ~lt in
          let v = Theorems.verify ~axioms:(Theory.strict_weak_order ~lt) thm in
          Fmt.pr "%-42s %-12s %a@." thm.Theorems.thm_name lt
            Deduction.pp_verdict v)
        [ Theorems.swo_e_reflexive; Theorems.swo_e_symmetric;
          Theorems.swo_e_transitive; Theorems.swo_asymmetric ])
    [ "int_lt"; "string_lt"; "rational_lt" ];
  (* amortisation: one generic group proof, checked per instance *)
  let instances = Theory.group_instances in
  let thm0 = Theorems.group_right_inverse Theory.int_add in
  Fmt.pr "@.group right-inverse proof: %d inference nodes@."
    (Deduction.size thm0.Theorems.proof);
  let t_one =
    time_ns "check one instance" (fun () ->
        Sys.opaque_identity
          (Theorems.verify
             ~axioms:(Theory.group_minimal Theory.int_add)
             thm0))
  in
  let t_all =
    time_ns "check all instances" (fun () ->
        Sys.opaque_identity
          (Theorems.check_for_instances
             ~theorem:Theorems.group_right_inverse
             ~axioms:Theory.group_minimal instances))
  in
  Fmt.pr "checking: %s per instance; %s for %d instances (one generic \
          proof, written once)@."
    (ns_str t_one) (ns_str t_all) (List.length instances);
  Fmt.pr "(paper: 'it is much more efficient to check a given proof than to \
          search for [one]'; checking is microseconds)@."

(* ------------------------------------------------------------------ *)
(* C1: concept-dispatched sort                                         *)
(* ------------------------------------------------------------------ *)

let c1 () =
  section "C1"
    "concept-based overloading: sort dispatch (introsort vs mergesort)";
  let open Gp_sequence in
  Fmt.pr "%8s %16s %16s %18s@." "n" "vector/introsort" "list/mergesort"
    "vector-as-forward";
  List.iter
    (fun n ->
      let data = List.init n (fun i -> (i * 7919) mod n) in
      let t_vec =
        time_ns
          (Printf.sprintf "introsort %d" n)
          (fun () ->
            let a = Varray.of_list ~dummy:0 data in
            Algorithms.sort ~lt:( < ) (Varray.begin_ a, Varray.end_ a))
      in
      let t_list =
        time_ns
          (Printf.sprintf "list mergesort %d" n)
          (fun () ->
            let l = Dlist.of_list data in
            Algorithms.sort ~lt:( < ) (Dlist.begin_ l, Dlist.end_ l))
      in
      let t_fwd =
        time_ns
          (Printf.sprintf "restricted forward %d" n)
          (fun () ->
            let a = Varray.of_list ~dummy:0 data in
            Algorithms.sort ~lt:( < )
              ( Iter.restrict Iter.Forward (Varray.begin_ a),
                Iter.restrict Iter.Forward (Varray.end_ a) ))
      in
      Fmt.pr "%8d %16s %16s %18s@." n (ns_str t_vec) (ns_str t_list) (ns_str t_fwd))
    [ 1_000; 10_000; 100_000; 300_000 ];
  Fmt.pr "(dispatch picks the in-place introsort where random access is \
          modeled and the\n collecting mergesort otherwise; the random-access \
          path needs no O(n) scratch,\n which is the capability difference \
          the concepts encode)@."

(* ------------------------------------------------------------------ *)
(* C2: find vs lower_bound after sortedness analysis                   *)
(* ------------------------------------------------------------------ *)

let c2 () =
  section "C2"
    "sortedness-driven optimization: linear find vs lower_bound (Section \
     3.2)";
  let open Gp_sequence in
  Fmt.pr "%9s %13s %13s %9s %12s %12s@." "n" "find" "lower_bound" "speedup"
    "find derefs" "lb derefs";
  List.iter
    (fun n ->
      let a = Varray.of_list ~dummy:0 (List.init n (fun i -> i)) in
      let target = n - 1 in
      let t_find =
        time_ns (Printf.sprintf "find %d" n) (fun () ->
            Sys.opaque_identity
              (Algorithms.find ~eq:Int.equal target
                 (Varray.begin_ a, Varray.end_ a)))
      in
      let t_lb =
        time_ns (Printf.sprintf "lower_bound %d" n) (fun () ->
            Sys.opaque_identity
              (Algorithms.lower_bound ~lt:( < ) target
                 (Varray.begin_ a, Varray.end_ a)))
      in
      let count_ops f =
        let c = Iter.counters () in
        let first = Iter.counting c (Varray.begin_ a) in
        ignore (f (first, Varray.end_ a));
        c.Iter.derefs
      in
      let d_find = count_ops (Algorithms.find ~eq:Int.equal target) in
      let d_lb = count_ops (Algorithms.lower_bound ~lt:( < ) target) in
      Fmt.pr "%9d %13s %13s %8.0fx %12d %12d@." n (ns_str t_find) (ns_str t_lb)
        (t_find /. t_lb) d_find d_lb)
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  Fmt.pr "(the STLlint suggestion converts O(n) searches into O(log n): an \
          asymptotic win, growing with n)@."

(* ------------------------------------------------------------------ *)
(* C3: constraint propagation counts                                   *)
(* ------------------------------------------------------------------ *)

let c3 () =
  section "C3"
    "constraint propagation: declared vs spelled-out constraints (Sections \
     2.3-2.4)";
  let open Gp_concepts in
  let n x = Ctype.Named x in
  (* real concepts *)
  let reg = Registry.create () in
  Gp_graph.Decls.declare reg;
  let sreg = Registry.create () in
  Gp_sequence.Decls.declare sreg;
  Fmt.pr "%-38s %9s %12s %10s@." "constraint at a generic function"
    "declared" "spelled out" "extra tyvars";
  List.iter
    (fun (reg, concept, ty) ->
      Fmt.pr "%-38s %9d %12d %10d@."
        (concept ^ "<" ^ ty ^ ">")
        Propagate.declared_size
        (Propagate.explicit_size reg concept [ n ty ])
        (Propagate.emulation_type_parameters reg concept [ n ty ]))
    [ (reg, "IncidenceGraph", "adjacency_list");
      (reg, "VertexListGraph", "adjacency_list");
      (sreg, "Container", "vector<int>");
      (sreg, "RandomAccessContainer", "vector<int>") ];
  (* the Section 2.2 emulation translation, rendered *)
  (match Registry.find_concept reg "IncidenceGraph" with
  | Some con ->
    let flat = Emulation.translate reg con in
    let orig, flattened = Emulation.blowup reg con in
    Fmt.pr
      "@.associated-type emulation (Section 2.2): IncidenceGraph becomes@.%a@."
      Emulation.pp flat;
    Fmt.pr "type parameters: %d -> %d ('often more than doubled')@." orig
      flattened
  | None -> ());
  (* the 2^h tower of two-type concepts *)
  Fmt.pr "@.two-type concept tower (Section 2.4): subtype constraints \
          without propagation grow as 2^h@.";
  Fmt.pr "%6s %22s %24s@." "height" "with propagation" "without (2^(h+1)-1)";
  List.iter
    (fun h ->
      let treg = Registry.create () in
      Registry.declare_type treg "a";
      Registry.declare_type treg "b";
      Registry.declare_concept treg
        (Concept.make ~params:[ "V"; "S" ] "L0" [ Concept.axiom "t" "true" ]);
      for i = 1 to h do
        Registry.declare_concept treg
          (Concept.make ~params:[ "V"; "S" ]
             (Printf.sprintf "L%d" i)
             ~refines:
               [ (Printf.sprintf "L%d" (i - 1), [ Ctype.Var "V"; Ctype.Var "S" ]);
                 (Printf.sprintf "L%d" (i - 1), [ Ctype.Var "S"; Ctype.Var "V" ]) ]
             [ Concept.axiom "t" "true" ])
      done;
      (* count the written-out tree (no dedup): what a programmer types *)
      let rec tree i = if i = 0 then 1 else 1 + (2 * tree (i - 1)) in
      Fmt.pr "%6d %22d %24d@." h Propagate.declared_size (tree h))
    [ 1; 2; 3; 4; 5; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* C5: distributed algorithms series                                   *)
(* ------------------------------------------------------------------ *)

let c5 () =
  section "C5"
    "distributed taxonomy: LCR vs HS messages; local computation; \
     broadcast costs (Section 4)";
  let open Gp_distsim in
  let tax = Taxonomy7.build () in
  Fmt.pr "leader election on rings (worst-case uids):@.";
  Fmt.pr "%6s %10s %12s %10s %12s %10s@." "n" "LCR msgs" "LCR local"
    "HS msgs" "HS local" "HS/LCR";
  List.iter
    (fun n ->
      let uids = Array.init n (fun i -> n - i) in
      let lcr = Algorithms.Lcr.run ~uids (Topology.ring_unidirectional n) in
      let hs = Algorithms.Hs.run ~uids (Topology.ring n) in
      let lm = lcr.Engine.metrics.Engine.messages_sent in
      let hm = hs.Engine.metrics.Engine.messages_sent in
      (* record the actual measurements against the taxonomy entries *)
      Gp_concepts.Taxonomy.record_measurement tax ~entry:"LCR"
        ~measure:"messages" ~param:n ~value:(float_of_int lm);
      Gp_concepts.Taxonomy.record_measurement tax ~entry:"HS"
        ~measure:"messages" ~param:n ~value:(float_of_int hm);
      Fmt.pr "%6d %10d %12d %10d %12d %9.2f@." n lm
        (Engine.total_local_steps lcr.Engine.metrics)
        hm
        (Engine.total_local_steps hs.Engine.metrics)
        (float_of_int hm /. float_of_int lm))
    [ 8; 16; 32; 64; 128; 256 ];
  (* the taxonomy now carries analytic bound + actual samples side by
     side — the Section 4 "organize and present detailed actual
     performance measurements" *)
  Fmt.pr "@.taxonomy entries with measured data attached:@.";
  List.iter
    (fun name ->
      match Gp_concepts.Taxonomy.find_entry tax name with
      | Some e ->
        let samples =
          Gp_concepts.Taxonomy.measurements tax ~entry:name ~measure:"messages"
        in
        Fmt.pr "  %-4s analytic %-12s measured %a@." name
          (match List.assoc_opt "messages" e.Gp_concepts.Taxonomy.en_costs with
          | Some c -> Gp_concepts.Complexity.to_string c
          | None -> "?")
          Fmt.(
            list ~sep:sp (fun ppf m ->
                pf ppf "%d:%.0f" m.Gp_concepts.Taxonomy.ms_param
                  m.Gp_concepts.Taxonomy.ms_value))
          samples
      | None -> ())
    [ "LCR"; "HS" ];
  Fmt.pr "@.broadcast on 64 nodes (messages / completion time / total local \
          steps):@.";
  List.iter
    (fun (name, topo) ->
      let r = Algorithms.Flood.run ~root:0 ~value:1 topo in
      Fmt.pr "  %-14s %a@." name Engine.pp_metrics r.Engine.metrics)
    [ ("ring", Topology.ring 64); ("star", Topology.star 64);
      ("grid 8x8", Topology.grid 8 8); ("tree", Topology.binary_tree 64);
      ("complete", Topology.complete 64) ];
  Fmt.pr "@.taxonomy pick (problem=leader-election, topology=bidirectional-\
          ring, measure=messages):@.";
  List.iter
    (fun e -> Fmt.pr "  -> %a@." Gp_concepts.Taxonomy.pp_entry e)
    (Taxonomy7.pick_for tax ~problem:"leader-election"
       ~topology:"bidirectional-ring" ~measure:"messages")

(* ------------------------------------------------------------------ *)
(* C6: data-parallel speedup                                           *)
(* ------------------------------------------------------------------ *)

let c6 () =
  section "C6" "data-parallel executors: speedup across domains (Section 4)";
  let open Gp_datapar in
  (* a compute-bound workload (trial-division primality), so the chunked
     execution has real work to parallelise *)
  let n = 60_000 in
  let a = Array.init n (fun i -> 3 + (2 * ((i * 7919) mod 500_000))) in
  let is_prime k =
    if k < 2 then false
    else if k mod 2 = 0 then k = 2
    else begin
      let rec go d = d * d > k || (k mod d <> 0 && go (d + 2)) in
      go 3
    end
  in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "host parallelism: %d core(s) recommended by the runtime@." cores;
  if cores <= 1 then
    Fmt.pr
      "NOTE: this machine exposes a single core; the expected speedup of \
       chunked execution is min(domains, cores) = 1, so the rows below \
       measure pure domain overhead. On a multicore host the same harness \
       shows near-linear scaling for this compute-bound kernel.@.";
  let t_seq =
    time_ns "seq count primes" (fun () ->
        Sys.opaque_identity (Datapar.Seq_exec.count is_prime a))
  in
  Fmt.pr "@.count primes by trial division over %d candidates \
          (compute-bound):@."
    n;
  Fmt.pr "%12s %14s %9s@." "executor" "time" "speedup";
  Fmt.pr "%12s %14s %9s@." "sequential" (ns_str t_seq) "1.00x";
  List.iter
    (fun d ->
      let module P = Datapar.Par_exec (struct
        let domains = d
      end) in
      let t =
        time_ns
          (Printf.sprintf "par%d count primes" d)
          (fun () -> Sys.opaque_identity (P.count is_prime a))
      in
      Fmt.pr "%12s %14s %8.2fx@."
        (Printf.sprintf "%d domains" d)
        (ns_str t) (t_seq /. t))
    [ 2; 4 ];
  (* memory-bound contrast: plain sum and scan barely gain — an honest
     limit of chunked parallelism on bandwidth-bound kernels *)
  let m = 2_000_000 in
  let b = Array.init m (fun i -> (i * 131) mod 1000) in
  let t_sum_seq =
    time_ns "seq reduce" (fun () ->
        Sys.opaque_identity (Datapar.Seq_exec.reduce Datapar.int_sum b))
  in
  let module P4 = Datapar.Par_exec (struct
    let domains = 4
  end) in
  let t_sum_par =
    time_ns "par reduce" (fun () ->
        Sys.opaque_identity (P4.reduce Datapar.int_sum b))
  in
  let t_scan_seq =
    time_ns "seq scan" (fun () ->
        Sys.opaque_identity (Datapar.Seq_exec.scan Datapar.int_sum b))
  in
  let t_scan_par =
    time_ns "par scan" (fun () ->
        Sys.opaque_identity (P4.scan Datapar.int_sum b))
  in
  Fmt.pr
    "@.memory-bound contrast over %d ints (4 domains): reduce %s -> %s \
     (%.2fx), scan %s -> %s (%.2fx)@."
    m (ns_str t_sum_seq) (ns_str t_sum_par)
    (t_sum_seq /. t_sum_par)
    (ns_str t_scan_seq) (ns_str t_scan_par)
    (t_scan_seq /. t_scan_par)

(* ------------------------------------------------------------------ *)
(* C4/C8: archetypes and diagnostics quality                           *)
(* ------------------------------------------------------------------ *)

let c8 () =
  section "C4/C8" "archetypes and call-site diagnostics (Sections 2.1, 3.1)";
  let open Gp_concepts in
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  (* archetype implication matrix for the iterator lattice *)
  let cats =
    [ "InputIterator"; "ForwardIterator"; "BidirectionalIterator";
      "RandomAccessIterator" ]
  in
  Fmt.pr "archetype implication (row archetype |= column concept):@.";
  Fmt.pr "%-24s%s@." ""
    (String.concat "" (List.map (fun c -> Printf.sprintf "%-9s" (String.sub c 0 5)) cats));
  List.iter
    (fun declared ->
      Fmt.pr "%-24s" declared;
      List.iter
        (fun used ->
          Fmt.pr "%-9s"
            (if Archetype.implies reg ~declared ~used then "yes" else "-"))
        cats;
      Fmt.pr "@.")
    cats;
  (* diagnostics: the error a user sees when a type fails a concept *)
  Fmt.pr "@.call-site diagnostic for a broken container type:@.";
  let n x = Ctype.Named x in
  Registry.declare_type reg "intset" ~assoc:[ ("value_type", n "int") ];
  Registry.declare_op reg "begin" [ n "intset" ] (n "vector<int>::iterator");
  (* no end(), no size(), iterator assoc missing *)
  let report = Check.check reg "Container" [ n "intset" ] in
  Fmt.pr "%a@." Check.pp_report report;
  Fmt.pr "@.(compare: a C++98 template error for the same defect dumps the \
          instantiation stack of the algorithm body)@."

(* ------------------------------------------------------------------ *)
(* A1: ablations — what breaks when a design choice is removed         *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1" "ablations: refinement ranking, concept guards, checked \
                iterators";
  let open Gp_concepts in
  (* 1. dispatch without most-refined-wins: first-match picks the general
     candidate for a vector *)
  let reg = Registry.create () in
  Gp_sequence.Decls.declare reg;
  let g = Gp_sequence.Decls.sort_generic () in
  let n x = Ctype.Named x in
  let describe = function
    | Overload.Selected (c, _) -> c.Overload.cand_name
    | Overload.Ambiguous _ -> "(ambiguous)"
    | Overload.No_match _ -> "(no match)"
  in
  Fmt.pr "dispatch for vector<int>::iterator:@.";
  Fmt.pr "  most-refined-wins : %s@."
    (describe (Overload.resolve reg g [ n "vector<int>::iterator" ]));
  Fmt.pr "  first-match       : %s   <- loses the O(1)-indexed algorithm@."
    (describe (Overload.resolve_first_match reg g [ n "vector<int>::iterator" ]));
  (* 2. rewriting with a FALSE model declaration: (int, -) asserted a
     Monoid fires the left-identity rule 0 - x -> x, which is wrong *)
  let open Gp_simplicissimus in
  Fmt.pr "@.concept guards are load-bearing: assert a false model and \
          rewriting breaks semantics@.";
  let honest = Instances.standard () in
  let bogus = Instances.standard () in
  Instances.add bogus ~ty:"int" ~op:"-" Instances.Monoid
    ~identity:(Expr.VInt 0);
  let e = Expr.binop "-" (Expr.int 0) (Expr.ivar "x") in
  let env = [ ("x", Expr.VInt 5) ] in
  let show label insts =
    let r = Engine.rewrite ~rules:Rules.builtin ~insts e in
    Fmt.pr "  %-22s %-14s evaluates to %a@." label
      (Expr.to_string r.Engine.output)
      Expr.pp_value
      (Eval.eval ~env r.Engine.output)
  in
  Fmt.pr "  input: %s with x = 5 (true value -5)@." (Expr.to_string e);
  show "honest instance table:" honest;
  show "bogus (int,-) Monoid:" bogus;
  Fmt.pr "  (subtraction has a right identity but no left identity; the \
          checker's axiom@.   warnings and the qcheck law tests are what \
          catch such a false declaration)@.";
  (* 3. the cost of checked iterators vs raw array access *)
  let open Gp_sequence in
  let nitems = 200_000 in
  let arr = Array.init nitems (fun i -> i land 1023) in
  let va = Varray.of_list ~dummy:0 (Array.to_list arr) in
  let t_raw =
    time_ns "raw array fold" (fun () ->
        Sys.opaque_identity (Array.fold_left ( + ) 0 arr))
  in
  let t_iter =
    time_ns "checked iterator fold" (fun () ->
        Sys.opaque_identity
          (Algorithms.fold ( + ) 0 (Varray.begin_ va, Varray.end_ va)))
  in
  Fmt.pr "@.abstraction cost: summing %d ints@." nitems;
  Fmt.pr "  raw array          %s@." (ns_str t_raw);
  Fmt.pr "  checked iterators  %s  (%.1fx: the price of versioned, \
          category-checked positions)@."
    (ns_str t_iter) (t_iter /. t_raw)

(* ------------------------------------------------------------------ *)
(* S1: service throughput — cold vs warm caches                        *)
(* ------------------------------------------------------------------ *)

let s1 () =
  section "S1" "gp_service throughput: cold vs warm caches under a Zipf \
                workload";
  let open Gp_service in
  let declare_standard reg =
    Gp_concepts.(ignore (reg : Registry.t));
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let n = if !quota < 0.5 then 150 else 600 in
  let seed = 42 in
  let reqs = Workload.generate ~seed ~n () in
  let replay = Workload.generate ~seed ~n () in
  assert (Workload.fingerprint reqs = Workload.fingerprint replay);
  Fmt.pr "workload: n=%d seed=%d mix=[%a]@." n seed Workload.pp_mix
    Workload.default_mix;
  Fmt.pr "fingerprint: %s (replay deterministic: verified)@."
    (Workload.fingerprint reqs);
  let run server =
    let t0 = Unix.gettimeofday () in
    let rsps = Server.process server reqs in
    let dt = Unix.gettimeofday () -. t0 in
    let ok = List.length (List.filter Request.ok rsps) in
    (dt, float_of_int n /. dt, ok)
  in
  (* no-cache baseline: every request recomputed from scratch *)
  let nocache =
    Server.create
      ~config:{ Server.default_config with caching = false }
      ~declare_standard ()
  in
  let base_dt, base_rps, base_ok = run nocache in
  (* cold: fresh caches, first pass pays every miss; warm: the same
     server replays the identical stream against populated caches *)
  let server = Server.create ~declare_standard () in
  let cold_dt, cold_rps, cold_ok = run server in
  let warm_dt, warm_rps, warm_ok = run server in
  Fmt.pr "@.%-10s %10s %12s %6s@." "pass" "wall" "req/s" "ok";
  let row name dt rps ok =
    Fmt.pr "%-10s %9.1fms %12.0f %6d@." name (dt *. 1e3) rps ok
  in
  row "no-cache" base_dt base_rps base_ok;
  row "cold" cold_dt cold_rps cold_ok;
  row "warm" warm_dt warm_rps warm_ok;
  Fmt.pr "@.warm/cold speedup: %.2fx   warm/no-cache: %.2fx   %s@."
    (warm_rps /. cold_rps)
    (warm_rps /. base_rps)
    (if warm_rps > cold_rps then "(warm strictly faster: yes)"
     else "(WARM NOT FASTER — cache regression?)");
  let per_request dt = dt *. 1e9 /. float_of_int n in
  record ~experiment:"s1" "nocache_ns" (per_request base_dt);
  record ~experiment:"s1" "cold_ns" (per_request cold_dt);
  record ~experiment:"s1" "warm_ns" (per_request warm_dt);
  record ~experiment:"s1" "warm_cold_speedup" (warm_rps /. cold_rps);
  record ~experiment:"s1" "warm_nocache_speedup" (warm_rps /. base_rps);
  Fmt.pr "@.%s@." (Server.report server);
  Fmt.pr "(the report aggregates both passes; hit ratios mix the cold \
          misses with the warm hits)@."

(* ------------------------------------------------------------------ *)
(* S2: indexed dispatch vs the seed linear scans                       *)
(* ------------------------------------------------------------------ *)

(* Three hot paths gained generation-keyed indexes: registry lookups
   (hashed concept/type/op/model tables + a precomputed refinement
   closure), the rewrite engine (head-symbol rule index, O(1) carrier
   lookups, guard memo), and propagation closure (hashed worklist). The
   seed implementations survive as reference oracles; this section
   times both sides on a large synthetic world. *)

(* The cold-rewrite world shared by s2 and s3: [nentries] abelian-group
   instance entries, [nrules] user rules on top of the builtins, and a
   deep expression carrying a redex at every level. Returns
   (insts, rules, expr, nentries). *)
let rewrite_world ~quick =
  let open Gp_simplicissimus in
  let nentries = if quick then 60 else 250 in
  let nrules = if quick then 50 else 200 in
  let insts = Instances.create () in
  for i = 0 to nentries - 1 do
    Instances.add insts
      ~ty:(Printf.sprintf "u%d" i)
      ~op:"+" ~identity:(Expr.VInt 0) ~inverse:"neg" Instances.Abelian_group
  done;
  let user_rules =
    List.init nrules (fun i ->
        Rules.make ~user_type:"u0"
          ~user_op:(Printf.sprintf "g%d" i)
          ~name:(Printf.sprintf "user-g%d" i)
          ~guard:Instances.Semigroup
          ~lhs:(Rules.P_exact (Printf.sprintf "g%d" i, [ Rules.P_any "x" ]))
          ~rhs:(Rules.T_var "x") ())
  in
  let rules = Rules.builtin @ user_rules in
  let rec build k =
    if k = 0 then Expr.Var ("x", "u0")
    else
      Expr.Op
        ( "g" ^ string_of_int (k mod nrules),
          "u0",
          [ Expr.Op
              ( "+",
                "u0",
                [ Expr.Op ("+", "u0", [ build (k - 1); Expr.Ident ("u0", "+") ]);
                  Expr.Op
                    ( "+",
                      "u0",
                      [ Expr.Var ("y", "u0");
                        Expr.Op ("neg", "u0", [ Expr.Var ("y", "u0") ]) ] )
                ] ) ] )
  in
  let e = build (if quick then 12 else 40) in
  (insts, rules, e, nentries)

let s2 () =
  section "S2"
    "indexed dispatch: registry lookups, rule indexing, worklist closure \
     vs the seed linear scans";
  let open Gp_concepts in
  let quick = !quota < 0.5 in
  let n x = Ctype.Named x in
  (* -------- registry: hundreds of types/concepts/ops/models -------- *)
  let ntypes = if quick then 60 else 300 in
  let nconcepts = if quick then 40 else 120 in
  let reg = Registry.create () in
  for i = 0 to ntypes - 1 do
    Registry.declare_type reg (Printf.sprintf "T%d" i)
  done;
  (* one long refinement chain K0 <- K1 <- ... so transitive refines
     queries have real depth *)
  for i = 0 to nconcepts - 1 do
    let refines =
      if i = 0 then []
      else [ (Printf.sprintf "K%d" (i - 1), [ Ctype.Var "X" ]) ]
    in
    Registry.declare_concept reg
      (Concept.make ~params:[ "X" ] ~refines
         (Printf.sprintf "K%d" i)
         [ Concept.axiom "t" "true" ])
  done;
  for i = 0 to (2 * ntypes) - 1 do
    Registry.declare_op reg
      (Printf.sprintf "op%d" (i mod 7))
      [ n (Printf.sprintf "T%d" (i mod ntypes)) ]
      (n "T0")
  done;
  for i = 0 to ntypes - 1 do
    Registry.declare_model reg
      (Printf.sprintf "K%d" (i mod nconcepts))
      [ n (Printf.sprintf "T%d" i) ]
  done;
  Fmt.pr "world: %d types, %d chained concepts, %d ops, %d models@." ntypes
    nconcepts (2 * ntypes) ntypes;
  (* the seed lookups: scans over the registry's exposed lists *)
  let args_equal a1 a2 =
    List.length a1 = List.length a2 && List.for_all2 Ctype.equal a1 a2
  in
  let find_model_ref concept args =
    List.find_opt
      (fun m ->
        String.equal m.Registry.mo_concept concept
        && args_equal m.Registry.mo_args args)
      reg.Registry.models
  in
  let refines_ref a b =
    let rec go visited c =
      if String.equal c b then true
      else if List.mem c visited then false
      else
        List.exists
          (fun (x, y) -> String.equal x c && go (c :: visited) y)
          reg.Registry.refinement_edges
    in
    go [] a
  in
  let probe_tys =
    List.init 32 (fun i -> Printf.sprintf "T%d" (i * 9 mod ntypes))
  in
  let top = Printf.sprintf "K%d" (nconcepts - 1) in
  let probe ~find_model ~refines () =
    List.fold_left
      (fun acc ty ->
        acc
        + (match find_model "K3" [ n ty ] with Some _ -> 1 | None -> 0)
        + (if refines top "K0" then 1 else 0))
      0 probe_tys
  in
  (* both sides must agree before we time anything *)
  assert (
    probe ~find_model:(Registry.find_model reg)
      ~refines:(Registry.refines reg) ()
    = probe ~find_model:find_model_ref ~refines:refines_ref ());
  let t_reg_ix =
    time_ns "registry lookups (indexed)" (fun () ->
        Sys.opaque_identity
          (probe ~find_model:(Registry.find_model reg)
             ~refines:(Registry.refines reg) ()))
  in
  let t_reg_ref =
    time_ns "registry lookups (linear)" (fun () ->
        Sys.opaque_identity
          (probe ~find_model:find_model_ref ~refines:refines_ref ()))
  in
  (* -------- propagation: a wide refinement fan-out ----------------- *)
  let mids = if quick then 10 else 50 in
  let leaves = if quick then 10 else 50 in
  let preg = Registry.create () in
  Registry.declare_type preg "P";
  for m = 0 to mids - 1 do
    for l = 0 to leaves - 1 do
      Registry.declare_concept preg
        (Concept.make ~params:[ "X" ]
           (Printf.sprintf "Leaf_%d_%d" m l)
           [ Concept.axiom "t" "true" ])
    done
  done;
  for m = 0 to mids - 1 do
    Registry.declare_concept preg
      (Concept.make ~params:[ "X" ]
         ~refines:
           (List.init leaves (fun l ->
                (Printf.sprintf "Leaf_%d_%d" m l, [ Ctype.Var "X" ])))
         (Printf.sprintf "Mid_%d" m)
         [ Concept.axiom "t" "true" ])
  done;
  Registry.declare_concept preg
    (Concept.make ~params:[ "X" ]
       ~refines:
         (List.init mids (fun m -> (Printf.sprintf "Mid_%d" m, [ Ctype.Var "X" ])))
       "Root"
       [ Concept.axiom "t" "true" ]);
  let obs = Propagate.closure preg "Root" [ n "P" ] in
  let obs_ref = Propagate.closure_reference preg "Root" [ n "P" ] in
  assert (
    List.length obs = List.length obs_ref
    && List.for_all2 Propagate.obligation_equal obs obs_ref);
  Fmt.pr "propagation fan-out: %d obligations in the closure@."
    (List.length obs);
  let t_prop =
    time_ns "closure (worklist)" (fun () ->
        Sys.opaque_identity (Propagate.closure preg "Root" [ n "P" ]))
  in
  let t_prop_ref =
    time_ns "closure (quadratic reference)" (fun () ->
        Sys.opaque_identity (Propagate.closure_reference preg "Root" [ n "P" ]))
  in
  (* -------- cold rewrite throughput -------------------------------- *)
  let open Gp_simplicissimus in
  let insts2, rules2, e, nentries = rewrite_world ~quick in
  let r_ix = Engine.rewrite ~rules:rules2 ~insts:insts2 e in
  let r_ref = Engine.rewrite_reference ~rules:rules2 ~insts:insts2 e in
  assert (Expr.equal r_ix.Engine.output r_ref.Engine.output);
  assert (List.length r_ix.Engine.steps = List.length r_ref.Engine.steps);
  Fmt.pr
    "cold rewrite: %d rules over %d instance entries, %d-op expression, %d \
     steps fired@."
    (List.length rules2) nentries (Expr.op_count e)
    (List.length r_ix.Engine.steps);
  let t_rw =
    time_ns "cold rewrite (indexed)" (fun () ->
        Sys.opaque_identity (Engine.rewrite ~rules:rules2 ~insts:insts2 e))
  in
  let t_rw_ref =
    time_ns "cold rewrite (linear reference)" (fun () ->
        Sys.opaque_identity
          (Engine.rewrite_reference ~rules:rules2 ~insts:insts2 e))
  in
  (* -------- table + machine-readable record ------------------------ *)
  Fmt.pr "@.%-36s %13s %13s %9s@." "hot path" "linear scan" "indexed"
    "speedup";
  let row label t_ref t_ix names =
    Fmt.pr "%-36s %13s %13s %8.1fx@." label (ns_str t_ref) (ns_str t_ix)
      (t_ref /. t_ix);
    let ref_name, ix_name, sp_name = names in
    record ~experiment:"s2" ref_name t_ref;
    record ~experiment:"s2" ix_name t_ix;
    record ~experiment:"s2" sp_name (t_ref /. t_ix)
  in
  row "registry find_model + refines" t_reg_ref t_reg_ix
    ("registry_linear_ns", "registry_indexed_ns", "registry_speedup");
  row
    (Printf.sprintf "propagation closure (%d obs)" (List.length obs))
    t_prop_ref t_prop
    ("closure_reference_ns", "closure_worklist_ns", "closure_speedup");
  row
    (Printf.sprintf "cold rewrite (%d rules)" (List.length rules2))
    t_rw_ref t_rw
    ("rewrite_reference_ns", "rewrite_indexed_ns", "rewrite_speedup");
  Fmt.pr
    "@.(acceptance: cold rewrite >= 3x over the linear-scan reference; the \
     qcheck@. equivalence suite pins both engines to identical outputs and \
     step traces)@."

(* ------------------------------------------------------------------ *)
(* S3: telemetry overhead                                              *)
(* ------------------------------------------------------------------ *)

let s3 () =
  section "S3"
    "telemetry overhead on the s2 rewrite workload: bare core vs \
     instrumented with no sink (the shipped default) vs a full sink";
  let open Gp_simplicissimus in
  let module Tel = Gp_telemetry.Tel in
  let quick = !quota < 0.5 in
  let insts, rules, e, nentries = rewrite_world ~quick in
  assert (not (Tel.is_enabled ()));
  (* all three paths must produce the same result before we time them *)
  let r_core = Engine.rewrite_uninstrumented ~rules ~insts e in
  let r_off = Engine.rewrite ~rules ~insts e in
  let r_on, spans_per_call, counters =
    Tel.with_installed (fun sink ->
        let r = Engine.rewrite ~rules ~insts e in
        ( r,
          Gp_telemetry.Trace.recorded sink.Tel.trace,
          Gp_telemetry.Metrics.total sink.Tel.metrics
            "gp_engine_guard_probes_total" ))
  in
  assert (Expr.equal r_core.Engine.output r_off.Engine.output);
  assert (Expr.equal r_core.Engine.output r_on.Engine.output);
  assert (
    List.length r_core.Engine.steps = List.length r_on.Engine.steps);
  Fmt.pr
    "world: %d rules over %d instance entries, %d-op expression, %d steps; \
     enabled run records %d span(s), %.0f guard probes@."
    (List.length rules) nentries (Expr.op_count e)
    (List.length r_core.Engine.steps)
    spans_per_call counters;
  let t_core =
    time_ns "rewrite (uninstrumented core)" (fun () ->
        Sys.opaque_identity (Engine.rewrite_uninstrumented ~rules ~insts e))
  in
  let t_off =
    time_ns "rewrite (instrumented, no sink)" (fun () ->
        Sys.opaque_identity (Engine.rewrite ~rules ~insts e))
  in
  let t_on =
    Tel.with_installed (fun _sink ->
        time_ns "rewrite (instrumented, sink installed)" (fun () ->
            Sys.opaque_identity (Engine.rewrite ~rules ~insts e)))
  in
  let pct t = ((t /. t_core) -. 1.0) *. 100.0 in
  Fmt.pr "@.%-36s %13s %10s@." "variant" "per rewrite" "vs core";
  let row label t names =
    Fmt.pr "%-36s %13s %+9.2f%%@." label (ns_str t) (pct t);
    let t_name, pct_name = names in
    record ~experiment:"s3" t_name t;
    if pct_name <> "" then record ~experiment:"s3" pct_name (pct t)
  in
  row "uninstrumented core" t_core ("uninstrumented_ns", "");
  row "instrumented, telemetry off" t_off
    ("disabled_ns", "disabled_overhead_pct");
  row "instrumented, telemetry on" t_on
    ("enabled_ns", "enabled_overhead_pct");
  Fmt.pr
    "@.(acceptance: the disabled path — what every caller pays when nobody \
     installed a sink —@. stays within a few percent of the bare core; the \
     target in ISSUE/EXPERIMENTS is < 5%%)@."

(* ------------------------------------------------------------------ *)
(* S4: flight-recorder overhead and deterministic replay               *)
(* ------------------------------------------------------------------ *)

let s4 () =
  section "S4"
    "flight recorder: steady-state overhead over the enabled-telemetry \
     baseline, and deterministic replay of a seeded error workload";
  let open Gp_service in
  let module Tel = Gp_telemetry.Tel in
  let module Recorder = Gp_telemetry.Recorder in
  let declare_standard reg =
    Gp_concepts.(ignore (reg : Registry.t));
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let quick = !quota < 0.5 in
  let n = if quick then 60 else 200 in
  let seed = 11 in
  let errors = 0.2 in
  let reqs = Workload.generate ~seed ~errors ~n () in
  (* max_steps 2500 turns the injected identity-chain rewrite into a real
     Over_budget error — the flight-recorder regime *)
  let base_config =
    { Server.default_config with max_steps = 2500; flight_capacity = 0 }
  in
  let on_config = { base_config with flight_capacity = 2 * n } in
  Fmt.pr "workload: n=%d seed=%d errors=%.2f  max_steps=%d@." n seed errors
    base_config.Server.max_steps;
  (* Overhead: telemetry enabled on both sides (the s3 "enabled"
     regime), so the only delta is the recorder's per-request dossier
     work. Caches warmed by a throwaway pass on each server. *)
  let t_off, t_on =
    Tel.with_installed ~trace_capacity:65536 (fun _sink ->
        let off = Server.create ~config:base_config ~declare_standard () in
        ignore (Server.process off reqs);
        let t_off =
          time_ns "serve stream (recorder off)" (fun () ->
              Sys.opaque_identity (Server.process off reqs))
        in
        let on = Server.create ~config:on_config ~declare_standard () in
        ignore (Server.process on reqs);
        let t_on =
          time_ns "serve stream (recorder on)" (fun () ->
              Sys.opaque_identity (Server.process on reqs))
        in
        (t_off, t_on))
  in
  let overhead_pct = ((t_on /. t_off) -. 1.0) *. 100.0 in
  Fmt.pr "@.%-34s %13s %13s@." "variant" "per stream" "per request";
  Fmt.pr "%-34s %13s %13s@." "telemetry on, recorder off" (ns_str t_off)
    (ns_str (t_off /. float_of_int n));
  Fmt.pr "%-34s %13s %13s@." "telemetry on, recorder on" (ns_str t_on)
    (ns_str (t_on /. float_of_int n));
  Fmt.pr "recorder overhead: %+.2f%%  (acceptance target: < 5%%)@."
    overhead_pct;
  record ~experiment:"s4" "recorder_off_ns" t_off;
  record ~experiment:"s4" "recorder_on_ns" t_on;
  record ~experiment:"s4" "recorder_overhead_pct" overhead_pct;
  (* Deterministic replay: one fresh recorded pass, round-tripped
     through the JSONL dump format (exactly what gp replay reads), then
     re-executed from cold caches. Every fingerprint must match. *)
  let dossiers =
    Tel.with_installed ~trace_capacity:65536 (fun _sink ->
        let server = Server.create ~config:on_config ~declare_standard () in
        ignore (Server.process server reqs);
        match Server.flight server with
        | Some r -> Recorder.dossiers r
        | None -> assert false)
  in
  assert (List.length dossiers = n);
  let dump =
    String.concat ""
      (List.map (fun d -> Recorder.dossier_to_json d ^ "\n") dossiers)
  in
  let parsed =
    match Flight.of_jsonl dump with Ok ds -> ds | Error m -> failwith m
  in
  assert (List.length parsed = n);
  let outcome =
    match Flight.replay ~declare_standard parsed with
    | Ok o -> o
    | Error m -> failwith m
  in
  assert (outcome.Flight.rep_total = n);
  assert (Flight.all_matched outcome);
  let errs =
    List.length
      (List.filter (fun d -> d.Recorder.do_outcome <> "ok") parsed)
  in
  assert (errs > 0);
  Fmt.pr
    "@.replay: %d/%d fingerprints matched from a cold-cache re-execution \
     (%d error dossier(s) included) — deterministic@."
    outcome.Flight.rep_matched outcome.Flight.rep_total errs;
  record ~experiment:"s4" "replay_diverged_pct"
    (100.0
    *. float_of_int (List.length outcome.Flight.rep_diverged)
    /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* S5: the simulated serving cluster — sharding, failover, audit       *)
(* ------------------------------------------------------------------ *)

(* Everything in this section is simulated time inside gp_distsim, so
   the numbers are bit-identical across runs and machines: no quotas,
   no wall clock, and bench-diff can gate them exactly. Two series plus
   the consistency audit:
     - messages/request and cache miss ratio vs shard count, with
       key-affinity sharding against a round-robin contrast arm;
     - failover latency and completion under 20% message drops plus a
       leader crash, audited against a single-node replay. *)
let s5 () =
  section "S5" "gp_cluster: sharded/replicated serving under deterministic \
                failure injection";
  let open Gp_cluster in
  let declare_standard reg =
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let n = 240 in
  let seed = 11 in
  let reqs =
    Gp_service.Workload.generate ~seed ~n () |> Array.of_list
  in
  Fmt.pr "workload: n=%d seed=%d — all numbers simulated, quick = full@." n
    seed;
  let run ?(failures = []) ?(affinity = true) replicas =
    Cluster.run
      ~config:{ Cluster.default_config with replicas; affinity; failures }
      ~declare_standard reqs
  in
  (* shard-count sweep: key affinity concentrates each key's repeats on
     one replica's caches; round-robin scatters them, so its hit ratio
     decays with the replica count *)
  Fmt.pr "@.shard-count sweep (no failures):@.";
  Fmt.pr "%-10s %10s %12s %16s@." "replicas" "msgs/req" "miss% keyed"
    "miss% round-robin";
  List.iter
    (fun replicas ->
      let keyed = run replicas in
      let rr = run ~affinity:false replicas in
      assert (keyed.Cluster.r_completed = n && rr.Cluster.r_completed = n);
      let miss r = 100.0 *. (1.0 -. Cluster.hit_ratio r) in
      Fmt.pr "%-10d %10.2f %12.1f %16.1f@." replicas
        (Cluster.messages_per_request keyed)
        (miss keyed) (miss rr);
      let tag = Printf.sprintf "_r%d" replicas in
      record ~experiment:"s5" ("msgs_per_req" ^ tag)
        (Cluster.messages_per_request keyed);
      record ~experiment:"s5" ("miss_keyed" ^ tag ^ "_pct") (miss keyed);
      record ~experiment:"s5" ("miss_rr" ^ tag ^ "_pct") (miss rr))
    [ 1; 2; 4; 8 ];
  (* failover: 20% drops plus a crash of the elected leader, mid-run *)
  let failures = [ Cluster.Drop 0.2; Cluster.Crash_leader { at = 40.0 } ] in
  let r = run ~failures 3 in
  let r2 = run ~failures 3 in
  assert (String.equal (Cluster.dump r) (Cluster.dump r2));
  Fmt.pr "@.failover: 3 replicas, drop=0.2, leader crash @40 \
          (double-run dumps bit-identical: verified)@.";
  Fmt.pr "%a" Cluster.pp_summary r;
  let fo_lats = List.map (fun (t0, t1) -> t1 -. t0) r.Cluster.r_failovers in
  let fo_mean =
    match fo_lats with
    | [] -> 0.0
    | _ ->
      List.fold_left ( +. ) 0.0 fo_lats /. float_of_int (List.length fo_lats)
  in
  let a = Cluster.audit ~declare_standard r in
  Fmt.pr "%a" Cluster.pp_audit a;
  assert (Cluster.audit_ok a);
  assert (a.Cluster.au_compared = n);
  record ~experiment:"s5" "fault_msgs_per_req"
    (Cluster.messages_per_request r);
  record ~experiment:"s5" "failover_detect_to_coord_sim" fo_mean;
  record ~experiment:"s5" "mean_latency_sim" (Cluster.mean_latency r);
  record ~experiment:"s5" "retry_pct"
    (100.0 *. float_of_int (Cluster.retried r) /. float_of_int n);
  record ~experiment:"s5" "audit_missing_pct"
    (100.0 *. float_of_int a.Cluster.au_missing /. float_of_int n);
  record ~experiment:"s5" "audit_diverged_pct"
    (100.0
    *. float_of_int (List.length a.Cluster.au_divergences)
    /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* S6: structure-aware linear algebra — selection vs forced dense      *)
(* ------------------------------------------------------------------ *)

(* The paper's central bet, applied to linear algebra: a generic
   interface need not cost performance, because concept refinement lets
   the library select the algorithm the structure admits. Exact step
   counts (one per stored-element visit) are quota-independent and
   bit-identical across machines, so bench-diff hard-gates the
   *_step_speedup metrics even against a --quick regeneration; the
   wall-clock confirmations and the dispatch-overhead probe are only
   measured in full runs (recorded as null under --quick, which
   bench-diff skips). *)
let s6 () =
  section "S6" "gp_structla: concept-guided kernel selection vs forced dense";
  let open Gp_structla in
  let quick = !quota < 0.5 in
  let reg = Gp_concepts.Registry.create () in
  Decls.declare reg;
  let sel = Select.create () in
  let n = 256 in
  let seed = 5 in
  let reps =
    List.map
      (fun structure ->
        match Mat.generate_dense ~structure ~n ~seed with
        | Some d -> (structure, d, Detect.classify_quiet d)
        | None -> assert false)
      Mat.structure_names
  in
  List.iter
    (fun (structure, _, m) -> assert (Mat.structure_name m = structure))
    reps;
  let x = Mat.generate_vec ~n ~seed in
  Fmt.pr "n=%d seed=%d — steps count stored-element visits, exactly@." n seed;
  let speedup sel_steps dense_steps =
    float_of_int dense_steps /. float_of_int sel_steps
  in
  let kernel_of = function
    | Ok (kernel, r) -> (kernel, r)
    | Error m -> failwith m
  in
  let row ~op ~structure ~kernel ~steps ~dense_steps =
    Fmt.pr "%-8s %-10s %-18s %10d %10d %9.1fx@." op structure kernel steps
      dense_steps
      (speedup steps dense_steps);
    if structure <> "dense" then
      record ~experiment:"s6"
        (Printf.sprintf "%s_%s_step_speedup" structure op)
        (speedup steps dense_steps)
  in
  Fmt.pr "@.%-8s %-10s %-18s %10s %10s %10s@." "op" "structure" "selected"
    "steps" "dense" "speedup";
  List.iter
    (fun (structure, d, m) ->
      let kernel, y = kernel_of (Select.matvec reg sel m x) in
      assert (Mat.vec_close ~eps:1e-6 y (Kernels.matvec_reference d x));
      row ~op:"matvec" ~structure ~kernel ~steps:(Kernels.matvec_steps m)
        ~dense_steps:(Kernels.matvec_steps (Mat.Dense d)))
    reps;
  Fmt.pr "@.";
  List.iter
    (fun (structure, d, m) ->
      let kernel, p = kernel_of (Select.matmul reg sel m m) in
      assert
        (Mat.dense_close ~eps:1e-6 (Mat.to_dense p)
           (Kernels.matmul_reference d d));
      row ~op:"matmul" ~structure ~kernel ~steps:(Kernels.matmul_steps m)
        ~dense_steps:(Kernels.matmul_steps (Mat.Dense d)))
    reps;
  Fmt.pr "@.";
  List.iter
    (fun (structure, d, m) ->
      let kernel, y = kernel_of (Select.solve reg sel m x) in
      assert (Mat.vec_close ~eps:1e-5 y (Kernels.solve_reference d x));
      row ~op:"solve" ~structure ~kernel ~steps:(Kernels.solve_steps m)
        ~dense_steps:(Kernels.solve_steps (Mat.Dense d)))
    reps;
  (* the acceptance floor: refinement must buy at least an order of
     magnitude on diagonal and 5x on banded, in exact steps at n=256 *)
  let get structure m = (fun (_, d, r) -> m d r)
      (List.find (fun (s, _, _) -> s = structure) reps)
  in
  let step_ratio structure =
    get structure (fun d r ->
        speedup (Kernels.matvec_steps r) (Kernels.matvec_steps (Mat.Dense d)))
  in
  assert (step_ratio "diagonal" >= 10.0);
  assert (step_ratio "banded" >= 5.0);
  Fmt.pr "@.acceptance: diagonal %.0fx >= 10x, banded %.1fx >= 5x (exact \
          matvec steps) — ok@."
    (step_ratio "diagonal") (step_ratio "banded");
  (* wall-clock confirmation + dispatch overhead, full runs only *)
  let wall_metrics =
    [ "matvec_dense_ns"; "matvec_diagonal_ns"; "matvec_banded_ns";
      "matvec_csr_ns"; "solve_dense_ns"; "solve_diagonal_ns";
      "resolve_matvec_ns" ]
  in
  if quick then begin
    List.iter (fun k -> record ~experiment:"s6" k nan) wall_metrics;
    Fmt.pr "@.(--quick: wall-clock and dispatch-overhead probes skipped — \
            the step metrics above are exact either way)@."
  end
  else begin
    let run_matvec structure =
      get structure (fun _ m ->
          time_ns
            (Printf.sprintf "matvec via dispatch (%s)" structure)
            (fun () -> Sys.opaque_identity (Select.matvec reg sel m x)))
    in
    let forced_dense =
      get "diagonal" (fun d _ ->
          time_ns "matvec via dispatch (diagonal forced dense)" (fun () ->
              Sys.opaque_identity (Select.matvec reg sel (Mat.Dense d) x)))
    in
    let t_diag = run_matvec "diagonal" in
    let t_band = run_matvec "banded" in
    let t_csr = run_matvec "csr" in
    let t_solve_dense =
      get "dense" (fun _ m ->
          time_ns "solve via dispatch (dense)" (fun () ->
              Sys.opaque_identity (Select.solve reg sel m x)))
    in
    let t_solve_diag =
      get "diagonal" (fun _ m ->
          time_ns "solve via dispatch (diagonal)" (fun () ->
              Sys.opaque_identity (Select.solve reg sel m x)))
    in
    let t_resolve =
      get "diagonal" (fun _ m ->
          time_ns "resolve only (diagonal matvec)" (fun () ->
              Sys.opaque_identity (Select.resolve reg sel Select.Matvec m)))
    in
    Fmt.pr "@.%-40s %12s@." "wall clock (dispatch included)" "ns/op";
    let prow name v = Fmt.pr "%-40s %12s@." name (ns_str v) in
    prow "matvec diagonal, forced dense" forced_dense;
    prow "matvec diagonal, selected" t_diag;
    prow "matvec banded, selected" t_band;
    prow "matvec csr, selected" t_csr;
    prow "solve dense" t_solve_dense;
    prow "solve diagonal, selected" t_solve_diag;
    prow "dispatch resolve alone" t_resolve;
    Fmt.pr "wall speedups: diagonal %.1fx, banded %.1fx, csr %.1fx; \
            dispatch is %.1f%% of the diagonal matvec@."
      (forced_dense /. t_diag) (forced_dense /. t_band)
      (forced_dense /. t_csr)
      (100.0 *. t_resolve /. t_diag);
    record ~experiment:"s6" "matvec_dense_ns" forced_dense;
    record ~experiment:"s6" "matvec_diagonal_ns" t_diag;
    record ~experiment:"s6" "matvec_banded_ns" t_band;
    record ~experiment:"s6" "matvec_csr_ns" t_csr;
    record ~experiment:"s6" "solve_dense_ns" t_solve_dense;
    record ~experiment:"s6" "solve_diagonal_ns" t_solve_diag;
    record ~experiment:"s6" "resolve_matvec_ns" t_resolve
  end

(* ------------------------------------------------------------------ *)
(* S7: zero-allocation wire path — bytes per request                   *)
(* ------------------------------------------------------------------ *)

(* Allocation counts (Gc.allocated_bytes / minor_words deltas) are
   deterministic for a fixed workload, unlike wall clock, so this
   section uses a fixed n regardless of --quick and bench-diff gates
   the committed numbers strictly. The tentpole ratio is measured on
   the isolated wire path — parse + render + digest over the real
   (line, response) pairs of one served workload — because the
   end-to-end serve shares its dispatch cost between both variants and
   would dilute the comparison. *)

let s7 () =
  section "S7"
    "zero-allocation wire path: bytes allocated per request, AST \
     baseline vs direct cursor parse + buffer render + streaming digest";
  let open Gp_service in
  let module Recorder = Gp_telemetry.Recorder in
  let declare_standard reg =
    Gp_concepts.(ignore (reg : Registry.t));
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let n = 300 in
  let seed = 42 in
  (* the s1 mixed workload plus the s6 numeric kinds, so the wire path
     sees every payload shape including kernel-selection responses *)
  let mix =
    Workload.default_mix
    @ Request.[ (Kmatvec, 8); (Kmatmul, 4); (Ksolve, 4) ]
  in
  let reqs = Workload.generate ~mix ~seed ~n () in
  Fmt.pr "workload: n=%d seed=%d (fixed regardless of quota) mix=[%a]@." n
    seed Workload.pp_mix mix;
  let config = { Server.default_config with flight_capacity = 2 * n } in
  let server = Server.create ~config ~declare_standard () in
  let lines = List.mapi (fun i r -> Wire.request_to_line ~id:i r) reqs in
  (* one served pass with the flight recorder on: yields the real
     (line, response) pairs for the wire phases, warms the caches for
     the steady-state serve probe, and leaves dossiers for the replay
     check *)
  let rsps = List.filter_map (Server.serve_line server) lines in
  assert (List.length rsps = n);
  let dossiers =
    match Server.flight server with
    | Some r -> Recorder.dossiers r
    | None -> assert false
  in
  assert (List.length dossiers = n);
  let pairs = Array.of_list (List.combine lines rsps) in
  let fn = float_of_int n in
  (* Warm-up settles shared-buffer growth; then allocation deltas over
     one full pass, divided per request. On this runtime (OCaml 5.1)
     [Gc.quick_stat]/[Gc.allocated_bytes] lag the current domain's
     minor counter, so the accurate [Gc.minor_words] primitive is the
     source of truth; every allocation on these paths is far below the
     direct-to-major-heap threshold, so minor words x word-size is the
     full allocation story. *)
  let word_bytes = float_of_int (Sys.word_size / 8) in
  let measure f =
    f ();
    Gc.full_major ();
    let m0 = Gc.minor_words () in
    f ();
    let m1 = Gc.minor_words () in
    let words = (m1 -. m0) /. fn in
    (words *. word_bytes, words)
  in
  (* legacy wire path: json AST parse, Obj-tree render, digest of the
     materialized canonical string *)
  let legacy () =
    Array.iter
      (fun (line, rsp) ->
        (match Wire.request_of_line_ast line with
        | Ok r -> ignore (Sys.opaque_identity r)
        | Error e -> failwith e);
        ignore (Sys.opaque_identity (Wire.response_to_line_ast rsp));
        ignore
          (Sys.opaque_identity
             (Digest.string (Request.response_canonical rsp))))
      pairs
  in
  (* direct wire path: cursor parse into the typed IR, render into one
     reused buffer, streaming fingerprint *)
  let out = Buffer.create 1024 in
  let direct () =
    Array.iter
      (fun (line, rsp) ->
        (match Wire.request_of_line line with
        | Ok r -> ignore (Sys.opaque_identity r)
        | Error e -> failwith e);
        Buffer.clear out;
        Wire.response_into out rsp;
        ignore (Sys.opaque_identity (Buffer.length out));
        ignore (Sys.opaque_identity (Request.response_fingerprint rsp)))
      pairs
  in
  let legacy_bytes, legacy_minor = measure legacy in
  let direct_bytes, direct_minor = measure direct in
  let reduction = legacy_bytes /. direct_bytes in
  (* end-to-end steady state: full serve_line loop (dispatch + caches +
     recorder included) against warm caches *)
  let serve () =
    List.iter
      (fun line -> ignore (Sys.opaque_identity (Server.serve_line server line)))
      lines
  in
  let serve_bytes, serve_minor = measure serve in
  Fmt.pr "@.%-44s %16s %14s@." "wire phase (parse + render + digest)"
    "bytes/request" "minor w/req";
  let row name b m = Fmt.pr "%-44s %16.1f %14.1f@." name b m in
  row "AST baseline" legacy_bytes legacy_minor;
  row "direct (reused buffers, streaming digest)" direct_bytes direct_minor;
  Fmt.pr "allocation reduction: %.1fx  (acceptance floor: >= 5x)@."
    reduction;
  assert (reduction >= 5.0);
  Fmt.pr "@.%-44s %16.1f %14.1f@."
    "end-to-end serve_line, warm caches" serve_bytes serve_minor;
  (* replay the recorded pass from cold caches: the streaming
     fingerprints must match the dossiers bit-for-bit *)
  let outcome =
    match Flight.replay ~declare_standard dossiers with
    | Ok o -> o
    | Error m -> failwith m
  in
  assert (outcome.Flight.rep_total = n);
  assert (Flight.all_matched outcome);
  Fmt.pr "@.replay: %d/%d fingerprints matched (%d divergent) — the \
          streaming digest is bit-identical to the dossiers@."
    outcome.Flight.rep_matched outcome.Flight.rep_total
    (List.length outcome.Flight.rep_diverged);
  record ~experiment:"s7" "wire_legacy_bytes_per_request" legacy_bytes;
  record ~experiment:"s7" "wire_direct_bytes_per_request" direct_bytes;
  record ~experiment:"s7" "wire_alloc_reduction_speedup" reduction;
  record ~experiment:"s7" "wire_legacy_minor_words" legacy_minor;
  record ~experiment:"s7" "wire_direct_minor_words" direct_minor;
  record ~experiment:"s7" "serve_bytes_per_request" serve_bytes;
  record ~experiment:"s7" "serve_minor_words" serve_minor;
  record ~experiment:"s7" "replay_diverged_pct"
    (100.0
    *. float_of_int (List.length outcome.Flight.rep_diverged)
    /. fn)

(* ------------------------------------------------------------------ *)
(* S8: empirical complexity verification (ISSUE 8 / ROADMAP item 1)    *)
(* ------------------------------------------------------------------ *)

(* Sweep the gp_complexity_obs catalog, fit growth models to the exact
   step/message counts, and record the fitted degree and residual per
   operation. Every gated number is an exact count over a fixed ladder
   — quota-independent and identical under --quick — so BENCH_s8.json
   is hard-gated by bench-diff like s5/s6/s7 (_fitted_degree keys must
   match exactly; _residual keys may only shrink). The per-catalog wall
   probe is the one non-deterministic extra: null under --quick,
   advisory otherwise. *)
let s8 () =
  section "S8"
    "empirical asymptotics: fitted growth vs declared Complexity bounds";
  let open Gp_complexity_obs in
  let quick = !quota < 0.5 in
  let entries =
    List.map
      (fun op -> Report.analyze (Sweep.run ~wall:(not quick) op))
      (Catalog.ops ())
  in
  Report.table Fmt.stdout entries;
  (* the harness must agree with itself: genuine operations pass, the
     planted mis-declared oracle is flagged *)
  assert (Report.ok entries);
  assert (
    List.exists
      (fun e ->
        String.equal e.Report.e_series.Sweep.sr_op.Sweep.op_name
          Catalog.oracle_name
        && e.Report.e_verdict = Report.Violation)
      entries);
  let unexpected =
    List.length (List.filter (fun e -> not e.Report.e_ok) entries)
  in
  List.iter
    (fun e ->
      let name = e.Report.e_series.Sweep.sr_op.Sweep.op_name in
      record ~experiment:"s8"
        (name ^ "_fitted_degree")
        (Report.fitted_degree e.Report.e_best);
      record ~experiment:"s8" (name ^ "_residual")
        e.Report.e_best.Fit.f_residual;
      record ~experiment:"s8"
        (name ^ "_wall_ns")
        e.Report.e_series.Sweep.sr_wall_ns)
    entries;
  record ~experiment:"s8" "unexpected_verdicts_pct"
    (100.0 *. float_of_int unexpected /. float_of_int (List.length entries))

(* ------------------------------------------------------------------ *)
(* S9: distributed tracing — journeys, fleet metrics, attribution      *)
(* ------------------------------------------------------------------ *)

(* The s5 failover scenario (240 requests, 20% drops, leader crash
   @40), run with tracing on. The simulated side is bit-identical
   across runs, so everything except the wall-clock overhead probes can
   be gated exactly:
     - tracing changes nothing simulated: the traced run's record dump
       equals the untraced run's, byte for byte;
     - every completed request assembles into a well-formed cross-node
       tree (single cluster.request root, parents resolve, causal
       nesting) even under drops + failover;
     - the trace dump itself is deterministic (double-run bit-identical)
       and round-trips through load;
     - fleet percentiles come off the geometry-checked histogram merge,
       and the attribution decomposes tail latency into
       queueing/retry/election-stall/service.
   Wall-clock probes (trace-off vs trace-on run time) are recorded only
   in full runs; --quick writes null so bench-diff skips them. *)
let s9 () =
  section "S9" "gp_tracing: cluster-wide distributed tracing and \
                tail-latency attribution";
  let open Gp_cluster in
  let open Gp_tracing in
  let declare_standard reg =
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let n = 240 in
  let seed = 11 in
  let reqs = Gp_service.Workload.generate ~seed ~n () |> Array.of_list in
  let failures = [ Cluster.Drop 0.2; Cluster.Crash_leader { at = 40.0 } ] in
  let run ~trace () =
    Cluster.run
      ~config:{ Cluster.default_config with replicas = 3; failures; trace }
      ~declare_standard reqs
  in
  Fmt.pr "workload: n=%d seed=%d, 3 replicas, drop=0.2, leader crash @@40 \
          — the s5 failover scenario, traced@." n seed;
  let r_off = run ~trace:false () in
  let r = run ~trace:true () in
  assert (String.equal (Cluster.dump r_off) (Cluster.dump r));
  Fmt.pr "tracing is simulation-invariant: traced and untraced record \
          dumps bit-identical (verified)@.";
  let ts = Trace_set.of_result r in
  let doc = Trace_set.dump ts in
  let r2 = run ~trace:true () in
  assert (String.equal doc Trace_set.(dump (of_result r2)));
  (match Trace_set.load doc with
  | Error e -> failwith ("s9: trace dump failed to load: " ^ e)
  | Ok ts' -> assert (String.equal doc (Trace_set.dump ts')));
  Fmt.pr "trace dump: double-run bit-identical and load round-trips \
          (verified)@.";
  let v = Trace_set.validate ts in
  Fmt.pr "@.%a" Trace_set.pp_validation v;
  assert (r.Cluster.r_completed = n);
  assert (v.Trace_set.v_requests = n);
  assert (Trace_set.validation_ok v);
  let spans_total =
    List.fold_left (fun a (_, sps) -> a + List.length sps) 0
      ts.Trace_set.ts_lanes
  in
  record ~experiment:"s9" "spans_total" (float_of_int spans_total);
  record ~experiment:"s9" "spans_per_request"
    (float_of_int spans_total /. float_of_int n);
  record ~experiment:"s9" "malformed_pct"
    (100.0
    *. float_of_int (List.length v.Trace_set.v_malformed)
    /. float_of_int n);
  record ~experiment:"s9" "aux_traces" (float_of_int v.Trace_set.v_aux);
  Fmt.pr "@.fleet metrics (merged per-node registries):@.%a"
    Fleet.pp_report r;
  (match Fleet.merged r with
  | None -> assert false
  | Some m -> (
    match Fleet.request_percentiles m with
    | None -> assert false
    | Some pc ->
      assert (pc.Fleet.pc_count = n);
      record ~experiment:"s9" "latency_p50_sim" pc.Fleet.pc_p50;
      record ~experiment:"s9" "latency_p90_sim" pc.Fleet.pc_p90;
      record ~experiment:"s9" "latency_p99_sim" pc.Fleet.pc_p99));
  let sgs = Attribution.of_journeys (Trace_set.journeys ts) in
  assert (List.length sgs = n);
  let su = Attribution.summarize sgs in
  Fmt.pr "@.tail-latency attribution:@.%a" Attribution.pp_summary su;
  Fmt.pr "slowest requests:@.%a" Attribution.pp_table
    (Attribution.slowest ~k:5 sgs);
  record ~experiment:"s9" "attr_mean_total_sim" su.Attribution.su_mean_total;
  record ~experiment:"s9" "attr_mean_queue_sim" su.Attribution.su_mean_queue;
  record ~experiment:"s9" "attr_mean_retry_sim" su.Attribution.su_mean_retry;
  record ~experiment:"s9" "attr_mean_stall_sim" su.Attribution.su_mean_stall;
  record ~experiment:"s9" "attr_mean_service_sim"
    su.Attribution.su_mean_service;
  List.iter
    (fun (c, k) ->
      record ~experiment:"s9"
        ("dominant_" ^ Attribution.cause_name c ^ "_pct")
        (100.0 *. float_of_int k /. float_of_int n))
    su.Attribution.su_by_cause;
  (* wall-clock overhead probes: meaningless under --quick quotas, so
     null there (bench-diff skips null) *)
  if !quota < 0.45 then begin
    Fmt.pr "@.overhead probe skipped under --quick (recorded as null)@.";
    record ~experiment:"s9" "run_untraced_ns" nan;
    record ~experiment:"s9" "run_traced_ns" nan;
    record ~experiment:"s9" "trace_overhead_ratio" nan
  end
  else begin
    let t_off =
      time_ns "cluster run, tracing off" (fun () ->
          Sys.opaque_identity (run ~trace:false ()))
    in
    let t_on =
      time_ns "cluster run, tracing on" (fun () ->
          Sys.opaque_identity (run ~trace:true ()))
    in
    Fmt.pr "@.wall clock: untraced %s, traced %s per run (%.2fx)@."
      (ns_str t_off) (ns_str t_on) (t_on /. t_off);
    record ~experiment:"s9" "run_untraced_ns" t_off;
    record ~experiment:"s9" "run_traced_ns" t_on;
    record ~experiment:"s9" "trace_overhead_ratio" (t_on /. t_off)
  end

let s10 () =
  section "S10" "gp_scenario: elastic cluster scenarios — open-loop \
                 arrivals, hot-key mitigation, load shedding, and a \
                 million simulated users";
  let open Gp_cluster in
  let open Gp_scenario in
  let declare_standard reg =
    Gp_algebra.Decls.declare reg;
    Gp_sequence.Decls.declare reg;
    Gp_graph.Decls.declare reg;
    Gp_linalg.Decls.declare reg;
    Gp_structla.Decls.declare reg
  in
  let seed = 1 in
  let scenario name =
    match Scenario.find name with
    | Some t -> t
    | None -> failwith ("s10: no scenario named " ^ name)
  in
  (* Every scenario below runs at FULL scale regardless of --quick:
     all gated numbers are simulated time and exact counts, so the
     committed baseline must reproduce under quick quotas too. Only
     the wall probes at the end are quota-dependent (null under
     --quick; bench-diff skips null). *)

  (* -- hot-key flood: the mitigation's measured win ---------------- *)
  let n = Scenario.flood_n ~quick:false in
  let reqs = Scenario.flood_reqs ~seed n in
  let arm promote =
    Cluster.run
      ~config:(Scenario.flood_config ~quick:false ~seed ~promote n)
      ~declare_standard reqs
  in
  Fmt.pr "hot-key flood, n=%d seed=%d: zipf reads behind a small LRU, \
          promotion on vs off@." n seed;
  let r_on = arm true in
  let r_off = arm false in
  let p99_on = Cluster.latency_percentile r_on 0.99 in
  let p99_off = Cluster.latency_percentile r_off 0.99 in
  let miss_on = 1.0 -. Cluster.hit_ratio r_on in
  let miss_off = 1.0 -. Cluster.hit_ratio r_off in
  Fmt.pr "  promotion on:  p99 %.2f sim, miss %.2f%%, %d promotion(s) \
          (%s)@."
    p99_on (100.0 *. miss_on) r_on.Cluster.r_promotions
    (String.concat ", " r_on.Cluster.r_promoted_keys);
  Fmt.pr "  promotion off: p99 %.2f sim, miss %.2f%%@." p99_off
    (100.0 *. miss_off);
  Fmt.pr "  promotion wins: p99 %.2fx, miss ratio %.2fx@."
    (p99_off /. p99_on) (miss_off /. miss_on);
  assert (r_on.Cluster.r_promotions > 0);
  assert (r_off.Cluster.r_promotions = 0);
  assert (p99_on < p99_off);
  assert (miss_on < miss_off);
  record ~experiment:"s10" "flood_requests" (float_of_int n);
  record ~experiment:"s10" "flood_promotions"
    (float_of_int r_on.Cluster.r_promotions);
  record ~experiment:"s10" "flood_p99_on_sim" p99_on;
  record ~experiment:"s10" "flood_p99_off_sim" p99_off;
  record ~experiment:"s10" "flood_p99_speedup" (p99_off /. p99_on);
  record ~experiment:"s10" "flood_miss_on_pct" (100.0 *. miss_on);
  record ~experiment:"s10" "flood_miss_off_pct" (100.0 *. miss_off);
  record ~experiment:"s10" "flood_miss_speedup" (miss_off /. miss_on);

  (* -- elastic join/leave: minimal movement -------------------------- *)
  let eo =
    Scenario.run ~seed ~audit:true ~declare_standard (scenario "elastic")
  in
  Fmt.pr "@.%a" Scenario.pp_outcome eo;
  assert (Scenario.ok eo);
  assert (eo.Scenario.o_moved <= eo.Scenario.o_moved_bound);
  record ~experiment:"s10" "elastic_joined"
    (float_of_int eo.Scenario.o_joined);
  record ~experiment:"s10" "elastic_left" (float_of_int eo.Scenario.o_left);
  record ~experiment:"s10" "elastic_handoffs"
    (float_of_int eo.Scenario.o_handoffs);
  record ~experiment:"s10" "elastic_moved_keys"
    (float_of_int eo.Scenario.o_moved);
  record ~experiment:"s10" "elastic_movement_bound"
    (float_of_int eo.Scenario.o_moved_bound);

  (* -- multi-tenant overload: shed, never hang ----------------------- *)
  let t_o =
    Scenario.run ~seed ~audit:true ~declare_standard (scenario "tenants")
  in
  Fmt.pr "@.%a" Scenario.pp_outcome t_o;
  assert (Scenario.ok t_o);
  assert (t_o.Scenario.o_shed > 0);
  assert (t_o.Scenario.o_peak_queue <= 48);
  (match t_o.Scenario.o_audit with
  | None -> assert false
  | Some a ->
    (* shed verdicts are excluded from the fingerprint diff by
       construction, and the accounting identity still closes *)
    assert (a.Cluster.au_shed > 0);
    assert (
      a.Cluster.au_compared + a.Cluster.au_missing + a.Cluster.au_shed
      = a.Cluster.au_total);
    assert (a.Cluster.au_divergences = []));
  record ~experiment:"s10" "overload_shed" (float_of_int t_o.Scenario.o_shed);
  record ~experiment:"s10" "overload_shed_ratio" t_o.Scenario.o_shed_ratio;
  record ~experiment:"s10" "overload_peak_queue"
    (float_of_int t_o.Scenario.o_peak_queue);
  List.iter
    (fun t ->
      record ~experiment:"s10"
        ("tenant_" ^ t.Scenario.tn_name ^ "_served_pct")
        (100.0 *. t.Scenario.tn_ratio))
    t_o.Scenario.o_tenants;

  (* -- the headline: a million simulated users ----------------------- *)
  Fmt.pr "@.million: 1e6 open-loop requests across 32 replicas, every \
          answer audited against a single node...@.";
  let t0 = Unix.gettimeofday () in
  let mo =
    Scenario.run ~seed ~audit:true ~declare_standard (scenario "million")
  in
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a" Scenario.pp_outcome mo;
  assert (Scenario.ok mo);
  assert (mo.Scenario.o_requests >= 1_000_000);
  assert (mo.Scenario.o_replicas >= 32);
  assert (mo.Scenario.o_completed = mo.Scenario.o_requests);
  (match mo.Scenario.o_audit with
  | None -> assert false
  | Some a ->
    assert (a.Cluster.au_missing = 0);
    assert (a.Cluster.au_divergences = []);
    record ~experiment:"s10" "million_audit_compared"
      (float_of_int a.Cluster.au_compared);
    record ~experiment:"s10" "million_audit_divergent_pct"
      (100.0
      *. float_of_int (List.length a.Cluster.au_divergences)
      /. float_of_int a.Cluster.au_total));
  record ~experiment:"s10" "million_requests"
    (float_of_int mo.Scenario.o_requests);
  record ~experiment:"s10" "million_replicas"
    (float_of_int mo.Scenario.o_replicas);
  record ~experiment:"s10" "million_completed_pct"
    (100.0
    *. float_of_int mo.Scenario.o_completed
    /. float_of_int mo.Scenario.o_requests);
  record ~experiment:"s10" "million_shed" (float_of_int mo.Scenario.o_shed);
  record ~experiment:"s10" "million_p50_sim" mo.Scenario.o_p50;
  record ~experiment:"s10" "million_p99_sim" mo.Scenario.o_p99;
  record ~experiment:"s10" "million_hit_pct"
    (100.0 *. mo.Scenario.o_hit_ratio);
  record ~experiment:"s10" "million_peak_queue"
    (float_of_int mo.Scenario.o_peak_queue);
  (* wall-clock probes: meaningless under --quick quotas, null there
     (bench-diff skips null) *)
  if !quota < 0.45 then begin
    Fmt.pr "@.wall probe skipped under --quick (recorded as null)@.";
    record ~experiment:"s10" "million_wall_ns" nan;
    record ~experiment:"s10" "million_req_per_wall_sec" nan
  end
  else begin
    Fmt.pr "@.wall clock: %.1f s for the audited million (%.0f req/s \
            including the single-node replay)@."
      wall
      (float_of_int mo.Scenario.o_requests /. wall);
    record ~experiment:"s10" "million_wall_ns" (wall *. 1e9);
    record ~experiment:"s10" "million_req_per_wall_sec"
      (float_of_int mo.Scenario.o_requests /. wall)
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("f1", f1_f2); ("f3", f3); ("f4", f4); ("f5", f5); ("f6", f6);
    ("c1", c1); ("c2", c2); ("c3", c3); ("c5", c5); ("c6", c6); ("c8", c8);
    ("a1", a1); ("s1", s1); ("s2", s2); ("s3", s3); ("s4", s4);
    ("s5", s5); ("s6", s6); ("s7", s7); ("s8", s8); ("s9", s9);
    ("s10", s10) ]

let () =
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
      quota := 0.1;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | a :: rest when String.length a > 0 && a.[0] = '-' -> parse rest
    | a :: rest -> a :: parse rest
  in
  let requested = parse (List.tl (Array.to_list Sys.argv)) in
  let todo =
    if requested = [] then experiments
    else
      List.filter (fun (id, _) -> List.mem id requested) experiments
  in
  Fmt.pr "Generic Programming and High-Performance Libraries — benchmark \
          harness@.";
  Fmt.pr "experiments: %a@."
    Fmt.(list ~sep:sp string)
    (List.map fst todo);
  List.iter (fun (_, f) -> f ()) todo;
  Fmt.pr "@.%s@.all experiments complete.@." line;
  match !json_path with
  | Some path ->
    write_json path;
    Fmt.pr "results written to %s@." path
  | None -> ()
