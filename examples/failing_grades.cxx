// The Fig. 4 program in the STLlint surface syntax.
// Check with:  dune exec bin/gp.exe -- lint --file examples/failing_grades.cxx
vector<student> students;
vector<student> fail;
iter it = students.begin();
iter last = students.end();
while (it != last) {
  if (fgrade(*it)) {
    fail.push_back(*it);
    students.erase(it);     // BUG: result discarded; 'it' is now singular
  } else {
    ++it;
  }
}
