test/test_datapar.ml: Alcotest Array Datapar Gen Gp_algebra Gp_datapar QCheck QCheck_alcotest
