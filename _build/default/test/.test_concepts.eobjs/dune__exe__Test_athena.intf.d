test/test_athena.mli:
