test/test_sequence.ml: Alcotest Algorithms Array Deque Dlist Fun Gp_concepts Gp_sequence Int Iter List QCheck QCheck_alcotest Stdlib Taxonomy_stl Varray
