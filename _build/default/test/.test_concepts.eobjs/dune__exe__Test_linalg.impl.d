test/test_linalg.ml: Alcotest Array Check Complexf Ctype Decls Dense Float Gp_algebra Gp_concepts Gp_linalg QCheck QCheck_alcotest Random Registry Vec
