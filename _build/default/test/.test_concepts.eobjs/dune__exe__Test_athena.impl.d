test/test_athena.ml: Ab Alcotest Deduction Gp_athena List Logic Theorems Theory
