test/test_stllint.mli:
