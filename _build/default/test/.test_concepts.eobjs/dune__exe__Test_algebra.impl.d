test/test_algebra.ml: Alcotest Gp_algebra Instances Laws QCheck QCheck_alcotest Random Rational Sigs
