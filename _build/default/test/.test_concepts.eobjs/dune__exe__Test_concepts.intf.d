test/test_concepts.mli:
