test/test_simplicissimus.ml: Alcotest Certify Engine Eval Expr Gp_algebra Gp_athena Gp_simplicissimus Instances List QCheck QCheck_alcotest Rules Sparser String
