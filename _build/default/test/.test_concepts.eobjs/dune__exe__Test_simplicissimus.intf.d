test/test_simplicissimus.mli:
