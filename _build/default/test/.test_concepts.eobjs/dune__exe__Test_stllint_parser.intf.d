test/test_stllint_parser.mli:
