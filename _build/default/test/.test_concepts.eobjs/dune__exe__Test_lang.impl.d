test/test_lang.ml: Alcotest Check Complexity Concept Ctype Fmt Gp_algebra Gp_concepts Lang List Option Registry String
