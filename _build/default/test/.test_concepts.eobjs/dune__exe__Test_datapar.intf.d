test/test_datapar.mli:
