test/test_distsim.ml: Alcotest Algorithms Array Engine Float Gp_concepts Gp_distsim List Printf QCheck QCheck_alcotest Random Taxonomy7 Topology
