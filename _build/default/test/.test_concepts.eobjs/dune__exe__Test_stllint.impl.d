test/test_stllint.ml: Alcotest Ast Corpus Fmt Gp_stllint Interp List String
