test/test_stllint_parser.ml: Alcotest Ast Corpus Gp_stllint Interp List Parser Render String
