test/test_concepts.ml: Alcotest Archetype Check Complexity Concept Ctype Emulation Fmt Gp_algebra Gp_concepts Gp_graph Gp_sequence List Option Overload Printf Propagate Registry String Taxonomy
