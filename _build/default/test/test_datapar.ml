(* Tests for the data-parallel library: Par_exec must agree extensionally
   with Seq_exec on every primitive, for random inputs and domain counts. *)

open Gp_datapar

let qtest = QCheck_alcotest.to_alcotest

module Par2 = Datapar.Par_exec (struct
  let domains = 2
end)

module Par4 = Datapar.Par_exec (struct
  let domains = 4
end)

let arr = QCheck.(map Array.of_list (list_of_size (Gen.int_range 0 200) small_int))

let test_chunks () =
  Alcotest.(check (list (pair int int))) "even split" [ (0, 3); (3, 3); (6, 3) ]
    (Datapar.chunks ~k:3 9);
  Alcotest.(check (list (pair int int))) "uneven split"
    [ (0, 4); (4, 3); (7, 3) ]
    (Datapar.chunks ~k:3 10);
  Alcotest.(check (list (pair int int))) "more chunks than items"
    [ (0, 1); (1, 1) ]
    (Datapar.chunks ~k:8 2);
  Alcotest.(check (list (pair int int))) "empty" [] (Datapar.chunks ~k:4 0)

let test_seq_scan () =
  let a = [| 1; 2; 3; 4 |] in
  let out, total = Datapar.Seq_exec.scan Datapar.int_sum a in
  Alcotest.(check (array int)) "exclusive scan" [| 0; 1; 3; 6 |] out;
  Alcotest.(check int) "total" 10 total

let agree_prop name f =
  qtest (QCheck.Test.make ~name ~count:150 arr f)

let par_seq_props =
  [
    agree_prop "map agrees" (fun a ->
        Par4.map (fun x -> (x * 7) + 1) a
        = Datapar.Seq_exec.map (fun x -> (x * 7) + 1) a);
    agree_prop "mapi agrees" (fun a ->
        Par2.mapi (fun i x -> i + x) a = Datapar.Seq_exec.mapi (fun i x -> i + x) a);
    agree_prop "reduce sum agrees" (fun a ->
        Par4.reduce Datapar.int_sum a
        = Datapar.Seq_exec.reduce Datapar.int_sum a);
    agree_prop "reduce max agrees" (fun a ->
        Par2.reduce Datapar.int_max a
        = Datapar.Seq_exec.reduce Datapar.int_max a);
    agree_prop "scan agrees" (fun a ->
        Par4.scan Datapar.int_sum a = Datapar.Seq_exec.scan Datapar.int_sum a);
    agree_prop "filter agrees" (fun a ->
        Par4.filter (fun x -> x mod 3 = 0) a
        = Datapar.Seq_exec.filter (fun x -> x mod 3 = 0) a);
    agree_prop "count agrees" (fun a ->
        Par2.count (fun x -> x mod 2 = 0) a
        = Datapar.Seq_exec.count (fun x -> x mod 2 = 0) a);
    qtest
      (QCheck.Test.make ~name:"zip_with agrees" ~count:100
         QCheck.(pair arr arr)
         (fun (a, b) ->
           let n = min (Array.length a) (Array.length b) in
           let a = Array.sub a 0 n and b = Array.sub b 0 n in
           Par4.zip_with ( + ) a b = Datapar.Seq_exec.zip_with ( + ) a b));
  ]

(* An associative-but-not-commutative monoid (string concat analogue over
   int lists): chunked reduction still agrees because associativity alone
   is the concept requirement. *)
let concat_monoid : int list Datapar.monoid = { op = ( @ ); id = [] }

let assoc_only_prop =
  qtest
    (QCheck.Test.make ~name:"non-commutative monoid reduces correctly"
       ~count:100 arr (fun a ->
         let lists = Array.map (fun x -> [ x ]) a in
         Par4.reduce concat_monoid lists
         = Datapar.Seq_exec.reduce concat_monoid lists
         && Par4.reduce concat_monoid lists = Array.to_list a))

let test_zip_mismatch () =
  Alcotest.check_raises "mismatch raises"
    (Invalid_argument "zip_with: length mismatch") (fun () ->
      ignore (Par2.zip_with ( + ) [| 1 |] [| 1; 2 |]))

let test_scan_large () =
  let n = 100_000 in
  let a = Array.make n 1 in
  let out, total = Par4.scan Datapar.int_sum a in
  Alcotest.(check int) "total" n total;
  Alcotest.(check int) "mid prefix" 50_000 out.(50_000)

let test_default_domains () =
  Alcotest.(check bool) "at least one" true (Datapar.default_domains () >= 1)

(* The gp_algebra bridge: reduce with module-level Monoid instances. *)
let test_of_monoid_bridge () =
  let words = [| "gen"; "eric"; " program"; "ming" |] in
  let m = Datapar.of_monoid (module Gp_algebra.Instances.String_concat) in
  Alcotest.(check string) "string concat reduce" "generic programming"
    (Par2.reduce m words);
  let bits = [| 0b1010; 0b0110; 0b0011 |] in
  let band = Datapar.of_monoid (module Gp_algebra.Instances.Int_band) in
  Alcotest.(check int) "bitwise-and reduce" 0b0010 (Par4.reduce band bits)

let () =
  Alcotest.run "gp_datapar"
    [
      ( "chunks",
        [
          Alcotest.test_case "chunking" `Quick test_chunks;
          Alcotest.test_case "seq scan" `Quick test_seq_scan;
        ] );
      ("par = seq", par_seq_props @ [ assoc_only_prop ]);
      ( "edges",
        [
          Alcotest.test_case "zip mismatch" `Quick test_zip_mismatch;
          Alcotest.test_case "large scan" `Quick test_scan_large;
          Alcotest.test_case "default domains" `Quick test_default_domains;
          Alcotest.test_case "of_monoid bridge" `Quick test_of_monoid_bridge;
        ] );
    ]
