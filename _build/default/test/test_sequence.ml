(* Tests for gp_sequence: containers, checked iterators (invalidation,
   singularity, multipass), and every generic algorithm against reference
   semantics, driven across iterator categories. *)

open Gp_sequence

let qtest = QCheck_alcotest.to_alcotest
let lt = ( < )
let eq = Int.equal

let varray_of l = Varray.of_list ~dummy:0 l
let range_of_varray a = (Varray.begin_ a, Varray.end_ a)
let range_of_dlist l = (Dlist.begin_ l, Dlist.end_ l)

let small_list = QCheck.list_of_size (QCheck.Gen.int_range 0 40) QCheck.small_int

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)
(* ------------------------------------------------------------------ *)

let test_varray_basics () =
  let a = varray_of [ 1; 2; 3 ] in
  Alcotest.(check int) "length" 3 (Varray.length a);
  Varray.push_back a 4;
  Alcotest.(check (list int)) "push_back" [ 1; 2; 3; 4 ] (Varray.to_list a);
  Varray.pop_back a;
  Varray.set a 0 9;
  Alcotest.(check (list int)) "set" [ 9; 2; 3 ] (Varray.to_list a);
  Alcotest.check_raises "oob get"
    (Invalid_argument "Varray.get: index out of bounds") (fun () ->
      ignore (Varray.get a 3))

let test_varray_growth () =
  let a = Varray.create ~dummy:0 () in
  for i = 0 to 999 do
    Varray.push_back a i
  done;
  Alcotest.(check int) "length 1000" 1000 (Varray.length a);
  Alcotest.(check int) "element 537" 537 (Varray.get a 537)

let test_varray_erase_insert () =
  let a = varray_of [ 1; 2; 3; 4 ] in
  let it = Algorithms.advance (Varray.begin_ a) 1 in
  let it' = Varray.erase a it in
  Alcotest.(check (list int)) "erase middle" [ 1; 3; 4 ] (Varray.to_list a);
  Alcotest.(check int) "returned iter points at successor" 3 (Iter.get it');
  let _ = Varray.insert a it' 99 in
  Alcotest.(check (list int)) "insert" [ 1; 99; 3; 4 ] (Varray.to_list a)

let test_dlist_basics () =
  let l = Dlist.of_list [ 1; 2; 3 ] in
  Dlist.push_front l 0;
  Dlist.push_back l 4;
  Alcotest.(check (list int)) "push both ends" [ 0; 1; 2; 3; 4 ]
    (Dlist.to_list l);
  Alcotest.(check int) "length" 5 (Dlist.length l)

let test_dlist_erase_stability () =
  let l = Dlist.of_list [ 1; 2; 3 ] in
  let first = Dlist.begin_ l in
  let second = Iter.step first in
  let third = Iter.step second in
  let after = Dlist.erase l second in
  (* list erase invalidates ONLY the erased node's iterators *)
  Alcotest.(check int) "first still valid" 1 (Iter.get first);
  Alcotest.(check int) "third still valid" 3 (Iter.get third);
  Alcotest.(check int) "returned successor" 3 (Iter.get after);
  Alcotest.(check bool) "erased iterator invalidated" true
    (match Iter.get second with
    | _ -> false
    | exception Iter.Invalidated _ -> true)

let test_deque_basics () =
  let d = Deque.create ~dummy:0 () in
  for i = 1 to 5 do
    Deque.push_back d i
  done;
  for i = 1 to 5 do
    Deque.push_front d (-i)
  done;
  Alcotest.(check (list int)) "contents" [ -5; -4; -3; -2; -1; 1; 2; 3; 4; 5 ]
    (Deque.to_list d);
  Deque.pop_front d;
  Deque.pop_back d;
  Alcotest.(check (list int)) "after pops" [ -4; -3; -2; -1; 1; 2; 3; 4 ]
    (Deque.to_list d)

let deque_ring_prop =
  qtest
    (QCheck.Test.make ~name:"deque = two-list reference" ~count:200
       (QCheck.list_of_size (QCheck.Gen.int_range 0 60)
          (QCheck.int_range 0 5))
       (fun ops ->
         let d = Deque.create ~dummy:0 () in
         let reference = ref [] in
         List.iteri
           (fun i op ->
             match op with
             | 0 ->
               Deque.push_back d i;
               reference := !reference @ [ i ]
             | 1 ->
               Deque.push_front d i;
               reference := i :: !reference
             | 2 when !reference <> [] ->
               Deque.pop_front d;
               reference := List.tl !reference
             | 3 when !reference <> [] ->
               Deque.pop_back d;
               reference := List.rev (List.tl (List.rev !reference))
             | _ -> ())
           ops;
         Deque.to_list d = !reference))

(* ------------------------------------------------------------------ *)
(* Checked iterators                                                   *)
(* ------------------------------------------------------------------ *)

let test_vector_iterator_invalidation () =
  let a = varray_of [ 1; 2; 3 ] in
  let it = Varray.begin_ a in
  Varray.push_back a 4;
  Alcotest.(check bool) "deref after push_back raises Invalidated" true
    (match Iter.get it with
    | _ -> false
    | exception Iter.Invalidated _ -> true)

(* The Fig. 4 bug, reproduced dynamically: erase invalidates, the loop then
   increments/dereferences the dead iterator. *)
let test_fig4_dynamic () =
  let grades = varray_of [ 55; 90; 42; 71 ] in
  let fgrade g = g < 60 in
  let raised = ref false in
  (try
     let it = ref (Varray.begin_ grades) in
     while not (Iter.equal !it (Varray.end_ grades)) do
       if fgrade (Iter.get !it) then begin
         ignore (Varray.erase grades !it);
         (* BUG (as in the textbook example): keep using the old iterator *)
         it := Iter.step !it
       end
       else it := Iter.step !it
     done
   with Iter.Invalidated _ -> raised := true);
  Alcotest.(check bool) "invalidation caught at runtime" true !raised

let test_singular_iterator () =
  let s : int Iter.t = Iter.singular () in
  Alcotest.(check bool) "is singular" true (Iter.is_singular s);
  Alcotest.(check bool) "deref raises" true
    (match Iter.get s with _ -> false | exception Iter.Singular _ -> true)

let test_past_end_deref () =
  let a = varray_of [ 1 ] in
  let e = Varray.end_ a in
  Alcotest.(check bool) "deref of end raises" true
    (match Iter.get e with _ -> false | exception Iter.Singular _ -> true)

let test_category_violation () =
  let l = Dlist.of_list [ 1; 2 ] in
  let it = Dlist.begin_ l in
  Alcotest.(check bool) "list iterator has no jump" true
    (match Iter.jump it 1 with
    | _ -> false
    | exception Iter.Category_violation _ -> true)

let test_restrict () =
  let a = varray_of [ 1; 2; 3 ] in
  let it = Iter.restrict Iter.Forward (Varray.begin_ a) in
  Alcotest.(check int) "restricted still reads" 1 (Iter.get it);
  Alcotest.(check bool) "restricted step keeps category" true
    (Iter.category (Iter.step it) = Iter.Forward);
  Alcotest.(check bool) "no back" true
    (match Iter.back it with
    | _ -> false
    | exception Iter.Category_violation _ -> true);
  Alcotest.check_raises "cannot strengthen"
    (Invalid_argument "Iter.restrict: cannot strengthen an iterator")
    (fun () -> ignore (Iter.restrict Iter.Random_access it))

let test_input_stream_multipass_violation () =
  let first, _last = Iter.of_list [ 1; 2; 3 ] in
  let copy = first in
  let _ = Iter.step first in
  Alcotest.(check bool) "re-reading consumed position raises" true
    (match Iter.get copy with
    | _ -> false
    | exception Iter.Multipass_violation _ -> true)

(* max_element on a true input iterator violates single-pass: the paper's
   archetype experiment (Section 3.1), dynamically. *)
let test_max_element_needs_multipass () =
  let first, last = Iter.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check bool) "max_element on input iterator trips archetype" true
    (match Algorithms.max_element ~lt (first, last) with
    | _ -> false
    | exception Iter.Multipass_violation _ -> true)

let test_max_element_ok_on_forward () =
  let a = varray_of [ 3; 1; 4; 1; 5 ] in
  let it = Algorithms.max_element ~lt (range_of_varray a) in
  Alcotest.(check int) "finds max" 5 (Iter.get it)

(* ------------------------------------------------------------------ *)
(* Algorithms vs reference semantics                                   *)
(* ------------------------------------------------------------------ *)

let test_distance_advance () =
  let a = varray_of [ 10; 20; 30; 40 ] in
  let first, last = range_of_varray a in
  Alcotest.(check int) "distance RA" 4 (Algorithms.distance first last);
  let l = Dlist.of_list [ 10; 20; 30; 40 ] in
  let f2, l2 = range_of_dlist l in
  Alcotest.(check int) "distance walk" 4 (Algorithms.distance f2 l2);
  Alcotest.(check int) "advance RA" 30 (Iter.get (Algorithms.advance first 2));
  Alcotest.(check int) "advance walk" 30 (Iter.get (Algorithms.advance f2 2));
  Alcotest.(check int) "advance negative (bidir)" 10
    (Iter.get (Algorithms.advance (Algorithms.advance f2 2) (-2)))

let test_find () =
  let a = varray_of [ 5; 7; 9 ] in
  let first, last = range_of_varray a in
  let it = Algorithms.find ~eq 7 (first, last) in
  Alcotest.(check int) "found" 7 (Iter.get it);
  let missing = Algorithms.find ~eq 8 (first, last) in
  Alcotest.(check bool) "not found = last" true (Iter.equal missing last)

let test_fold_count () =
  let a = varray_of [ 1; 2; 3; 4 ] in
  let r = range_of_varray a in
  Alcotest.(check int) "accumulate" 10
    (Algorithms.accumulate ~op:( + ) ~init:0 r);
  Alcotest.(check int) "count_if even" 2
    (Algorithms.count_if (fun x -> x mod 2 = 0) r)

let test_copy_transform () =
  let src = varray_of [ 1; 2; 3 ] in
  let dst = varray_of [ 0; 0; 0 ] in
  let _ = Algorithms.copy (range_of_varray src) (Varray.begin_ dst) in
  Alcotest.(check (list int)) "copy" [ 1; 2; 3 ] (Varray.to_list dst);
  let dst2 = varray_of [ 0; 0; 0 ] in
  let _ =
    Algorithms.transform (fun x -> x * 10) (range_of_varray src)
      (Varray.begin_ dst2)
  in
  Alcotest.(check (list int)) "transform" [ 10; 20; 30 ] (Varray.to_list dst2)

let test_equal_lexicographic () =
  let a = varray_of [ 1; 2; 3 ] and b = varray_of [ 1; 2; 3 ] in
  Alcotest.(check bool) "equal ranges" true
    (Algorithms.equal_ranges ~eq (range_of_varray a) (range_of_varray b));
  let c = varray_of [ 1; 2; 4 ] in
  Alcotest.(check bool) "lex lt" true
    (Algorithms.lexicographic_lt ~lt (range_of_varray a) (range_of_varray c));
  let d = varray_of [ 1; 2 ] in
  Alcotest.(check bool) "prefix lt" true
    (Algorithms.lexicographic_lt ~lt (range_of_varray d) (range_of_varray a))

let test_reverse_rotate () =
  let a = varray_of [ 1; 2; 3; 4; 5 ] in
  Algorithms.reverse (range_of_varray a);
  Alcotest.(check (list int)) "reverse" [ 5; 4; 3; 2; 1 ] (Varray.to_list a);
  let b = varray_of [ 1; 2; 3; 4; 5 ] in
  let mid = Algorithms.advance (Varray.begin_ b) 2 in
  let ret = Algorithms.rotate (Varray.begin_ b, mid, Varray.end_ b) in
  Alcotest.(check (list int)) "rotate" [ 3; 4; 5; 1; 2 ] (Varray.to_list b);
  Alcotest.(check int) "rotate return points at old first" 1 (Iter.get ret)

let test_unique_remove_partition () =
  let a = varray_of [ 1; 1; 2; 2; 2; 3; 1 ] in
  let e = Algorithms.unique ~eq (range_of_varray a) in
  let kept = Algorithms.distance (Varray.begin_ a) e in
  Alcotest.(check int) "unique keeps 4" 4 kept;
  Alcotest.(check (list int)) "unique prefix" [ 1; 2; 3; 1 ]
    (List.filteri (fun i _ -> i < 4) (Varray.to_list a));
  let b = varray_of [ 1; 2; 3; 4; 5; 6 ] in
  let e = Algorithms.remove_if (fun x -> x mod 2 = 0) (range_of_varray b) in
  let kept = Algorithms.distance (Varray.begin_ b) e in
  Alcotest.(check int) "remove keeps 3" 3 kept;
  let c = varray_of [ 1; 2; 3; 4; 5; 6 ] in
  let p = Algorithms.partition (fun x -> x mod 2 = 0) (range_of_varray c) in
  let front = Algorithms.distance (Varray.begin_ c) p in
  Alcotest.(check int) "partition point" 3 front;
  let all_even_front = ref true in
  for i = 0 to front - 1 do
    if Varray.get c i mod 2 <> 0 then all_even_front := false
  done;
  Alcotest.(check bool) "evens first" true !all_even_front

let test_binary_search_trio () =
  let a = varray_of [ 1; 3; 3; 5; 7 ] in
  let r = range_of_varray a in
  let lb = Algorithms.lower_bound ~lt 3 r in
  let ub = Algorithms.upper_bound ~lt 3 r in
  Alcotest.(check int) "lower_bound index" 1
    (Algorithms.distance (Varray.begin_ a) lb);
  Alcotest.(check int) "upper_bound index" 3
    (Algorithms.distance (Varray.begin_ a) ub);
  Alcotest.(check bool) "binary_search hit" true
    (Algorithms.binary_search ~lt 5 r);
  Alcotest.(check bool) "binary_search miss" false
    (Algorithms.binary_search ~lt 4 r)

let test_merge () =
  let a = varray_of [ 1; 3; 5 ] and b = varray_of [ 2; 3; 6 ] in
  let out = varray_of [ 0; 0; 0; 0; 0; 0 ] in
  let _ =
    Algorithms.merge ~lt (range_of_varray a) (range_of_varray b)
      (Varray.begin_ out)
  in
  Alcotest.(check (list int)) "merge" [ 1; 2; 3; 3; 5; 6 ]
    (Varray.to_list out)

let test_sort_dispatch_choice () =
  Alcotest.(check string) "RA picks introsort" "introsort (random access)"
    (Algorithms.sort_algorithm_name
       (Algorithms.sort_algorithm_for Iter.Random_access));
  Alcotest.(check string) "forward picks mergesort" "mergesort (forward)"
    (Algorithms.sort_algorithm_name
       (Algorithms.sort_algorithm_for Iter.Forward));
  Alcotest.(check bool) "input rejected" true
    (match Algorithms.sort_algorithm_for Iter.Input with
    | _ -> false
    | exception Iter.Category_violation _ -> true)

(* Property: sort on every container/category agrees with List.sort. *)
let sort_props =
  [
    qtest
      (QCheck.Test.make ~name:"introsort sorts (vector)" ~count:200 small_list
         (fun l ->
           let a = varray_of l in
           Algorithms.sort ~lt (range_of_varray a);
           Varray.to_list a = List.sort Stdlib.compare l));
    qtest
      (QCheck.Test.make ~name:"mergesort sorts (list)" ~count:200 small_list
         (fun l ->
           let d = Dlist.of_list l in
           Algorithms.sort ~lt (range_of_dlist d);
           Dlist.to_list d = List.sort Stdlib.compare l));
    qtest
      (QCheck.Test.make ~name:"sort on restricted RA = mergesort path"
         ~count:100 small_list (fun l ->
           let a = varray_of l in
           let f = Iter.restrict Iter.Forward (Varray.begin_ a) in
           let e = Iter.restrict Iter.Forward (Varray.end_ a) in
           Algorithms.sort ~lt (f, e);
           Varray.to_list a = List.sort Stdlib.compare l));
    qtest
      (QCheck.Test.make ~name:"stable_sort stable on pairs" ~count:100
         (QCheck.list_of_size (QCheck.Gen.int_range 0 30)
            (QCheck.pair (QCheck.int_range 0 5) QCheck.small_int))
         (fun l ->
           let dummy = (0, 0) in
           let a = Varray.of_list ~dummy l in
           let plt (k1, _) (k2, _) = k1 < k2 in
           Algorithms.stable_sort ~lt:plt (Varray.begin_ a, Varray.end_ a);
           Varray.to_list a
           = List.stable_sort (fun (a, _) (b, _) -> Stdlib.compare a b) l));
    qtest
      (QCheck.Test.make ~name:"lower_bound postcondition" ~count:200
         (QCheck.pair small_list QCheck.small_int) (fun (l, x) ->
           let sorted = List.sort Stdlib.compare l in
           let a = varray_of sorted in
           let r = range_of_varray a in
           let it = Algorithms.lower_bound ~lt x r in
           let i = Algorithms.distance (Varray.begin_ a) it in
           let arr = Array.of_list sorted in
           let ok_before = Array.for_all (fun v -> v < x) (Array.sub arr 0 i) in
           let ok_after =
             Array.for_all (fun v -> not (v < x))
               (Array.sub arr i (Array.length arr - i))
           in
           ok_before && ok_after));
    qtest
      (QCheck.Test.make ~name:"binary_search = List.mem on sorted" ~count:200
         (QCheck.pair small_list QCheck.small_int) (fun (l, x) ->
           let sorted = List.sort Stdlib.compare l in
           let a = varray_of sorted in
           Algorithms.binary_search ~lt x (range_of_varray a)
           = List.mem x sorted));
    qtest
      (QCheck.Test.make ~name:"nth_element selects order statistic"
         ~count:200
         (QCheck.pair
            (QCheck.list_of_size (QCheck.Gen.int_range 1 40) QCheck.small_int)
            QCheck.small_int)
         (fun (l, k) ->
           let k = k mod List.length l in
           let a = varray_of l in
           Algorithms.nth_element ~lt (range_of_varray a) k;
           Varray.get a k = List.nth (List.sort Stdlib.compare l) k));
    qtest
      (QCheck.Test.make ~name:"reverse involution" ~count:200 small_list
         (fun l ->
           let a = varray_of l in
           Algorithms.reverse (range_of_varray a);
           Algorithms.reverse (range_of_varray a);
           Varray.to_list a = l));
    qtest
      (QCheck.Test.make ~name:"is_sorted agrees with reference" ~count:200
         small_list (fun l ->
           let a = varray_of l in
           Algorithms.is_sorted ~lt (range_of_varray a)
           = (List.sort Stdlib.compare l = l)));
    qtest
      (QCheck.Test.make ~name:"rotate preserves multiset & order" ~count:200
         (QCheck.pair small_list QCheck.small_int) (fun (l, k) ->
           QCheck.assume (l <> []);
           let k = k mod List.length l in
           let a = varray_of l in
           let mid = Algorithms.advance (Varray.begin_ a) k in
           let _ = Algorithms.rotate (Varray.begin_ a, mid, Varray.end_ a) in
           let expected =
             List.filteri (fun i _ -> i >= k) l
             @ List.filteri (fun i _ -> i < k) l
           in
           Varray.to_list a = expected));
  ]

(* The second wave of STL algorithms. *)
let test_quantifiers () =
  let a = varray_of [ 2; 4; 6 ] in
  let r = range_of_varray a in
  Alcotest.(check bool) "all even" true
    (Algorithms.all_of (fun x -> x mod 2 = 0) r);
  Alcotest.(check bool) "any > 5" true (Algorithms.any_of (fun x -> x > 5) r);
  Alcotest.(check bool) "none negative" true
    (Algorithms.none_of (fun x -> x < 0) r);
  (* vacuous truth on the empty range *)
  let e = varray_of [] in
  Alcotest.(check bool) "all_of empty" true
    (Algorithms.all_of (fun _ -> false) (range_of_varray e))

let test_adjacent_find () =
  let a = varray_of [ 1; 2; 2; 3 ] in
  let it = Algorithms.adjacent_find ~eq (range_of_varray a) in
  Alcotest.(check int) "finds the first of the pair" 1
    (Algorithms.distance (Varray.begin_ a) it);
  let b = varray_of [ 1; 2; 3 ] in
  let miss = Algorithms.adjacent_find ~eq (range_of_varray b) in
  Alcotest.(check bool) "none -> last" true
    (Iter.equal miss (Varray.end_ b))

let test_inner_product () =
  let a = varray_of [ 1; 2; 3 ] and b = varray_of [ 4; 5; 6 ] in
  Alcotest.(check int) "dot product" 32
    (Algorithms.inner_product ~add:( + ) ~mul:( * ) ~init:0
       (range_of_varray a) (range_of_varray b))

let test_replace_generate_iota () =
  let a = varray_of [ 1; 2; 3; 4 ] in
  Algorithms.replace_if (fun x -> x mod 2 = 0) ~with_:0 (range_of_varray a);
  Alcotest.(check (list int)) "replace_if" [ 1; 0; 3; 0 ] (Varray.to_list a);
  let b = varray_of [ 0; 0; 0; 0 ] in
  Algorithms.iota ~start:5 (range_of_varray b);
  Alcotest.(check (list int)) "iota" [ 5; 6; 7; 8 ] (Varray.to_list b)

let test_equal_range () =
  let a = varray_of [ 1; 3; 3; 3; 7 ] in
  let lo, hi = Algorithms.equal_range ~lt 3 (range_of_varray a) in
  Alcotest.(check int) "width" 3 (Algorithms.distance lo hi);
  Alcotest.(check int) "start index" 1
    (Algorithms.distance (Varray.begin_ a) lo)

let test_is_partitioned () =
  let yes = varray_of [ 2; 4; 1; 3 ] in
  let no = varray_of [ 2; 1; 4 ] in
  let p x = x mod 2 = 0 in
  Alcotest.(check bool) "partitioned" true
    (Algorithms.is_partitioned p (range_of_varray yes));
  Alcotest.(check bool) "not partitioned" false
    (Algorithms.is_partitioned p (range_of_varray no));
  (* partition establishes the property (qcheck-lite loop) *)
  List.iter
    (fun l ->
      let a = varray_of l in
      let _ = Algorithms.partition p (range_of_varray a) in
      Alcotest.(check bool) "post-partition" true
        (Algorithms.is_partitioned p (range_of_varray a)))
    [ [ 1; 2; 3; 4; 5 ]; []; [ 2 ]; [ 1; 1; 2; 2 ] ]

(* Output iterators: back_inserter / front_inserter. *)
let test_back_inserter () =
  let src = varray_of [ 1; 2; 3 ] in
  let dst = Varray.create ~dummy:0 () in
  let _ = Algorithms.copy (range_of_varray src) (Varray.back_inserter dst) in
  Alcotest.(check (list int)) "copy appends" [ 1; 2; 3 ] (Varray.to_list dst);
  (* the inserter survives the reallocations its own writes cause *)
  let big = Varray.create ~dummy:0 () in
  let _ =
    Algorithms.copy
      (range_of_varray (varray_of (List.init 100 Fun.id)))
      (Varray.back_inserter big)
  in
  Alcotest.(check int) "100 appended" 100 (Varray.length big);
  (* transform into a list via its front inserter reverses *)
  let l = Dlist.create () in
  let _ =
    Algorithms.transform (fun x -> x * 10) (range_of_varray src)
      (Dlist.front_inserter l)
  in
  Alcotest.(check (list int)) "front-inserted reversed" [ 30; 20; 10 ]
    (Dlist.to_list l)

let test_output_iterator_is_write_only () =
  let dst = Varray.create ~dummy:0 () in
  let out = Varray.back_inserter dst in
  Alcotest.(check bool) "reading raises" true
    (match Gp_sequence.Iter.get out with
    | _ -> false
    | exception Gp_sequence.Iter.Category_violation _ -> true);
  Alcotest.(check bool) "category is Output" true
    (Gp_sequence.Iter.category out = Gp_sequence.Iter.Output)

(* Sorted-range set operations vs a sorted-list reference model. *)
let multiset_union a b =
  (* max(m, n) copies of each element *)
  let count x l = List.length (List.filter (( = ) x) l) in
  let keys = List.sort_uniq compare (a @ b) in
  List.concat_map
    (fun k -> List.init (max (count k a) (count k b)) (fun _ -> k))
    keys

let multiset_inter a b =
  let count x l = List.length (List.filter (( = ) x) l) in
  let keys = List.sort_uniq compare a in
  List.concat_map
    (fun k -> List.init (min (count k a) (count k b)) (fun _ -> k))
    keys

let multiset_diff a b =
  let count x l = List.length (List.filter (( = ) x) l) in
  let keys = List.sort_uniq compare a in
  List.concat_map
    (fun k -> List.init (max 0 (count k a - count k b)) (fun _ -> k))
    keys

let run_setop op a b =
  let sa = List.sort compare a and sb = List.sort compare b in
  let va = varray_of sa and vb = varray_of sb in
  let out = varray_of (List.init (List.length a + List.length b) (fun _ -> 0)) in
  let final =
    op ~lt (range_of_varray va) (range_of_varray vb) (Varray.begin_ out)
  in
  let k = Algorithms.distance (Varray.begin_ out) final in
  List.filteri (fun i _ -> i < k) (Varray.to_list out)

let small_pair =
  QCheck.pair
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) (QCheck.int_range 0 9))
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) (QCheck.int_range 0 9))

let setop_props =
  [
    qtest
      (QCheck.Test.make ~name:"set_union = multiset reference" ~count:200
         small_pair (fun (a, b) ->
           run_setop Algorithms.set_union a b
           = List.sort compare (multiset_union a b)));
    qtest
      (QCheck.Test.make ~name:"set_intersection = multiset reference"
         ~count:200 small_pair (fun (a, b) ->
           run_setop Algorithms.set_intersection a b
           = List.sort compare (multiset_inter a b)));
    qtest
      (QCheck.Test.make ~name:"set_difference = multiset reference"
         ~count:200 small_pair (fun (a, b) ->
           run_setop Algorithms.set_difference a b
           = List.sort compare (multiset_diff a b)));
    qtest
      (QCheck.Test.make ~name:"includes iff empty difference" ~count:200
         small_pair (fun (a, b) ->
           let sa = List.sort compare a and sb = List.sort compare b in
           let va = varray_of sa and vb = varray_of sb in
           Algorithms.includes ~lt (range_of_varray va) (range_of_varray vb)
           = (multiset_diff b a = [])));
    qtest
      (QCheck.Test.make ~name:"union of x with itself = x" ~count:100
         (QCheck.list_of_size (QCheck.Gen.int_range 0 20)
            (QCheck.int_range 0 9))
         (fun a ->
           run_setop Algorithms.set_union a a = List.sort compare a));
  ]

(* Operation counters: lower_bound does O(log n) comparisons worth of
   derefs, find does O(n). *)
let test_counters_lower_bound_vs_find () =
  let nitems = 1024 in
  let a = varray_of (List.init nitems (fun i -> i)) in
  let c_find = Iter.counters () in
  let first = Iter.counting c_find (Varray.begin_ a) in
  let last = Varray.end_ a in
  let _ = Algorithms.find ~eq (nitems - 1) (first, last) in
  let c_lb = Iter.counters () in
  let first2 = Iter.counting c_lb (Varray.begin_ a) in
  let _ = Algorithms.lower_bound ~lt (nitems - 1) (first2, last) in
  Alcotest.(check bool) "find is linear" true (c_find.Iter.derefs >= nitems - 1);
  Alcotest.(check bool) "lower_bound is logarithmic" true
    (c_lb.Iter.derefs <= 2 * 11)

(* ------------------------------------------------------------------ *)
(* STL taxonomy                                                        *)
(* ------------------------------------------------------------------ *)

let test_stl_taxonomy_best_search () =
  let t = Taxonomy_stl.build () in
  let sorted = Taxonomy_stl.best_search t ~sorted:true in
  Alcotest.(check bool) "sorted search includes lower_bound/binary_search"
    true
    (List.exists
       (fun e -> e.Gp_concepts.Taxonomy.en_name = "lower_bound")
       sorted);
  let unsorted = Taxonomy_stl.best_search t ~sorted:false in
  Alcotest.(check (list string)) "unsorted search is find" [ "find" ]
    (List.map (fun e -> e.Gp_concepts.Taxonomy.en_name) unsorted)

let test_stl_taxonomy_sorting_distinctions () =
  let t = Taxonomy_stl.build () in
  (* stable sorting requirement excludes introsort *)
  let stable =
    Gp_concepts.Taxonomy.applicable t
      ~requirements:[ ("problem", "sorting"); ("stable", "yes") ]
  in
  Alcotest.(check (list string)) "stable sorting" [ "mergesort" ]
    (List.map (fun e -> e.Gp_concepts.Taxonomy.en_name) stable)

(* Algorithms driven through a deque (the third container model). *)
let test_algorithms_on_deque () =
  let d = Deque.of_list ~dummy:0 [ 5; 1; 4; 2; 3 ] in
  Algorithms.sort ~lt (Deque.begin_ d, Deque.end_ d);
  Alcotest.(check (list int)) "deque sorted" [ 1; 2; 3; 4; 5 ]
    (Deque.to_list d);
  Alcotest.(check bool) "binary_search on deque" true
    (Algorithms.binary_search ~lt 4 (Deque.begin_ d, Deque.end_ d));
  let p =
    Algorithms.partition (fun x -> x mod 2 = 1) (Deque.begin_ d, Deque.end_ d)
  in
  Alcotest.(check int) "three odds first" 3
    (Algorithms.distance (Deque.begin_ d) p)

let () =
  Alcotest.run "gp_sequence"
    [
      ( "containers",
        [
          Alcotest.test_case "varray basics" `Quick test_varray_basics;
          Alcotest.test_case "varray growth" `Quick test_varray_growth;
          Alcotest.test_case "varray erase/insert" `Quick
            test_varray_erase_insert;
          Alcotest.test_case "dlist basics" `Quick test_dlist_basics;
          Alcotest.test_case "dlist erase stability" `Quick
            test_dlist_erase_stability;
          Alcotest.test_case "deque basics" `Quick test_deque_basics;
          deque_ring_prop;
        ] );
      ( "checked iterators",
        [
          Alcotest.test_case "vector invalidation" `Quick
            test_vector_iterator_invalidation;
          Alcotest.test_case "fig4 dynamic" `Quick test_fig4_dynamic;
          Alcotest.test_case "singular" `Quick test_singular_iterator;
          Alcotest.test_case "past-end deref" `Quick test_past_end_deref;
          Alcotest.test_case "category violation" `Quick
            test_category_violation;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "multipass violation" `Quick
            test_input_stream_multipass_violation;
          Alcotest.test_case "max_element multipass archetype" `Quick
            test_max_element_needs_multipass;
          Alcotest.test_case "max_element forward ok" `Quick
            test_max_element_ok_on_forward;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "distance/advance" `Quick test_distance_advance;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "fold/count" `Quick test_fold_count;
          Alcotest.test_case "copy/transform" `Quick test_copy_transform;
          Alcotest.test_case "equal/lexicographic" `Quick
            test_equal_lexicographic;
          Alcotest.test_case "reverse/rotate" `Quick test_reverse_rotate;
          Alcotest.test_case "unique/remove/partition" `Quick
            test_unique_remove_partition;
          Alcotest.test_case "binary search trio" `Quick
            test_binary_search_trio;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "sort dispatch" `Quick test_sort_dispatch_choice;
          Alcotest.test_case "counters" `Quick
            test_counters_lower_bound_vs_find;
        ] );
      ("algorithm properties", sort_props);
      ("set operations", setop_props);
      ( "stl wave 2",
        [
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "adjacent_find" `Quick test_adjacent_find;
          Alcotest.test_case "inner_product" `Quick test_inner_product;
          Alcotest.test_case "replace/generate/iota" `Quick
            test_replace_generate_iota;
          Alcotest.test_case "equal_range" `Quick test_equal_range;
          Alcotest.test_case "is_partitioned" `Quick test_is_partitioned;
        ] );
      ( "output iterators",
        [
          Alcotest.test_case "back_inserter" `Quick test_back_inserter;
          Alcotest.test_case "write-only" `Quick
            test_output_iterator_is_write_only;
        ] );
      ( "taxonomy & deque",
        [
          Alcotest.test_case "best search" `Quick
            test_stl_taxonomy_best_search;
          Alcotest.test_case "sorting distinctions" `Quick
            test_stl_taxonomy_sorting_distinctions;
          Alcotest.test_case "algorithms on deque" `Quick
            test_algorithms_on_deque;
        ] );
    ]
