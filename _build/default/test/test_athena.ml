(* Tests for the proof checker: soundness (improper deductions rejected),
   the Fig. 6 SWO theorems, the group derivations, and generic-proof
   instantiation across operator mappings. *)

open Gp_athena
open Logic

let check_thm ~axioms thm =
  match Theorems.verify ~axioms thm with
  | Deduction.Proved -> ()
  | v ->
    Alcotest.failf "%s: %a" thm.Theorems.thm_name Deduction.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Logic basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_alpha_equality () =
  let p = Forall ("x", Atom ("P", [ Var "x" ])) in
  let q = Forall ("y", Atom ("P", [ Var "y" ])) in
  Alcotest.(check bool) "alpha equal" true (alpha_equal p q);
  let r = Forall ("x", Atom ("P", [ Var "z" ])) in
  Alcotest.(check bool) "different free var" false (alpha_equal p r)

let test_capture_avoiding_subst () =
  (* (forall y. P(x, y))[x := y]  must NOT capture: becomes forall y'. P(y, y') *)
  let p = Forall ("y", Atom ("P", [ Var "x"; Var "y" ])) in
  let s = subst [ ("x", Var "y") ] p in
  match s with
  | Forall (b, Atom ("P", [ Var "y"; Var b' ])) ->
    Alcotest.(check bool) "binder renamed" true (b <> "y" && b = b')
  | _ -> Alcotest.fail "unexpected substitution result"

let test_free_vars () =
  let p = Forall ("x", Atom ("P", [ Var "x"; Var "y" ])) in
  Alcotest.(check (list string)) "only y free" [ "y" ] (free_vars [] p)

(* ------------------------------------------------------------------ *)
(* Checker soundness: improper deductions                              *)
(* ------------------------------------------------------------------ *)

let patom name = Atom (name, [])

let expect_improper ~axioms d =
  match Deduction.eval (Ab.of_list axioms) d with
  | p -> Alcotest.failf "unsound: accepted %a" Logic.pp p
  | exception Deduction.Proof_error _ -> ()

let test_claim_requires_membership () =
  expect_improper ~axioms:[] (Deduction.Claim (patom "p"))

let test_mp_checks_premise () =
  let p = patom "p" and q = patom "q" and r = patom "r" in
  expect_improper
    ~axioms:[ Implies (p, q); r ]
    Deduction.(Mp (Claim (Implies (p, q)), Claim r))

let test_suppose_absurd_needs_false () =
  let p = patom "p" in
  expect_improper ~axioms:[ p ]
    Deduction.(Suppose_absurd (patom "q", Claim p))

let test_eigenvariable_condition () =
  (* With P(a) assumed, generalizing over a must fail. *)
  let pa = Atom ("P", [ Var "a" ]) in
  expect_improper ~axioms:[ pa ] Deduction.(Gen ([ "a" ], Claim pa))

let test_trans_must_chain () =
  let e1 = Eq (const "a", const "b") in
  let e2 = Eq (const "c", const "d") in
  expect_improper ~axioms:[ e1; e2 ]
    Deduction.(Trans (Claim e1, Claim e2))

let test_leibniz_pattern_mismatch () =
  let eq = Eq (const "a", const "b") in
  let pa = Atom ("P", [ const "a" ]) in
  let wrong = Atom ("Q", [ const "a" ]) in
  expect_improper ~axioms:[ eq; wrong ]
    Deduction.(Leibniz (Claim eq, "x", Atom ("P", [ Var "x" ]), Claim wrong));
  (* and the proper use succeeds *)
  let good =
    Deduction.eval
      (Ab.of_list [ eq; pa ])
      Deduction.(Leibniz (Claim eq, "x", Atom ("P", [ Var "x" ]), Claim pa))
  in
  Alcotest.(check bool) "leibniz rewrites" true
    (alpha_equal good (Atom ("P", [ const "b" ])))

let test_assume_discharges () =
  let p = patom "p" in
  let d = Deduction.(Assume (p, Claim p)) in
  let r = Deduction.eval Ab.empty d in
  Alcotest.(check bool) "p ==> p" true (alpha_equal r (Implies (p, p)))

let test_cases () =
  let p = patom "p" and q = patom "q" and r = patom "r" in
  let axioms = [ Or (p, q); Implies (p, r); Implies (q, r) ] in
  let d =
    Deduction.(
      Cases
        ( Claim (Or (p, q)),
          Claim (Implies (p, r)),
          Claim (Implies (q, r)) ))
  in
  let res = Deduction.eval (Ab.of_list axioms) d in
  Alcotest.(check bool) "or-elim yields r" true (alpha_equal res r)

let test_or_intro_and_ex_falso () =
  let p = patom "p" and q = patom "q" in
  let ab = Ab.of_list [ p; False ] in
  Alcotest.(check bool) "either-left" true
    (alpha_equal
       (Deduction.eval ab (Deduction.Either_left (Deduction.Claim p, q)))
       (Or (p, q)));
  Alcotest.(check bool) "either-right" true
    (alpha_equal
       (Deduction.eval ab (Deduction.Either_right (q, Deduction.Claim p)))
       (Or (q, p)));
  Alcotest.(check bool) "ex falso" true
    (alpha_equal
       (Deduction.eval ab (Deduction.From_false (Deduction.Claim False, q)))
       q)

let test_iff_rules () =
  let p = patom "p" and q = patom "q" in
  let ab = Ab.of_list [ Implies (p, q); Implies (q, p) ] in
  let iff =
    Deduction.(
      Iff_intro (Claim (Implies (p, q)), Claim (Implies (q, p))))
  in
  Alcotest.(check bool) "iff-intro" true
    (alpha_equal (Deduction.eval ab iff) (Iff (p, q)));
  Alcotest.(check bool) "iff-left" true
    (alpha_equal (Deduction.eval ab (Deduction.Iff_left iff)) (Implies (p, q)));
  Alcotest.(check bool) "iff-right" true
    (alpha_equal (Deduction.eval ab (Deduction.Iff_right iff)) (Implies (q, p)));
  (* mismatched halves rejected *)
  let r = patom "r" in
  expect_improper
    ~axioms:[ Implies (p, q); Implies (r, p) ]
    Deduction.(Iff_intro (Claim (Implies (p, q)), Claim (Implies (r, p))))

let test_mt_and_double_neg () =
  let p = patom "p" and q = patom "q" in
  let ab = Ab.of_list [ Implies (p, q); Not q; Not (Not p) ] in
  Alcotest.(check bool) "modus tollens" true
    (alpha_equal
       (Deduction.eval ab
          Deduction.(Mt (Claim (Implies (p, q)), Claim (Not q))))
       (Not p));
  Alcotest.(check bool) "double negation" true
    (alpha_equal
       (Deduction.eval ab (Deduction.Double_neg (Deduction.Claim (Not (Not p)))))
       p)

(* ------------------------------------------------------------------ *)
(* Fig. 6: SWO theorems                                                *)
(* ------------------------------------------------------------------ *)

let swo_axioms lt () = Theory.strict_weak_order ~lt

let test_swo_reflexive () =
  check_thm ~axioms:(swo_axioms "lt" ()) (Theorems.swo_e_reflexive ~lt:"lt")

let test_swo_symmetric () =
  check_thm ~axioms:(swo_axioms "lt" ()) (Theorems.swo_e_symmetric ~lt:"lt")

let test_swo_transitive () =
  check_thm ~axioms:(swo_axioms "lt" ()) (Theorems.swo_e_transitive ~lt:"lt")

let test_swo_asymmetric () =
  check_thm ~axioms:(swo_axioms "lt" ()) (Theorems.swo_asymmetric ~lt:"lt")

(* The SWO proofs are generic in the relation symbol: instantiate for
   int's <, string's <, and a reversed order. *)
let test_swo_generic_instantiation () =
  List.iter
    (fun lt ->
      check_thm ~axioms:(swo_axioms lt ()) (Theorems.swo_e_reflexive ~lt);
      check_thm ~axioms:(swo_axioms lt ()) (Theorems.swo_e_symmetric ~lt);
      check_thm ~axioms:(swo_axioms lt ()) (Theorems.swo_asymmetric ~lt))
    [ "int_lt"; "string_lt"; "int_gt" ]

(* Wrong axioms: the reflexivity proof must NOT check against a partial
   order's axioms (no irreflexivity axiom there). *)
let test_swo_proof_fails_on_wrong_theory () =
  let axioms = Theory.props (Theory.partial_order ~leq:"lt") in
  let thm = Theorems.swo_e_reflexive ~lt:"lt" in
  match Deduction.check ~axioms ~goal:thm.Theorems.goal thm.Theorems.proof with
  | Deduction.Proved -> Alcotest.fail "proof checked against wrong theory"
  | Deduction.Improper _ | Deduction.Wrong_conclusion _ -> ()

(* ------------------------------------------------------------------ *)
(* Monoid / group derivations                                          *)
(* ------------------------------------------------------------------ *)

let test_monoid_identity_unique () =
  check_thm
    ~axioms:(Theory.monoid Theory.int_mul)
    (Theorems.monoid_identity_unique Theory.int_mul)

let test_group_right_inverse () =
  check_thm
    ~axioms:(Theory.group_minimal Theory.int_add)
    (Theorems.group_right_inverse Theory.int_add)

let test_group_right_identity () =
  check_thm
    ~axioms:(Theory.group_minimal Theory.int_add)
    (Theorems.group_right_identity Theory.int_add)

let test_group_double_inverse () =
  check_thm
    ~axioms:(Theory.group_minimal Theory.int_add)
    (Theorems.group_double_inverse Theory.int_add)

(* One generic proof, many instances: every Fig. 5 group carrier. *)
let test_group_theorems_all_instances () =
  let results =
    Theorems.check_for_instances
      ~theorem:Theorems.group_right_inverse
      ~axioms:Theory.group_minimal Theory.group_instances
  in
  List.iter
    (fun (name, verdict) ->
      match verdict with
      | Deduction.Proved -> ()
      | v -> Alcotest.failf "%s: %a" name Deduction.pp_verdict v)
    results;
  Alcotest.(check int) "all instances checked"
    (List.length Theory.group_instances)
    (List.length results)

let int_ring =
  { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul }

let test_group_left_cancellation () =
  check_thm
    ~axioms:(Theory.group_minimal Theory.int_add)
    (Theorems.group_left_cancellation Theory.int_add)

let test_ring_mul_zero () =
  check_thm ~axioms:(Theory.ring int_ring) (Theorems.ring_mul_zero int_ring)

let test_ring_zero_mul () =
  check_thm ~axioms:(Theory.ring int_ring) (Theorems.ring_zero_mul int_ring)

(* the annihilation proof needs the ring axioms: it must NOT check against
   a bare monoid base *)
let test_ring_proof_needs_ring_axioms () =
  let thm = Theorems.ring_mul_zero int_ring in
  match
    Deduction.check
      ~axioms:(Theory.props (Theory.monoid Theory.int_mul))
      ~goal:thm.Theorems.goal thm.Theorems.proof
  with
  | Deduction.Proved -> Alcotest.fail "checked against insufficient axioms"
  | _ -> ()

(* Tampered proof: swapping two steps must be rejected. *)
let test_tampered_proof_rejected () =
  let m = Theory.int_add in
  let thm = Theorems.group_right_inverse m in
  let tampered =
    match thm.Theorems.proof with
    | Deduction.Gen (xs, Deduction.Trans (a, b)) ->
      Deduction.Gen (xs, Deduction.Trans (b, a))
    | d -> d
  in
  match
    Deduction.check
      ~axioms:(Theory.props (Theory.group_minimal m))
      ~goal:thm.Theorems.goal tampered
  with
  | Deduction.Proved -> Alcotest.fail "tampered proof accepted"
  | _ -> ()

(* Order-theory morphism: the strict part of a total order satisfies the
   SWO axioms — all three derived theorems check. *)
let test_total_order_strict_is_swo () =
  List.iter
    (fun leq ->
      List.iter
        (fun thm_fn ->
          check_thm ~axioms:(Theory.total_order ~leq) (thm_fn ~leq))
        [ Theorems.strict_irreflexive; Theorems.strict_transitive;
          Theorems.strict_equiv_transitive ])
    [ "int_le"; "string_le" ]

(* ... but equivalence transitivity genuinely needs totality: it must
   NOT check against a mere partial order (incomparability is not
   transitive in posets). *)
let test_equiv_transitivity_needs_totality () =
  let thm = Theorems.strict_equiv_transitive ~leq:"le" in
  match
    Deduction.check
      ~axioms:(Theory.props (Theory.partial_order ~leq:"le"))
      ~goal:thm.Theorems.goal thm.Theorems.proof
  with
  | Deduction.Proved -> Alcotest.fail "proved without totality"
  | _ -> ();
  (* the other two hold already for partial orders *)
  check_thm ~axioms:(Theory.partial_order ~leq:"le")
    (Theorems.strict_irreflexive ~leq:"le");
  check_thm ~axioms:(Theory.partial_order ~leq:"le")
    (Theorems.strict_transitive ~leq:"le")

(* Ring theory sanity: axiom naming and counts. *)
let test_ring_theory_shape () =
  let rm =
    { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul }
  in
  let axs = Theory.ring rm in
  Alcotest.(check bool) "has add_commutativity" true
    (List.exists (fun ax -> ax.Theory.ax_name = "add_commutativity") axs);
  Alcotest.(check bool) "has distributivity" true
    (List.exists (fun ax -> ax.Theory.ax_name = "left_distributivity") axs)

let test_proof_size () =
  let thm = Theorems.group_right_inverse Theory.int_add in
  Alcotest.(check bool) "non-trivial proof" true
    (Deduction.size thm.Theorems.proof > 10)

let () =
  Alcotest.run "gp_athena"
    [
      ( "logic",
        [
          Alcotest.test_case "alpha equality" `Quick test_alpha_equality;
          Alcotest.test_case "capture-avoiding subst" `Quick
            test_capture_avoiding_subst;
          Alcotest.test_case "free vars" `Quick test_free_vars;
        ] );
      ( "checker soundness",
        [
          Alcotest.test_case "claim membership" `Quick
            test_claim_requires_membership;
          Alcotest.test_case "mp premise" `Quick test_mp_checks_premise;
          Alcotest.test_case "suppose-absurd" `Quick
            test_suppose_absurd_needs_false;
          Alcotest.test_case "eigenvariable" `Quick
            test_eigenvariable_condition;
          Alcotest.test_case "trans chains" `Quick test_trans_must_chain;
          Alcotest.test_case "leibniz" `Quick test_leibniz_pattern_mismatch;
          Alcotest.test_case "assume" `Quick test_assume_discharges;
          Alcotest.test_case "cases" `Quick test_cases;
          Alcotest.test_case "or-intro / ex falso" `Quick
            test_or_intro_and_ex_falso;
          Alcotest.test_case "iff rules" `Quick test_iff_rules;
          Alcotest.test_case "mt / double-neg" `Quick test_mt_and_double_neg;
        ] );
      ( "fig6 swo",
        [
          Alcotest.test_case "E reflexive" `Quick test_swo_reflexive;
          Alcotest.test_case "E symmetric" `Quick test_swo_symmetric;
          Alcotest.test_case "E transitive" `Quick test_swo_transitive;
          Alcotest.test_case "lt asymmetric" `Quick test_swo_asymmetric;
          Alcotest.test_case "generic instantiation" `Quick
            test_swo_generic_instantiation;
          Alcotest.test_case "wrong theory rejected" `Quick
            test_swo_proof_fails_on_wrong_theory;
        ] );
      ( "algebra theorems",
        [
          Alcotest.test_case "identity unique" `Quick
            test_monoid_identity_unique;
          Alcotest.test_case "right inverse" `Quick test_group_right_inverse;
          Alcotest.test_case "right identity" `Quick
            test_group_right_identity;
          Alcotest.test_case "double inverse" `Quick
            test_group_double_inverse;
          Alcotest.test_case "all instances" `Quick
            test_group_theorems_all_instances;
          Alcotest.test_case "left cancellation" `Quick
            test_group_left_cancellation;
          Alcotest.test_case "ring: x*0 = 0" `Quick test_ring_mul_zero;
          Alcotest.test_case "ring: 0*x = 0" `Quick test_ring_zero_mul;
          Alcotest.test_case "ring proof needs ring axioms" `Quick
            test_ring_proof_needs_ring_axioms;
          Alcotest.test_case "total order strict part is SWO" `Quick
            test_total_order_strict_is_swo;
          Alcotest.test_case "equiv transitivity needs totality" `Quick
            test_equiv_transitivity_needs_totality;
          Alcotest.test_case "tampered rejected" `Quick
            test_tampered_proof_rejected;
          Alcotest.test_case "ring shape" `Quick test_ring_theory_shape;
          Alcotest.test_case "proof size" `Quick test_proof_size;
        ] );
    ]
