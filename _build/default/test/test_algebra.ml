(* Tests for gp_algebra: law properties per instance (qcheck), rationals,
   matrices, power functors. *)

open Gp_algebra

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Law properties per instance                                         *)
(* ------------------------------------------------------------------ *)

let monoid_laws (type a) name (module M : Sigs.MONOID with type t = a) gen =
  let module L = Laws.Monoid (M) in
  [
    qtest
      (QCheck.Test.make ~name:(name ^ " associativity") ~count:200
         (QCheck.triple gen gen gen)
         (fun (a, b, c) -> L.associative a b c));
    qtest
      (QCheck.Test.make ~name:(name ^ " left identity") ~count:200 gen
         L.left_identity);
    qtest
      (QCheck.Test.make ~name:(name ^ " right identity") ~count:200 gen
         L.right_identity);
  ]

let group_laws (type a) name (module G : Sigs.GROUP with type t = a) gen =
  let module L = Laws.Group (G) in
  monoid_laws name (module G) gen
  @ [
      qtest
        (QCheck.Test.make ~name:(name ^ " left inverse") ~count:200 gen
           L.left_inverse);
      qtest
        (QCheck.Test.make ~name:(name ^ " right inverse") ~count:200 gen
           L.right_inverse);
    ]

let small_int = QCheck.int_range (-1000) 1000

let rational_gen =
  QCheck.map
    (fun (a, b) -> Rational.make a (if b = 0 then 1 else b))
    (QCheck.pair (QCheck.int_range (-50) 50)
       (QCheck.int_range (-50) 50))

let instance_tests =
  monoid_laws "(int,+)" (module Instances.Int_add) small_int
  @ group_laws "(int,+) group" (module Instances.Int_add) small_int
  @ monoid_laws "(int,*)"
      (module Instances.Int_mul)
      (QCheck.int_range (-30) 30)
  @ monoid_laws "(int,&)" (module Instances.Int_band) QCheck.int
  @ monoid_laws "(int,|)" (module Instances.Int_bor) QCheck.int
  @ monoid_laws "(bool,&&)" (module Instances.Bool_and) QCheck.bool
  @ monoid_laws "(bool,||)" (module Instances.Bool_or) QCheck.bool
  @ monoid_laws "(string,^)"
      (module Instances.String_concat)
      (QCheck.string_of_size (QCheck.Gen.int_range 0 8))
  @ monoid_laws "(rational,+)"
      (module struct
        include Rational.Field

        let op = add
        let id = zero
      end)
      rational_gen
  @ group_laws "(rational,+) group"
      (module struct
        include Rational.Field

        let op = add
        let id = zero
        let inverse = neg
      end)
      rational_gen

(* Field laws for rationals. *)
let field_tests =
  let module L = Laws.Field (Rational.Field) in
  [
    qtest
      (QCheck.Test.make ~name:"rational distributivity" ~count:200
         (QCheck.triple rational_gen rational_gen rational_gen)
         (fun (a, b, c) -> L.left_distributive a b c && L.right_distributive a b c));
    qtest
      (QCheck.Test.make ~name:"rational mul inverse" ~count:200 rational_gen
         L.multiplicative_inverse);
    qtest
      (QCheck.Test.make ~name:"rational mul commutative" ~count:200
         (QCheck.pair rational_gen rational_gen)
         (fun (a, b) -> L.mul_commutative a b));
  ]

(* ------------------------------------------------------------------ *)
(* Rational basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_rational_normalisation () =
  Alcotest.(check bool) "2/4 = 1/2" true
    (Rational.equal (Rational.make 2 4) (Rational.make 1 2));
  Alcotest.(check bool) "negative denominator normalised" true
    (Rational.equal (Rational.make 1 (-2)) (Rational.make (-1) 2));
  Alcotest.(check string) "pp integer" "3"
    (Rational.to_string (Rational.of_int 3));
  Alcotest.(check string) "pp fraction" "-1/2"
    (Rational.to_string (Rational.make 1 (-2)))

let test_rational_division_by_zero () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Rational.make 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Rational.inv Rational.zero))

let test_rational_arith () =
  let open Rational in
  let half = make 1 2 and third = make 1 3 in
  Alcotest.(check bool) "1/2+1/3 = 5/6" true (equal (add half third) (make 5 6));
  Alcotest.(check bool) "1/2*1/3 = 1/6" true (equal (mul half third) (make 1 6));
  Alcotest.(check bool) "div" true (equal (div half third) (make 3 2));
  Alcotest.(check int) "compare" (-1) (Rational.compare third half)

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

let test_matrix_identity_monoid () =
  let open Instances.Qmat in
  let q = Rational.of_int in
  let a = of_rows [ [ q 1; q 2 ]; [ q 3; q 4 ] ] in
  Alcotest.(check bool) "A*I = A" true (equal (mul a (identity 2)) a);
  Alcotest.(check bool) "I*A = A" true (equal (mul (identity 2) a) a)

let test_matrix_inverse () =
  let open Instances.Qmat in
  let q = Rational.of_int in
  let a = of_rows [ [ q 1; q 2 ]; [ q 3; q 4 ] ] in
  let ainv = inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true (is_identity (mul a ainv));
  Alcotest.(check bool) "A^-1 * A = I" true (is_identity (mul ainv a))

let test_matrix_singular () =
  let open Instances.Qmat in
  let q = Rational.of_int in
  let s = of_rows [ [ q 1; q 2 ]; [ q 2; q 4 ] ] in
  Alcotest.check_raises "singular raises" Singular (fun () ->
      ignore (inverse s))

let qmat_gen n =
  QCheck.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      Instances.Qmat.init n (fun _ _ ->
          Rational.of_int (Random.State.int st 7 - 3)))
    QCheck.int

let matrix_prop_tests =
  [
    qtest
      (QCheck.Test.make ~name:"matrix mul associative" ~count:50
         (QCheck.triple (qmat_gen 3) (qmat_gen 3) (qmat_gen 3))
         (fun (a, b, c) ->
           Instances.Qmat.(equal (mul (mul a b) c) (mul a (mul b c)))));
    qtest
      (QCheck.Test.make ~name:"invertible => A*A^-1=I" ~count:50 (qmat_gen 3)
         (fun a ->
           match Instances.Qmat.inverse a with
           | ainv -> Instances.Qmat.(is_identity (mul a ainv))
           | exception Instances.Qmat.Singular -> true));
    qtest
      (QCheck.Test.make ~name:"distributivity A(B+C)=AB+AC" ~count:50
         (QCheck.triple (qmat_gen 3) (qmat_gen 3) (qmat_gen 3))
         (fun (a, b, c) ->
           Instances.Qmat.(equal (mul a (add b c)) (add (mul a b) (mul a c)))));
  ]

(* ------------------------------------------------------------------ *)
(* Power functor                                                       *)
(* ------------------------------------------------------------------ *)

let test_power () =
  let module P = Sigs.Power (Instances.Int_mul) in
  Alcotest.(check int) "2^10" 1024 (P.power 2 10);
  Alcotest.(check int) "x^0 = id" 1 (P.power 7 0);
  let module PS = Sigs.Power (Instances.String_concat) in
  Alcotest.(check string) "string power" "ababab" (PS.power "ab" 3);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Power.power: negative exponent") (fun () ->
      ignore (P.power 2 (-1)))

let test_group_power_negative () =
  let module GP = Sigs.Group_power (Instances.Int_add) in
  Alcotest.(check int) "3 * 5 via power" 15 (GP.power 3 5);
  Alcotest.(check int) "3 * -5 via power" (-15) (GP.power 3 (-5))

let power_prop =
  qtest
    (QCheck.Test.make ~name:"power = repeated op" ~count:200
       (QCheck.pair (QCheck.int_range (-9) 9) (QCheck.int_range 0 12))
       (fun (x, e) ->
         let module P = Sigs.Power (Instances.Int_add) in
         P.power x e = x * e))

(* ------------------------------------------------------------------ *)
(* Derived structures                                                  *)
(* ------------------------------------------------------------------ *)

let test_additive_multiplicative_views () =
  let module A = Sigs.Additive (Instances.Int_ring) in
  let module M = Sigs.Multiplicative (Instances.Int_ring) in
  Alcotest.(check int) "additive id" 0 A.id;
  Alcotest.(check int) "mult id" 1 M.id;
  Alcotest.(check int) "additive inverse" (-5) (A.inverse 5);
  let module U = Sigs.Units (Rational.Field) in
  Alcotest.(check bool) "units inverse" true
    (Rational.equal (U.inverse (Rational.make 2 3)) (Rational.make 3 2))

(* SWO laws on int and on a reversed order. *)
let swo_tests =
  let module S = Laws.Strict_weak_order (struct
    type t = int

    let lt = ( < )
  end) in
  [
    qtest
      (QCheck.Test.make ~name:"int < irreflexive" ~count:200 QCheck.int
         S.irreflexive);
    qtest
      (QCheck.Test.make ~name:"int < transitive" ~count:200
         (QCheck.triple small_int small_int small_int)
         (fun (a, b, c) -> S.lt_transitive a b c));
    qtest
      (QCheck.Test.make ~name:"equivalence symmetric (derived)" ~count:200
         (QCheck.pair small_int small_int)
         (fun (a, b) -> S.e_symmetric a b));
    qtest
      (QCheck.Test.make ~name:"equivalence reflexive (derived)" ~count:200
         small_int S.e_reflexive);
    qtest
      (QCheck.Test.make ~name:"equivalence transitive" ~count:200
         (QCheck.triple small_int small_int small_int)
         (fun (a, b, c) -> S.e_transitive a b c));
  ]

let () =
  Alcotest.run "gp_algebra"
    [
      ("instances (laws)", instance_tests);
      ("field laws", field_tests);
      ( "rational",
        [
          Alcotest.test_case "normalisation" `Quick
            test_rational_normalisation;
          Alcotest.test_case "division by zero" `Quick
            test_rational_division_by_zero;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity monoid" `Quick
            test_matrix_identity_monoid;
          Alcotest.test_case "inverse" `Quick test_matrix_inverse;
          Alcotest.test_case "singular" `Quick test_matrix_singular;
        ]
        @ matrix_prop_tests );
      ( "power",
        [
          Alcotest.test_case "basics" `Quick test_power;
          Alcotest.test_case "group power" `Quick test_group_power_negative;
          power_prop;
        ] );
      ( "views",
        [
          Alcotest.test_case "additive/multiplicative/units" `Quick
            test_additive_multiplicative_views;
        ] );
      ("strict weak order", swo_tests);
    ]
