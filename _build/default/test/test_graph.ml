(* Tests for gp_graph: both graph models against both module types, each
   algorithm vs a brute-force reference on random graphs. *)

open Gp_graph

let qtest = QCheck_alcotest.to_alcotest

(* Random directed graph as an edge list over n vertices. *)
let graph_gen =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v, _) -> Printf.sprintf "%d->%d" u v) edges)))
    QCheck.Gen.(
      int_range 1 12 >>= fun n ->
      list_size (int_range 0 30)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
           (float_range 0.5 9.5))
      >>= fun edges -> return (n, edges))

(* Brute-force Floyd-Warshall hop distances for BFS reference. *)
let bfs_reference n edges src =
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (u, v, _) ->
        if dist.(u) < max_int && dist.(u) + 1 < dist.(v) then begin
          dist.(v) <- dist.(u) + 1;
          changed := true
        end)
      edges
  done;
  dist

(* Bellman-Ford weighted reference for Dijkstra. *)
let dijkstra_reference n edges src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    List.iter
      (fun (u, v, w) ->
        if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w)
      edges
  done;
  dist

let test_first_neighbor () =
  let g = Adj_list.of_edges ~n:3 [ (0, 1, 1.0); (0, 2, 1.0) ] in
  let module FN = Sigs.First_neighbor (Adj_list.G) in
  Alcotest.(check (option int)) "neighbor of 0" (Some 1) (FN.first_neighbor g 0);
  Alcotest.(check (option int)) "no neighbor of 2" None (FN.first_neighbor g 2)

let test_adj_list_basics () =
  let g = Adj_list.create () in
  let a = Adj_list.add_vertex g in
  let b = Adj_list.add_vertex g in
  let _ = Adj_list.add_edge g a b ~w:2.5 in
  Alcotest.(check int) "vertices" 2 (Adj_list.num_vertices g);
  Alcotest.(check int) "edges" 1 (Adj_list.num_edges g);
  Alcotest.(check int) "out degree" 1 (Adj_list.out_degree g a);
  (match Adj_list.edge g a b with
  | Some e ->
    Alcotest.(check int) "source" a (Adj_list.source e);
    Alcotest.(check int) "target" b (Adj_list.target e);
    Alcotest.(check (float 0.0)) "weight" 2.5 (Adj_list.weight g e)
  | None -> Alcotest.fail "edge missing");
  Alcotest.(check bool) "reverse edge absent" true
    (Adj_list.edge g b a = None)

let test_adj_matrix_basics () =
  let g = Adj_matrix.create 3 in
  let _ = Adj_matrix.add_edge g 0 1 in
  let _ = Adj_matrix.add_edge g 0 2 in
  let _ = Adj_matrix.add_edge g 0 1 in
  (* duplicate: no double count *)
  Alcotest.(check int) "edge count dedups" 2 (Adj_matrix.num_edges g);
  Alcotest.(check int) "out degree" 2 (Adj_matrix.out_degree g 0);
  Alcotest.(check bool) "O(1) lookup hit" true
    (Adj_matrix.edge g 0 1 <> None);
  Alcotest.(check bool) "O(1) lookup miss" true (Adj_matrix.edge g 1 0 = None)

let test_bfs_line () =
  let g = Adj_list.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.) ] in
  let module B = Algorithms.Bfs (Adj_list.G) in
  let dist, parent = B.run g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3 |] dist;
  Alcotest.(check (option int)) "parent of 3" (Some 2) parent.(3)

let bfs_prop =
  qtest
    (QCheck.Test.make ~name:"BFS = relaxation reference (both models)"
       ~count:150 graph_gen (fun (n, edges) ->
         let gl = Adj_list.of_edges ~n edges in
         let gm = Adj_matrix.of_edges ~n edges in
         let module BL = Algorithms.Bfs (Adj_list.G) in
         let module BM = Algorithms.Bfs (Adj_matrix.G) in
         let dl, _ = BL.run gl 0 in
         let dm, _ = BM.run gm 0 in
         let dedup_edges =
           List.sort_uniq compare (List.map (fun (u, v, _) -> (u, v)) edges)
           |> List.map (fun (u, v) -> (u, v, 1.0))
         in
         let reference = bfs_reference n dedup_edges 0 in
         dl = reference && dm = reference))

let dijkstra_prop =
  qtest
    (QCheck.Test.make ~name:"Dijkstra = Bellman-Ford reference" ~count:150
       graph_gen (fun (n, edges) ->
         (* matrix dedups parallel edges; use the list model only *)
         let g = Adj_list.of_edges ~n edges in
         let module D = Algorithms.Dijkstra (Adj_list.G) in
         let dist, _ = D.run g 0 in
         let reference = dijkstra_reference n edges 0 in
         Array.for_all2
           (fun a b ->
             (Float.is_integer a && a = b)
             || Float.abs (a -. b) < 1e-9
             || (a = infinity && b = infinity))
           dist reference))

let test_dijkstra_negative_rejected () =
  let g = Adj_list.of_edges ~n:2 [ (0, 1, -1.0) ] in
  let module D = Algorithms.Dijkstra (Adj_list.G) in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dijkstra: negative edge weight") (fun () ->
      ignore (D.run g 0))

let test_dijkstra_path () =
  let g =
    Adj_list.of_edges ~n:4
      [ (0, 1, 1.); (1, 3, 1.); (0, 2, 5.); (2, 3, 1.); (0, 3, 10.) ]
  in
  let module D = Algorithms.Dijkstra (Adj_list.G) in
  Alcotest.(check (list int)) "shortest path" [ 0; 1; 3 ]
    (D.path g ~source:0 ~dest:3)

let test_topological_sort () =
  let g = Adj_list.of_edges ~n:4 [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.) ] in
  let module T = Algorithms.Topological_sort (Adj_list.G) in
  let order = T.run g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
  Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
  Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3));
  let cyclic = Adj_list.of_edges ~n:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  Alcotest.check_raises "cycle" T.Cycle (fun () -> ignore (T.run cyclic))

let topo_prop =
  qtest
    (QCheck.Test.make ~name:"topological order respects all edges" ~count:150
       graph_gen (fun (n, edges) ->
         (* make it a DAG: only forward edges *)
         let dag = List.filter_map (fun (u, v, w) ->
             if u < v then Some (u, v, w) else None) edges in
         let g = Adj_list.of_edges ~n dag in
         let module T = Algorithms.Topological_sort (Adj_list.G) in
         let order = T.run g in
         let pos = Array.make n 0 in
         List.iteri (fun i vx -> pos.(vx) <- i) order;
         List.for_all (fun (u, v, _) -> pos.(u) < pos.(v)) dag))

let test_dfs_cycle_detection () =
  let acyclic = Adj_list.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let cyclic = Adj_list.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let module D = Algorithms.Dfs (Adj_list.G) in
  let _, _, c1 = D.run acyclic in
  let _, _, c2 = D.run cyclic in
  Alcotest.(check bool) "acyclic" false c1;
  Alcotest.(check bool) "cyclic" true c2

let dfs_times_prop =
  qtest
    (QCheck.Test.make ~name:"DFS discovery < finish, all visited" ~count:150
       graph_gen (fun (n, edges) ->
         let g = Adj_list.of_edges ~n edges in
         let module D = Algorithms.Dfs (Adj_list.G) in
         let discover, finish, _ = D.run g in
         Array.for_all2 (fun d f -> d >= 1 && d < f) discover finish))

let test_connected_components () =
  let g =
    Adj_list.of_edges ~n:5
      [ (0, 1, 1.); (1, 0, 1.); (2, 3, 1.); (3, 2, 1.) ]
  in
  let module C = Algorithms.Connected_components (Adj_list.G) in
  let comp, count = C.run g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "2 and 3 together" true (comp.(2) = comp.(3));
  Alcotest.(check bool) "4 alone" true
    (comp.(4) <> comp.(0) && comp.(4) <> comp.(2))

let test_edge_lookup_dispatch () =
  let open Gp_concepts in
  let reg = Registry.create () in
  Decls.declare reg;
  let g = Decls.has_edge_generic () in
  (match Overload.resolve reg g [ Ctype.Named "adjacency_matrix" ] with
  | Overload.Selected (c, _) ->
    Alcotest.(check string) "matrix gets direct lookup"
      "direct cell lookup (adjacency matrix)" c.Overload.cand_name
  | _ -> Alcotest.fail "expected Selected for matrix");
  (match Overload.resolve reg g [ Ctype.Named "adjacency_list" ] with
  | Overload.Selected (c, _) ->
    Alcotest.(check string) "list falls back to scan"
      "scan out-edges (incidence graph)" c.Overload.cand_name
  | _ -> Alcotest.fail "expected Selected for list");
  (* and the implementations agree *)
  let gm = Adj_matrix.of_edges ~n:3 [ (0, 1, 1.0) ] in
  match
    Overload.call reg g
      ~types:[ Ctype.Named "adjacency_matrix" ]
      ~values:[ Decls.Matrix_query (gm, 0, 1) ]
  with
  | Ok (Decls.Bool true) -> ()
  | _ -> Alcotest.fail "dispatched has_edge should find the edge"

let heap_prop =
  qtest
    (QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
       (QCheck.list_of_size (QCheck.Gen.int_range 0 50)
          (QCheck.float_range 0.0 100.0))
       (fun keys ->
         let keys = List.sort_uniq compare keys in
         let h = Heap.create ~max_id:(List.length keys + 1) in
         List.iteri (fun i k -> Heap.push h ~id:i ~key:k) keys;
         let out = ref [] in
         while not (Heap.is_empty h) do
           out := snd (Heap.pop_min h) :: !out
         done;
         List.rev !out = keys))

let test_heap_decrease_key () =
  let h = Heap.create ~max_id:3 in
  Heap.push h ~id:0 ~key:10.0;
  Heap.push h ~id:1 ~key:20.0;
  Heap.push h ~id:2 ~key:30.0;
  Heap.decrease_key h ~id:2 ~key:5.0;
  Alcotest.(check int) "decreased key pops first" 2 (fst (Heap.pop_min h));
  Alcotest.check_raises "increase rejected"
    (Invalid_argument "Heap.decrease_key: key increased") (fun () ->
      Heap.decrease_key h ~id:1 ~key:99.0)

(* weighted Bellman-Ford: negative edges allowed, agrees with Dijkstra on
   non-negative inputs, detects negative cycles. *)
let test_bellman_ford_negative_edges () =
  let g =
    Adj_list.of_edges ~n:4
      [ (0, 1, 4.0); (0, 2, 5.0); (1, 3, 3.0); (2, 1, -3.0); (2, 3, 4.0) ]
  in
  let module B = Algorithms.Bellman_ford (Adj_list.G) in
  match B.run g 0 with
  | Ok (dist, parent) ->
    Alcotest.(check (float 1e-9)) "via the negative edge" 5.0 dist.(3);
    Alcotest.(check (option int)) "parent of 1 is 2" (Some 2) parent.(1)
  | Error `Negative_cycle -> Alcotest.fail "no negative cycle here"

let test_bellman_ford_negative_cycle () =
  let g =
    Adj_list.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, -2.0); (2, 1, 1.0) ]
  in
  let module B = Algorithms.Bellman_ford (Adj_list.G) in
  match B.run g 0 with
  | Error `Negative_cycle -> ()
  | Ok _ -> Alcotest.fail "negative cycle missed"

let bellman_ford_vs_dijkstra =
  qtest
    (QCheck.Test.make ~name:"Bellman-Ford = Dijkstra on non-negative"
       ~count:100 graph_gen (fun (n, edges) ->
         let g = Adj_list.of_edges ~n edges in
         let module B = Algorithms.Bellman_ford (Adj_list.G) in
         let module D = Algorithms.Dijkstra (Adj_list.G) in
         match B.run g 0 with
         | Ok (bf, _) ->
           let dj, _ = D.run g 0 in
           Array.for_all2
             (fun a b ->
               (a = infinity && b = infinity) || Float.abs (a -. b) < 1e-9)
             bf dj
         | Error `Negative_cycle -> false))

let test_taxonomy_measurements () =
  let t = Taxonomy_bgl.build () in
  Gp_concepts.Taxonomy.record_measurement t ~entry:"BFS" ~measure:"time"
    ~param:100 ~value:42.0;
  Gp_concepts.Taxonomy.record_measurement t ~entry:"BFS" ~measure:"time"
    ~param:10 ~value:4.0;
  let ms = Gp_concepts.Taxonomy.measurements t ~entry:"BFS" ~measure:"time" in
  Alcotest.(check (list int)) "sorted by size" [ 10; 100 ]
    (List.map (fun m -> m.Gp_concepts.Taxonomy.ms_param) ms);
  Alcotest.check_raises "unknown entry"
    (Invalid_argument "Taxonomy.record_measurement: unknown entry nope")
    (fun () ->
      Gp_concepts.Taxonomy.record_measurement t ~entry:"nope" ~measure:"x"
        ~param:1 ~value:0.0)

(* Property maps: the same Dijkstra with array-backed, hash-backed and
   constant/function weight maps. *)
let test_property_map_dijkstra () =
  let g =
    Adj_list.of_edges ~n:4
      [ (0, 1, 1.); (1, 3, 1.); (0, 2, 5.); (2, 3, 1.); (0, 3, 10.) ]
  in
  let module D = Property_map.Dijkstra_pm (Adj_list.G) in
  let weight =
    Property_map.of_function ~name:"weight" (Adj_list.weight g)
  in
  (* array-backed stores *)
  let dist =
    Property_map.array_backed ~name:"dist" ~size:4 ~index:Fun.id
      ~default:infinity
  in
  let parent =
    Property_map.array_backed ~name:"parent" ~size:4 ~index:Fun.id
      ~default:None
  in
  D.run g 0 ~weight ~dist ~parent;
  Alcotest.(check (float 1e-9)) "array-backed dist" 2.0
    (Property_map.get dist 3);
  (* hash-backed stores give identical results *)
  let hdist = Property_map.hash_backed ~name:"dist" ~default:infinity () in
  let hparent = Property_map.hash_backed ~name:"parent" ~default:None () in
  D.run g 0 ~weight ~dist:hdist ~parent:hparent;
  Alcotest.(check (float 1e-9)) "hash-backed dist" 2.0
    (Property_map.get hdist 3);
  (* constant unit weights turn it into BFS distances *)
  let unit_w = Property_map.constant ~name:"unit" 1.0 in
  D.run g 0 ~weight:unit_w ~dist ~parent;
  Alcotest.(check (float 1e-9)) "unit weights = hops" 1.0
    (Property_map.get dist 3);
  let some_edge = Option.get (Adj_list.edge g 0 1) in
  Alcotest.check_raises "constant map is read-only"
    (Invalid_argument "unit: constant property map is read-only") (fun () ->
      Property_map.set unit_w some_edge 2.0)

let test_bgl_taxonomy () =
  let t = Taxonomy_bgl.build () in
  let unit_w = Taxonomy_bgl.best_shortest_paths t ~weights:"unit" in
  Alcotest.(check (list string)) "unit weights -> BFS" [ "BFS" ]
    (List.map (fun e -> e.Gp_concepts.Taxonomy.en_name) unit_w);
  let nonneg = Taxonomy_bgl.best_shortest_paths t ~weights:"non-negative" in
  Alcotest.(check (list string)) "non-negative -> Dijkstra"
    [ "Dijkstra (binary heap)" ]
    (List.map (fun e -> e.Gp_concepts.Taxonomy.en_name) nonneg);
  Alcotest.(check (list string)) "no gaps" []
    (Gp_concepts.Taxonomy.gaps t)

let () =
  Alcotest.run "gp_graph"
    [
      ( "models",
        [
          Alcotest.test_case "adj_list basics" `Quick test_adj_list_basics;
          Alcotest.test_case "adj_matrix basics" `Quick
            test_adj_matrix_basics;
          Alcotest.test_case "first_neighbor" `Quick test_first_neighbor;
        ] );
      ( "bfs/dfs",
        [
          Alcotest.test_case "bfs line" `Quick test_bfs_line;
          bfs_prop;
          Alcotest.test_case "dfs cycle detection" `Quick
            test_dfs_cycle_detection;
          dfs_times_prop;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "negative rejected" `Quick
            test_dijkstra_negative_rejected;
          Alcotest.test_case "path" `Quick test_dijkstra_path;
          dijkstra_prop;
        ] );
      ( "topo/components",
        [
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          topo_prop;
          Alcotest.test_case "connected components" `Quick
            test_connected_components;
        ] );
      ( "dispatch",
        [ Alcotest.test_case "edge lookup" `Quick test_edge_lookup_dispatch ] );
      ( "heap",
        [
          heap_prop;
          Alcotest.test_case "decrease key" `Quick test_heap_decrease_key;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "bgl" `Quick test_bgl_taxonomy;
          Alcotest.test_case "measurements" `Quick
            test_taxonomy_measurements;
        ] );
      ( "property maps",
        [
          Alcotest.test_case "dijkstra over maps" `Quick
            test_property_map_dijkstra;
        ] );
      ( "bellman-ford",
        [
          Alcotest.test_case "negative edges" `Quick
            test_bellman_ford_negative_edges;
          Alcotest.test_case "negative cycle" `Quick
            test_bellman_ford_negative_cycle;
          bellman_ford_vs_dijkstra;
        ] );
    ]
