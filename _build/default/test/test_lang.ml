(* Tests for the concept surface syntax: parsing, loading, checking
   against parsed declarations, error positions, and round-tripping. *)

open Gp_concepts

let n x = Ctype.Named x

let monoid_src =
  {|
  // the algebraic chain, written in the surface syntax
  concept Semigroup<T> {
    op : T, T -> T;
    axiom associativity(a, b, c): "op(op(a,b),c) = op(a,op(b,c))";
    complexity op O(1);
  }

  concept Monoid<T> refines Semigroup<T> {
    id : -> T;
    axiom left_identity(a): "op(id,a) = a";
    axiom right_identity(a): "op(a,id) = a";
  }

  type "int[+]" { elem = int; }
  type int;
  op op : "int[+]", "int[+]" -> "int[+]";
  op id : -> "int[+]";
  model Semigroup<"int[+]"> asserting associativity;
  model Monoid<"int[+]"> asserting left_identity, right_identity;
|}

let test_parse_and_check () =
  let reg = Registry.create () in
  Lang.load_string reg monoid_src;
  Alcotest.(check bool) "Monoid parsed" true
    (Registry.find_concept reg "Monoid" <> None);
  Alcotest.(check bool) "int[+] models Monoid (structural)" true
    (Check.models reg "Monoid" [ n "int[+]" ]);
  Alcotest.(check bool) "int[+] models Monoid (nominal)" true
    (Check.models ~mode:Check.Nominal reg "Monoid" [ n "int[+]" ]);
  (* refinement edge present *)
  Alcotest.(check bool) "Monoid refines Semigroup" true
    (Registry.refines reg "Monoid" "Semigroup")

let test_parsed_equals_programmatic () =
  (* the parsed Semigroup matches the programmatic one structurally *)
  let reg = Registry.create () in
  Lang.load_string reg monoid_src;
  let parsed = Option.get (Registry.find_concept reg "Semigroup") in
  let programmatic = Gp_algebra.Decls.semigroup in
  Alcotest.(check (list string)) "params" programmatic.Concept.params
    parsed.Concept.params;
  Alcotest.(check int) "op count"
    (List.length (Concept.operations programmatic))
    (List.length (Concept.operations parsed));
  Alcotest.(check (list string)) "axiom names"
    (List.map (fun a -> a.Concept.ax_name) (Concept.axioms programmatic))
    (List.map (fun a -> a.Concept.ax_name) (Concept.axioms parsed))

let graph_src =
  {|
  concept InputIterator<I> {
    type value_type;
    deref : I -> I.value_type;
    succ : I -> I;
    iter_eq : I, I -> bool;
    axiom single_pass(i): "copies are invalidated by succ";
  }

  concept GraphEdge<Edge> {
    type vertex_type;
    source : Edge -> Edge.vertex_type;
    target : Edge -> Edge.vertex_type;
  }

  concept IncidenceGraph<Graph> {
    type vertex_type;
    type edge_type where models GraphEdge<Graph.edge_type>;
    type out_edge_iterator where models InputIterator<Graph.out_edge_iterator>;
    same Graph.out_edge_iterator.value_type == Graph.edge_type;
    out_edges : Graph.vertex_type, Graph -> Graph.out_edge_iterator;
    out_degree : Graph.vertex_type, Graph -> int;
    complexity out_edges O(1);
  }
|}

let test_parse_graph_concepts () =
  let reg = Registry.create () in
  Lang.load_string reg graph_src;
  (* declare a conforming model programmatically and check it against the
     PARSED concepts *)
  Registry.declare_type reg "vertex";
  Registry.declare_type reg "int";
  Registry.declare_type reg "e" ~assoc:[ ("vertex_type", n "vertex") ];
  Registry.declare_op reg "source" [ n "e" ] (n "vertex");
  Registry.declare_op reg "target" [ n "e" ] (n "vertex");
  Registry.declare_type reg "it" ~assoc:[ ("value_type", n "e") ];
  Registry.declare_op reg "deref" [ n "it" ] (n "e");
  Registry.declare_op reg "succ" [ n "it" ] (n "it");
  Registry.declare_op reg "iter_eq" [ n "it"; n "it" ] (n "bool");
  Registry.declare_type reg "g"
    ~assoc:
      [ ("vertex_type", n "vertex"); ("edge_type", n "e");
        ("out_edge_iterator", n "it") ];
  Registry.declare_op reg "out_edges" [ n "vertex"; n "g" ] (n "it");
  Registry.declare_op reg "out_degree" [ n "vertex"; n "g" ] (n "int");
  let report = Check.check reg "IncidenceGraph" [ n "g" ] in
  Alcotest.(check bool)
    (Fmt.str "parsed IncidenceGraph checks: %a" Check.pp_report report)
    true (Check.ok report)

(* NOTE: the '== Graph.edge_type' clause on out_edge_iterator constrains
   the iterator's value_type... actually it constrains the assoc type
   projection itself. Verify a violation is caught. *)
let test_parsed_same_type_violation () =
  let reg = Registry.create () in
  Lang.load_string reg graph_src;
  Registry.declare_type reg "vertex";
  Registry.declare_type reg "other";
  Registry.declare_type reg "e2" ~assoc:[ ("vertex_type", n "vertex") ];
  Registry.declare_op reg "source" [ n "e2" ] (n "vertex");
  Registry.declare_op reg "target" [ n "e2" ] (n "vertex");
  Registry.declare_type reg "bad"
    ~assoc:
      [ ("vertex_type", n "vertex"); ("edge_type", n "e2");
        ("out_edge_iterator", n "other") ];
  let report = Check.check reg "IncidenceGraph" [ n "bad" ] in
  Alcotest.(check bool) "violation caught" false (Check.ok report)

let test_complexity_syntax () =
  let src =
    {|
    concept Fast<C> {
      size : C -> int;
      complexity size O(1);
      complexity scan O(n);
      complexity sort O(n log n);
      complexity pairs O(n^2);
      complexity mixed O(n + m);
      complexity push O(1) amortized;
    }
  |}
  in
  let items = Lang.parse_string src in
  match items with
  | [ Lang.Iconcept c ] ->
    let cgs = Concept.complexity_guarantees c in
    let find op = (List.find (fun g -> g.Concept.cg_op = op) cgs).Concept.cg_bound in
    Alcotest.(check string) "O(1)" "O(1)" (Complexity.to_string (find "size"));
    Alcotest.(check string) "O(n)" "O(n)" (Complexity.to_string (find "scan"));
    Alcotest.(check string) "O(n log n)" "O(n log n)"
      (Complexity.to_string (find "sort"));
    Alcotest.(check string) "O(n^2)" "O(n^2)"
      (Complexity.to_string (find "pairs"));
    Alcotest.(check string) "O(n + m)" "O(n + m)"
      (Complexity.to_string (find "mixed"));
    Alcotest.(check bool) "amortized flag" true
      (List.exists
         (fun g -> g.Concept.cg_op = "push" && g.Concept.cg_amortized)
         cgs)
  | _ -> Alcotest.fail "expected one concept"

let test_parse_error_position () =
  let src = "concept Broken<T> {\n  op : T, T -> ;\n}" in
  match Lang.parse_string src with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Lang.Parse_error { line; message; _ } ->
    Alcotest.(check int) "error on line 2" 2 line;
    Alcotest.(check bool) "message mentions type" true
      (String.length message > 0)

let test_unterminated_string () =
  match Lang.parse_string "type \"oops" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Lang.Parse_error _ -> ()

let test_roundtrip () =
  let reg = Registry.create () in
  Lang.load_string reg monoid_src;
  let original = Option.get (Registry.find_concept reg "Monoid") in
  let source = Lang.to_source original in
  let reparsed =
    match Lang.parse_string source with
    | [ Lang.Iconcept c ] -> c
    | _ -> Alcotest.fail "round-trip did not yield one concept"
  in
  Alcotest.(check string) "name" original.Concept.name reparsed.Concept.name;
  Alcotest.(check int) "requirement count"
    (List.length original.Concept.requirements)
    (List.length reparsed.Concept.requirements)

let test_multi_param_concept () =
  let src =
    {|
    concept VectorSpace<V, S> refines AbelianGroup<V>, Field<S> {
      mult : V, S -> V;
      mult : S, V -> V;
      axiom unit_scalar(x): "mult(x, one) = x";
    }
  |}
  in
  match Lang.parse_string src with
  | [ Lang.Iconcept c ] ->
    Alcotest.(check (list string)) "two params" [ "V"; "S" ] c.Concept.params;
    Alcotest.(check int) "two refinements" 2 (List.length c.Concept.refines);
    Alcotest.(check int) "two mult signatures" 2
      (List.length (Concept.operations c))
  | _ -> Alcotest.fail "expected one concept"

(* constructor applications in types: IEnumerable<Edge> etc. *)
let test_app_types () =
  let src =
    {|
    concept EdgeRange<C> {
      type edge;
      edges : C -> seq<C.edge>;
      pairs : C -> map<C.edge, int>;
    }
  |}
  in
  match Lang.parse_string src with
  | [ Lang.Iconcept c ] -> (
    match Concept.operations c with
    | [ edges; pairs ] ->
      let cedge = Ctype.Assoc (Ctype.Var "C", "edge") in
      Alcotest.(check bool) "seq applied" true
        (Ctype.equal edges.Concept.op_return (Ctype.App ("seq", [ cedge ])));
      Alcotest.(check bool) "two-arg app" true
        (Ctype.equal pairs.Concept.op_return
           (Ctype.App ("map", [ cedge; Ctype.Named "int" ])))
    | _ -> Alcotest.fail "expected two operations")
  | _ -> Alcotest.fail "expected one concept"

(* quoted type names with every special character we rely on. *)
let test_quoted_names () =
  let src =
    {|
    type "vector<int>::iterator" { value_type = int; }
    op deref : "vector<int>::iterator" -> int;
    |}
  in
  let reg = Registry.create () in
  Lang.load_string reg src;
  Alcotest.(check bool) "type registered" true
    (Registry.find_type reg "vector<int>::iterator" <> None);
  Alcotest.(check bool) "op registered" true
    (Registry.find_op reg "deref" [ n "vector<int>::iterator" ] <> None)

(* comments everywhere, including before EOF *)
let test_comments () =
  let src = "// leading\nconcept C<T> { // inline\n f : T -> T; \n } // trailing" in
  Alcotest.(check int) "parses" 1 (List.length (Lang.parse_string src))

(* re-declaring a type merges assoc bindings instead of failing *)
let test_type_merge () =
  let reg = Registry.create () in
  Lang.load_string reg "type widget { a = int; }";
  Lang.load_string reg "type widget { b = bool; }";
  match Registry.find_type reg "widget" with
  | Some td ->
    Alcotest.(check bool) "both bindings" true
      (List.mem_assoc "a" td.Registry.td_assoc
      && List.mem_assoc "b" td.Registry.td_assoc)
  | None -> Alcotest.fail "widget missing"

(* the shipped example file loads and its checks behave as documented *)
let test_shapes_world () =
  let src =
    {|
    concept HasArea<S> { area : S -> float; complexity area O(1); }
    concept HasPerimeter<S> { perimeter : S -> float; }
    concept ClosedShape<S> refines HasArea<S>, HasPerimeter<S> {
      axiom isoperimetric(s): "4 pi area <= perimeter^2";
    }
    type float;
    type circle;
    op area : circle -> float;
    op perimeter : circle -> float;
    type segment;
    op perimeter : segment -> float;
    model ClosedShape<circle> asserting isoperimetric;
  |}
  in
  let reg = Registry.create () in
  Lang.load_string reg src;
  Alcotest.(check bool) "circle is a ClosedShape" true
    (Check.models reg "ClosedShape" [ n "circle" ]);
  Alcotest.(check bool) "segment is not" false
    (Check.models reg "ClosedShape" [ n "segment" ]);
  Alcotest.(check bool) "nominal needs the declaration" false
    (Check.models ~mode:Check.Nominal reg "HasArea" [ n "circle" ])

let () =
  Alcotest.run "gp_lang"
    [
      ( "parsing",
        [
          Alcotest.test_case "parse + check" `Quick test_parse_and_check;
          Alcotest.test_case "matches programmatic" `Quick
            test_parsed_equals_programmatic;
          Alcotest.test_case "graph concepts" `Quick test_parse_graph_concepts;
          Alcotest.test_case "same-type violation" `Quick
            test_parsed_same_type_violation;
          Alcotest.test_case "complexity syntax" `Quick test_complexity_syntax;
          Alcotest.test_case "multi-param" `Quick test_multi_param_concept;
        ] );
      ( "errors",
        [
          Alcotest.test_case "position" `Quick test_parse_error_position;
          Alcotest.test_case "unterminated string" `Quick
            test_unterminated_string;
        ] );
      ("roundtrip", [ Alcotest.test_case "monoid" `Quick test_roundtrip ]);
      ( "surface details",
        [
          Alcotest.test_case "app types" `Quick test_app_types;
          Alcotest.test_case "quoted names" `Quick test_quoted_names;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "type merge" `Quick test_type_merge;
          Alcotest.test_case "shapes world" `Quick test_shapes_world;
        ] );
    ]
