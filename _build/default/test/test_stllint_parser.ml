(* Tests for the STLlint surface syntax: the Fig. 4 program written as
   program text must produce the same diagnostics as the hand-built AST,
   and the frontend's contextual argument typing must hold up. *)

open Gp_stllint

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let count_sev sev ds =
  List.length (List.filter (fun d -> d.Interp.d_severity = sev) ds)

(* Fig. 4, as source text. *)
let fig4_src =
  {|
  // extract and erase failing grades -- the buggy version
  vector<student> students;
  vector<student> fail;
  iter it = students.begin();
  iter last = students.end();
  while (it != last) {
    if (fgrade(*it)) {
      fail.push_back(*it);
      students.erase(it);     // result discarded: it becomes singular
    } else {
      ++it;
    }
  }
|}

let test_fig4_from_source () =
  let ds = Parser.check_source fig4_src in
  Alcotest.(check int) "one error" 1 (count_sev Interp.Error ds);
  Alcotest.(check bool) "the singular message" true
    (List.exists
       (fun d -> contains d.Interp.d_message "singular iterator")
       ds)

let fig4_fixed_src =
  {|
  vector<student> students;
  vector<student> fail;
  iter it = students.begin();
  iter last = students.end();
  while (it != last) {
    if (fgrade(*it)) {
      fail.push_back(*it);
      it = students.erase(it);
      last = students.end();
    } else {
      ++it;
    }
  }
|}

let test_fig4_fixed_from_source () =
  let ds = Parser.check_source fig4_fixed_src in
  Alcotest.(check int) "clean" 0 (List.length ds)

let test_sorted_find_from_source () =
  let ds =
    Parser.check_source
      {|
      vector<int> v;
      sort(v);
      iter i = find(v, 42);
    |}
  in
  Alcotest.(check int) "one suggestion" 1 (count_sev Interp.Suggestion ds);
  Alcotest.(check bool) "lower_bound suggested" true
    (List.exists (fun d -> contains d.Interp.d_message "lower_bound") ds)

let test_stream_from_source () =
  let ds =
    Parser.check_source
      {|
      istream cin;
      iter m = max_element(cin);
    |}
  in
  Alcotest.(check bool) "multipass error" true
    (List.exists (fun d -> contains d.Interp.d_message "multipass") ds)

(* contextual argument typing: container vs iterator range vs predicate *)
let test_argument_typing () =
  let program =
    Parser.parse_program
      {|
      vector<int> v;
      iter a = v.begin();
      iter b = v.end();
      count_if(a..b, is_even);
    |}
  in
  match List.rev program with
  | { Ast.node = Ast.Algo { args; _ }; _ } :: _ ->
    Alcotest.(check bool) "range arg" true
      (List.exists
         (function Ast.A_range (Ast.R_iters ("a", "b")) -> true | _ -> false)
         args);
    Alcotest.(check bool) "pred arg" true
      (List.exists (function Ast.A_pred "is_even" -> true | _ -> false) args)
  | _ -> Alcotest.fail "expected an algorithm call"

let test_sorted_annotation () =
  let ds =
    Parser.check_source
      {|
      vector<int> v sorted;
      binary_search(v, 7);
    |}
  in
  Alcotest.(check int) "no warnings: declared sorted" 0
    (count_sev Interp.Warning ds)

let test_labels_carry_source () =
  let ds = Parser.check_source fig4_src in
  match List.find_opt (fun d -> d.Interp.d_severity = Interp.Error) ds with
  | Some d ->
    Alcotest.(check bool) "label shows the offending source" true
      (contains d.Interp.d_where "fgrade")
  | None -> Alcotest.fail "no error"

let test_parse_errors () =
  let cases =
    [ "vector<int> v"; (* missing ; *) "iter x = ;"; "while (x) {";
      "v.push_back(1);" (* undeclared container -> undeclared name error *) ]
  in
  List.iter
    (fun src ->
      match Parser.parse_program src with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Parser.Parse_error _ -> ())
    cases

let test_deque_and_members () =
  let ds =
    Parser.check_source
      {|
      deque<int> d;
      d.push_front(1);
      d.push_back(2);
      d.pop_back();
      iter i = d.begin();
      iter e = d.end();
      if (i != e) { *i; }
    |}
  in
  Alcotest.(check int) "clean" 0 (List.length ds)

(* Round-trip: every corpus program renders to surface syntax and parses
   back structurally equal — and with identical diagnostics. *)
let test_roundtrip_corpus () =
  List.iter
    (fun (c : Corpus.case) ->
      let src = Render.to_source c.Corpus.program in
      match Parser.parse_program src with
      | reparsed ->
        Alcotest.(check bool)
          (c.Corpus.case_name ^ " round-trips:\n" ^ src)
          true
          (Render.block_equal c.Corpus.program reparsed);
        let d1 = Interp.check c.Corpus.program in
        let d2 = Interp.check reparsed in
        Alcotest.(check (list string))
          (c.Corpus.case_name ^ " same diagnostics")
          (List.map (fun d -> d.Interp.d_message) d1)
          (List.map (fun d -> d.Interp.d_message) d2)
      | exception Parser.Parse_error { line; message } ->
        Alcotest.failf "%s: rendered source fails to parse (line %d: %s)\n%s"
          c.Corpus.case_name line message src)
    Corpus.all

let test_roundtrip_generated () =
  let program = Corpus.generate ~blocks:12 ~buggy_every:3 in
  let reparsed = Parser.parse_program (Render.to_source program) in
  Alcotest.(check bool) "generated corpus round-trips" true
    (Render.block_equal program reparsed)

let () =
  Alcotest.run "gp_stllint_parser"
    [
      ( "end to end",
        [
          Alcotest.test_case "fig4 buggy" `Quick test_fig4_from_source;
          Alcotest.test_case "fig4 fixed" `Quick test_fig4_fixed_from_source;
          Alcotest.test_case "sorted find" `Quick
            test_sorted_find_from_source;
          Alcotest.test_case "stream multipass" `Quick
            test_stream_from_source;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "argument typing" `Quick test_argument_typing;
          Alcotest.test_case "sorted annotation" `Quick
            test_sorted_annotation;
          Alcotest.test_case "labels" `Quick test_labels_carry_source;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "deque members" `Quick test_deque_and_members;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "corpus" `Quick test_roundtrip_corpus;
          Alcotest.test_case "generated" `Quick test_roundtrip_generated;
        ] );
    ]
