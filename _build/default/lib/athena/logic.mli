(** First-order logic with equality — the proposition language of the
    proof checker (paper Section 3.3). *)

type term =
  | Var of string
  | App of string * term list  (** nullary application = constant *)

type prop =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of prop
  | And of prop * prop
  | Or of prop * prop
  | Implies of prop * prop
  | Iff of prop * prop
  | Forall of string * prop
  | Exists of string * prop

val const : string -> term

(** {2 Terms} *)

val term_equal : term -> term -> bool
val term_vars : string list -> term -> string list
val term_subst : (string * term) list -> term -> term

(** {2 Propositions} *)

val free_vars : string list -> prop -> string list

val fresh_var : string -> string
(** A globally fresh variable derived from the given base name. *)

val subst : (string * term) list -> prop -> prop
(** Capture-avoiding substitution of terms for free variables; binders
    are renamed when a substituted term would be captured. *)

val alpha_equal : prop -> prop -> bool
(** Equality up to bound-variable renaming — the equality used for
    assumption-base membership. *)

(** {2 Printing and building} *)

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> prop -> unit
val to_string : prop -> string

val forall_many : string list -> prop -> prop
val conj : prop list -> prop
