(* Deductions and their checker.

   "The proof language analog of expression is called a deduction. Like
   expressions, deductions are executed. Proper deductions ... produce
   theorems and add them to the assumption base; improper deductions result
   in an error condition."

   [eval ab d] executes deduction [d] against assumption base [ab] and
   returns the proposition it proves, raising [Proof_error] on any improper
   step. Soundness is by construction: every constructor checks its own
   side conditions and sub-deductions are evaluated recursively, so a
   returned proposition is always derivable from [ab].

   First-class *methods* are ordinary OCaml functions returning deductions
   — exactly the paper's observation that Athena's first-class
   functions/methods subsume modules and type parameterisation for
   organising generic proofs. *)

open Logic

exception Proof_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Proof_error s)) fmt

type t =
  | Claim of prop (* p, if p is in the assumption base *)
  | Assume of prop * t (* evaluate body with p assumed; yields p ==> q *)
  | Suppose_absurd of prop * t (* body must yield False; yields ~p *)
  | Mp of t * t (* from p ==> q and p, derive q *)
  | Mt of t * t (* from p ==> q and ~q, derive ~p *)
  | Both of t * t (* and-introduction *)
  | Left_and of t (* from p /\ q derive p *)
  | Right_and of t (* from p /\ q derive q *)
  | Either_left of t * prop (* from p derive p \/ q *)
  | Either_right of prop * t (* from q derive p \/ q *)
  | Cases of t * t * t (* from p \/ q, p ==> r, q ==> r derive r *)
  | Absurd of t * t (* from p and ~p derive False *)
  | From_false of t * prop (* from False derive anything *)
  | Double_neg of t (* from ~~p derive p *)
  | Iff_intro of t * t (* from p ==> q and q ==> p derive p <=> q *)
  | Iff_left of t (* from p <=> q derive p ==> q *)
  | Iff_right of t (* from p <=> q derive q ==> p *)
  | Refl of term (* t = t *)
  | Sym of t (* from a = b derive b = a *)
  | Trans of t * t (* from a = b and b = c derive a = c *)
  | Congruence of string * t list (* from ai = bi derive f(a..) = f(b..) *)
  | Leibniz of t * string * prop * t
      (* Leibniz (eq, x, pattern, d): eq proves a = b, d proves
         pattern[x:=a]; derive pattern[x:=b] *)
  | Inst of t * term list (* universal elimination *)
  | Gen of string list * t (* universal introduction (eigenvariables) *)
  | Seq of t list (* evaluate in order, each result added to ab *)

let rec eval ab d =
  match d with
  | Claim p ->
    if Ab.mem p ab then p
    else fail "claim: %a is not in the assumption base" Logic.pp p
  | Assume (p, body) ->
    let q = eval (Ab.insert p ab) body in
    Implies (p, q)
  | Suppose_absurd (p, body) -> (
    match eval (Ab.insert p ab) body with
    | False -> Not p
    | q -> fail "suppose-absurd: body proved %a, not false" Logic.pp q)
  | Mp (dimp, dp) -> (
    match eval ab dimp with
    | Implies (p, q) ->
      let p' = eval ab dp in
      if alpha_equal p p' then q
      else fail "modus ponens: %a does not match premise %a" Logic.pp p'
             Logic.pp p
    | r -> fail "modus ponens: %a is not an implication" Logic.pp r)
  | Mt (dimp, dnq) -> (
    match eval ab dimp with
    | Implies (p, q) -> (
      match eval ab dnq with
      | Not q' when alpha_equal q q' -> Not p
      | r -> fail "modus tollens: %a is not ~%a" Logic.pp r Logic.pp q)
    | r -> fail "modus tollens: %a is not an implication" Logic.pp r)
  | Both (d1, d2) -> And (eval ab d1, eval ab d2)
  | Left_and d -> (
    match eval ab d with
    | And (p, _) -> p
    | r -> fail "left-and: %a is not a conjunction" Logic.pp r)
  | Right_and d -> (
    match eval ab d with
    | And (_, q) -> q
    | r -> fail "right-and: %a is not a conjunction" Logic.pp r)
  | Either_left (d, q) -> Or (eval ab d, q)
  | Either_right (p, d) -> Or (p, eval ab d)
  | Cases (dor, dl, dr) -> (
    match eval ab dor with
    | Or (p, q) -> (
      match eval ab dl, eval ab dr with
      | Implies (p', r1), Implies (q', r2)
        when alpha_equal p p' && alpha_equal q q' && alpha_equal r1 r2 ->
        r1
      | r1, r2 ->
        fail "cases: branches %a / %a do not discharge %a" Logic.pp r1
          Logic.pp r2 Logic.pp (Or (p, q)))
    | r -> fail "cases: %a is not a disjunction" Logic.pp r)
  | Absurd (dp, dnp) -> (
    let p = eval ab dp in
    match eval ab dnp with
    | Not p' when alpha_equal p p' -> False
    | r -> fail "absurd: %a is not the negation of %a" Logic.pp r Logic.pp p)
  | From_false (dfalse, p) -> (
    match eval ab dfalse with
    | False -> p
    | r -> fail "from-false: %a is not false" Logic.pp r)
  | Double_neg d -> (
    match eval ab d with
    | Not (Not p) -> p
    | r -> fail "double-negation: %a is not doubly negated" Logic.pp r)
  | Iff_intro (d1, d2) -> (
    match eval ab d1, eval ab d2 with
    | Implies (p, q), Implies (q', p')
      when alpha_equal p p' && alpha_equal q q' ->
      Iff (p, q)
    | r1, r2 ->
      fail "iff-intro: %a and %a are not converse implications" Logic.pp r1
        Logic.pp r2)
  | Iff_left d -> (
    match eval ab d with
    | Iff (p, q) -> Implies (p, q)
    | r -> fail "iff-left: %a is not an equivalence" Logic.pp r)
  | Iff_right d -> (
    match eval ab d with
    | Iff (p, q) -> Implies (q, p)
    | r -> fail "iff-right: %a is not an equivalence" Logic.pp r)
  | Refl t -> Eq (t, t)
  | Sym d -> (
    match eval ab d with
    | Eq (a, b) -> Eq (b, a)
    | r -> fail "symmetry: %a is not an equation" Logic.pp r)
  | Trans (d1, d2) -> (
    match eval ab d1, eval ab d2 with
    | Eq (a, b), Eq (b', c) when term_equal b b' -> Eq (a, c)
    | r1, r2 ->
      fail "transitivity: %a and %a do not chain" Logic.pp r1 Logic.pp r2)
  | Congruence (f, ds) ->
    let eqs =
      List.map
        (fun d ->
          match eval ab d with
          | Eq (a, b) -> (a, b)
          | r -> fail "congruence: %a is not an equation" Logic.pp r)
        ds
    in
    Eq (App (f, List.map fst eqs), App (f, List.map snd eqs))
  | Leibniz (deq, x, pattern, dprem) -> (
    match eval ab deq with
    | Eq (a, b) ->
      let expected = subst [ (x, a) ] pattern in
      let actual = eval ab dprem in
      if alpha_equal expected actual then subst [ (x, b) ] pattern
      else
        fail "leibniz: premise %a does not match pattern instance %a"
          Logic.pp actual Logic.pp expected
    | r -> fail "leibniz: %a is not an equation" Logic.pp r)
  | Inst (d, terms) ->
    let rec strip p terms =
      match p, terms with
      | _, [] -> p
      | Forall (x, body), t :: rest -> strip (subst [ (x, t) ] body) rest
      | _, _ -> fail "instantiate: %a is not universally quantified" Logic.pp p
    in
    strip (eval ab d) terms
  | Gen (xs, d) ->
    (* eigenvariable condition: the generalised variables must not occur
       free in any active assumption *)
    List.iter
      (fun x ->
        if List.exists (fun p -> List.mem x (free_vars [] p)) (Ab.to_list ab)
        then
          fail
            "generalize: variable %s occurs free in the assumption base \
             (eigenvariable condition)"
            x)
      xs;
    let q = eval ab d in
    forall_many xs q
  | Seq ds -> (
    let rec go ab last = function
      | [] -> (
        match last with
        | Some p -> p
        | None -> fail "empty deduction sequence")
      | d :: rest ->
        let p = eval ab d in
        go (Ab.insert p ab) (Some p) rest
    in
    go ab None ds)

(* [check ~axioms ~goal d]: run the checker; succeed iff [d] is proper in
   the assumption base [axioms] and proves [goal] (up to alpha). *)
type verdict = Proved | Wrong_conclusion of prop | Improper of string

let check ~axioms ~goal d =
  match eval (Ab.of_list axioms) d with
  | p -> if alpha_equal p goal then Proved else Wrong_conclusion p
  | exception Proof_error msg -> Improper msg

let pp_verdict ppf = function
  | Proved -> Fmt.string ppf "proved"
  | Wrong_conclusion p -> Fmt.pf ppf "proves %a instead of the goal" Logic.pp p
  | Improper msg -> Fmt.pf ppf "improper deduction: %s" msg

(* Size of a deduction (number of inference nodes): the "proof effort"
   measure reported by the amortisation experiment C7. *)
let rec size = function
  | Claim _ | Refl _ -> 1
  | Assume (_, d) | Suppose_absurd (_, d) | Left_and d | Right_and d
  | Either_left (d, _) | Either_right (_, d) | Double_neg d | Sym d
  | Iff_left d | Iff_right d | From_false (d, _) | Inst (d, _) | Gen (_, d)
    ->
    1 + size d
  | Mp (a, b) | Mt (a, b) | Both (a, b) | Absurd (a, b) | Trans (a, b)
  | Iff_intro (a, b) ->
    1 + size a + size b
  | Cases (a, b, c) -> 1 + size a + size b + size c
  | Leibniz (a, _, _, b) -> 1 + size a + size b
  | Congruence (_, ds) | Seq ds -> List.fold_left (fun n d -> n + size d) 1 ds
