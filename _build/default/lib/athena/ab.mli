(** The assumption base: "an associative memory of propositions that
    have been asserted or proved in a proof session ... all proof
    activity centers around it" (paper Section 3.3).

    Membership is up to alpha-equality; the structure is persistent so
    hypothetical reasoning ([Assume]) extends it locally. *)

type t

val empty : t
val mem : Logic.prop -> t -> bool
val insert : Logic.prop -> t -> t
val of_list : Logic.prop list -> t
val assert_all : Logic.prop list -> t -> t
val size : t -> int
val to_list : t -> Logic.prop list
val pp : Format.formatter -> t -> unit
