(** Deductions and their checker (the Denotational Proof Language core).

    "Like expressions, deductions are executed. Proper deductions ...
    produce theorems; improper deductions result in an error condition."

    [eval ab d] executes [d] against assumption base [ab], returning the
    proposition it proves or raising {!Proof_error}. Soundness is by
    construction: every constructor checks its side conditions and
    evaluates sub-deductions recursively. First-class {e methods} are
    plain OCaml functions returning deductions. *)

exception Proof_error of string

type t =
  | Claim of Logic.prop  (** [p], if [p] is in the assumption base *)
  | Assume of Logic.prop * t  (** hypothetical: yields [p ==> q] *)
  | Suppose_absurd of Logic.prop * t
      (** body must prove [False]; yields [~p] *)
  | Mp of t * t  (** modus ponens *)
  | Mt of t * t  (** modus tollens *)
  | Both of t * t  (** and-introduction *)
  | Left_and of t
  | Right_and of t
  | Either_left of t * Logic.prop  (** or-introduction, left operand proved *)
  | Either_right of Logic.prop * t
  | Cases of t * t * t  (** or-elimination *)
  | Absurd of t * t  (** from [p] and [~p] derive [False] *)
  | From_false of t * Logic.prop  (** ex falso *)
  | Double_neg of t
  | Iff_intro of t * t
  | Iff_left of t
  | Iff_right of t
  | Refl of Logic.term  (** [t = t] *)
  | Sym of t
  | Trans of t * t
  | Congruence of string * t list
      (** from [ai = bi] derive [f(a..) = f(b..)] *)
  | Leibniz of t * string * Logic.prop * t
      (** [Leibniz (eq, x, pattern, d)]: [eq] proves [a = b], [d] proves
          [pattern[x:=a]]; derive [pattern[x:=b]] *)
  | Inst of t * Logic.term list  (** universal elimination *)
  | Gen of string list * t
      (** universal introduction; the generalised variables must not
          occur free in the assumption base (eigenvariable condition) *)
  | Seq of t list
      (** evaluate in order, each result added to the base; value = last *)

val eval : Ab.t -> t -> Logic.prop
(** Execute (check) a deduction. Raises {!Proof_error} on any improper
    step. *)

type verdict = Proved | Wrong_conclusion of Logic.prop | Improper of string

val check : axioms:Logic.prop list -> goal:Logic.prop -> t -> verdict
(** Run the checker from the given axioms; [Proved] iff the deduction is
    proper and proves [goal] up to alpha-equality. *)

val pp_verdict : Format.formatter -> verdict -> unit

val size : t -> int
(** Number of inference nodes — the proof-effort measure of
    experiment C7. *)
