(** Generic proofs: written once, checked against any operator mapping.

    Each theorem is (goal, deduction); the deduction is {e checked},
    never searched for. Instantiating the mapping reuses the identical
    proof skeleton per model — experiment C7's amortisation. *)

type theorem = {
  goal : Logic.prop;
  proof : Deduction.t;
  thm_name : string;
}

val verify : axioms:Theory.axiom list -> theorem -> Deduction.verdict

val trans_chain : Deduction.t list -> Deduction.t
(** Fold equation deductions a=b, b=c, ... into a=z. *)

(** {2 Fig. 6: Strict Weak Order} *)

val swo_e_reflexive : lt:string -> theorem
(** E is reflexive — derived from irreflexivity, as the Fig. 6 caption
    states. *)

val swo_e_symmetric : lt:string -> theorem
val swo_e_transitive : lt:string -> theorem

val swo_asymmetric : lt:string -> theorem
(** [a < b ==> ~(b < a)], via suppose-absurd from transitivity and
    irreflexivity. *)

(** {2 Monoid and group theorems} *)

val monoid_right_identity : Theory.mapping -> theorem
val monoid_identity_unique : Theory.mapping -> theorem

val group_right_inverse : Theory.mapping -> theorem
(** The classic equational derivation of [forall x. op(x, inv x) = e]
    from the minimal presentation — certifying the Fig. 5 Group rule
    from first principles. *)

val group_right_identity : Theory.mapping -> theorem
val group_double_inverse : Theory.mapping -> theorem

val group_left_cancellation : Theory.mapping -> theorem
(** [a+b = a+c ==> b = c] from the minimal presentation. *)

(** {2 Ring theorems} *)

val ring_mul_zero : Theory.ring_mapping -> theorem
(** [forall x. x*0 = 0] via distributivity and additive cancellation —
    certifying the Ring rewrite rule. *)

val ring_zero_mul : Theory.ring_mapping -> theorem

(** {2 Order-theory morphisms}

    The strict part lt(x,y) := leq(x,y) /\ ~leq(y,x) of a total order is
    a Strict Weak Order: each Fig. 6 axiom, with lt expanded, derived
    from the total-order axioms. Connects the ordering-concepts taxonomy
    (partial / strict weak / total) by checked proof. *)

val strict : leq:string -> Logic.term -> Logic.term -> Logic.prop
(** The strict-part formula. *)

val strict_irreflexive : leq:string -> theorem
val strict_transitive : leq:string -> theorem

val strict_equiv_transitive : leq:string -> theorem
(** Needs totality — incomparability is not transitive in mere partial
    orders. *)

(** {2 Instantiation driver} *)

val check_for_instances :
  theorem:(Theory.mapping -> theorem) ->
  axioms:(Theory.mapping -> Theory.axiom list) ->
  Theory.mapping list ->
  (string * Deduction.verdict) list
(** Check one generic theorem across many instance mappings. *)
