(* Generic proofs.

   "Proofs can themselves be generic components: one can express a proof
   once and subsequently instantiate it many times to prove more specific
   cases, in much the same way as one does with generic algorithms."

   Every theorem here is a function from an operator mapping (or relation
   symbol) to a pair (deduction, goal). The deduction is *checked* — never
   searched for — against the theory's axioms; instantiating the mapping
   re-uses the identical proof skeleton for every model, which experiment
   C7 measures (write/check once, instantiate N times). *)

open Logic
open Deduction

type theorem = { goal : prop; proof : Deduction.t; thm_name : string }

let verify ~axioms thm =
  Deduction.check ~axioms:(Theory.props axioms) ~goal:thm.goal thm.proof

(* Fold a list of equation deductions a=b, b=c, ... into one a=z. *)
let trans_chain = function
  | [] -> invalid_arg "trans_chain: empty"
  | d :: rest -> List.fold_left (fun acc e -> Trans (acc, e)) d rest

(* ------------------------------------------------------------------ *)
(* Strict Weak Order: the Fig. 6 derived theorems                      *)
(* ------------------------------------------------------------------ *)

(* E is reflexive: forall a. ~(a<a) /\ ~(a<a) — derived from
   irreflexivity, as the paper's Fig. 6 caption states. *)
let swo_e_reflexive ~lt =
  let axioms = Theory.strict_weak_order ~lt in
  let irrefl = Claim (Theory.find axioms "irreflexivity") in
  let va = Var "a" in
  {
    thm_name = "SWO: equivalence is reflexive";
    goal = Forall ("a", Theory.equiv lt va va);
    proof = Gen ([ "a" ], Both (Inst (irrefl, [ va ]), Inst (irrefl, [ va ])));
  }

(* E is symmetric: forall a b. E(a,b) ==> E(b,a) — swap the conjuncts. *)
let swo_e_symmetric ~lt =
  let va = Var "a" and vb = Var "b" in
  let eab = Theory.equiv lt va vb in
  {
    thm_name = "SWO: equivalence is symmetric";
    goal = forall_many [ "a"; "b" ] (Implies (eab, Theory.equiv lt vb va));
    proof =
      Gen
        ( [ "a"; "b" ],
          Assume (eab, Both (Right_and (Claim eab), Left_and (Claim eab))) );
  }

(* E transitivity restated as a checked theorem (it is an axiom; the claim
   is still run through the checker, which verifies it is in the base). *)
let swo_e_transitive ~lt =
  let axioms = Theory.strict_weak_order ~lt in
  let p = Theory.find axioms "equivalence_transitivity" in
  { thm_name = "SWO: equivalence is transitive"; goal = p; proof = Claim p }

(* Less-than is asymmetric: forall a b. a<b ==> ~(b<a). From transitivity
   and irreflexivity: if a<b and b<a then a<a, contradiction. *)
let swo_asymmetric ~lt =
  let axioms = Theory.strict_weak_order ~lt in
  let irrefl = Theory.find axioms "irreflexivity" in
  let trans = Theory.find axioms "transitivity" in
  let va = Var "a" and vb = Var "b" in
  let ab_ = Theory.lt_atom lt va vb and ba = Theory.lt_atom lt vb va in
  let _aa = Theory.lt_atom lt va va in
  {
    thm_name = "SWO: < is asymmetric";
    goal = forall_many [ "a"; "b" ] (Implies (ab_, Not ba));
    proof =
      Gen
        ( [ "a"; "b" ],
          Assume
            ( ab_,
              Suppose_absurd
                ( ba,
                  Absurd
                    ( Mp
                        ( Inst (Claim trans, [ va; vb; va ]),
                          Both (Claim ab_, Claim ba) ),
                      Inst (Claim irrefl, [ va ]) ) ) ) );
  }

(* ------------------------------------------------------------------ *)
(* Monoid theorems                                                     *)
(* ------------------------------------------------------------------ *)

(* The right-identity equation certifying the Fig. 5 rule x + 0 -> x. *)
let monoid_right_identity (m : Theory.mapping) =
  let axioms = Theory.monoid m in
  let p = Theory.find axioms "right_identity" in
  {
    thm_name = Printf.sprintf "Monoid %s: right identity" m.Theory.m_name;
    goal = p;
    proof = Claim p;
  }

(* Identity is unique: any right identity f equals e. *)
let monoid_identity_unique (m : Theory.mapping) =
  let axioms = Theory.monoid m in
  let left_id = Claim (Theory.find axioms "left_identity") in
  let open Theory in
  let vf = Var "f" in
  let e = e_of m in
  let hyp = Forall ("x", Eq (m %. (Var "x", vf), Var "x")) in
  {
    thm_name = Printf.sprintf "Monoid %s: identity unique" m.Theory.m_name;
    goal = Forall ("f", Implies (hyp, Eq (vf, e)));
    proof =
      Gen
        ( [ "f" ],
          Assume
            ( hyp,
              Trans
                ( (* f = op(e, f) *)
                  Sym (Inst (left_id, [ vf ])),
                  (* op(e, f) = e   [hyp at x := e] *)
                  Inst (Claim hyp, [ e ]) ) ) );
  }

(* ------------------------------------------------------------------ *)
(* Group theorems: the classic derivations from the minimal            *)
(* presentation {associativity, left identity, left inverse}           *)
(* ------------------------------------------------------------------ *)

(* forall x. op(x, inv x) = e — certifies the Fig. 5 rule
   x + (-x) -> 0 from first principles rather than by assertion. *)
let group_right_inverse (m : Theory.mapping) =
  let axioms = Theory.group_minimal m in
  let assoc = Claim (Theory.find axioms "associativity") in
  let left_id = Claim (Theory.find axioms "left_identity") in
  let left_inv = Claim (Theory.find axioms "left_inverse") in
  let open Theory in
  let x = Var "x" in
  let y = inv_of m x in
  let iy = inv_of m y in
  let xy = m %. (x, y) in
  let e = e_of m in
  let steps =
    [
      (* xy = e . xy *)
      Sym (Inst (left_id, [ xy ]));
      (* e . xy = (inv y . y) . xy *)
      Congruence (m.Theory.op, [ Sym (Inst (left_inv, [ y ])); Refl xy ]);
      (* (inv y . y) . xy = inv y . (y . xy) *)
      Inst (assoc, [ iy; y; xy ]);
      (* inv y . (y . xy) = inv y . ((y . x) . y) *)
      Congruence (m.Theory.op, [ Refl iy; Sym (Inst (assoc, [ y; x; y ])) ]);
      (* inv y . ((y . x) . y) = inv y . (e . y)   [y.x = inv x . x = e] *)
      Congruence
        ( m.Theory.op,
          [
            Refl iy;
            Congruence (m.Theory.op, [ Inst (left_inv, [ x ]); Refl y ]);
          ] );
      (* inv y . (e . y) = inv y . y *)
      Congruence (m.Theory.op, [ Refl iy; Inst (left_id, [ y ]) ]);
      (* inv y . y = e *)
      Inst (left_inv, [ y ]);
    ]
  in
  {
    thm_name = Printf.sprintf "Group %s: right inverse" m.Theory.m_name;
    goal = Forall ("x", Eq (m %. (x, y), e));
    proof = Gen ([ "x" ], trans_chain steps);
  }

(* forall x. op(x, e) = x — right identity from the minimal presentation,
   via the right-inverse theorem (proved inline and added to the base by
   the Seq). *)
let group_right_identity (m : Theory.mapping) =
  let axioms = Theory.group_minimal m in
  let assoc = Claim (Theory.find axioms "associativity") in
  let left_id = Claim (Theory.find axioms "left_identity") in
  let left_inv = Claim (Theory.find axioms "left_inverse") in
  let ri = group_right_inverse m in
  let open Theory in
  let x = Var "x" in
  let y = inv_of m x in
  let e = e_of m in
  let steps =
    [
      (* x . e = x . (y . x)   [e = inv x . x] *)
      Congruence (m.Theory.op, [ Refl x; Sym (Inst (left_inv, [ x ])) ]);
      (* x . (y . x) = (x . y) . x *)
      Sym (Inst (assoc, [ x; y; x ]));
      (* (x . y) . x = e . x   [x . inv x = e by the right-inverse thm] *)
      Congruence (m.Theory.op, [ Inst (Claim ri.goal, [ x ]); Refl x ]);
      (* e . x = x *)
      Inst (left_id, [ x ]);
    ]
  in
  {
    thm_name = Printf.sprintf "Group %s: right identity" m.Theory.m_name;
    goal = Forall ("x", Eq (m %. (x, e), x));
    proof = Seq [ ri.proof; Gen ([ "x" ], trans_chain steps) ];
  }

(* forall x. inv (inv x) = x — double inverse, a further exercise of the
   equational machinery. inv(inv x) = inv(inv x) . e = inv(inv x) . (inv x
   . x) = (inv(inv x) . inv x) . x = e . x = x. Uses the right-identity
   theorem. *)
let group_double_inverse (m : Theory.mapping) =
  let axioms = Theory.group_minimal m in
  let assoc = Claim (Theory.find axioms "associativity") in
  let left_id = Claim (Theory.find axioms "left_identity") in
  let left_inv = Claim (Theory.find axioms "left_inverse") in
  let rid = group_right_identity m in
  let open Theory in
  let x = Var "x" in
  let y = inv_of m x in
  let iy = inv_of m y in

  let steps =
    [
      (* inv(inv x) = inv(inv x) . e   [Sym of right identity] *)
      Sym (Inst (Claim rid.goal, [ iy ]));
      (* inv(inv x) . e = inv(inv x) . (inv x . x) *)
      Congruence (m.Theory.op, [ Refl iy; Sym (Inst (left_inv, [ x ])) ]);
      (* inv(inv x) . (inv x . x) = (inv(inv x) . inv x) . x *)
      Sym (Inst (assoc, [ iy; y; x ]));
      (* (inv(inv x) . inv x) . x = e . x *)
      Congruence (m.Theory.op, [ Inst (left_inv, [ y ]); Refl x ]);
      (* e . x = x *)
      Inst (left_id, [ x ]);
    ]
  in
  {
    thm_name = Printf.sprintf "Group %s: double inverse" m.Theory.m_name;
    goal = Forall ("x", Eq (iy, x));
    proof = Seq [ rid.proof; Gen ([ "x" ], trans_chain steps) ];
  }

(* forall a b c. a+b = a+c ==> b = c — left cancellation in a group,
   from the minimal presentation. The workhorse for the ring annihilation
   theorem below. *)
let group_left_cancellation (m : Theory.mapping) =
  let axioms = Theory.group_minimal m in
  let assoc = Claim (Theory.find axioms "associativity") in
  let left_id = Claim (Theory.find axioms "left_identity") in
  let left_inv = Claim (Theory.find axioms "left_inverse") in
  let open Theory in
  let va = Var "a" and vb = Var "b" and vc = Var "c" in
  let ia = inv_of m va in
  let hyp = Eq (m %. (va, vb), m %. (va, vc)) in
  let steps =
    [
      (* b = e . b *)
      Sym (Inst (left_id, [ vb ]));
      (* e . b = (inv a . a) . b *)
      Congruence (m.Theory.op, [ Sym (Inst (left_inv, [ va ])); Refl vb ]);
      (* (inv a . a) . b = inv a . (a . b) *)
      Inst (assoc, [ ia; va; vb ]);
      (* inv a . (a . b) = inv a . (a . c)   [the hypothesis] *)
      Congruence (m.Theory.op, [ Refl ia; Claim hyp ]);
      (* inv a . (a . c) = (inv a . a) . c *)
      Sym (Inst (assoc, [ ia; va; vc ]));
      (* (inv a . a) . c = e . c *)
      Congruence (m.Theory.op, [ Inst (left_inv, [ va ]); Refl vc ]);
      (* e . c = c *)
      Inst (left_id, [ vc ]);
    ]
  in
  {
    thm_name = Printf.sprintf "Group %s: left cancellation" m.Theory.m_name;
    goal = forall_many [ "a"; "b"; "c" ] (Implies (hyp, Eq (vb, vc)));
    proof = Gen ([ "a"; "b"; "c" ], Assume (hyp, trans_chain steps));
  }

(* forall x. x * 0 = 0 — multiplication by the additive zero annihilates,
   derived from the ring axioms: x*0 = x*(0+0) = x*0 + x*0, while
   x*0 + 0 = x*0; cancel on the left. Certifies the Ring rewrite rule
   x * 0 -> 0. *)
let ring_mul_zero (rm : Theory.ring_mapping) =
  let axioms = Theory.ring rm in
  let add = rm.Theory.add and mul = rm.Theory.mul in
  let open Theory in
  let x = Var "x" in
  let zero = e_of add in
  let x0 = mul %. (x, zero) in
  (* left cancellation for the additive group, with axiom names prefixed
     by "add_" in the ring theory: restate its proof against the ring's
     axiom set by instantiating the generic proof with the add mapping —
     but the ring's assumption base uses the very same propositions, so
     the claims resolve. *)
  let cancel = group_left_cancellation add in
  let add_right_id = Claim (Theory.find axioms "add_right_identity") in
  let add_left_id = Claim (Theory.find axioms "add_left_identity") in
  let ldistrib = Claim (Theory.find axioms "left_distributivity") in
  (* premise: x0 + x0 = x0 + 0 *)
  let premise =
    Trans
      ( Sym
          (trans_chain
             [
               (* x0 = x * (0 + 0) *)
               Congruence
                 (mul.Theory.op, [ Refl x; Sym (Inst (add_left_id, [ zero ])) ]);
               (* x * (0+0) = x*0 + x*0 *)
               Inst (ldistrib, [ x; zero; zero ]);
             ]),
        (* x0 = x0 + 0 *)
        Sym (Inst (add_right_id, [ x0 ])) )
  in
  {
    thm_name =
      Printf.sprintf "Ring %s: multiplication by zero annihilates"
        rm.Theory.r_name;
    goal = Forall ("x", Eq (x0, zero));
    proof =
      Seq
        [
          cancel.proof;
          Gen
            ( [ "x" ],
              Mp (Inst (Claim cancel.goal, [ x0; x0; zero ]), premise) );
        ];
  }

(* forall x. 0 * x = 0 — the mirror, via right distributivity. *)
let ring_zero_mul (rm : Theory.ring_mapping) =
  let axioms = Theory.ring rm in
  let add = rm.Theory.add and mul = rm.Theory.mul in
  let open Theory in
  let x = Var "x" in
  let zero = e_of add in
  let zx = mul %. (zero, x) in
  let cancel = group_left_cancellation add in
  let add_right_id = Claim (Theory.find axioms "add_right_identity") in
  let add_left_id = Claim (Theory.find axioms "add_left_identity") in
  let rdistrib = Claim (Theory.find axioms "right_distributivity") in
  let premise =
    Trans
      ( Sym
          (trans_chain
             [
               Congruence
                 (mul.Theory.op, [ Sym (Inst (add_left_id, [ zero ])); Refl x ]);
               Inst (rdistrib, [ zero; zero; x ]);
             ]),
        Sym (Inst (add_right_id, [ zx ])) )
  in
  {
    thm_name =
      Printf.sprintf "Ring %s: zero times anything is zero" rm.Theory.r_name;
    goal = Forall ("x", Eq (zx, zero));
    proof =
      Seq
        [
          cancel.proof;
          Gen
            ( [ "x" ],
              Mp (Inst (Claim cancel.goal, [ zx; zx; zero ]), premise) );
        ];
  }

(* ------------------------------------------------------------------ *)
(* Order-theory morphisms: the strict part of a total order is a       *)
(* Strict Weak Order. The paper's ordering-concepts taxonomy (partial, *)
(* strict weak, total) connected by checked derivations: each SWO      *)
(* axiom, with lt(x,y) expanded to leq(x,y) /\ ~leq(y,x), is proved    *)
(* from the total-order axioms.                                        *)
(* ------------------------------------------------------------------ *)

let strict ~leq x y = And (Theory.lt_atom leq x y, Not (Theory.lt_atom leq y x))

(* ~(leq(a,a) /\ ~leq(a,a)) — a propositional tautology by absurdity. *)
let strict_irreflexive ~leq =
  let va = Var "a" in
  let ltaa = strict ~leq va va in
  {
    thm_name = "TotalOrder: strict part is irreflexive";
    goal = Forall ("a", Not ltaa);
    proof =
      Gen
        ( [ "a" ],
          Suppose_absurd
            (ltaa, Absurd (Left_and (Claim ltaa), Right_and (Claim ltaa))) );
  }

(* Transitivity of the strict part, from leq-transitivity alone. *)
let strict_transitive ~leq =
  let axioms = Theory.partial_order ~leq in
  let trans = Claim (Theory.find axioms "transitivity") in
  let le x y = Theory.lt_atom leq x y in
  let va = Var "a" and vb = Var "b" and vc = Var "c" in
  let ltab = strict ~leq va vb and ltbc = strict ~leq vb vc in
  let hyp = And (ltab, ltbc) in
  {
    thm_name = "TotalOrder: strict part is transitive";
    goal =
      forall_many [ "a"; "b"; "c" ] (Implies (hyp, strict ~leq va vc));
    proof =
      Gen
        ( [ "a"; "b"; "c" ],
          Assume
            ( hyp,
              Both
                ( (* leq a c *)
                  Mp
                    ( Inst (trans, [ va; vb; vc ]),
                      Both
                        ( Left_and (Left_and (Claim hyp)),
                          Left_and (Right_and (Claim hyp)) ) ),
                  (* ~leq c a: supposing it, leq b c and leq c a give
                     leq b a, contradicting ~leq b a from lt(a,b) *)
                  Suppose_absurd
                    ( le vc va,
                      Absurd
                        ( Mp
                            ( Inst (trans, [ vb; vc; va ]),
                              Both
                                ( Left_and (Right_and (Claim hyp)),
                                  Claim (le vc va) ) ),
                          Right_and (Left_and (Claim hyp)) ) ) ) ) );
  }

(* From E(x,y) (neither strictly less) and totality, both leq(x,y) and
   leq(y,x) hold — the lemma behind equivalence transitivity. *)
let equiv_means_both_leq ~leq x y exy_ded =
  let axioms = Theory.total_order ~leq in
  let totality = Claim (Theory.find axioms "totality") in
  let le a b = Theory.lt_atom leq a b in
  (* case leq x y: ~lt(x,y) means leq y x cannot fail *)
  let from_xy =
    Assume
      ( le x y,
        Both
          ( Claim (le x y),
            Double_neg
              (Suppose_absurd
                 ( Not (le y x),
                   Absurd
                     ( Both (Claim (le x y), Claim (Not (le y x))),
                       Left_and exy_ded ) )) ) )
  in
  (* case leq y x: symmetric, via ~lt(y,x) *)
  let from_yx =
    Assume
      ( le y x,
        Both
          ( Double_neg
              (Suppose_absurd
                 ( Not (le x y),
                   Absurd
                     ( Both (Claim (le y x), Claim (Not (le x y))),
                       Right_and exy_ded ) )),
            Claim (le y x) ) )
  in
  Cases (Inst (totality, [ x; y ]), from_xy, from_yx)

(* Transitivity of the induced equivalence: for TOTAL orders (it fails
   for mere partial orders, where incomparability is not transitive). *)
let strict_equiv_transitive ~leq =
  let axioms = Theory.total_order ~leq in
  let trans = Claim (Theory.find axioms "transitivity") in
  let le a b = Theory.lt_atom leq a b in
  let va = Var "a" and vb = Var "b" and vc = Var "c" in
  let e x y = And (Not (strict ~leq x y), Not (strict ~leq y x)) in
  let hyp = And (e va vb, e vb vc) in
  (* with all four leq facts in the base, refute lt(a,c) and lt(c,a) *)
  let no_strict x y leq_yx =
    (* ~lt(x,y) given leq(y,x) *)
    Suppose_absurd
      ( strict ~leq x y,
        Absurd (leq_yx, Right_and (Claim (strict ~leq x y))) )
  in
  {
    thm_name = "TotalOrder: induced equivalence is transitive";
    goal = forall_many [ "a"; "b"; "c" ] (Implies (hyp, e va vc));
    proof =
      Gen
        ( [ "a"; "b"; "c" ],
          Assume
            ( hyp,
              Seq
                [
                  (* unpack both equivalences into leq pairs *)
                  equiv_means_both_leq ~leq va vb (Left_and (Claim hyp));
                  equiv_means_both_leq ~leq vb vc (Right_and (Claim hyp));
                  (* chain to leq a c and leq c a *)
                  Mp
                    ( Inst (trans, [ va; vb; vc ]),
                      Both
                        ( Left_and (Claim (And (le va vb, le vb va))),
                          Left_and (Claim (And (le vb vc, le vc vb))) ) );
                  Mp
                    ( Inst (trans, [ vc; vb; va ]),
                      Both
                        ( Right_and (Claim (And (le vb vc, le vc vb))),
                          Right_and (Claim (And (le va vb, le vb va))) ) );
                  Both
                    ( no_strict va vc (Claim (le vc va)),
                      no_strict vc va (Claim (le va vc)) );
                ] ) );
  }

(* ------------------------------------------------------------------ *)
(* Instantiation driver                                                 *)
(* ------------------------------------------------------------------ *)

(* Check one generic theorem across many instance mappings — the
   amortisation pattern of Section 3.3: the deduction is built by the same
   function every time; only the operator mapping changes. *)
let check_for_instances ~theorem ~axioms instances =
  List.map
    (fun m ->
      let thm = theorem m in
      (Theory.map_name m, verify ~axioms:(axioms m) thm))
    instances
