(* First-order logic with equality: the proposition language of the proof
   checker (Section 3.3).

   Terms are variables and applications of function symbols; propositions
   are atoms (predicate applications), equality, the usual connectives, and
   quantifiers. Substitution is capture-avoiding; assumption-base
   membership uses alpha-equality so bound-variable names never matter. *)

type term =
  | Var of string
  | App of string * term list (* nullary App = constant *)

type prop =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of prop
  | And of prop * prop
  | Or of prop * prop
  | Implies of prop * prop
  | Iff of prop * prop
  | Forall of string * prop
  | Exists of string * prop

let const c = App (c, [])

(* ------------------------------------------------------------------ *)
(* Term operations                                                     *)
(* ------------------------------------------------------------------ *)

let rec term_equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | App (f, xs), App (g, ys) ->
    String.equal f g
    && List.length xs = List.length ys
    && List.for_all2 term_equal xs ys
  | (Var _ | App _), _ -> false

let rec term_vars acc = function
  | Var x -> if List.mem x acc then acc else x :: acc
  | App (_, args) -> List.fold_left term_vars acc args

let rec term_subst env = function
  | Var x -> (match List.assoc_opt x env with Some t -> t | None -> Var x)
  | App (f, args) -> App (f, List.map (term_subst env) args)

(* ------------------------------------------------------------------ *)
(* Prop operations                                                     *)
(* ------------------------------------------------------------------ *)

let rec free_vars acc = function
  | True | False -> acc
  | Atom (_, args) -> List.fold_left term_vars acc args
  | Eq (a, b) -> term_vars (term_vars acc a) b
  | Not p -> free_vars acc p
  | And (p, q) | Or (p, q) | Implies (p, q) | Iff (p, q) ->
    free_vars (free_vars acc p) q
  | Forall (x, p) | Exists (x, p) ->
    let inner = free_vars [] p in
    List.fold_left
      (fun acc v -> if v = x || List.mem v acc then acc else v :: acc)
      acc inner

let fresh_counter = ref 0

let fresh_var base =
  incr fresh_counter;
  Printf.sprintf "%s'%d" base !fresh_counter

(* Capture-avoiding substitution of terms for free variables. *)
let rec subst env p =
  match p with
  | True | False -> p
  | Atom (r, args) -> Atom (r, List.map (term_subst env) args)
  | Eq (a, b) -> Eq (term_subst env a, term_subst env b)
  | Not q -> Not (subst env q)
  | And (a, b) -> And (subst env a, subst env b)
  | Or (a, b) -> Or (subst env a, subst env b)
  | Implies (a, b) -> Implies (subst env a, subst env b)
  | Iff (a, b) -> Iff (subst env a, subst env b)
  | Forall (x, body) -> subst_binder env x body (fun x b -> Forall (x, b))
  | Exists (x, body) -> subst_binder env x body (fun x b -> Exists (x, b))

and subst_binder env x body rebuild =
  let env = List.remove_assoc x env in
  if env = [] then rebuild x body
  else
    let clashes =
      List.exists (fun (_, t) -> List.mem x (term_vars [] t)) env
    in
    if clashes then begin
      let x' = fresh_var x in
      let body' = subst [ (x, Var x') ] body in
      rebuild x' (subst env body')
    end
    else rebuild x (subst env body)

(* Alpha-equality: rename binders to canonical de Bruijn-style names. *)
let alpha_equal p q =
  let rec norm depth env p =
    match p with
    | True | False -> p
    | Atom (r, args) -> Atom (r, List.map (term_subst env) args)
    | Eq (a, b) -> Eq (term_subst env a, term_subst env b)
    | Not a -> Not (norm depth env a)
    | And (a, b) -> And (norm depth env a, norm depth env b)
    | Or (a, b) -> Or (norm depth env a, norm depth env b)
    | Implies (a, b) -> Implies (norm depth env a, norm depth env b)
    | Iff (a, b) -> Iff (norm depth env a, norm depth env b)
    | Forall (x, body) ->
      let canon = Printf.sprintf "_%d" depth in
      Forall (canon, norm (depth + 1) ((x, Var canon) :: env) body)
    | Exists (x, body) ->
      let canon = Printf.sprintf "_%d" depth in
      Exists (canon, norm (depth + 1) ((x, Var canon) :: env) body)
  in
  norm 0 [] p = norm 0 [] q

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_term ppf = function
  | Var x -> Fmt.string ppf x
  | App (f, []) -> Fmt.string ppf f
  | App (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_term) args

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (r, []) -> Fmt.string ppf r
  | Atom (r, args) -> Fmt.pf ppf "%s(%a)" r Fmt.(list ~sep:comma pp_term) args
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" pp_term a pp_term b
  | Not p -> Fmt.pf ppf "~%a" pp_atomic p
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp a pp b
  | Implies (a, b) -> Fmt.pf ppf "(%a ==> %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(%a <=> %a)" pp a pp b
  | Forall (x, p) -> Fmt.pf ppf "(forall %s. %a)" x pp p
  | Exists (x, p) -> Fmt.pf ppf "(exists %s. %a)" x pp p

and pp_atomic ppf p =
  match p with
  | True | False | Atom _ | Eq _ | Not _ -> pp ppf p
  | _ -> Fmt.pf ppf "(%a)" pp p

let to_string p = Fmt.str "%a" pp p

(* Convenience constructors. *)
let forall_many vars body =
  List.fold_right (fun x p -> Forall (x, p)) vars body

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun a b -> And (a, b)) p rest
