lib/athena/theorems.mli: Deduction Logic Theory
