lib/athena/ab.ml: Fmt List Logic
