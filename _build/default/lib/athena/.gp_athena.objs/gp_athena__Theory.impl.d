lib/athena/theory.ml: List Logic
