lib/athena/deduction.ml: Ab Fmt List Logic
