lib/athena/ab.mli: Format Logic
