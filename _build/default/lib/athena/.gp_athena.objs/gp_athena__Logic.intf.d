lib/athena/logic.mli: Format
