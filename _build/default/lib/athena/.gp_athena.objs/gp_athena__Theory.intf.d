lib/athena/theory.mli: Logic
