lib/athena/logic.ml: Fmt List Printf String
