lib/athena/theorems.ml: Deduction List Logic Printf Theory
