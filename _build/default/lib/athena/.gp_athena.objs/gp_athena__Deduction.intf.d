lib/athena/deduction.mli: Ab Format Logic
