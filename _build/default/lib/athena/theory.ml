(* Theories as first-class values parameterised by operator mappings.

   "We simulate type-parameterization simply by parameterizing functions
   and methods by functions that carry operator mappings." A theory is a
   function from a mapping (which concrete function symbols play the roles
   of op, e, inverse, <, ...) to a named axiom list. Instantiating the same
   theory for (int,+,0,-), (rational,*,1,inv) or (matrix,.,I,inverse) is
   just calling the function with a different mapping — the proof-level
   analogue of instantiating a generic algorithm. *)

open Logic

type mapping = {
  m_name : string; (* instance label, e.g. "int[+]" *)
  op : string; (* binary operation symbol *)
  e : string; (* identity constant symbol *)
  inv : string; (* inverse function symbol *)
}

let map_name m = m.m_name

(* term builders under a mapping *)
let ( %. ) m (a, b) = App (m.op, [ a; b ])
let e_of m = const m.e
let inv_of m t = App (m.inv, [ t ])

let a = Var "a"
let b = Var "b"
let c = Var "c"

type axiom = { ax_name : string; ax_prop : prop }

let axiom ax_name ax_prop = { ax_name; ax_prop }
let props axs = List.map (fun ax -> ax.ax_prop) axs
let find axs name =
  match List.find_opt (fun ax -> ax.ax_name = name) axs with
  | Some ax -> ax.ax_prop
  | None -> invalid_arg ("Theory.find: no axiom " ^ name)

(* ------------------------------------------------------------------ *)
(* Algebraic theories                                                  *)
(* ------------------------------------------------------------------ *)

let semigroup m =
  [
    axiom "associativity"
      (forall_many [ "a"; "b"; "c" ]
         (Eq (m %. (m %. (a, b), c), m %. (a, m %. (b, c)))));
  ]

let monoid m =
  semigroup m
  @ [
      axiom "left_identity" (Forall ("a", Eq (m %. (e_of m, a), a)));
      axiom "right_identity" (Forall ("a", Eq (m %. (a, e_of m), a)));
    ]

(* The *minimal* group presentation: associativity, left identity, left
   inverse. Right identity and right inverse are theorems — derived
   generically in {!Theorems}, which is how the checker certifies the
   Fig. 5 Group rewrite rule from first principles. *)
let group_minimal m =
  semigroup m
  @ [
      axiom "left_identity" (Forall ("a", Eq (m %. (e_of m, a), a)));
      axiom "left_inverse" (Forall ("a", Eq (m %. (inv_of m a, a), e_of m)));
    ]

let group m =
  group_minimal m
  @ [
      axiom "right_identity" (Forall ("a", Eq (m %. (a, e_of m), a)));
      axiom "right_inverse" (Forall ("a", Eq (m %. (a, inv_of m a), e_of m)));
    ]

let abelian_group m =
  group m
  @ [ axiom "commutativity" (forall_many [ "a"; "b" ] (Eq (m %. (a, b), m %. (b, a)))) ]

(* ------------------------------------------------------------------ *)
(* Order theories                                                      *)
(* ------------------------------------------------------------------ *)

(* Fig. 6: the Strict Weak Order axioms over a relation symbol [lt].
   E(x,y) := ~lt(x,y) /\ ~lt(y,x) is the induced equivalence. *)
let lt_atom lt x y = Atom (lt, [ x; y ])

let equiv lt x y = And (Not (lt_atom lt x y), Not (lt_atom lt y x))

let strict_weak_order ~lt =
  [
    axiom "irreflexivity" (Forall ("a", Not (lt_atom lt a a)));
    axiom "transitivity"
      (forall_many [ "a"; "b"; "c" ]
         (Implies (And (lt_atom lt a b, lt_atom lt b c), lt_atom lt a c)));
    axiom "equivalence_transitivity"
      (forall_many [ "a"; "b"; "c" ]
         (Implies (And (equiv lt a b, equiv lt b c), equiv lt a c)));
  ]

let partial_order ~leq =
  let le x y = Atom (leq, [ x; y ]) in
  [
    axiom "reflexivity" (Forall ("a", le a a));
    axiom "antisymmetry"
      (forall_many [ "a"; "b" ] (Implies (And (le a b, le b a), Eq (a, b))));
    axiom "transitivity"
      (forall_many [ "a"; "b"; "c" ]
         (Implies (And (le a b, le b c), le a c)));
  ]

let total_order ~leq =
  let le x y = Atom (leq, [ x; y ]) in
  partial_order ~leq
  @ [ axiom "totality" (forall_many [ "a"; "b" ] (Or (le a b, le b a))) ]

(* ------------------------------------------------------------------ *)
(* Two-operation theories                                              *)
(* ------------------------------------------------------------------ *)

type ring_mapping = { r_name : string; add : mapping; mul : mapping }

let ring rm =
  let dress prefix axs =
    List.map (fun ax -> { ax with ax_name = prefix ^ "_" ^ ax.ax_name }) axs
  in
  dress "add" (abelian_group rm.add)
  @ dress "mul" (monoid rm.mul)
  @ [
      axiom "left_distributivity"
        (forall_many [ "a"; "b"; "c" ]
           (Eq
              ( rm.mul %. (a, rm.add %. (b, c)),
                rm.add %. (rm.mul %. (a, b), rm.mul %. (a, c)) )));
      axiom "right_distributivity"
        (forall_many [ "a"; "b"; "c" ]
           (Eq
              ( rm.mul %. (rm.add %. (a, b), c),
                rm.add %. (rm.mul %. (a, c), rm.mul %. (b, c)) )));
    ]

(* ------------------------------------------------------------------ *)
(* Standard instance mappings (the Fig. 5 instances)                   *)
(* ------------------------------------------------------------------ *)

let int_add = { m_name = "int[+]"; op = "int_add"; e = "int_zero"; inv = "int_neg" }
let int_mul = { m_name = "int[*]"; op = "int_mul"; e = "int_one"; inv = "_no_inverse" }
let bool_and = { m_name = "bool[&&]"; op = "bool_and"; e = "bool_true"; inv = "_no_inverse" }
let int_band = { m_name = "int[&]"; op = "int_band"; e = "int_allbits"; inv = "_no_inverse" }
let string_concat = { m_name = "string[^]"; op = "str_concat"; e = "str_empty"; inv = "_no_inverse" }
let float_mul = { m_name = "float[*]"; op = "float_mul"; e = "float_one"; inv = "float_inv" }
let rational_mul = { m_name = "rational[*]"; op = "rat_mul"; e = "rat_one"; inv = "rat_inv" }
let matrix_mul = { m_name = "matrix[.]"; op = "mat_mul"; e = "mat_identity"; inv = "mat_inverse" }

let monoid_instances = [ int_mul; float_mul; bool_and; int_band; string_concat; matrix_mul ]
let group_instances = [ int_add; float_mul; rational_mul; matrix_mul ]
