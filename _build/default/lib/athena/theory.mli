(** Theories as first-class values over operator mappings.

    "We simulate type-parameterization simply by parameterizing functions
    and methods by functions that carry operator mappings." A theory is a
    function from a {!mapping} (which concrete symbols play op, e,
    inverse, <, ...) to named axioms; instantiating the same theory for
    different carriers is just a different mapping — the proof-level
    analogue of instantiating a generic algorithm. *)

type mapping = {
  m_name : string;  (** instance label, e.g. "int[+]" *)
  op : string;
  e : string;
  inv : string;
}

val map_name : mapping -> string

(** {2 Term builders} *)

val ( %. ) : mapping -> Logic.term * Logic.term -> Logic.term
(** [m %. (a, b)] is the application of [m]'s operation. *)

val e_of : mapping -> Logic.term
val inv_of : mapping -> Logic.term -> Logic.term

val a : Logic.term
val b : Logic.term
val c : Logic.term

(** {2 Axioms} *)

type axiom = { ax_name : string; ax_prop : Logic.prop }

val axiom : string -> Logic.prop -> axiom
val props : axiom list -> Logic.prop list
val find : axiom list -> string -> Logic.prop
(** Raises [Invalid_argument] on an unknown axiom name. *)

(** {2 Algebraic theories} *)

val semigroup : mapping -> axiom list
val monoid : mapping -> axiom list

val group_minimal : mapping -> axiom list
(** The minimal presentation {associativity, left identity, left
    inverse}; right identity/inverse are theorems (see
    {!Theorems.group_right_inverse}). *)

val group : mapping -> axiom list
val abelian_group : mapping -> axiom list

(** {2 Order theories} *)

val lt_atom : string -> Logic.term -> Logic.term -> Logic.prop

val equiv : string -> Logic.term -> Logic.term -> Logic.prop
(** The induced equivalence E(x,y) := ~(x<y) /\ ~(y<x) of Fig. 6. *)

val strict_weak_order : lt:string -> axiom list
(** The Fig. 6 axioms: irreflexivity, transitivity, transitivity of E. *)

val partial_order : leq:string -> axiom list
val total_order : leq:string -> axiom list

(** {2 Two-operation theories} *)

type ring_mapping = { r_name : string; add : mapping; mul : mapping }

val ring : ring_mapping -> axiom list

(** {2 Standard instance mappings (the Fig. 5 carriers)} *)

val int_add : mapping
val int_mul : mapping
val bool_and : mapping
val int_band : mapping
val string_concat : mapping
val float_mul : mapping
val rational_mul : mapping
val matrix_mul : mapping

val monoid_instances : mapping list
val group_instances : mapping list
