(* The assumption base: "an associative memory of propositions that have
   been asserted or proved in a proof session. The assumption base is
   fundamental to Athena's approach to deduction; all proof activity
   centers around it."

   Membership is up to alpha-equality. The base is persistent (functional),
   so [Assume] can extend it locally without mutation. *)

type t = { props : Logic.prop list }

let empty = { props = [] }

let mem p t = List.exists (Logic.alpha_equal p) t.props

let insert p t = if mem p t then t else { props = p :: t.props }

let of_list ps = List.fold_left (fun t p -> insert p t) empty ps

let assert_all ps t = List.fold_left (fun t p -> insert p t) t ps

let size t = List.length t.props

let to_list t = List.rev t.props

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Logic.pp) (to_list t)
