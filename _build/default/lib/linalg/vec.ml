(* Dense vectors over a field — the V in the Vector Space concept (Fig. 3).

   The functor is parameterised by the element field; the *scalar* type of
   the vector space is deliberately NOT an associated type of the vector:
   [scale_by] takes the scalar operation as an argument, so the same complex
   vector forms a vector space over the complex scalars AND over the real
   scalars (with the cheaper mixed multiply) — the Section 2.4 point. *)

module Make (F : Gp_algebra.Sigs.FIELD) = struct
  type t = F.t array

  let create n = Array.make n F.zero
  let init = Array.init
  let of_array a = Array.copy a
  let dim = Array.length
  let get = Array.get
  let set = Array.set

  let equal a b = Array.length a = Array.length b && Array.for_all2 F.equal a b

  let check_dims a b =
    if Array.length a <> Array.length b then
      invalid_arg "Vec: dimension mismatch"

  let add a b =
    check_dims a b;
    Array.map2 F.add a b

  let sub a b =
    check_dims a b;
    Array.map2 (fun x y -> F.add x (F.neg y)) a b

  let neg a = Array.map F.neg a
  let scale s a = Array.map (F.mul s) a

  (* Scalar multiplication with an arbitrary scalar type: the generic
     mult(v, s) of the Vector Space concept. *)
  let scale_by (mul_scalar : F.t -> 's -> F.t) (s : 's) a =
    Array.map (fun x -> mul_scalar x s) a

  let dot a b =
    check_dims a b;
    let acc = ref F.zero in
    for k = 0 to Array.length a - 1 do
      acc := F.add !acc (F.mul a.(k) b.(k))
    done;
    !acc

  (* y <- a*x + y, in place. *)
  let axpy ~a x y =
    check_dims x y;
    for k = 0 to Array.length x - 1 do
      y.(k) <- F.add y.(k) (F.mul a x.(k))
    done

  let pp ppf a =
    Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") F.pp) a
end

module Rvec = Make (Gp_algebra.Instances.Float_field)
module Cvec = Make (Complexf.Field)
module Qvec = Make (Gp_algebra.Rational.Field)

(* The two vector-space structures on complex vectors, made explicit:
   over complex scalars (full multiply) and over real scalars (mixed
   multiply, 2x fewer real multiplications). *)
let cvec_scale_complex (s : Complexf.t) (v : Cvec.t) = Cvec.scale s v

let cvec_scale_real (s : float) (v : Cvec.t) =
  Array.map (fun x -> Complexf.mul_real x s) v

(* The promotion-based alternative the paper criticises: convert the real
   scalar to complex, then full complex multiply. Semantically identical,
   operationally 2x the multiplications. *)
let cvec_scale_real_promoted (s : float) (v : Cvec.t) =
  Cvec.scale (Complexf.of_float s) v
