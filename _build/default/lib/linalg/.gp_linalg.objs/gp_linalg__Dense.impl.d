lib/linalg/dense.ml: Array Complexf Float
