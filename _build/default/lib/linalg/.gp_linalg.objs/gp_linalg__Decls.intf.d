lib/linalg/decls.mli: Gp_concepts
