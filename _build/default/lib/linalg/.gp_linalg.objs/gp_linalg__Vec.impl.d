lib/linalg/vec.ml: Array Complexf Fmt Gp_algebra
