lib/linalg/complexf.ml: Float Fmt Gp_algebra
