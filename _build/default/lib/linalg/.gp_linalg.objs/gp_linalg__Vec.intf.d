lib/linalg/vec.mli: Complexf Format Gp_algebra
