lib/linalg/complexf.mli: Format Gp_algebra
