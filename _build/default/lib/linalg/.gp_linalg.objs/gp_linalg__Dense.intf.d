lib/linalg/dense.mli: Complexf
