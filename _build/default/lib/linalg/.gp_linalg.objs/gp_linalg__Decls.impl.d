lib/linalg/decls.ml: Concept Ctype Gp_algebra Gp_concepts List Registry
