(* Complex numbers for the mixed-precision experiments.

   The paper's CLACRM example multiplies a *single-precision complex* matrix
   by a *single-precision real* matrix (Section 2.4). OCaml has no native
   32-bit float arithmetic, so the reproduction uses doubles throughout; the
   complex-times-real vs promote-to-complex operation-count difference —
   the thing the example is about — is unchanged (2 multiplications versus
   4 multiplications + 2 additions per element product). *)

type t = { re : float; im : float }

let make re im = { re; im }
let zero = { re = 0.0; im = 0.0 }
let one = { re = 1.0; im = 0.0 }
let i = { re = 0.0; im = 1.0 }
let re t = t.re
let im t = t.im
let of_float x = { re = x; im = 0.0 }
let conj t = { t with im = -.t.im }
let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }

(* Full complex multiply: 4 real multiplications, 2 additions. *)
let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im);
    im = (a.re *. b.im) +. (a.im *. b.re) }

(* Mixed complex-by-real multiply: 2 real multiplications — the operation
   CLACRM exploits and an associated-type formulation of Vector Space would
   forbid. *)
let mul_real a s = { re = a.re *. s; im = a.im *. s }

let norm2 a = (a.re *. a.re) +. (a.im *. a.im)
let abs a = sqrt (norm2 a)

let inv a =
  let n = norm2 a in
  if n = 0.0 then raise Division_by_zero;
  { re = a.re /. n; im = -.(a.im /. n) }

let div a b = mul a (inv b)
let equal a b = Float.equal a.re b.re && Float.equal a.im b.im
let close ?(eps = 1e-9) a b = Float.abs (a.re -. b.re) < eps && Float.abs (a.im -. b.im) < eps
let pp ppf a = Fmt.pf ppf "(%g%+gi)" a.re a.im

module Field : Gp_algebra.Sigs.FIELD with type t = t = struct
  type nonrec t = t

  let equal = equal
  let pp = pp
  let zero = zero
  let one = one
  let add = add
  let neg = neg
  let mul = mul
  let inv = inv
end
