(** Dense rectangular matrices and the CLACRM mixed-precision kernel
    (Section 2.4).

    [gemm_mixed] multiplies a complex matrix by a real matrix using the
    cheap complex-times-real product (2 real multiply-adds per step);
    [gemm_promoted] is the baseline a scalar-as-associated-type design
    forces (promote, then 4 multiplies + 4 adds per step). Same result,
    half the floating-point work. *)

type cmat
(** Complex matrix, split re/im storage. *)

type rmat
(** Real matrix. *)

val cmat_create : int -> int -> cmat
val rmat_create : int -> int -> rmat
val cmat_init : int -> int -> (int -> int -> Complexf.t) -> cmat
val rmat_init : int -> int -> (int -> int -> float) -> rmat
val cmat_get : cmat -> int -> int -> Complexf.t
val cmat_set : cmat -> int -> int -> Complexf.t -> unit
val rmat_get : rmat -> int -> int -> float
val cmat_close : ?eps:float -> cmat -> cmat -> bool

val gemm_mixed : cmat -> rmat -> cmat
(** The CLACRM kernel. Raises [Invalid_argument] on dimension
    mismatch. *)

val promote : rmat -> cmat
val gemm_complex : cmat -> cmat -> cmat
val gemm_promoted : cmat -> rmat -> cmat

val flops_mixed : m:int -> k:int -> n:int -> int
val flops_promoted : m:int -> k:int -> n:int -> int
(** Analytic operation counts; the promoted/mixed ratio is exactly 2. *)
