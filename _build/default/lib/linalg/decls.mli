(** The Fig. 3 Vector Space concept: genuinely multi-type (V and S are
    both parameters), with BOTH models declared on complex vectors —
    (cvec, complex) and (cvec, real) — which the associated-type
    anti-pattern {!vector_space_assoc} cannot express. Requires the
    algebraic concepts ([Gp_algebra.Decls.declare]) to be present. *)

val vector_space : Gp_concepts.Concept.t
(** Fig. 3: refines AbelianGroup<V> and Field<S>; mult both ways. *)

val vector_space_assoc : Gp_concepts.Concept.t
(** The flawed single-type alternative (scalar as associated type),
    declared so experiments can show what it cannot express. *)

val declare : Gp_concepts.Registry.t -> unit
