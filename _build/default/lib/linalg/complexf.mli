(** Complex numbers for the mixed-precision experiments (Section 2.4).

    The CLACRM point survives the move from C floats to OCaml doubles:
    complex-times-real costs 2 real multiplications
    ({!mul_real}) versus 4 multiplications + 2 additions for the full
    complex product after promotion. *)

type t

val make : float -> float -> t
val zero : t
val one : t
val i : t
val of_float : float -> t

val re : t -> float
val im : t -> float

val conj : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Full complex multiply: 4 real multiplications, 2 additions. *)

val mul_real : t -> float -> t
(** Mixed complex-by-real multiply: 2 real multiplications — the
    operation an associated-type Vector Space formulation would
    forbid. *)

val norm2 : t -> float
val abs : t -> float

val inv : t -> t
(** Raises [Division_by_zero] on zero. *)

val div : t -> t -> t
val equal : t -> t -> bool
val close : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

module Field : Gp_algebra.Sigs.FIELD with type t = t
