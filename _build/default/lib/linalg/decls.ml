(* The Fig. 3 Vector Space concept: a genuinely multi-type concept.

   "Types V and S model the Vector Space concept if, in addition to the
   type S modeling the Field concept and the type V modeling the Additive
   Abelian Group concept, the requirements [mult(v,s) : V, mult(s,v) : V]
   are satisfied."

   Crucially, S is a concept *parameter*, not an associated type of V: the
   same complex-vector type V models VectorSpace with S = complex AND with
   S = real (the CLACRM situation). Both models are declared below, which a
   single-parameter, associated-type formulation cannot express. *)

open Gp_concepts

let v t = Ctype.Var t
let n name = Ctype.Named name

let vector_space =
  Concept.make ~params:[ "V"; "S" ] "VectorSpace" ~doc:"Fig. 3"
    ~refines:
      [ ("AbelianGroup", [ v "V" ]); ("Field", [ v "S" ]) ]
    [
      Concept.signature "mult" [ v "V"; v "S" ] (v "V");
      Concept.signature "mult" [ v "S"; v "V" ] (v "V");
      Concept.axiom "scalar_assoc" ~vars:[ "a"; "b"; "x" ]
        "mult(mult(x,a),b) = mult(x, a*b)";
      Concept.axiom "scalar_distrib" ~vars:[ "a"; "x"; "y" ]
        "mult(x+y, a) = mult(x,a) + mult(y,a)";
      Concept.axiom "vector_distrib" ~vars:[ "a"; "b"; "x" ]
        "mult(x, a+b) = mult(x,a) + mult(x,b)";
      Concept.axiom "unit_scalar" ~vars:[ "x" ] "mult(x, one) = x";
    ]

(* The flawed single-type alternative the paper warns against: scalar as an
   associated type. Declared so the experiments can show what it cannot
   express (two scalar structures on one vector type). *)
let vector_space_assoc =
  Concept.make ~params:[ "V" ] "VectorSpaceAssocScalar"
    ~refines:[ ("AbelianGroup", [ v "V" ]) ]
    ~doc:"anti-pattern: scalar as associated type (Section 2.4)"
    [
      Concept.assoc_type "scalar"
        ~constraints:[ Concept.Models ("Field", [ Ctype.Assoc (v "V", "scalar") ]) ];
      Concept.signature "mult" [ v "V"; Ctype.Assoc (v "V", "scalar") ] (v "V");
    ]

(* Declare the linear-algebra world into [reg]. Requires the algebraic
   concepts (Gp_algebra.Decls.declare) to be present already. *)
let declare reg =
  Registry.declare_concept reg vector_space;
  Registry.declare_concept reg vector_space_assoc;
  (* element types: carriers for the vector (abelian group under +) and the
     two scalar fields *)
  List.iter
    (fun name ->
      match Registry.find_type reg name with
      | None -> Registry.declare_type reg name
      | Some _ -> ())
    [ "cvec"; "complex"; "real" ];
  (* cvec is an additive abelian group *)
  Registry.declare_op reg "op" [ n "cvec"; n "cvec" ] (n "cvec");
  Registry.declare_op reg "id" [] (n "cvec");
  Registry.declare_op reg "inverse" [ n "cvec" ] (n "cvec");
  List.iter
    (fun c ->
      Registry.declare_model reg c [ n "cvec" ]
        ~axioms:(Gp_algebra.Decls.axioms_of_chain c))
    [ "Semigroup"; "Monoid"; "Group"; "AbelianGroup" ];
  (* complex and real are fields *)
  List.iter
    (fun s ->
      Registry.declare_op reg "add" [ n s; n s ] (n s);
      Registry.declare_op reg "neg" [ n s ] (n s);
      Registry.declare_op reg "zero" [] (n s);
      Registry.declare_op reg "mul" [ n s; n s ] (n s);
      Registry.declare_op reg "one" [] (n s);
      Registry.declare_op reg "inv" [ n s ] (n s);
      Registry.declare_model reg "Ring" [ n s ]
        ~axioms:[ "left_distributivity"; "right_distributivity" ];
      Registry.declare_model reg "Field" [ n s ]
        ~axioms:[ "mul_commutativity"; "mul_inverse" ])
    [ "complex"; "real" ];
  (* the two scalar multiplications on cvec *)
  List.iter
    (fun s ->
      Registry.declare_op reg "mult" [ n "cvec"; n s ] (n "cvec");
      Registry.declare_op reg "mult" [ n s; n "cvec" ] (n "cvec"))
    [ "complex"; "real" ];
  (* BOTH models: (cvec, complex) and (cvec, real) — impossible with the
     associated-type formulation *)
  let vs_axioms =
    [ "scalar_assoc"; "scalar_distrib"; "vector_distrib"; "unit_scalar" ]
  in
  Registry.declare_model reg "VectorSpace" [ n "cvec"; n "complex" ]
    ~axioms:vs_axioms;
  Registry.declare_model reg "VectorSpace" [ n "cvec"; n "real" ]
    ~axioms:vs_axioms
