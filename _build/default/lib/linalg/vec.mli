(** Dense vectors over a field — the V in the Fig. 3 Vector Space.

    The scalar type is deliberately NOT an associated type of the
    vector: {!Make.scale_by} takes the scalar multiplication as an
    argument, so one vector type forms vector spaces over several scalar
    types (the Section 2.4 point; see {!cvec_scale_real} vs
    {!cvec_scale_complex}). *)

module Make (F : Gp_algebra.Sigs.FIELD) : sig
  type t = F.t array

  val create : int -> t
  (** Zero vector. *)

  val init : int -> (int -> F.t) -> t
  val of_array : F.t array -> t
  val dim : t -> int
  val get : t -> int -> F.t
  val set : t -> int -> F.t -> unit
  val equal : t -> t -> bool

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t

  val scale_by : (F.t -> 's -> F.t) -> 's -> t -> t
  (** Scalar multiplication with an arbitrary scalar type: the generic
      [mult(v, s)] of the Vector Space concept. *)

  val dot : t -> t -> F.t

  val axpy : a:F.t -> t -> t -> unit
  (** [axpy ~a x y]: y <- a*x + y in place. *)

  val pp : Format.formatter -> t -> unit
end

module Rvec : module type of Make (Gp_algebra.Instances.Float_field)
module Cvec : module type of Make (Complexf.Field)
module Qvec : module type of Make (Gp_algebra.Rational.Field)

(** {2 The two vector-space structures on complex vectors} *)

val cvec_scale_complex : Complexf.t -> Cvec.t -> Cvec.t

val cvec_scale_real : float -> Cvec.t -> Cvec.t
(** The CLACRM path: 2 real multiplications per element. *)

val cvec_scale_real_promoted : float -> Cvec.t -> Cvec.t
(** The promotion baseline: 4 multiplications + 2 additions per
    element; semantically identical to {!cvec_scale_real}. *)
