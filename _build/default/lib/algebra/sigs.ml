(* The algebraic concept hierarchy as OCaml module types.

   This is the compile-time face of the paper's algebraic concepts
   (Section 3.2, Fig. 5): Semigroup -> Monoid -> Group -> AbelianGroup, and
   Ring -> Field on two operations. The same hierarchy is mirrored as
   runtime concept values in {!Decls} so checking, dispatch, rewriting and
   proofs can reason about it.

   Every module type carries the semantic axioms in its documentation; the
   corresponding machine-checkable statements live in gp_athena's theories
   and the executable law predicates in {!Laws}. *)

module type EQ = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Binary operation, associative: [op (op a b) c = op a (op b c)]. *)
module type SEMIGROUP = sig
  include EQ

  val op : t -> t -> t
end

(** Semigroup with two-sided identity: [op a id = a = op id a]. *)
module type MONOID = sig
  include SEMIGROUP

  val id : t
end

(** Monoid with inverses: [op a (inverse a) = id = op (inverse a) a].

    Note on floating point: [(float, *.)] is only approximately a Group
    (rounding); the paper's Fig. 5 nevertheless lists [f *. (1.0 /. f)] as a
    Group instance, and so do we, with the caveat recorded as an asserted
    (not proved) axiom. *)
module type GROUP = sig
  include MONOID

  val inverse : t -> t
end

(** Group with commutative operation: [op a b = op b a]. *)
module type ABELIAN_GROUP = GROUP

(** Two operations: (t, add, zero, neg) an abelian group, (t, mul, one) a
    monoid, mul distributes over add. *)
module type RING = sig
  include EQ

  val zero : t
  val one : t
  val add : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
end

(** Commutative ring where every nonzero element has a multiplicative
    inverse. [inv zero] raises [Division_by_zero]. *)
module type FIELD = sig
  include RING

  val inv : t -> t
end

(** The additive group of a ring. *)
module Additive (R : RING) : ABELIAN_GROUP with type t = R.t = struct
  type t = R.t

  let equal = R.equal
  let pp = R.pp
  let op = R.add
  let id = R.zero
  let inverse = R.neg
end

(** The multiplicative monoid of a ring. *)
module Multiplicative (R : RING) : MONOID with type t = R.t = struct
  type t = R.t

  let equal = R.equal
  let pp = R.pp
  let op = R.mul
  let id = R.one
end

(** The multiplicative group of the nonzero elements of a field (partial:
    inverse of zero raises). *)
module Units (F : FIELD) : GROUP with type t = F.t = struct
  type t = F.t

  let equal = F.equal
  let pp = F.pp
  let op = F.mul
  let id = F.one
  let inverse = F.inv
end

(** Iterated operation via binary powering — any monoid gets an O(log n)
    [power]; a favourite generic-programming example (Stepanov). *)
module Power (M : MONOID) = struct
  let power x n =
    if n < 0 then invalid_arg "Power.power: negative exponent";
    let rec go acc base n =
      if n = 0 then acc
      else
        let acc = if n land 1 = 1 then M.op acc base else acc in
        go acc (M.op base base) (n lsr 1)
    in
    go M.id x n
end

(** Power extended to negative exponents over a group. *)
module Group_power (G : GROUP) = struct
  module P = Power (G)

  let power x n = if n >= 0 then P.power x n else G.inverse (P.power x (-n))
end
