(* The concrete instances of Fig. 5, as modules.

   Fig. 5's Monoid row: [i*1 -> i], [f*1.0 -> f], [b && true -> b],
   [i & 0xFFF... -> i], [concat(s,"") -> s], [A . I -> A].
   Group row: [i + (-i) -> 0], [f * (1.0/f) -> 1.0], [r * r^-1 -> 1],
   [A . A^-1 -> I]. *)

module Int_add : Sigs.ABELIAN_GROUP with type t = int = struct
  type t = int

  let equal = Int.equal
  let pp = Fmt.int
  let op = ( + )
  let id = 0
  let inverse x = -x
end

module Int_mul : Sigs.MONOID with type t = int = struct
  type t = int

  let equal = Int.equal
  let pp = Fmt.int
  let op = ( * )
  let id = 1
end

(* All bits set: the identity of bitwise-and ([i & 0xFF..F -> i]). *)
module Int_band : Sigs.MONOID with type t = int = struct
  type t = int

  let equal = Int.equal
  let pp ppf i = Fmt.pf ppf "0x%x" i
  let op = ( land )
  let id = -1
end

module Int_bor : Sigs.MONOID with type t = int = struct
  type t = int

  let equal = Int.equal
  let pp ppf i = Fmt.pf ppf "0x%x" i
  let op = ( lor )
  let id = 0
end

module Bool_and : Sigs.MONOID with type t = bool = struct
  type t = bool

  let equal = Bool.equal
  let pp = Fmt.bool
  let op = ( && )
  let id = true
end

module Bool_or : Sigs.MONOID with type t = bool = struct
  type t = bool

  let equal = Bool.equal
  let pp = Fmt.bool
  let op = ( || )
  let id = false
end

module String_concat : Sigs.MONOID with type t = string = struct
  type t = string

  let equal = String.equal
  let pp = Fmt.string
  let op = ( ^ )
  let id = ""
end

(* Floating point models the Monoid/Group axioms only approximately
   (rounding, infinities, NaN); Fig. 5 lists it anyway. Kept as an instance
   whose axioms are *asserted*, never certified — exactly the distinction
   the checker's warnings surface. *)
module Float_mul : Sigs.GROUP with type t = float = struct
  type t = float

  let equal a b = Float.equal a b
  let pp = Fmt.float
  let op = ( *. )
  let id = 1.0
  let inverse x = 1.0 /. x
end

module Float_add : Sigs.ABELIAN_GROUP with type t = float = struct
  type t = float

  let equal a b = Float.equal a b
  let pp = Fmt.float
  let op = ( +. )
  let id = 0.0
  let inverse x = -.x
end

module Int_ring : Sigs.RING with type t = int = struct
  type t = int

  let equal = Int.equal
  let pp = Fmt.int
  let zero = 0
  let one = 1
  let add = ( + )
  let neg x = -x
  let mul = ( * )
end

module Float_field : Sigs.FIELD with type t = float = struct
  type t = float

  let equal a b = Float.equal a b
  let pp = Fmt.float
  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let neg x = -.x
  let mul = ( *. )
  let inv x = if x = 0.0 then raise Division_by_zero else 1.0 /. x
end

module Rational_field = Rational.Field

(* Matrices over the exact rationals: the honest matrix Group instance. *)
module Qmat = Matrix.Over_field (Rational.Field)

(* Matrices over float for performance benches. *)
module Fmat = Matrix.Over_field (Float_field)

(* Matrices over int: a Monoid only (no inverses in general). *)
module Imat = Matrix.Make (Int_ring)
