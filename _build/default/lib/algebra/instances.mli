(** The concrete instances of Fig. 5, as modules: the Monoid row
    (int*, float*, bool&&, int&, string^, matrix·) and the Group row
    (int+, float*, rational*, matrix·), plus companions. Float instances
    satisfy the axioms only approximately — they are asserted, never
    certified, and the checker's warnings say so. *)

module Int_add : Sigs.ABELIAN_GROUP with type t = int
module Int_mul : Sigs.MONOID with type t = int

module Int_band : Sigs.MONOID with type t = int
(** Identity: all bits set ([i & ~0 = i]). *)

module Int_bor : Sigs.MONOID with type t = int
module Bool_and : Sigs.MONOID with type t = bool
module Bool_or : Sigs.MONOID with type t = bool
module String_concat : Sigs.MONOID with type t = string
module Float_mul : Sigs.GROUP with type t = float
module Float_add : Sigs.ABELIAN_GROUP with type t = float
module Int_ring : Sigs.RING with type t = int
module Float_field : Sigs.FIELD with type t = float
module Rational_field : Sigs.FIELD with type t = Rational.t

module Qmat : sig
  include module type of Matrix.Over_field (Rational.Field)
end
(** Matrices over the exact rationals: the honest matrix Group. *)

module Fmat : sig
  include module type of Matrix.Over_field (Float_field)
end

module Imat : sig
  include module type of Matrix.Make (Int_ring)
end
(** Integer matrices: a multiplicative Monoid only. *)
