(** Executable algebraic laws: the axioms of each semantic concept as
    predicates, instantiated with qcheck generators per instance in the
    property-test suites. The statements are checkable by testing here
    and by proof in gp_athena. *)

module Semigroup (S : Sigs.SEMIGROUP) : sig
  val associative : S.t -> S.t -> S.t -> bool
end

module Monoid (M : Sigs.MONOID) : sig
  val associative : M.t -> M.t -> M.t -> bool
  val left_identity : M.t -> bool
  val right_identity : M.t -> bool
end

module Group (G : Sigs.GROUP) : sig
  val associative : G.t -> G.t -> G.t -> bool
  val left_identity : G.t -> bool
  val right_identity : G.t -> bool
  val left_inverse : G.t -> bool
  val right_inverse : G.t -> bool
end

module Abelian (G : Sigs.ABELIAN_GROUP) : sig
  val associative : G.t -> G.t -> G.t -> bool
  val left_identity : G.t -> bool
  val right_identity : G.t -> bool
  val left_inverse : G.t -> bool
  val right_inverse : G.t -> bool
  val commutative : G.t -> G.t -> bool
end

module Ring (R : Sigs.RING) : sig
  val left_distributive : R.t -> R.t -> R.t -> bool
  val right_distributive : R.t -> R.t -> R.t -> bool
end

module Field (F : Sigs.FIELD) : sig
  val left_distributive : F.t -> F.t -> F.t -> bool
  val right_distributive : F.t -> F.t -> F.t -> bool
  val multiplicative_inverse : F.t -> bool
  val mul_commutative : F.t -> F.t -> bool
end

(** Strict weak order laws (Fig. 6): the axioms plus the derived
    symmetry/reflexivity of the induced equivalence, checkable
    empirically. *)
module Strict_weak_order (T : sig
  type t

  val lt : t -> t -> bool
end) : sig
  val e : T.t -> T.t -> bool
  (** The induced equivalence: neither compares less. *)

  val irreflexive : T.t -> bool
  val lt_transitive : T.t -> T.t -> T.t -> bool
  val e_transitive : T.t -> T.t -> T.t -> bool

  val e_symmetric : T.t -> T.t -> bool
  (** A theorem, derived in gp_athena. *)

  val e_reflexive : T.t -> bool
  (** A theorem, derived in gp_athena. *)
end
