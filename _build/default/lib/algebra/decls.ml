(* Runtime concept declarations for the algebraic hierarchy.

   Mirrors {!Sigs} into a gp_concepts registry so that checking, constraint
   propagation, overload resolution and the Simplicissimus rewrite guards
   can all reason about "(x, +) models Monoid" (Fig. 5).

   A model of an algebraic concept is a *(type, operation)* pair, not a bare
   type. In the registry's type language we represent the pair as a carrier
   type named "elem[op]", e.g. "int[+]"; its element type is recorded as the
   associated type [elem]. This keeps carriers first-class and lets two
   structures on the same element type (int with plus, int with times)
   coexist. *)

open Gp_concepts

let v t = Ctype.Var t
let n name = Ctype.Named name

let semigroup =
  Concept.make ~params:[ "T" ] "Semigroup"
    ~doc:"a set with an associative binary operation"
    [
      Concept.signature "op" [ v "T"; v "T" ] (v "T") ~doc:"the operation";
      Concept.axiom "associativity" ~vars:[ "a"; "b"; "c" ]
        "op(op(a,b),c) = op(a,op(b,c))";
    ]

let monoid =
  Concept.make ~params:[ "T" ] "Monoid"
    ~refines:[ ("Semigroup", [ v "T" ]) ]
    ~doc:"semigroup with a two-sided identity"
    [
      Concept.signature "id" [] (v "T") ~doc:"the identity element";
      Concept.axiom "left_identity" ~vars:[ "a" ] "op(id,a) = a";
      Concept.axiom "right_identity" ~vars:[ "a" ] "op(a,id) = a";
    ]

let group =
  Concept.make ~params:[ "T" ] "Group"
    ~refines:[ ("Monoid", [ v "T" ]) ]
    ~doc:"monoid with inverses"
    [
      Concept.signature "inverse" [ v "T" ] (v "T");
      Concept.axiom "left_inverse" ~vars:[ "a" ] "op(inverse(a),a) = id";
      Concept.axiom "right_inverse" ~vars:[ "a" ] "op(a,inverse(a)) = id";
    ]

let abelian_group =
  Concept.make ~params:[ "T" ] "AbelianGroup"
    ~refines:[ ("Group", [ v "T" ]) ]
    ~doc:"group with commutative operation"
    [ Concept.axiom "commutativity" ~vars:[ "a"; "b" ] "op(a,b) = op(b,a)" ]

let ring =
  Concept.make ~params:[ "T" ] "Ring"
    ~doc:"abelian group (add) + monoid (mul) with distributivity"
    [
      Concept.signature "add" [ v "T"; v "T" ] (v "T");
      Concept.signature "neg" [ v "T" ] (v "T");
      Concept.signature "zero" [] (v "T");
      Concept.signature "mul" [ v "T"; v "T" ] (v "T");
      Concept.signature "one" [] (v "T");
      Concept.axiom "left_distributivity" ~vars:[ "a"; "b"; "c" ]
        "mul(a,add(b,c)) = add(mul(a,b),mul(a,c))";
      Concept.axiom "right_distributivity" ~vars:[ "a"; "b"; "c" ]
        "mul(add(a,b),c) = add(mul(a,c),mul(b,c))";
    ]

let field =
  Concept.make ~params:[ "T" ] "Field"
    ~refines:[ ("Ring", [ v "T" ]) ]
    ~doc:"commutative ring with multiplicative inverses of nonzero elements"
    [
      Concept.signature "inv" [ v "T" ] (v "T");
      Concept.axiom "mul_commutativity" ~vars:[ "a"; "b" ]
        "mul(a,b) = mul(b,a)";
      Concept.axiom "mul_inverse" ~vars:[ "a" ]
        "a <> zero -> mul(a,inv(a)) = one";
    ]

(* Fig. 6: the Strict Weak Order concept and its axioms. *)
let strict_weak_order =
  Concept.make ~params:[ "T" ] "StrictWeakOrder"
    ~doc:
      "minimal requirements on < for correctness of search/sort algorithms \
       (Fig. 6)"
    [
      Concept.signature "lt" [ v "T"; v "T" ] (n "bool");
      Concept.axiom "irreflexivity" ~vars:[ "a" ] "not lt(a,a)";
      Concept.axiom "transitivity" ~vars:[ "a"; "b"; "c" ]
        "lt(a,b) and lt(b,c) -> lt(a,c)";
      Concept.axiom "equivalence_transitivity" ~vars:[ "a"; "b"; "c" ]
        "E(a,b) and E(b,c) -> E(a,c)  where E(x,y) := not lt(x,y) and not \
         lt(y,x)";
    ]

let all_concepts =
  [ semigroup; monoid; group; abelian_group; ring; field; strict_weak_order ]

(* A carrier declaration: the (type, op) pair "elem[label]". *)
type carrier = {
  car_name : string; (* e.g. "int[+]" *)
  car_elem : string; (* e.g. "int" *)
  car_concept : string; (* most refined algebraic concept modeled *)
  car_axioms : string list; (* axioms asserted (all of them, transitively) *)
}

let carrier ~elem ~label ~concept =
  { car_name = Printf.sprintf "%s[%s]" elem label; car_elem = elem;
    car_concept = concept; car_axioms = [] }

let axioms_of_chain = function
  | "Semigroup" -> [ "associativity" ]
  | "Monoid" -> [ "associativity"; "left_identity"; "right_identity" ]
  | "Group" ->
    [ "associativity"; "left_identity"; "right_identity"; "left_inverse";
      "right_inverse" ]
  | "AbelianGroup" ->
    [ "associativity"; "left_identity"; "right_identity"; "left_inverse";
      "right_inverse"; "commutativity" ]
  | _ -> []

(* The Fig. 5 instances plus the honest exact ones. *)
let standard_carriers =
  [
    carrier ~elem:"int" ~label:"+" ~concept:"AbelianGroup";
    carrier ~elem:"int" ~label:"*" ~concept:"Monoid";
    carrier ~elem:"int" ~label:"&" ~concept:"Monoid";
    carrier ~elem:"int" ~label:"|" ~concept:"Monoid";
    carrier ~elem:"bool" ~label:"&&" ~concept:"Monoid";
    carrier ~elem:"bool" ~label:"||" ~concept:"Monoid";
    carrier ~elem:"string" ~label:"^" ~concept:"Monoid";
    carrier ~elem:"float" ~label:"+" ~concept:"AbelianGroup";
    carrier ~elem:"float" ~label:"*" ~concept:"Group";
    carrier ~elem:"rational" ~label:"+" ~concept:"AbelianGroup";
    carrier ~elem:"rational" ~label:"*" ~concept:"Group";
    carrier ~elem:"matrix" ~label:"." ~concept:"Monoid";
    carrier ~elem:"invertible_matrix" ~label:"." ~concept:"Group";
  ]

(* Declare the whole algebraic world into [reg]: concepts, element types,
   carrier types with their ops, and checked model declarations. *)
let declare reg =
  List.iter (Registry.declare_concept reg) all_concepts;
  let elems =
    [ "int"; "bool"; "string"; "float"; "rational"; "matrix";
      "invertible_matrix" ]
  in
  List.iter (fun e -> Registry.declare_type reg e) elems;
  List.iter
    (fun c ->
      Registry.declare_type reg c.car_name
        ~assoc:[ ("elem", n c.car_elem) ]
        ~doc:(Printf.sprintf "(%s) as a %s carrier" c.car_name c.car_concept);
      let t = n c.car_name in
      Registry.declare_op reg "op" [ t; t ] t;
      if Registry.refines reg c.car_concept "Monoid" then
        Registry.declare_op reg "id" [] t;
      if Registry.refines reg c.car_concept "Group" then
        Registry.declare_op reg "inverse" [ t ] t;
      (* declare models for the whole refinement chain, asserting axioms *)
      let chain =
        List.filter
          (fun cc -> Registry.refines reg c.car_concept cc)
          [ "Semigroup"; "Monoid"; "Group"; "AbelianGroup" ]
      in
      List.iter
        (fun cc ->
          Registry.declare_model reg cc [ t ] ~axioms:(axioms_of_chain cc)
            ~complexity:[ ("op", Complexity.constant) ])
        chain)
    standard_carriers;
  (* strict weak orders on ordered element types *)
  List.iter
    (fun e ->
      let t = n e in
      Registry.declare_op reg "lt" [ t; t ] (n "bool");
      Registry.declare_model reg "StrictWeakOrder" [ t ]
        ~axioms:
          [ "irreflexivity"; "transitivity"; "equivalence_transitivity" ])
    [ "int"; "string"; "rational" ]
