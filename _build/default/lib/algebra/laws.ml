(* Executable algebraic laws.

   Each law is a predicate over sample elements; the property-test suite
   instantiates them with qcheck generators per instance. The point
   (Section 3.3) is that the axioms of a semantic concept are *checkable
   statements*, not documentation: here by testing, in gp_athena by proof. *)

module Semigroup (S : Sigs.SEMIGROUP) = struct
  let associative a b c = S.equal (S.op (S.op a b) c) (S.op a (S.op b c))
end

module Monoid (M : Sigs.MONOID) = struct
  include Semigroup (M)

  let left_identity a = M.equal (M.op M.id a) a
  let right_identity a = M.equal (M.op a M.id) a
end

module Group (G : Sigs.GROUP) = struct
  include Monoid (G)

  let left_inverse a = G.equal (G.op (G.inverse a) a) G.id
  let right_inverse a = G.equal (G.op a (G.inverse a)) G.id
end

module Abelian (G : Sigs.ABELIAN_GROUP) = struct
  include Group (G)

  let commutative a b = G.equal (G.op a b) (G.op b a)
end

module Ring (R : Sigs.RING) = struct
  module Add = Abelian (Sigs.Additive (R))
  module Mul = Monoid (Sigs.Multiplicative (R))

  let left_distributive a b c =
    R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c))

  let right_distributive a b c =
    R.equal (R.mul (R.add a b) c) (R.add (R.mul a c) (R.mul b c))
end

module Field (F : Sigs.FIELD) = struct
  include Ring (F)

  let multiplicative_inverse a =
    F.equal a F.zero || F.equal (F.mul a (F.inv a)) F.one

  let mul_commutative a b = F.equal (F.mul a b) (F.mul b a)
end

(* Strict weak order laws (Fig. 6): irreflexivity, transitivity, and
   transitivity of the induced equivalence E(a,b) := !(a<b) && !(b<a).
   Symmetry and reflexivity of E are derivable (and derived in gp_athena);
   they are included here so tests can confirm the derivation empirically. *)
module Strict_weak_order (T : sig
  type t

  val lt : t -> t -> bool
end) =
struct
  let e a b = (not (T.lt a b)) && not (T.lt b a)
  let irreflexive a = not (T.lt a a)

  let lt_transitive a b c = (not (T.lt a b && T.lt b c)) || T.lt a c
  let e_transitive a b c = (not (e a b && e b c)) || e a c
  let e_symmetric a b = e a b = e b a (* theorem *)
  let e_reflexive a = e a a (* theorem, from irreflexivity *)
end
