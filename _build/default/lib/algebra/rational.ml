(* Exact rational arithmetic — the honest Field instance.

   Fig. 5 lists [r * r^-1 -> 1] for rationals as a Group instance; floating
   point only approximates the axioms, so the reproduction carries an exact
   rational type for which the Field axioms genuinely hold (and are checked
   by property tests and certified through gp_athena). Numerator and
   denominator are kept reduced with a positive denominator. *)

type t = { num : int; den : int } (* invariant: den > 0, gcd(|num|,den)=1 *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den
let equal a b = a.num = b.num && a.den = b.den

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

let inv a = if a.num = 0 then raise Division_by_zero else make a.den a.num
let div a b = mul a (inv b)

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num else Fmt.pf ppf "%d/%d" a.num a.den

let to_string a = Fmt.str "%a" pp a

module Field : Sigs.FIELD with type t = t = struct
  type nonrec t = t

  let equal = equal
  let pp = pp
  let zero = zero
  let one = one
  let add = add
  let neg = neg
  let mul = mul
  let inv = inv
end
