(** Square matrices over a ring — the user-defined Monoid/Group instance
    of Fig. 5 ([A·I -> A], [A·A⁻¹ -> I]). Dimension-tagged; operations
    on mismatched dimensions raise [Invalid_argument]. *)

module Make (R : Sigs.RING) : sig
  type t

  val dim : t -> int
  val get : t -> int -> int -> R.t
  val set : t -> int -> int -> R.t -> unit

  val init : int -> (int -> int -> R.t) -> t
  (** Raises [Invalid_argument] on a non-positive dimension. *)

  val make : int -> R.t -> t
  val identity : int -> t
  val zero : int -> t

  val of_rows : R.t list list -> t
  (** Raises [Invalid_argument] on ragged rows. *)

  val equal : t -> t -> bool
  val add : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : R.t -> t -> t
  val transpose : t -> t
  val is_identity : t -> bool
  val pp : Format.formatter -> t -> unit

  (** The multiplicative Monoid at a fixed dimension. *)
  module Mul_monoid (N : sig
    val n : int
  end) : Sigs.MONOID with type t = t
end

module Over_field (F : Sigs.FIELD) : sig
  include module type of Make (F)

  exception Singular

  val inverse : t -> t
  (** Gauss-Jordan; raises {!Singular} when no inverse exists. *)

  val invertible : t -> bool
end
