lib/algebra/sigs.ml: Format
