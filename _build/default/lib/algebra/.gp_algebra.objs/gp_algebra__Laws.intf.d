lib/algebra/laws.mli: Sigs
