lib/algebra/laws.ml: Sigs
