lib/algebra/decls.ml: Complexity Concept Ctype Gp_concepts List Printf Registry
