lib/algebra/rational.ml: Fmt Sigs Stdlib
