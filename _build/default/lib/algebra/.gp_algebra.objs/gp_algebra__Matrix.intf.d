lib/algebra/matrix.mli: Format Sigs
