lib/algebra/rational.mli: Format Sigs
