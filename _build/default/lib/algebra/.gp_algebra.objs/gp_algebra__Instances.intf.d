lib/algebra/instances.mli: Matrix Rational Sigs
