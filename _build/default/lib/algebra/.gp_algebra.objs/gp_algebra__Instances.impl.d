lib/algebra/instances.ml: Bool Float Fmt Int Matrix Rational Sigs String
