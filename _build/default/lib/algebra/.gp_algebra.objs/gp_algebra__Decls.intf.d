lib/algebra/decls.mli: Gp_concepts
