lib/algebra/matrix.ml: Array Fmt List Sigs
