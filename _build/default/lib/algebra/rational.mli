(** Exact rational arithmetic — the honest Field instance behind the
    Fig. 5 [r * r^-1 -> 1] row. Values are kept reduced with positive
    denominator. *)

type t

val make : int -> int -> t
(** [make num den]; raises [Division_by_zero] when [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int
(** Always positive. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** Raises [Division_by_zero] on zero. *)

val div : t -> t -> t
val to_float : t -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Field : Sigs.FIELD with type t = t
