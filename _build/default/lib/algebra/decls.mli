(** Runtime concept declarations for the algebraic hierarchy: mirrors
    {!Sigs} into a gp_concepts registry so checking, propagation,
    overloading and rewrite guards can reason about "(x, +) models
    Monoid" (Fig. 5). A model is a (type, operation) pair, represented
    in the type language as a carrier named ["elem[op]"] (e.g.
    ["int[+]"]). *)

(** {2 The concept definitions} *)

val semigroup : Gp_concepts.Concept.t
val monoid : Gp_concepts.Concept.t
val group : Gp_concepts.Concept.t
val abelian_group : Gp_concepts.Concept.t
val ring : Gp_concepts.Concept.t
val field : Gp_concepts.Concept.t

val strict_weak_order : Gp_concepts.Concept.t
(** Fig. 6, as a concept with its three axioms. *)

val all_concepts : Gp_concepts.Concept.t list

(** {2 Carrier declarations} *)

type carrier = {
  car_name : string;  (** e.g. "int[+]" *)
  car_elem : string;
  car_concept : string;  (** most refined concept modeled *)
  car_axioms : string list;
}

val carrier : elem:string -> label:string -> concept:string -> carrier
val axioms_of_chain : string -> string list
val standard_carriers : carrier list

val declare : Gp_concepts.Registry.t -> unit
(** Declare concepts, element types, carriers with their operations, and
    checked model declarations into the registry. *)
