(* Square matrices over a ring — the user-defined Monoid/Group instance of
   Fig. 5 ([A . I -> A], [A . A^-1 -> I]).

   A functor so the same code gives int matrices (Monoid under
   multiplication), rational matrices (Group for invertible matrices, with
   Gauss-Jordan inverse over a Field), and float matrices for the
   performance benches. Matrices are dimension-tagged; operations on
   mismatched dimensions raise [Invalid_argument]. *)

module Make (R : Sigs.RING) = struct
  type t = { n : int; data : R.t array } (* row-major n x n *)

  let dim m = m.n
  let get m i j = m.data.((i * m.n) + j)
  let set m i j v = m.data.((i * m.n) + j) <- v

  let init n f =
    if n <= 0 then invalid_arg "Matrix.init: dimension must be positive";
    { n; data = Array.init (n * n) (fun k -> f (k / n) (k mod n)) }

  let make n v = init n (fun _ _ -> v)
  let identity n = init n (fun i j -> if i = j then R.one else R.zero)
  let zero n = make n R.zero

  let of_rows rows =
    let n = List.length rows in
    let m = init n (fun _ _ -> R.zero) in
    List.iteri
      (fun i row ->
        if List.length row <> n then
          invalid_arg "Matrix.of_rows: ragged rows";
        List.iteri (fun j v -> set m i j v) row)
      rows;
    m

  let equal a b =
    a.n = b.n && Array.for_all2 R.equal a.data b.data

  let add a b =
    if a.n <> b.n then invalid_arg "Matrix.add: dimension mismatch";
    { n = a.n; data = Array.map2 R.add a.data b.data }

  let neg a = { a with data = Array.map R.neg a.data }

  let mul a b =
    if a.n <> b.n then invalid_arg "Matrix.mul: dimension mismatch";
    let n = a.n in
    init n (fun i j ->
        let rec go acc k =
          if k = n then acc
          else go (R.add acc (R.mul (get a i k) (get b k j))) (k + 1)
        in
        go R.zero 0)

  let scale s a = { a with data = Array.map (R.mul s) a.data }

  let transpose a = init a.n (fun i j -> get a j i)

  let is_identity a =
    let id = identity a.n in
    equal a id

  let pp ppf m =
    Fmt.pf ppf "@[<v>%a@]"
      Fmt.(
        list ~sep:cut (fun ppf i ->
            pf ppf "[%a]"
              (list ~sep:(any " ") R.pp)
              (List.init m.n (fun j -> get m i j))))
      (List.init m.n (fun i -> i))

  (** (matrices, mul, I): the Fig. 5 user-defined Monoid. *)
  module Mul_monoid (N : sig
    val n : int
  end) : Sigs.MONOID with type t = t = struct
    type nonrec t = t

    let equal = equal
    let pp = pp
    let op = mul
    let id = identity N.n
  end
end

module Over_field (F : Sigs.FIELD) = struct
  include Make (F)

  exception Singular

  (* Gauss-Jordan with partial pivoting on the first nonzero pivot.
     Raises [Singular] when no inverse exists. *)
  let inverse m =
    let n = m.n in
    let a = { n; data = Array.copy m.data } in
    let inv = identity n in
    let swap_rows mat r1 r2 =
      if r1 <> r2 then
        for j = 0 to n - 1 do
          let t = get mat r1 j in
          set mat r1 j (get mat r2 j);
          set mat r2 j t
        done
    in
    for col = 0 to n - 1 do
      (* find pivot *)
      let pivot = ref (-1) in
      (try
         for r = col to n - 1 do
           if not (F.equal (get a r col) F.zero) then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot < 0 then raise Singular;
      swap_rows a col !pivot;
      swap_rows inv col !pivot;
      let p = get a col col in
      let pinv = F.inv p in
      for j = 0 to n - 1 do
        set a col j (F.mul pinv (get a col j));
        set inv col j (F.mul pinv (get inv col j))
      done;
      for r = 0 to n - 1 do
        if r <> col then begin
          let factor = get a r col in
          if not (F.equal factor F.zero) then
            for j = 0 to n - 1 do
              set a r j (F.add (get a r j) (F.neg (F.mul factor (get a col j))));
              set inv r j
                (F.add (get inv r j) (F.neg (F.mul factor (get inv col j))))
            done
        end
      done
    done;
    inv

  let invertible m = match inverse m with _ -> true | exception Singular -> false
end
