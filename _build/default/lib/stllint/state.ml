(* The abstract domain: container states and iterator states.

   Invalidation is applied eagerly (a mutation immediately downgrades every
   affected iterator state), so the domain is finite and loop fixpoints
   terminate without numeric widening. *)

module Smap = Map.Make (String)

type sortedness = Sorted | Unsorted | Unknown_sorted

type cstate = {
  c_kind : Ast.container_kind;
  c_sorted : sortedness;
}

type istate =
  | I_singular of string (* why it is singular: "erased", "default", ... *)
  | I_invalid of string (* invalidated by a container mutation *)
  | I_valid of { c : string; maybe_end : bool }
  | I_end of string (* past-the-end of container c *)
  | I_top (* unknown: no diagnostics issued *)

type t = {
  containers : cstate Smap.t;
  iters : istate Smap.t;
  (* accumulated single-pass consumption: streams already traversed once *)
  consumed_streams : string list;
}

let empty =
  { containers = Smap.empty; iters = Smap.empty; consumed_streams = [] }

let container t name = Smap.find_opt name t.containers
let iter t name = Smap.find_opt name t.iters

let set_container t name st =
  { t with containers = Smap.add name st t.containers }

let set_iter t name st = { t with iters = Smap.add name st t.iters }

let category_of_iter t = function
  | I_valid { c; _ } | I_end c -> (
    match container t c with
    | Some cs -> Some (Ast.kind_category cs.c_kind)
    | None -> None)
  | I_singular _ | I_invalid _ | I_top -> None

(* Apply an invalidation effect on container [c]. *)
let invalidate t ~container:c ~(effect : Spec.invalidation) ~erased_at =
  match effect with
  | Spec.Invalidates_none -> t
  | Spec.Invalidates_point ->
    (* only the erased iterator becomes singular *)
    (match erased_at with
    | Some at -> set_iter t at (I_singular "erased")
    | None -> t)
  | Spec.Invalidates_all ->
    let iters =
      Smap.map
        (function
          | I_valid { c = c'; _ } when String.equal c c' ->
            (if erased_at <> None then I_singular "erased"
             else I_invalid "container mutated")
          | I_end c' when String.equal c c' ->
            (if erased_at <> None then I_singular "erased"
             else I_invalid "container mutated")
          | st -> st)
        t.iters
    in
    { t with iters }

(* ------------------------------------------------------------------ *)
(* Join (for control-flow merges)                                      *)
(* ------------------------------------------------------------------ *)

let join_sorted a b =
  match a, b with
  | Sorted, Sorted -> Sorted
  | Unsorted, Unsorted -> Unsorted
  | _ -> Unknown_sorted

let join_cstate a b =
  if a.c_kind <> b.c_kind then a (* cannot happen: kinds are static *)
  else { a with c_sorted = join_sorted a.c_sorted b.c_sorted }

let join_istate a b =
  match a, b with
  | I_singular r, _ | _, I_singular r -> I_singular r
  | I_invalid r, _ | _, I_invalid r -> I_invalid r
  | I_valid v1, I_valid v2 when String.equal v1.c v2.c ->
    I_valid { c = v1.c; maybe_end = v1.maybe_end || v2.maybe_end }
  | I_valid v, I_end c | I_end c, I_valid v when String.equal v.c c ->
    I_valid { c; maybe_end = true }
  | I_end c1, I_end c2 when String.equal c1 c2 -> I_end c1
  | _, _ -> I_top

let join a b =
  {
    containers =
      Smap.union (fun _ x y -> Some (join_cstate x y)) a.containers
        b.containers;
    iters =
      Smap.merge
        (fun _ x y ->
          match x, y with
          | Some x, Some y -> Some (join_istate x y)
          | Some _, None | None, Some _ -> Some I_top
          | None, None -> None)
        a.iters b.iters;
    consumed_streams =
      List.sort_uniq String.compare (a.consumed_streams @ b.consumed_streams);
  }

let equal_istate a b =
  match a, b with
  | I_singular _, I_singular _ -> true
  | I_invalid _, I_invalid _ -> true
  | I_valid x, I_valid y -> String.equal x.c y.c && x.maybe_end = y.maybe_end
  | I_end x, I_end y -> String.equal x y
  | I_top, I_top -> true
  | _ -> false

let equal a b =
  Smap.equal
    (fun (x : cstate) y -> x.c_kind = y.c_kind && x.c_sorted = y.c_sorted)
    a.containers b.containers
  && Smap.equal equal_istate a.iters b.iters
  && a.consumed_streams = b.consumed_streams

let pp_istate ppf = function
  | I_singular r -> Fmt.pf ppf "singular (%s)" r
  | I_invalid r -> Fmt.pf ppf "invalid (%s)" r
  | I_valid { c; maybe_end } ->
    Fmt.pf ppf "valid in %s%s" c (if maybe_end then " (maybe end)" else "")
  | I_end c -> Fmt.pf ppf "end of %s" c
  | I_top -> Fmt.string ppf "unknown"
