(** Library-supplied semantic specifications (paper Section 3.1): the
    checker analyzes programs against these, never against
    implementations.

    Container operations declare their iterator-invalidation effects;
    algorithms declare their iterator-concept requirement (including the
    semantic multipass property), preconditions (sortedness),
    postconditions, result shape, and an optional cheaper alternative
    for sorted input (the Section 3.2 suggestion). *)

type invalidation =
  | Invalidates_all  (** vector/deque structural mutation *)
  | Invalidates_point  (** list erase: only the erased position *)
  | Invalidates_none  (** list insert *)

val erase_effect : Ast.container_kind -> invalidation
val insert_effect : Ast.container_kind -> invalidation
val push_effect : Ast.container_kind -> invalidation

type result_kind =
  | R_none
  | R_iter_maybe_end  (** may equal end (find, lower_bound, ...) *)
  | R_iter_valid

type algo_spec = {
  sp_name : string;
  sp_category : Gp_sequence.Iter.category;
  sp_multipass : bool;
  sp_requires_sorted : bool;
  sp_establishes_sorted : bool;
  sp_mutates : bool;
  sp_result : result_kind;
  sp_sorted_alternative : string option;
}

val algo :
  ?multipass:bool ->
  ?requires_sorted:bool ->
  ?establishes_sorted:bool ->
  ?mutates:bool ->
  ?result:result_kind ->
  ?sorted_alternative:string ->
  string ->
  Gp_sequence.Iter.category ->
  algo_spec

val algorithms : algo_spec list
(** The shipped specification table (find, sort, binary_search,
    max_element, ...). *)

val find_algo : string -> algo_spec option
