(** The C++-flavoured surface syntax for the checked language, making
    STLlint a file-level tool ([gp lint --file prog.cxx]).

    {v
      vector<student> students;
      iter it = students.begin();
      while (it != last) {
        if (fgrade( *it )) { students.erase(it); } else { ++it; }
      }
    v}

    Container declarations ([vector]/[list]/[deque]/[istream], optional
    [sorted] annotation), iterator bindings ([iter x = c.begin()],
    reassignment, [c.erase(it)] results), member calls, algorithm calls
    with contextually-typed arguments (container range, [i..j] iterator
    range, value, predicate), [while]/[if] with iterator conditions, and
    [// comments]. Diagnostics carry the first source line of the
    offending statement as their location. *)

exception Parse_error of { line : int; message : string }

val parse_program : string -> Ast.stmt list
(** Raises {!Parse_error} with the line number. *)

val check_source : string -> Interp.diagnostic list
(** Parse and check: the complete pipeline. *)
