(** The abstract domain of the checker: container states (kind,
    sortedness) and iterator states (singular / invalid / valid /
    past-the-end / unknown). Invalidation is applied eagerly on
    mutation, keeping the domain finite so loop fixpoints terminate
    without numeric widening. *)

module Smap : Map.S with type key = string

type sortedness = Sorted | Unsorted | Unknown_sorted

type cstate = { c_kind : Ast.container_kind; c_sorted : sortedness }

type istate =
  | I_singular of string  (** why: "erased", "default-initialised", ... *)
  | I_invalid of string  (** invalidated by a container mutation *)
  | I_valid of { c : string; maybe_end : bool }
  | I_end of string
  | I_top  (** unknown: no diagnostics issued *)

type t = {
  containers : cstate Smap.t;
  iters : istate Smap.t;
  consumed_streams : string list;
      (** single-pass streams already traversed once *)
}

val empty : t
val container : t -> string -> cstate option
val iter : t -> string -> istate option
val set_container : t -> string -> cstate -> t
val set_iter : t -> string -> istate -> t
val category_of_iter : t -> istate -> Gp_sequence.Iter.category option

val invalidate :
  t -> container:string -> effect:Spec.invalidation -> erased_at:string option -> t
(** Apply a mutation's invalidation effect to every affected iterator. *)

(** {2 Lattice operations (control-flow merges)} *)

val join_sorted : sortedness -> sortedness -> sortedness
val join_istate : istate -> istate -> istate
val join : t -> t -> t
val equal : t -> t -> bool

val pp_istate : Format.formatter -> istate -> unit
