(** The abstract interpreter: flow-sensitive symbolic execution of
    programs against library specifications, producing the high-level
    diagnostics of paper Sections 3.1–3.2.

    One diagnostic per root cause: after a defective iterator use is
    reported, the iterator's abstract state is poisoned so cascades are
    suppressed. *)

type severity = Error | Warning | Suggestion

type diagnostic = {
  d_severity : severity;
  d_message : string;
  d_where : string;  (** the offending statement's label *)
}

val sorted_linear_search_message : string -> string
(** The Section 3.2 suggestion text, verbatim, parameterised by the
    recommended replacement algorithm. *)

val check : Ast.stmt list -> diagnostic list
(** Execute the program abstractly from the empty state; diagnostics in
    program order, deduplicated. Detects: singular/invalidated/past-end
    dereference and increment, iterator invalidation by container
    mutation (vector vs list semantics), unchecked algorithm results,
    iterator-category violations, the multipass requirement over input
    streams (semantic archetype), single-pass streams traversed twice,
    unverifiable sortedness preconditions, and fires the sorted-range
    optimization suggestion. *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list
val suggestions : diagnostic list -> diagnostic list

val pp_severity : Format.formatter -> severity -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> diagnostic list -> unit
