(* A C++-flavoured surface syntax for the checked language, so STLlint
   runs on program text (gp lint --file prog.cxx). The grammar mirrors
   the AST:

     program   ::= stmt*
     stmt      ::= decl | iter-stmt | member | algo-stmt | while | if
     decl      ::= ("vector"|"list"|"deque"|"istream") ident ["sorted"] ";"
     iter-stmt ::= "iter" ident "=" rhs ";"        declaration
                 | ident "=" rhs ";"               assignment
                 | "++" ident ";" | "--" ident ";"
                 | "*" ident ";"                   deref for effect
                 | "*" ident "=" expr ";"          deref write
     rhs       ::= ident ".begin()" | ident ".end()" | "singular"
                 | ident ".erase(" ident ")"
                 | ident ".insert(" ident "," expr ")"
                 | algo-call
                 | ident                           copy of an iterator
     member    ::= ident ".push_back(" expr ")" ";"
                 | ident ".push_front(" expr ")" ";"
                 | ident ".pop_back()" ";"
                 | ident ".erase(" ident ")" ";"
                 | ident ".insert(" ident "," expr ")" ";"
     algo-stmt ::= algo-call ";"
     algo-call ::= ident "(" arg ("," arg)* ")"
     arg       ::= ident                container range OR iterator OR pred
                 | ident ".." ident     explicit iterator range
                 | integer              a value
                 | "*" ident            dereference value
     while     ::= "while" "(" cond ")" "{" stmt* "}"
     if        ::= "if" "(" cond ")" "{" stmt* "}" ["else" "{" stmt* "}"]
     cond      ::= ident "!=" ident | ident "==" ident | expr
     expr      ::= integer | "*" ident | ident | ident "(" expr* ")"

   Whether a bare identifier argument is a container range, an iterator,
   or an opaque predicate is resolved against the declarations seen so
   far — the same contextual typing a real frontend performs. Comments
   are [// ...]. *)

exception Parse_error of { line : int; message : string }

type token =
  | Tid of string
  | Tint of int
  | Tp of string (* punctuation *)
  | Teof

type lexer = { src : string; mutable pos : int; mutable line : int }

let error lx fmt =
  Fmt.kstr (fun message -> raise (Parse_error { line = lx.line; message })) fmt

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_id c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    while peek lx <> None && peek lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | _ -> ()

let two_char lx a b =
  peek lx = Some a
  && lx.pos + 1 < String.length lx.src
  && lx.src.[lx.pos + 1] = b

let next lx =
  skip_ws lx;
  match peek lx with
  | None -> Teof
  | Some c when c >= '0' && c <= '9' ->
    let b = Buffer.create 4 in
    while (match peek lx with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      Buffer.add_char b (Option.get (peek lx));
      advance lx
    done;
    Tint (int_of_string (Buffer.contents b))
  | Some c when is_id c ->
    let b = Buffer.create 8 in
    while (match peek lx with Some c when is_id c -> true | _ -> false) do
      Buffer.add_char b (Option.get (peek lx));
      advance lx
    done;
    Tid (Buffer.contents b)
  | Some _ when two_char lx '+' '+' ->
    advance lx;
    advance lx;
    Tp "++"
  | Some _ when two_char lx '-' '-' ->
    advance lx;
    advance lx;
    Tp "--"
  | Some _ when two_char lx '!' '=' ->
    advance lx;
    advance lx;
    Tp "!="
  | Some _ when two_char lx '=' '=' ->
    advance lx;
    advance lx;
    Tp "=="
  | Some _ when two_char lx '.' '.' ->
    advance lx;
    advance lx;
    Tp ".."
  | Some (( '(' | ')' | '{' | '}' | ',' | ';' | '*' | '=' | '.' | '<' | '>' ) as c)
    ->
    advance lx;
    Tp (String.make 1 c)
  | Some c -> error lx "unexpected character %c" c

type stream = {
  lx : lexer;
  mutable tok : token;
  mutable containers : (string * Ast.container_kind) list;
  mutable iters : string list;
}

let mk src =
  let lx = { src; pos = 0; line = 1 } in
  { lx; tok = next lx; containers = []; iters = [] }

let shift s = s.tok <- next s.lx

let expect s p =
  match s.tok with
  | Tp q when q = p -> shift s
  | _ -> error s.lx "expected '%s'" p

let accept s p =
  match s.tok with
  | Tp q when q = p ->
    shift s;
    true
  | _ -> false

let ident s =
  match s.tok with
  | Tid x ->
    shift s;
    x
  | _ -> error s.lx "expected an identifier"

(* One token of extra lookahead, without consuming. *)
let peek_ahead s =
  let save_pos = s.lx.pos and save_line = s.lx.line in
  let t = next s.lx in
  s.lx.pos <- save_pos;
  s.lx.line <- save_line;
  t

(* Source text for labels: the first line of the statement, trimmed, so a
   compound statement's diagnostic points at its head. *)
let label_of lx start stop =
  let text = String.trim (String.sub lx.src start (stop - start)) in
  let head =
    match String.index_opt text '\n' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  String.trim head

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr s =
  match s.tok with
  | Tint k ->
    shift s;
    Ast.Const k
  | Tp "*" ->
    shift s;
    Ast.Deref (ident s)
  | Tid f ->
    shift s;
    if accept s "(" then begin
      let args =
        if accept s ")" then []
        else begin
          let rec go acc =
            let e = parse_expr s in
            if accept s "," then go (e :: acc) else List.rev (e :: acc)
          in
          let args = go [] in
          expect s ")";
          args
        end
      in
      Ast.Call (f, args)
    end
    else Ast.Var f
  | _ -> error s.lx "expected an expression"

let parse_cond s =
  match s.tok with
  | Tid a when List.mem a s.iters -> (
    let a = ident s in
    if accept s "!=" then Ast.Iter_ne (a, ident s)
    else if accept s "==" then Ast.Iter_eq (a, ident s)
    else error s.lx "expected '!=' or '==' after iterator %s" a)
  | _ -> Ast.Pred (parse_expr s)

(* ------------------------------------------------------------------ *)
(* Algorithm calls                                                     *)
(* ------------------------------------------------------------------ *)

let parse_arg s =
  match s.tok with
  | Tint k ->
    shift s;
    Ast.A_value (Ast.Const k)
  | Tp "*" ->
    shift s;
    Ast.A_value (Ast.Deref (ident s))
  | Tid x ->
    shift s;
    if accept s ".." then
      let y = ident s in
      Ast.A_range (Ast.R_iters (x, y))
    else if List.mem_assoc x s.containers then Ast.A_range (Ast.R_container x)
    else if List.mem x s.iters then Ast.A_iter x
    else Ast.A_pred x
  | _ -> error s.lx "expected an argument"

let parse_algo_call s name =
  (* '(' already consumed by caller? no: consume here *)
  expect s "(";
  let args =
    if accept s ")" then []
    else begin
      let rec go acc =
        let a = parse_arg s in
        if accept s "," then go (a :: acc) else List.rev (a :: acc)
      in
      let args = go [] in
      expect s ")";
      args
    end
  in
  (name, args)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let container_kind_of = function
  | "vector" -> Some Ast.Vector
  | "list" -> Some Ast.List_
  | "deque" -> Some Ast.Deque
  | "istream" -> Some Ast.Istream
  | _ -> None

(* right-hand sides of iterator bindings *)
let parse_rhs s ~result_name =
  match s.tok with
  | Tid "singular" ->
    shift s;
    `Init Ast.Singular_init
  | Tid x when List.mem_assoc x s.containers -> (
    shift s;
    expect s ".";
    let m = ident s in
    match m with
    | "begin" ->
      expect s "(";
      expect s ")";
      `Init (Ast.Begin_of x)
    | "end" ->
      expect s "(";
      expect s ")";
      `Init (Ast.End_of x)
    | "erase" ->
      expect s "(";
      let at = ident s in
      expect s ")";
      `Stmt (Ast.Erase { container = x; at; result = Some result_name })
    | "insert" ->
      expect s "(";
      let at = ident s in
      expect s ",";
      let v = parse_expr s in
      expect s ")";
      `Stmt (Ast.Insert { container = x; at; value = v; result = Some result_name })
    | _ -> error s.lx "container %s has no member %s usable here" x m)
  | Tid x when List.mem x s.iters ->
    shift s;
    `Init (Ast.Copy_of x)
  | Tid algo -> (
    shift s;
    match s.tok with
    | Tp "(" ->
      let name, args = parse_algo_call s algo in
      `Stmt (Ast.Algo { algo = name; args; result = Some result_name })
    | _ -> error s.lx "unknown name %s on the right of '='" algo)
  | _ -> error s.lx "expected an iterator initialiser"

let rec parse_stmt s =
  let start = s.lx.pos - (match s.tok with Tid x -> String.length x | _ -> 0) in
  let finish node =
    let stop = s.lx.pos in
    { Ast.label = label_of s.lx (max 0 start) stop; node }
  in
  match s.tok with
  | Tid kw when container_kind_of kw <> None ->
    shift s;
    (* optional template argument: vector<int> *)
    if accept s "<" then begin
      (match s.tok with Tid _ -> shift s | _ -> ());
      expect s ">"
    end;
    let name = ident s in
    let sorted = (match s.tok with Tid "sorted" -> shift s; true | _ -> false) in
    expect s ";";
    s.containers <- (name, Option.get (container_kind_of kw)) :: s.containers;
    finish
      (Ast.Decl_container
         { name; kind = Option.get (container_kind_of kw); sorted })
  | Tid "iter" when not (match peek_ahead s with Tp "=" -> true | _ -> false) -> (
    (* 'iter' introduces a declaration unless the next token is '=', in
       which case it is an ordinary variable named iter (as in the
       paper's own Fig. 4 listing) *)
    shift s;
    let name = ident s in
    s.iters <- name :: s.iters;
    expect s "=";
    match parse_rhs s ~result_name:name with
    | `Init init ->
      expect s ";";
      finish (Ast.Decl_iter { name; init })
    | `Stmt node ->
      expect s ";";
      finish node)
  | Tid "while" ->
    shift s;
    expect s "(";
    let cond = parse_cond s in
    expect s ")";
    expect s "{";
    let body = parse_block s in
    finish (Ast.While (cond, body))
  | Tid "if" ->
    shift s;
    expect s "(";
    let cond = parse_cond s in
    expect s ")";
    expect s "{";
    let then_ = parse_block s in
    let else_ =
      match s.tok with
      | Tid "else" ->
        shift s;
        expect s "{";
        parse_block s
      | _ -> []
    in
    finish (Ast.If (cond, then_, else_))
  | Tp "++" ->
    shift s;
    let x = ident s in
    expect s ";";
    finish (Ast.Incr x)
  | Tp "--" ->
    shift s;
    let x = ident s in
    expect s ";";
    finish (Ast.Decr x)
  | Tp "*" -> (
    shift s;
    let x = ident s in
    if accept s "=" then begin
      let e = parse_expr s in
      expect s ";";
      finish (Ast.Deref_write (x, e))
    end
    else begin
      expect s ";";
      finish (Ast.Deref_read x)
    end)
  | Tid x when List.mem_assoc x s.containers -> (
    shift s;
    expect s ".";
    let m = ident s in
    expect s "(";
    match m with
    | "push_back" | "push_front" ->
      let e = parse_expr s in
      expect s ")";
      expect s ";";
      finish
        (if m = "push_back" then Ast.Push_back (x, e)
         else Ast.Push_front (x, e))
    | "pop_back" ->
      expect s ")";
      expect s ";";
      finish (Ast.Pop_back x)
    | "erase" ->
      let at = ident s in
      expect s ")";
      expect s ";";
      finish (Ast.Erase { container = x; at; result = None })
    | "insert" ->
      let at = ident s in
      expect s ",";
      let v = parse_expr s in
      expect s ")";
      expect s ";";
      finish (Ast.Insert { container = x; at; value = v; result = None })
    | _ -> error s.lx "unknown container member %s" m)
  | Tid x when List.mem x s.iters ->
    (* iterator reassignment *)
    shift s;
    expect s "=";
    (match parse_rhs s ~result_name:x with
    | `Init init ->
      expect s ";";
      finish (Ast.Assign_iter { name = x; init })
    | `Stmt node ->
      expect s ";";
      finish node)
  | Tid algo -> (
    shift s;
    match s.tok with
    | Tp "(" ->
      let name, args = parse_algo_call s algo in
      expect s ";";
      finish (Ast.Algo { algo = name; args; result = None })
    | _ -> error s.lx "unexpected statement starting with %s" algo)
  | _ -> error s.lx "expected a statement"

and parse_block s =
  let rec go acc =
    if accept s "}" then List.rev acc else go (parse_stmt s :: acc)
  in
  go []

let parse_program src =
  let s = mk src in
  let rec go acc =
    match s.tok with
    | Teof -> List.rev acc
    | _ -> go (parse_stmt s :: acc)
  in
  go []

(* Parse then check: the complete pipeline. *)
let check_source src = Interp.check (parse_program src)
