(** The little imperative language STLlint checks: containers, iterators
    and generic algorithms at the abstraction level of the paper's C++
    examples. Statements carry a source label so diagnostics point at
    the offending line. *)

type container_kind =
  | Vector  (** random-access; mutations invalidate all iterators *)
  | List_  (** bidirectional; erase invalidates only the erased position *)
  | Deque  (** random-access; mutations invalidate all iterators *)
  | Istream  (** single-pass input iterators *)

val kind_name : container_kind -> string
val kind_category : container_kind -> Gp_sequence.Iter.category

type expr =
  | Const of int
  | Var of string
  | Deref of string  (** the dereference the checker checks *)
  | Call of string * expr list  (** opaque helper *)

type cond =
  | Iter_ne of string * string
  | Iter_eq of string * string
  | Pred of expr

type iter_init =
  | Begin_of of string
  | End_of of string
  | Copy_of of string
  | Singular_init

type range = R_container of string | R_iters of string * string

type arg =
  | A_range of range
  | A_iter of string
  | A_value of expr
  | A_pred of string

type stmt = { label : string; node : node }

and node =
  | Decl_container of { name : string; kind : container_kind; sorted : bool }
  | Decl_iter of { name : string; init : iter_init }
  | Assign_iter of { name : string; init : iter_init }
  | Incr of string
  | Decr of string
  | Deref_read of string
  | Deref_write of string * expr
  | Push_back of string * expr
  | Push_front of string * expr
  | Pop_back of string
  | Erase of { container : string; at : string; result : string option }
  | Insert of {
      container : string;
      at : string;
      value : expr;
      result : string option;
    }
  | Algo of { algo : string; args : arg list; result : string option }
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Expr_stmt of expr

val stmt : ?label:string -> node -> stmt

val pp_expr : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit

val derefs_in : expr -> string list
(** Iterator variables dereferenced inside an expression. *)

val cond_derefs : cond -> string list
