(* Render a checked-language AST back to the surface syntax of {!Parser}.
   [Parser.parse_program (to_source p)] yields a structurally equal
   program (labels aside), which the round-trip property test verifies
   over the whole corpus. *)

open Ast

let rec pp_expr ppf = function
  | Const k -> Fmt.int ppf k
  | Var x -> Fmt.string ppf x
  | Deref x -> Fmt.pf ppf "*%s" x
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args

let pp_cond ppf = function
  | Iter_ne (a, b) -> Fmt.pf ppf "%s != %s" a b
  | Iter_eq (a, b) -> Fmt.pf ppf "%s == %s" a b
  | Pred e -> pp_expr ppf e

let pp_arg ppf = function
  | A_range (R_container c) -> Fmt.string ppf c
  | A_range (R_iters (i, j)) -> Fmt.pf ppf "%s..%s" i j
  | A_iter it -> Fmt.string ppf it
  | A_value e -> pp_expr ppf e
  | A_pred p -> Fmt.string ppf p

let pp_init ppf = function
  | Begin_of c -> Fmt.pf ppf "%s.begin()" c
  | End_of c -> Fmt.pf ppf "%s.end()" c
  | Copy_of x -> Fmt.string ppf x
  | Singular_init -> Fmt.string ppf "singular"

let rec pp_stmt ~indent ppf { node; _ } =
  let pad = String.make indent ' ' in
  match node with
  | Decl_container { name; kind; sorted } ->
    Fmt.pf ppf "%s%s<_> %s%s;" pad (kind_name kind) name
      (if sorted then " sorted" else "")
  | Decl_iter { name; init } -> Fmt.pf ppf "%siter %s = %a;" pad name pp_init init
  | Assign_iter { name; init } -> Fmt.pf ppf "%s%s = %a;" pad name pp_init init
  | Incr x -> Fmt.pf ppf "%s++%s;" pad x
  | Decr x -> Fmt.pf ppf "%s--%s;" pad x
  | Deref_read x -> Fmt.pf ppf "%s*%s;" pad x
  | Deref_write (x, e) -> Fmt.pf ppf "%s*%s = %a;" pad x pp_expr e
  | Push_back (c, e) -> Fmt.pf ppf "%s%s.push_back(%a);" pad c pp_expr e
  | Push_front (c, e) -> Fmt.pf ppf "%s%s.push_front(%a);" pad c pp_expr e
  | Pop_back c -> Fmt.pf ppf "%s%s.pop_back();" pad c
  | Erase { container; at; result = None } ->
    Fmt.pf ppf "%s%s.erase(%s);" pad container at
  | Erase { container; at; result = Some r } ->
    Fmt.pf ppf "%s%s = %s.erase(%s);" pad r container at
  | Insert { container; at; value; result = None } ->
    Fmt.pf ppf "%s%s.insert(%s, %a);" pad container at pp_expr value
  | Insert { container; at; value; result = Some r } ->
    Fmt.pf ppf "%s%s = %s.insert(%s, %a);" pad r container at pp_expr value
  | Algo { algo; args; result = None } ->
    Fmt.pf ppf "%s%s(%a);" pad algo Fmt.(list ~sep:(any ", ") pp_arg) args
  | Algo { algo; args; result = Some r } ->
    Fmt.pf ppf "%siter %s = %s(%a);" pad r algo
      Fmt.(list ~sep:(any ", ") pp_arg)
      args
  | Expr_stmt e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | If (cond, then_, []) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_cond cond
      (pp_block ~indent:(indent + 2))
      then_ pad
  | If (cond, then_, else_) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_cond cond
      (pp_block ~indent:(indent + 2))
      then_ pad
      (pp_block ~indent:(indent + 2))
      else_ pad
  | While (cond, body) ->
    Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_cond cond
      (pp_block ~indent:(indent + 2))
      body pad

and pp_block ~indent ppf stmts =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) ppf stmts

let to_source program = Fmt.str "@[<v>%a@]" (pp_block ~indent:0) program

(* Structural program equality ignoring labels — what the round-trip
   preserves. *)
let rec stmt_equal a b =
  match a.node, b.node with
  | If (c1, t1, e1), If (c2, t2, e2) ->
    c1 = c2 && block_equal t1 t2 && block_equal e1 e2
  | While (c1, b1), While (c2, b2) -> c1 = c2 && block_equal b1 b2
  | n1, n2 -> n1 = n2

and block_equal xs ys =
  List.length xs = List.length ys && List.for_all2 stmt_equal xs ys
