(** Canonical checked programs: the paper's examples (Fig. 4, the
    Section 3.2 sorted-find, the Section 3.1 multipass archetype case)
    and their corrected variants, each with expected diagnostic counts.
    Used by the tests, the examples, the CLI and the bench harness. *)

type expectation = {
  expect_errors : int;
  expect_warnings : int;
  expect_suggestions : int;
}

type case = {
  case_name : string;
  program : Ast.stmt list;
  expect : expectation;
  description : string;
}

(** {2 Named programs} *)

val fig4_buggy : Ast.stmt list
(** The textbook erase loop with the result discarded. *)

val fig4_fixed : Ast.stmt list
val list_erase_fixed : Ast.stmt list
val push_back_while_iterating : Ast.stmt list
val push_back_while_iterating_list : Ast.stmt list
val deref_end : Ast.stmt list
val unchecked_find_result : Ast.stmt list
val checked_find_result : Ast.stmt list
val sorted_then_linear_find : Ast.stmt list
val binary_search_unsorted : Ast.stmt list
val binary_search_sorted : Ast.stmt list
val sorted_then_push_then_binary_search : Ast.stmt list
val sort_on_list : Ast.stmt list
val max_element_on_stream : Ast.stmt list
val stream_traversed_twice : Ast.stmt list
val stream_single_traversal : Ast.stmt list
val use_of_singular : Ast.stmt list
val clean_pipeline : Ast.stmt list
val set_union_unsorted : Ast.stmt list
val set_union_sorted : Ast.stmt list

val all : case list

val generate : blocks:int -> buggy_every:int -> Ast.stmt list
(** Programs of [blocks] loop blocks for the throughput bench; every
    [buggy_every]-th block contains the Fig. 4 bug (0 = none). *)
