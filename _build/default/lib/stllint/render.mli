(** Render a checked-language AST back to the {!Parser} surface syntax;
    parsing the result reproduces the program structurally (labels
    aside). *)

val to_source : Ast.stmt list -> string

val stmt_equal : Ast.stmt -> Ast.stmt -> bool
(** Structural equality ignoring source labels. *)

val block_equal : Ast.stmt list -> Ast.stmt list -> bool

val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_block : indent:int -> Format.formatter -> Ast.stmt list -> unit
