(* The little imperative language STLlint checks.

   Programs manipulate containers, iterators and generic algorithms at the
   same abstraction level as the paper's C++ examples: the checker never
   sees an implementation, only the library-level operations with their
   specifications (Spec). Statements carry a source label so diagnostics
   point at the offending line, "the actual point of error" (Section 2.1). *)

type container_kind =
  | Vector (* random-access; mutations invalidate all iterators *)
  | List_ (* bidirectional; erase invalidates only the erased position *)
  | Deque (* random-access; mutations invalidate all iterators *)
  | Istream (* an input stream: single-pass input iterators *)

let kind_name = function
  | Vector -> "vector"
  | List_ -> "list"
  | Deque -> "deque"
  | Istream -> "istream"

let kind_category = function
  | Vector | Deque -> Gp_sequence.Iter.Random_access
  | List_ -> Gp_sequence.Iter.Bidirectional
  | Istream -> Gp_sequence.Iter.Input

(* Value expressions are deliberately coarse: the checker reasons about
   iterators and container states, not arithmetic. A [Deref] inside an
   expression is what triggers dereference checking. *)
type expr =
  | Const of int
  | Var of string
  | Deref of string (* *it *)
  | Call of string * expr list (* opaque helper, e.g. fgrade of the current element *)

type cond =
  | Iter_ne of string * string (* it != end *)
  | Iter_eq of string * string
  | Pred of expr (* opaque boolean over dereferenced iterators *)

type iter_init =
  | Begin_of of string
  | End_of of string
  | Copy_of of string
  | Singular_init

type range =
  | R_container of string (* c.begin(), c.end() *)
  | R_iters of string * string

type arg =
  | A_range of range
  | A_iter of string
  | A_value of expr
  | A_pred of string (* predicate name, opaque *)

type stmt = { label : string; node : node }

and node =
  | Decl_container of { name : string; kind : container_kind; sorted : bool }
  | Decl_iter of { name : string; init : iter_init }
  | Assign_iter of { name : string; init : iter_init }
  | Incr of string
  | Decr of string
  | Deref_read of string (* use *it as an rvalue statement *)
  | Deref_write of string * expr (* *it = e *)
  | Push_back of string * expr
  | Push_front of string * expr
  | Pop_back of string
  | Erase of { container : string; at : string; result : string option }
  | Insert of {
      container : string;
      at : string;
      value : expr;
      result : string option;
    }
  | Algo of { algo : string; args : arg list; result : string option }
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Expr_stmt of expr (* evaluate for effect; derefs are checked *)

let stmt ?(label = "") node = { label; node }

let rec pp_expr ppf = function
  | Const i -> Fmt.int ppf i
  | Var x -> Fmt.string ppf x
  | Deref x -> Fmt.pf ppf "*%s" x
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let pp_cond ppf = function
  | Iter_ne (a, b) -> Fmt.pf ppf "%s != %s" a b
  | Iter_eq (a, b) -> Fmt.pf ppf "%s == %s" a b
  | Pred e -> pp_expr ppf e

(* Expressions mentioning a dereference of an iterator variable. *)
let rec derefs_in = function
  | Const _ | Var _ -> []
  | Deref x -> [ x ]
  | Call (_, args) -> List.concat_map derefs_in args

let cond_derefs = function
  | Iter_ne _ | Iter_eq _ -> []
  | Pred e -> derefs_in e
