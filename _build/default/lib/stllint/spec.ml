(* Library-supplied semantic specifications.

   "By analyzing the behavior of abstractions at a high level and ignoring
   the implementation of the abstractions, STLlint is able to detect errors
   in the use of libraries that could not be detected with traditional
   language-level checking."

   Each container operation declares its iterator-invalidation effect; each
   algorithm declares its iterator-concept requirement (including the
   *semantic* multipass requirement of Forward Iterator), its
   preconditions (sortedness), its postconditions (sortedness established,
   shape of the returned iterator), and an optional algorithmic-optimization
   suggestion fired when the input is known sorted (Section 3.2). *)

type invalidation =
  | Invalidates_all (* vector/deque structural mutation *)
  | Invalidates_point (* list erase: only the erased position *)
  | Invalidates_none (* list insert *)

let erase_effect = function
  | Ast.Vector | Ast.Deque -> Invalidates_all
  | Ast.List_ -> Invalidates_point
  | Ast.Istream -> Invalidates_all

let insert_effect = function
  | Ast.Vector | Ast.Deque -> Invalidates_all
  | Ast.List_ -> Invalidates_none
  | Ast.Istream -> Invalidates_all

let push_effect = function
  | Ast.Vector | Ast.Deque -> Invalidates_all
  | Ast.List_ -> Invalidates_none
  | Ast.Istream -> Invalidates_all

(* What kind of iterator an algorithm returns. *)
type result_kind =
  | R_none (* returns void / a scalar, no iterator *)
  | R_iter_maybe_end (* an iterator that may equal end (find, ...) *)
  | R_iter_valid (* an iterator guaranteed dereferenceable *)

type algo_spec = {
  sp_name : string;
  sp_category : Gp_sequence.Iter.category; (* minimal concept required *)
  sp_multipass : bool; (* semantic Forward requirement *)
  sp_requires_sorted : bool;
  sp_establishes_sorted : bool;
  sp_mutates : bool; (* writes through the range (values only) *)
  sp_result : result_kind;
  sp_sorted_alternative : string option;
      (* cheaper algorithm when the range is known sorted *)
}

let algo ?(multipass = false) ?(requires_sorted = false)
    ?(establishes_sorted = false) ?(mutates = false) ?(result = R_none)
    ?sorted_alternative name category =
  {
    sp_name = name;
    sp_category = category;
    sp_multipass = multipass;
    sp_requires_sorted = requires_sorted;
    sp_establishes_sorted = establishes_sorted;
    sp_mutates = mutates;
    sp_result = result;
    sp_sorted_alternative = sorted_alternative;
  }

open Gp_sequence.Iter

let algorithms =
  [
    algo "find" Input ~result:R_iter_maybe_end ~sorted_alternative:"lower_bound";
    algo "find_if" Input ~result:R_iter_maybe_end;
    algo "count" Input ~sorted_alternative:"equal_range";
    algo "accumulate" Input;
    algo "for_each" Input;
    algo "copy" Input;
    algo "equal" Input;
    (* max_element keeps a saved iterator: the multipass requirement the
       semantic Input-Iterator archetype exposes (Section 3.1) *)
    algo "max_element" Forward ~multipass:true ~result:R_iter_maybe_end;
    algo "min_element" Forward ~multipass:true ~result:R_iter_maybe_end;
    algo "adjacent_find" Forward ~multipass:true ~result:R_iter_maybe_end;
    algo "unique" Forward ~multipass:true ~mutates:true ~result:R_iter_maybe_end;
    algo "remove" Forward ~mutates:true ~result:R_iter_maybe_end;
    algo "rotate" Forward ~multipass:true ~mutates:true ~result:R_iter_maybe_end;
    algo "fill" Forward ~mutates:true;
    algo "reverse" Bidirectional ~mutates:true;
    algo "sort" Random_access ~mutates:true ~establishes_sorted:true;
    algo "stable_sort" Random_access ~mutates:true ~establishes_sorted:true;
    algo "nth_element" Random_access ~mutates:true;
    algo "lower_bound" Forward ~requires_sorted:true ~result:R_iter_maybe_end;
    algo "upper_bound" Forward ~requires_sorted:true ~result:R_iter_maybe_end;
    algo "binary_search" Forward ~requires_sorted:true;
    algo "merge" Input ~requires_sorted:true;
    algo "includes" Input ~requires_sorted:true;
    algo "set_union" Input ~requires_sorted:true;
    algo "set_intersection" Input ~requires_sorted:true;
    algo "set_difference" Input ~requires_sorted:true;
    algo "inplace_merge" Bidirectional ~requires_sorted:true ~mutates:true
      ~establishes_sorted:true;
  ]

let find_algo name =
  List.find_opt (fun s -> String.equal s.sp_name name) algorithms
