lib/stllint/render.mli: Ast Format
