lib/stllint/parser.ml: Ast Buffer Fmt Interp List Option String
