lib/stllint/interp.ml: Ast Fmt Gp_sequence List Printf Spec State String
