lib/stllint/ast.mli: Format Gp_sequence
