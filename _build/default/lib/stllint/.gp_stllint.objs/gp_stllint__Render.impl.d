lib/stllint/render.ml: Ast Fmt List String
