lib/stllint/interp.mli: Ast Format
