lib/stllint/state.ml: Ast Fmt List Map Spec String
