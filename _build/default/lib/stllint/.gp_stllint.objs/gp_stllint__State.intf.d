lib/stllint/state.mli: Ast Format Gp_sequence Map Spec
