lib/stllint/spec.ml: Ast Gp_sequence List String
