lib/stllint/corpus.mli: Ast
