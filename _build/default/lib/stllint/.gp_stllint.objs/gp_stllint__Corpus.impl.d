lib/stllint/corpus.ml: Ast List Printf
