lib/stllint/ast.ml: Fmt Gp_sequence List
