lib/stllint/parser.mli: Ast Interp
