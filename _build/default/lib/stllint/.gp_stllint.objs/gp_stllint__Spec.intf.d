lib/stllint/spec.mli: Ast Gp_sequence
