(* Canonical checked programs: the paper's examples and their corrected
   variants, used by the tests, the examples and the bench harness.

   Each program is (name, AST, expectation). *)

open Ast

type expectation = {
  expect_errors : int;
  expect_warnings : int;
  expect_suggestions : int;
}

type case = {
  case_name : string;
  program : stmt list;
  expect : expectation;
  description : string;
}

let case ?(errors = 0) ?(warnings = 0) ?(suggestions = 0) name description
    program =
  {
    case_name = name;
    program;
    expect =
      {
        expect_errors = errors;
        expect_warnings = warnings;
        expect_suggestions = suggestions;
      };
    description;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 4: the misguided optimization                                  *)
(* ------------------------------------------------------------------ *)

(* The textbook routine that extracts and erases failing grades, with the
   erase result discarded: after the first erase the loop re-tests
   fgrade applied to a singular iterator dereference. *)
let fig4_buggy =
  [
    stmt ~label:"vector<student_info> students"
      (Decl_container { name = "students"; kind = Vector; sorted = false });
    stmt ~label:"vector<student_info> fail"
      (Decl_container { name = "fail"; kind = Vector; sorted = false });
    stmt ~label:"iter = students.begin()"
      (Decl_iter { name = "iter"; init = Begin_of "students" });
    stmt ~label:"end_it = students.end()"
      (Decl_iter { name = "end_it"; init = End_of "students" });
    stmt ~label:"while (iter != end_it)"
      (While
         ( Iter_ne ("iter", "end_it"),
           [
             stmt ~label:"if (fgrade(*iter))"
               (If
                  ( Pred (Call ("fgrade", [ Deref "iter" ])),
                    [
                      stmt ~label:"fail.push_back(*iter)"
                        (Push_back ("fail", Deref "iter"));
                      stmt ~label:"students.erase(iter)"
                        (Erase
                           { container = "students"; at = "iter";
                             result = None });
                    ],
                    [ stmt ~label:"++iter" (Incr "iter") ] ));
           ] ));
  ]

(* The corrected routine: iter = students.erase(iter), and end re-fetched
   (idiomatically, compare against students.end() each time). *)
let fig4_fixed =
  [
    stmt ~label:"vector<student_info> students"
      (Decl_container { name = "students"; kind = Vector; sorted = false });
    stmt ~label:"vector<student_info> fail"
      (Decl_container { name = "fail"; kind = Vector; sorted = false });
    stmt ~label:"iter = students.begin()"
      (Decl_iter { name = "iter"; init = Begin_of "students" });
    stmt ~label:"end_it = students.end()"
      (Decl_iter { name = "end_it"; init = End_of "students" });
    stmt ~label:"while (iter != end_it)"
      (While
         ( Iter_ne ("iter", "end_it"),
           [
             stmt ~label:"if (fgrade(*iter))"
               (If
                  ( Pred (Call ("fgrade", [ Deref "iter" ])),
                    [
                      stmt ~label:"fail.push_back(*iter)"
                        (Push_back ("fail", Deref "iter"));
                      stmt ~label:"iter = students.erase(iter)"
                        (Erase
                           { container = "students"; at = "iter";
                             result = Some "iter" });
                      stmt ~label:"end_it = students.end()"
                        (Assign_iter { name = "end_it"; init = End_of "students" });
                    ],
                    [ stmt ~label:"++iter" (Incr "iter") ] ));
           ] ));
  ]

(* On a list, erase invalidates only the erased node — but discarding the
   result still leaves iter singular. The list version with reassignment
   is clean and does not even need to re-fetch end(). *)
let list_erase_fixed =
  [
    stmt (Decl_container { name = "xs"; kind = List_; sorted = false });
    stmt (Decl_iter { name = "it"; init = Begin_of "xs" });
    stmt (Decl_iter { name = "last"; init = End_of "xs" });
    stmt ~label:"while (it != last)"
      (While
         ( Iter_ne ("it", "last"),
           [
             stmt ~label:"if (pred(*it))"
               (If
                  ( Pred (Call ("pred", [ Deref "it" ])),
                    [
                      stmt ~label:"it = xs.erase(it)"
                        (Erase { container = "xs"; at = "it"; result = Some "it" });
                    ],
                    [ stmt ~label:"++it" (Incr "it") ] ));
           ] ));
  ]

(* ------------------------------------------------------------------ *)
(* Invalidation by growth                                              *)
(* ------------------------------------------------------------------ *)

(* push_back while iterating a vector: every std::vector tutorial's
   favourite trap. *)
let push_back_while_iterating =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt (Decl_iter { name = "it"; init = Begin_of "v" });
    stmt (Decl_iter { name = "last"; init = End_of "v" });
    stmt ~label:"while (it != last)"
      (While
         ( Iter_ne ("it", "last"),
           [
             stmt ~label:"v.push_back(*it)" (Push_back ("v", Deref "it"));
             stmt ~label:"++it" (Incr "it");
           ] ));
  ]

(* The same pattern on a list is fine: list insertion invalidates
   nothing. *)
let push_back_while_iterating_list =
  [
    stmt (Decl_container { name = "l"; kind = List_; sorted = false });
    stmt (Decl_iter { name = "it"; init = Begin_of "l" });
    stmt (Decl_iter { name = "last"; init = End_of "l" });
    stmt ~label:"while (it != last)"
      (While
         ( Iter_ne ("it", "last"),
           [
             stmt ~label:"l.push_back(*it)" (Push_back ("l", Deref "it"));
             stmt ~label:"++it" (Incr "it");
           ] ));
  ]

(* ------------------------------------------------------------------ *)
(* Past-the-end and unchecked results                                  *)
(* ------------------------------------------------------------------ *)

let deref_end =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt (Decl_iter { name = "e"; init = End_of "v" });
    stmt ~label:"*e" (Deref_read "e");
  ]

let unchecked_find_result =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"i = find(v.begin(), v.end(), 42)"
      (Algo
         { algo = "find";
           args = [ A_range (R_container "v"); A_value (Const 42) ];
           result = Some "i" });
    stmt ~label:"*i" (Deref_read "i");
  ]

let checked_find_result =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt (Decl_iter { name = "last"; init = End_of "v" });
    stmt ~label:"i = find(v.begin(), v.end(), 42)"
      (Algo
         { algo = "find";
           args = [ A_range (R_container "v"); A_value (Const 42) ];
           result = Some "i" });
    stmt ~label:"if (i != last) use(*i)"
      (If
         ( Iter_ne ("i", "last"),
           [ stmt ~label:"*i" (Deref_read "i") ],
           [] ));
  ]

(* ------------------------------------------------------------------ *)
(* Sortedness: precondition checking and optimization suggestion       *)
(* ------------------------------------------------------------------ *)

(* Section 3.2: sort then linear find — the suggestion to use
   lower_bound. *)
let sorted_then_linear_find =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"sort(v.begin(), v.end())"
      (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
    stmt ~label:"i = find(v.begin(), v.end(), 42)"
      (Algo
         { algo = "find";
           args = [ A_range (R_container "v"); A_value (Const 42) ];
           result = Some "i" });
  ]

(* binary_search without sorting first: unverifiable precondition. *)
let binary_search_unsorted =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"binary_search(v.begin(), v.end(), 7)"
      (Algo
         { algo = "binary_search";
           args = [ A_range (R_container "v"); A_value (Const 7) ];
           result = None });
  ]

let binary_search_sorted =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"sort(v.begin(), v.end())"
      (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
    stmt ~label:"binary_search(v.begin(), v.end(), 7)"
      (Algo
         { algo = "binary_search";
           args = [ A_range (R_container "v"); A_value (Const 7) ];
           result = None });
  ]

(* sortedness is destroyed by mutation: push_back after sort must bring
   the precondition warning back. *)
let sorted_then_push_then_binary_search =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"sort(v)"
      (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
    stmt ~label:"v.push_back(99)" (Push_back ("v", Const 99));
    stmt ~label:"binary_search(v, 7)"
      (Algo
         { algo = "binary_search";
           args = [ A_range (R_container "v"); A_value (Const 7) ];
           result = None });
  ]

(* ------------------------------------------------------------------ *)
(* Iterator-concept requirements                                       *)
(* ------------------------------------------------------------------ *)

(* sort on a list: requires random access. *)
let sort_on_list =
  [
    stmt (Decl_container { name = "l"; kind = List_; sorted = false });
    stmt ~label:"sort(l.begin(), l.end())"
      (Algo { algo = "sort"; args = [ A_range (R_container "l") ]; result = None });
  ]

(* max_element over an input stream: the multipass violation detected via
   the Input Iterator semantic archetype (Section 3.1). *)
let max_element_on_stream =
  [
    stmt (Decl_container { name = "cin"; kind = Istream; sorted = false });
    stmt ~label:"max_element(istream_begin, istream_end)"
      (Algo
         { algo = "max_element";
           args = [ A_range (R_container "cin") ];
           result = Some "m" });
  ]

(* accumulate over a stream is fine (single pass)... but doing it twice is
   not. *)
let stream_traversed_twice =
  [
    stmt (Decl_container { name = "cin"; kind = Istream; sorted = false });
    stmt ~label:"s1 = accumulate(cin)"
      (Algo
         { algo = "accumulate"; args = [ A_range (R_container "cin") ];
           result = None });
    stmt ~label:"s2 = accumulate(cin)"
      (Algo
         { algo = "accumulate"; args = [ A_range (R_container "cin") ];
           result = None });
  ]

let stream_single_traversal =
  [
    stmt (Decl_container { name = "cin"; kind = Istream; sorted = false });
    stmt ~label:"s = accumulate(cin)"
      (Algo
         { algo = "accumulate"; args = [ A_range (R_container "cin") ];
           result = None });
  ]

(* singular iterator: declared but never bound. *)
let use_of_singular =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt (Decl_iter { name = "it"; init = Singular_init });
    stmt ~label:"*it" (Deref_read "it");
  ]

(* a completely clean program: declare, fill, sort, lower_bound, checked
   use. *)
let clean_pipeline =
  [
    stmt (Decl_container { name = "v"; kind = Vector; sorted = false });
    stmt ~label:"v.push_back(3)" (Push_back ("v", Const 3));
    stmt ~label:"v.push_back(1)" (Push_back ("v", Const 1));
    stmt ~label:"sort(v)"
      (Algo { algo = "sort"; args = [ A_range (R_container "v") ]; result = None });
    stmt (Decl_iter { name = "last"; init = End_of "v" });
    stmt ~label:"i = lower_bound(v, 2)"
      (Algo
         { algo = "lower_bound";
           args = [ A_range (R_container "v"); A_value (Const 2) ];
           result = Some "i" });
    stmt ~label:"if (i != last) use(*i)"
      (If (Iter_ne ("i", "last"), [ stmt ~label:"*i" (Deref_read "i") ], []));
  ]

(* set operations need BOTH ranges sorted. *)
let set_union_unsorted =
  [
    stmt (Decl_container { name = "a"; kind = Vector; sorted = false });
    stmt (Decl_container { name = "b"; kind = Vector; sorted = false });
    stmt ~label:"sort(a)"
      (Algo { algo = "sort"; args = [ A_range (R_container "a") ]; result = None });
    stmt ~label:"set_union(a, b, out)"
      (Algo
         { algo = "set_union";
           args = [ A_range (R_container "a"); A_range (R_container "b") ];
           result = None });
  ]

let set_union_sorted =
  [
    stmt (Decl_container { name = "a"; kind = Vector; sorted = false });
    stmt (Decl_container { name = "b"; kind = Vector; sorted = false });
    stmt ~label:"sort(a)"
      (Algo { algo = "sort"; args = [ A_range (R_container "a") ]; result = None });
    stmt ~label:"sort(b)"
      (Algo { algo = "sort"; args = [ A_range (R_container "b") ]; result = None });
    stmt ~label:"set_union(a, b, out)"
      (Algo
         { algo = "set_union";
           args = [ A_range (R_container "a"); A_range (R_container "b") ];
           result = None });
  ]

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)
(* ------------------------------------------------------------------ *)

let all : case list =
  [
    case "fig4-buggy" ~errors:1
      "Fig. 4: erase discards its result; the loop dereferences a singular \
       iterator"
      fig4_buggy;
    case "fig4-fixed"
      "Fig. 4 corrected: iter = students.erase(iter), end refreshed"
      fig4_fixed;
    case "list-erase-fixed" "list erase with reassignment is clean"
      list_erase_fixed;
    case "push-back-while-iterating" ~errors:1
      "vector push_back invalidates the loop iterator" push_back_while_iterating;
    case "push-back-list-ok" "list push_back invalidates nothing"
      push_back_while_iterating_list;
    case "deref-end" ~errors:1 "dereference of end()" deref_end;
    case "unchecked-find" ~warnings:1
      "find result dereferenced without an end() check" unchecked_find_result;
    case "checked-find" "find result compared against end() before use"
      checked_find_result;
    case "sorted-then-linear-find" ~suggestions:1
      "Section 3.2: linear search over a sorted range" sorted_then_linear_find;
    case "binary-search-unsorted" ~warnings:1
      "binary_search precondition unverifiable" binary_search_unsorted;
    case "binary-search-sorted" "sort establishes the precondition"
      binary_search_sorted;
    case "sorted-push-binary-search" ~warnings:1
      "push_back destroys sortedness" sorted_then_push_then_binary_search;
    case "sort-on-list" ~errors:1 "sort needs random access"
      sort_on_list;
    case "max-element-on-stream" ~errors:1
      "Section 3.1: multipass requirement vs input iterator archetype"
      max_element_on_stream;
    case "stream-twice" ~errors:1 "single-pass stream traversed twice"
      stream_traversed_twice;
    case "stream-once" "single traversal of a stream is fine"
      stream_single_traversal;
    case "use-of-singular" ~errors:1 "default-initialised iterator used"
      use_of_singular;
    case "set-union-unsorted" ~warnings:1
      "set_union requires both ranges sorted; only one was"
      set_union_unsorted;
    case "set-union-sorted" "both inputs sorted: clean" set_union_sorted;
    case "clean-pipeline" "full pipeline with no defects" clean_pipeline;
  ]

(* ------------------------------------------------------------------ *)
(* Program generator (for the throughput bench): builds programs of      *)
(* [n] loop blocks, a fixed fraction of them containing the Fig. 4 bug. *)
(* ------------------------------------------------------------------ *)

let generate ~blocks ~buggy_every =
  let block i buggy =
    let v = Printf.sprintf "v%d" i in
    let it = Printf.sprintf "it%d" i in
    let last = Printf.sprintf "last%d" i in
    [
      stmt (Decl_container { name = v; kind = Vector; sorted = false });
      stmt (Decl_iter { name = it; init = Begin_of v });
      stmt (Decl_iter { name = last; init = End_of v });
      stmt
        ~label:(Printf.sprintf "block %d while loop" i)
        (While
           ( Iter_ne (it, last),
             [
               stmt
                 ~label:(Printf.sprintf "block %d body" i)
                 (If
                    ( Pred (Call ("p", [ Deref it ])),
                      (if buggy then
                         [
                           stmt
                             ~label:(Printf.sprintf "block %d erase" i)
                             (Erase { container = v; at = it; result = None });
                         ]
                       else
                         [
                           stmt
                             ~label:(Printf.sprintf "block %d erase" i)
                             (Erase { container = v; at = it; result = Some it });
                           stmt
                             ~label:(Printf.sprintf "block %d refresh end" i)
                             (Assign_iter { name = last; init = End_of v });
                         ]),
                      [ stmt ~label:"incr" (Incr it) ] ));
             ] ));
    ]
  in
  List.concat
    (List.init blocks (fun i -> block i (buggy_every > 0 && i mod buggy_every = 0)))
