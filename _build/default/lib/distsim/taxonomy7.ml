(* The seven-dimensional distributed-algorithms taxonomy (Section 4):

   (1) problem, (2) topology, (3) fault tolerance, (4) information sharing,
   (5) strategy, (6) timing, (7) process management.

   Built on the generic Gp_concepts.Taxonomy: nodes classify by the seven
   orthogonal dimensions, entries carry measured-or-analytic cost bounds on
   messages, time AND local computation (the measure the paper says is
   "rarely accounted for"), and queries pick the right algorithm for a
   situation. *)

open Gp_concepts

let dimensions =
  [ "problem"; "topology"; "fault-tolerance"; "information-sharing";
    "strategy"; "timing"; "process-management" ]

let build () =
  let t = Taxonomy.create "distributed algorithms" in
  (* roots per problem *)
  Taxonomy.add_node t "distributed"
    ~attributes:
      [ ("information-sharing", "message-passing");
        ("process-management", "static") ];
  Taxonomy.add_node t "leader-election" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "leader-election") ];
  Taxonomy.add_node t "broadcast" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "broadcast") ];
  Taxonomy.add_node t "aggregation" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "aggregation") ];
  Taxonomy.add_node t "shortest-paths" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "shortest-paths") ];
  Taxonomy.add_node t "spanning-tree" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "spanning-tree") ];
  (* refinements by topology / timing / strategy *)
  Taxonomy.add_node t "election-uni-ring" ~parents:[ "leader-election" ]
    ~attributes:
      [ ("topology", "unidirectional-ring"); ("timing", "asynchronous");
        ("strategy", "comparison"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "election-bi-ring" ~parents:[ "leader-election" ]
    ~attributes:
      [ ("topology", "bidirectional-ring"); ("timing", "asynchronous");
        ("strategy", "comparison"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "election-anon-ring" ~parents:[ "leader-election" ]
    ~attributes:
      [ ("topology", "unidirectional-ring"); ("timing", "asynchronous");
        ("strategy", "randomized"); ("fault-tolerance", "none");
        ("process-management", "anonymous") ];
  Taxonomy.add_node t "broadcast-arbitrary" ~parents:[ "broadcast" ]
    ~attributes:
      [ ("topology", "arbitrary"); ("timing", "asynchronous");
        ("strategy", "flooding"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "aggregation-arbitrary" ~parents:[ "aggregation" ]
    ~attributes:
      [ ("topology", "arbitrary"); ("timing", "asynchronous");
        ("strategy", "probe-echo"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "bfs-sync" ~parents:[ "spanning-tree" ]
    ~attributes:
      [ ("topology", "arbitrary"); ("timing", "synchronous");
        ("strategy", "flooding"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "sp-async" ~parents:[ "shortest-paths" ]
    ~attributes:
      [ ("topology", "arbitrary"); ("timing", "asynchronous");
        ("strategy", "distributed-control"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "mutual-exclusion" ~parents:[ "distributed" ]
    ~attributes:[ ("problem", "mutual-exclusion") ];
  Taxonomy.add_node t "mutex-ring" ~parents:[ "mutual-exclusion" ]
    ~attributes:
      [ ("topology", "unidirectional-ring"); ("timing", "asynchronous");
        ("strategy", "token-based"); ("fault-tolerance", "none") ];
  Taxonomy.add_node t "election-arbitrary" ~parents:[ "leader-election" ]
    ~attributes:
      [ ("topology", "arbitrary"); ("timing", "asynchronous");
        ("strategy", "flooding"); ("fault-tolerance", "none") ];
  (* entries: analytic bounds; benches attach measured numbers *)
  Taxonomy.add_entry t ~name:"LCR" ~node:"election-uni-ring"
    ~costs:
      [ ("messages", Complexity.quadratic "n");
        ("time", Complexity.linear "n");
        ("local-computation", Complexity.quadratic "n") ]
    ~doc:"Le Lann / Chang-Roberts: forward the maximum uid";
  Taxonomy.add_entry t ~name:"HS" ~node:"election-bi-ring"
    ~costs:
      [ ("messages", Complexity.n_log_n "n");
        ("time", Complexity.linear "n");
        ("local-computation", Complexity.n_log_n "n") ]
    ~doc:"Hirschberg-Sinclair: doubling probes in both directions";
  Taxonomy.add_entry t ~name:"randomized-LCR" ~node:"election-anon-ring"
    ~costs:
      [ ("messages", Complexity.quadratic "n");
        ("time", Complexity.linear "n") ]
    ~doc:"draw random ids, then LCR (anonymous ring)";
  Taxonomy.add_entry t ~name:"flooding" ~node:"broadcast-arbitrary"
    ~costs:
      [ ("messages", Complexity.linear "m");
        ("time", Complexity.linear "D");
        ("local-computation", Complexity.linear "m") ]
    ~doc:"forward on first receipt";
  Taxonomy.add_entry t ~name:"probe-echo" ~node:"aggregation-arbitrary"
    ~costs:
      [ ("messages", Complexity.linear "m");
        ("time", Complexity.linear "D") ]
    ~doc:"Segall's probe-echo convergecast";
  Taxonomy.add_entry t ~name:"sync-BFS" ~node:"bfs-sync"
    ~costs:
      [ ("messages", Complexity.linear "m");
        ("time", Complexity.linear "D") ]
    ~doc:"level-by-level flooding under synchrony";
  Taxonomy.add_entry t ~name:"token-ring" ~node:"mutex-ring"
    ~costs:
      [ ("messages", Complexity.linear "n");
        ("time", Complexity.linear "n") ]
    ~doc:"circulating token grants the critical section (per circuit)";
  Taxonomy.add_entry t ~name:"FloodMax" ~node:"election-arbitrary"
    ~costs:
      [ ("messages", Complexity.mul (Complexity.linear "D") (Complexity.linear "m"));
        ("time", Complexity.linear "D") ]
    ~doc:"flood the maximum uid with a diameter hop budget";
  Taxonomy.add_entry t ~name:"async-Bellman-Ford" ~node:"sp-async"
    ~costs:
      [ ("messages", Complexity.mul (Complexity.linear "n") (Complexity.linear "m"));
        ("time", Complexity.linear "n") ]
    ~doc:"relaxation with re-broadcast on improvement";
  t

(* Pick the correct algorithm for a situation (Section 4's "helps a system
   designer to pick the correct algorithm for a particular application"). *)
let pick_for t ~problem ~topology ~measure =
  Taxonomy.pick t
    ~requirements:[ ("problem", problem); ("topology", topology) ]
    ~measure

(* Situations with no algorithm registered — design gaps. *)
let gaps = Taxonomy.gaps
