(** The seven-dimensional distributed-algorithms taxonomy (Section 4):
    problem, topology, fault tolerance, information sharing, strategy,
    timing, process management — built on {!Gp_concepts.Taxonomy} with
    cost annotations including local computation. *)

val dimensions : string list
(** The seven orthogonal dimensions. *)

val build : unit -> Gp_concepts.Taxonomy.t
(** Nodes for the classification, entries for every algorithm in
    {!Algorithms} with analytic cost bounds. *)

val pick_for :
  Gp_concepts.Taxonomy.t ->
  problem:string ->
  topology:string ->
  measure:string ->
  Gp_concepts.Taxonomy.entry list
(** "Pick the correct algorithm for a particular application." *)

val gaps : Gp_concepts.Taxonomy.t -> string list
(** Refinements with no registered algorithm — design opportunities. *)
