(** Network topologies — dimension 2 of the seven-dimensional taxonomy.
    A topology is an adjacency structure over nodes [0..n-1] with
    deterministic neighbour order. *)

type t

val make : string -> int -> (int -> int list) -> t
(** [make name n neighbours]; raises [Invalid_argument] on [n <= 0]. *)

val ring_unidirectional : int -> t
(** Each node's single neighbour is clockwise (LCR's model). *)

val ring : int -> t
(** Bidirectional ring: neighbours [cw; ccw] (HS's model). *)

val complete : int -> t
val star : int -> t
(** Node 0 is the hub. *)

val line : int -> t
val grid : int -> int -> t
val binary_tree : int -> t
(** Balanced binary tree rooted at 0; children and parent as
    neighbours. *)

val random : seed:int -> p:float -> int -> t
(** Seeded Erdős–Rényi-style undirected graph, forced connected by an
    overlaid line. *)

val num_nodes : t -> int
val neighbors : t -> int -> int list
val degree : t -> int -> int
val num_edges : t -> int
(** Directed edge count (each undirected edge counts twice). *)

val diameter : t -> int
(** Hop diameter via all-sources BFS; 0 for a single node. *)
