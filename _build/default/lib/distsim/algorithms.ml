(* Distributed algorithms over the simulator — the concrete entries of the
   seven-dimensional taxonomy, instrumented for messages, time and local
   computation.

   Each algorithm defines its message type, its per-node state machine, and
   a [run] function returning the engine result. Asymptotics reproduced by
   experiment C5: LCR uses O(n^2) messages on a unidirectional ring, HS
   uses O(n log n) on a bidirectional ring, flooding uses O(m). *)

open Engine

(* ------------------------------------------------------------------ *)
(* LCR leader election (Le Lann / Chang-Roberts)                       *)
(* ------------------------------------------------------------------ *)

module Lcr = struct
  type msg = Token of int | Leader of int

  type state = { uid : int; is_leader : bool }

  (* charge 1 per comparison: the local-computation account *)
  let algorithm ~uids =
    {
      algo_name = "LCR";
      initial =
        (fun ctx ->
          let uid = uids.(ctx.self) in
          List.iter (fun nb -> ctx.send nb (Token uid)) ctx.neighbors;
          { uid; is_leader = false });
      on_message =
        (fun ctx st ~src:_ msg ->
          match msg with
          | Token u ->
            ctx.charge 1;
            if u > st.uid then begin
              List.iter (fun nb -> ctx.send nb (Token u)) ctx.neighbors;
              st
            end
            else if u = st.uid then begin
              (* token went all the way around: elected *)
              ctx.decide (string_of_int st.uid);
              List.iter (fun nb -> ctx.send nb (Leader st.uid)) ctx.neighbors;
              { st with is_leader = true }
            end
            else st (* swallow smaller token *)
          | Leader l ->
            if not st.is_leader then begin
              ctx.decide (string_of_int l);
              List.iter (fun nb -> ctx.send nb (Leader l)) ctx.neighbors;
              ctx.halt ()
            end
            else ctx.halt ();
            st);
    }

  let run ?config ~uids topo = Engine.run ?config topo (algorithm ~uids)
end

(* ------------------------------------------------------------------ *)
(* HS leader election (Hirschberg-Sinclair)                            *)
(* ------------------------------------------------------------------ *)

module Hs = struct
  (* dir: which neighbour the token travels toward, encoded as the index
     into the (cw, ccw) pair. *)
  type msg =
    | Out of { uid : int; hops : int; dir : int }
    | In of { uid : int; dir : int }
    | Leader of int

  type state = {
    uid : int;
    phase : int;
    returned : bool * bool; (* cw, ccw tokens back? *)
    is_leader : bool;
    done_ : bool;
  }

  let cw ctx = List.nth ctx.neighbors 0
  let ccw ctx = List.nth ctx.neighbors (min 1 (List.length ctx.neighbors - 1))

  let neighbor ctx dir = if dir = 0 then cw ctx else ccw ctx
  let opposite ctx dir = if dir = 0 then ccw ctx else cw ctx

  let launch ctx uid phase =
    let hops = 1 lsl phase in
    ctx.send (cw ctx) (Out { uid; hops; dir = 0 });
    ctx.send (ccw ctx) (Out { uid; hops; dir = 1 })

  let algorithm ~uids =
    {
      algo_name = "HS";
      initial =
        (fun ctx ->
          let uid = uids.(ctx.self) in
          launch ctx uid 0;
          { uid; phase = 0; returned = (false, false); is_leader = false;
            done_ = false });
      on_message =
        (fun ctx st ~src:_ msg ->
          match msg with
          | Out { uid; hops; dir } ->
            ctx.charge 1;
            if uid > st.uid then begin
              (* relay or bounce *)
              if hops > 1 then
                ctx.send (neighbor ctx dir) (Out { uid; hops = hops - 1; dir })
              else ctx.send (opposite ctx dir) (In { uid; dir });
              st
            end
            else if uid = st.uid then begin
              (* own token circumnavigated: elected *)
              if not st.is_leader then begin
                ctx.decide (string_of_int st.uid);
                ctx.send (cw ctx) (Leader st.uid)
              end;
              { st with is_leader = true }
            end
            else st
          | In { uid; dir } ->
            if uid <> st.uid then begin
              (* keep travelling home: an In token moving in direction dir
                 was bounced back, so forward it the way it is going *)
              ctx.send (opposite ctx dir) (In { uid; dir });
              st
            end
            else begin
              let r0, r1 = st.returned in
              let returned = if dir = 0 then (true, r1) else (r0, true) in
              let st = { st with returned } in
              if fst st.returned && snd st.returned && not st.done_ then begin
                let phase = st.phase + 1 in
                launch ctx st.uid phase;
                { st with phase; returned = (false, false) }
              end
              else st
            end
          | Leader l ->
            if not st.is_leader && not st.done_ then begin
              ctx.decide (string_of_int l);
              ctx.send (cw ctx) (Leader l)
            end;
            ctx.halt ();
            { st with done_ = true });
    }

  let run ?config ~uids topo =
    if Topology.num_nodes topo < 3 then
      invalid_arg "Hs.run: needs a bidirectional ring of at least 3 nodes";
    Engine.run ?config topo (algorithm ~uids)
end

(* ------------------------------------------------------------------ *)
(* Flooding broadcast                                                  *)
(* ------------------------------------------------------------------ *)

module Flood = struct
  type msg = Payload of int

  type state = { informed : bool }

  let algorithm ~root ~value =
    {
      algo_name = "flooding broadcast";
      initial =
        (fun ctx ->
          if ctx.self = root then begin
            ctx.decide (string_of_int value);
            List.iter (fun nb -> ctx.send nb (Payload value)) ctx.neighbors;
            { informed = true }
          end
          else { informed = false });
      on_message =
        (fun ctx st ~src (Payload v) ->
          ctx.charge 1;
          if st.informed then st
          else begin
            ctx.decide (string_of_int v);
            List.iter
              (fun nb -> if nb <> src then ctx.send nb (Payload v))
              ctx.neighbors;
            { informed = true }
          end);
    }

  let run ?config ~root ~value topo =
    Engine.run ?config topo (algorithm ~root ~value)
end

(* ------------------------------------------------------------------ *)
(* Probe-echo (Segall): spanning tree + convergecast aggregation       *)
(* ------------------------------------------------------------------ *)

module Echo = struct
  type msg = Probe | Echo of int (* subtree size *)

  type state = {
    parent : int option;
    pending : int; (* echoes still expected *)
    acc : int; (* accumulated subtree size *)
    seen : bool;
  }

  let algorithm ~root =
    {
      algo_name = "probe-echo";
      initial =
        (fun ctx ->
          if ctx.self = root then begin
            List.iter (fun nb -> ctx.send nb Probe) ctx.neighbors;
            { parent = None; pending = List.length ctx.neighbors; acc = 1;
              seen = true }
          end
          else { parent = None; pending = 0; acc = 1; seen = false });
      on_message =
        (fun ctx st ~src msg ->
          ctx.charge 1;
          let finish st =
            if st.pending = 0 then begin
              (match st.parent with
              | Some p -> ctx.send p (Echo st.acc)
              | None -> ctx.decide (string_of_int st.acc));
              st
            end
            else st
          in
          match msg with
          | Probe ->
            if not st.seen then begin
              let others = List.filter (fun nb -> nb <> src) ctx.neighbors in
              List.iter (fun nb -> ctx.send nb Probe) others;
              finish
                { parent = Some src; pending = List.length others; acc = 1;
                  seen = true }
            end
            else begin
              (* already in the tree: answer with an empty echo *)
              ctx.send src (Echo 0);
              st
            end
          | Echo k ->
            finish { st with pending = st.pending - 1; acc = st.acc + k });
    }

  let run ?config ~root topo = Engine.run ?config topo (algorithm ~root)
end

(* ------------------------------------------------------------------ *)
(* Synchronous BFS spanning tree                                       *)
(* ------------------------------------------------------------------ *)

module Bfs_tree = struct
  type msg = Level of int

  type state = { dist : int option }

  let algorithm ~root =
    {
      algo_name = "synchronous BFS tree";
      initial =
        (fun ctx ->
          if ctx.self = root then begin
            ctx.decide "0";
            List.iter (fun nb -> ctx.send nb (Level 0)) ctx.neighbors;
            { dist = Some 0 }
          end
          else { dist = None });
      on_message =
        (fun ctx st ~src:_ (Level d) ->
          ctx.charge 1;
          match st.dist with
          | Some _ -> st
          | None ->
            let mine = d + 1 in
            ctx.decide (string_of_int mine);
            List.iter (fun nb -> ctx.send nb (Level mine)) ctx.neighbors;
            { dist = Some mine });
    }

  let run ?config ~root topo = Engine.run ?config topo (algorithm ~root)
end

(* ------------------------------------------------------------------ *)
(* Asynchronous Bellman-Ford (hop counts)                              *)
(* ------------------------------------------------------------------ *)

module Bellman_ford = struct
  type msg = Dist of int

  type state = { dist : int }

  let algorithm ~root =
    {
      algo_name = "async Bellman-Ford";
      initial =
        (fun ctx ->
          if ctx.self = root then begin
            ctx.decide "0";
            List.iter (fun nb -> ctx.send nb (Dist 0)) ctx.neighbors;
            { dist = 0 }
          end
          else { dist = max_int });
      on_message =
        (fun ctx st ~src:_ (Dist d) ->
          ctx.charge 1;
          let candidate = d + 1 in
          if candidate < st.dist then begin
            ctx.decide (string_of_int candidate);
            List.iter (fun nb -> ctx.send nb (Dist candidate)) ctx.neighbors;
            { dist = candidate }
          end
          else st);
    }

  let run ?config ~root topo = Engine.run ?config topo (algorithm ~root)
end

(* ------------------------------------------------------------------ *)
(* Randomized leader election on an anonymous ring                     *)
(* ------------------------------------------------------------------ *)

module Randomized_election = struct
  (* Anonymous nodes draw large random identifiers and run LCR over them;
     the draw is seeded so runs are reproducible. Collisions over a 30-bit
     space are vanishingly rare; the run reports whether one occurred. *)
  let draw ~seed n =
    let st = Random.State.make [| seed; 0x5eed |] in
    Array.init n (fun _ -> 1 + Random.State.int st ((1 lsl 30) - 1))

  let run ?config ~seed topo =
    let n = Topology.num_nodes topo in
    let uids = draw ~seed n in
    let distinct =
      Array.length uids
      = List.length (List.sort_uniq compare (Array.to_list uids))
    in
    (Lcr.run ?config ~uids topo, distinct)
end

(* ------------------------------------------------------------------ *)
(* Token-ring mutual exclusion                                         *)
(* ------------------------------------------------------------------ *)

module Token_ring = struct
  (* A single token circulates a unidirectional ring; holding it grants
     the critical section. The run ends when the token has completed
     [entries] full circuits (measured at node 0), at which point every
     node has entered its critical section exactly [entries] times.
     Message complexity: exactly entries * n. *)
  type msg = Token

  type state = { cs_entries : int }

  let forward ctx =
    match ctx.neighbors with nb :: _ -> ctx.send nb Token | [] -> ()

  let algorithm ~entries =
    {
      algo_name = "token-ring mutual exclusion";
      initial =
        (fun ctx ->
          if ctx.self = 0 then begin
            (* node 0 enters the critical section and launches the token *)
            ctx.charge 1;
            ctx.decide "1";
            forward ctx;
            { cs_entries = 1 }
          end
          else { cs_entries = 0 });
      on_message =
        (fun ctx st ~src:_ Token ->
          ctx.charge 1;
          if ctx.self = 0 then begin
            (* a receipt at node 0 means a circuit just completed; node 0
               entered once at the start of each circuit *)
            if st.cs_entries >= entries then begin
              ctx.halt ();
              st
            end
            else begin
              let st = { cs_entries = st.cs_entries + 1 } in
              ctx.decide (string_of_int st.cs_entries);
              forward ctx;
              st
            end
          end
          else begin
            let st = { cs_entries = st.cs_entries + 1 } in
            ctx.decide (string_of_int st.cs_entries);
            forward ctx;
            st
          end);
    }

  let run ?config ~entries topo = Engine.run ?config topo (algorithm ~entries)
end

(* ------------------------------------------------------------------ *)
(* FloodMax leader election on arbitrary graphs                        *)
(* ------------------------------------------------------------------ *)

module Floodmax = struct
  (* Every node floods the largest uid it has seen, with a hop budget of
     the graph diameter; after quiescence every node has the global max.
     Works on any connected topology (the taxonomy's election beyond
     rings). Messages O(diam * m) worst case. *)
  type msg = Max of { uid : int; ttl : int }

  type state = { best : int; best_ttl : int }

  (* A node re-broadcasts when it learns a larger uid OR when the same
     best uid arrives with more remaining hop budget than any copy it
     forwarded before (under asynchrony a long-path copy with a small
     budget can arrive first; without this, propagation can die early). *)
  let algorithm ~uids ~diameter =
    {
      algo_name = "FloodMax";
      initial =
        (fun ctx ->
          let uid = uids.(ctx.self) in
          ctx.decide (string_of_int uid);
          List.iter
            (fun nb -> ctx.send nb (Max { uid; ttl = diameter }))
            ctx.neighbors;
          { best = uid; best_ttl = diameter });
      on_message =
        (fun ctx st ~src (Max { uid; ttl }) ->
          ctx.charge 1;
          let improves =
            uid > st.best || (uid = st.best && ttl > st.best_ttl)
          in
          if improves then begin
            if uid > st.best then ctx.decide (string_of_int uid);
            if ttl > 0 then
              List.iter
                (fun nb ->
                  if nb <> src then ctx.send nb (Max { uid; ttl = ttl - 1 }))
                ctx.neighbors;
            { best = uid; best_ttl = ttl }
          end
          else st);
    }

  let run ?config ~uids topo =
    let diameter = Topology.diameter topo in
    Engine.run ?config topo (algorithm ~uids ~diameter)
end

(* ------------------------------------------------------------------ *)
(* Result digests                                                      *)
(* ------------------------------------------------------------------ *)

(* Agreement: every non-crashed node decided the same value. *)
let agreed (r : Engine.result) =
  let values =
    Array.to_list r.decisions |> List.filter_map (fun x -> x)
    |> List.sort_uniq String.compare
  in
  match values with [ v ] -> Some v | _ -> None

let all_decided (r : Engine.result) =
  Array.for_all (fun d -> d <> None) r.decisions
