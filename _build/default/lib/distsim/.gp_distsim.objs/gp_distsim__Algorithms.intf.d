lib/distsim/algorithms.mli: Engine Topology
