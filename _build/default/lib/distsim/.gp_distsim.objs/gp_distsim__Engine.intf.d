lib/distsim/engine.mli: Format Topology
