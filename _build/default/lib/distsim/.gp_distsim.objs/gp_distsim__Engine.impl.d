lib/distsim/engine.ml: Array Float Fmt Hashtbl List Random Topology
