lib/distsim/topology.ml: Array List Printf Queue Random
