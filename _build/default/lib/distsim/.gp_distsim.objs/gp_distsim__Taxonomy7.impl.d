lib/distsim/taxonomy7.ml: Complexity Gp_concepts Taxonomy
