lib/distsim/topology.mli:
