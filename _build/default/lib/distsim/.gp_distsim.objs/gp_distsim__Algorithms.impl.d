lib/distsim/algorithms.ml: Array Engine List Random String Topology
