lib/distsim/taxonomy7.mli: Gp_concepts
