(** Distributed algorithms over the simulator — the concrete entries of
    the seven-dimensional taxonomy, instrumented for messages, time and
    local computation. Asymptotics reproduced by experiment C5: LCR
    Θ(n²) messages, HS Θ(n log n), flooding Θ(m). *)

(** LCR (Le Lann / Chang-Roberts) leader election on a unidirectional
    ring: forward the maximum uid; the owner of a token that
    circumnavigates is elected and announces. *)
module Lcr : sig
  type msg = Token of int | Leader of int
  type state

  val algorithm : uids:int array -> (state, msg) Engine.algorithm
  val run : ?config:msg Engine.config -> uids:int array -> Topology.t -> Engine.result
end

(** HS (Hirschberg-Sinclair) on a bidirectional ring: doubling probes in
    both directions; O(n log n) messages. Requires at least 3 nodes. *)
module Hs : sig
  type msg
  type state

  val algorithm : uids:int array -> (state, msg) Engine.algorithm
  val run : ?config:msg Engine.config -> uids:int array -> Topology.t -> Engine.result
end

(** Flooding broadcast: forward on first receipt; O(m) messages. *)
module Flood : sig
  type msg = Payload of int
  type state

  val algorithm : root:int -> value:int -> (state, msg) Engine.algorithm
  val run :
    ?config:msg Engine.config -> root:int -> value:int -> Topology.t ->
    Engine.result
end

(** Segall's probe-echo: spanning tree + convergecast; the root decides
    the network size. *)
module Echo : sig
  type msg = Probe | Echo of int
  type state

  val algorithm : root:int -> (state, msg) Engine.algorithm
  val run : ?config:msg Engine.config -> root:int -> Topology.t -> Engine.result
end

(** Synchronous BFS spanning tree: each node decides its hop distance. *)
module Bfs_tree : sig
  type msg = Level of int
  type state

  val algorithm : root:int -> (state, msg) Engine.algorithm
  val run : ?config:msg Engine.config -> root:int -> Topology.t -> Engine.result
end

(** Asynchronous Bellman-Ford over hop counts: relax and re-broadcast on
    improvement. *)
module Bellman_ford : sig
  type msg = Dist of int
  type state

  val algorithm : root:int -> (state, msg) Engine.algorithm
  val run : ?config:msg Engine.config -> root:int -> Topology.t -> Engine.result
end

(** Randomized leader election on an anonymous ring: draw seeded random
    identifiers, then LCR; also reports whether the draw was
    collision-free. *)
module Randomized_election : sig
  val draw : seed:int -> int -> int array
  val run :
    ?config:Lcr.msg Engine.config -> seed:int -> Topology.t ->
    Engine.result * bool
end

(** Token-ring mutual exclusion: a single circulating token grants the
    critical section; exactly entries×n messages. *)
module Token_ring : sig
  type msg = Token
  type state

  val algorithm : entries:int -> (state, msg) Engine.algorithm
  val run :
    ?config:msg Engine.config -> entries:int -> Topology.t -> Engine.result
end

(** FloodMax election on arbitrary connected graphs: flood the largest
    uid with a diameter hop budget; re-broadcasts on higher-TTL
    re-receipt (required for correctness under asynchrony). *)
module Floodmax : sig
  type msg
  type state

  val algorithm :
    uids:int array -> diameter:int -> (state, msg) Engine.algorithm

  val run : ?config:msg Engine.config -> uids:int array -> Topology.t -> Engine.result
end

(** {2 Result digests} *)

val agreed : Engine.result -> string option
(** The single decided value, when every deciding node agrees. *)

val all_decided : Engine.result -> bool
