(* Network topologies — dimension 2 of the seven-dimensional taxonomy
   ("Some algorithms are designed for specialized topologies, while others
   are for arbitrary topologies. Further refining this concept leads to
   some of the well known topologies like ring, completely connected graph,
   etc."). A topology is an adjacency structure over nodes 0..n-1. *)

type t = {
  name : string;
  n : int;
  neighbors : int list array; (* outgoing neighbours, in deterministic order *)
}

let make name n f =
  if n <= 0 then invalid_arg "Topology.make: need at least one node";
  { name; n; neighbors = Array.init n f }

(* Unidirectional ring: each node sends clockwise only (LCR's model). *)
let ring_unidirectional n =
  make (Printf.sprintf "ring-uni-%d" n) n (fun i -> [ (i + 1) mod n ])

(* Bidirectional ring (HS's model). *)
let ring n =
  make (Printf.sprintf "ring-%d" n) n (fun i ->
      if n = 1 then []
      else if n = 2 then [ (i + 1) mod n ]
      else [ (i + 1) mod n; (i + n - 1) mod n ])

let complete n =
  make (Printf.sprintf "complete-%d" n) n (fun i ->
      List.filter (fun j -> j <> i) (List.init n (fun j -> j)))

let star n =
  (* node 0 is the hub *)
  make (Printf.sprintf "star-%d" n) n (fun i ->
      if i = 0 then List.init (n - 1) (fun j -> j + 1) else [ 0 ])

let line n =
  make (Printf.sprintf "line-%d" n) n (fun i ->
      List.filter (fun j -> j >= 0 && j < n) [ i - 1; i + 1 ])

let grid rows cols =
  let n = rows * cols in
  make (Printf.sprintf "grid-%dx%d" rows cols) n (fun i ->
      let r = i / cols and c = i mod cols in
      List.filter_map
        (fun (dr, dc) ->
          let r' = r + dr and c' = c + dc in
          if r' >= 0 && r' < rows && c' >= 0 && c' < cols then
            Some ((r' * cols) + c')
          else None)
        [ (-1, 0); (1, 0); (0, -1); (0, 1) ])

(* Balanced binary tree rooted at 0. *)
let binary_tree n =
  make (Printf.sprintf "tree-%d" n) n (fun i ->
      let kids = List.filter (fun j -> j < n) [ (2 * i) + 1; (2 * i) + 2 ] in
      if i = 0 then kids else ((i - 1) / 2) :: kids)

(* Erdős–Rényi-style random undirected graph, seeded and forced connected
   by overlaying a line. *)
let random ~seed ~p n =
  let st = Random.State.make [| seed; n |] in
  let adj = Array.make n [] in
  let add i j =
    if not (List.mem j adj.(i)) then adj.(i) <- j :: adj.(i)
  in
  for i = 0 to n - 2 do
    add i (i + 1);
    add (i + 1) i
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float st 1.0 < p then begin
        add i j;
        add j i
      end
    done
  done;
  make (Printf.sprintf "random-%d-p%.2f" n p) n (fun i -> List.rev adj.(i))

let num_nodes t = t.n
let neighbors t i = t.neighbors.(i)
let degree t i = List.length t.neighbors.(i)

let num_edges t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.neighbors

(* Hop diameter via BFS from every node (directed). Unreachable pairs are
   ignored; returns 0 for a single node. *)
let diameter t =
  let n = t.n in
  let worst = ref 0 in
  for s = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        t.neighbors.(u)
    done;
    Array.iter (fun d -> if d > !worst then worst := d) dist
  done;
  !worst
