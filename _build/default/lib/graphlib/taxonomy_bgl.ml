(* The graph algorithm concept taxonomy for the BGL domain
   (paper Section 1: "graph algorithms from BGL").

   Classifies traversals and shortest-path algorithms by problem, the
   graph concept they require, and edge-weight assumptions, with costs
   over n (vertices) and m (edges). *)

open Gp_concepts

let build () =
  let t = Taxonomy.create "BGL graph algorithms" in
  Taxonomy.add_node t "graph-algorithm" ~attributes:[];
  List.iter
    (fun p ->
      Taxonomy.add_node t p ~parents:[ "graph-algorithm" ]
        ~attributes:[ ("problem", p) ])
    [ "traversal"; "shortest-paths"; "ordering"; "connectivity" ];
  Taxonomy.add_node t "sp-unweighted" ~parents:[ "shortest-paths" ]
    ~attributes:
      [ ("weights", "unit"); ("graph-concept", "VertexListGraph") ];
  Taxonomy.add_node t "sp-nonnegative" ~parents:[ "shortest-paths" ]
    ~attributes:
      [ ("weights", "non-negative"); ("graph-concept", "WeightedGraph") ];
  Taxonomy.add_node t "sp-arbitrary" ~parents:[ "shortest-paths" ]
    ~attributes:
      [ ("weights", "arbitrary"); ("graph-concept", "WeightedGraph") ];
  Taxonomy.add_node t "traversal-any" ~parents:[ "traversal" ]
    ~attributes:[ ("graph-concept", "VertexListGraph") ];
  Taxonomy.add_node t "ordering-dag" ~parents:[ "ordering" ]
    ~attributes:[ ("graph-concept", "VertexListGraph"); ("input", "dag") ];
  Taxonomy.add_node t "connectivity-any" ~parents:[ "connectivity" ]
    ~attributes:[ ("graph-concept", "VertexListGraph") ];
  let n = Complexity.linear "n" and m = Complexity.linear "m" in
  let n_plus_m = Complexity.add (Complexity.linear "n") (Complexity.linear "m") in
  Taxonomy.add_entry t ~name:"BFS" ~node:"sp-unweighted"
    ~costs:[ ("time", n_plus_m); ("space", n) ];
  Taxonomy.add_entry t ~name:"Dijkstra (binary heap)" ~node:"sp-nonnegative"
    ~costs:
      [ ( "time",
          Complexity.mul n_plus_m (Complexity.log_ "n") );
        ("space", n) ];
  Taxonomy.add_entry t ~name:"Bellman-Ford" ~node:"sp-arbitrary"
    ~costs:[ ("time", Complexity.mul n m); ("space", n) ]
    ~doc:"tolerates negative weights; detects negative cycles";
  Taxonomy.add_entry t ~name:"DFS" ~node:"traversal-any"
    ~costs:[ ("time", n_plus_m); ("space", n) ];
  Taxonomy.add_entry t ~name:"topological sort (Kahn)" ~node:"ordering-dag"
    ~costs:[ ("time", n_plus_m) ];
  Taxonomy.add_entry t ~name:"connected components (BFS)"
    ~node:"connectivity-any"
    ~costs:[ ("time", n_plus_m) ];
  t

(* "Which shortest-path algorithm for these weights?" — the query a
   generic library's dispatcher asks. *)
let best_shortest_paths t ~weights =
  Taxonomy.pick t
    ~requirements:[ ("problem", "shortest-paths"); ("weights", weights) ]
    ~measure:"time"
