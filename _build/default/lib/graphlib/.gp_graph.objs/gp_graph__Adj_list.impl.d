lib/graphlib/adj_list.ml: Array Fmt List Seq Sigs
