lib/graphlib/algorithms.ml: Array Heap List Option Queue Seq Sigs
