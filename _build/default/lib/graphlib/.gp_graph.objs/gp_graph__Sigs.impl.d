lib/graphlib/sigs.ml: Seq
