lib/graphlib/adj_matrix.mli: Seq Sigs
