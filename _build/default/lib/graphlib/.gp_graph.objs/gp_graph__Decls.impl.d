lib/graphlib/decls.ml: Adj_list Adj_matrix Algorithms Complexity Concept Ctype Gp_concepts List Overload Registry
