lib/graphlib/decls.mli: Adj_list Adj_matrix Gp_concepts
