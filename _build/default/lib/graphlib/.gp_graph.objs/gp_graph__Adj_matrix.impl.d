lib/graphlib/adj_matrix.ml: Array List Option Seq Sigs
