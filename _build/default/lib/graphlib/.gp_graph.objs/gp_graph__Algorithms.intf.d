lib/graphlib/algorithms.mli: Sigs
