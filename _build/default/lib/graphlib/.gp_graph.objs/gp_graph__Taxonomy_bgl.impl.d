lib/graphlib/taxonomy_bgl.ml: Complexity Gp_concepts List Taxonomy
