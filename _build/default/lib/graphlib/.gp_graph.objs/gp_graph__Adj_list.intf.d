lib/graphlib/adj_list.mli: Format Seq Sigs
