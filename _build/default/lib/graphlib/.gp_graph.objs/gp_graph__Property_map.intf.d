lib/graphlib/property_map.mli: Sigs
