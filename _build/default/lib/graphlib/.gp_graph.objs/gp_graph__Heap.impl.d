lib/graphlib/heap.ml: Array
