lib/graphlib/heap.mli:
