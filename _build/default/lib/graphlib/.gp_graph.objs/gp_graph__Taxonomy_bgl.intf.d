lib/graphlib/taxonomy_bgl.mli: Gp_concepts
