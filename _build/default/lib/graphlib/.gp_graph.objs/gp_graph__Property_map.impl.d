lib/graphlib/property_map.ml: Array Hashtbl Heap Seq Sigs
