(* Adjacency-list graph: vertices are dense integer ids; each vertex holds
   its out-edge list. Models IncidenceGraph / VertexListGraph /
   WeightedGraph. Out-edge enumeration is O(out_degree); edge lookup is
   O(out_degree) — contrast with {!Adj_matrix}. *)

type edge = { src : int; dst : int; w : float }

type t = {
  mutable adj : edge list array; (* index = vertex id; lists reversed *)
  mutable n : int;
  mutable m : int; (* edge count *)
}

let create ?(n = 0) () =
  { adj = Array.make (max n 1) []; n; m = 0 }

let num_vertices t = t.n
let num_edges t = t.m

let add_vertex t =
  if t.n = Array.length t.adj then begin
    let fresh = Array.make (2 * t.n) [] in
    Array.blit t.adj 0 fresh 0 t.n;
    t.adj <- fresh
  end;
  let v = t.n in
  t.n <- t.n + 1;
  v

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Adj_list: vertex out of range"

let add_edge ?(w = 1.0) t u v =
  check_vertex t u;
  check_vertex t v;
  let e = { src = u; dst = v; w } in
  t.adj.(u) <- e :: t.adj.(u);
  t.m <- t.m + 1;
  e

let add_undirected_edge ?(w = 1.0) t u v =
  let e = add_edge ~w t u v in
  let _ = add_edge ~w t v u in
  e

let source e = e.src
let target e = e.dst
let weight _ e = e.w

let out_edges t v =
  check_vertex t v;
  List.to_seq (List.rev t.adj.(v))

let out_degree t v =
  check_vertex t v;
  List.length t.adj.(v)

let vertices t = Seq.init t.n (fun i -> i)
let vertex_index _ v = v

(* O(out_degree) edge lookup — what an adjacency list can do. *)
let edge t u v =
  check_vertex t u;
  check_vertex t v;
  List.find_opt (fun e -> e.dst = v) t.adj.(u)

let of_edges ~n edges =
  let t = create ~n () in
  List.iter (fun (u, v, w) -> ignore (add_edge ~w t u v)) edges;
  t

(* The module-type view, for the functorised algorithms. *)
module G : Sigs.WEIGHTED_GRAPH with type t = t and type vertex = int
                                 and type edge = edge = struct
  type nonrec t = t
  type vertex = int
  type nonrec edge = edge

  let out_edges = out_edges
  let out_degree = out_degree
  let source = source
  let target = target
  let vertices = vertices
  let num_vertices = num_vertices
  let vertex_index = vertex_index
  let weight = weight
end

let pp ppf t =
  Fmt.pf ppf "@[<v>graph (%d vertices, %d edges)@,%a@]" t.n t.m
    Fmt.(
      list ~sep:cut (fun ppf v ->
          pf ppf "%d -> %a" v
            (list ~sep:(any " ") (fun ppf e -> pf ppf "%d" e.dst))
            (List.rev t.adj.(v))))
    (List.init t.n (fun i -> i))
