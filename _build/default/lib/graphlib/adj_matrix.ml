(* Adjacency-matrix graph over a fixed vertex count: O(1) edge lookup,
   O(n) out-edge enumeration. Models AdjacencyMatrix (and therefore
   IncidenceGraph); the dispatch experiment compares its O(1) [edge]
   against the adjacency list's O(out_degree) lookup. *)

type edge = { src : int; dst : int; w : float }

type t = {
  n : int;
  cells : float option array; (* row-major; Some w = edge weight *)
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Adj_matrix.create: negative size";
  { n; cells = Array.make (max 1 (n * n)) None; m = 0 }

let num_vertices t = t.n
let num_edges t = t.m

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Adj_matrix: vertex out of range"

let add_edge ?(w = 1.0) t u v =
  check_vertex t u;
  check_vertex t v;
  (match t.cells.((u * t.n) + v) with
  | None -> t.m <- t.m + 1
  | Some _ -> ());
  t.cells.((u * t.n) + v) <- Some w;
  { src = u; dst = v; w }

let add_undirected_edge ?(w = 1.0) t u v =
  let e = add_edge ~w t u v in
  let _ = add_edge ~w t v u in
  e

let source e = e.src
let target e = e.dst
let weight _ e = e.w

(* O(1): the AdjacencyMatrix refinement's defining capability. *)
let edge t u v =
  check_vertex t u;
  check_vertex t v;
  Option.map (fun w -> { src = u; dst = v; w }) t.cells.((u * t.n) + v)

let out_edges t v =
  check_vertex t v;
  Seq.filter_map
    (fun j -> Option.map (fun w -> { src = v; dst = j; w }) t.cells.((v * t.n) + j))
    (Seq.init t.n (fun j -> j))

let out_degree t v = Seq.length (out_edges t v)

let vertices t = Seq.init t.n (fun i -> i)
let vertex_index _ v = v

let of_edges ~n edges =
  let t = create n in
  List.iter (fun (u, v, w) -> ignore (add_edge ~w t u v)) edges;
  t

module G : Sigs.ADJACENCY_MATRIX with type t = t and type vertex = int
                                   and type edge = edge = struct
  type nonrec t = t
  type vertex = int
  type nonrec edge = edge

  let out_edges = out_edges
  let out_degree = out_degree
  let source = source
  let target = target
  let vertices = vertices
  let num_vertices = num_vertices
  let vertex_index = vertex_index
  let edge = edge
end
