(** External property maps — the BGL pattern: algorithms read and write
    per-vertex/per-edge data through a property-map concept instead of
    storing it in the graph, so one algorithm works with array-backed,
    hash-backed, constant or derived storage. *)

type ('k, 'v) t = {
  pm_get : 'k -> 'v;
  pm_set : 'k -> 'v -> unit;
  pm_name : string;
}

val get : ('k, 'v) t -> 'k -> 'v
val set : ('k, 'v) t -> 'k -> 'v -> unit

val array_backed :
  name:string -> size:int -> index:('k -> int) -> default:'v -> ('k, 'v) t
(** O(1) access for dense keys via an index map. *)

val hash_backed : name:string -> default:'v -> unit -> ('k, 'v) t

val constant : name:string -> 'v -> ('k, 'v) t
(** Read-only uniform value (e.g. unit edge weights); writing raises. *)

val of_function : name:string -> ('k -> 'v) -> ('k, 'v) t
(** Read-only derived map; writing raises. *)

(** Dijkstra parameterised by property maps: the caller supplies weight
    (read-only), distance and parent stores. *)
module Dijkstra_pm (G : Sigs.VERTEX_LIST_GRAPH) : sig
  val run :
    G.t ->
    G.vertex ->
    weight:(G.edge, float) t ->
    dist:(G.vertex, float) t ->
    parent:(G.vertex, G.vertex option) t ->
    unit
end
