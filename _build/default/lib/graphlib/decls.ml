(* Runtime concept declarations for the graph world: Fig. 1 (Graph Edge)
   and Fig. 2 (Incidence Graph) transcribed into the concept engine, plus
   the refinements used by the dispatch and propagation experiments. *)

open Gp_concepts

let v t = Ctype.Var t
let n name = Ctype.Named name

(* Fig. 1: "Type Edge is a model of Graph Edge if the requirements are
   satisfied": an associated vertex_type and source/target operations. *)
let graph_edge =
  Concept.make ~params:[ "Edge" ] "GraphEdge" ~doc:"Fig. 1"
    [
      Concept.assoc_type "vertex_type";
      Concept.signature "source" [ v "Edge" ]
        (Ctype.Assoc (v "Edge", "vertex_type"));
      Concept.signature "target" [ v "Edge" ]
        (Ctype.Assoc (v "Edge", "vertex_type"));
    ]

(* Fig. 2: associated vertex/edge/out_edge_iterator types; the same-type
   constraint out_edge_iterator::value_type == edge_type; edge_type models
   GraphEdge; the iterator models an iterator concept; out_edges and
   out_degree operations. *)
let incidence_graph =
  Concept.make ~params:[ "Graph" ] "IncidenceGraph" ~doc:"Fig. 2"
    [
      Concept.assoc_type "vertex_type";
      Concept.assoc_type "edge_type"
        ~constraints:
          [ Concept.Models ("GraphEdge", [ Ctype.Assoc (v "Graph", "edge_type") ]);
            Concept.Same_type
              ( Ctype.Assoc (Ctype.Assoc (v "Graph", "edge_type"), "vertex_type"),
                Ctype.Assoc (v "Graph", "vertex_type") );
          ];
      Concept.assoc_type "out_edge_iterator"
        ~constraints:
          [
            Concept.Models
              ( "InputIterator",
                [ Ctype.Assoc (v "Graph", "out_edge_iterator") ] );
            Concept.Same_type
              ( Ctype.Assoc
                  (Ctype.Assoc (v "Graph", "out_edge_iterator"), "value_type"),
                Ctype.Assoc (v "Graph", "edge_type") );
          ];
      Concept.signature "out_edges"
        [ Ctype.Assoc (v "Graph", "vertex_type"); v "Graph" ]
        (Ctype.Assoc (v "Graph", "out_edge_iterator"));
      Concept.signature "out_degree"
        [ Ctype.Assoc (v "Graph", "vertex_type"); v "Graph" ]
        (n "int");
      Concept.complexity "out_edges" Complexity.constant;
    ]

let vertex_list_graph =
  Concept.make ~params:[ "Graph" ] "VertexListGraph"
    ~refines:[ ("IncidenceGraph", [ v "Graph" ]) ]
    [
      Concept.assoc_type "vertex_iterator"
        ~constraints:
          [
            Concept.Models
              ("InputIterator", [ Ctype.Assoc (v "Graph", "vertex_iterator") ]);
            Concept.Same_type
              ( Ctype.Assoc
                  (Ctype.Assoc (v "Graph", "vertex_iterator"), "value_type"),
                Ctype.Assoc (v "Graph", "vertex_type") );
          ];
      Concept.signature "vertices" [ v "Graph" ]
        (Ctype.Assoc (v "Graph", "vertex_iterator"));
      Concept.signature "num_vertices" [ v "Graph" ] (n "int");
    ]

let adjacency_matrix_concept =
  Concept.make ~params:[ "Graph" ] "AdjacencyMatrixGraph"
    ~refines:[ ("VertexListGraph", [ v "Graph" ]) ]
    [
      Concept.signature "edge"
        [ Ctype.Assoc (v "Graph", "vertex_type");
          Ctype.Assoc (v "Graph", "vertex_type"); v "Graph" ]
        (Ctype.Assoc (v "Graph", "edge_type"));
      Concept.complexity "edge" Complexity.constant;
    ]

let weighted_graph =
  Concept.make ~params:[ "Graph" ] "WeightedGraph"
    ~refines:[ ("VertexListGraph", [ v "Graph" ]) ]
    [
      Concept.signature "weight"
        [ v "Graph"; Ctype.Assoc (v "Graph", "edge_type") ]
        (n "float");
    ]

let all_concepts =
  [ graph_edge; incidence_graph; vertex_list_graph; adjacency_matrix_concept;
    weighted_graph ]

(* Declare a concrete graph type with its associated types and ops. *)
let declare_graph_type reg ~name ~with_matrix =
  let edge_t = name ^ "::edge" in
  let iter_t = name ^ "::out_edge_iterator" in
  let viter_t = name ^ "::vertex_iterator" in
  Registry.declare_type reg edge_t ~assoc:[ ("vertex_type", n "vertex") ];
  Registry.declare_type reg iter_t ~assoc:[ ("value_type", n edge_t) ];
  Registry.declare_type reg viter_t ~assoc:[ ("value_type", n "vertex") ];
  Registry.declare_type reg name
    ~assoc:
      [ ("vertex_type", n "vertex"); ("edge_type", n edge_t);
        ("out_edge_iterator", n iter_t); ("vertex_iterator", n viter_t) ];
  Registry.declare_op reg "source" [ n edge_t ] (n "vertex");
  Registry.declare_op reg "target" [ n edge_t ] (n "vertex");
  List.iter
    (fun it ->
      Registry.declare_op reg "deref" [ n it ]
        (match it with
        | t when t = iter_t -> n edge_t
        | _ -> n "vertex");
      Registry.declare_op reg "succ" [ n it ] (n it);
      Registry.declare_op reg "iter_eq" [ n it; n it ] (n "bool");
      Registry.declare_model reg "InputIterator" [ n it ]
        ~axioms:[ "single_pass" ])
    [ iter_t; viter_t ];
  Registry.declare_op reg "out_edges" [ n "vertex"; n name ] (n iter_t);
  Registry.declare_op reg "out_degree" [ n "vertex"; n name ] (n "int");
  Registry.declare_op reg "vertices" [ n name ] (n viter_t);
  Registry.declare_op reg "num_vertices" [ n name ] (n "int");
  Registry.declare_op reg "weight" [ n name; n edge_t ] (n "float");
  Registry.declare_model reg "GraphEdge" [ n edge_t ];
  Registry.declare_model reg "IncidenceGraph" [ n name ]
    ~complexity:[ ("out_edges", Complexity.constant) ];
  Registry.declare_model reg "VertexListGraph" [ n name ];
  Registry.declare_model reg "WeightedGraph" [ n name ];
  if with_matrix then begin
    Registry.declare_op reg "edge" [ n "vertex"; n "vertex"; n name ]
      (n edge_t);
    Registry.declare_model reg "AdjacencyMatrixGraph" [ n name ]
      ~complexity:[ ("edge", Complexity.constant) ]
  end

(* Populate [reg] with the graph world. Requires the iterator concepts from
   Gp_sequence-style declarations or declares a minimal InputIterator if
   absent. *)
let declare reg =
  (match Registry.find_concept reg "InputIterator" with
  | Some _ -> ()
  | None ->
    Registry.declare_concept reg
      (Concept.make ~params:[ "I" ] "InputIterator"
         [
           Concept.assoc_type "value_type";
           Concept.signature "deref" [ v "I" ]
             (Ctype.Assoc (v "I", "value_type"));
           Concept.signature "succ" [ v "I" ] (v "I");
           Concept.signature "iter_eq" [ v "I"; v "I" ] (n "bool");
           Concept.axiom "single_pass" ~vars:[ "i" ] "single pass";
         ]));
  List.iter (Registry.declare_concept reg) all_concepts;
  (match Registry.find_type reg "vertex" with
  | None -> Registry.declare_type reg "vertex"
  | Some _ -> ());
  (match Registry.find_type reg "int" with
  | None -> Registry.declare_type reg "int"
  | Some _ -> ());
  declare_graph_type reg ~name:"adjacency_list" ~with_matrix:false;
  declare_graph_type reg ~name:"adjacency_matrix" ~with_matrix:true

(* ------------------------------------------------------------------ *)
(* Concept-dispatched has_edge                                         *)
(* ------------------------------------------------------------------ *)

type Overload.dyn += Bool of bool
type Overload.dyn += List_query of Adj_list.t * int * int
type Overload.dyn += Matrix_query of Adj_matrix.t * int * int

let has_edge_generic () =
  let g = Overload.create "has_edge" in
  Overload.add_candidate g ~name:"scan out-edges (incidence graph)"
    ~guard:"IncidenceGraph" (fun args ->
      match args with
      | [ List_query (gr, u, w) ] ->
        let module L = Algorithms.Edge_lookup_scan (Adj_list.G) in
        Bool (L.has_edge gr u w)
      | [ Matrix_query (gr, u, w) ] ->
        let module L = Algorithms.Edge_lookup_scan (Adj_matrix.G) in
        Bool (L.has_edge gr u w)
      | _ -> invalid_arg "has_edge: expected a graph query");
  Overload.add_candidate g ~name:"direct cell lookup (adjacency matrix)"
    ~guard:"AdjacencyMatrixGraph" (fun args ->
      match args with
      | [ Matrix_query (gr, u, w) ] ->
        let module L = Algorithms.Edge_lookup_direct (Adj_matrix.G) in
        Bool (L.has_edge gr u w)
      | _ -> invalid_arg "has_edge: direct lookup needs a matrix");
  g
