(** Binary min-heap with decrease-key via dense-id position tracking —
    the priority-queue substrate for Dijkstra. *)

type t

val create : max_id:int -> t
val is_empty : t -> bool
val mem : t -> int -> bool

val push : t -> id:int -> key:float -> unit
(** Raises [Invalid_argument] if [id] is already present. *)

val pop_min : t -> int * float
(** Raises [Invalid_argument] on an empty heap. *)

val decrease_key : t -> id:int -> key:float -> unit
(** Raises [Invalid_argument] if [id] is absent or the key increased. *)
