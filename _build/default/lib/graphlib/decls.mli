(** Runtime concept declarations for the graph world: Figs. 1 and 2
    transcribed into the engine, concrete graph types as checked models,
    and the concept-dispatched [has_edge] generic. *)

val graph_edge : Gp_concepts.Concept.t
(** Fig. 1. *)

val incidence_graph : Gp_concepts.Concept.t
(** Fig. 2, including the associated-type and same-type constraints. *)

val vertex_list_graph : Gp_concepts.Concept.t
val adjacency_matrix_concept : Gp_concepts.Concept.t
val weighted_graph : Gp_concepts.Concept.t
val all_concepts : Gp_concepts.Concept.t list

val declare_graph_type :
  Gp_concepts.Registry.t -> name:string -> with_matrix:bool -> unit

val declare : Gp_concepts.Registry.t -> unit
(** Declares the concepts (and a minimal InputIterator if absent) plus
    the adjacency_list and adjacency_matrix model types. *)

(** {2 The dispatched edge lookup} *)

type Gp_concepts.Overload.dyn += Bool of bool
type Gp_concepts.Overload.dyn += List_query of Adj_list.t * int * int
type Gp_concepts.Overload.dyn += Matrix_query of Adj_matrix.t * int * int

val has_edge_generic : unit -> Gp_concepts.Overload.generic
(** Scan-out-edges guarded by IncidenceGraph; O(1) cell probe guarded by
    AdjacencyMatrixGraph; most-refined wins. *)
