(* Graph concepts as OCaml module types — the compile-time face of the
   paper's Figs. 1 and 2.

   Fig. 1 (Graph Edge): an edge type with an associated vertex type and
   source/target operations. Fig. 2 (Incidence Graph): a graph type with
   associated vertex, edge and out-edge-iterator types, where the edge type
   models Graph Edge and the iterator's value type equals the edge type.

   In OCaml the associated types become abstract types in the signature and
   the same-type constraints become sharing constraints — which is exactly
   the ML-signature encoding the paper discusses in Section 2.1. The
   runtime-concept mirror lives in {!Decls}. *)

(** Fig. 1: the Graph Edge concept. *)
module type GRAPH_EDGE = sig
  type edge
  type vertex (* the associated vertex type *)

  val source : edge -> vertex
  val target : edge -> vertex
end

(** Fig. 2: the Incidence Graph concept. The same-type constraint
    "out_edge_iterator::value_type == edge_type" is realised by [out_edges]
    yielding values of type [edge]. *)
module type INCIDENCE_GRAPH = sig
  type t
  type vertex
  type edge

  (** The out-edge iterator is exposed as a [Seq.t] — OCaml's idiom for a
      forward-iterable range. *)
  val out_edges : t -> vertex -> edge Seq.t

  val out_degree : t -> vertex -> int

  include GRAPH_EDGE with type edge := edge and type vertex := vertex
end

(** Incidence graph whose vertex set is enumerable, with an index map for
    array-based property maps (the BGL pattern). *)
module type VERTEX_LIST_GRAPH = sig
  include INCIDENCE_GRAPH

  val vertices : t -> vertex Seq.t
  val num_vertices : t -> int
  val vertex_index : t -> vertex -> int
end

(** Direct O(1) edge lookup — what an adjacency matrix adds. *)
module type ADJACENCY_MATRIX = sig
  include VERTEX_LIST_GRAPH

  val edge : t -> vertex -> vertex -> edge option
end

(** Edge weights, for shortest-path algorithms. *)
module type WEIGHTED_GRAPH = sig
  include VERTEX_LIST_GRAPH

  val weight : t -> edge -> float
end

(** First neighbor of a vertex — the Section 2.3 running example. Thanks to
    the signature encapsulating the associated types and their constraints,
    this generic algorithm states exactly ONE constraint (G models
    IncidenceGraph + vertex enumeration), not the expanded closure the
    paper shows for languages without constraint propagation. *)
module First_neighbor (G : INCIDENCE_GRAPH) = struct
  let first_neighbor g v =
    match G.out_edges g v () with
    | Seq.Nil -> None
    | Seq.Cons (e, _) -> Some (G.target e)
end
