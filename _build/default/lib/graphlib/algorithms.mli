(** Generic graph algorithms as functors over the Fig. 1/2 module types:
    written against the concepts, never a concrete representation, so
    each works unchanged on {!Adj_list} and {!Adj_matrix}. *)

module Bfs (G : Sigs.VERTEX_LIST_GRAPH) : sig
  val run : G.t -> G.vertex -> int array * G.vertex option array
  (** (hop distances, parents), indexed by [vertex_index]; unreachable =
      [max_int] / [None]. *)
end

module Dfs (G : Sigs.VERTEX_LIST_GRAPH) : sig
  type color = White | Gray | Black

  val run : G.t -> int array * int array * bool
  (** (discovery times, finish times, back-edge seen). Iterative, so deep
      graphs are fine. *)
end

module Topological_sort (G : Sigs.VERTEX_LIST_GRAPH) : sig
  exception Cycle

  val run : G.t -> G.vertex list
  (** Kahn's algorithm; raises {!Cycle} on cyclic input. *)
end

module Dijkstra (G : Sigs.WEIGHTED_GRAPH) : sig
  val run : G.t -> G.vertex -> float array * G.vertex option array
  (** O((n+m) log n) with a binary heap. Raises [Invalid_argument] on a
      negative edge weight (use {!Bellman_ford} for those). *)

  val path : G.t -> source:G.vertex -> dest:G.vertex -> G.vertex list
  (** Empty when unreachable. *)
end

module Bellman_ford (G : Sigs.WEIGHTED_GRAPH) : sig
  val run :
    G.t ->
    G.vertex ->
    (float array * G.vertex option array, [ `Negative_cycle ]) result
  (** O(nm); tolerates negative weights, detects reachable negative
      cycles. *)
end

module Connected_components (G : Sigs.VERTEX_LIST_GRAPH) : sig
  val run : G.t -> int array * int
  (** (component id per vertex, component count) over forward
      reachability; symmetric graphs give true connected components. *)
end

(** Edge-lookup implementations behind the dispatched [has_edge]: the
    O(out_degree) scan any incidence graph supports, and the O(1) probe
    an adjacency matrix adds. *)
module Edge_lookup_scan (G : Sigs.VERTEX_LIST_GRAPH) : sig
  val has_edge : G.t -> G.vertex -> G.vertex -> bool
end

module Edge_lookup_direct (G : Sigs.ADJACENCY_MATRIX) : sig
  val has_edge : G.t -> G.vertex -> G.vertex -> bool
end
