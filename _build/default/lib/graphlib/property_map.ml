(* External property maps — the BGL pattern the paper's group pioneered:
   algorithms never store per-vertex/per-edge data inside the graph;
   they go through a property-map concept, so the same algorithm works
   with array-backed maps (dense integer vertices), hash-backed maps
   (sparse keys), or constant maps (uniform weights). *)

(* The ReadWritePropertyMap concept as a first-class record. *)
type ('k, 'v) t = {
  pm_get : 'k -> 'v;
  pm_set : 'k -> 'v -> unit;
  pm_name : string;
}

let get m k = m.pm_get k
let set m k v = m.pm_set k v

(* Array-backed: O(1) access for dense integer keys via an index map. *)
let array_backed ~name ~size ~index ~default =
  let data = Array.make size default in
  {
    pm_get = (fun k -> data.(index k));
    pm_set = (fun k v -> data.(index k) <- v);
    pm_name = name;
  }

(* Hash-backed: sparse or non-integer keys. *)
let hash_backed (type k) ~name ~default () =
  let tbl : (k, 'v) Hashtbl.t = Hashtbl.create 16 in
  {
    pm_get = (fun k -> match Hashtbl.find_opt tbl k with Some v -> v | None -> default);
    pm_set = (fun k v -> Hashtbl.replace tbl k v);
    pm_name = name;
  }

(* Read-only constant map: e.g. unit edge weights. Writing raises. *)
let constant ~name v =
  {
    pm_get = (fun _ -> v);
    pm_set = (fun _ _ -> invalid_arg (name ^ ": constant property map is read-only"));
    pm_name = name;
  }

(* A function-backed read-only map. *)
let of_function ~name f =
  {
    pm_get = f;
    pm_set = (fun _ _ -> invalid_arg (name ^ ": derived property map is read-only"));
    pm_name = name;
  }

(* ------------------------------------------------------------------ *)
(* A property-map-parameterised algorithm: Dijkstra whose distance,     *)
(* parent and weight stores are all external maps.                      *)
(* ------------------------------------------------------------------ *)

module Dijkstra_pm (G : Sigs.VERTEX_LIST_GRAPH) = struct
  (* [run g source ~weight ~dist ~parent] relaxes into the caller's maps:
     the caller chooses the storage (array, hash, whatever models the
     property-map concept). [weight] is read-only per edge. *)
  let run g source ~(weight : (G.edge, float) t)
      ~(dist : (G.vertex, float) t)
      ~(parent : (G.vertex, G.vertex option) t) =
    let n = G.num_vertices g in
    let heap = Heap.create ~max_id:n in
    let vertex_of = Array.make n source in
    Seq.iter
      (fun v ->
        vertex_of.(G.vertex_index g v) <- v;
        set dist v infinity;
        set parent v None)
      (G.vertices g);
    set dist source 0.0;
    Heap.push heap ~id:(G.vertex_index g source) ~key:0.0;
    while not (Heap.is_empty heap) do
      let ui, du = Heap.pop_min heap in
      let u = vertex_of.(ui) in
      Seq.iter
        (fun e ->
          let w = get weight e in
          if w < 0.0 then invalid_arg "Dijkstra_pm: negative edge weight";
          let v = G.target e in
          let vi = G.vertex_index g v in
          let alt = du +. w in
          if alt < get dist v then begin
            set dist v alt;
            set parent v (Some u);
            if Heap.mem heap vi then Heap.decrease_key heap ~id:vi ~key:alt
            else Heap.push heap ~id:vi ~key:alt
          end)
        (G.out_edges g u)
    done
end
