(** The graph algorithm concept taxonomy for the BGL domain (paper
    Section 1): traversals, orderings and shortest-path algorithms
    classified by required graph concept and weight assumptions. *)

val build : unit -> Gp_concepts.Taxonomy.t

val best_shortest_paths :
  Gp_concepts.Taxonomy.t -> weights:string -> Gp_concepts.Taxonomy.entry list
(** ["unit"] -> BFS; ["non-negative"] -> Dijkstra; ["arbitrary"] ->
    Bellman-Ford. *)
