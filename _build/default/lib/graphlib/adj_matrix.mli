(** Adjacency-matrix graph over a fixed vertex count: O(1) edge lookup,
    O(n) out-edge enumeration. Models AdjacencyMatrix (hence
    IncidenceGraph); its O(1) [edge] is what the dispatched lookup
    selects. *)

type edge

type t

val create : int -> t
val num_vertices : t -> int

val num_edges : t -> int
(** Parallel edges collapse (a matrix cell holds one edge). *)

val add_edge : ?w:float -> t -> int -> int -> edge
val add_undirected_edge : ?w:float -> t -> int -> int -> edge
val of_edges : n:int -> (int * int * float) list -> t

val source : edge -> int
val target : edge -> int
val weight : t -> edge -> float

val edge : t -> int -> int -> edge option
(** O(1) — the AdjacencyMatrix refinement's defining capability. *)

val out_edges : t -> int -> edge Seq.t
val out_degree : t -> int -> int
val vertices : t -> int Seq.t
val vertex_index : t -> int -> int

module G :
  Sigs.ADJACENCY_MATRIX with type t = t and type vertex = int and type edge = edge
