(** Adjacency-list graph: dense integer vertex ids, per-vertex out-edge
    lists. Models IncidenceGraph / VertexListGraph / WeightedGraph;
    out-edge enumeration is O(out_degree) and edge lookup is
    O(out_degree) — contrast {!Adj_matrix}. *)

type edge

type t

val create : ?n:int -> unit -> t
val num_vertices : t -> int
val num_edges : t -> int
val add_vertex : t -> int

val add_edge : ?w:float -> t -> int -> int -> edge
(** Raises [Invalid_argument] on out-of-range vertices. *)

val add_undirected_edge : ?w:float -> t -> int -> int -> edge
val of_edges : n:int -> (int * int * float) list -> t

val source : edge -> int
val target : edge -> int
val weight : t -> edge -> float

val out_edges : t -> int -> edge Seq.t
val out_degree : t -> int -> int
val vertices : t -> int Seq.t
val vertex_index : t -> int -> int

val edge : t -> int -> int -> edge option
(** O(out_degree) scan. *)

(** The module-type view for the functorised algorithms. *)
module G :
  Sigs.WEIGHTED_GRAPH with type t = t and type vertex = int and type edge = edge

val pp : Format.formatter -> t -> unit
