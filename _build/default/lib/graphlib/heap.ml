(* Binary min-heap with decrease-key via position tracking — the priority
   queue substrate for Dijkstra. Keys are floats; payloads are dense
   integer ids (vertex indices), so positions are tracked in a flat array. *)

type t = {
  mutable keys : float array; (* heap-ordered *)
  mutable ids : int array; (* payload at each heap slot *)
  mutable pos : int array; (* id -> heap slot, or -1 *)
  mutable size : int;
}

let create ~max_id =
  {
    keys = Array.make (max 1 max_id) infinity;
    ids = Array.make (max 1 max_id) (-1);
    pos = Array.make (max 1 max_id) (-1);
    size = 0;
  }

let is_empty h = h.size = 0
let mem h id = id < Array.length h.pos && h.pos.(id) >= 0

let swap h i j =
  let ki = h.keys.(i) and ii = h.ids.(i) in
  h.keys.(i) <- h.keys.(j);
  h.ids.(i) <- h.ids.(j);
  h.keys.(j) <- ki;
  h.ids.(j) <- ii;
  h.pos.(h.ids.(i)) <- i;
  h.pos.(h.ids.(j)) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~id ~key =
  if mem h id then invalid_arg "Heap.push: id already present";
  let i = h.size in
  h.keys.(i) <- key;
  h.ids.(i) <- id;
  h.pos.(id) <- i;
  h.size <- h.size + 1;
  sift_up h i

let pop_min h =
  if h.size = 0 then invalid_arg "Heap.pop_min: empty";
  let id = h.ids.(0) and key = h.keys.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.ids.(0) <- h.ids.(h.size);
    h.pos.(h.ids.(0)) <- 0;
    sift_down h 0
  end;
  h.pos.(id) <- -1;
  (id, key)

let decrease_key h ~id ~key =
  let i = h.pos.(id) in
  if i < 0 then invalid_arg "Heap.decrease_key: id not present";
  if key > h.keys.(i) then invalid_arg "Heap.decrease_key: key increased";
  h.keys.(i) <- key;
  sift_up h i
