(* Generic graph algorithms as functors over the graph module types —
   everything written against the concepts of Figs. 1–2, never against a
   concrete representation, so each algorithm works unchanged on
   {!Adj_list} and {!Adj_matrix}. *)

module Bfs (G : Sigs.VERTEX_LIST_GRAPH) = struct
  (* Breadth-first search from [source]; returns (dist, parent) property
     maps indexed by vertex_index; unreachable = max_int / none. *)
  let run g source =
    let n = G.num_vertices g in
    let dist = Array.make n max_int in
    let parent = Array.make n None in
    let q = Queue.create () in
    let si = G.vertex_index g source in
    dist.(si) <- 0;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let ui = G.vertex_index g u in
      Seq.iter
        (fun e ->
          let v = G.target e in
          let vi = G.vertex_index g v in
          if dist.(vi) = max_int then begin
            dist.(vi) <- dist.(ui) + 1;
            parent.(vi) <- Some u;
            Queue.add v q
          end)
        (G.out_edges g u)
    done;
    (dist, parent)
end

module Dfs (G : Sigs.VERTEX_LIST_GRAPH) = struct
  type color = White | Gray | Black

  (* Full DFS forest; returns discovery/finish times and a cycle flag
     (back edge seen). Iterative to survive deep graphs. *)
  let run g =
    let n = G.num_vertices g in
    let color = Array.make n White in
    let discover = Array.make n (-1) in
    let finish = Array.make n (-1) in
    let has_cycle = ref false in
    let time = ref 0 in
    let tick () = incr time; !time in
    let visit root =
      let stack = ref [ (root, G.out_edges g root) ] in
      color.(G.vertex_index g root) <- Gray;
      discover.(G.vertex_index g root) <- tick ();
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, edges) :: rest -> (
          match edges () with
          | Seq.Nil ->
            color.(G.vertex_index g u) <- Black;
            finish.(G.vertex_index g u) <- tick ();
            stack := rest
          | Seq.Cons (e, tl) ->
            stack := (u, tl) :: rest;
            let v = G.target e in
            let vi = G.vertex_index g v in
            (match color.(vi) with
            | White ->
              color.(vi) <- Gray;
              discover.(vi) <- tick ();
              stack := (v, G.out_edges g v) :: !stack
            | Gray -> has_cycle := true
            | Black -> ()))
      done
    in
    Seq.iter
      (fun v -> if color.(G.vertex_index g v) = White then visit v)
      (G.vertices g);
    (discover, finish, !has_cycle)
end

module Topological_sort (G : Sigs.VERTEX_LIST_GRAPH) = struct
  exception Cycle

  (* Kahn's algorithm; raises [Cycle] on cyclic input. *)
  let run g =
    let n = G.num_vertices g in
    let indeg = Array.make n 0 in
    Seq.iter
      (fun u ->
        Seq.iter
          (fun e -> let vi = G.vertex_index g (G.target e) in
                    indeg.(vi) <- indeg.(vi) + 1)
          (G.out_edges g u))
      (G.vertices g);
    let q = Queue.create () in
    Seq.iter
      (fun v -> if indeg.(G.vertex_index g v) = 0 then Queue.add v q)
      (G.vertices g);
    let order = ref [] in
    let count = ref 0 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      order := u :: !order;
      incr count;
      Seq.iter
        (fun e ->
          let v = G.target e in
          let vi = G.vertex_index g v in
          indeg.(vi) <- indeg.(vi) - 1;
          if indeg.(vi) = 0 then Queue.add v q)
        (G.out_edges g u)
    done;
    if !count <> n then raise Cycle;
    List.rev !order
end

module Dijkstra (G : Sigs.WEIGHTED_GRAPH) = struct
  (* Single-source shortest paths with a binary heap: O((n + m) log n).
     Negative edge weights are rejected. *)
  let run g source =
    let n = G.num_vertices g in
    let dist = Array.make n infinity in
    let parent = Array.make n None in
    let heap = Heap.create ~max_id:n in
    let si = G.vertex_index g source in
    dist.(si) <- 0.0;
    Heap.push heap ~id:si ~key:0.0;
    let vertex_of = Array.make n source in
    Seq.iter (fun v -> vertex_of.(G.vertex_index g v) <- v) (G.vertices g);
    while not (Heap.is_empty heap) do
      let ui, du = Heap.pop_min heap in
      let u = vertex_of.(ui) in
      Seq.iter
        (fun e ->
          let w = G.weight g e in
          if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
          let v = G.target e in
          let vi = G.vertex_index g v in
          let alt = du +. w in
          if alt < dist.(vi) then begin
            dist.(vi) <- alt;
            parent.(vi) <- Some u;
            if Heap.mem heap vi then Heap.decrease_key heap ~id:vi ~key:alt
            else Heap.push heap ~id:vi ~key:alt
          end)
        (G.out_edges g u)
    done;
    (dist, parent)

  let path g ~source ~dest =
    let _, parent = run g source in
    let rec build acc v =
      if G.vertex_index g v = G.vertex_index g source then v :: acc
      else
        match parent.(G.vertex_index g v) with
        | Some p -> build (v :: acc) p
        | None -> []
    in
    build [] dest
end

module Bellman_ford (G : Sigs.WEIGHTED_GRAPH) = struct
  (* Single-source shortest paths tolerating negative edge weights:
     O(n * m) relaxation rounds. Returns [Error `Negative_cycle] when a
     cycle with negative total weight is reachable — the case Dijkstra's
     precondition excludes. The taxonomy records the trade-off: Dijkstra
     O((n+m) log n) for non-negative weights, Bellman-Ford O(nm) for
     arbitrary ones. *)
  let run g source =
    let n = G.num_vertices g in
    let dist = Array.make n infinity in
    let parent = Array.make n None in
    dist.(G.vertex_index g source) <- 0.0;
    let relax_all () =
      let changed = ref false in
      Seq.iter
        (fun u ->
          let ui = G.vertex_index g u in
          if dist.(ui) < infinity then
            Seq.iter
              (fun e ->
                let v = G.target e in
                let vi = G.vertex_index g v in
                let alt = dist.(ui) +. G.weight g e in
                if alt < dist.(vi) then begin
                  dist.(vi) <- alt;
                  parent.(vi) <- Some u;
                  changed := true
                end)
              (G.out_edges g u))
        (G.vertices g);
      !changed
    in
    let rec rounds k =
      if k = 0 then false (* converged within n-1 rounds: no neg cycle *)
      else if relax_all () then rounds (k - 1)
      else false
    in
    ignore (rounds (n - 1));
    (* one more round: any further improvement implies a negative cycle *)
    if relax_all () then Error `Negative_cycle else Ok (dist, parent)
end

module Connected_components (G : Sigs.VERTEX_LIST_GRAPH) = struct
  (* Components of the *underlying undirected* reachability only if the
     graph stores both edge directions; otherwise weakly directed forward
     reachability components. *)
  let run g =
    let n = G.num_vertices g in
    let comp = Array.make n (-1) in
    let next = ref 0 in
    Seq.iter
      (fun v ->
        let vi = G.vertex_index g v in
        if comp.(vi) = -1 then begin
          let c = !next in
          incr next;
          let q = Queue.create () in
          comp.(vi) <- c;
          Queue.add v q;
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            Seq.iter
              (fun e ->
                let wv = G.target e in
                let wi = G.vertex_index g wv in
                if comp.(wi) = -1 then begin
                  comp.(wi) <- c;
                  Queue.add wv q
                end)
              (G.out_edges g u)
          done
        end)
      (G.vertices g);
    (comp, !next)
end

(* Concept-dispatched edge lookup: the generic [has_edge] uses the O(1)
   matrix capability when the graph models AdjacencyMatrix, and falls back
   to scanning out-edges otherwise. Reified here as two functors; the
   dispatch decision is made by the Overload machinery in {!Decls}. *)
module Edge_lookup_scan (G : Sigs.VERTEX_LIST_GRAPH) = struct
  let has_edge g u v =
    Seq.exists
      (fun e -> G.vertex_index g (G.target e) = G.vertex_index g v)
      (G.out_edges g u)
end

module Edge_lookup_direct (G : Sigs.ADJACENCY_MATRIX) = struct
  let has_edge g u v = Option.is_some (G.edge g u v)
end
