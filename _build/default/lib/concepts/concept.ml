(* First-class concepts.

   Following Section 2 of the paper, a concept consists of four kinds of
   requirements placed on one or more type parameters:
   - associated types (with their own constraints),
   - function signatures / valid expressions,
   - semantic constraints (axioms), and
   - complexity guarantees.

   A concept may refine other concepts, inheriting their requirements.
   Multi-parameter concepts (Section 2.4, Vector Space) are supported
   directly: [params] may list several type variables. *)

type signature = {
  op_name : string;
  op_params : Ctype.t list;
  op_return : Ctype.t;
  op_doc : string;
}

type type_constraint =
  | Models of string * Ctype.t list
      (* [Models (c, args)]: the instantiated types must model concept [c] *)
  | Same_type of Ctype.t * Ctype.t

type axiom = {
  ax_name : string;
  ax_statement : string;
      (* human-readable formal statement, e.g. "forall a. op(a,e) = a" *)
  ax_vars : string list; (* universally quantified object variables *)
}

type complexity_guarantee = {
  cg_op : string; (* operation the bound applies to *)
  cg_bound : Complexity.t;
  cg_amortized : bool;
}

type requirement =
  | Assoc_type of {
      at_name : string;
      at_constraints : type_constraint list;
    }
  | Operation of signature
  | Constraint of type_constraint
  | Axiom of axiom
  | Complexity_guarantee of complexity_guarantee

type t = {
  name : string;
  params : string list; (* type parameters, usually one; >=2 for multi-type *)
  refines : (string * Ctype.t list) list;
      (* refined concepts with argument instantiations in terms of [params] *)
  requirements : requirement list;
  doc : string;
}

let make ?(doc = "") ?(refines = []) ~params name requirements =
  if params = [] then invalid_arg "Concept.make: needs at least one parameter";
  { name; params; refines; requirements; doc }

let signature ?(doc = "") op_name op_params op_return =
  Operation { op_name; op_params; op_return; op_doc = doc }

let assoc_type ?(constraints = []) at_name =
  Assoc_type { at_name; at_constraints = constraints }

let axiom ?(vars = []) ax_name ax_statement =
  Axiom { ax_name; ax_statement; ax_vars = vars }

let complexity ?(amortized = false) cg_op cg_bound =
  Complexity_guarantee { cg_op; cg_bound; cg_amortized = amortized }

let associated_types t =
  List.filter_map
    (function Assoc_type { at_name; _ } -> Some at_name | _ -> None)
    t.requirements

let operations t =
  List.filter_map
    (function Operation s -> Some s | _ -> None)
    t.requirements

let axioms t =
  List.filter_map (function Axiom a -> Some a | _ -> None) t.requirements

let complexity_guarantees t =
  List.filter_map
    (function Complexity_guarantee c -> Some c | _ -> None)
    t.requirements

let direct_constraints t =
  List.concat_map
    (function
      | Constraint c -> [ c ]
      | Assoc_type { at_name; at_constraints } ->
        (* a constraint on an associated type is phrased against the
           projection from the first parameter *)
        let _ = at_name in
        at_constraints
      | Operation _ | Axiom _ | Complexity_guarantee _ -> [])
    t.requirements

(* Is [t] syntactic only, or semantic (has axioms / complexity bounds)?
   Section 2: "A syntactic concept consists of just associated types and
   function signatures, whereas a semantic concept also includes semantic
   constraints and complexity guarantees." *)
let is_semantic t =
  List.exists
    (function Axiom _ | Complexity_guarantee _ -> true | _ -> false)
    t.requirements

let pp_signature ppf s =
  Fmt.pf ppf "%s : %a -> %a" s.op_name
    Fmt.(list ~sep:(any " * ") Ctype.pp)
    s.op_params Ctype.pp s.op_return

let pp_type_constraint ppf = function
  | Models (c, args) ->
    Fmt.pf ppf "%a models %s" Fmt.(list ~sep:comma Ctype.pp) args c
  | Same_type (a, b) -> Fmt.pf ppf "%a == %a" Ctype.pp a Ctype.pp b

let pp_requirement ppf = function
  | Assoc_type { at_name; at_constraints } ->
    Fmt.pf ppf "type %s%a" at_name
      Fmt.(
        list ~sep:nop (fun ppf c -> pf ppf " where %a" pp_type_constraint c))
      at_constraints
  | Operation s -> pp_signature ppf s
  | Constraint c -> pp_type_constraint ppf c
  | Axiom a -> Fmt.pf ppf "axiom %s: %s" a.ax_name a.ax_statement
  | Complexity_guarantee c ->
    Fmt.pf ppf "%s%s is %a" c.cg_op
      (if c.cg_amortized then " (amortized)" else "")
      Complexity.pp c.cg_bound

let pp ppf t =
  Fmt.pf ppf "@[<v2>concept %s<%a>%a {@,%a@]@,}" t.name
    Fmt.(list ~sep:comma string)
    t.params
    Fmt.(
      list ~sep:nop (fun ppf (c, args) ->
          pf ppf " refines %s<%a>" c (list ~sep:comma Ctype.pp) args))
    t.refines
    Fmt.(list ~sep:cut pp_requirement)
    t.requirements
