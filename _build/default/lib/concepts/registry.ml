(* The registry holds everything the concept engine knows about a world of
   types: concept definitions, per-type structural descriptions (associated
   types), a global table of (free) operations, and declared models.

   Structural information supports ML-signature-style checking; declared
   models support Haskell-type-class-style nominal conformance; the paper
   (Section 2.1) discusses both. Our checker verifies the structure behind
   every nominal declaration, so a declared model is a *checked claim*. *)

type type_desc = {
  td_name : string;
  td_assoc : (string * Ctype.t) list; (* associated type bindings *)
  td_doc : string;
}

type model = {
  mo_concept : string;
  mo_args : Ctype.t list; (* ground argument types *)
  mo_axioms_asserted : string list;
      (* axioms of the concept the declarer vouches for (or has proved) *)
  mo_complexity : (string * Complexity.t) list;
      (* declared bound per operation name *)
  mo_doc : string;
}

type t = {
  mutable concepts : (string * Concept.t) list;
  mutable types : (string * type_desc) list;
  mutable ops : Concept.signature list;
  mutable models : model list;
  mutable refinement_edges : (string * string) list;
      (* (refining, refined) pairs, derived from concept definitions *)
  mutable generation : int;
      (* bumped on every declaration; memo caches key on it so a mutated
         registry can never serve a stale closure *)
}

let create () =
  { concepts = []; types = []; ops = []; models = []; refinement_edges = [];
    generation = 0 }

let generation t = t.generation
let touch t = t.generation <- t.generation + 1

exception Duplicate of string

let declare_concept t (c : Concept.t) =
  if List.mem_assoc c.Concept.name t.concepts then
    raise (Duplicate ("concept " ^ c.Concept.name));
  t.concepts <- (c.Concept.name, c) :: t.concepts;
  t.refinement_edges <-
    List.map (fun (r, _) -> (c.Concept.name, r)) c.Concept.refines
    @ t.refinement_edges;
  touch t

let declare_type ?(doc = "") ?(assoc = []) t name =
  if List.mem_assoc name t.types then raise (Duplicate ("type " ^ name));
  t.types <- (name, { td_name = name; td_assoc = assoc; td_doc = doc }) :: t.types;
  touch t

let declare_op ?(doc = "") t op_name op_params op_return =
  t.ops <-
    { Concept.op_name; op_params; op_return; op_doc = doc } :: t.ops;
  touch t

let declare_model ?(doc = "") ?(axioms = []) ?(complexity = []) t concept args
    =
  t.models <-
    {
      mo_concept = concept;
      mo_args = args;
      mo_axioms_asserted = axioms;
      mo_complexity = complexity;
      mo_doc = doc;
    }
    :: t.models;
  touch t

let find_concept t name = List.assoc_opt name t.concepts
let find_type t name = List.assoc_opt name t.types

let find_model t concept args =
  List.find_opt
    (fun m ->
      String.equal m.mo_concept concept
      && List.length m.mo_args = List.length args
      && List.for_all2 Ctype.equal m.mo_args args)
    t.models

let concepts t = List.map snd t.concepts
let models t = t.models

(* Resolve a type expression to ground normal form: associated-type
   projections are looked up in the type descriptions. *)
let rec resolve t ty =
  match ty with
  | Ctype.Named _ | Ctype.Var _ -> Some ty
  | Ctype.App (f, args) ->
    let rec go acc = function
      | [] -> Some (Ctype.App (f, List.rev acc))
      | a :: rest -> (
        match resolve t a with
        | Some a' -> go (a' :: acc) rest
        | None -> None)
    in
    go [] args
  | Ctype.Assoc (base, field) -> (
    match resolve t base with
    | Some (Ctype.Named n) -> (
      match find_type t n with
      | Some td -> (
        match List.assoc_opt field td.td_assoc with
        | Some bound -> resolve t bound
        | None -> None)
      | None -> None)
    | Some _ | None -> None)

(* Look up ground operations matching name + parameter types. Several ops
   may share name and parameters but differ in return type (e.g. the nullary
   "id" of every monoid carrier), so callers needing the return type filter
   over all matches. *)
let find_ops t name params =
  List.filter
    (fun (s : Concept.signature) ->
      String.equal s.Concept.op_name name
      && List.length s.Concept.op_params = List.length params
      && List.for_all2 Ctype.equal s.Concept.op_params params)
    t.ops

let find_op t name params =
  match find_ops t name params with [] -> None | s :: _ -> Some s

(* Transitive refinement: does concept [a] (directly or indirectly) refine
   concept [b]? Reflexive. *)
let refines t a b =
  if String.equal a b then true
  else
    let rec go visited frontier =
      match frontier with
      | [] -> false
      | c :: rest ->
        if List.mem c visited then go visited rest
        else if String.equal c b then true
        else
          let nexts =
            List.filter_map
              (fun (x, y) -> if String.equal x c then Some y else None)
              t.refinement_edges
          in
          go (c :: visited) (nexts @ rest)
    in
    go [] [ a ]

(* Refinement depth of a concept: length of the longest refinement chain
   below it. Used for most-refined-wins overload resolution. *)
let refinement_depth t name =
  let rec depth visited c =
    if List.mem c visited then 0
    else
      match find_concept t c with
      | None -> 0
      | Some con ->
        let below =
          List.map (fun (r, _) -> depth (c :: visited) r) con.Concept.refines
        in
        1 + List.fold_left max 0 below
  in
  depth [] name
