lib/concepts/overload.mli: Check Ctype Format Registry
