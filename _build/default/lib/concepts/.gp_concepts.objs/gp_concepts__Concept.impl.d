lib/concepts/concept.ml: Complexity Ctype Fmt List
