lib/concepts/ctype.mli: Format
