lib/concepts/taxonomy.mli: Complexity Format
