lib/concepts/lang.mli: Concept Ctype Format Registry
