lib/concepts/archetype.mli: Ctype Registry
