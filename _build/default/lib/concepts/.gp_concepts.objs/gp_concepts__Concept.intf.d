lib/concepts/concept.mli: Complexity Ctype Format
