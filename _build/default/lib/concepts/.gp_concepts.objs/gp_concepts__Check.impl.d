lib/concepts/check.ml: Complexity Concept Ctype Fmt List Option Registry String
