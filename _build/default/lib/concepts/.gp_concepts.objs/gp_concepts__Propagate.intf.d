lib/concepts/propagate.mli: Concept Ctype Format Registry
