lib/concepts/propagate.mli: Ctype Format Registry
