lib/concepts/overload.ml: Check Concept Ctype Fmt List Registry
