lib/concepts/emulation.ml: Concept Ctype Fmt List Registry String
