lib/concepts/complexity.ml: Fmt List Map Printf String
