lib/concepts/check.mli: Complexity Concept Ctype Format Registry
