lib/concepts/registry.mli: Complexity Concept Ctype
