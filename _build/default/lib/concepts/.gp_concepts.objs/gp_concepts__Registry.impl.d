lib/concepts/registry.ml: Complexity Concept Ctype List String
