lib/concepts/registry.ml: Array Complexity Concept Ctype Hashtbl List Option String
