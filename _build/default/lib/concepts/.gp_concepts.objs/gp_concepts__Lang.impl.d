lib/concepts/lang.ml: Buffer Complexity Concept Ctype Fmt List Registry String
