lib/concepts/propagate.ml: Concept Ctype Fmt Hashtbl List Printf Registry String
