lib/concepts/propagate.ml: Concept Ctype Fmt List Printf Registry String
