lib/concepts/propagate.ml: Concept Ctype Fmt List Registry String
