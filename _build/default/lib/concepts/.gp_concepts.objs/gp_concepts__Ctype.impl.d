lib/concepts/ctype.ml: Fmt Int List String
