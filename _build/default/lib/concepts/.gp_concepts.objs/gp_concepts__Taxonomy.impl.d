lib/concepts/taxonomy.ml: Complexity Fmt Int List Option Registry String
