lib/concepts/emulation.mli: Concept Format Registry
