lib/concepts/complexity.mli: Format
