lib/concepts/archetype.ml: Check Concept Ctype List Printf Registry
