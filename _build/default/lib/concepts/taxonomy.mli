(** Algorithm concept taxonomies (paper Sections 1 and 4).

    A taxonomy is a DAG of concept nodes carrying attribute
    classifications (e.g. the seven orthogonal dimensions of the
    distributed-algorithms taxonomy) and entries — concrete algorithms —
    carrying cost bounds per measure (messages, time, local computation,
    comparisons, ...). Queries support refinement reachability,
    "applicable in situation S", best-by-measure selection, and gap
    detection ("situations where no known algorithms ... exist"). *)

type node = {
  nd_name : string;
  nd_parents : string list;  (** refined (more general) nodes *)
  nd_attributes : (string * string) list;  (** dimension -> value *)
  nd_doc : string;
}

type measurement = {
  ms_measure : string;
  ms_param : int;  (** the problem size the sample was taken at *)
  ms_value : float;
}

type entry = {
  en_name : string;
  en_node : string;  (** most specific node the algorithm models *)
  en_costs : (string * Complexity.t) list;  (** analytic bounds *)
  en_doc : string;
  en_measured : measurement list ref;
      (** actual performance samples (paper Section 4: taxonomies
          "organize and present detailed actual performance
          measurements") *)
}

type t = {
  tax_name : string;
  mutable nodes : (string * node) list;
  mutable entries : entry list;
}

val create : string -> t

val add_node :
  ?doc:string ->
  ?attributes:(string * string) list ->
  ?parents:string list ->
  t ->
  string ->
  unit
(** Raises [Registry.Duplicate] on collision and [Invalid_argument] on
    unknown parents. *)

val add_entry :
  ?doc:string ->
  ?costs:(string * Complexity.t) list ->
  t ->
  name:string ->
  node:string ->
  unit

val find_node : t -> string -> node option
val find_entry : t -> string -> entry option

val record_measurement :
  t -> entry:string -> measure:string -> param:int -> value:float -> unit
(** Attach an actual performance sample to an algorithm entry. Raises
    [Invalid_argument] on an unknown entry. *)

val measurements : t -> entry:string -> measure:string -> measurement list
(** Samples for one measure, sorted by problem size. *)

val refines : t -> string -> string -> bool
(** Reflexive-transitive refinement between nodes. *)

val attributes : t -> string -> (string * string) list
(** Effective attributes: own values override inherited ones. *)

val applicable : t -> requirements:(string * string) list -> entry list
(** Entries whose node satisfies every required attribute. *)

val pick :
  t -> requirements:(string * string) list -> measure:string -> entry list
(** Applicable entries minimal on [measure] (incomparable bounds are all
    kept); entries lacking the measure are returned only when none has
    it. *)

val gaps : t -> string list
(** Leaf nodes with no registered algorithm. *)

val pp_entry : Format.formatter -> entry -> unit
