(* The associated-type emulation translation (paper Section 2.2).

   Languages without member types emulate associated types by "adding a
   new type parameter for each associated type" (the C# IEnumerable<T>
   idiom); the paper shows IncidenceGraph becoming
   IncidenceGraph<Vertex, Edge, OutEdgeIter> with the constraints
   flattened onto the parameter list, and reports that this "often more
   than doubled" the number of type parameters. This module performs that
   translation mechanically, so its cost can be measured (experiment C3)
   and the flattened form displayed. *)

type flat_interface = {
  fi_name : string;
  fi_params : string list; (* original params + one per associated type *)
  fi_where : string list; (* rendered constraints on the parameters *)
  fi_ops : Concept.signature list; (* signatures with projections replaced *)
}

(* Rewrite a type so associated-type projections from parameter [p]
   become direct references to the fresh parameter that stands for them. *)
let rec flatten_ty renaming ty =
  match ty with
  | Ctype.Assoc (base, field) -> (
    let base' = flatten_ty renaming base in
    match base' with
    | Ctype.Var v -> (
      match List.assoc_opt (v, field) renaming with
      | Some fresh -> Ctype.Var fresh
      | None -> Ctype.Assoc (base', field))
    | _ -> Ctype.Assoc (base', field))
  | Ctype.Named _ | Ctype.Var _ -> ty
  | Ctype.App (f, args) -> Ctype.App (f, List.map (flatten_ty renaming) args)

(* Fresh parameter name for an associated type: "vertex_type" -> Vertex,
   "out_edge_iterator" -> OutEdgeIterator. *)
let param_for _owner at_name =
  let base =
    if
      String.length at_name > 5
      && String.sub at_name (String.length at_name - 5) 5 = "_type"
    then String.sub at_name 0 (String.length at_name - 5)
    else at_name
  in
  String.split_on_char '_' base
  |> List.map String.capitalize_ascii
  |> String.concat ""

(* Translate one concept into its flattened interface. Associated types
   are assumed to belong to the first parameter (the engine's
   convention). *)
let translate reg (con : Concept.t) =
  let owner = List.hd con.Concept.params in
  let assoc = Concept.associated_types con in
  let renaming =
    List.map (fun at -> ((owner, at), param_for owner at)) assoc
  in
  let fresh_params = List.map snd renaming in
  let fi_params = con.Concept.params @ fresh_params in
  let rename ty = flatten_ty renaming ty in
  let render_constraint = function
    | Concept.Models (c, args) ->
      Fmt.str "%a : %s" Fmt.(list ~sep:comma Ctype.pp) (List.map rename args) c
    | Concept.Same_type (a, b) ->
      Fmt.str "%a == %a" Ctype.pp (rename a) Ctype.pp (rename b)
  in
  let where =
    (* refinements become constraints on the full parameter list *)
    List.map
      (fun (rname, rargs) ->
        let sub =
          match Registry.find_concept reg rname with
          | Some rcon when List.length rcon.Concept.params = List.length rargs
            ->
            (* the refined concept is itself flattened: its associated
               types must be re-listed too (this is the blowup) *)
            let rflat = Concept.associated_types rcon in
            let extra =
              List.map (fun at -> Ctype.Var (param_for owner at)) rflat
            in
            List.map rename rargs @ extra
          | _ -> List.map rename rargs
        in
        Fmt.str "%a : %s" Fmt.(list ~sep:comma Ctype.pp) sub rname)
      con.Concept.refines
    @ List.concat_map
        (fun req ->
          match req with
          | Concept.Assoc_type { at_constraints; _ } ->
            List.map render_constraint at_constraints
          | Concept.Constraint c -> [ render_constraint c ]
          | Concept.Operation _ | Concept.Axiom _
          | Concept.Complexity_guarantee _ ->
            [])
        con.Concept.requirements
  in
  let ops =
    List.map
      (fun (s : Concept.signature) ->
        {
          s with
          Concept.op_params = List.map rename s.Concept.op_params;
          op_return = rename s.Concept.op_return;
        })
      (Concept.operations con)
  in
  { fi_name = con.Concept.name; fi_params; fi_where = where; fi_ops = ops }

(* Type-parameter blowup factor for a concept: flattened params vs
   original params. The paper's study found this "often more than
   doubled". *)
let blowup reg con =
  let flat = translate reg con in
  ( List.length con.Concept.params,
    List.length flat.fi_params )

let pp ppf fi =
  Fmt.pf ppf "@[<v2>interface %s<%a>%a {@,%a@]@,}" fi.fi_name
    Fmt.(list ~sep:comma string)
    fi.fi_params
    Fmt.(
      list ~sep:nop (fun ppf w -> pf ppf "@,  where %s" w))
    fi.fi_where
    Fmt.(list ~sep:cut Concept.pp_signature)
    fi.fi_ops
