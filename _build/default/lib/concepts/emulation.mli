(** The associated-type emulation translation (paper Section 2.2).

    Translates a concept with member (associated) types into the
    flattened interface a language without member types forces: one
    extra type parameter per associated type, with the constraints
    restated as where-clauses on the parameter list — the form whose
    cost the paper's comparative study measured ("the number of type
    parameters in generic algorithms was often more than doubled"). *)

type flat_interface = {
  fi_name : string;
  fi_params : string list;
  fi_where : string list;  (** rendered constraints *)
  fi_ops : Concept.signature list;
}

val translate : Registry.t -> Concept.t -> flat_interface
(** Associated types become parameters (e.g. [vertex_type] -> [Vertex]);
    projections in signatures and constraints are rewritten to the
    parameters. Associated types are assumed to belong to the first
    concept parameter. *)

val blowup : Registry.t -> Concept.t -> int * int
(** (original, flattened) type-parameter counts. *)

val pp : Format.formatter -> flat_interface -> unit
