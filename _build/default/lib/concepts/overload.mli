(** Concept-based overloading (paper Section 2.1).

    A generic function holds candidate implementations, each guarded by a
    concept its argument types must model. Resolution checks the guards
    (nominally by default, so semantic refinements count) and picks the
    candidate whose guard transitively refines every other matching
    guard; incomparable maxima are reported as ambiguous, and a total
    miss returns the per-candidate check reports — the call-site
    diagnostics of Section 2.1. *)

type dyn = ..
(** Dynamically-typed argument/result payloads; client libraries extend
    this with their own constructors. *)

type dyn += Unit

type candidate = {
  cand_name : string;
  cand_guard : string;  (** concept the argument types must model *)
  cand_impl : dyn list -> dyn;
}

type generic = { gen_name : string; mutable candidates : candidate list }

type resolution =
  | Selected of candidate * candidate list
      (** winner, plus less-refined candidates that also matched *)
  | Ambiguous of candidate list
  | No_match of (string * Check.report) list

val create : string -> generic
val add_candidate : generic -> name:string -> guard:string -> (dyn list -> dyn) -> unit

val resolve :
  ?mode:Check.mode -> Registry.t -> generic -> Ctype.t list -> resolution
(** Default mode is {!Check.Nominal}. *)

val resolve_first_match :
  ?mode:Check.mode -> Registry.t -> generic -> Ctype.t list -> resolution
(** Ablation: pick the first candidate whose guard holds, ignoring
    refinement ranking. Demonstrably wrong when a general candidate
    precedes a specialised one — see the ablation bench. *)

val call :
  ?mode:Check.mode ->
  Registry.t ->
  generic ->
  types:Ctype.t list ->
  values:dyn list ->
  (dyn, string) result
(** Resolve and invoke; ambiguity and no-match become [Error] with a
    rendered diagnostic. *)

val pp_resolution : Format.formatter -> resolution -> unit
