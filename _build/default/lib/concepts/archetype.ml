(* Concept archetypes (paper Sections 2.1 and 3.1).

   A syntactic archetype is a *minimal* model of a concept: it provides
   exactly the associated types and operations the concept requires and
   nothing else. Instantiating a generic algorithm with an archetype detects
   requirements the algorithm uses but the concept does not state.

   [instantiate] synthesises such a model directly into a registry: fresh
   ground types for the parameters and every associated type, plus exactly
   the required operations. The returned argument types can then be passed
   to {!Check.check} for any *other* concept the algorithm claims to need:
   if the check fails, the algorithm over-requires.

   Semantic archetypes (most-restrictive behaviour, e.g. a strictly
   single-pass Input Iterator) are runtime objects; gp_sequence and
   gp_stllint build them on top of the descriptor returned here. *)

type instantiation = {
  arch_concept : string;
  arch_args : Ctype.t list; (* the fresh ground types, one per parameter *)
  arch_types : string list; (* every fresh type created, incl. assoc types *)
}

let counter = ref 0

let fresh_name base =
  incr counter;
  Printf.sprintf "%s#arch%d" base !counter

(* Instantiate concept [name] minimally into [reg]. Fails on unknown
   concepts. Refined concepts and nested Models constraints are satisfied by
   recursively instantiating their requirements onto the same fresh types. *)
let rec instantiate reg name =
  match Registry.find_concept reg name with
  | None -> invalid_arg ("Archetype.instantiate: unknown concept " ^ name)
  | Some con ->
    let args =
      List.map (fun p -> Ctype.Named (fresh_name (name ^ "." ^ p)))
        con.Concept.params
    in
    let created = populate reg con args in
    {
      arch_concept = name;
      arch_args = args;
      arch_types =
        List.filter_map (function Ctype.Named n -> Some n | _ -> None) args
        @ created;
    }

(* Populate [reg] so that [args] model [con]: declare the argument types (if
   new), bind fresh associated types, declare required operations, and
   recursively satisfy refined/nested concepts *on those same types*. Returns
   the list of fresh type names created. *)
and populate reg (con : Concept.t) args =
  let created = ref [] in
  let env = List.combine con.Concept.params args in
  let ensure_type ?(assoc = []) n =
    match Registry.find_type reg n with
    | Some _ ->
      List.iter
        (fun (f, ty) ->
          (* extend assoc bindings in place *)
          match Registry.find_type reg n with
          | Some td when not (List.mem_assoc f td.Registry.td_assoc) ->
            reg.Registry.types <-
              (n, { td with Registry.td_assoc = (f, ty) :: td.Registry.td_assoc })
              :: List.remove_assoc n reg.Registry.types;
            Registry.touch reg
          | _ -> ())
        assoc
    | None ->
      Registry.declare_type reg n ~assoc ~doc:"archetype";
      created := n :: !created
  in
  List.iter
    (function Ctype.Named n -> ensure_type n | _ -> ())
    args;
  (* associated types: bind a fresh ground type on the first parameter *)
  List.iter
    (fun req ->
      match req with
      | Concept.Assoc_type { at_name; _ } -> (
        match List.hd args with
        | Ctype.Named owner ->
          let already =
            match Registry.find_type reg owner with
            | Some td -> List.mem_assoc at_name td.Registry.td_assoc
            | None -> false
          in
          if not already then begin
            let fresh = fresh_name (con.Concept.name ^ "." ^ at_name) in
            ensure_type fresh;
            ensure_type owner ~assoc:[ (at_name, Ctype.Named fresh) ]
          end
        | _ -> ())
      | Concept.Operation _ | Concept.Constraint _ | Concept.Axiom _
      | Concept.Complexity_guarantee _ ->
        ())
    con.Concept.requirements;
  (* operations *)
  List.iter
    (fun req ->
      match req with
      | Concept.Operation s ->
        let resolve ty =
          let ty = Ctype.subst env ty in
          match Registry.resolve reg ty with Some g -> g | None -> ty
        in
        let params = List.map resolve s.Concept.op_params in
        let ret = resolve s.Concept.op_return in
        (match Registry.find_op reg s.Concept.op_name params with
        | Some _ -> ()
        | None ->
          Registry.declare_op reg s.Concept.op_name params ret
            ~doc:"archetype op")
      | _ -> ())
    con.Concept.requirements;
  (* same-type constraints: unify by binding the unresolved projection to
     the resolved side (or both to one fresh type). Must run before Models
     satisfaction so nested concepts reuse the unified binding instead of
     inventing a fresh one. *)
  let bind_projection ty ground =
    match ty with
    | Ctype.Assoc (base, field) -> (
      match Registry.resolve reg (Ctype.subst env base) with
      | Some (Ctype.Named owner) -> ensure_type owner ~assoc:[ (field, ground) ]
      | Some _ | None -> ())
    | Ctype.Named _ | Ctype.Var _ | Ctype.App _ -> ()
  in
  let unify a b =
    let a = Ctype.subst env a and b = Ctype.subst env b in
    match Registry.resolve reg a, Registry.resolve reg b with
    | Some _, Some _ -> () (* both ground; Check reports any mismatch *)
    | Some g, None -> bind_projection b g
    | None, Some g -> bind_projection a g
    | None, None ->
      let fresh = Ctype.Named (fresh_name (con.Concept.name ^ ".unified")) in
      (match fresh with
      | Ctype.Named nm -> ensure_type nm
      | _ -> ());
      bind_projection a fresh;
      bind_projection b fresh
  in
  List.iter
    (fun req ->
      let cs =
        match req with
        | Concept.Assoc_type { at_constraints; _ } -> at_constraints
        | Concept.Constraint c -> [ c ]
        | _ -> []
      in
      List.iter
        (function
          | Concept.Same_type (a, b) -> unify a b
          | Concept.Models _ -> ())
        cs)
    con.Concept.requirements;
  (* nested obligations: refined concepts and Models constraints *)
  let satisfy cname cargs =
    let cargs =
      List.map
        (fun a ->
          let a = Ctype.subst env a in
          match Registry.resolve reg a with Some g -> g | None -> a)
        cargs
    in
    match Registry.find_concept reg cname with
    | Some sub -> created := populate reg sub cargs @ !created
    | None -> ()
  in
  List.iter (fun (rname, rargs) -> satisfy rname rargs) con.Concept.refines;
  List.iter
    (fun req ->
      let cs =
        match req with
        | Concept.Assoc_type { at_constraints; _ } -> at_constraints
        | Concept.Constraint c -> [ c ]
        | _ -> []
      in
      List.iter
        (function
          | Concept.Models (cname, cargs) -> satisfy cname cargs
          | Concept.Same_type _ -> ())
        cs)
    con.Concept.requirements;
  (* declare the model nominally, vouching for all axioms (an archetype is
     by definition the most restrictive conforming model) *)
  (match Registry.find_model reg con.Concept.name args with
  | Some _ -> ()
  | None ->
    Registry.declare_model reg con.Concept.name args
      ~axioms:(List.map (fun a -> a.Concept.ax_name) (Concept.axioms con))
      ~doc:"archetype model");
  !created

(* Over-requirement detection: instantiate [declared] and check whether its
   archetype also satisfies [used]. If yes, [used] is implied; if not, an
   algorithm declared to need only [declared] but actually using [used]
   over-requires — exactly what archetype instantiation catches in C++.

   The check runs in Nominal mode: semantic refinements (e.g. Forward vs
   Input iterators, which differ only in the multipass axiom) are invisible
   to structural checking, and the archetype nominally models exactly its
   declared concept's refinement chain. *)
let implies reg ~declared ~used =
  let inst = instantiate reg declared in
  match Registry.find_concept reg used with
  | None -> invalid_arg ("Archetype.implies: unknown concept " ^ used)
  | Some target ->
    let n_needed = List.length target.Concept.params in
    let args =
      if List.length inst.arch_args >= n_needed then
        List.filteri (fun i _ -> i < n_needed) inst.arch_args
      else inst.arch_args
    in
    Check.models ~mode:Check.Nominal reg used args
