(* The small "type language" over which concepts state their requirements.

   A concept never talks about concrete OCaml types directly; it talks about
   - named ground types registered in a {!Registry} ([Named "int"]),
   - concept type parameters ([Var "G"]),
   - associated-type projections ([Assoc (Var "G", "vertex_type")]), and
   - type constructor applications ([App ("list", [Named "int"])]).

   Checking a model then amounts to resolving every [Var] and [Assoc] to a
   ground type and comparing structurally. *)

type t =
  | Named of string
  | Var of string
  | Assoc of t * string
  | App of string * t list

let rec equal a b =
  match a, b with
  | Named x, Named y -> String.equal x y
  | Var x, Var y -> String.equal x y
  | Assoc (t, x), Assoc (u, y) -> String.equal x y && equal t u
  | App (f, xs), App (g, ys) ->
    String.equal f g
    && List.length xs = List.length ys
    && List.for_all2 equal xs ys
  | (Named _ | Var _ | Assoc _ | App _), _ -> false

let rec compare a b =
  let tag = function Named _ -> 0 | Var _ -> 1 | Assoc _ -> 2 | App _ -> 3 in
  match a, b with
  | Named x, Named y -> String.compare x y
  | Var x, Var y -> String.compare x y
  | Assoc (t, x), Assoc (u, y) ->
    let c = compare t u in
    if c <> 0 then c else String.compare x y
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else List.compare compare xs ys
  | a, b -> Int.compare (tag a) (tag b)

let rec pp ppf = function
  | Named s -> Fmt.string ppf s
  | Var s -> Fmt.pf ppf "'%s" s
  | Assoc (t, field) -> Fmt.pf ppf "%a.%s" pp t field
  | App (f, args) -> Fmt.pf ppf "%s<%a>" f Fmt.(list ~sep:comma pp) args

let to_string t = Fmt.str "%a" pp t

(* Substitute concept parameters by actual types. *)
let rec subst env t =
  match t with
  | Named _ -> t
  | Var v -> (match List.assoc_opt v env with Some u -> u | None -> t)
  | Assoc (u, field) -> Assoc (subst env u, field)
  | App (f, args) -> App (f, List.map (subst env) args)

(* All parameter variables occurring in a type, in first-occurrence order. *)
let vars t =
  let rec go acc = function
    | Named _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Assoc (u, _) -> go acc u
    | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let is_ground t = vars t = []
