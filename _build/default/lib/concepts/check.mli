(** Concept checking with call-site-quality diagnostics.

    Reproduces the paper's Section 2.1 demand: when a type fails a
    concept, the error names the violated requirement of the concept at
    the point of use, never the internals of a generic implementation.

    Two modes: {e structural} (ML-signature style: structure alone
    decides) and {e nominal} (type-class style: a declared model is
    additionally required — necessary to distinguish purely semantic
    refinements such as Forward vs Input iterators). *)

type failure =
  | Unknown_concept of string
  | Unknown_type of Ctype.t
  | Arity_mismatch of { concept : string; expected : int; got : int }
  | Unresolved_type of { ty : Ctype.t; context : string }
  | Missing_assoc_type of { ty : Ctype.t; assoc : string }
  | Missing_operation of { expected : Concept.signature }
  | Return_type_mismatch of { op : string; expected : Ctype.t; found : Ctype.t }
  | Same_type_violated of { left : Ctype.t; right : Ctype.t }
  | Refinement_failed of {
      concept : string;
      args : Ctype.t list;
      causes : failure list;
    }
  | Nested_model_failed of {
      concept : string;
      args : Ctype.t list;
      causes : failure list;
    }
  | Complexity_too_weak of {
      op : string;
      required : Complexity.t;
      declared : Complexity.t;
    }
  | No_model_declared of { concept : string; args : Ctype.t list }

type warning =
  | Axiom_asserted_not_proved of { concept : string; axiom : string }
  | Axiom_not_asserted of { concept : string; axiom : string }
  | No_complexity_declared of { concept : string; op : string }

type report = {
  rep_concept : string;
  rep_args : Ctype.t list;
  rep_failures : failure list;
  rep_warnings : warning list;
}

val ok : report -> bool

type mode = Structural | Nominal

val check : ?mode:mode -> Registry.t -> string -> Ctype.t list -> report
(** [check reg concept args]: do the ground types [args] model
    [concept]? Defaults to {!Structural}. *)

val models : ?mode:mode -> Registry.t -> string -> Ctype.t list -> bool

(** {2 Axiom certification}

    Semantic axioms cannot be checked structurally; a model either
    {e asserts} them (producing a warning) or they are {e certified} by a
    checked proof (see gp_simplicissimus's [Certify] and gp_athena). *)

val certify_axiom : concept:string -> axiom:string -> args:Ctype.t list -> unit
val axiom_certified : concept:string -> axiom:string -> args:Ctype.t list -> bool

(** {2 Printing} *)

val pp_failure : Format.formatter -> failure -> unit
val pp_warning : Format.formatter -> warning -> unit
val pp_report : Format.formatter -> report -> unit
