(** Concept archetypes (paper Sections 2.1 and 3.1).

    A syntactic archetype is a minimal model of a concept: exactly the
    associated types and operations the concept requires, nothing more.
    Instantiating a generic algorithm with an archetype detects
    requirements the algorithm uses but its declared concept does not
    state. Semantic archetypes (most-restrictive runtime behaviour, e.g.
    the single-pass input iterator) are built on these descriptors by
    gp_sequence and gp_stllint. *)

type instantiation = {
  arch_concept : string;
  arch_args : Ctype.t list;  (** fresh ground types, one per parameter *)
  arch_types : string list;  (** every fresh type created *)
}

val instantiate : Registry.t -> string -> instantiation
(** Synthesise a minimal model of the named concept directly into the
    registry: fresh types for parameters and associated types, exactly
    the required operations, same-type constraints unified, nested
    concept obligations satisfied recursively, and the model declared
    nominally with all axioms vouched. Raises [Invalid_argument] on an
    unknown concept. *)

val implies : Registry.t -> declared:string -> used:string -> bool
(** Over-requirement detection: does the archetype of [declared] also
    model [used]? Checked nominally, so purely semantic refinements
    (Forward vs Input) are distinguished. If [false], an algorithm
    declaring [declared] but exercising [used] over-requires. *)
