(* Algorithm concept taxonomies (paper Sections 1 and 4).

   A taxonomy is a DAG of concept nodes, each carrying attribute
   classifications (the distributed taxonomy's seven orthogonal dimensions
   are attributes) and performance annotations (asymptotic bounds per cost
   measure: messages, time, local computation, comparisons, ...).

   Queries supported:
   - refinement reachability and most-specific classification,
   - "algorithms applicable in situation S" (attribute filters),
   - "pick the correct algorithm": among applicable entries, minimal cost on
     a chosen measure (Section 4: "helps a system designer to pick the
     correct algorithm for a particular application"). *)

type node = {
  nd_name : string;
  nd_parents : string list; (* refined (more general) nodes *)
  nd_attributes : (string * string) list; (* dimension -> value *)
  nd_doc : string;
}

type measurement = {
  ms_measure : string; (* e.g. "messages" *)
  ms_param : int; (* the size the sample was taken at, e.g. ring size *)
  ms_value : float;
}

type entry = {
  en_name : string; (* concrete algorithm, e.g. "LCR leader election" *)
  en_node : string; (* most specific taxonomy node it models *)
  en_costs : (string * Complexity.t) list; (* measure -> analytic bound *)
  en_doc : string;
  en_measured : measurement list ref;
      (* actual performance samples recorded against the entry — "concept
         descriptions can also organize and present detailed actual
         performance measurements" (paper Section 4) *)
}

type t = {
  tax_name : string;
  mutable nodes : (string * node) list;
  mutable entries : entry list;
}

let create tax_name = { tax_name; nodes = []; entries = [] }

let add_node ?(doc = "") ?(attributes = []) ?(parents = []) t name =
  if List.mem_assoc name t.nodes then
    raise (Registry.Duplicate ("taxonomy node " ^ name));
  List.iter
    (fun p ->
      if not (List.mem_assoc p t.nodes) then
        invalid_arg ("Taxonomy.add_node: unknown parent " ^ p))
    parents;
  t.nodes <-
    t.nodes
    @ [ (name, { nd_name = name; nd_parents = parents; nd_attributes = attributes; nd_doc = doc }) ]

let add_entry ?(doc = "") ?(costs = []) t ~name ~node =
  if not (List.mem_assoc node t.nodes) then
    invalid_arg ("Taxonomy.add_entry: unknown node " ^ node);
  t.entries <-
    t.entries
    @ [ { en_name = name; en_node = node; en_costs = costs; en_doc = doc;
          en_measured = ref [] } ]

let find_entry t name =
  List.find_opt (fun e -> String.equal e.en_name name) t.entries

(* Attach an actual performance sample to an algorithm entry. *)
let record_measurement t ~entry ~measure ~param ~value =
  match find_entry t entry with
  | None -> invalid_arg ("Taxonomy.record_measurement: unknown entry " ^ entry)
  | Some e ->
    e.en_measured :=
      { ms_measure = measure; ms_param = param; ms_value = value }
      :: !(e.en_measured)

let measurements t ~entry ~measure =
  match find_entry t entry with
  | None -> []
  | Some e ->
    List.filter (fun m -> String.equal m.ms_measure measure) !(e.en_measured)
    |> List.sort (fun a b -> Int.compare a.ms_param b.ms_param)

let find_node t name = List.assoc_opt name t.nodes

(* Reflexive-transitive: does node [a] refine node [b]? *)
let refines t a b =
  let rec go visited = function
    | [] -> false
    | c :: rest ->
      if List.mem c visited then go visited rest
      else if String.equal c b then true
      else
        let parents =
          match find_node t c with Some n -> n.nd_parents | None -> []
        in
        go (c :: visited) (parents @ rest)
  in
  String.equal a b || go [] [ a ]

(* Effective attributes of a node: own attributes override inherited ones. *)
let attributes t name =
  let rec go visited name =
    if List.mem name visited then []
    else
      match find_node t name with
      | None -> []
      | Some n ->
        let inherited =
          List.concat_map (go (name :: visited)) n.nd_parents
        in
        n.nd_attributes
        @ List.filter
            (fun (k, _) -> not (List.mem_assoc k n.nd_attributes))
            inherited
  in
  go [] name

(* All entries whose node satisfies every required attribute. *)
let applicable t ~requirements =
  List.filter
    (fun e ->
      let attrs = attributes t e.en_node in
      List.for_all
        (fun (dim, v) ->
          match List.assoc_opt dim attrs with
          | Some v' -> String.equal v v'
          | None -> false)
        requirements)
    t.entries

(* Pick the best applicable algorithm by a cost measure; entries lacking the
   measure are considered last. Ties are all returned. *)
let pick t ~requirements ~measure =
  let candidates = applicable t ~requirements in
  let with_cost =
    List.filter_map
      (fun e ->
        Option.map (fun c -> (e, c)) (List.assoc_opt measure e.en_costs))
      candidates
  in
  match with_cost with
  | [] -> candidates (* no cost info: return all applicable *)
  | (e0, c0) :: rest ->
    let minimal =
      List.fold_left
        (fun (acc, cmin) (e, c) ->
          match Complexity.compare_growth c cmin with
          | Some n when n < 0 -> ([ e ], c)
          | Some 0 -> (e :: acc, cmin)
          | Some _ -> (acc, cmin)
          | None -> (e :: acc, cmin) (* incomparable: keep both *))
        ([ e0 ], c0) rest
    in
    List.rev (fst minimal)

(* Gaps: leaf nodes with no registered algorithm — the paper: a taxonomy
   "helps in the design of new [algorithms] (based on situations where no
   known algorithms for a particular concept refinement exist)". *)
let gaps t =
  let has_child name =
    List.exists (fun (_, n) -> List.mem name n.nd_parents) t.nodes
  in
  List.filter_map
    (fun (name, _) ->
      if
        (not (has_child name))
        && not (List.exists (fun e -> refines t e.en_node name) t.entries)
      then Some name
      else None)
    t.nodes

let pp_entry ppf e =
  Fmt.pf ppf "%s [%s]%a" e.en_name e.en_node
    Fmt.(
      list ~sep:nop (fun ppf (m, c) -> pf ppf " %s=%a" m Complexity.pp c))
    e.en_costs
