(** First-class concepts (paper Section 2).

    A concept is a named set of requirements over one or more type
    parameters: associated types, function signatures / valid
    expressions, semantic constraints (axioms), and complexity
    guarantees. Concepts may {e refine} other concepts, inheriting their
    requirements; types (or type tuples) that satisfy the requirements
    {e model} the concept. Multi-parameter concepts (Section 2.4, Vector
    Space) are supported directly. *)

type signature = {
  op_name : string;
  op_params : Ctype.t list;
  op_return : Ctype.t;
  op_doc : string;
}

type type_constraint =
  | Models of string * Ctype.t list
      (** the instantiated types must model the named concept *)
  | Same_type of Ctype.t * Ctype.t
      (** the two type expressions must resolve to the same ground type *)

type axiom = {
  ax_name : string;
  ax_statement : string;  (** human-readable formal statement *)
  ax_vars : string list;  (** universally quantified object variables *)
}

type complexity_guarantee = {
  cg_op : string;
  cg_bound : Complexity.t;
  cg_amortized : bool;
}

type requirement =
  | Assoc_type of { at_name : string; at_constraints : type_constraint list }
  | Operation of signature
  | Constraint of type_constraint
  | Axiom of axiom
  | Complexity_guarantee of complexity_guarantee

type t = {
  name : string;
  params : string list;
  refines : (string * Ctype.t list) list;
  requirements : requirement list;
  doc : string;
}

val make :
  ?doc:string ->
  ?refines:(string * Ctype.t list) list ->
  params:string list ->
  string ->
  requirement list ->
  t
(** [make ~params name reqs] builds a concept. Raises [Invalid_argument]
    when [params] is empty. *)

(** {2 Requirement constructors} *)

val signature : ?doc:string -> string -> Ctype.t list -> Ctype.t -> requirement
val assoc_type : ?constraints:type_constraint list -> string -> requirement
val axiom : ?vars:string list -> string -> string -> requirement
val complexity : ?amortized:bool -> string -> Complexity.t -> requirement

(** {2 Accessors} *)

val associated_types : t -> string list
val operations : t -> signature list
val axioms : t -> axiom list
val complexity_guarantees : t -> complexity_guarantee list
val direct_constraints : t -> type_constraint list

val is_semantic : t -> bool
(** A {e semantic} concept has axioms or complexity guarantees; a
    {e syntactic} one has only associated types and signatures. *)

(** {2 Printing} *)

val pp_signature : Format.formatter -> signature -> unit
val pp_type_constraint : Format.formatter -> type_constraint -> unit
val pp_requirement : Format.formatter -> requirement -> unit
val pp : Format.formatter -> t -> unit
