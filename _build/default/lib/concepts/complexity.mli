(** Symbolic asymptotic complexity bounds.

    Concepts carry complexity guarantees ("amortized O(1) push_back",
    "O(n log n) sort") and taxonomies compare algorithms by them. A bound
    is a sum of monomials over named size variables; each monomial tracks
    polynomial and logarithmic degree per variable. Constants are
    irrelevant asymptotically and dropped. *)

type t

val constant : t
(** O(1). *)

val linear : string -> t
(** [linear "n"] is O(n). *)

val log_ : string -> t
(** [log_ "n"] is O(log n). *)

val n_log_n : string -> t
(** [n_log_n "n"] is O(n log n). *)

val quadratic : string -> t
val cubic : string -> t

val power : string -> int -> t
(** [power "n" k] is O(n{^ k}). *)

val poly_log : string -> poly:int -> log:int -> t
(** [poly_log "n" ~poly:p ~log:l] is O(n{^ p} log{^ l} n). *)

val add : t -> t -> t
(** Sum of bounds: dominated monomials are absorbed, so
    [add (linear "n") (quadratic "n")] = O(n{^ 2}) while
    [add (linear "n") (linear "m")] = O(n + m). *)

val mul : t -> t -> t
(** Product of bounds: [mul (linear "n") (log_ "n")] = O(n log n). *)

val equal : t -> t -> bool

val leq : t -> t -> bool
(** [leq a b]: [a] grows no faster than [b]. A partial order —
    O(n) and O(m) are incomparable. *)

val compare_growth : t -> t -> int option
(** [Some (-1|0|1)] when comparable, [None] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
