(** The type language over which concepts state their requirements.

    Concepts never mention concrete OCaml types; they constrain {e type
    expressions} built from named ground types, concept parameters,
    associated-type projections, and constructor applications. Checking a
    model resolves every projection to a ground type (via a
    {!Registry.t}) and compares structurally. *)

type t =
  | Named of string  (** a ground type registered by name, e.g. ["int"] *)
  | Var of string  (** a concept type parameter, e.g. ["G"] *)
  | Assoc of t * string
      (** associated-type projection, e.g. [G.vertex_type] *)
  | App of string * t list
      (** type-constructor application, e.g. [list<int>] *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [subst env t] replaces every [Var v] bound in [env]. *)
val subst : (string * t) list -> t -> t

(** Parameter variables occurring in [t], in first-occurrence order. *)
val vars : t -> string list

(** A type expression with no parameter variables. *)
val is_ground : t -> bool
