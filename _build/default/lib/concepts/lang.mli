(** A cohesive surface syntax for concepts — the paper's future-work
    item ("unifying the notions of syntactic, semantic, and performance
    requirements on concepts into a single, cohesive syntax"), made
    concrete as a small declaration language:

    {[
      concept Monoid<T> refines Semigroup<T> {
        id : -> T;
        axiom left_identity(a): "op(id,a) = a";
        complexity op O(1);
      }

      type "int[+]" { elem = int; }
      op op : "int[+]", "int[+]" -> "int[+]";
      model Monoid<"int[+]"> asserting associativity, left_identity;
    ]}

    Type names containing special characters are double-quoted.
    Comments run from [//] to end of line. *)

exception Parse_error of { line : int; col : int; message : string }

type item =
  | Iconcept of Concept.t
  | Itype of { name : string; assoc : (string * Ctype.t) list }
  | Iop of { name : string; params : Ctype.t list; ret : Ctype.t }
  | Imodel of { concept : string; args : Ctype.t list; axioms : string list }

val parse_string : string -> item list
(** Raises {!Parse_error} with position information. *)

val load_items : Registry.t -> item list -> unit
val load_string : Registry.t -> string -> unit
(** Parse and declare everything into the registry. *)

(** {2 Printing}

    [to_source] renders a concept in the surface syntax; parser-authored
    concepts round-trip ([parse_string (to_source c)] re-reads [c]). *)

val pp_ty : Format.formatter -> Ctype.t -> unit
val pp_concept : Format.formatter -> Concept.t -> unit
val to_source : Concept.t -> string
