(** The registry: everything the concept engine knows about a world of
    types — concept definitions, per-type structural descriptions,
    free operations, and declared models.

    Structural information supports ML-signature-style checking; declared
    models support type-class-style nominal conformance (both discussed
    in paper Section 2.1). The checker verifies the structure behind
    every nominal declaration, so a declared model is a checked claim. *)

type type_desc = {
  td_name : string;
  td_assoc : (string * Ctype.t) list;  (** associated-type bindings *)
  td_doc : string;
}

type model = {
  mo_concept : string;
  mo_args : Ctype.t list;
  mo_axioms_asserted : string list;
      (** axiom names the declarer vouches for (or has proved) *)
  mo_complexity : (string * Complexity.t) list;
      (** declared bound per operation *)
  mo_doc : string;
}

type t = {
  mutable concepts : (string * Concept.t) list;
  mutable types : (string * type_desc) list;
  mutable ops : Concept.signature list;
  mutable models : model list;
  mutable refinement_edges : (string * string) list;
  mutable generation : int;
}

val create : unit -> t

val generation : t -> int
(** Monotone counter bumped by every declaration (and by {!touch}).
    Memo caches over registry-dependent queries — e.g.
    {!Propagate.closure} — include it in their keys, so mutating the
    registry invalidates cached answers without any notification
    machinery. *)

val touch : t -> unit
(** Bump {!generation}. Call after mutating the record fields directly
    (as {!Lang.load_items} and {!Archetype} do for associated-type
    refinement) so caches observe the change. *)

exception Duplicate of string

(** {2 Declarations} *)

val declare_concept : t -> Concept.t -> unit
(** Raises {!Duplicate} on a name collision. *)

val declare_type :
  ?doc:string -> ?assoc:(string * Ctype.t) list -> t -> string -> unit

val declare_op : ?doc:string -> t -> string -> Ctype.t list -> Ctype.t -> unit

val declare_model :
  ?doc:string ->
  ?axioms:string list ->
  ?complexity:(string * Complexity.t) list ->
  t ->
  string ->
  Ctype.t list ->
  unit

(** {2 Lookup} *)

val find_concept : t -> string -> Concept.t option
val find_type : t -> string -> type_desc option
val find_model : t -> string -> Ctype.t list -> model option
val concepts : t -> Concept.t list
val models : t -> model list

val resolve : t -> Ctype.t -> Ctype.t option
(** Resolve a type expression to ground normal form by following
    associated-type bindings; [None] when a projection is unbound. *)

val find_ops : t -> string -> Ctype.t list -> Concept.signature list
(** All registered operations matching name and parameter types. Several
    may differ only in return type (e.g. the nullary identity of every
    monoid carrier). *)

val find_op : t -> string -> Ctype.t list -> Concept.signature option

(** {2 Refinement} *)

val refines : t -> string -> string -> bool
(** Reflexive-transitive refinement between concept names. *)

val refinement_depth : t -> string -> int
(** Length of the longest refinement chain below a concept; used for
    most-refined-wins overload resolution. *)
