(* Concept-based overloading (paper Section 2.1).

   "It is often desirable to select from several implementations of a
   function based solely on the concepts modeled by the arguments." A
   generic function holds a list of candidate implementations, each guarded
   by a concept constraint on the argument types. Resolution checks which
   guards hold and picks the most refined candidate; incomparable maxima are
   an ambiguity error (reported, not silently broken).

   Implementations are dynamically typed ([dyn] is an open variant so each
   client library registers its own payloads); the *selection logic* is the
   point being reproduced, and it is fully static in the concept algebra. *)

type dyn = ..
type dyn += Unit

type candidate = {
  cand_name : string; (* human-readable label, e.g. "sort/random-access" *)
  cand_guard : string; (* concept the argument types must model *)
  cand_impl : dyn list -> dyn;
}

type generic = {
  gen_name : string;
  mutable candidates : candidate list;
}

type resolution =
  | Selected of candidate * candidate list (* winner, losers that matched *)
  | Ambiguous of candidate list
  | No_match of (string * Check.report) list
      (* per-candidate failure reports: call-site diagnostics *)

let create gen_name = { gen_name; candidates = [] }

let add_candidate g ~name ~guard impl =
  g.candidates <- g.candidates @ [ { cand_name = name; cand_guard = guard; cand_impl = impl } ]

(* Resolve against the actual argument types. A candidate matches when
   [args] model its guard concept. The default mode is Nominal: purely
   semantic refinements (Forward vs Input iterators) are invisible to
   structural checking, and overload resolution must respect the *declared*
   modeling relation, as type-class instances and C++ concept maps do.
   Among matches, the winner must have a guard that transitively refines
   every other matching guard; otherwise the call is ambiguous. *)
let resolve ?(mode = Check.Nominal) reg g args =
  let reports =
    List.map
      (fun c ->
        let concept_arity =
          match Registry.find_concept reg c.cand_guard with
          | Some con -> List.length con.Concept.params
          | None -> List.length args
        in
        let guard_args =
          if List.length args >= concept_arity then
            List.filteri (fun i _ -> i < concept_arity) args
          else args
        in
        (c, Check.check ~mode reg c.cand_guard guard_args))
      g.candidates
  in
  let matches = List.filter (fun (_, r) -> Check.ok r) reports in
  match matches with
  | [] -> No_match (List.map (fun (c, r) -> (c.cand_name, r)) reports)
  | [ (c, _) ] -> Selected (c, [])
  | _ ->
    let cands = List.map fst matches in
    let best =
      List.filter
        (fun c ->
          List.for_all
            (fun c' -> Registry.refines reg c.cand_guard c'.cand_guard)
            cands)
        cands
    in
    (match best with
    | [ w ] -> Selected (w, List.filter (fun c -> c != w) cands)
    | _ -> Ambiguous cands)

(* Ablation: naive first-match resolution, ignoring refinement ranking.
   Retained so the ablation bench can demonstrate why most-refined-wins
   matters (a general candidate listed first shadows the specialised
   one). *)
let resolve_first_match ?(mode = Check.Nominal) reg g args =
  let matching =
    List.find_opt
      (fun c ->
        let concept_arity =
          match Registry.find_concept reg c.cand_guard with
          | Some con -> List.length con.Concept.params
          | None -> List.length args
        in
        let guard_args =
          if List.length args >= concept_arity then
            List.filteri (fun i _ -> i < concept_arity) args
          else args
        in
        Check.ok (Check.check ~mode reg c.cand_guard guard_args))
      g.candidates
  in
  match matching with
  | Some c -> Selected (c, [])
  | None -> No_match []

(* Resolve and invoke. *)
let call ?mode reg g ~types ~values =
  match resolve ?mode reg g types with
  | Selected (c, _) -> Ok (c.cand_impl values)
  | Ambiguous cs ->
    Error
      (Fmt.str "ambiguous call to %s: candidates %a" g.gen_name
         Fmt.(list ~sep:comma string)
         (List.map (fun c -> c.cand_name) cs))
  | No_match reports ->
    Error
      (Fmt.str
         "@[<v2>no candidate of %s matches argument types <%a>:@,%a@]"
         g.gen_name
         Fmt.(list ~sep:comma Ctype.pp)
         types
         Fmt.(
           list ~sep:cut (fun ppf (name, r) ->
               pf ppf "@[<v2>candidate %s:@,%a@]" name Check.pp_report r))
         reports)

let pp_resolution ppf = function
  | Selected (c, losers) ->
    Fmt.pf ppf "selected %s (guard %s)%a" c.cand_name c.cand_guard
      Fmt.(
        list ~sep:nop (fun ppf l ->
            pf ppf ", over %s (guard %s)" l.cand_name l.cand_guard))
      losers
  | Ambiguous cs ->
    Fmt.pf ppf "ambiguous between %a"
      Fmt.(list ~sep:comma string)
      (List.map (fun c -> c.cand_name) cs)
  | No_match _ -> Fmt.string ppf "no matching candidate"
