(* First-class iterators with STL categories.

   An iterator is an immutable value denoting a position in a sequence;
   copying one is free and saves the position (the "multipass" capability of
   Forward and stronger iterators). Category determines which operations are
   available; calling an unsupported operation raises [Category_violation] —
   the runtime analogue of a concept-check failure.

   Iterators are *checked*: each captures the owning container's version at
   creation, and containers bump their version on invalidating mutations.
   Using an invalidated iterator raises [Invalidated] — the dynamic
   counterpart of the static invalidation analysis in gp_stllint. *)

type category = Input | Output | Forward | Bidirectional | Random_access

let category_name = function
  | Input -> "InputIterator"
  | Output -> "OutputIterator"
  | Forward -> "ForwardIterator"
  | Bidirectional -> "BidirectionalIterator"
  | Random_access -> "RandomAccessIterator"

(* Refinement rank along the input chain; Output is off-chain. *)
let rank = function
  | Input -> 0
  | Forward -> 1
  | Bidirectional -> 2
  | Random_access -> 3
  | Output -> -1

(* [satisfies ~required cat]: does an iterator of category [cat] provide the
   capabilities of [required]? *)
let satisfies ~required cat =
  match required with
  | Output -> cat = Output || rank cat >= rank Forward
  | r -> rank cat >= rank r && rank cat >= 0

exception Category_violation of string
exception Invalidated of string
exception Singular of string
exception Multipass_violation of string

type 'a t = {
  cat : category;
  ident : int * int; (* (container uid, position token); (-1,-1) = singular *)
  get : unit -> 'a;
  put : ('a -> unit) option;
  step : unit -> 'a t;
  back : (unit -> 'a t) option;
  jump : (int -> 'a t) option;
  (* Constant-time indexed access relative to this iterator — the runtime
     form of the RandomAccessIterator capability. [ixget]/[ixset] avoid
     materialising an iterator value per access, which is what lets the
     dispatched introsort actually run at array speed. Present only on
     random-access iterators. *)
  ixget : (int -> 'a) option;
  ixset : (int -> 'a -> unit) option;
}

let uid_counter = ref 0

let fresh_uid () =
  incr uid_counter;
  !uid_counter

let equal a b = a.ident = b.ident
let category it = it.cat

let violation it what =
  raise
    (Category_violation
       (Printf.sprintf "%s does not support %s" (category_name it.cat) what))

let get it = it.get ()

let set it v =
  match it.put with Some p -> p v | None -> violation it "writing"

let step it = it.step ()

let back it =
  match it.back with Some b -> b () | None -> violation it "stepping back"

let jump it n =
  match it.jump with Some j -> j n | None -> violation it "random access"

(* The singular iterator: points nowhere; any use other than assignment
   raises. Erase results and default-initialised iterators are singular. *)
let singular : unit -> 'a t =
 fun () ->
  let fail what () = raise (Singular ("use of a singular iterator: " ^ what)) in
  {
    cat = Input;
    ident = (-1, -1);
    get = fail "dereference";
    put = None;
    step = fail "increment";
    back = None;
    jump = None;
    ixget = None;
    ixset = None;
  }

let is_singular it = it.ident = (-1, -1)

(* Downgrade an iterator's advertised category — used to hand a
   random-access iterator to an algorithm as if it were weaker, which is how
   the dispatch tests and benches compare algorithm variants on identical
   data. The underlying capabilities are restricted accordingly. *)
let rec restrict cat it =
  if rank cat > rank it.cat then
    invalid_arg "Iter.restrict: cannot strengthen an iterator";
  {
    it with
    cat;
    step = (fun () -> restrict cat (it.step ()));
    back =
      (if rank cat >= rank Bidirectional then
         Option.map (fun b () -> restrict cat (b ())) it.back
       else None);
    jump =
      (if cat = Random_access then
         Option.map (fun j n -> restrict cat (j n)) it.jump
       else None);
    put = (if cat = Output || rank cat >= rank Forward then it.put else None);
    ixget = (if cat = Random_access then it.ixget else None);
    ixset = (if cat = Random_access then it.ixset else None);
  }

(* A single-pass input iterator over a generator function: the semantic
   archetype of the Input Iterator concept (paper Section 3.1). All copies
   share the stream; once any copy advances past position [p], dereferencing
   another copy at or before [p] raises [Multipass_violation]. STLlint uses
   exactly this to expose max_element's undeclared multipass requirement. *)
type 'a stream_state = {
  src : int -> 'a option; (* None = end of stream *)
  mutable watermark : int; (* highest position consumed *)
  suid : int;
}

let rec stream_at st pos =
  let eof = st.src pos = None in
  let ident = (st.suid, if eof then -1 else pos) in
  {
    cat = Input;
    ident;
    get =
      (fun () ->
        if eof then raise (Singular "dereference of past-the-end iterator");
        if pos < st.watermark then
          raise
            (Multipass_violation
               (Printf.sprintf
                  "input iterator re-reads position %d after the stream \
                   advanced to %d (single-pass)"
                  pos st.watermark));
        match st.src pos with Some v -> v | None -> assert false);
    put = None;
    step =
      (fun () ->
        if eof then raise (Singular "increment of past-the-end iterator");
        if pos < st.watermark then
          raise
            (Multipass_violation
               (Printf.sprintf
                  "input iterator re-traverses position %d (single-pass)" pos));
        st.watermark <- max st.watermark (pos + 1);
        stream_at st (pos + 1));
    back = None;
    jump = None;
    ixget = None;
    ixset = None;
  }

(* [of_stream f] returns [(first, last)] input iterators over the stream
   generated by [f]. *)
let of_stream src =
  let st = { src; watermark = 0; suid = fresh_uid () } in
  let eof_ident = (st.suid, -1) in
  let last =
    {
      cat = Input;
      ident = eof_ident;
      get = (fun () -> raise (Singular "dereference of past-the-end iterator"));
      put = None;
      step = (fun () -> raise (Singular "increment of past-the-end iterator"));
      back = None;
      jump = None;
      ixget = None;
      ixset = None;
    }
  in
  (stream_at st 0, last)

let of_list xs =
  let arr = Array.of_list xs in
  of_stream (fun i -> if i < Array.length arr then Some arr.(i) else None)

(* An output iterator writing through [sink] — the building block for
   back_inserter and ostream-style iterators. Stepping yields a fresh
   position token; reading raises (write-only). *)
let output_to sink =
  let uid = fresh_uid () in
  let rec at pos =
    {
      cat = Output;
      ident = (uid, pos);
      get =
        (fun () ->
          raise (Category_violation "OutputIterator does not support reading"));
      put = Some sink;
      step = (fun () -> at (pos + 1));
      back = None;
      jump = None;
      ixget = None;
      ixset = None;
    }
  in
  at 0

(* Instrumented wrapper: counts dereferences and steps through a shared
   cell. Used by the benches to report operation counts alongside wall-clock
   time (the taxonomy work wants "detailed actual performance
   measurements"). *)
type counters = { mutable derefs : int; mutable steps : int }

let counters () = { derefs = 0; steps = 0 }

let rec counting c it =
  {
    it with
    get =
      (fun () ->
        c.derefs <- c.derefs + 1;
        it.get ());
    step =
      (fun () ->
        c.steps <- c.steps + 1;
        counting c (it.step ()));
    back = Option.map (fun b () -> c.steps <- c.steps + 1; counting c (b ())) it.back;
    jump = Option.map (fun j n -> c.steps <- c.steps + 1; counting c (j n)) it.jump;
    ixget =
      Option.map
        (fun g n ->
          c.derefs <- c.derefs + 1;
          g n)
        it.ixget;
    ixset =
      Option.map
        (fun s n v ->
          c.derefs <- c.derefs + 1;
          s n v)
        it.ixset;
  }
