(* A doubly-linked list with a sentinel node and checked bidirectional
   iterators.

   Invalidation semantics mirror std::list: insertion invalidates nothing;
   erase invalidates only iterators to the erased element (dead nodes are
   marked, and iterators detect them on use). This difference from
   {!Varray} is precisely what the iterator-invalidation analysis in
   gp_stllint keys on. *)

type 'a node = {
  nid : int;
  mutable value : 'a option; (* None only for the sentinel *)
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable dead : bool;
}

type 'a t = { uid : int; sentinel : 'a node; mutable len : int }

let create () =
  let rec sentinel =
    { nid = 0; value = None; prev = sentinel; next = sentinel; dead = false }
  in
  { uid = Iter.fresh_uid (); sentinel; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let nid_counter = ref 0

let fresh_node v prev next =
  incr nid_counter;
  { nid = !nid_counter; value = Some v; prev; next; dead = false }

let link_before t node v =
  let fresh = fresh_node v node.prev node in
  node.prev.next <- fresh;
  node.prev <- fresh;
  t.len <- t.len + 1;
  fresh

let push_back t v = ignore (link_before t t.sentinel v)
let push_front t v = ignore (link_before t t.sentinel.next v)

let of_list xs =
  let t = create () in
  List.iter (push_back t) xs;
  t

let to_list t =
  let rec go acc node =
    if node == t.sentinel then List.rev acc
    else
      match node.value with
      | Some v -> go (v :: acc) node.next
      | None -> go acc node.next
  in
  go [] t.sentinel.next

let rec iter_at t node : 'a Iter.t =
  let check () =
    if node.dead then
      raise (Iter.Invalidated "list iterator to an erased element")
  in
  {
    Iter.cat = Iter.Bidirectional;
    ident = (t.uid, node.nid);
    get =
      (fun () ->
        check ();
        match node.value with
        | Some v -> v
        | None -> raise (Iter.Singular "dereference of past-the-end list iterator"));
    put =
      Some
        (fun v ->
          check ();
          match node.value with
          | Some _ -> node.value <- Some v
          | None ->
            raise (Iter.Singular "write through past-the-end list iterator"));
    step =
      (fun () ->
        check ();
        if node == t.sentinel then
          raise (Iter.Singular "increment of past-the-end list iterator");
        iter_at t node.next);
    back =
      Some
        (fun () ->
          check ();
          if node.prev == t.sentinel && node == t.sentinel then
            raise (Iter.Singular "decrement before the beginning of a list");
          iter_at t node.prev);
    jump = None;
    ixget = None;
    ixset = None;
  }

let begin_ t = iter_at t t.sentinel.next
let end_ t = iter_at t t.sentinel

let node_of t (it : 'a Iter.t) =
  let uid, nid = it.Iter.ident in
  if uid <> t.uid then invalid_arg "Dlist.node_of: foreign iterator";
  let rec find node =
    if node.nid = nid then node
    else if node.next == t.sentinel then
      if t.sentinel.nid = nid then t.sentinel
      else invalid_arg "Dlist.node_of: stale iterator"
    else find node.next
  in
  if t.sentinel.nid = nid then t.sentinel else find t.sentinel.next

(* Erase the element at [it]. Only iterators to this node are invalidated;
   returns an iterator to the following element. *)
let erase t it =
  let node = node_of t it in
  if node == t.sentinel then invalid_arg "Dlist.erase: past-the-end";
  node.prev.next <- node.next;
  node.next.prev <- node.prev;
  node.dead <- true;
  t.len <- t.len - 1;
  iter_at t node.next

(* Insert [v] before [it]; nothing is invalidated. *)
let insert t it v =
  let node = node_of t it in
  let fresh = link_before t node v in
  iter_at t fresh

let pp pp_elem ppf t =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp_elem) (to_list t)

(* Back- and front-inserting output iterators. *)
let back_inserter t = Iter.output_to (push_back t)
let front_inserter t = Iter.output_to (push_front t)
