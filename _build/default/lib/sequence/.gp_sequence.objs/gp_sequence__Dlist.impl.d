lib/sequence/dlist.ml: Fmt Iter List
