lib/sequence/varray.mli: Format Iter
