lib/sequence/deque.ml: Array Fmt Iter List
