lib/sequence/algorithms.mli: Iter
