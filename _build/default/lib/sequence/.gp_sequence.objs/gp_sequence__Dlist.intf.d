lib/sequence/dlist.mli: Format Iter
