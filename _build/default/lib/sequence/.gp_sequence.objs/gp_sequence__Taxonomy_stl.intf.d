lib/sequence/taxonomy_stl.mli: Gp_concepts
