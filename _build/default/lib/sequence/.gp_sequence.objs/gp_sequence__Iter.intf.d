lib/sequence/iter.mli:
