lib/sequence/decls.ml: Algorithms Complexity Concept Ctype Gp_concepts Iter List Overload Registry
