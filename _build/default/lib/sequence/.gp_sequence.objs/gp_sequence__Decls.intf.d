lib/sequence/decls.mli: Gp_concepts Iter
