lib/sequence/iter.ml: Array Option Printf
