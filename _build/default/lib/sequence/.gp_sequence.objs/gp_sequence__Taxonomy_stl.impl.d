lib/sequence/taxonomy_stl.ml: Complexity Gp_concepts List Taxonomy
