lib/sequence/deque.mli: Format Iter
