lib/sequence/algorithms.ml: Float Iter List
