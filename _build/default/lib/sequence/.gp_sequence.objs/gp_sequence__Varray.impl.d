lib/sequence/varray.ml: Array Fmt Iter List
