(** First-class checked iterators with STL categories.

    An iterator is an immutable value denoting a position in a sequence;
    copying one saves the position (the multipass capability of Forward
    and stronger categories). Category determines available operations;
    unsupported operations raise {!Category_violation} — the runtime
    analogue of a concept-check failure.

    Iterators are {e checked}: containers version their state and
    iterators capture the version, so use after an invalidating mutation
    raises {!Invalidated} — the dynamic counterpart of gp_stllint's
    static analysis. *)

type category = Input | Output | Forward | Bidirectional | Random_access

val category_name : category -> string

val rank : category -> int
(** Refinement rank along the input chain; [Output] is off-chain. *)

val satisfies : required:category -> category -> bool
(** Does an iterator of this category provide the capabilities of
    [required]? *)

exception Category_violation of string
exception Invalidated of string
exception Singular of string
exception Multipass_violation of string

type 'a t = {
  cat : category;
  ident : int * int;
      (** (container uid, position token); [(-1, -1)] = singular *)
  get : unit -> 'a;
  put : ('a -> unit) option;
  step : unit -> 'a t;
  back : (unit -> 'a t) option;
  jump : (int -> 'a t) option;
  ixget : (int -> 'a) option;
      (** O(1) indexed read relative to this iterator (random access
          only): array-speed access without materialising iterators *)
  ixset : (int -> 'a -> unit) option;
}

val fresh_uid : unit -> int
(** A unique container identifier (used by container implementors). *)

(** {2 Operations} *)

val equal : 'a t -> 'a t -> bool
(** Position equality (same container, same position). *)

val category : 'a t -> category
val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val step : 'a t -> 'a t
val back : 'a t -> 'a t
val jump : 'a t -> int -> 'a t

(** {2 Special iterators} *)

val singular : unit -> 'a t
(** Points nowhere; any use raises {!Singular}. *)

val is_singular : 'a t -> bool

val restrict : category -> 'a t -> 'a t
(** Downgrade the advertised category (and strip the corresponding
    capabilities); raises [Invalid_argument] on an attempt to
    strengthen. Used to drive algorithms with weaker iterators over the
    same data. *)

(** {2 Input streams (semantic archetype)} *)

val of_stream : (int -> 'a option) -> 'a t * 'a t
(** [(first, last)] single-pass input iterators over a generator
    ([None] = end of stream). This is the {e semantic archetype} of the
    Input Iterator concept (paper Section 3.1): once any copy advances
    past a position, re-reading it raises {!Multipass_violation}. *)

val of_list : 'a list -> 'a t * 'a t

(** {2 Output iterators} *)

val output_to : ('a -> unit) -> 'a t
(** A write-only iterator calling [sink] on every {!set} — the building
    block for back-inserters and ostream-style output. Reading raises
    {!Category_violation}. *)

(** {2 Instrumentation} *)

type counters = { mutable derefs : int; mutable steps : int }

val counters : unit -> counters

val counting : counters -> 'a t -> 'a t
(** Wrap an iterator so dereferences and steps are counted — operation
    counts reported alongside wall-clock time in the benches. *)
