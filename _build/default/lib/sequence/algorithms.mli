(** Generic sequence algorithms over {!Iter.t} ranges [[first, last)].

    Each algorithm states its iterator-concept requirement; bodies use
    only operations of that category (verified by driving them with
    {!Iter.restrict}-ed and archetype iterators in the tests).
    [advance], [distance] and [sort] dispatch on the category — the
    paper's canonical concept-based overloading (Section 2.1). *)

val distance : 'a Iter.t -> 'a Iter.t -> int
(** O(1) for random access on the same container, O(n) walk otherwise. *)

val advance : 'a Iter.t -> int -> 'a Iter.t
(** O(1) via [jump] when available, else steps; negative offsets need
    bidirectional. *)

(** {2 Non-modifying} *)

val for_each : ('a -> unit) -> 'a Iter.t * 'a Iter.t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a Iter.t * 'a Iter.t -> 'b
val accumulate : op:('b -> 'a -> 'b) -> init:'b -> 'a Iter.t * 'a Iter.t -> 'b

val find_if : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
val find : eq:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
val count_if : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> int
val count : eq:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> int

val all_of : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> bool
val any_of : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> bool
val none_of : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> bool

val adjacent_find :
  eq:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
(** First position equal to its successor ([last] if none); Forward. *)

val inner_product :
  add:('c -> 'b -> 'c) ->
  mul:('a -> 'a -> 'b) ->
  init:'c ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t * 'a Iter.t ->
  'c
(** Generalised inner product; stops at the shorter range. *)

val is_partitioned : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> bool

val equal_ranges :
  eq:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t * 'a Iter.t -> bool

val lexicographic_lt :
  lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t * 'a Iter.t -> bool

val max_element : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
(** Requires ForwardIterator: keeps a saved copy of the best position
    (multipass). On a true input stream this raises
    {!Iter.Multipass_violation} — the Section 3.1 archetype check. *)

val min_element : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t

val is_sorted : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> bool

(** {2 Modifying} *)

val copy : 'a Iter.t * 'a Iter.t -> 'a Iter.t -> 'a Iter.t
val transform : ('a -> 'b) -> 'a Iter.t * 'a Iter.t -> 'b Iter.t -> 'b Iter.t
val fill : 'a -> 'a Iter.t * 'a Iter.t -> unit
val swap_values : 'a Iter.t -> 'a Iter.t -> unit

val replace_if : ('a -> bool) -> with_:'a -> 'a Iter.t * 'a Iter.t -> unit
val generate : (unit -> 'a) -> 'a Iter.t * 'a Iter.t -> unit
val iota : start:int -> int Iter.t * int Iter.t -> unit

val reverse : 'a Iter.t * 'a Iter.t -> unit
(** BidirectionalIterator. *)

val rotate : 'a Iter.t * 'a Iter.t * 'a Iter.t -> 'a Iter.t
(** Forward-iterator rotate (SGI cycle-swapping); returns the new
    position of the element formerly at [first]. *)

val unique : eq:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
(** Compacts adjacent duplicates; returns the new logical end. *)

val remove_if : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
val remove : eq:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> 'a Iter.t

val partition : ('a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
(** Returns the partition point; not stable. *)

(** {2 Sorted-range operations (O(log n) comparisons)} *)

val lower_bound : lt:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
val upper_bound : lt:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> 'a Iter.t
val binary_search : lt:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> bool

val equal_range :
  lt:('a -> 'a -> bool) -> 'a -> 'a Iter.t * 'a Iter.t -> 'a Iter.t * 'a Iter.t
(** [(lower_bound, upper_bound)]: the equivalents of [v]. *)

val merge :
  lt:('a -> 'a -> bool) ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t ->
  'a Iter.t
(** Stable merge of two sorted ranges through an output iterator. *)

(** {2 Sorted-range set algebra (multiset semantics, O(n1+n2))} *)

val includes :
  lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> 'a Iter.t * 'a Iter.t -> bool
(** Is the second sorted range contained (as a multiset) in the first? *)

val set_union :
  lt:('a -> 'a -> bool) ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t ->
  'a Iter.t

val set_intersection :
  lt:('a -> 'a -> bool) ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t ->
  'a Iter.t

val set_difference :
  lt:('a -> 'a -> bool) ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t * 'a Iter.t ->
  'a Iter.t ->
  'a Iter.t

(** {2 Sorting with concept dispatch} *)

module Introsort : sig
  val sort_indexed :
    lt:('a -> 'a -> bool) ->
    get:(int -> 'a) ->
    set:(int -> 'a -> unit) ->
    int ->
    unit
  (** Introsort (median-of-3 quicksort, heapsort fallback, insertion
      finish) over constant-time indexed access. *)

  val sort : lt:('a -> 'a -> bool) -> 'a Iter.t -> int -> unit
  (** Over a random-access iterator; uses the O(1) [ixget]/[ixset]
      capabilities when present. *)
end

val forward_sort : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> unit
(** Stable mergesort for forward ranges (the "default algorithm" a
    linked list gets). *)

type sort_algorithm = Introsort_ra | Mergesort_fwd

val sort_algorithm_for : Iter.category -> sort_algorithm
(** Raises {!Iter.Category_violation} below ForwardIterator. *)

val sort_algorithm_name : sort_algorithm -> string

val sort : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> unit
(** Concept-dispatched: introsort for random access, mergesort
    otherwise. *)

val stable_sort : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> unit

val nth_element : lt:('a -> 'a -> bool) -> 'a Iter.t * 'a Iter.t -> int -> unit
(** Quickselect: position [n] receives its sorted-order element.
    Random access. *)
