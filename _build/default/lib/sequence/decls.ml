(* Concept declarations for the iterator/container world.

   Declares the STL iterator-concept refinement chain with its semantic
   axioms (including the Forward Iterator "multipass" requirement that
   STLlint checks, Section 3.1) and complexity guarantees, plus the
   Container/Sequence concepts, and registers the three containers as
   models. Also builds the concept-dispatched [sort] as an {!Overload}
   generic, which experiment C1 exercises. *)

open Gp_concepts

let v t = Ctype.Var t
let n name = Ctype.Named name

let input_iterator =
  Concept.make ~params:[ "I" ] "InputIterator"
    ~doc:"single-pass read-only traversal"
    [
      Concept.assoc_type "value_type";
      Concept.signature "deref" [ v "I" ] (Ctype.Assoc (v "I", "value_type"));
      Concept.signature "succ" [ v "I" ] (v "I");
      Concept.signature "iter_eq" [ v "I"; v "I" ] (n "bool");
      Concept.axiom "single_pass" ~vars:[ "i" ]
        "after succ(i) is evaluated, copies of i are not dereferenceable";
      Concept.complexity "deref" Complexity.constant;
      Concept.complexity "succ" Complexity.constant;
    ]

let output_iterator =
  Concept.make ~params:[ "I" ] "OutputIterator"
    ~doc:"single-pass write-only traversal"
    [
      Concept.assoc_type "value_type";
      Concept.signature "assign"
        [ v "I"; Ctype.Assoc (v "I", "value_type") ]
        (n "unit");
      Concept.signature "succ" [ v "I" ] (v "I");
      Concept.complexity "assign" Complexity.constant;
    ]

let forward_iterator =
  Concept.make ~params:[ "I" ] "ForwardIterator"
    ~refines:[ ("InputIterator", [ v "I" ]) ]
    ~doc:"multipass traversal: copies remain valid"
    [
      Concept.axiom "multipass" ~vars:[ "i"; "j" ]
        "i = j implies deref(i) = deref(j), and copies may be traversed \
         independently";
    ]

let bidirectional_iterator =
  Concept.make ~params:[ "I" ] "BidirectionalIterator"
    ~refines:[ ("ForwardIterator", [ v "I" ]) ]
    [
      Concept.signature "pred" [ v "I" ] (v "I");
      Concept.axiom "pred_succ_inverse" ~vars:[ "i" ]
        "pred(succ(i)) = i when succ(i) is valid";
      Concept.complexity "pred" Complexity.constant;
    ]

let random_access_iterator =
  Concept.make ~params:[ "I" ] "RandomAccessIterator"
    ~refines:[ ("BidirectionalIterator", [ v "I" ]) ]
    [
      Concept.signature "jump" [ v "I"; n "int" ] (v "I");
      Concept.signature "difference" [ v "I"; v "I" ] (n "int");
      Concept.axiom "jump_consistent" ~vars:[ "i"; "k" ]
        "jump(i,k) = succ^k(i) for k >= 0";
      Concept.complexity "jump" Complexity.constant;
      Concept.complexity "difference" Complexity.constant;
    ]

let container =
  Concept.make ~params:[ "C" ] "Container"
    ~doc:"finite collection with iterator access"
    [
      Concept.assoc_type "value_type";
      Concept.assoc_type "iterator"
        ~constraints:
          [
            Concept.Models
              ("InputIterator", [ Ctype.Assoc (v "C", "iterator") ]);
            Concept.Same_type
              ( Ctype.Assoc (Ctype.Assoc (v "C", "iterator"), "value_type"),
                Ctype.Assoc (v "C", "value_type") );
          ];
      Concept.signature "begin" [ v "C" ] (Ctype.Assoc (v "C", "iterator"));
      Concept.signature "end" [ v "C" ] (Ctype.Assoc (v "C", "iterator"));
      Concept.signature "size" [ v "C" ] (n "int");
      Concept.complexity "size" Complexity.constant;
    ]

let sequence =
  Concept.make ~params:[ "C" ] "Sequence"
    ~refines:[ ("Container", [ v "C" ]) ]
    [
      Concept.signature "push_back"
        [ v "C"; Ctype.Assoc (v "C", "value_type") ]
        (n "unit");
      Concept.complexity ~amortized:true "push_back" Complexity.constant;
    ]

let front_insertion_sequence =
  Concept.make ~params:[ "C" ] "FrontInsertionSequence"
    ~refines:[ ("Sequence", [ v "C" ]) ]
    [
      Concept.signature "push_front"
        [ v "C"; Ctype.Assoc (v "C", "value_type") ]
        (n "unit");
      Concept.complexity "push_front" Complexity.constant;
    ]

let random_access_container =
  Concept.make ~params:[ "C" ] "RandomAccessContainer"
    ~refines:[ ("Container", [ v "C" ]) ]
    [
      Concept.Constraint
        (Concept.Models
           ("RandomAccessIterator", [ Ctype.Assoc (v "C", "iterator") ]));
      Concept.signature "nth" [ v "C"; n "int" ]
        (Ctype.Assoc (v "C", "value_type"));
      Concept.complexity "nth" Complexity.constant;
    ]

let all_concepts =
  [
    input_iterator; output_iterator; forward_iterator; bidirectional_iterator;
    random_access_iterator; container; sequence; front_insertion_sequence;
    random_access_container;
  ]

(* Declare an iterator type of the given category over element type [elem],
   with all operations its category's concepts require. *)
let declare_iterator_type reg ~name ~elem ~category =
  Registry.declare_type reg name ~assoc:[ ("value_type", n elem) ];
  let t = n name in
  Registry.declare_op reg "deref" [ t ] (n elem);
  Registry.declare_op reg "succ" [ t ] t;
  Registry.declare_op reg "iter_eq" [ t; t ] (n "bool");
  Registry.declare_op reg "assign" [ t; n elem ] (n "unit");
  if Iter.rank category >= Iter.rank Iter.Bidirectional then
    Registry.declare_op reg "pred" [ t ] t;
  if category = Iter.Random_access then begin
    Registry.declare_op reg "jump" [ t; n "int" ] t;
    Registry.declare_op reg "difference" [ t; t ] (n "int")
  end;
  let complexity =
    [ ("deref", Complexity.constant); ("succ", Complexity.constant);
      ("pred", Complexity.constant); ("jump", Complexity.constant);
      ("difference", Complexity.constant); ("assign", Complexity.constant) ]
  in
  let chain =
    match category with
    | Iter.Input -> [ "InputIterator" ]
    | Iter.Output -> [ "OutputIterator" ]
    | Iter.Forward -> [ "InputIterator"; "ForwardIterator" ]
    | Iter.Bidirectional ->
      [ "InputIterator"; "ForwardIterator"; "BidirectionalIterator" ]
    | Iter.Random_access ->
      [ "InputIterator"; "ForwardIterator"; "BidirectionalIterator";
        "RandomAccessIterator" ]
  in
  let axioms_for = function
    | "InputIterator" -> [ "single_pass" ]
    | "ForwardIterator" -> [ "multipass" ]
    | "BidirectionalIterator" -> [ "pred_succ_inverse" ]
    | "RandomAccessIterator" -> [ "jump_consistent" ]
    | _ -> []
  in
  List.iter
    (fun c ->
      Registry.declare_model reg c [ t ] ~axioms:(axioms_for c) ~complexity)
    chain

(* Declare a container type and its model facts. *)
let declare_container_type reg ~name ~elem ~iterator ~concepts
    ~push_back_amortized =
  Registry.declare_type reg name
    ~assoc:[ ("value_type", n elem); ("iterator", n iterator) ];
  let t = n name in
  Registry.declare_op reg "begin" [ t ] (n iterator);
  Registry.declare_op reg "end" [ t ] (n iterator);
  Registry.declare_op reg "size" [ t ] (n "int");
  Registry.declare_op reg "push_back" [ t; n elem ] (n "unit");
  if List.mem "FrontInsertionSequence" concepts then
    Registry.declare_op reg "push_front" [ t; n elem ] (n "unit");
  if List.mem "RandomAccessContainer" concepts then
    Registry.declare_op reg "nth" [ t; n "int" ] (n elem);
  let complexity =
    [ ("size", Complexity.constant);
      ( "push_back",
        if push_back_amortized then Complexity.constant
        else Complexity.linear "n" );
      ("push_front", Complexity.constant); ("nth", Complexity.constant) ]
  in
  List.iter
    (fun c -> Registry.declare_model reg c [ t ] ~complexity)
    concepts

(* Populate a registry with the whole sequence world over int elements. *)
let declare reg =
  List.iter (Registry.declare_concept reg) all_concepts;
  (match Registry.find_type reg "int" with
  | None -> Registry.declare_type reg "int"
  | Some _ -> ());
  declare_iterator_type reg ~name:"vector<int>::iterator" ~elem:"int"
    ~category:Iter.Random_access;
  declare_iterator_type reg ~name:"list<int>::iterator" ~elem:"int"
    ~category:Iter.Bidirectional;
  declare_iterator_type reg ~name:"deque<int>::iterator" ~elem:"int"
    ~category:Iter.Random_access;
  declare_iterator_type reg ~name:"istream<int>::iterator" ~elem:"int"
    ~category:Iter.Input;
  declare_container_type reg ~name:"vector<int>" ~elem:"int"
    ~iterator:"vector<int>::iterator"
    ~concepts:[ "Container"; "Sequence"; "RandomAccessContainer" ]
    ~push_back_amortized:true;
  declare_container_type reg ~name:"list<int>" ~elem:"int"
    ~iterator:"list<int>::iterator"
    ~concepts:[ "Container"; "Sequence"; "FrontInsertionSequence" ]
    ~push_back_amortized:true;
  declare_container_type reg ~name:"deque<int>" ~elem:"int"
    ~iterator:"deque<int>::iterator"
    ~concepts:
      [ "Container"; "Sequence"; "FrontInsertionSequence";
        "RandomAccessContainer" ]
    ~push_back_amortized:true

(* ------------------------------------------------------------------ *)
(* Concept-dispatched sort as an Overload generic                      *)
(* ------------------------------------------------------------------ *)

type Overload.dyn += Int_range of int Iter.t * int Iter.t

(* Build the [sort] generic: one candidate per iterator concept; resolution
   picks the most refined concept the argument's iterator type models. *)
let sort_generic () =
  let g = Overload.create "sort" in
  Overload.add_candidate g ~name:"mergesort (forward)"
    ~guard:"ForwardIterator" (fun args ->
      match args with
      | [ Int_range (first, last) ] ->
        Algorithms.forward_sort ~lt:( < ) (first, last);
        Overload.Unit
      | _ -> invalid_arg "sort: expected a range argument");
  Overload.add_candidate g ~name:"introsort (random access)"
    ~guard:"RandomAccessIterator" (fun args ->
      match args with
      | [ Int_range (first, last) ] ->
        let n = Algorithms.distance first last in
        if n > 1 then Algorithms.Introsort.sort ~lt:( < ) first n;
        Overload.Unit
      | _ -> invalid_arg "sort: expected a range argument");
  g

(* The iterator type-language name for a runtime iterator over int
   containers — links the dynamic world to the registry's static world. *)
let iterator_type_name (it : int Iter.t) =
  match it.Iter.cat with
  | Iter.Random_access -> "vector<int>::iterator"
  | Iter.Bidirectional | Iter.Forward -> "list<int>::iterator"
  | Iter.Input -> "istream<int>::iterator"
  | Iter.Output -> "ostream<int>::iterator"
