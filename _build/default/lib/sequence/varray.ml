(* A growable array ("vector") with checked random-access iterators.

   Invalidation semantics mirror std::vector: any reallocation or erasure
   invalidates all outstanding iterators (we are conservative: push_back
   always bumps the version, as iterators hold positions into a buffer that
   may have moved). Iterators capture the version at creation; use after an
   invalidating mutation raises {!Iter.Invalidated}. *)

type 'a t = {
  uid : int;
  mutable data : 'a array;
  mutable len : int;
  mutable version : int;
  dummy : 'a; (* fill value for unused slots *)
}

let create ~dummy () =
  { uid = Iter.fresh_uid (); data = Array.make 8 dummy; len = 0; version = 0; dummy }

let of_list ~dummy xs =
  let t = create ~dummy () in
  let arr = Array.of_list xs in
  t.data <- (if Array.length arr = 0 then Array.make 8 dummy else arr);
  t.len <- Array.length arr;
  t

let of_array ~dummy arr =
  of_list ~dummy (Array.to_list arr)

let length t = t.len
let capacity t = Array.length t.data

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Varray.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Varray.set: index out of bounds";
  t.data.(i) <- v

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let fresh = Array.make cap t.dummy in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

(* Invalidates all iterators (conservatively, like a reallocating
   std::vector push_back). *)
let push_back t v =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.version <- t.version + 1

let pop_back t =
  if t.len = 0 then invalid_arg "Varray.pop_back: empty";
  t.len <- t.len - 1;
  t.data.(t.len) <- t.dummy;
  t.version <- t.version + 1

let clear t =
  t.len <- 0;
  t.version <- t.version + 1

let to_list t = List.init t.len (fun i -> t.data.(i))

(* Iterator at index [i] bound to version [v]. *)
let rec iter_at t v i : 'a Iter.t =
  let check () =
    if t.version <> v then
      raise
        (Iter.Invalidated
           "vector iterator used after an invalidating mutation \
            (push_back/erase/insert)")
  in
  let in_range () =
    check ();
    if i < 0 || i >= t.len then
      raise (Iter.Singular "dereference of past-the-end vector iterator")
  in
  {
    Iter.cat = Iter.Random_access;
    ident = (t.uid, i);
    get =
      (fun () ->
        in_range ();
        t.data.(i));
    put =
      Some
        (fun x ->
          in_range ();
          t.data.(i) <- x);
    step =
      (fun () ->
        check ();
        if i >= t.len then
          raise (Iter.Singular "increment past the end of a vector");
        iter_at t v (i + 1));
    back =
      Some
        (fun () ->
          check ();
          if i <= 0 then
            raise (Iter.Singular "decrement before the beginning of a vector");
          iter_at t v (i - 1));
    jump =
      Some
        (fun n ->
          check ();
          let j = i + n in
          if j < 0 || j > t.len then
            raise (Iter.Singular "random-access jump outside [begin, end]");
          iter_at t v j);
    ixget =
      Some
        (fun n ->
          check ();
          let j = i + n in
          if j < 0 || j >= t.len then
            raise (Iter.Singular "indexed access outside [begin, end)");
          t.data.(j));
    ixset =
      Some
        (fun n x ->
          check ();
          let j = i + n in
          if j < 0 || j >= t.len then
            raise (Iter.Singular "indexed access outside [begin, end)");
          t.data.(j) <- x);
  }

let begin_ t = iter_at t t.version 0
let end_ t = iter_at t t.version t.len

(* Index of an iterator into this vector; raises if foreign. *)
let index_of t (it : 'a Iter.t) =
  let uid, i = it.Iter.ident in
  if uid <> t.uid then invalid_arg "Varray.index_of: foreign iterator";
  i

(* Erase the element at [it]; like std::vector::erase this shifts the tail
   left and invalidates all iterators. Returns an iterator to the element
   after the erased one (in the new version). *)
let erase t it =
  let i = index_of t it in
  if i < 0 || i >= t.len then invalid_arg "Varray.erase: past-the-end";
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1;
  t.data.(t.len) <- t.dummy;
  t.version <- t.version + 1;
  iter_at t t.version i

(* Insert [v] before [it]; invalidates all iterators; returns an iterator to
   the inserted element. *)
let insert t it v =
  let i = index_of t it in
  if i < 0 || i > t.len then invalid_arg "Varray.insert: bad position";
  ensure_capacity t (t.len + 1);
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- v;
  t.len <- t.len + 1;
  t.version <- t.version + 1;
  iter_at t t.version i

let pp pp_elem ppf t =
  Fmt.pf ppf "[|%a|]" Fmt.(list ~sep:(any "; ") pp_elem) (to_list t)

(* A back-inserting output iterator: writing appends; remains usable
   across the container's own reallocations (it references the container,
   not a buffer position). *)
let back_inserter t = Iter.output_to (push_back t)
