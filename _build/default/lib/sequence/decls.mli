(** Concept declarations for the iterator/container world: the STL
    iterator refinement chain with semantic axioms (single-pass,
    multipass) and complexity guarantees, the Container/Sequence
    concepts, concrete iterator/container types as checked models, and
    the concept-dispatched [sort] generic of experiment C1. *)

(** {2 Concepts} *)

val input_iterator : Gp_concepts.Concept.t
val output_iterator : Gp_concepts.Concept.t
val forward_iterator : Gp_concepts.Concept.t
val bidirectional_iterator : Gp_concepts.Concept.t
val random_access_iterator : Gp_concepts.Concept.t
val container : Gp_concepts.Concept.t
val sequence : Gp_concepts.Concept.t
val front_insertion_sequence : Gp_concepts.Concept.t
val random_access_container : Gp_concepts.Concept.t
val all_concepts : Gp_concepts.Concept.t list

(** {2 Declarations} *)

val declare_iterator_type :
  Gp_concepts.Registry.t ->
  name:string ->
  elem:string ->
  category:Iter.category ->
  unit
(** Declare an iterator type with the operations and models its category
    implies. *)

val declare_container_type :
  Gp_concepts.Registry.t ->
  name:string ->
  elem:string ->
  iterator:string ->
  concepts:string list ->
  push_back_amortized:bool ->
  unit

val declare : Gp_concepts.Registry.t -> unit
(** The standard world: vector/list/deque/istream over int elements. *)

(** {2 The dispatched sort} *)

type Gp_concepts.Overload.dyn += Int_range of int Iter.t * int Iter.t

val sort_generic : unit -> Gp_concepts.Overload.generic
(** Candidates: mergesort guarded by ForwardIterator, introsort guarded
    by RandomAccessIterator; resolution picks the most refined model. *)

val iterator_type_name : int Iter.t -> string
(** The registry type name a runtime iterator corresponds to. *)
