(** A doubly-linked list with checked bidirectional iterators.

    Invalidation semantics mirror [std::list]: insertion invalidates
    nothing; erase invalidates only iterators to the erased element.
    This asymmetry with {!Varray} is what the invalidation analysis in
    gp_stllint keys on. *)

type 'a t

val create : unit -> 'a t
val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

val begin_ : 'a t -> 'a Iter.t
val end_ : 'a t -> 'a Iter.t

val erase : 'a t -> 'a Iter.t -> 'a Iter.t
(** Unlink the element; only its own iterators become invalid; returns
    an iterator to the following element. *)

val insert : 'a t -> 'a Iter.t -> 'a -> 'a Iter.t
(** Insert before the iterator; nothing is invalidated; returns an
    iterator to the fresh element. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val back_inserter : 'a t -> 'a Iter.t
val front_inserter : 'a t -> 'a Iter.t
