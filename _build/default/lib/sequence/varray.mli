(** A growable array ("vector") with checked random-access iterators.

    Invalidation semantics mirror [std::vector]: any structural mutation
    (push_back, erase, insert, pop_back, clear) bumps the container
    version and invalidates all outstanding iterators — using one
    afterwards raises {!Iter.Invalidated}. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity (OCaml arrays need an inhabitant). *)

val of_list : dummy:'a -> 'a list -> 'a t
val of_array : dummy:'a -> 'a array -> 'a t
val to_list : 'a t -> 'a list

val length : 'a t -> int
val capacity : 'a t -> int

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push_back : 'a t -> 'a -> unit
(** Amortised O(1); invalidates all iterators. *)

val pop_back : 'a t -> unit
val clear : 'a t -> unit

val begin_ : 'a t -> 'a Iter.t
val end_ : 'a t -> 'a Iter.t

val index_of : 'a t -> 'a Iter.t -> int
(** Raises [Invalid_argument] on a foreign iterator. *)

val erase : 'a t -> 'a Iter.t -> 'a Iter.t
(** Shift-erase at the iterator; invalidates all iterators; returns an
    iterator (in the new version) to the element after the erased one. *)

val insert : 'a t -> 'a Iter.t -> 'a -> 'a Iter.t
(** Insert before the iterator; invalidates all iterators; returns an
    iterator to the inserted element. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val back_inserter : 'a t -> 'a Iter.t
(** A write-only iterator appending via {!push_back}; stays usable across
    the container's reallocations. *)
