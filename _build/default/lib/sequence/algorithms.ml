(* Generic sequence algorithms over {!Iter.t} ranges [first, last).

   Every algorithm states its iterator-concept requirement and its
   complexity guarantee (the concept metadata lives in {!Decls}); the bodies
   only use operations of the stated category, which the test suite verifies
   by driving them with {!Iter.restrict}-ed and archetype iterators.

   Dispatch: [advance], [distance] and [sort] select implementations by
   iterator category — the paper's canonical example of concept-based
   overloading (Section 2.1). *)

let same_container (a : 'a Iter.t) (b : 'a Iter.t) =
  fst a.Iter.ident = fst b.Iter.ident

(* O(1) for random access, O(n) walk otherwise. *)
let distance (first : 'a Iter.t) (last : 'a Iter.t) =
  match first.Iter.cat with
  | Iter.Random_access when same_container first last ->
    snd last.Iter.ident - snd first.Iter.ident
  | _ ->
    let rec go n it = if Iter.equal it last then n else go (n + 1) (Iter.step it) in
    go 0 first

(* O(1) for random access, O(n) steps otherwise; negative [n] requires
   bidirectional. *)
let advance (it : 'a Iter.t) n =
  match it.Iter.jump with
  | Some j -> j n
  | None ->
    if n >= 0 then (
      let rec fwd it k = if k = 0 then it else fwd (Iter.step it) (k - 1) in
      fwd it n)
    else
      let rec bwd it k = if k = 0 then it else bwd (Iter.back it) (k + 1) in
      bwd it n

let for_each f (first, last) =
  let rec go it =
    if not (Iter.equal it last) then begin
      f (Iter.get it);
      go (Iter.step it)
    end
  in
  go first

let fold f init (first, last) =
  let rec go acc it =
    if Iter.equal it last then acc else go (f acc (Iter.get it)) (Iter.step it)
  in
  go init first

let accumulate ~op ~init range = fold op init range

let find_if p (first, last) =
  let rec go it =
    if Iter.equal it last then it
    else if p (Iter.get it) then it
    else go (Iter.step it)
  in
  go first

let find ~eq v range = find_if (fun x -> eq x v) range

let count_if p range = fold (fun n x -> if p x then n + 1 else n) 0 range
let count ~eq v range = count_if (fun x -> eq x v) range

let all_of p range = fold (fun acc x -> acc && p x) true range
let any_of p range = fold (fun acc x -> acc || p x) false range
let none_of p range = not (any_of p range)

(* First position whose element equals its successor; requires Forward
   (keeps a trailing copy). *)
let adjacent_find ~eq (first, last) =
  if Iter.equal first last then last
  else
    let rec go prev it =
      if Iter.equal it last then last
      else if eq (Iter.get prev) (Iter.get it) then prev
      else go it (Iter.step it)
    in
    go first (Iter.step first)

(* Generalised inner product over two ranges (stops at the shorter). *)
let inner_product ~add ~mul ~init (f1, l1) (f2, l2) =
  let rec go acc a b =
    if Iter.equal a l1 || Iter.equal b l2 then acc
    else
      go (add acc (mul (Iter.get a) (Iter.get b))) (Iter.step a) (Iter.step b)
  in
  go init f1 f2

let replace_if p ~with_ (first, last) =
  let rec go it =
    if not (Iter.equal it last) then begin
      if p (Iter.get it) then Iter.set it with_;
      go (Iter.step it)
    end
  in
  go first

let generate f (first, last) =
  let rec go it =
    if not (Iter.equal it last) then begin
      Iter.set it (f ());
      go (Iter.step it)
    end
  in
  go first

let iota ~start (first, last) =
  let counter = ref (start - 1) in
  generate
    (fun () ->
      incr counter;
      !counter)
    (first, last)

let is_partitioned p range =
  (* all p-elements precede all non-p elements *)
  let seen_false = ref false in
  all_of
    (fun x ->
      if p x then not !seen_false
      else begin
        seen_false := true;
        true
      end)
    range

let equal_ranges ~eq (f1, l1) (f2, l2) =
  let rec go a b =
    match Iter.equal a l1, Iter.equal b l2 with
    | true, true -> true
    | false, false ->
      eq (Iter.get a) (Iter.get b) && go (Iter.step a) (Iter.step b)
    | _ -> false
  in
  go f1 f2

let lexicographic_lt ~lt (f1, l1) (f2, l2) =
  let rec go a b =
    if Iter.equal b l2 then false
    else if Iter.equal a l1 then true
    else
      let x = Iter.get a and y = Iter.get b in
      if lt x y then true
      else if lt y x then false
      else go (Iter.step a) (Iter.step b)
  in
  go f1 f2

(* Copy [first,last) through output iterator [dst]; returns the final dst. *)
let copy (first, last) dst =
  let rec go src dst =
    if Iter.equal src last then dst
    else begin
      Iter.set dst (Iter.get src);
      go (Iter.step src) (Iter.step dst)
    end
  in
  go first dst

let transform f (first, last) dst =
  let rec go src dst =
    if Iter.equal src last then dst
    else begin
      Iter.set dst (f (Iter.get src));
      go (Iter.step src) (Iter.step dst)
    end
  in
  go first dst

let fill v (first, last) =
  let rec go it =
    if not (Iter.equal it last) then begin
      Iter.set it v;
      go (Iter.step it)
    end
  in
  go first

(* Requires ForwardIterator: keeps a saved copy of the best position, i.e.
   multipass. Running it on an input-iterator archetype raises
   Multipass_violation — the paper's Section 3.1 example. *)
let max_element ~lt (first, last) =
  if Iter.equal first last then last
  else
    let rec go best it =
      if Iter.equal it last then best
      else
        let best = if lt (Iter.get best) (Iter.get it) then it else best in
        go best (Iter.step it)
    in
    go first (Iter.step first)

let min_element ~lt range = max_element ~lt:(fun a b -> lt b a) range

let swap_values a b =
  let va = Iter.get a and vb = Iter.get b in
  Iter.set a vb;
  Iter.set b va

(* BidirectionalIterator required. *)
let reverse (first, last) =
  let rec go f l =
    if Iter.equal f l then ()
    else
      let l' = Iter.back l in
      if Iter.equal f l' then ()
      else begin
        swap_values f l';
        go (Iter.step f) l'
      end
  in
  go first last

(* Forward-iterator rotate (the SGI STL cycle-swapping algorithm). Returns
   the new position of the element formerly at [first]. *)
let rotate (first, middle, last) =
  if Iter.equal first middle then last
  else if Iter.equal middle last then first
  else begin
    let f = ref first and m = ref middle and next = ref middle in
    (* phase 1: swap until the first block is consumed once *)
    let continue = ref true in
    while !continue do
      swap_values !f !next;
      f := Iter.step !f;
      next := Iter.step !next;
      if Iter.equal !f !m then m := !next;
      if Iter.equal !next last then continue := false
    done;
    let result = !f in
    (* phase 2: rotate the remainder *)
    next := !m;
    while not (Iter.equal !next last) do
      swap_values !f !next;
      f := Iter.step !f;
      next := Iter.step !next;
      if Iter.equal !f !m then m := !next
      else if Iter.equal !next last then next := !m
    done;
    result
  end

(* Compact adjacent duplicates; returns the new logical end. *)
let unique ~eq (first, last) =
  if Iter.equal first last then last
  else
    let rec go write it =
      if Iter.equal it last then Iter.step write
      else if eq (Iter.get write) (Iter.get it) then go write (Iter.step it)
      else begin
        let write = Iter.step write in
        if not (Iter.equal write it) then Iter.set write (Iter.get it);
        go write (Iter.step it)
      end
    in
    go first (Iter.step first)

(* Keep elements not satisfying [p]; returns the new logical end. *)
let remove_if p (first, last) =
  let rec go write it =
    if Iter.equal it last then write
    else
      let v = Iter.get it in
      if p v then go write (Iter.step it)
      else begin
        if not (Iter.equal write it) then Iter.set write v;
        go (Iter.step write) (Iter.step it)
      end
  in
  go first first

let remove ~eq v range = remove_if (fun x -> eq x v) range

(* Forward-iterator partition; returns the partition point (first element
   not satisfying [p]). Not stable. *)
let partition p (first, last) =
  let rec skip it =
    if Iter.equal it last then it
    else if p (Iter.get it) then skip (Iter.step it)
    else it
  in
  let bound = skip first in
  let rec go bound it =
    if Iter.equal it last then bound
    else if p (Iter.get it) then begin
      swap_values bound it;
      go (Iter.step bound) (Iter.step it)
    end
    else go bound (Iter.step it)
  in
  if Iter.equal bound last then bound else go bound (Iter.step bound)

let is_sorted ~lt (first, last) =
  if Iter.equal first last then true
  else
    let rec go prev it =
      if Iter.equal it last then true
      else
        let v = Iter.get it in
        if lt v prev then false else go v (Iter.step it)
    in
    go (Iter.get first) (Iter.step first)

(* Binary search trio: O(log n) comparisons for any forward iterator
   (O(log n) steps only for random access; O(n) steps otherwise — the
   complexity-guarantee distinction the taxonomy records). *)
let lower_bound ~lt v (first, last) =
  let rec go first len =
    if len = 0 then first
    else
      let half = len / 2 in
      let mid = advance first half in
      if lt (Iter.get mid) v then go (Iter.step mid) (len - half - 1)
      else go first half
  in
  go first (distance first last)

let upper_bound ~lt v (first, last) =
  let rec go first len =
    if len = 0 then first
    else
      let half = len / 2 in
      let mid = advance first half in
      if lt v (Iter.get mid) then go first half
      else go (Iter.step mid) (len - half - 1)
  in
  go first (distance first last)

let binary_search ~lt v range =
  let _, last = range in
  let it = lower_bound ~lt v range in
  (not (Iter.equal it last)) && not (lt v (Iter.get it))

(* The subrange of elements equivalent to [v] in a sorted range. *)
let equal_range ~lt v range = (lower_bound ~lt v range, upper_bound ~lt v range)

(* Merge two sorted ranges through an output iterator; stable. *)
let merge ~lt (f1, l1) (f2, l2) dst =
  let rec go a b dst =
    match Iter.equal a l1, Iter.equal b l2 with
    | true, true -> dst
    | true, false ->
      Iter.set dst (Iter.get b);
      go a (Iter.step b) (Iter.step dst)
    | false, true ->
      Iter.set dst (Iter.get a);
      go (Iter.step a) b (Iter.step dst)
    | false, false ->
      let x = Iter.get a and y = Iter.get b in
      if lt y x then begin
        Iter.set dst y;
        go a (Iter.step b) (Iter.step dst)
      end
      else begin
        Iter.set dst x;
        go (Iter.step a) b (Iter.step dst)
      end
  in
  go f1 f2 dst

(* ------------------------------------------------------------------ *)
(* Sorted-range set operations (the STL set algebra)                   *)
(* ------------------------------------------------------------------ *)

(* [includes]: is sorted range 2 a subsequence (as a multiset) of sorted
   range 1? O(n1 + n2) comparisons. *)
let includes ~lt (f1, l1) (f2, l2) =
  let rec go a b =
    if Iter.equal b l2 then true
    else if Iter.equal a l1 then false
    else
      let x = Iter.get a and y = Iter.get b in
      if lt y x then false
      else if lt x y then go (Iter.step a) b
      else go (Iter.step a) (Iter.step b)
  in
  go f1 f2

(* Union of two sorted multisets through an output iterator; an element
   appearing m times in one input and n times in the other appears
   max(m, n) times in the output. *)
let set_union ~lt (f1, l1) (f2, l2) dst =
  let rec go a b dst =
    match Iter.equal a l1, Iter.equal b l2 with
    | true, true -> dst
    | true, false ->
      Iter.set dst (Iter.get b);
      go a (Iter.step b) (Iter.step dst)
    | false, true ->
      Iter.set dst (Iter.get a);
      go (Iter.step a) b (Iter.step dst)
    | false, false ->
      let x = Iter.get a and y = Iter.get b in
      if lt x y then begin
        Iter.set dst x;
        go (Iter.step a) b (Iter.step dst)
      end
      else if lt y x then begin
        Iter.set dst y;
        go a (Iter.step b) (Iter.step dst)
      end
      else begin
        Iter.set dst x;
        go (Iter.step a) (Iter.step b) (Iter.step dst)
      end
  in
  go f1 f2 dst

(* Intersection: min(m, n) copies of each common element. *)
let set_intersection ~lt (f1, l1) (f2, l2) dst =
  let rec go a b dst =
    if Iter.equal a l1 || Iter.equal b l2 then dst
    else
      let x = Iter.get a and y = Iter.get b in
      if lt x y then go (Iter.step a) b dst
      else if lt y x then go a (Iter.step b) dst
      else begin
        Iter.set dst x;
        go (Iter.step a) (Iter.step b) (Iter.step dst)
      end
  in
  go f1 f2 dst

(* Difference: elements of range 1 not matched by range 2. *)
let set_difference ~lt (f1, l1) (f2, l2) dst =
  let rec go a b dst =
    if Iter.equal a l1 then dst
    else if Iter.equal b l2 then begin
      Iter.set dst (Iter.get a);
      go (Iter.step a) b (Iter.step dst)
    end
    else
      let x = Iter.get a and y = Iter.get b in
      if lt x y then begin
        Iter.set dst x;
        go (Iter.step a) b (Iter.step dst)
      end
      else if lt y x then go a (Iter.step b) dst
      else go (Iter.step a) (Iter.step b) dst
  in
  go f1 f2 dst

(* ------------------------------------------------------------------ *)
(* Sorting with concept-based dispatch                                 *)
(* ------------------------------------------------------------------ *)

(* In-place introsort for random-access ranges: quicksort with
   median-of-three pivots, falling back to heapsort past a depth limit and
   insertion sort on small subranges. All access goes through the iterator
   interface. *)
module Introsort = struct
  let small = 16

  (* Core: sorts positions [0, n) through constant-time [get]/[set]. *)
  let sort_indexed ~lt ~get ~set n =
    let swap i j =
      let t = get i in
      set i (get j);
      set j t
    in
    let insertion lo hi =
      for i = lo + 1 to hi do
        let v = get i in
        let j = ref (i - 1) in
        while !j >= lo && lt v (get !j) do
          set (!j + 1) (get !j);
          decr j
        done;
        set (!j + 1) v
      done
    in
    let heapsort lo hi =
      let n = hi - lo + 1 in
      let hget i = get (lo + i) in
      let hswap i j = swap (lo + i) (lo + j) in
      let rec sift i n =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let largest = ref i in
        if l < n && lt (hget !largest) (hget l) then largest := l;
        if r < n && lt (hget !largest) (hget r) then largest := r;
        if !largest <> i then begin
          hswap i !largest;
          sift !largest n
        end
      in
      for i = (n / 2) - 1 downto 0 do
        sift i n
      done;
      for i = n - 1 downto 1 do
        hswap 0 i;
        sift 0 i
      done
    in
    let rec go lo hi depth =
      if hi - lo + 1 > small then
        if depth = 0 then heapsort lo hi
        else begin
          (* median of three *)
          let mid = lo + ((hi - lo) / 2) in
          let a = get lo and b = get mid and c = get hi in
          let pivot =
            if lt a b then if lt b c then b else if lt a c then c else a
            else if lt a c then a
            else if lt b c then c
            else b
          in
          let i = ref lo and j = ref hi in
          while !i <= !j do
            while lt (get !i) pivot do incr i done;
            while lt pivot (get !j) do decr j done;
            if !i <= !j then begin
              swap !i !j;
              incr i;
              decr j
            end
          done;
          go lo !j (depth - 1);
          go !i hi (depth - 1)
        end
    in
    if n > 1 then begin
      let depth = 2 * int_of_float (Float.log2 (float_of_int (max n 2))) in
      go 0 (n - 1) depth;
      insertion 0 (n - 1)
    end

  (* Entry point over a random-access iterator: uses the O(1) indexed
     capabilities when present (array-speed access), otherwise falls back
     to jump-based access. *)
  let sort ~lt (first : 'a Iter.t) n =
    match first.Iter.ixget, first.Iter.ixset with
    | Some get, Some set -> sort_indexed ~lt ~get ~set n
    | _ ->
      let get k = Iter.get (advance first k) in
      let set k v = Iter.set (advance first k) v in
      sort_indexed ~lt ~get ~set n
end

(* Stable merge sort for forward ranges: bottom-up on a working list of
   values, written back through the iterators. This is the "default
   algorithm" a linked list gets (Section 2.1). *)
let forward_sort ~lt (first, last) =
  let values = List.rev (fold (fun acc v -> v :: acc) [] (first, last)) in
  let cmp a b = if lt a b then -1 else if lt b a then 1 else 0 in
  let sorted = List.stable_sort cmp values in
  let rec write it = function
    | [] -> ()
    | v :: rest ->
      Iter.set it v;
      write (Iter.step it) rest
  in
  write first sorted

type sort_algorithm = Introsort_ra | Mergesort_fwd

let sort_algorithm_for (cat : Iter.category) =
  match cat with
  | Iter.Random_access -> Introsort_ra
  | Iter.Forward | Iter.Bidirectional -> Mergesort_fwd
  | Iter.Input | Iter.Output ->
    raise
      (Iter.Category_violation
         "sort requires at least ForwardIterator (with writability)")

let sort_algorithm_name = function
  | Introsort_ra -> "introsort (random access)"
  | Mergesort_fwd -> "mergesort (forward)"

(* Concept-dispatched sort: picks introsort for random-access iterators and
   mergesort otherwise, like std::sort vs list::sort selected by concept. *)
let sort ~lt ((first, last) as range) =
  match sort_algorithm_for first.Iter.cat with
  | Introsort_ra ->
    let n = distance first last in
    if n > 1 then Introsort.sort ~lt first n
  | Mergesort_fwd -> forward_sort ~lt range

let stable_sort ~lt range = forward_sort ~lt range

(* Quickselect: after the call the n-th position holds the element that
   would be there if the range were sorted. Random access only. *)
let nth_element ~lt (first, last) n =
  let len = distance first last in
  if n < 0 || n >= len then invalid_arg "nth_element: index out of range";
  let get, set =
    match first.Iter.ixget, first.Iter.ixset with
    | Some get, Some set -> (get, set)
    | _ ->
      ( (fun k -> Iter.get (advance first k)),
        fun k v -> Iter.set (advance first k) v )
  in
  let rec go lo hi =
    if lo < hi then begin
      let pivot = get (lo + ((hi - lo) / 2)) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while lt (get !i) pivot do incr i done;
        while lt pivot (get !j) do decr j done;
        if !i <= !j then begin
          let t = get !i in
          set !i (get !j);
          set !j t;
          incr i;
          decr j
        end
      done;
      if n <= !j then go lo !j else if n >= !i then go !i hi
    end
  in
  go 0 (len - 1)
