(* A double-ended queue as a growable ring buffer with checked random-access
   iterators.

   Invalidation semantics approximate std::deque conservatively: push at
   either end may reallocate, so any push or pop bumps the version and
   invalidates outstanding iterators. *)

type 'a t = {
  uid : int;
  mutable data : 'a array;
  mutable head : int; (* index of first element *)
  mutable len : int;
  mutable version : int;
  dummy : 'a;
}

let create ~dummy () =
  { uid = Iter.fresh_uid (); data = Array.make 8 dummy; head = 0; len = 0;
    version = 0; dummy }

let length t = t.len

let phys_index t i = (t.head + i) mod Array.length t.data

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.get: index out of bounds";
  t.data.(phys_index t i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Deque.set: index out of bounds";
  t.data.(phys_index t i) <- v

let grow t =
  let cap = Array.length t.data in
  let fresh = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    fresh.(i) <- t.data.(phys_index t i)
  done;
  t.data <- fresh;
  t.head <- 0

let push_back t v =
  if t.len = Array.length t.data then grow t;
  t.data.(phys_index t t.len) <- v;
  t.len <- t.len + 1;
  t.version <- t.version + 1

let push_front t v =
  if t.len = Array.length t.data then grow t;
  let cap = Array.length t.data in
  t.head <- (t.head + cap - 1) mod cap;
  t.data.(t.head) <- v;
  t.len <- t.len + 1;
  t.version <- t.version + 1

let pop_back t =
  if t.len = 0 then invalid_arg "Deque.pop_back: empty";
  t.len <- t.len - 1;
  t.data.(phys_index t t.len) <- t.dummy;
  t.version <- t.version + 1

let pop_front t =
  if t.len = 0 then invalid_arg "Deque.pop_front: empty";
  t.data.(t.head) <- t.dummy;
  t.head <- (t.head + 1) mod Array.length t.data;
  t.len <- t.len - 1;
  t.version <- t.version + 1

let of_list ~dummy xs =
  let t = create ~dummy () in
  List.iter (push_back t) xs;
  t

let to_list t = List.init t.len (get t)

let rec iter_at t v i : 'a Iter.t =
  let check () =
    if t.version <> v then
      raise (Iter.Invalidated "deque iterator used after a mutation")
  in
  let in_range () =
    check ();
    if i < 0 || i >= t.len then
      raise (Iter.Singular "dereference of past-the-end deque iterator")
  in
  {
    Iter.cat = Iter.Random_access;
    ident = (t.uid, i);
    get =
      (fun () ->
        in_range ();
        get t i);
    put =
      Some
        (fun x ->
          in_range ();
          set t i x);
    step =
      (fun () ->
        check ();
        if i >= t.len then
          raise (Iter.Singular "increment past the end of a deque");
        iter_at t v (i + 1));
    back =
      Some
        (fun () ->
          check ();
          if i <= 0 then
            raise (Iter.Singular "decrement before the beginning of a deque");
          iter_at t v (i - 1));
    jump =
      Some
        (fun n ->
          check ();
          let j = i + n in
          if j < 0 || j > t.len then
            raise (Iter.Singular "random-access jump outside [begin, end]");
          iter_at t v j);
    ixget =
      Some
        (fun n ->
          check ();
          let j = i + n in
          if j < 0 || j >= t.len then
            raise (Iter.Singular "indexed access outside [begin, end)");
          get t j);
    ixset =
      Some
        (fun n x ->
          check ();
          let j = i + n in
          if j < 0 || j >= t.len then
            raise (Iter.Singular "indexed access outside [begin, end)");
          set t j x);
  }

let begin_ t = iter_at t t.version 0
let end_ t = iter_at t t.version t.len

let pp pp_elem ppf t =
  Fmt.pf ppf "deque[%a]" Fmt.(list ~sep:(any "; ") pp_elem) (to_list t)
