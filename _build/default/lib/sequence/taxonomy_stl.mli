(** The sequential algorithm concept taxonomy for the STL domain (paper
    Section 1): algorithms classified by problem, iterator requirement,
    input assumptions, stability and in-placeness, with cost bounds
    precise enough to distinguish algorithms solving the same problem. *)

val build : unit -> Gp_concepts.Taxonomy.t

val best_search :
  Gp_concepts.Taxonomy.t -> sorted:bool -> Gp_concepts.Taxonomy.entry list
(** Fewest comparisons for searching, given whether the input is sorted
    — the decision behind STLlint's Section 3.2 suggestion. *)
