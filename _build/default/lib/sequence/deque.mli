(** A double-ended queue (growable ring buffer) with checked
    random-access iterators. Conservatively, any push or pop invalidates
    outstanding iterators (as a reallocating [std::deque] may). *)

type 'a t

val create : dummy:'a -> unit -> 'a t
val of_list : dummy:'a -> 'a list -> 'a t
val to_list : 'a t -> 'a list

val length : 'a t -> int

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit
val pop_back : 'a t -> unit
val pop_front : 'a t -> unit

val begin_ : 'a t -> 'a Iter.t
val end_ : 'a t -> 'a Iter.t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
