(* The sequential algorithm concept taxonomy for the STL domain
   (paper Section 1, citing Musser's "Algorithm Concepts").

   Classifies the sequence algorithms by problem, iterator-concept
   requirement, mutability, and stability, with complexity costs in
   comparisons/steps — precise enough to "make useful distinctions"
   between algorithms solving the same problem (the paper's stated goal
   for these taxonomies). *)

open Gp_concepts

let build () =
  let t = Taxonomy.create "STL sequence algorithms" in
  Taxonomy.add_node t "sequence-algorithm" ~attributes:[];
  (* problems *)
  List.iter
    (fun p ->
      Taxonomy.add_node t p ~parents:[ "sequence-algorithm" ]
        ~attributes:[ ("problem", p) ])
    [ "searching"; "sorting"; "permuting"; "accumulating"; "partitioning" ];
  (* refinements by iterator requirement / input assumption *)
  Taxonomy.add_node t "linear-search" ~parents:[ "searching" ]
    ~attributes:[ ("iterator", "input"); ("input-assumption", "none") ];
  Taxonomy.add_node t "sorted-search" ~parents:[ "searching" ]
    ~attributes:[ ("iterator", "forward"); ("input-assumption", "sorted") ];
  Taxonomy.add_node t "comparison-sort-ra" ~parents:[ "sorting" ]
    ~attributes:
      [ ("iterator", "random-access"); ("stable", "no");
        ("in-place", "yes") ];
  Taxonomy.add_node t "comparison-sort-stable" ~parents:[ "sorting" ]
    ~attributes:
      [ ("iterator", "forward"); ("stable", "yes"); ("in-place", "no") ];
  Taxonomy.add_node t "selection" ~parents:[ "sorting" ]
    ~attributes:[ ("iterator", "random-access"); ("stable", "no") ];
  Taxonomy.add_node t "reversal" ~parents:[ "permuting" ]
    ~attributes:[ ("iterator", "bidirectional") ];
  Taxonomy.add_node t "rotation" ~parents:[ "permuting" ]
    ~attributes:[ ("iterator", "forward") ];
  Taxonomy.add_node t "fold" ~parents:[ "accumulating" ]
    ~attributes:[ ("iterator", "input") ];
  Taxonomy.add_node t "partition-fwd" ~parents:[ "partitioning" ]
    ~attributes:[ ("iterator", "forward"); ("stable", "no") ];
  (* entries, with cost distinctions *)
  let lin = Complexity.linear "n" in
  let log = Complexity.log_ "n" in
  let nlogn = Complexity.n_log_n "n" in
  Taxonomy.add_entry t ~name:"find" ~node:"linear-search"
    ~costs:[ ("comparisons", lin); ("steps", lin) ];
  Taxonomy.add_entry t ~name:"lower_bound" ~node:"sorted-search"
    ~costs:[ ("comparisons", log); ("steps", lin) ]
    ~doc:"O(log n) comparisons even on forward iterators; O(log n) steps \
          only with random access";
  Taxonomy.add_entry t ~name:"binary_search" ~node:"sorted-search"
    ~costs:[ ("comparisons", log) ];
  Taxonomy.add_entry t ~name:"introsort" ~node:"comparison-sort-ra"
    ~costs:[ ("comparisons", nlogn); ("extra-space", Complexity.log_ "n") ];
  Taxonomy.add_entry t ~name:"mergesort" ~node:"comparison-sort-stable"
    ~costs:[ ("comparisons", nlogn); ("extra-space", lin) ];
  Taxonomy.add_entry t ~name:"nth_element" ~node:"selection"
    ~costs:[ ("comparisons", lin) ]
    ~doc:"expected linear selection (quickselect)";
  Taxonomy.add_entry t ~name:"reverse" ~node:"reversal"
    ~costs:[ ("swaps", lin) ];
  Taxonomy.add_entry t ~name:"rotate" ~node:"rotation"
    ~costs:[ ("swaps", lin) ];
  Taxonomy.add_entry t ~name:"accumulate" ~node:"fold"
    ~costs:[ ("operations", lin) ];
  Taxonomy.add_entry t ~name:"partition" ~node:"partition-fwd"
    ~costs:[ ("swaps", lin) ];
  t

(* The motivating query: searching a sorted sequence — the taxonomy
   distinguishes find from lower_bound by comparison count, which is what
   STLlint's Section 3.2 suggestion exploits. *)
let best_search t ~sorted =
  Taxonomy.pick t
    ~requirements:
      [ ("problem", "searching");
        ("input-assumption", if sorted then "sorted" else "none") ]
    ~measure:"comparisons"
