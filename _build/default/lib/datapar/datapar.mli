(** Data-parallel primitives (paper Section 4): map, reduce, scan,
    zip_with, filter over arrays, with interchangeable executors.

    {!Seq_exec} gives reference semantics; {!Par_exec} runs chunked over
    OCaml 5 domains. The two are extensionally equal (property-tested);
    chunked reduction and the two-phase scan are licensed by the
    combining operation being an associative {!monoid} — the semantic
    concept requirement that makes the parallel transformation valid. *)

type 'a monoid = { op : 'a -> 'a -> 'a; id : 'a }
(** First-class-value form of [Gp_algebra.Sigs.MONOID]; [op] must be
    associative with identity [id] (commutativity NOT required). *)

val int_sum : int monoid
val int_max : int monoid
val float_sum : float monoid

val of_monoid : (module Gp_algebra.Sigs.MONOID with type t = 'a) -> 'a monoid
(** Any gp_algebra Monoid instance is a valid combining structure. *)

val chunks : k:int -> int -> (int * int) list
(** [chunks ~k n]: at most [k] contiguous (start, length) chunks of
    near-equal size covering [0, n). *)

module type EXECUTOR = sig
  val name : string
  val map : ('a -> 'b) -> 'a array -> 'b array
  val mapi : (int -> 'a -> 'b) -> 'a array -> 'b array
  val reduce : 'a monoid -> 'a array -> 'a

  val scan : 'a monoid -> 'a array -> 'a array * 'a
  (** Exclusive prefix scan: result.(i) = fold of elements [0..i-1];
      also returns the total. *)

  val zip_with : ('a -> 'b -> 'c) -> 'a array -> 'b array -> 'c array
  (** Raises [Invalid_argument] on length mismatch. *)

  val filter : ('a -> bool) -> 'a array -> 'a array
  val count : ('a -> bool) -> 'a array -> int
end

module Seq_exec : EXECUTOR

module Par_exec (_ : sig
  val domains : int
end) : EXECUTOR
(** Chunked execution over the given number of domains (clamped to at
    least 1). [filter] is the textbook data-parallel pack
    (flags + scan + scatter). *)

val default_domains : unit -> int
(** [recommended_domain_count - 1], at least 1. *)
