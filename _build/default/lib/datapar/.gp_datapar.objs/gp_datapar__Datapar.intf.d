lib/datapar/datapar.mli: Gp_algebra
