lib/datapar/datapar.ml: Array Domain Gp_algebra List Printf
