(* Data-parallel primitives (paper Section 4).

   "Data-parallel programs can generally be expressed at a higher level of
   abstraction. The programmer still thinks and programs in parallel, but
   more abstractly." The library exposes the classic data-parallel
   operations — map, reduce, scan, zip_with, filter — over arrays, with two
   interchangeable executors: [Seq] (reference semantics) and [Par]
   (OCaml 5 domains over chunks). The two are tested for extensional
   equality; [Par] requires the combining operation to be an associative
   Monoid (the concept requirement that makes chunked reduction valid —
   exactly the paper's point that semantic concepts license
   transformations).

   A [monoid] here is the first-class value form of Gp_algebra.Sigs.MONOID,
   polymorphic in the element type. *)

type 'a monoid = { op : 'a -> 'a -> 'a; id : 'a }

let int_sum = { op = ( + ); id = 0 }
let int_max = { op = max; id = min_int }
let float_sum = { op = ( +. ); id = 0.0 }

(* Bridge from the module-level concept: any Gp_algebra Monoid instance
   is a valid combining structure for reduce/scan. *)
let of_monoid (type a) (module M : Gp_algebra.Sigs.MONOID with type t = a) :
    a monoid =
  { op = M.op; id = M.id }

(* ------------------------------------------------------------------ *)
(* Chunking                                                            *)
(* ------------------------------------------------------------------ *)

(* Split [0, n) into at most [k] contiguous chunks of near-equal size. *)
let chunks ~k n =
  if n = 0 then []
  else begin
    let k = max 1 (min k n) in
    let base = n / k and extra = n mod k in
    let rec go i start acc =
      if i = k then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        go (i + 1) (start + len) ((start, len) :: acc)
    in
    go 0 0 []
  end

(* ------------------------------------------------------------------ *)
(* Executors                                                           *)
(* ------------------------------------------------------------------ *)

module type EXECUTOR = sig
  val name : string
  val map : ('a -> 'b) -> 'a array -> 'b array
  val mapi : (int -> 'a -> 'b) -> 'a array -> 'b array
  val reduce : 'a monoid -> 'a array -> 'a

  (** Exclusive prefix scan: [scan m a].(i) = fold of a.(0..i-1). Returns
      the scanned array and the total. *)
  val scan : 'a monoid -> 'a array -> 'a array * 'a

  val zip_with : ('a -> 'b -> 'c) -> 'a array -> 'b array -> 'c array
  val filter : ('a -> bool) -> 'a array -> 'a array
  val count : ('a -> bool) -> 'a array -> int
end

module Seq_exec : EXECUTOR = struct
  let name = "sequential"
  let map = Array.map
  let mapi = Array.mapi

  let reduce m a = Array.fold_left m.op m.id a

  let scan m a =
    let n = Array.length a in
    let out = Array.make n m.id in
    let acc = ref m.id in
    for i = 0 to n - 1 do
      out.(i) <- !acc;
      acc := m.op !acc a.(i)
    done;
    (out, !acc)

  let zip_with f a b =
    if Array.length a <> Array.length b then
      invalid_arg "zip_with: length mismatch";
    Array.init (Array.length a) (fun i -> f a.(i) b.(i))

  let filter p a = Array.of_list (List.filter p (Array.to_list a))
  let count p a = Array.fold_left (fun n x -> if p x then n + 1 else n) 0 a
end

(* Parallel executor over OCaml 5 domains. The domain count is fixed at
   functor-application time so executors are values you can hand around
   (and bench against each other). *)
module Par_exec (D : sig
  val domains : int
end) : EXECUTOR = struct
  let domains = max 1 D.domains
  let name = Printf.sprintf "parallel(%d domains)" domains

  (* Run one domain per chunk; each writes its private range of a shared
     output array (disjoint ranges: no races). *)
  let parallel_chunks n f =
    match chunks ~k:domains n with
    | [] -> ()
    | [ (start, len) ] -> f start len
    | (start0, len0) :: rest ->
      let handles =
        List.map (fun (start, len) -> Domain.spawn (fun () -> f start len)) rest
      in
      f start0 len0;
      List.iter Domain.join handles

  let mapi f a =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let out = Array.make n (f 0 a.(0)) in
      parallel_chunks n (fun start len ->
          for i = start to start + len - 1 do
            out.(i) <- f i a.(i)
          done);
      out
    end

  let map f a = mapi (fun _ x -> f x) a

  let reduce m a =
    let n = Array.length a in
    if n = 0 then m.id
    else begin
      let cs = chunks ~k:domains n in
      let partial = Array.make (List.length cs) m.id in
      let idx = List.mapi (fun i c -> (i, c)) cs in
      (match idx with
      | [] -> ()
      | (i0, (s0, l0)) :: rest ->
        let work i start len =
          let acc = ref m.id in
          for k = start to start + len - 1 do
            acc := m.op !acc a.(k)
          done;
          partial.(i) <- !acc
        in
        let handles =
          List.map
            (fun (i, (s, l)) -> Domain.spawn (fun () -> work i s l))
            rest
        in
        work i0 s0 l0;
        List.iter Domain.join handles);
      Array.fold_left m.op m.id partial
    end

  (* Two-phase parallel scan: per-chunk totals, sequential exclusive scan
     of the (few) totals, then per-chunk local scans with offsets. Valid
     because the monoid is associative. *)
  let scan m a =
    let n = Array.length a in
    if n = 0 then ([||], m.id)
    else begin
      let cs = Array.of_list (chunks ~k:domains n) in
      let k = Array.length cs in
      let totals = Array.make k m.id in
      let phase1 i =
        let start, len = cs.(i) in
        let acc = ref m.id in
        for j = start to start + len - 1 do
          acc := m.op !acc a.(j)
        done;
        totals.(i) <- !acc
      in
      let spawn_over work =
        if k = 1 then work 0
        else begin
          let handles =
            List.init (k - 1) (fun i ->
                Domain.spawn (fun () -> work (i + 1)))
          in
          work 0;
          List.iter Domain.join handles
        end
      in
      spawn_over phase1;
      let offsets = Array.make k m.id in
      let acc = ref m.id in
      for i = 0 to k - 1 do
        offsets.(i) <- !acc;
        acc := m.op !acc totals.(i)
      done;
      let out = Array.make n m.id in
      let phase2 i =
        let start, len = cs.(i) in
        let local = ref offsets.(i) in
        for j = start to start + len - 1 do
          out.(j) <- !local;
          local := m.op !local a.(j)
        done
      in
      spawn_over phase2;
      (out, !acc)
    end

  let zip_with f a b =
    if Array.length a <> Array.length b then
      invalid_arg "zip_with: length mismatch";
    mapi (fun i x -> f x b.(i)) a

  (* Parallel filter via flags + scan of counts (the textbook data-parallel
     pack). *)
  let filter p a =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let flags = map (fun x -> if p x then 1 else 0) a in
      let pos, total = scan int_sum flags in
      if total = 0 then [||]
      else begin
        let out = Array.make total a.(0) in
        parallel_chunks n (fun start len ->
            for i = start to start + len - 1 do
              if flags.(i) = 1 then out.(pos.(i)) <- a.(i)
            done);
        out
      end
    end

  let count p a = reduce int_sum (map (fun x -> if p x then 1 else 0) a)
end

let default_domains () =
  max 1 (Domain.recommended_domain_count () - 1)
