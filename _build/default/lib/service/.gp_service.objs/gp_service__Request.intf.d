lib/service/request.mli: Format
