lib/service/wire.mli: Request
