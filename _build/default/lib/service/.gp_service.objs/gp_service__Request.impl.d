lib/service/request.ml: Digest Fmt Option Printf Result String
