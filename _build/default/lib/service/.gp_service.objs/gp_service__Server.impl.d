lib/service/server.ml: Budget Dispatch List Metrics Option Printexc Printf Queue Request Result String Unix Wire
