lib/service/wire.ml: Buffer Char List Printf Request Result String
