lib/service/metrics.mli: Format Lru
