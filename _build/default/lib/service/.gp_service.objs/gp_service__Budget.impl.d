lib/service/budget.ml:
