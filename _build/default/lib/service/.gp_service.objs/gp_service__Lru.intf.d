lib/service/lru.mli: Format
