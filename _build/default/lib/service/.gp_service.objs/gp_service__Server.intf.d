lib/service/server.mli: Dispatch Gp_concepts Lru Metrics Request
