lib/service/lru.ml: Fmt Hashtbl List
