lib/service/workload.ml: Array Digest Float Fmt Gp_stllint List Printf Random Request String
