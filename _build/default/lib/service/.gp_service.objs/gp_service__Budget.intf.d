lib/service/budget.mli:
