lib/service/workload.mli: Format Request
