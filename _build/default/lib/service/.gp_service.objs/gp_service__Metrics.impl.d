lib/service/metrics.ml: Array Buffer Float Fmt Format Hashtbl List Lru Printf
