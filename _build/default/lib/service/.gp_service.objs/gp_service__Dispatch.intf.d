lib/service/dispatch.mli: Budget Gp_concepts Gp_simplicissimus Gp_stllint Lru Request
