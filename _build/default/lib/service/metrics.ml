(* Serving observability: per-kind request counters and log-scale latency
   histograms, plus the rendered text report (counters, latency table,
   cache hit-ratio table).

   Histograms use fixed decade buckets over nanoseconds; quantiles are
   read off the bucket table (upper-bound estimates), which is plenty for
   a text report and keeps observation O(1) with no allocation. *)

(* Bucket upper bounds in ns: 1us 10us 100us 1ms 10ms 100ms 1s +inf *)
let bucket_bounds = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; infinity |]
let n_buckets = Array.length bucket_bounds

let bucket_label i =
  if i = 0 then "<1us"
  else if bucket_bounds.(i) = infinity then ">1s"
  else
    let b = bucket_bounds.(i) in
    if b < 1e6 then Printf.sprintf "<%.0fus" (b /. 1e3)
    else if b < 1e9 then Printf.sprintf "<%.0fms" (b /. 1e6)
    else "<1s"

type series = {
  mutable count : int;
  mutable ok : int;
  mutable cached : int;
  mutable errors : (string * int) list; (* by error-code name *)
  buckets : int array;
  mutable sum_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
}

let new_series () =
  { count = 0; ok = 0; cached = 0; errors = []; buckets = Array.make n_buckets 0;
    sum_ns = 0.0; min_ns = infinity; max_ns = 0.0 }

type t = {
  tbl : (string, series) Hashtbl.t;
  mutable order : string list; (* first-observation order, for the report *)
}

let create () = { tbl = Hashtbl.create 8; order = [] }

let series t kind =
  match Hashtbl.find_opt t.tbl kind with
  | Some s -> s
  | None ->
    let s = new_series () in
    Hashtbl.add t.tbl kind s;
    t.order <- t.order @ [ kind ];
    s

let bucket_of ns =
  let rec go i = if i >= n_buckets - 1 || ns <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe t ~kind ~ok ~error_code ~cached ~ns =
  let s = series t kind in
  s.count <- s.count + 1;
  if ok then s.ok <- s.ok + 1;
  if cached then s.cached <- s.cached + 1;
  (match error_code with
  | None -> ()
  | Some code ->
    let n = try List.assoc code s.errors with Not_found -> 0 in
    s.errors <- (code, n + 1) :: List.remove_assoc code s.errors);
  let b = bucket_of ns in
  s.buckets.(b) <- s.buckets.(b) + 1;
  s.sum_ns <- s.sum_ns +. ns;
  if ns < s.min_ns then s.min_ns <- ns;
  if ns > s.max_ns then s.max_ns <- ns

let requests t =
  Hashtbl.fold (fun _ s acc -> acc + s.count) t.tbl 0

let errors t =
  Hashtbl.fold
    (fun _ s acc -> acc + List.fold_left (fun a (_, n) -> a + n) 0 s.errors)
    t.tbl 0

(* Upper-bound estimate of the [q]-quantile from the bucket table. *)
let quantile_label s q =
  if s.count = 0 then "-"
  else
    let target = int_of_float (ceil (q *. float_of_int s.count)) in
    let rec go i acc =
      if i >= n_buckets then bucket_label (n_buckets - 1)
      else
        let acc = acc + s.buckets.(i) in
        if acc >= target then bucket_label i else go (i + 1) acc
    in
    go 0 0

let pp_ns ppf ns =
  if Float.is_nan ns || ns = infinity then Fmt.string ppf "-"
  else if ns < 1e3 then Fmt.pf ppf "%.0fns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2fms" (ns /. 1e6)
  else Fmt.pf ppf "%.2fs" (ns /. 1e9)

let report ?(cache_stats = []) t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "requests by kind@.";
  Fmt.pf ppf "  %-9s %8s %8s %8s %8s %9s %7s %7s %9s@." "kind" "count" "ok"
    "err" "cached" "mean" "p50" "p90" "max";
  List.iter
    (fun kind ->
      let s = Hashtbl.find t.tbl kind in
      let errs = List.fold_left (fun a (_, n) -> a + n) 0 s.errors in
      let mean =
        if s.count = 0 then nan else s.sum_ns /. float_of_int s.count
      in
      Fmt.pf ppf "  %-9s %8d %8d %8d %8d %9s %7s %7s %9s@." kind s.count s.ok
        errs s.cached
        (Fmt.str "%a" pp_ns mean)
        (quantile_label s 0.50) (quantile_label s 0.90)
        (Fmt.str "%a" pp_ns s.max_ns))
    t.order;
  let all_errors =
    List.concat_map
      (fun kind -> (Hashtbl.find t.tbl kind).errors)
      t.order
    |> List.fold_left
         (fun acc (code, n) ->
           let m = try List.assoc code acc with Not_found -> 0 in
           (code, m + n) :: List.remove_assoc code acc)
         []
  in
  if all_errors <> [] then begin
    Fmt.pf ppf "@.errors by code@.";
    List.iter
      (fun (code, n) -> Fmt.pf ppf "  %-15s %d@." code n)
      (List.sort compare all_errors)
  end;
  if cache_stats <> [] then begin
    Fmt.pf ppf "@.caches (hit ratio over lookups)@.";
    List.iter (fun st -> Fmt.pf ppf "  %a@." Lru.pp_stats st) cache_stats
  end;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
