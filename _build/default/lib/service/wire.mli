(** The wire format: one JSON object per line ("JSONL-ish"), over a
    hand-rolled JSON subset — objects, arrays, strings with escapes,
    integers, floats, booleans, null. No external JSON dependency.

    Example request lines:
    {v
    {"id":1,"kind":"check","concept":"Container","types":["varray<int>"]}
    {"kind":"optimize","expr":"x*1+0","certified_only":true}
    {"kind":"prove","theory":"group","instance":"int[+]"}
    v} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Error of string

val parse : string -> json
(** Raises {!Error} on malformed input. *)

val to_string : json -> string
(** Canonical single-line rendering; [parse (to_string v)] round-trips. *)

val request_of_line : string -> (int option * Request.t, string) result
(** Decode one request line: optional client-chosen [id] plus the typed
    request. [Error] carries a human-readable reason — the server turns
    it into a structured [Bad_request] response, never an exception. *)

val request_to_line : ?id:int -> Request.t -> string
(** Encode a request; [request_of_line (request_to_line r)] round-trips. *)

val response_to_line : Request.response -> string
