(** Per-request execution budgets: an abstract step allowance plus a
    wall-clock deadline over an injectable clock.

    The dispatcher charges steps at stage boundaries, making over-budget
    behaviour deterministic; deadline checks piggyback on every charge,
    so tests exercise the timeout path with a fake clock instead of
    sleeping. *)

type why = Steps | Deadline

exception Exhausted of why
(** Caught by the server and turned into the structured [Over_budget] /
    [Timeout] error responses — never user-visible as an exception. *)

type t

val create : ?max_steps:int -> ?deadline:float -> now:(unit -> float) -> unit -> t
(** [deadline] is absolute, in [now]'s timescale. Default [max_steps] is
    unlimited. *)

val spend : t -> int -> unit
(** Charge [n] steps; raises {!Exhausted} when the allowance or the
    deadline is exceeded. *)

val check_deadline : t -> unit
val used : t -> int
val remaining : t -> int
val why_name : why -> string
