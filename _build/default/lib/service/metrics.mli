(** Serving observability: per-kind request counters, log-scale latency
    histograms (decade buckets over ns, O(1) observation), and the text
    report combining counters, latency quantile estimates, error-code
    totals and cache hit-ratio tables. *)

type t

val create : unit -> t

val observe :
  t ->
  kind:string ->
  ok:bool ->
  error_code:string option ->
  cached:bool ->
  ns:float ->
  unit

val requests : t -> int
val errors : t -> int

val report : ?cache_stats:Lru.stats list -> t -> string
(** The rendered text report. Quantiles are bucket upper-bound
    estimates. *)

val pp_ns : Format.formatter -> float -> unit
