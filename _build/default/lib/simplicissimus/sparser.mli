(** A surface syntax for the expression IR ([gp optimize --expr ...]).

    Standard precedence (multiplicative over additive), parentheses,
    int/float/bool/string literals, variables with optional type
    annotations ([f:float]; default int), unary applications
    ([neg(x)], [inv(x)], [Inverse(f)]). Binary [-] desugars to
    [x + neg(y)], the IR's inverse form. *)

exception Parse_error of string

val parse : string -> Expr.t
(** Raises {!Parse_error} on malformed input, including carrier-type
    mismatches between operands. *)
