(* The typed expression IR Simplicissimus rewrites.

   Every node carries the carrier type it computes ("int", "float", "bool",
   "string", "rational", "matrix", "bigfloat", ...). Operations are named
   by surface symbol ("+", "*", "&&", ".", "/", "neg", "inv", ...); the
   instance table in {!Instances} decides which (type, op) pairs model
   which algebraic concepts.

   [Ident (ty, op)] is the *symbolic* identity element of a carrier — for
   matrices the identity depends on the dimension, so it stays symbolic
   until evaluation. *)

type value =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VString of string
  | VRat of Gp_algebra.Rational.t
  | VMat of Gp_algebra.Instances.Qmat.t

type t =
  | Var of string * string (* name, type *)
  | Lit of value
  | Ident of string * string (* symbolic identity of (type, op) *)
  | Op of string * string * t list (* op symbol, result type, operands *)

let value_type = function
  | VInt _ -> "int"
  | VFloat _ -> "float"
  | VBool _ -> "bool"
  | VString _ -> "string"
  | VRat _ -> "rational"
  | VMat _ -> "matrix"

let type_of = function
  | Var (_, ty) -> ty
  | Lit v -> value_type v
  | Ident (ty, _) -> ty
  | Op (_, ty, _) -> ty

let value_equal a b =
  match a, b with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> Float.equal x y
  | VBool x, VBool y -> x = y
  | VString x, VString y -> String.equal x y
  | VRat x, VRat y -> Gp_algebra.Rational.equal x y
  | VMat x, VMat y -> Gp_algebra.Instances.Qmat.equal x y
  | (VInt _ | VFloat _ | VBool _ | VString _ | VRat _ | VMat _), _ -> false

let rec equal a b =
  match a, b with
  | Var (x, t), Var (y, u) -> String.equal x y && String.equal t u
  | Lit v, Lit w -> value_equal v w
  | Ident (t, o), Ident (u, p) -> String.equal t u && String.equal o p
  | Op (o, t, xs), Op (p, u, ys) ->
    String.equal o p && String.equal t u
    && List.length xs = List.length ys
    && List.for_all2 equal xs ys
  | (Var _ | Lit _ | Ident _ | Op _), _ -> false

let pp_value ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.float ppf f
  | VBool b -> Fmt.bool ppf b
  | VString s -> Fmt.pf ppf "%S" s
  | VRat r -> Gp_algebra.Rational.pp ppf r
  | VMat m -> Gp_algebra.Instances.Qmat.pp ppf m

let rec pp ppf = function
  | Var (x, _) -> Fmt.string ppf x
  | Lit v -> pp_value ppf v
  | Ident (ty, op) -> Fmt.pf ppf "id<%s,%s>" ty op
  | Op (op, _, [ a; b ]) -> Fmt.pf ppf "(%a %s %a)" pp a op pp b
  | Op (op, _, [ a ]) -> Fmt.pf ppf "%s(%a)" op pp a
  | Op (op, _, args) ->
    Fmt.pf ppf "%s(%a)" op Fmt.(list ~sep:comma pp) args

let to_string e = Fmt.str "%a" pp e

(* Node count — the size measure reduced by simplification. *)
let rec size = function
  | Var _ | Lit _ | Ident _ -> 1
  | Op (_, _, args) -> List.fold_left (fun n e -> n + size e) 1 args

(* Count of operation nodes — the work measure. *)
let rec op_count = function
  | Var _ | Lit _ | Ident _ -> 0
  | Op (_, _, args) -> List.fold_left (fun n e -> n + op_count e) 1 args

(* Convenience builders. *)
let ivar x = Var (x, "int")
let fvar x = Var (x, "float")
let bvar x = Var (x, "bool")
let svar x = Var (x, "string")
let qvar x = Var (x, "rational")
let mvar x = Var (x, "matrix")
let int i = Lit (VInt i)
let float f = Lit (VFloat f)
let bool b = Lit (VBool b)
let string s = Lit (VString s)
let rat r = Lit (VRat r)
let binop op a b = Op (op, type_of a, [ a; b ])
let unop op a = Op (op, type_of a, [ a ])
