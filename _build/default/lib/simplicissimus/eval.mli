(** Evaluator for the expression IR — the semantic ground truth:
    rewriting must never change an expression's value (property-tested),
    and the benches time original vs simplified evaluation. *)

exception Type_error of string

val identity_value : mat_dim:int -> string -> string -> Expr.value
(** Concrete identity of a carrier; matrix identities need the
    dimension. Raises {!Type_error} on unknown carriers. *)

val eval :
  ?mat_dim:int -> env:(string * Expr.value) list -> Expr.t -> Expr.value
(** Raises {!Type_error} on unbound variables or unknown operations, and
    whatever the underlying arithmetic raises (e.g. [Division_by_zero],
    [Qmat.Singular]). *)
