(** The rewrite engine: bottom-up normalisation to a fixpoint.

    Rules fire wherever their concept guards hold against the instance
    table — "optimization via concept-based rewrite rules comes
    essentially for free" once the modeling relation is recorded. Every
    application is logged, so the Fig. 5 instance table regenerates
    mechanically from the rules (bench F5). *)

type step = {
  st_rule : string;
  st_carrier : string * string;  (** (type, op) the guard was checked on *)
  st_before : Expr.t;
  st_after : Expr.t;
}

type result = {
  input : Expr.t;
  output : Expr.t;
  steps : step list;
  ops_before : int;
  ops_after : int;
}

val carriers : Instances.t -> Expr.t -> (string * string) list
(** Candidate carriers at a node: its own (type, op) plus any carrier
    whose inverse operation is the node's op (so inv(inv x) finds its
    owner). *)

exception Did_not_terminate of Expr.t
(** Raised if rewriting exceeds the internal step budget (a cyclic user
    rule set). *)

val rewrite :
  ?only_certified:bool ->
  rules:Rules.t list ->
  insts:Instances.t ->
  Expr.t ->
  result
(** Normalise to a fixpoint. With [only_certified], concept rules whose
    backing theorem has not been proof-checked are skipped (user rules
    are library facts and exempt). *)

val pp_step : Format.formatter -> step -> unit
val pp_result : Format.formatter -> result -> unit
