(** The typed expression IR Simplicissimus rewrites.

    Every node carries its carrier type; operations are surface symbols
    ("+", "*", "&&", ".", "neg", "inv", ...). [Ident (ty, op)] is a
    symbolic identity element — matrices resolve theirs to a concrete
    identity only at evaluation, when the dimension is known. *)

type value =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VString of string
  | VRat of Gp_algebra.Rational.t
  | VMat of Gp_algebra.Instances.Qmat.t

type t =
  | Var of string * string  (** name, carrier type *)
  | Lit of value
  | Ident of string * string  (** symbolic identity of (type, op) *)
  | Op of string * string * t list  (** op symbol, result type, operands *)

val value_type : value -> string
val type_of : t -> string
val value_equal : value -> value -> bool
val equal : t -> t -> bool

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val size : t -> int
(** Node count. *)

val op_count : t -> int
(** Operation-node count — the work measure reduced by rewriting. *)

(** {2 Builders} *)

val ivar : string -> t
val fvar : string -> t
val bvar : string -> t
val svar : string -> t
val qvar : string -> t
val mvar : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t
val string : string -> t
val rat : Gp_algebra.Rational.t -> t
val binop : string -> t -> t -> t
val unop : string -> t -> t
