lib/simplicissimus/engine.ml: Expr Fmt Instances List Rules String
