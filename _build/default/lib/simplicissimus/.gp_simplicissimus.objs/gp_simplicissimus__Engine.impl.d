lib/simplicissimus/engine.ml: Expr Fmt Hashtbl Instances Int List Option Rules String
