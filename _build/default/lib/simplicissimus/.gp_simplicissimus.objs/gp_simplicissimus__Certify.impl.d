lib/simplicissimus/certify.ml: Deduction Fmt Gp_athena Gp_concepts Instances List Logic Printf Rules Theorems Theory
