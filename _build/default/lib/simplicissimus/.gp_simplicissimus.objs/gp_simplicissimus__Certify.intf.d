lib/simplicissimus/certify.mli: Format Gp_athena Instances Rules
