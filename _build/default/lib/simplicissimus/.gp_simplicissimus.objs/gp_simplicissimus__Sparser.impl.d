lib/simplicissimus/sparser.ml: Buffer Expr Fmt List String
