lib/simplicissimus/engine.mli: Expr Format Instances Rules
