lib/simplicissimus/rules.mli: Expr Format Instances
