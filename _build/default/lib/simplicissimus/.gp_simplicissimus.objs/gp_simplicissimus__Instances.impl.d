lib/simplicissimus/instances.ml: Expr Gp_algebra Gp_athena List Printf String
