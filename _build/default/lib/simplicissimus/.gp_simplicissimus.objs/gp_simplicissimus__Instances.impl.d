lib/simplicissimus/instances.ml: Expr Gp_algebra Gp_athena Hashtbl List Option Printf String
