lib/simplicissimus/instances.mli: Expr Gp_athena
