lib/simplicissimus/expr.mli: Format Gp_algebra
