lib/simplicissimus/eval.ml: Expr Fmt Gp_algebra List
