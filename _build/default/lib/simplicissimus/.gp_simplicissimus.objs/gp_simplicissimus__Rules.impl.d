lib/simplicissimus/rules.ml: Expr Fmt Instances List Printf String
