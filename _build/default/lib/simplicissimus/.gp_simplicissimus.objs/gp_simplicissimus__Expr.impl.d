lib/simplicissimus/expr.ml: Float Fmt Gp_algebra List String
