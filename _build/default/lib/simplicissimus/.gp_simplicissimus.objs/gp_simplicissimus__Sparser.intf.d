lib/simplicissimus/sparser.mli: Expr
