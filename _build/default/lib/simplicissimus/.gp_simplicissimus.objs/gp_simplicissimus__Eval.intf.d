lib/simplicissimus/eval.mli: Expr
