(* Rule certification through the proof checker.

   Fig. 5, advantage 2: "The concept-based rules are directly related to
   and derivable from the axioms governing the Monoid and Group concepts."
   Certify makes that statement executable: each built-in rule names the
   theorem whose equation it implements; the theorem's generic proof is run
   through gp_athena's checker, and only then is the rule marked certified.
   The engine's [only_certified] mode refuses to apply anything else.

   Certification also discharges instance axioms in the gp_concepts
   world: for every instance mapping with proved axioms, the derived
   equations (right inverse from the minimal group presentation, etc.) are
   registered via [Check.certify_axiom], which silences the checker's
   "asserted but not proved" warnings for those carriers. *)

open Gp_athena

type certification = {
  cert_rule : string;
  cert_theorem : string;
  cert_verdict : Deduction.verdict;
}

(* The theorem backing each built-in rule, over a canonical mapping. The
   proof is generic: checking it once per rule suffices for every carrier
   that models the guard concept. *)
let theorem_for (r : Rules.t) : Theorems.theorem option =
  let m = Theory.int_add in
  (* canonical mapping; the proof is symbol-generic *)
  if r == Rules.right_identity then Some (Theorems.monoid_right_identity m)
  else if r == Rules.left_identity then
    let axs = Theory.monoid m in
    let p = Theory.find axs "left_identity" in
    Some { Theorems.thm_name = "Monoid: left identity"; goal = p;
           proof = Deduction.Claim p }
  else if r == Rules.right_inverse then Some (Theorems.group_right_inverse m)
  else if r == Rules.left_inverse then
    let axs = Theory.group_minimal m in
    let p = Theory.find axs "left_inverse" in
    Some { Theorems.thm_name = "Group: left inverse"; goal = p;
           proof = Deduction.Claim p }
  else if r == Rules.double_inverse then
    Some (Theorems.group_double_inverse m)
  else if r == Rules.mul_zero_right then
    let rm = { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul } in
    Some (Theorems.ring_mul_zero rm)
  else if r == Rules.mul_zero_left then
    let rm = { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul } in
    Some (Theorems.ring_zero_mul rm)
  else if r == Rules.identity_fold then
    (* op(e, e) = e: right identity instantiated at the identity itself *)
    let axs = Theory.monoid m in
    let rid = Theory.find axs "right_identity" in
    let e = Theory.e_of m in
    Some
      {
        Theorems.thm_name = "Monoid: identity absorbs identity";
        goal = Logic.Eq (Theory.( %. ) m (e, e), e);
        proof = Deduction.Inst (Deduction.Claim rid, [ e ]);
      }
  else None

let axioms_for (r : Rules.t) =
  let m = Theory.int_add in
  if r.Rules.requires_ring then
    Theory.ring { Theory.r_name = "int"; add = Theory.int_add; mul = Theory.int_mul }
  else
    match r.Rules.guard with
    | Instances.Semigroup -> Theory.semigroup m
    | Instances.Monoid -> Theory.monoid m
    | Instances.Group | Instances.Abelian_group -> Theory.group_minimal m

(* Certify one rule: check its backing theorem; on success flip the flag. *)
let certify_rule (r : Rules.t) =
  match theorem_for r with
  | None ->
    {
      cert_rule = r.Rules.rule_name;
      cert_theorem = "(none: user rule, trusted as a library fact)";
      cert_verdict = Deduction.Improper "no backing theorem";
    }
  | Some thm ->
    let verdict = Theorems.verify ~axioms:(axioms_for r) thm in
    (match verdict with
    | Deduction.Proved -> r.Rules.certified := true
    | _ -> ());
    {
      cert_rule = r.Rules.rule_name;
      cert_theorem = thm.Theorems.thm_name;
      cert_verdict = verdict;
    }

let certify_builtin () = List.map certify_rule Rules.builtin

(* Discharge the derived group axioms for every exactly-modeled instance in
   the gp_concepts certification table: the right_inverse/right_identity
   axioms asserted by Gp_algebra.Decls become *proved* for these carriers. *)
let discharge_instance_axioms insts =
  List.concat_map
    (fun (e : Instances.entry) ->
      match e.Instances.e_mapping with
      | Some m when e.Instances.e_axioms_proved ->
        let carrier =
          Gp_concepts.Ctype.Named
            (Printf.sprintf "%s[%s]" e.Instances.e_type e.Instances.e_op)
        in
        let discharged = ref [] in
        (if Instances.level_at_least ~required:Instances.Group
              e.Instances.e_level
         then
           let thm = Theorems.group_right_inverse m in
           match Theorems.verify ~axioms:(Theory.group_minimal m) thm with
           | Deduction.Proved ->
             Gp_concepts.Check.certify_axiom ~concept:"Group"
               ~axiom:"right_inverse" ~args:[ carrier ];
             discharged := "right_inverse" :: !discharged
           | _ -> ());
        (if Instances.level_at_least ~required:Instances.Monoid
              e.Instances.e_level
         then
           let thm = Theorems.monoid_right_identity m in
           match Theorems.verify ~axioms:(Theory.monoid m) thm with
           | Deduction.Proved ->
             Gp_concepts.Check.certify_axiom ~concept:"Monoid"
               ~axiom:"right_identity" ~args:[ carrier ];
             discharged := "right_identity" :: !discharged
           | _ -> ());
        List.map (fun ax -> (Gp_athena.Theory.map_name m, ax)) !discharged
      | _ -> [])
    (Instances.entries insts)

let pp_certification ppf c =
  Fmt.pf ppf "%-18s <- %-32s : %a" c.cert_rule c.cert_theorem
    Deduction.pp_verdict c.cert_verdict
