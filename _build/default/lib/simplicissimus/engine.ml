(* The rewrite engine: bottom-up normalisation to a fixpoint, applying
   concept-guarded rules wherever their guards hold.

   "Since concept analysis is a necessary first step for use of a new data
   type with a generic algorithm, optimization via concept-based rewrite
   rules comes essentially for free": here the guard check is literally a
   lookup of the modeling relation the instance table already records.

   The engine logs every rule application (rule name, carrier, before,
   after) so the Fig. 5 instance table can be *regenerated mechanically*
   from the rules — bench f5 does exactly that. *)

type step = {
  st_rule : string;
  st_carrier : string * string; (* (type, op) the guard was checked on *)
  st_before : Expr.t;
  st_after : Expr.t;
}

type result = {
  input : Expr.t;
  output : Expr.t;
  steps : step list;
  ops_before : int;
  ops_after : int;
}

(* Candidate carriers for matching a rule at [node]: the node's own
   (type, op), plus any carrier whose *inverse* op is the node's op (so a
   root pattern like inv(inv x) finds its owning carrier). *)
let carriers insts (node : Expr.t) =
  match node with
  | Expr.Op (o, t, _) ->
    let own = [ (t, o) ] in
    let via_inverse =
      List.filter_map
        (fun (e : Instances.entry) ->
          if
            String.equal e.Instances.e_type t
            && e.Instances.e_inverse = Some o
          then Some (t, e.Instances.e_op)
          else None)
        (Instances.entries insts)
    in
    own @ via_inverse
  | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> []

(* Try to apply one rule at [node] for carrier (ty, op); the concept guard
   is checked first (user rules are guarded by their library type
   instead). *)
let try_rule insts ~only_certified (r : Rules.t) ~ty ~op node =
  let guard_ok =
    match r.Rules.user_type with
    | Some ut ->
      (* library-specific rule: fires on its own type/op only *)
      String.equal ut ty
      && (match r.Rules.user_op with
         | Some uo -> String.equal uo op
         | None -> true)
    | None ->
      Instances.models insts ~ty ~op ~required:r.Rules.guard
      && ((not r.Rules.requires_ring)
         || Instances.ring_for insts ~ty ~op <> None)
      && ((not only_certified) || !(r.Rules.certified))
  in
  if not guard_ok then None
  else
    match Rules.match_pattern insts ~ty ~op r.Rules.lhs node with
    | Some bindings ->
      Some (Rules.instantiate insts ~ty ~op bindings r.Rules.rhs)
    | None -> None

let max_steps = 10_000

exception Did_not_terminate of Expr.t

let rewrite ?(only_certified = false) ~rules ~insts expr =
  let steps = ref [] in
  let budget = ref max_steps in
  let spend () =
    decr budget;
    if !budget <= 0 then raise (Did_not_terminate expr)
  in
  (* apply rules at the root of [node] until none fires *)
  let rec at_root node =
    let fired =
      List.find_map
        (fun r ->
          List.find_map
            (fun (ty, op) ->
              match try_rule insts ~only_certified r ~ty ~op node with
              | Some after ->
                Some
                  {
                    st_rule = r.Rules.rule_name;
                    st_carrier = (ty, op);
                    st_before = node;
                    st_after = after;
                  }
              | None -> None)
            (carriers insts node))
        rules
    in
    match fired with
    | Some step ->
      spend ();
      steps := step :: !steps;
      (* the replacement may expose new redexes below the root *)
      normalize step.st_after
    | None -> node
  and normalize node =
    match node with
    | Expr.Var _ | Expr.Lit _ | Expr.Ident _ -> at_root node
    | Expr.Op (o, t, args) -> at_root (Expr.Op (o, t, List.map normalize args))
  in
  let output = normalize expr in
  {
    input = expr;
    output;
    steps = List.rev !steps;
    ops_before = Expr.op_count expr;
    ops_after = Expr.op_count output;
  }

let pp_step ppf s =
  Fmt.pf ppf "%a  --[%s @@ (%s,%s)]-->  %a" Expr.pp s.st_before s.st_rule
    (fst s.st_carrier) (snd s.st_carrier) Expr.pp s.st_after

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,  ==>  %a   (%d ops -> %d ops, %d steps)@]" Expr.pp
    r.input Expr.pp r.output r.ops_before r.ops_after (List.length r.steps)
