(* Evaluator for the expression IR — the semantic ground truth the
   property tests compare rewriting against (rewriting must never change an
   expression's value) and the benches time (simplified vs original).

   Matrix identities are symbolic in the IR; evaluation resolves them at
   the dimension given by [mat_dim]. "bigfloat" values evaluate as floats;
   [Inverse] and [/] agree semantically (the LiDIA rule is a cost
   specialisation, not a semantic change). *)

exception Type_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

open Expr

let as_int = function VInt i -> i | v -> fail "expected int, got %a" pp_value v
let as_float = function
  | VFloat f -> f
  | v -> fail "expected float, got %a" pp_value v
let as_bool = function
  | VBool b -> b
  | v -> fail "expected bool, got %a" pp_value v
let as_string = function
  | VString s -> s
  | v -> fail "expected string, got %a" pp_value v
let as_rat = function
  | VRat r -> r
  | v -> fail "expected rational, got %a" pp_value v
let as_mat = function
  | VMat m -> m
  | v -> fail "expected matrix, got %a" pp_value v

let apply ~mat_dim ty op args =
  ignore mat_dim;
  match ty, op, args with
  | "int", "+", [ a; b ] -> VInt (as_int a + as_int b)
  | "int", "-", [ a; b ] -> VInt (as_int a - as_int b)
  | "int", "*", [ a; b ] -> VInt (as_int a * as_int b)
  | "int", "&", [ a; b ] -> VInt (as_int a land as_int b)
  | "int", "|", [ a; b ] -> VInt (as_int a lor as_int b)
  | "int", "neg", [ a ] -> VInt (-as_int a)
  | "bool", "&&", [ a; b ] -> VBool (as_bool a && as_bool b)
  | "bool", "||", [ a; b ] -> VBool (as_bool a || as_bool b)
  | "string", "^", [ a; b ] -> VString (as_string a ^ as_string b)
  | "float", "+", [ a; b ] -> VFloat (as_float a +. as_float b)
  | "float", "*", [ a; b ] -> VFloat (as_float a *. as_float b)
  | "float", "/", [ a; b ] -> VFloat (as_float a /. as_float b)
  | "float", "neg", [ a ] -> VFloat (-.as_float a)
  | "float", "inv", [ a ] -> VFloat (1.0 /. as_float a)
  | "rational", "+", [ a; b ] -> VRat (Gp_algebra.Rational.add (as_rat a) (as_rat b))
  | "rational", "*", [ a; b ] -> VRat (Gp_algebra.Rational.mul (as_rat a) (as_rat b))
  | "rational", "neg", [ a ] -> VRat (Gp_algebra.Rational.neg (as_rat a))
  | "rational", "inv", [ a ] -> VRat (Gp_algebra.Rational.inv (as_rat a))
  | ("matrix" | "invertible_matrix"), ".", [ a; b ] ->
    VMat (Gp_algebra.Instances.Qmat.mul (as_mat a) (as_mat b))
  | ("matrix" | "invertible_matrix"), "inv", [ a ] ->
    VMat (Gp_algebra.Instances.Qmat.inverse (as_mat a))
  | "bigfloat", "/", [ a; b ] -> VFloat (as_float a /. as_float b)
  | "bigfloat", "*", [ a; b ] -> VFloat (as_float a *. as_float b)
  | "bigfloat", "Inverse", [ a ] -> VFloat (1.0 /. as_float a)
  | _ ->
    fail "no implementation for %s.%s/%d" ty op (List.length args)

let identity_value ~mat_dim ty op =
  match ty, op with
  | "int", "+" -> VInt 0
  | "int", "*" -> VInt 1
  | "int", "&" -> VInt (-1)
  | "int", "|" -> VInt 0
  | "bool", "&&" -> VBool true
  | "bool", "||" -> VBool false
  | "string", "^" -> VString ""
  | "float", "+" -> VFloat 0.0
  | "float", "*" -> VFloat 1.0
  | "rational", "+" -> VRat Gp_algebra.Rational.zero
  | "rational", "*" -> VRat Gp_algebra.Rational.one
  | ("matrix" | "invertible_matrix"), "." ->
    VMat (Gp_algebra.Instances.Qmat.identity mat_dim)
  | _ -> fail "no identity for (%s, %s)" ty op

let rec eval ?(mat_dim = 2) ~env expr =
  match expr with
  | Var (x, _) -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> fail "unbound variable %s" x)
  | Lit v -> v
  | Ident (ty, op) -> identity_value ~mat_dim ty op
  | Op (op, ty, args) ->
    let on_ty =
      (* unary inverse ops are evaluated on the operand's carrier *)
      match op, args with
      | ("neg" | "inv"), [ a ] -> Expr.type_of a
      | _ -> ty
    in
    apply ~mat_dim on_ty op (List.map (eval ~mat_dim ~env) args)
