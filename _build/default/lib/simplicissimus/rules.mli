(** Concept-based rewrite rules (Fig. 5).

    A rule is a pattern -> template pair guarded by a concept level the
    carrier must model. Patterns are nonlinear (the same metavariable
    must match structurally equal subexpressions — needed by
    [x + (-x)]). User rules are library-specific: they fire on a fixed
    carrier type/op instead of a concept guard. *)

type pattern =
  | P_any of string  (** metavariable; nonlinear *)
  | P_identity  (** the carrier's identity element *)
  | P_op of pattern list  (** the carrier's own operation *)
  | P_inverse of pattern  (** the carrier's inverse operation *)
  | P_lit of Expr.value
  | P_exact of string * pattern list  (** a fixed op symbol (user rules) *)
  | P_ring_zero
      (** the additive zero of the ring whose multiplication is the
          carrier *)

type template =
  | T_var of string
  | T_identity
  | T_op of template list
  | T_inverse of template
  | T_lit of Expr.value
  | T_exact of string * template list
  | T_ring_zero

type t = {
  rule_name : string;
  guard : Instances.level;
  requires_ring : bool;
      (** additionally require a registered ring whose multiplication is
          the carrier *)
  lhs : pattern;
  rhs : template;
  user_type : string option;
  user_op : string option;
  certified : bool ref;  (** set by Certify after a checked proof *)
}

val make :
  ?user_type:string ->
  ?user_op:string ->
  ?requires_ring:bool ->
  name:string ->
  guard:Instances.level ->
  lhs:pattern ->
  rhs:template ->
  unit ->
  t

(** What the root of a rule's LHS can match — the engine's dispatch key:
    rules whose head cannot produce the node's root symbol are never
    tried. *)
type head =
  | Head_exact of string  (** root must be this fixed op symbol *)
  | Head_carrier_op  (** root must be the carrier's own op ([P_op]) *)
  | Head_carrier_inverse
      (** root must be a carrier's inverse op ([P_inverse]) *)
  | Head_any  (** variable-headed pattern: no symbol constraint *)

val head : t -> head

val match_pattern :
  Instances.t ->
  ty:string ->
  op:string ->
  pattern ->
  Expr.t ->
  (string * Expr.t) list option
(** Match against an expression whose carrier is (ty, op); [Some
    bindings] with nonlinear consistency enforced. *)

val instantiate :
  Instances.t ->
  ty:string ->
  op:string ->
  (string * Expr.t) list ->
  template ->
  Expr.t

(** {2 The built-in rules} *)

val right_identity : t
(** Fig. 5 row 1: [x + 0 -> x] for every Monoid carrier. *)

val left_identity : t

val right_inverse : t
(** Fig. 5 row 2: [x + (-x) -> 0] for every Group carrier. *)

val left_inverse : t
val double_inverse : t
val identity_fold : t

val mul_zero_right : t
(** Ring annihilation [x * 0 -> 0], certified by the athena theorem. *)

val mul_zero_left : t

val builtin : t list

val lidia_inverse : t
(** The Section 3.2 user rule: [1.0 / f -> Inverse(f)] on the "bigfloat"
    library type only. *)

val pp_level : Format.formatter -> Instances.level -> unit
val pp : Format.formatter -> t -> unit
