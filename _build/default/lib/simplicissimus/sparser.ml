(* A surface syntax for the expression IR, so the optimizer runs on
   expression text (gp optimize --expr "x*1 + (0 - 0)").

     expr   ::= mul (addop mul)*          addop ::= "+" | "-" | "||" | "|"
     mul    ::= atom (mulop atom)*        mulop ::= "*" | "&&" | "&" | "^" | "."
     atom   ::= integer | float | "true" | "false" | string-literal
              | ident [":" type]          variable (default type int)
              | ident "(" expr ")"        unary application: neg(x), inv(x), ...
              | "(" expr ")"

   Operand carrier types must agree per operation; variables default to
   int unless annotated ("f:float * 1.0"). Binary "-" desugars to
   x + neg(y) for group carriers, matching the IR's inverse form. *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

type token =
  | Tint of int
  | Tfloat of float
  | Tstr of string
  | Tid of string
  | Top of string
  | Tlparen
  | Trparen
  | Tcolon
  | Teof

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'
  in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      toks := Tlparen :: !toks;
      incr i
    | ')' ->
      toks := Trparen :: !toks;
      incr i
    | ':' ->
      toks := Tcolon :: !toks;
      incr i
    | '"' ->
      let b = Buffer.create 8 in
      incr i;
      while peek () <> Some '"' && peek () <> None do
        Buffer.add_char b src.[!i];
        incr i
      done;
      if peek () = None then fail "unterminated string";
      incr i;
      toks := Tstr (Buffer.contents b) :: !toks
    | c when is_digit c ->
      let start = !i in
      while (match peek () with Some c -> is_digit c || c = '.' | None -> false) do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      toks :=
        (if String.contains text '.' then Tfloat (float_of_string text)
         else Tint (int_of_string text))
        :: !toks
    | c when is_id c ->
      let start = !i in
      while (match peek () with Some c -> is_id c | None -> false) do
        incr i
      done;
      toks := Tid (String.sub src start (!i - start)) :: !toks
    | '&' when !i + 1 < n && src.[!i + 1] = '&' ->
      toks := Top "&&" :: !toks;
      i := !i + 2
    | '|' when !i + 1 < n && src.[!i + 1] = '|' ->
      toks := Top "||" :: !toks;
      i := !i + 2
    | ('+' | '-' | '*' | '&' | '|' | '^' | '.' | '/') as c ->
      toks := Top (String.make 1 c) :: !toks;
      incr i
    | c -> fail "unexpected character %c" c
  done;
  List.rev (Teof :: !toks)

type stream = { mutable toks : token list }

let peek s = match s.toks with t :: _ -> t | [] -> Teof
let shift s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let known_types = [ "int"; "float"; "bool"; "string"; "rational"; "matrix";
                    "invertible_matrix"; "bigfloat" ]

let addops = [ "+"; "-"; "||"; "|" ]
let mulops = [ "*"; "&&"; "&"; "^"; "."; "/" ]

(* carrier type checking: both operands must share a type *)
let combine op a b =
  let ta = Expr.type_of a and tb = Expr.type_of b in
  if ta <> tb then
    fail "operands of %s have different types (%s vs %s)" op ta tb;
  match op with
  | "-" ->
    (* desugar to the IR's inverse form: a + neg(b) *)
    Expr.binop "+" a (Expr.unop "neg" b)
  | _ -> Expr.binop op a b

let rec parse_expr s =
  let rec go acc =
    match peek s with
    | Top op when List.mem op addops ->
      shift s;
      go (combine op acc (parse_mul s))
    | _ -> acc
  in
  go (parse_mul s)

and parse_mul s =
  let rec go acc =
    match peek s with
    | Top op when List.mem op mulops ->
      shift s;
      go (combine op acc (parse_atom s))
    | _ -> acc
  in
  go (parse_atom s)

and parse_atom s =
  match peek s with
  | Tint k ->
    shift s;
    Expr.int k
  | Tfloat f ->
    shift s;
    Expr.float f
  | Tstr str ->
    shift s;
    Expr.string str
  | Tlparen ->
    shift s;
    let e = parse_expr s in
    (match peek s with
    | Trparen -> shift s
    | _ -> fail "expected ')'");
    e
  | Tid "true" ->
    shift s;
    Expr.bool true
  | Tid "false" ->
    shift s;
    Expr.bool false
  | Tid name -> (
    shift s;
    match peek s with
    | Tlparen ->
      (* unary application: neg(x), inv(x), Inverse(f), ... *)
      shift s;
      let arg = parse_expr s in
      (match peek s with
      | Trparen -> shift s
      | _ -> fail "expected ')'");
      Expr.unop name arg
    | Tcolon -> (
      shift s;
      match peek s with
      | Tid ty when List.mem ty known_types ->
        shift s;
        Expr.Var (name, ty)
      | Tid ty -> fail "unknown type %s" ty
      | _ -> fail "expected a type after ':'")
    | _ -> Expr.Var (name, "int"))
  | Top op -> fail "unexpected operator %s" op
  | Trparen -> fail "unexpected ')'"
  | Tcolon -> fail "unexpected ':'"
  | Teof -> fail "unexpected end of expression"

let parse src =
  let s = { toks = tokenize src } in
  let e = parse_expr s in
  match peek s with
  | Teof -> e
  | _ -> fail "trailing input after expression"
