(* Concept-based rewrite rules.

   A rule is a pattern -> template pair guarded by a concept requirement on
   the (type, op) carrier of the matched node — the two rows of Fig. 5:

     x + 0      -> x     when (x, +)    models Monoid
     x + (-x)   -> 0     when (x, +, -) models Group

   plus companions (left identity, left inverse, double inverse, identity
   folding) and arbitrary user rules (the LiDIA 1.0/f -> Inverse(f)
   example). Patterns are nonlinear: the same pattern variable must match
   structurally equal subexpressions, which is what [x + (-x)] needs. *)

type pattern =
  | P_any of string (* binds a metavariable; nonlinear *)
  | P_identity (* the identity element of the carrier under match *)
  | P_op of pattern list (* the carrier's own operation *)
  | P_inverse of pattern (* the carrier's inverse operation *)
  | P_lit of Expr.value
  | P_exact of string * pattern list (* a specific op symbol (user rules) *)
  | P_ring_zero
      (* the additive zero of the ring whose multiplication is the carrier *)

type template =
  | T_var of string (* a bound metavariable *)
  | T_identity (* the carrier's identity *)
  | T_op of template list
  | T_inverse of template
  | T_lit of Expr.value
  | T_exact of string * template list
  | T_ring_zero

type t = {
  rule_name : string;
  guard : Instances.level; (* concept the carrier must model *)
  requires_ring : bool;
      (* additionally require a registered ring with this carrier as its
         multiplication (the annihilation rules) *)
  lhs : pattern;
  rhs : template;
  user_type : string option;
      (* user rules fire only on this carrier type (library-specific) *)
  user_op : string option; (* and only on this root op symbol *)
  certified : bool ref;
      (* set by Certify when the rule's equation is proof-checked *)
}

let make ?user_type ?user_op ?(requires_ring = false) ~name ~guard ~lhs ~rhs
    () =
  { rule_name = name; guard; requires_ring; lhs; rhs; user_type; user_op;
    certified = ref false }

(* What the root of the LHS can match — the engine's dispatch key. A
   [P_op] root only ever matches a node whose symbol IS the carrier op
   under trial, and a [P_inverse] root only a node whose symbol is a
   carrier's inverse op; [P_exact] pins a symbol outright; everything
   else (a bare metavariable, identity, literal, ring zero) is a
   wildcard that must be tried everywhere. *)
type head =
  | Head_exact of string (* root must be this op symbol *)
  | Head_carrier_op (* root must be the carrier's own op *)
  | Head_carrier_inverse (* root must be a carrier's inverse op *)
  | Head_any (* variable-headed: no symbol constraint *)

let head r =
  match r.lhs with
  | P_exact (o, _) -> Head_exact o
  | P_op _ -> Head_carrier_op
  | P_inverse _ -> Head_carrier_inverse
  | P_any _ | P_identity | P_lit _ | P_ring_zero -> Head_any

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Match [pat] against [expr] where the carrier is (ty, op). Bindings are
   checked for nonlinear consistency. *)
let match_pattern insts ~ty ~op pat expr =
  let rec go bindings pat (expr : Expr.t) =
    match pat, expr with
    | P_any x, e -> (
      match List.assoc_opt x bindings with
      | Some e' -> if Expr.equal e e' then Some bindings else None
      | None -> Some ((x, e) :: bindings))
    | P_identity, e ->
      if Instances.is_identity insts ~ty ~op e then Some bindings else None
    | P_lit v, Expr.Lit w -> if Expr.value_equal v w then Some bindings else None
    | P_lit _, _ -> None
    | P_op pats, Expr.Op (o, t, args)
      when String.equal o op && String.equal t ty
           && List.length pats = List.length args ->
      go_list bindings pats args
    | P_op _, _ -> None
    | P_inverse pat', Expr.Op (o, t, [ arg ]) when String.equal t ty -> (
      match Instances.inverse_op insts ~ty ~op with
      | Some inv when String.equal o inv -> go bindings pat' arg
      | Some _ | None -> None)
    | P_inverse _, _ -> None
    | P_exact (o, pats), Expr.Op (o', _, args)
      when String.equal o o' && List.length pats = List.length args ->
      go_list bindings pats args
    | P_exact _, _ -> None
    | P_ring_zero, e ->
      if Instances.is_ring_zero insts ~ty ~op e then Some bindings else None
  and go_list bindings pats args =
    match pats, args with
    | [], [] -> Some bindings
    | p :: ps, a :: args -> (
      match go bindings p a with
      | Some b -> go_list b ps args
      | None -> None)
    | _ -> None
  in
  go [] pat expr

let rec instantiate insts ~ty ~op bindings = function
  | T_var x -> (
    match List.assoc_opt x bindings with
    | Some e -> e
    | None -> invalid_arg ("unbound template variable " ^ x))
  | T_identity -> Instances.identity_expr insts ~ty ~op
  | T_lit v -> Expr.Lit v
  | T_op ts ->
    Expr.Op (op, ty, List.map (instantiate insts ~ty ~op bindings) ts)
  | T_inverse t -> (
    match Instances.inverse_op insts ~ty ~op with
    | Some inv ->
      Expr.Op (inv, ty, [ instantiate insts ~ty ~op bindings t ])
    | None -> invalid_arg "template uses inverse but carrier has none")
  | T_exact (o, ts) -> (
    let args = List.map (instantiate insts ~ty ~op bindings) ts in
    match args with
    | first :: _ -> Expr.Op (o, Expr.type_of first, args)
    | [] -> Expr.Op (o, ty, []))
  | T_ring_zero -> Instances.ring_zero_expr insts ~ty ~op

(* ------------------------------------------------------------------ *)
(* The built-in concept-based rules                                    *)
(* ------------------------------------------------------------------ *)

(* Fig. 5 row 1: x + 0 -> x, for every Monoid carrier. *)
let right_identity =
  make ~name:"right-identity" ~guard:Instances.Monoid
    ~lhs:(P_op [ P_any "x"; P_identity ])
    ~rhs:(T_var "x") ()

let left_identity =
  make ~name:"left-identity" ~guard:Instances.Monoid
    ~lhs:(P_op [ P_identity; P_any "x" ])
    ~rhs:(T_var "x") ()

(* Fig. 5 row 2: x + (-x) -> 0, for every Group carrier. Nonlinear. *)
let right_inverse =
  make ~name:"right-inverse" ~guard:Instances.Group
    ~lhs:(P_op [ P_any "x"; P_inverse (P_any "x") ])
    ~rhs:T_identity ()

let left_inverse =
  make ~name:"left-inverse" ~guard:Instances.Group
    ~lhs:(P_op [ P_inverse (P_any "x"); P_any "x" ])
    ~rhs:T_identity ()

(* inv(inv x) -> x, certified by the group double-inverse theorem. *)
let double_inverse =
  make ~name:"double-inverse" ~guard:Instances.Group
    ~lhs:(P_inverse (P_inverse (P_any "x")))
    ~rhs:(T_var "x") ()

(* id + id -> id: folding identities (a consequence of either identity
   axiom; keeps normal forms tidy). *)
let identity_fold =
  make ~name:"identity-fold" ~guard:Instances.Monoid
    ~lhs:(P_op [ P_identity; P_identity ])
    ~rhs:T_identity ()

(* Ring annihilation (x * 0 -> 0 and 0 * x -> 0): the carrier under
   match is the ring's multiplication; the zero belongs to its additive
   structure. Certified by the athena ring theorems. *)
let mul_zero_right =
  make ~name:"annihilation-right" ~guard:Instances.Semigroup
    ~requires_ring:true
    ~lhs:(P_op [ P_any "x"; P_ring_zero ])
    ~rhs:T_ring_zero ()

let mul_zero_left =
  make ~name:"annihilation-left" ~guard:Instances.Semigroup
    ~requires_ring:true
    ~lhs:(P_op [ P_ring_zero; P_any "x" ])
    ~rhs:T_ring_zero ()

let builtin = [ right_identity; left_identity; right_inverse; left_inverse;
                double_inverse; identity_fold; mul_zero_right; mul_zero_left ]

(* ------------------------------------------------------------------ *)
(* User rules                                                          *)
(* ------------------------------------------------------------------ *)

(* The LiDIA example (Section 3.2): an arbitrary-precision float library
   provides a more efficient Inverse() than the generic 1.0/f; the library
   author registers the specialisation. *)
let lidia_inverse =
  make ~name:"lidia: 1.0/f -> f.Inverse()" ~guard:Instances.Semigroup
    ~user_type:"bigfloat" ~user_op:"/"
    ~lhs:(P_exact ("/", [ P_lit (Expr.VFloat 1.0); P_any "f" ]))
    ~rhs:(T_exact ("Inverse", [ T_var "f" ]))
    ()

let pp_level ppf l = Fmt.string ppf (Instances.level_name l)

let pp ppf r =
  Fmt.pf ppf "%s [guard: %a%s]%s" r.rule_name pp_level r.guard
    (match r.user_type with
    | Some t -> Printf.sprintf " on %s only" t
    | None -> "")
    (if !(r.certified) then " (certified)" else "")
