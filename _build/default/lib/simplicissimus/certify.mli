(** Rule certification through the proof checker (Fig. 5, advantage 2:
    the rules are "directly related to and derivable from the axioms").

    Each built-in rule names the theorem whose equation it implements;
    the theorem's generic proof runs through gp_athena's checker and
    only then is the rule flagged certified — which the engine's
    [only_certified] mode enforces. *)

type certification = {
  cert_rule : string;
  cert_theorem : string;
  cert_verdict : Gp_athena.Deduction.verdict;
}

val theorem_for : Rules.t -> Gp_athena.Theorems.theorem option
(** The backing theorem of a built-in rule ([None] for user rules). *)

val certify_rule : Rules.t -> certification
val certify_builtin : unit -> certification list

val discharge_instance_axioms : Instances.t -> (string * string) list
(** For every exactly-modeled instance, register the derived equations
    (right inverse, right identity) in the gp_concepts certification
    table, turning "asserted" axiom warnings into certified facts.
    Returns (instance, axiom) pairs discharged. *)

val pp_certification : Format.formatter -> certification -> unit
