(* Data-parallel programming (Section 4): the same high-level program runs
   on the sequential executor and on OCaml 5 domains, with identical
   results; the Monoid concept requirement is what licenses the chunked
   execution.

     dune exec examples/parallel_sum.exe *)

open Gp_datapar

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* OCaml has no Unix in this example's deps; use Sys.time (CPU) plus a
   monotonic wall-clock approximation via Domain timer — simplest portable
   choice: Sys.time for sequential comparability. *)
let time f =
  ignore time;
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  Fmt.pr "=== data-parallel primitives on domains ===@.@.";
  let n = 3_000_000 in
  let a = Array.init n (fun i -> (i * 37) mod 1000) in

  let module Par = Datapar.Par_exec (struct
    let domains = Datapar.default_domains ()
  end) in
  Fmt.pr "input: %d elements; executors: %s, %s@.@." n Datapar.Seq_exec.name
    Par.name;

  (* 1. The same program, both executors, same answers. *)
  let seq_sum, t_seq = time (fun () -> Datapar.Seq_exec.reduce Datapar.int_sum a) in
  let par_sum, t_par = time (fun () -> Par.reduce Datapar.int_sum a) in
  Fmt.pr "reduce (+):    seq=%d  par=%d  agree=%b   (cpu %.3fs vs %.3fs)@."
    seq_sum par_sum (seq_sum = par_sum) t_seq t_par;

  let seq_max = Datapar.Seq_exec.reduce Datapar.int_max a in
  let par_max = Par.reduce Datapar.int_max a in
  Fmt.pr "reduce (max):  seq=%d  par=%d  agree=%b@." seq_max par_max
    (seq_max = par_max);

  let (seq_scan, seq_tot) = Datapar.Seq_exec.scan Datapar.int_sum a in
  let (par_scan, par_tot) = Par.scan Datapar.int_sum a in
  Fmt.pr "scan (+):      totals %d/%d, arrays agree=%b@." seq_tot par_tot
    (seq_scan = par_scan);

  let seq_sq = Datapar.Seq_exec.map (fun x -> x * x) a in
  let par_sq = Par.map (fun x -> x * x) a in
  Fmt.pr "map (square):  agree=%b@." (seq_sq = par_sq);

  let p x = x mod 7 = 0 in
  let seq_f = Datapar.Seq_exec.filter p a in
  let par_f = Par.filter p a in
  Fmt.pr "filter (x%%7):  kept %d/%d, agree=%b@.@." (Array.length par_f) n
    (seq_f = par_f);

  (* 2. A small pipeline written once, executed anywhere: root mean
     square. *)
  let rms (module E : Datapar.EXECUTOR) xs =
    let sq = E.map (fun x -> float_of_int (x * x)) xs in
    let total = E.reduce Datapar.float_sum sq in
    sqrt (total /. float_of_int (Array.length xs))
  in
  Fmt.pr "rms pipeline:  seq=%.4f par=%.4f@."
    (rms (module Datapar.Seq_exec) a)
    (rms (module Par) a);

  (* 3. Why the Monoid concept matters: chunked reduction needs
     associativity, not commutativity — list concatenation keeps order. *)
  let words = Array.init 26 (fun i -> [ Char.chr (Char.code 'a' + i) ]) in
  let cat : char list Datapar.monoid = { Datapar.op = ( @ ); id = [] } in
  let spelled = Par.reduce cat words in
  Fmt.pr "order-preserving parallel reduce: %s@.@."
    (String.init (List.length spelled) (List.nth spelled));
  Fmt.pr "done.@."
