(* An STLlint session: check the paper's Fig. 4 program, its fix, and the
   rest of the canonical corpus; print every diagnostic the way the paper
   shows them.

     dune exec examples/lint_session.exe *)

open Gp_stllint

let rule = String.make 72 '-'

let () =
  Fmt.pr "=== STLlint session (Sections 3.1-3.2) ===@.@.";

  (* The headline reproduction: the Fig. 4 program. *)
  Fmt.pr "%s@." rule;
  Fmt.pr "Fig. 4: 'a misguided optimization of a routine that extracts and@.";
  Fmt.pr "erases students with failing grades from the incoming data \
          structure'@.";
  Fmt.pr "%s@." rule;
  let ds = Interp.check Corpus.fig4_buggy in
  Fmt.pr "@[<v>%a@]@.@." Interp.pp_report ds;

  Fmt.pr "After the fix (iter = students.erase(iter); end refreshed):@.";
  let ds = Interp.check Corpus.fig4_fixed in
  Fmt.pr "@[<v>%a@]@.@." Interp.pp_report ds;

  (* The Section 3.2 optimization suggestion. *)
  Fmt.pr "%s@." rule;
  Fmt.pr "Section 3.2: sort followed by a linear find@.";
  Fmt.pr "%s@." rule;
  let ds = Interp.check Corpus.sorted_then_linear_find in
  Fmt.pr "@[<v>%a@]@.@." Interp.pp_report ds;

  (* The Section 3.1 semantic-archetype check. *)
  Fmt.pr "%s@." rule;
  Fmt.pr "Section 3.1: max_element over a single-pass input stream@.";
  Fmt.pr "%s@." rule;
  let ds = Interp.check Corpus.max_element_on_stream in
  Fmt.pr "@[<v>%a@]@.@." Interp.pp_report ds;

  (* The program as source text: render the AST to the surface syntax,
     re-check from text (gp lint --file does the same). *)
  Fmt.pr "%s@." rule;
  Fmt.pr "the same program as surface syntax (see gp lint --file)@.";
  Fmt.pr "%s@." rule;
  let src = Render.to_source Corpus.fig4_buggy in
  Fmt.pr "%s@.@." src;
  let ds = Parser.check_source src in
  Fmt.pr "re-checked from text: %a@.@." Interp.pp_report ds;

  (* Sweep the whole corpus and summarise. *)
  Fmt.pr "%s@." rule;
  Fmt.pr "full corpus sweep@.";
  Fmt.pr "%s@." rule;
  Fmt.pr "%-28s %-6s %-8s %-11s %s@." "case" "errors" "warnings" "suggestions"
    "expected?";
  let ok = ref 0 in
  List.iter
    (fun (c : Corpus.case) ->
      let ds = Interp.check c.Corpus.program in
      let e = List.length (Interp.errors ds) in
      let w = List.length (Interp.warnings ds) in
      let s = List.length (Interp.suggestions ds) in
      let expected =
        e = c.Corpus.expect.Corpus.expect_errors
        && w = c.Corpus.expect.Corpus.expect_warnings
        && s = c.Corpus.expect.Corpus.expect_suggestions
      in
      if expected then incr ok;
      Fmt.pr "%-28s %-6d %-8d %-11d %s@." c.Corpus.case_name e w s
        (if expected then "yes" else "NO"))
    Corpus.all;
  Fmt.pr "@.%d/%d cases behave as documented.@." !ok (List.length Corpus.all);
  Fmt.pr "@.done.@."
