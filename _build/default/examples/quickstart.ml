(* Quickstart: concepts as first-class values.

   Defines a small concept with associated types, axioms and complexity
   guarantees; declares two candidate types; checks them (with call-site
   diagnostics for the failing one); resolves a concept-based overload; and
   shows constraint propagation counting.

     dune exec examples/quickstart.exe *)

open Gp_concepts

let n x = Ctype.Named x
let v x = Ctype.Var x

let () =
  Fmt.pr "=== gp quickstart: first-class concepts ===@.@.";

  let reg = Registry.create () in

  (* 1. Define a concept: a priority queue over an element type. *)
  let priority_queue =
    Concept.make ~params:[ "Q" ] "PriorityQueue"
      ~doc:"min-first queue with O(log n) push/pop"
      [
        Concept.assoc_type "elem";
        Concept.signature "push" [ v "Q"; Ctype.Assoc (v "Q", "elem") ] (n "unit");
        Concept.signature "pop_min" [ v "Q" ] (Ctype.Assoc (v "Q", "elem"));
        Concept.signature "size" [ v "Q" ] (n "int");
        Concept.axiom "min_first" ~vars:[ "q" ]
          "pop_min returns the least element by the elem order";
        Concept.complexity "push" (Complexity.log_ "n");
        Concept.complexity "pop_min" (Complexity.log_ "n");
        Concept.complexity "size" Complexity.constant;
      ]
  in
  Registry.declare_concept reg priority_queue;
  Fmt.pr "%a@.@." Concept.pp priority_queue;

  (* 2. Declare two types: a binary heap (conforming) and a plain list
     (missing pop_min and with a linear push). *)
  Registry.declare_type reg "int";
  Registry.declare_type reg "binary_heap" ~assoc:[ ("elem", n "int") ];
  Registry.declare_op reg "push" [ n "binary_heap"; n "int" ] (n "unit");
  Registry.declare_op reg "pop_min" [ n "binary_heap" ] (n "int");
  Registry.declare_op reg "size" [ n "binary_heap" ] (n "int");
  Registry.declare_model reg "PriorityQueue" [ n "binary_heap" ]
    ~axioms:[ "min_first" ]
    ~complexity:
      [ ("push", Complexity.log_ "n"); ("pop_min", Complexity.log_ "n");
        ("size", Complexity.constant) ];

  Registry.declare_type reg "sorted_list" ~assoc:[ ("elem", n "int") ];
  Registry.declare_op reg "push" [ n "sorted_list"; n "int" ] (n "unit");
  Registry.declare_op reg "size" [ n "sorted_list" ] (n "int");
  Registry.declare_model reg "PriorityQueue" [ n "sorted_list" ]
    ~complexity:[ ("push", Complexity.linear "n") ];

  (* 3. Check both: the checker reports exactly what is missing, at the
     level of the concept, not of any implementation. *)
  Fmt.pr "--- checking models ---@.";
  List.iter
    (fun ty ->
      let report = Check.check reg "PriorityQueue" [ n ty ] in
      Fmt.pr "%a@.@." Check.pp_report report)
    [ "binary_heap"; "sorted_list" ];

  (* 4. Concept-based overloading: dispatch on the iterator concept. *)
  Fmt.pr "--- concept-based overloading: sort dispatch ---@.";
  let sreg = Registry.create () in
  Gp_sequence.Decls.declare sreg;
  let sort = Gp_sequence.Decls.sort_generic () in
  List.iter
    (fun ty ->
      let res = Overload.resolve sreg sort [ n ty ] in
      Fmt.pr "sort over %-28s -> %a@." ty Overload.pp_resolution res)
    [ "vector<int>::iterator"; "list<int>::iterator"; "istream<int>::iterator" ];

  (* ... and actually run the dispatched candidates on live data *)
  let a = Gp_sequence.Varray.of_list ~dummy:0 [ 5; 2; 9; 1 ] in
  (match
     Overload.call sreg sort
       ~types:[ n "vector<int>::iterator" ]
       ~values:
         [ Gp_sequence.Decls.Int_range
             (Gp_sequence.Varray.begin_ a, Gp_sequence.Varray.end_ a) ]
   with
  | Ok _ ->
    Fmt.pr "dispatched sort on a vector: %a@.@."
      (Gp_sequence.Varray.pp Fmt.int) a
  | Error e -> Fmt.pr "dispatch failed: %s@." e);

  (* 5. Constraint propagation: how many constraints a generic function
     over IncidenceGraph would need without propagation (Section 2.3). *)
  (* 4b. The same concept, written in the cohesive surface syntax (the
     paper's future-work item): parse, load, check. *)
  Fmt.pr "--- the concept surface syntax (.gpc) ---@.";
  let source =
    {|
    concept Stack<S> {
      type elem;
      push : S, S.elem -> unit;
      pop  : S -> S.elem;
      axiom lifo(x): "pop after push(x) returns x";
      complexity push O(1) amortized;
    }
    type int;
    type int_stack { elem = int; }
    op push : int_stack, int -> unit;
    op pop : int_stack -> int;
    model Stack<int_stack> asserting lifo;
  |}
  in
  let lreg = Registry.create () in
  Lang.load_string lreg source;
  (match Registry.find_concept lreg "Stack" with
  | Some c -> Fmt.pr "parsed:@.%a@." Lang.pp_concept c
  | None -> ());
  Fmt.pr "int_stack models Stack: %b@.@."
    (Check.models ~mode:Check.Nominal lreg "Stack" [ n "int_stack" ]);

  Fmt.pr "--- constraint propagation (Section 2.3) ---@.";
  let greg = Registry.create () in
  Gp_graph.Decls.declare greg;
  let obs = Propagate.closure greg "IncidenceGraph" [ n "adjacency_list" ] in
  Fmt.pr "declared constraints with propagation   : %d@." Propagate.declared_size;
  Fmt.pr "constraints spelled out without it      : %d@."
    (List.length obs);
  Fmt.pr "extra type parameters in the emulation  : %d@."
    (Propagate.emulation_type_parameters greg "IncidenceGraph"
       [ n "adjacency_list" ]);
  List.iter (fun ob -> Fmt.pr "  requires %a@." Propagate.pp_obligation ob) obs;
  Fmt.pr "@.done.@."
