(* Distributed algorithms on the simulator: LCR vs HS leader election with
   full cost accounting (messages, time, and the local computation the
   paper says is "rarely accounted for"), failure injection, and the
   seven-dimension taxonomy picking the right algorithm.

     dune exec examples/ring_election.exe *)

open Gp_distsim

let line = String.make 72 '-'

let worst_uids n = Array.init n (fun i -> n - i)

let () =
  Fmt.pr "=== leader election on rings (Section 4) ===@.@.";

  (* 1. LCR vs HS across ring sizes: the n^2 vs n log n shape. *)
  Fmt.pr "%s@." line;
  Fmt.pr "messages to elect a leader (worst-case uid arrangement)@.";
  Fmt.pr "%s@." line;
  Fmt.pr "%6s %12s %12s %14s %14s@." "n" "LCR msgs" "HS msgs" "LCR local"
    "HS local";
  List.iter
    (fun n ->
      let uids = worst_uids n in
      let lcr = Algorithms.Lcr.run ~uids (Topology.ring_unidirectional n) in
      let hs = Algorithms.Hs.run ~uids (Topology.ring n) in
      Fmt.pr "%6d %12d %12d %14d %14d@." n
        lcr.Engine.metrics.Engine.messages_sent
        hs.Engine.metrics.Engine.messages_sent
        (Engine.total_local_steps lcr.Engine.metrics)
        (Engine.total_local_steps hs.Engine.metrics))
    [ 8; 16; 32; 64; 128 ];
  Fmt.pr "@.";

  (* 2. The same election under asynchrony: same leader, different
     schedule. *)
  Fmt.pr "%s@." line;
  Fmt.pr "asynchronous timing: seeded, reproducible@.";
  Fmt.pr "%s@." line;
  let n = 16 in
  let uids = worst_uids n in
  List.iter
    (fun seed ->
      let config =
        { Engine.default_config with
          Engine.timing = Engine.Asynchronous { max_delay = 5.0 };
          seed }
      in
      let r = Algorithms.Lcr.run ~config ~uids (Topology.ring_unidirectional n) in
      Fmt.pr "seed %3d: leader=%s  %a@." seed
        (Option.value ~default:"?" (Algorithms.agreed r))
        Engine.pp_metrics r.Engine.metrics)
    [ 1; 2; 3 ];
  Fmt.pr "@.";

  (* 3. Failure injection: a crash partitions a line network. *)
  Fmt.pr "%s@." line;
  Fmt.pr "failure injection: crash-stop during a broadcast on a line@.";
  Fmt.pr "%s@." line;
  let topo = Topology.line 8 in
  let config =
    { Engine.default_config with
      Engine.failures = [ Engine.Crash { node = 4; at = 1.5 } ] }
  in
  let r = Algorithms.Flood.run ~config ~root:0 ~value:42 topo in
  Array.iteri
    (fun i d ->
      Fmt.pr "  node %d: %s@." i
        (match d with
        | Some v -> "informed (" ^ v ^ ")"
        | None -> if i = 4 then "CRASHED" else "never informed"))
    r.Engine.decisions;
  Fmt.pr "@.";

  (* 4. Echo aggregation on several topologies. *)
  Fmt.pr "%s@." line;
  Fmt.pr "probe-echo convergecast: root counts the network@.";
  Fmt.pr "%s@." line;
  List.iter
    (fun topo ->
      let r = Algorithms.Echo.run ~root:0 topo in
      Fmt.pr "  %-16s -> root counted %s nodes, %a@."
        (Printf.sprintf "%d nodes" (Topology.num_nodes topo))
        (Option.value ~default:"?" r.Engine.decisions.(0))
        Engine.pp_metrics r.Engine.metrics)
    [ Topology.ring 10; Topology.grid 4 4; Topology.random ~seed:5 ~p:0.2 20 ];
  Fmt.pr "@.";

  (* 4b. Token-ring mutual exclusion and FloodMax on an arbitrary
     topology. *)
  Fmt.pr "%s@." line;
  Fmt.pr "token-ring mutual exclusion and FloodMax election@.";
  Fmt.pr "%s@." line;
  let entries = 3 and ring_n = 10 in
  let r =
    Algorithms.Token_ring.run ~entries (Topology.ring_unidirectional ring_n)
  in
  Fmt.pr "token ring (%d nodes, %d circuits): every node entered %s times, \
          %d messages@."
    ring_n entries
    (Option.value ~default:"?" (Algorithms.agreed r))
    r.Engine.metrics.Engine.messages_sent;
  let mesh = Topology.random ~seed:11 ~p:0.25 16 in
  let uids = Array.init 16 (fun i -> 100 + ((i * 37) mod 50)) in
  let fm = Algorithms.Floodmax.run ~uids mesh in
  Fmt.pr "FloodMax on a random mesh: leader uid %s, %a@."
    (Option.value ~default:"?" (Algorithms.agreed fm))
    Engine.pp_metrics fm.Engine.metrics;
  Fmt.pr "@.";

  (* 5. Ask the taxonomy which algorithm to use. *)
  Fmt.pr "%s@." line;
  Fmt.pr "taxonomy query: 'leader election, bidirectional ring, fewest \
          messages?'@.";
  Fmt.pr "%s@." line;
  let t = Taxonomy7.build () in
  let best =
    Taxonomy7.pick_for t ~problem:"leader-election"
      ~topology:"bidirectional-ring" ~measure:"messages"
  in
  List.iter
    (fun e -> Fmt.pr "  -> %a@." Gp_concepts.Taxonomy.pp_entry e)
    best;
  Fmt.pr "@.gaps (refinements with no algorithm registered): %a@."
    Fmt.(list ~sep:comma string)
    (Taxonomy7.gaps t);
  Fmt.pr "@.done.@."
