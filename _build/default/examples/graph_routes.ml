(* A road-routing scenario on the BGL-like graph library.

   Builds a small road network twice — as an adjacency list and as an
   adjacency matrix — runs the same generic algorithms on both (the point
   of programming against the Fig. 1/Fig. 2 concepts), and shows the
   concept-dispatched edge lookup picking the O(1) matrix capability.

     dune exec examples/graph_routes.exe *)

open Gp_graph

let cities =
  [| "Amsterdam"; "Brussels"; "Cologne"; "Dusseldorf"; "Eindhoven";
     "Frankfurt"; "Ghent"; "Hamburg" |]

(* (from, to, km), undirected *)
let roads =
  [ (0, 4, 125.0); (4, 3, 100.0); (3, 2, 40.0); (2, 5, 190.0); (0, 7, 460.0);
    (1, 6, 55.0); (1, 4, 140.0); (6, 0, 200.0); (2, 7, 430.0) ]

let () =
  Fmt.pr "=== road routing on the Fig. 1/2 graph concepts ===@.@.";
  let n = Array.length cities in
  let gl = Adj_list.create ~n () in
  let gm = Adj_matrix.create n in
  List.iter
    (fun (u, v, w) ->
      ignore (Adj_list.add_undirected_edge ~w gl u v);
      ignore (Adj_matrix.add_undirected_edge ~w gm u v))
    roads;

  (* 1. Both representations model the concepts — checked, not assumed. *)
  let reg = Gp_concepts.Registry.create () in
  Decls.declare reg;
  let nt x = Gp_concepts.Ctype.Named x in
  List.iter
    (fun ty ->
      Fmt.pr "%-18s models IncidenceGraph: %b@." ty
        (Gp_concepts.Check.models reg "IncidenceGraph" [ nt ty ]))
    [ "adjacency_list"; "adjacency_matrix" ];
  Fmt.pr "adjacency_matrix models AdjacencyMatrixGraph: %b@.@."
    (Gp_concepts.Check.models reg "AdjacencyMatrixGraph"
       [ nt "adjacency_matrix" ]);

  (* 2. The same generic Dijkstra on both models. *)
  let module Dl = Algorithms.Dijkstra (Adj_list.G) in
  let module Bm = Algorithms.Bfs (Adj_matrix.G) in
  let route = Dl.path gl ~source:0 ~dest:5 in
  Fmt.pr "shortest road route Amsterdam -> Frankfurt:@.";
  Fmt.pr "  %a@."
    Fmt.(list ~sep:(any " -> ") string)
    (List.map (fun v -> cities.(v)) route);
  let dist, _ = Dl.run gl 0 in
  Fmt.pr "  total: %.0f km@.@." dist.(5);

  let hops, _ = Bm.run gm 0 in
  Fmt.pr "hop counts from Amsterdam (BFS on the matrix model):@.";
  Array.iteri (fun i d ->
      if d < max_int then Fmt.pr "  %-10s %d@." cities.(i) d)
    hops;
  Fmt.pr "@.";

  (* 3. first_neighbor — the Section 2.3 example, one constraint only. *)
  let module Fn = Sigs.First_neighbor (Adj_list.G) in
  (match Fn.first_neighbor gl 1 with
  | Some v -> Fmt.pr "first neighbor of Brussels: %s@.@." cities.(v)
  | None -> Fmt.pr "Brussels has no neighbors?!@.@.");

  (* 4. Concept-dispatched edge lookup: the generic has_edge uses the O(1)
     cell probe when the graph models AdjacencyMatrixGraph, the O(degree)
     scan otherwise. *)
  Fmt.pr "--- dispatched has_edge ---@.";
  let g = Decls.has_edge_generic () in
  List.iter
    (fun (ty, query) ->
      match Gp_concepts.Overload.resolve reg g [ nt ty ] with
      | Gp_concepts.Overload.Selected (c, _) ->
        let result =
          Gp_concepts.Overload.call reg g ~types:[ nt ty ] ~values:[ query ]
        in
        let answer =
          match result with
          | Ok (Decls.Bool b) -> string_of_bool b
          | Ok _ -> "?"
          | Error e -> e
        in
        Fmt.pr "%-18s via %-40s = %s@." ty c.Gp_concepts.Overload.cand_name
          answer
      | _ -> Fmt.pr "%s: no candidate@." ty)
    [ ("adjacency_list", Decls.List_query (gl, 3, 2));
      ("adjacency_matrix", Decls.Matrix_query (gm, 3, 2)) ];

  (* 4b. Property maps: the same Dijkstra, storage chosen by the caller
     (the BGL pattern) — here with toll-adjusted weights derived on the
     fly, no graph rebuild. *)
  Fmt.pr "@.--- property-map Dijkstra: tolls double motorway costs ---@.";
  let module Dpm = Property_map.Dijkstra_pm (Adj_list.G) in
  let tolled =
    Property_map.of_function ~name:"tolled-weight" (fun e ->
        let w = Adj_list.weight gl e in
        if w > 150.0 then 2.0 *. w else w)
  in
  let dist =
    Property_map.array_backed ~name:"dist" ~size:n ~index:Fun.id
      ~default:infinity
  in
  let parent =
    Property_map.array_backed ~name:"parent" ~size:n ~index:Fun.id
      ~default:None
  in
  Dpm.run gl 0 ~weight:tolled ~dist ~parent;
  Fmt.pr "tolled distance Amsterdam -> Frankfurt: %.0f km-equivalents@."
    (Property_map.get dist 5);

  (* 5. Topological sort on the (acyclic) one-way street plan. *)
  Fmt.pr "@.--- one-way street plan (topological order) ---@.";
  let dag = Adj_list.of_edges ~n:5
      [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.); (3, 4, 1.) ]
  in
  let module T = Algorithms.Topological_sort (Adj_list.G) in
  Fmt.pr "order: %a@." Fmt.(list ~sep:sp int) (T.run dag);
  Fmt.pr "@.done.@."
