examples/optimize_and_prove.mli:
