examples/optimize_and_prove.ml: Certify Deduction Engine Expr Fmt Gp_athena Gp_simplicissimus Instances List Rules String Theorems Theory
