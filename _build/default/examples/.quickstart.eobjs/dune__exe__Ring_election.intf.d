examples/ring_election.mli:
