examples/stl_workbench.mli:
