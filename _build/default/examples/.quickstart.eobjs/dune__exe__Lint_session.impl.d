examples/lint_session.ml: Corpus Fmt Gp_stllint Interp List Parser Render String
