examples/ring_election.ml: Algorithms Array Engine Fmt Gp_concepts Gp_distsim List Option Printf String Taxonomy7 Topology
