examples/quickstart.mli:
