examples/graph_routes.mli:
