examples/lint_session.mli:
