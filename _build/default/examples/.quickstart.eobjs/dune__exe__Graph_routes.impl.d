examples/graph_routes.ml: Adj_list Adj_matrix Algorithms Array Decls Fmt Fun Gp_concepts Gp_graph List Property_map Sigs
