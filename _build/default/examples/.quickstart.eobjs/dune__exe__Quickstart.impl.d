examples/quickstart.ml: Check Complexity Concept Ctype Fmt Gp_concepts Gp_graph Gp_sequence Lang List Overload Propagate Registry
