examples/stl_workbench.ml: Algorithms Fmt Gp_concepts Gp_sequence Iter List String Taxonomy_stl Varray
