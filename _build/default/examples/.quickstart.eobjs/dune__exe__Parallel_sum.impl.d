examples/parallel_sum.ml: Array Char Datapar Fmt Gp_datapar List String Sys Unix
