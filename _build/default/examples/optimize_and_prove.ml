(* Simplicissimus + Athena: concept-based rewriting with proof-checked
   rules (Sections 3.2 and 3.3).

   Certifies the built-in rules by running their generic proofs through the
   Athena-style checker, regenerates the Fig. 5 instance table by actually
   firing the two concept rules on each carrier, rewrites a user pipeline,
   and shows the LiDIA-style user rule.

     dune exec examples/optimize_and_prove.exe *)

open Gp_simplicissimus

let rule_line = String.make 72 '-'

let () =
  Fmt.pr "=== Simplicissimus: concept-based optimization ===@.@.";

  (* 1. Certify the rules: each is derivable from its concept's axioms,
     and the derivation is CHECKED, not trusted (Fig. 5, advantage 2). *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "rule certification through the proof checker@.";
  Fmt.pr "%s@." rule_line;
  let reports = Certify.certify_builtin () in
  List.iter (fun c -> Fmt.pr "%a@." Certify.pp_certification c) reports;
  Fmt.pr "@.";

  let insts = Instances.standard () in
  let rules = Rules.builtin @ [ Rules.lidia_inverse ] in

  (* 2. Regenerate the Fig. 5 instance table from the two generic rules:
     "additional instances can be generated from the two concept-based
     rules". *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "Fig. 5 regenerated: instances derived from TWO concept rules@.";
  Fmt.pr "%s@." rule_line;
  let open Expr in
  let monoid_instances =
    [ ("i * 1", binop "*" (ivar "i") (int 1));
      ("f * 1.0", binop "*" (fvar "f") (float 1.0));
      ("b && true", binop "&&" (bvar "b") (bool true));
      ("i & 0xFF..F", binop "&" (ivar "i") (int (-1)));
      ("concat(s, \"\")", binop "^" (svar "s") (string ""));
      ("A . I", binop "." (mvar "A") (Ident ("matrix", "."))) ]
  in
  let group_instances =
    [ ("i + (-i)", binop "+" (ivar "i") (unop "neg" (ivar "i")));
      ("f * (1.0/f)", binop "*" (fvar "f") (unop "inv" (fvar "f")));
      ("r * r^-1", binop "*" (qvar "r") (unop "inv" (qvar "r")));
      ( "A . A^-1",
        let a = Var ("A", "invertible_matrix") in
        Op (".", "invertible_matrix", [ a; Op ("inv", "invertible_matrix", [ a ]) ]) ) ]
  in
  let show title pairs =
    Fmt.pr "  %s@." title;
    List.iter
      (fun (label, e) ->
        let r = Engine.rewrite ~rules ~insts e in
        let fired =
          match r.Engine.steps with
          | s :: _ -> s.Engine.st_rule
          | [] -> "(no rule)"
        in
        Fmt.pr "    %-16s -> %-8s  [%s]@." label
          (Expr.to_string r.Engine.output)
          fired)
      pairs
  in
  show "x + 0 -> x  when (x,+) models Monoid:" monoid_instances;
  show "x + (-x) -> 0  when (x,+,-) models Group:" group_instances;
  Fmt.pr "@.";

  (* 3. A pipeline with buried redexes. *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "rewriting a nested expression to fixpoint@.";
  Fmt.pr "%s@." rule_line;
  let e =
    binop "+"
      (binop "*" (binop "+" (ivar "x") (int 0)) (int 1))
      (binop "+" (int 0) (unop "neg" (ivar "x")))
  in
  let r = Engine.rewrite ~rules ~insts e in
  Fmt.pr "%a@." Engine.pp_result r;
  List.iter (fun s -> Fmt.pr "  %a@." Engine.pp_step s) r.Engine.steps;
  Fmt.pr "@.";

  (* 4. Guard soundness: a Monoid carrier does NOT get the Group rule. *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "guards: int-with-* is only a Monoid, so no inverse rule@.";
  Fmt.pr "%s@." rule_line;
  let e = binop "*" (ivar "i") (Op ("inv", "int", [ ivar "i" ])) in
  let r = Engine.rewrite ~rules ~insts e in
  Fmt.pr "%a   (unchanged: the guard protects soundness)@.@." Engine.pp_result r;

  (* 5. The LiDIA user rule (Section 3.2). *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "user rule: LiDIA's 1.0/f -> f.Inverse()@.";
  Fmt.pr "%s@." rule_line;
  let f = Var ("f", "bigfloat") in
  let e = Op ("*", "bigfloat", [ Op ("/", "bigfloat", [ float 1.0; f ]); f ]) in
  let r = Engine.rewrite ~rules ~insts e in
  Fmt.pr "%a@.@." Engine.pp_result r;

  (* 6. The Fig. 6 theorems, checked and instantiated generically. *)
  Fmt.pr "%s@." rule_line;
  Fmt.pr "Fig. 6: Strict Weak Order theorems (generic proof, many models)@.";
  Fmt.pr "%s@." rule_line;
  let open Gp_athena in
  List.iter
    (fun lt ->
      List.iter
        (fun thm_fn ->
          let thm = thm_fn ~lt in
          let verdict =
            Theorems.verify ~axioms:(Theory.strict_weak_order ~lt) thm
          in
          Fmt.pr "  %-40s over %-10s : %a@." thm.Theorems.thm_name lt
            Deduction.pp_verdict verdict)
        [ Theorems.swo_e_reflexive; Theorems.swo_e_symmetric;
          Theorems.swo_asymmetric ])
    [ "int_lt"; "string_lt"; "rational_lt" ];
  Fmt.pr "@.done.@."
