(* An STL workbench: a small inventory-reconciliation scenario that
   exercises the wider algorithm set — sorting with dispatch, the
   sorted-range set algebra, equal_range, back inserters, quantifiers —
   plus the taxonomy query that justifies each choice.

     dune exec examples/stl_workbench.exe *)

open Gp_sequence

let line = String.make 72 '-'
let lt = ( < )
let show name a = Fmt.pr "  %-24s %a@." name (Varray.pp Fmt.int) a

let () =
  Fmt.pr "=== STL workbench: reconciling two inventories ===@.@.";

  (* Yesterday's and today's inventories (item ids, unsorted). *)
  let yesterday = Varray.of_list ~dummy:0 [ 7; 3; 3; 9; 1; 5; 3 ] in
  let today = Varray.of_list ~dummy:0 [ 5; 3; 8; 3; 1; 8 ] in
  show "yesterday" yesterday;
  show "today" today;

  (* 1. Sort both: dispatch picks introsort (random access). *)
  Fmt.pr "@.%s@." line;
  Fmt.pr "sorting (concept dispatch picks %s)@."
    (Algorithms.sort_algorithm_name
       (Algorithms.sort_algorithm_for Iter.Random_access));
  Fmt.pr "%s@." line;
  Algorithms.sort ~lt (Varray.begin_ yesterday, Varray.end_ yesterday);
  Algorithms.sort ~lt (Varray.begin_ today, Varray.end_ today);
  show "yesterday (sorted)" yesterday;
  show "today (sorted)" today;

  (* 2. Set algebra through back inserters: what arrived, what left,
     what is common stock. *)
  Fmt.pr "@.%s@." line;
  Fmt.pr "sorted-range set algebra (multiset semantics)@.";
  Fmt.pr "%s@." line;
  let collect op =
    let out = Varray.create ~dummy:0 () in
    let _ =
      op ~lt
        (Varray.begin_ yesterday, Varray.end_ yesterday)
        (Varray.begin_ today, Varray.end_ today)
        (Varray.back_inserter out)
    in
    out
  in
  show "arrived (today \\ yest)"
    (let out = Varray.create ~dummy:0 () in
     let _ =
       Algorithms.set_difference ~lt
         (Varray.begin_ today, Varray.end_ today)
         (Varray.begin_ yesterday, Varray.end_ yesterday)
         (Varray.back_inserter out)
     in
     out);
  show "left (yest \\ today)" (collect Algorithms.set_difference);
  show "common stock" (collect Algorithms.set_intersection);
  show "all ever seen" (collect Algorithms.set_union);

  (* 3. equal_range: how many of item 3 did we hold yesterday? *)
  Fmt.pr "@.%s@." line;
  Fmt.pr "counting one item with equal_range (O(log n))@.";
  Fmt.pr "%s@." line;
  let lo, hi =
    Algorithms.equal_range ~lt 3 (Varray.begin_ yesterday, Varray.end_ yesterday)
  in
  Fmt.pr "  item 3 held yesterday: %d units@." (Algorithms.distance lo hi);

  (* 4. Quantifiers and partitioning: audit rules. *)
  Fmt.pr "@.%s@." line;
  Fmt.pr "audit: quantifiers and partitioning@.";
  Fmt.pr "%s@." line;
  let r = (Varray.begin_ today, Varray.end_ today) in
  Fmt.pr "  all ids positive:        %b@."
    (Algorithms.all_of (fun x -> x > 0) r);
  Fmt.pr "  any id over 7:           %b@."
    (Algorithms.any_of (fun x -> x > 7) r);
  Fmt.pr "  sorted:                  %b@." (Algorithms.is_sorted ~lt r);
  let evens_first = Varray.of_list ~dummy:0 (Varray.to_list today) in
  let p x = x mod 2 = 0 in
  let _ = Algorithms.partition p (Varray.begin_ evens_first, Varray.end_ evens_first) in
  show "evens partitioned first" evens_first;
  Fmt.pr "  is_partitioned:          %b@."
    (Algorithms.is_partitioned p
       (Varray.begin_ evens_first, Varray.end_ evens_first));

  (* 5. Ask the STL taxonomy why these were the right algorithms. *)
  Fmt.pr "@.%s@." line;
  Fmt.pr "the taxonomy's justification@.";
  Fmt.pr "%s@." line;
  let t = Taxonomy_stl.build () in
  List.iter
    (fun sorted ->
      Fmt.pr "  best search (%s): %a@."
        (if sorted then "sorted input" else "unsorted input")
        Fmt.(list ~sep:comma string)
        (List.map
           (fun e -> e.Gp_concepts.Taxonomy.en_name)
           (Taxonomy_stl.best_search t ~sorted)))
    [ false; true ];
  Fmt.pr "@.done.@."
